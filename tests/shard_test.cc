/**
 * @file
 * Tests for deterministic cross-process job sharding: the shardRange
 * partition, shard-job execution at absolute shot indices, the
 * BatchResult JSON round trip (fromJson as the exact inverse of
 * toJson, fingerprint-verified), strict merge compatibility checking,
 * completeness verification, and the k-shard merge bit-identity
 * against a single-process run across workloads, backends, thread
 * counts and scheduling policies. Also freezes the result-file schema
 * (docs/result_format.md) so a field rename cannot silently break
 * shard merging.
 */
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "assembler/assembler.h"
#include "common/error.h"
#include "common/json.h"
#include "engine/shot_engine.h"
#include "runtime/platform.h"
#include "workloads/experiments.h"
#include "workloads/surface_code.h"

using namespace eqasm;
using namespace eqasm::engine;
using namespace eqasm::runtime;

namespace {

/** Assembles @p source for @p platform into a Job. */
Job
makeJob(const Platform &platform, const std::string &source, int shots,
        uint64_t seed)
{
    assembler::Assembler asm_(platform.operations, platform.topology,
                              platform.params);
    Job job;
    job.image = asm_.assemble(source).image;
    job.shots = shots;
    job.seed = seed;
    return job;
}

/** The noisy active-reset workload: plenty of randomness per shot. */
Job
activeResetJob(const Platform &platform, int shots, uint64_t seed)
{
    return makeJob(platform, workloads::activeResetProgram(2), shots,
                   seed);
}

/** Runs @p job on a fresh engine (its own pool — the in-process
 *  equivalent of a separate OS process, since workers share nothing
 *  with other engines). */
BatchResult
runOnFreshEngine(const Platform &platform, Job job, int threads,
                 sched::Policy policy = sched::Policy::fifo)
{
    EngineConfig config;
    config.threads = threads;
    config.scheduler.policy = policy;
    ShotEngine engine(platform, config);
    return engine.run(std::move(job));
}

/** Serialise to file text and back — exactly what --shard/--merge do
 *  across process boundaries. */
BatchResult
throughJson(const BatchResult &result)
{
    return BatchResult::fromJson(Json::parse(result.toJson().dump(2)));
}

/** Expects fn() to throw Error whose message contains @p needle. */
template <typename Fn>
void
expectErrorContaining(Fn &&fn, const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected Error mentioning '" << needle << "'";
    } catch (const Error &error) {
        EXPECT_NE(std::string(error.what()).find(needle),
                  std::string::npos)
            << "message: " << error.what();
    }
}

/** Rebuilds @p json without the member named @p key. */
Json
without(const Json &json, const std::string &key)
{
    Json pruned = Json::makeObject();
    for (const auto &[name, value] : json.asObject()) {
        if (name != key)
            pruned.set(name, value);
    }
    return pruned;
}

} // namespace

// ------------------------------------------------------------- shardRange

TEST(ShardRange, PartitionsTheRangeExactly)
{
    for (int total : {1, 2, 5, 7, 32, 100, 999}) {
        for (int count : {1, 2, 3, 4, 7, 8}) {
            if (count > total)
                continue;
            int expected_begin = 0;
            for (int index = 0; index < count; ++index) {
                auto [begin, end] =
                    shardRange(total, ShardSpec{index, count});
                EXPECT_EQ(begin, expected_begin)
                    << total << " shots, shard " << index << "/"
                    << count;
                EXPECT_LT(begin, end);
                // Slice sizes differ by at most one shot.
                EXPECT_GE(end - begin, total / count);
                EXPECT_LE(end - begin, total / count + 1);
                expected_begin = end;
            }
            EXPECT_EQ(expected_begin, total);
        }
    }
}

TEST(ShardRange, InactiveShardCoversTheWholeRange)
{
    auto [begin, end] = shardRange(1234, ShardSpec{});
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 1234);
}

// --------------------------------------------------------- shard submission

TEST(ShardSubmit, RejectsInvalidShardSpecs)
{
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 1});

    Job job = activeResetJob(platform, 10, 1);
    job.label = "badshard";
    job.shard = {2, 2};
    expectErrorContaining([&] { engine.submit(job); }, "badshard");
    job.shard = {-1, 2};
    EXPECT_THROW(engine.submit(job), Error);
    job.shard = {0, -3};
    EXPECT_THROW(engine.submit(job), Error);

    // More shards than shots leaves some slices empty (slice 0 of 3
    // covers [floor(0*2/3), floor(1*2/3)) = [0, 0)).
    job.shots = 2;
    job.shard = {0, 3};
    expectErrorContaining([&] { engine.submit(job); }, "empty");
}

TEST(ShardSubmit, ShardResultCoversExactlyItsSlice)
{
    Platform platform = Platform::twoQubit();
    Job job = activeResetJob(platform, 30, 5);
    job.shard = {1, 3};
    BatchResult result = runOnFreshEngine(platform, job, 2);

    EXPECT_EQ(result.shots, 10u);
    EXPECT_EQ(result.totalShots, 30u);
    EXPECT_EQ(result.shard.index, 1);
    EXPECT_EQ(result.shard.count, 3);
    ASSERT_EQ(result.shotRanges.size(), 1u);
    EXPECT_EQ(result.shotRanges.front(),
              (std::pair<uint64_t, uint64_t>{10, 20}));
    EXPECT_EQ(result.programHash,
              imageFingerprint(activeResetJob(platform, 30, 5).image));

    // The slice executed the *absolute* shot indices: its counts are a
    // sub-aggregate of the unsharded run, not of shots [0, 10).
    Job full = activeResetJob(platform, 30, 5);
    BatchResult whole = runOnFreshEngine(platform, full, 1);
    uint64_t histogram_sum = 0;
    for (const auto &[bitstring, count] : result.histogram) {
        EXPECT_LE(count, whole.histogram.at(bitstring));
        histogram_sum += count;
    }
    EXPECT_EQ(histogram_sum, 10u);
}

// ----------------------------------------------------- JSON round tripping

TEST(ResultRoundTrip, FromJsonIsTheExactInverseOfToJson)
{
    Platform platform = Platform::twoQubit();
    Job job = activeResetJob(platform, 50, 9);
    job.label = "roundtrip";
    job.shard = {1, 2};
    BatchResult result = runOnFreshEngine(platform, job, 2);

    std::string serialised = result.toJson().dump(2);
    BatchResult parsed = BatchResult::fromJson(Json::parse(serialised));
    EXPECT_EQ(parsed.toJson().dump(2), serialised);

    EXPECT_EQ(parsed.label, result.label);
    EXPECT_EQ(parsed.backend, result.backend);
    EXPECT_EQ(parsed.seed, result.seed);
    EXPECT_EQ(parsed.threads, result.threads);
    EXPECT_EQ(parsed.shots, result.shots);
    EXPECT_EQ(parsed.totalShots, result.totalShots);
    EXPECT_EQ(parsed.programHash, result.programHash);
    EXPECT_EQ(parsed.shard.index, result.shard.index);
    EXPECT_EQ(parsed.shard.count, result.shard.count);
    EXPECT_EQ(parsed.shotRanges, result.shotRanges);
    EXPECT_EQ(parsed.histogram, result.histogram);
    EXPECT_EQ(parsed.wallSeconds, result.wallSeconds);
    EXPECT_EQ(parsed.shotsPerSecond, result.shotsPerSecond);
    EXPECT_EQ(parsed.countsFingerprint(), result.countsFingerprint());
}

TEST(ResultRoundTrip, FingerprintsUseTheDocumentedFormat)
{
    Platform platform = Platform::twoQubit();
    BatchResult result = runOnFreshEngine(
        platform, activeResetJob(platform, 8, 3), 1);
    for (const std::string &fingerprint :
         {result.countsFingerprint(), result.programHash}) {
        ASSERT_EQ(fingerprint.size(), 6u + 16u) << fingerprint;
        EXPECT_EQ(fingerprint.substr(0, 6), "fnv1a:");
        for (size_t i = 6; i < fingerprint.size(); ++i) {
            char c = fingerprint[i];
            EXPECT_TRUE((c >= '0' && c <= '9') ||
                        (c >= 'a' && c <= 'f'))
                << fingerprint;
        }
    }
}

// ------------------------------------------------------- schema stability

TEST(ResultSchema, FieldNamesAndOrderAreFrozen)
{
    // docs/result_format.md freezes this schema; renaming or reordering
    // a field breaks cross-version shard merging, so it must fail here
    // first. Bump the doc and this list together — deliberately.
    Platform platform = Platform::twoQubit();
    Job job = activeResetJob(platform, 12, 4);
    job.label = "schema";
    job.shard = {0, 2};
    Json json = runOnFreshEngine(platform, job, 1).toJson();

    std::vector<std::string> keys;
    for (const auto &[key, value] : json.asObject())
        keys.push_back(key);
    const std::vector<std::string> expected = {
        "label",        "backend",        "seed",
        "threads",      "shots",          "qubits",
        "histogram",    "stats",          "wall_seconds",
        "shots_per_second", "total_shots", "program_hash",
        "shard",        "shot_ranges",    "counts_fingerprint"};
    EXPECT_EQ(keys, expected);

    std::vector<std::string> stats_keys;
    for (const auto &[key, value] : json.at("stats").asObject())
        stats_keys.push_back(key);
    const std::vector<std::string> expected_stats = {
        "cycles",          "classical_instructions",
        "quantum_instructions", "bundles",
        "micro_ops",       "triggered",
        "cancelled",       "fmr_stall_cycles",
        "underruns",       "max_queue_depth"};
    EXPECT_EQ(stats_keys, expected_stats);

    ASSERT_GT(json.at("qubits").size(), 0u);
    std::vector<std::string> qubit_keys;
    for (const auto &[key, value] :
         json.at("qubits").at(size_t{0}).asObject())
        qubit_keys.push_back(key);
    const std::vector<std::string> expected_qubit = {
        "qubit", "shots", "ones", "fraction_one"};
    EXPECT_EQ(qubit_keys, expected_qubit);

    std::vector<std::string> shard_keys;
    for (const auto &[key, value] : json.at("shard").asObject())
        shard_keys.push_back(key);
    EXPECT_EQ(shard_keys,
              (std::vector<std::string>{"index", "count"}));
}

// -------------------------------------------------- malformed input paths

TEST(FromJson, RejectsMalformedInputWithTypedErrors)
{
    Platform platform = Platform::twoQubit();
    BatchResult result = runOnFreshEngine(
        platform, activeResetJob(platform, 16, 2), 1);
    std::string good = result.toJson().dump(2);

    // Syntactically broken text fails in Json::parse — typed Error,
    // never UB or a std exception.
    EXPECT_THROW(Json::parse("][ not json"), Error);
    EXPECT_THROW(Json::parse(good.substr(0, good.size() / 2)), Error);
    EXPECT_THROW(Json::parse(""), Error);

    // Structurally broken documents fail in fromJson with the field
    // named in the message.
    expectErrorContaining(
        [] { BatchResult::fromJson(Json::parse("[1, 2]")); },
        "object");
    Json parsed = Json::parse(good);
    for (const char *field :
         {"seed", "threads", "shots", "total_shots", "qubits",
          "histogram", "stats", "wall_seconds", "shots_per_second",
          "counts_fingerprint"}) {
        expectErrorContaining(
            [&] { BatchResult::fromJson(without(parsed, field)); },
            field);
    }

    Json wrong_type = Json::parse(good);
    wrong_type.set("shots", "many");
    expectErrorContaining(
        [&] { BatchResult::fromJson(wrong_type); }, "shots");

    Json negative = Json::parse(good);
    negative.set("shots", -5);
    expectErrorContaining([&] { BatchResult::fromJson(negative); },
                          "shots");

    Json bad_fingerprint = Json::parse(good);
    bad_fingerprint.set("counts_fingerprint", "sha256:deadbeef");
    expectErrorContaining(
        [&] { BatchResult::fromJson(bad_fingerprint); },
        "counts_fingerprint");

    Json bad_shard = Json::parse(good);
    Json slice = Json::makeObject();
    slice.set("index", 3);
    slice.set("count", 2);
    bad_shard.set("shard", std::move(slice));
    expectErrorContaining([&] { BatchResult::fromJson(bad_shard); },
                          "shard");

    Json bad_ranges = Json::parse(good);
    Json ranges = Json::makeArray();
    Json a = Json::makeArray();
    a.append(0);
    a.append(10);
    Json b = Json::makeArray();
    b.append(5);
    b.append(15);
    ranges.append(std::move(a));
    ranges.append(std::move(b));
    bad_ranges.set("shot_ranges", std::move(ranges));
    expectErrorContaining([&] { BatchResult::fromJson(bad_ranges); },
                          "overlap");
}

TEST(FromJson, DetectsTamperedCounts)
{
    Platform platform = Platform::twoQubit();
    BatchResult result = runOnFreshEngine(
        platform, activeResetJob(platform, 16, 2), 1);
    Json json = Json::parse(result.toJson().dump(2));

    // Flip one histogram count: the embedded fingerprint no longer
    // matches the counts, so the file is refused, not merged.
    Json histogram = json.at("histogram");
    ASSERT_GT(histogram.size(), 0u);
    const auto &[bitstring, count] = histogram.asObject().front();
    histogram.set(bitstring, count.asInt() + 1);
    json.set("histogram", std::move(histogram));
    expectErrorContaining([&] { BatchResult::fromJson(json); },
                          "counts_fingerprint mismatch");
}

// -------------------------------------------------- strict merge refusals

TEST(StrictMerge, RejectsIncompatibleShards)
{
    Platform platform = Platform::twoQubit();
    auto shardResult = [&](const std::string &source, int shots,
                           uint64_t seed, int index, int count) {
        Job job = makeJob(platform, source, shots, seed);
        job.shard = {index, count};
        return runOnFreshEngine(platform, job, 1);
    };
    const std::string reset = workloads::activeResetProgram(2);
    const std::string t1 = workloads::t1Program(100, 0);

    // Different seeds: the per-shot streams are unrelated.
    {
        BatchResult left = shardResult(reset, 20, 1, 0, 2);
        BatchResult right = shardResult(reset, 20, 2, 1, 2);
        expectErrorContaining([&] { left.merge(right); }, "seed");
    }
    // Different programs.
    {
        BatchResult left = shardResult(reset, 20, 1, 0, 2);
        BatchResult right = shardResult(t1, 20, 1, 1, 2);
        expectErrorContaining([&] { left.merge(right); },
                              "program_hash");
    }
    // The same shard folded twice: overlapping shot ranges.
    {
        BatchResult left = shardResult(reset, 20, 1, 0, 2);
        BatchResult twin = shardResult(reset, 20, 1, 0, 2);
        expectErrorContaining([&] { left.merge(twin); }, "overlap");
    }
    // Slices of different shard plans.
    {
        BatchResult left = shardResult(reset, 20, 1, 0, 2);
        BatchResult right = shardResult(reset, 20, 1, 1, 3);
        expectErrorContaining([&] { left.merge(right); },
                              "shard count");
    }
    // Different job sizes.
    {
        BatchResult left = shardResult(reset, 20, 1, 0, 2);
        BatchResult right = shardResult(reset, 40, 1, 1, 2);
        expectErrorContaining([&] { left.merge(right); },
                              "total_shots");
    }
    // Different labels: the label is part of the fingerprinted body,
    // so keeping either side's would make the merged fingerprint
    // depend on merge order.
    {
        BatchResult left = shardResult(reset, 20, 1, 0, 2);
        BatchResult right = shardResult(reset, 20, 1, 1, 2);
        left.label = "a";
        right.label = "b";
        expectErrorContaining([&] { left.merge(right); }, "label");
    }
    // Different backends (cross-check via the stabilizer platform).
    {
        Platform stab = Platform::rotatedSurface(2);
        Job job = makeJob(
            stab, workloads::syndromeProgram(2, 1, stab.operations),
            20, 1);
        job.shard = {1, 2};
        BatchResult right = runOnFreshEngine(stab, job, 1);
        BatchResult left = shardResult(reset, 20, 1, 0, 2);
        // Force the other mismatches out of the way so the backend
        // check is what fires.
        right.programHash = left.programHash;
        expectErrorContaining([&] { left.merge(right); }, "backend");
    }
}

TEST(StrictMerge, VerifyCompleteNamesMissingShards)
{
    Platform platform = Platform::twoQubit();
    auto shardResult = [&](int index, int count) {
        Job job = activeResetJob(platform, 30, 7);
        job.shard = {index, count};
        return runOnFreshEngine(platform, job, 1);
    };

    BatchResult merged = shardResult(0, 3);
    merged.merge(shardResult(2, 3));
    expectErrorContaining([&] { merged.verifyComplete(); },
                          "[10, 20)");

    merged.merge(shardResult(1, 3));
    EXPECT_NO_THROW(merged.verifyComplete());
    EXPECT_FALSE(merged.shard.active());

    BatchResult handmade;
    expectErrorContaining([&] { handmade.verifyComplete(); },
                          "total_shots");

    // Ranges past the job size (only reachable through hand-edited
    // provenance — the fingerprint does not cover it) are reported as
    // excess coverage, not as an inverted "missing" interval.
    BatchResult excess = shardResult(0, 3);
    excess.merge(shardResult(1, 3));
    excess.merge(shardResult(2, 3));
    excess.totalShots = 20;
    expectErrorContaining([&] { excess.verifyComplete(); }, "beyond");
}

// --------------------------------------- k-process shard+merge identity

namespace {

struct ShardWorkload {
    std::string name;
    Platform platform;
    std::string source;
    int shots = 0;
    uint64_t seed = 0;
};

std::vector<ShardWorkload>
shardWorkloads()
{
    std::vector<ShardWorkload> workloads;
    {
        ShardWorkload w;
        w.name = "rabi";
        w.platform = Platform::twoQubit();
        w.platform.operations = workloads::rabiOperationSet(17);
        w.source = workloads::rabiProgram(8, 0);
        w.shots = 300;
        w.seed = 300;
        workloads.push_back(std::move(w));
    }
    {
        ShardWorkload w;
        w.name = "active_reset";
        w.platform = Platform::twoQubit();
        w.source = workloads::activeResetProgram(2);
        w.shots = 200;
        w.seed = 17;
        workloads.push_back(std::move(w));
    }
    {
        ShardWorkload w;
        w.name = "qec_d2_density";
        w.platform = Platform::rotatedSurface(2);
        w.platform.device.backend = qsim::BackendKind::density;
        w.source = workloads::syndromeProgram(2, 1,
                                              w.platform.operations);
        w.shots = 40;
        w.seed = 11;
        workloads.push_back(std::move(w));
    }
    {
        ShardWorkload w;
        w.name = "qec_d3_stab";
        w.platform = Platform::rotatedSurface(3);
        w.source = workloads::syndromeProgram(3, 1,
                                              w.platform.operations);
        w.shots = 300;
        w.seed = 11;
        workloads.push_back(std::move(w));
    }
    return workloads;
}

} // namespace

TEST(ShardMerge, KShardsMergeBitIdenticalToOneProcess)
{
    for (const ShardWorkload &workload : shardWorkloads()) {
        Job baseline_job = makeJob(workload.platform, workload.source,
                                   workload.shots, workload.seed);
        BatchResult baseline =
            runOnFreshEngine(workload.platform, baseline_job, 1);
        std::string expected = baseline.countsFingerprint();

        for (int count : {2, 3}) {
            // Each shard runs on its own engine — the in-process
            // equivalent of a separate process — and crosses a JSON
            // round trip, exactly like real shard files would.
            std::vector<BatchResult> shards;
            for (int index = 0; index < count; ++index) {
                Job job = makeJob(workload.platform, workload.source,
                                  workload.shots, workload.seed);
                job.shard = {index, count};
                shards.push_back(throughJson(runOnFreshEngine(
                    workload.platform, job, index % 2 + 1)));
            }
            // Fold in non-admission order: merge is commutative.
            BatchResult merged;
            for (int index = count; index-- > 0;)
                merged.merge(shards[static_cast<size_t>(index)]);
            ASSERT_NO_THROW(merged.verifyComplete())
                << workload.name << " k=" << count;

            EXPECT_EQ(merged.countsFingerprint(), expected)
                << workload.name << " k=" << count;
            EXPECT_EQ(merged.histogram, baseline.histogram)
                << workload.name << " k=" << count;
            EXPECT_EQ(merged.shots, baseline.shots);
            EXPECT_EQ(merged.stats.cycles, baseline.stats.cycles);
            EXPECT_EQ(merged.stats.quantumInstructions,
                      baseline.stats.quantumInstructions);
        }
    }
}

TEST(ShardMerge, ShardJobsKeepSchedulingMetadata)
{
    // Per-shard jobs are ordinary scheduler citizens: tenant, priority
    // and policy shape *when* a shard's chunks run, never its counts.
    Platform platform = Platform::twoQubit();
    Job baseline_job = activeResetJob(platform, 120, 21);
    // The label is part of the canonical body the fingerprint hashes,
    // so the baseline must carry the same one as the shards.
    baseline_job.label = "shard";
    std::string expected =
        runOnFreshEngine(platform, baseline_job, 1).countsFingerprint();

    for (sched::Policy policy :
         {sched::Policy::fifo, sched::Policy::priority,
          sched::Policy::fairShare}) {
        BatchResult merged;
        for (int index = 0; index < 3; ++index) {
            Job job = activeResetJob(platform, 120, 21);
            job.shard = {index, 3};
            job.tenant = index % 2 ? "calib" : "qec";
            job.priority = index;
            job.label = "shard";
            merged.merge(throughJson(
                runOnFreshEngine(platform, job, 2, policy)));
        }
        ASSERT_NO_THROW(merged.verifyComplete());
        EXPECT_EQ(merged.countsFingerprint(), expected)
            << "policy " << static_cast<int>(policy);
        EXPECT_EQ(merged.label, "shard");
    }
}

// ----------------------------------------- shot-range coverage algebra

namespace {

using Ranges = std::vector<std::pair<uint64_t, uint64_t>>;

} // namespace

TEST(ShotRanges, AdjacentInsertsCoalesceIntoOneRange)
{
    Ranges ranges;
    insertShotRange(ranges, 10, 20);
    insertShotRange(ranges, 20, 30);  // touches on the right.
    insertShotRange(ranges, 0, 10);   // touches on the left.
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0], std::make_pair(uint64_t{0}, uint64_t{30}));

    // A gap keeps two ranges apart; filling it coalesces all three.
    insertShotRange(ranges, 40, 50);
    ASSERT_EQ(ranges.size(), 2u);
    insertShotRange(ranges, 30, 40);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0], std::make_pair(uint64_t{0}, uint64_t{50}));
}

TEST(ShotRanges, SingleShotRangesBehaveLikeAnyOther)
{
    Ranges ranges;
    insertShotRange(ranges, 5, 6);
    insertShotRange(ranges, 7, 8);
    ASSERT_EQ(ranges.size(), 2u);
    insertShotRange(ranges, 6, 7);  // the single missing shot.
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0], std::make_pair(uint64_t{5}, uint64_t{8}));

    Ranges gaps = missingShotRanges(ranges, 10);
    ASSERT_EQ(gaps.size(), 2u);
    EXPECT_EQ(gaps[0], std::make_pair(uint64_t{0}, uint64_t{5}));
    EXPECT_EQ(gaps[1], std::make_pair(uint64_t{8}, uint64_t{10}));
}

TEST(ShotRanges, InsertRefusesEmptyAndOverlappingRanges)
{
    Ranges ranges;
    EXPECT_THROW(insertShotRange(ranges, 5, 5), Error);
    EXPECT_THROW(insertShotRange(ranges, 6, 5), Error);
    insertShotRange(ranges, 0, 10);
    // Every flavour of overlap: identical, contained, straddling.
    EXPECT_THROW(insertShotRange(ranges, 0, 10), Error);
    EXPECT_THROW(insertShotRange(ranges, 3, 4), Error);
    EXPECT_THROW(insertShotRange(ranges, 9, 12), Error);
    // The refused inserts left the coverage untouched.
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0], std::make_pair(uint64_t{0}, uint64_t{10}));
}

TEST(ShotRanges, FullCoverageHasNoMissingRanges)
{
    Ranges ranges;
    insertShotRange(ranges, 0, 100);
    EXPECT_TRUE(missingShotRanges(ranges, 100).empty());
    // Coverage beyond totalShots is clamped, not reported as a gap.
    EXPECT_TRUE(missingShotRanges(ranges, 50).empty());
}

TEST(ShotRanges, EmptyCoverageIsMissingEverything)
{
    Ranges empty;
    Ranges gaps = missingShotRanges(empty, 25);
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0], std::make_pair(uint64_t{0}, uint64_t{25}));
    // Zero shots: nothing can be missing, covered or not.
    EXPECT_TRUE(missingShotRanges(empty, 0).empty());
    Ranges some;
    insertShotRange(some, 0, 5);
    EXPECT_TRUE(missingShotRanges(some, 0).empty());
}
