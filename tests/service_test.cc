/**
 * @file
 * Tests for the eqasmd service subsystem: per-tenant admission quotas
 * (ceilings + token bucket), the crash-safe job journal (fsync'd
 * intent log, shard-format checkpoints, torn-tail tolerance vs
 * corruption refusal), and the Service verb layer — including the
 * load-bearing property: a daemon killed at an arbitrary point resumes
 * every acknowledged job to the bitwise-identical counts_fingerprint
 * of an uninterrupted single-process run, or refuses naming the bad
 * file.
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "assembler/assembler.h"
#include "common/error.h"
#include "common/strings.h"
#include "engine/shot_engine.h"
#include "runtime/platform.h"
#include "sched/quota.h"
#include "service/journal.h"
#include "service/server.h"
#include "service/service.h"
#include "telemetry/metrics.h"
#include "workloads/experiments.h"

using namespace eqasm;
using namespace eqasm::engine;
using namespace eqasm::runtime;
using namespace eqasm::service;

namespace fs = std::filesystem;

namespace {

/** A fresh directory under the test temp root. */
std::string
freshDir(const std::string &hint)
{
    static int counter = 0;
    std::string path =
        format("%s/eqasm_service_%d_%s_%d", testing::TempDir().c_str(),
               getpid(), hint.c_str(), counter++);
    fs::remove_all(path);
    fs::create_directories(path);
    return path;
}

/** The noisy two-qubit active-reset workload used across the suite. */
std::string
testSource()
{
    return workloads::activeResetProgram(2);
}

std::vector<uint32_t>
testImage(const Platform &platform)
{
    assembler::Assembler asm_(platform.operations, platform.topology,
                              platform.params);
    return asm_.assemble(testSource()).image;
}

JobSpec
testSpec(const Platform &platform, uint64_t id, int shots,
         uint64_t seed = 7)
{
    JobSpec spec;
    spec.id = id;
    spec.label = "svc";
    spec.tenant = "alice";
    spec.shots = shots;
    spec.seed = seed;
    spec.image = testImage(platform);
    return spec;
}

/** Submits via the verb layer and returns the assigned id. */
uint64_t
submitVia(Service &service, int shots, const std::string &tenant,
          uint64_t seed = 7)
{
    Json request = Json::makeObject();
    request.set("verb", "submit");
    request.set("source", testSource());
    request.set("shots", static_cast<int64_t>(shots));
    request.set("seed", seed);
    request.set("label", "svc");
    request.set("tenant", tenant);
    Json response = service.handle(request);
    EXPECT_TRUE(response.getBool("ok", false)) << response.dump();
    return static_cast<uint64_t>(response.getInt("id", 0));
}

Json
statusOf(Service &service, uint64_t id)
{
    Json request = Json::makeObject();
    request.set("verb", "status");
    request.set("id", id);
    return service.handle(request);
}

} // namespace

// --------------------------------------------------------- QuotaManager

TEST(Quota, ActiveJobCeilingRejectsNamingTenantAndLimit)
{
    sched::QuotaConfig config;
    config.tenants["alice"].maxActiveJobs = 2;
    sched::QuotaManager quotas(config);
    quotas.admit("alice", 10, 0);
    quotas.admit("alice", 10, 0);
    try {
        quotas.admit("alice", 10, 0);
        FAIL() << "third submit should exceed the 2-job ceiling";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), ErrorCode::quotaExceeded);
        EXPECT_NE(error.message().find("alice"), std::string::npos);
        EXPECT_NE(error.message().find("limit 2"), std::string::npos);
    }
    // Another tenant is unaffected, and releasing frees the slot.
    quotas.admit("bob", 10, 0);
    quotas.release("alice", 10);
    quotas.admit("alice", 10, 0);
    EXPECT_EQ(quotas.activeJobs("alice"), 2);
}

TEST(Quota, ActiveShotCeilingCountsFootprint)
{
    sched::QuotaConfig config;
    config.defaults.maxActiveShots = 100;
    sched::QuotaManager quotas(config);
    quotas.admit("t", 80, 0);
    EXPECT_THROW(quotas.admit("t", 30, 0), Error);
    quotas.admit("t", 20, 0);  // exactly at the ceiling is fine.
    EXPECT_EQ(quotas.activeShots("t"), 100);
}

TEST(Quota, TokenBucketThrottlesSustainedRate)
{
    sched::QuotaConfig config;
    config.tenants["alice"].submitRatePerSec = 1.0;
    config.tenants["alice"].submitBurst = 2.0;
    sched::QuotaManager quotas(config);
    // The bucket starts full: the first burst of 2 passes.
    quotas.admit("alice", 1, 0);
    quotas.admit("alice", 1, 0);
    EXPECT_THROW(quotas.admit("alice", 1, 0), Error);
    // Half a second refills half a token — still short.
    EXPECT_THROW(quotas.admit("alice", 1, 500'000), Error);
    // A full second from the last refill: one token is back.
    quotas.admit("alice", 1, 1'600'000);
    // Rejections were counted per tenant and reason.
    EXPECT_GE(telemetry::registry().counterValue(
                  "eqasm_sched_quota_rejections_total",
                  {{"tenant", "alice"}, {"reason", "rate"}}),
              2u);
}

TEST(Quota, ConfigRoundTripAndStrictParse)
{
    Json json = Json::parse(R"({
        "defaults": {"max_active_jobs": 4},
        "tenants": {"a": {"submit_rate_per_sec": 2.5,
                          "submit_burst": 5}}
    })");
    sched::QuotaConfig config = sched::QuotaConfig::fromJson(json);
    EXPECT_EQ(config.defaults.maxActiveJobs, 4);
    EXPECT_DOUBLE_EQ(config.limitsFor("a").submitRatePerSec, 2.5);
    EXPECT_EQ(config.limitsFor("unknown").maxActiveJobs, 4);
    // Unknown keys and negative values are refusals naming the field.
    EXPECT_THROW(sched::QuotaConfig::fromJson(
                     Json::parse(R"({"defaults": {"max_jobs": 1}})")),
                 Error);
    EXPECT_THROW(
        sched::QuotaConfig::fromJson(Json::parse(
            R"({"defaults": {"max_active_jobs": -1}})")),
        Error);
    // toJson -> fromJson is stable.
    sched::QuotaConfig again =
        sched::QuotaConfig::fromJson(config.toJson());
    EXPECT_EQ(again.toJson().dump(), config.toJson().dump());
}

// -------------------------------------------------------------- Journal

TEST(Journal, JobSpecRoundTripIsStrict)
{
    Platform platform = Platform::twoQubit();
    JobSpec spec = testSpec(platform, 3, 128);
    JobSpec back = JobSpec::fromJson(spec.toJson());
    EXPECT_EQ(back.id, spec.id);
    EXPECT_EQ(back.label, spec.label);
    EXPECT_EQ(back.tenant, spec.tenant);
    EXPECT_EQ(back.shots, spec.shots);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.image, spec.image);
    Json bad = spec.toJson();
    bad.set("shots", "many");
    EXPECT_THROW(JobSpec::fromJson(bad), Error);
}

TEST(Journal, AcceptReplayAndTerminalEvents)
{
    Platform platform = Platform::twoQubit();
    std::string dir = freshDir("journal");
    Journal journal(dir);
    journal.appendAccept(testSpec(platform, 1, 64));
    journal.appendAccept(testSpec(platform, 2, 64));
    journal.appendEvent("done", 1, "fnv1a:deadbeef");
    Journal::Replay replay = journal.replay();
    ASSERT_EQ(replay.accepted.size(), 2u);
    EXPECT_EQ(replay.accepted[0].id, 1u);
    EXPECT_EQ(replay.terminal.at(1), "done");
    EXPECT_EQ(replay.terminalDetail.at(1), "fnv1a:deadbeef");
    EXPECT_EQ(replay.terminal.count(2), 0u);
    EXPECT_EQ(replay.maxId, 2u);
    EXPECT_FALSE(replay.tornTail);
}

TEST(Journal, TornFinalLineIsDroppedMidFileGarbageRefused)
{
    Platform platform = Platform::twoQubit();
    std::string dir = freshDir("torn");
    {
        Journal journal(dir);
        journal.appendAccept(testSpec(platform, 1, 64));
    }
    // A crash mid-append tears the final line: that submit was never
    // acknowledged, so replay drops it and carries on.
    {
        std::ofstream out(dir + "/intent.log", std::ios::app);
        out << "{\"event\":\"accept\",\"id\":2,\"jo";
    }
    {
        Journal journal(dir);
        Journal::Replay replay = journal.replay();
        EXPECT_EQ(replay.accepted.size(), 1u);
        EXPECT_TRUE(replay.tornTail);
    }
    // The same garbage *before* a valid line is corruption: refuse,
    // naming the file and line.
    {
        std::ofstream out(dir + "/intent.log", std::ios::app);
        out << "\n{\"event\":\"done\",\"id\":1}\n";
    }
    Journal journal(dir);
    try {
        journal.replay();
        FAIL() << "mid-file garbage must refuse";
    } catch (const Error &error) {
        EXPECT_NE(error.message().find("intent.log"),
                  std::string::npos);
        EXPECT_NE(error.message().find("line 2"), std::string::npos);
    }
}

TEST(Journal, CheckpointsFoldAndTamperingIsRefusedNamingTheFile)
{
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 2});
    std::string dir = freshDir("parts");
    Journal journal(dir);

    // Two disjoint genuine partial results as checkpoints.
    Job job;
    job.image = testImage(platform);
    job.shots = 96;
    job.seed = 7;
    job.label = "svc";
    job.range = {0, 32};
    BatchResult first = engine.submit(job).get();
    job.range = {64, 96};
    BatchResult second = engine.submit(job).get();
    journal.writePart(5, 0, 0, first);
    journal.writePart(5, 1, 0, second);

    BatchResult merged = journal.loadParts(5);
    EXPECT_EQ(merged.shots, 64u);
    auto gaps = missingShotRanges(merged.shotRanges, 96);
    ASSERT_EQ(gaps.size(), 1u);
    EXPECT_EQ(gaps[0].first, 32u);
    EXPECT_EQ(gaps[0].second, 64u);
    EXPECT_EQ(journal.maxEpoch(5), 1);

    // Flip a byte inside a checkpoint: the strict fromJson fingerprint
    // check refuses, and the error names the file.
    std::string victim = journal.jobDir(5) + "/part-000-000.json";
    std::string text;
    {
        std::ifstream in(victim);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }
    size_t pos = text.find("\"ones\": ");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 8] = text[pos + 8] == '1' ? '2' : '1';
    {
        std::ofstream out(victim);
        out << text;
    }
    try {
        journal.loadParts(5);
        FAIL() << "a tampered checkpoint must refuse";
    } catch (const Error &error) {
        EXPECT_NE(error.message().find("part-000-000.json"),
                  std::string::npos);
    }
}

TEST(Journal, ResultSupersedesParts)
{
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 2});
    std::string dir = freshDir("result");
    Journal journal(dir);
    Job job;
    job.image = testImage(platform);
    job.shots = 64;
    job.seed = 7;
    job.label = "svc";
    BatchResult result = engine.submit(job).get();
    journal.writePart(9, 0, 0, result);
    EXPECT_FALSE(journal.loadResult(9).has_value());
    journal.writeResult(9, result);
    auto loaded = journal.loadResult(9);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->countsFingerprint(),
              result.countsFingerprint());
    // The superseded part files are gone; loadParts finds nothing.
    EXPECT_EQ(journal.loadParts(9).shots, 0u);
}

// ------------------------------------------- engine shot-range helpers

TEST(ShotRanges, InsertAndComplement)
{
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    insertShotRange(ranges, 32, 64);
    insertShotRange(ranges, 0, 32);  // coalesces.
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0], (std::pair<uint64_t, uint64_t>{0, 64}));
    insertShotRange(ranges, 96, 128);
    EXPECT_THROW(insertShotRange(ranges, 60, 70), Error);  // overlap.
    EXPECT_THROW(insertShotRange(ranges, 5, 5), Error);    // empty.
    auto gaps = missingShotRanges(ranges, 160);
    ASSERT_EQ(gaps.size(), 2u);
    EXPECT_EQ(gaps[0], (std::pair<uint64_t, uint64_t>{64, 96}));
    EXPECT_EQ(gaps[1], (std::pair<uint64_t, uint64_t>{128, 160}));
    EXPECT_TRUE(missingShotRanges({{0, 8}}, 8).empty());
    EXPECT_EQ(missingShotRanges({}, 8).size(), 1u);
}

TEST(ShotRanges, PartialSnapshotsReportTrueCoverage)
{
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 2, .chunkShots = 16});
    Job job;
    job.image = testImage(platform);
    job.shots = 256;
    job.seed = 7;
    job.partialEveryChunks = 1;
    std::mutex mutex;
    std::vector<BatchResult> snapshots;
    job.onPartial = [&](const BatchResult &partial) {
        std::lock_guard<std::mutex> guard(mutex);
        snapshots.push_back(partial);
    };
    BatchResult final = engine.submit(std::move(job)).get();
    // The final result claims the whole range (shard provenance)...
    ASSERT_EQ(final.shotRanges.size(), 1u);
    EXPECT_EQ(final.shotRanges[0],
              (std::pair<uint64_t, uint64_t>{0, 256}));
    // ...but every snapshot covers exactly the shots it folded.
    std::lock_guard<std::mutex> guard(mutex);
    ASSERT_FALSE(snapshots.empty());
    for (const BatchResult &snapshot : snapshots) {
        uint64_t covered = 0;
        for (const auto &[begin, end] : snapshot.shotRanges)
            covered += end - begin;
        EXPECT_EQ(covered, snapshot.shots);
    }
}

// -------------------------------------------------------- Service verbs

TEST(Service, SubmitRunsToTheEngineFingerprint)
{
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 2});
    std::string dir = freshDir("svc_submit");
    Journal journal(dir);
    Service service(engine, journal, {});
    uint64_t id = submitVia(service, 256, "alice");
    service.waitIdle();
    Json status = statusOf(service, id);
    EXPECT_EQ(status.getString("state", ""), "done") << status.dump();
    EXPECT_EQ(status.getInt("shots_done", 0), 256);

    // The daemon's persisted result carries the same fingerprint as a
    // direct engine run of the identical job.
    Job job;
    job.image = testImage(platform);
    job.shots = 256;
    job.seed = 7;
    job.label = "svc";
    BatchResult direct = engine.submit(std::move(job)).get();
    EXPECT_EQ(status.getString("fingerprint", ""),
              direct.countsFingerprint());

    // status --result returns the full shard-format result.
    Json request = Json::makeObject();
    request.set("verb", "status");
    request.set("id", id);
    request.set("result", true);
    Json full = service.handle(request);
    ASSERT_TRUE(full.find("result") != nullptr);
    EXPECT_EQ(BatchResult::fromJson(*full.find("result"))
                  .countsFingerprint(),
              direct.countsFingerprint());
}

TEST(Service, OverQuotaTenantIsRejectedWhileOthersProceed)
{
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 2});
    std::string dir = freshDir("svc_quota");
    Journal journal(dir);
    sched::QuotaConfig quotas;
    // One token, effectively never refilled: alice's second submit is
    // deterministically over quota no matter how fast jobs finish.
    quotas.tenants["alice"].submitRatePerSec = 1e-9;
    quotas.tenants["alice"].submitBurst = 1.0;
    Service service(engine, journal, quotas);

    uint64_t first = submitVia(service, 64, "alice");
    EXPECT_GT(first, 0u);
    Json request = Json::makeObject();
    request.set("verb", "submit");
    request.set("source", testSource());
    request.set("shots", 64);
    request.set("tenant", "alice");
    Json rejected = service.handle(request);
    EXPECT_FALSE(rejected.getBool("ok", true));
    const Json *error = rejected.find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->getString("code", ""), "quota_exceeded");
    EXPECT_NE(error->getString("message", "").find("alice"),
              std::string::npos);
    // bob is unaffected.
    uint64_t bob = submitVia(service, 64, "bob");
    EXPECT_GT(bob, 0u);
    service.waitIdle();
    // The rejection shows up as a per-tenant counter in the metrics
    // verb's Prometheus exposition.
    Json metricsReq = Json::makeObject();
    metricsReq.set("verb", "metrics");
    std::string exposition =
        service.handle(metricsReq).getString("prometheus", "");
    EXPECT_NE(exposition.find("eqasm_sched_quota_rejections_total"),
              std::string::npos);
    EXPECT_NE(exposition.find("tenant=\"alice\""), std::string::npos);
}

TEST(Service, MetricsVerbCarriesBuildInfoAndUptime)
{
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 1});
    std::string dir = freshDir("svc_metrics");
    Journal journal(dir);
    Service service(engine, journal, {});
    Json request = Json::makeObject();
    request.set("verb", "metrics");
    std::string exposition =
        service.handle(request).getString("prometheus", "");
    EXPECT_NE(exposition.find("eqasm_build_info{version=\""),
              std::string::npos);
    EXPECT_NE(exposition.find("eqasm_uptime_seconds"),
              std::string::npos);
    EXPECT_NE(exposition.find("eqasm_service_requests_total"),
              std::string::npos);
}

TEST(Service, UnknownVerbAndUnknownIdAreTypedErrors)
{
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 1});
    std::string dir = freshDir("svc_errors");
    Journal journal(dir);
    Service service(engine, journal, {});
    Json bogus = Json::makeObject();
    bogus.set("verb", "frobnicate");
    Json response = service.handle(bogus);
    EXPECT_FALSE(response.getBool("ok", true));
    EXPECT_EQ(response.find("error")->getString("code", ""),
              "invalid_argument");
    Json status = statusOf(service, 999);
    EXPECT_EQ(status.find("error")->getString("code", ""),
              "not_found");
    // shutdown flips the drain flag.
    EXPECT_FALSE(service.shutdownRequested());
    Json shutdown = Json::makeObject();
    shutdown.set("verb", "shutdown");
    EXPECT_TRUE(service.handle(shutdown).getBool("ok", false));
    EXPECT_TRUE(service.shutdownRequested());
}

TEST(Service, CancelSettlesAsCancelled)
{
    Platform platform = Platform::twoQubit();
    // One thread and a big job so the cancel lands mid-run.
    ShotEngine engine(platform, {.threads = 1, .chunkShots = 8});
    std::string dir = freshDir("svc_cancel");
    Journal journal(dir);
    Service service(engine, journal, {});
    uint64_t id = submitVia(service, 20000, "alice");
    Json cancel = Json::makeObject();
    cancel.set("verb", "cancel");
    cancel.set("id", id);
    EXPECT_TRUE(service.handle(cancel).getBool("ok", false));
    service.waitIdle();
    Json status = statusOf(service, id);
    // Usually "cancelled"; "done" only if the tiny race let every
    // shot finish first — both are settled outcomes.
    std::string state = status.getString("state", "");
    EXPECT_TRUE(state == "cancelled" || state == "done") << state;
}

// -------------------------------------------------- crash recovery

/**
 * The resume property, exercised at an arbitrary interruption point:
 * an accept record plus a genuine checkpoint covering [0, k) must
 * resume to the exact fingerprint of an uninterrupted run, for any k.
 */
class ServiceRecovery : public ::testing::TestWithParam<int>
{
};

TEST_P(ServiceRecovery, ResumesToIdenticalFingerprint)
{
    const int shots = 256;
    const int k = GetParam();
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 2});

    // Reference: one uninterrupted run.
    Job reference;
    reference.image = testImage(platform);
    reference.shots = shots;
    reference.seed = 7;
    reference.label = "svc";
    std::string expected =
        engine.submit(reference).get().countsFingerprint();

    // Simulated crash: the journal holds the accept record and (for
    // k > 0) a checkpoint covering [0, k) — exactly what a kill -9
    // after the k-th shot's checkpoint leaves behind.
    std::string dir = freshDir(format("recover_%d", k));
    {
        Journal journal(dir);
        JobSpec spec = testSpec(platform, 1, shots);
        journal.appendAccept(spec);
        if (k > 0) {
            Job head = reference;
            head.range = {0, k};
            journal.writePart(1, 0, 0, engine.submit(head).get());
        }
    }

    // Restart: recover() resumes the uncovered range.
    Journal journal(dir);
    Service service(engine, journal, {});
    service.recover();
    service.waitIdle();
    Json status = statusOf(service, 1);
    EXPECT_EQ(status.getString("state", ""), "done") << status.dump();
    EXPECT_EQ(status.getString("fingerprint", ""), expected);
    // And the recovery survives a *second* restart as settled state.
    Journal journal2(dir);
    Service service2(engine, journal2, {});
    service2.recover();
    Json status2 = statusOf(service2, 1);
    EXPECT_EQ(status2.getString("state", ""), "done");
    EXPECT_EQ(status2.getString("fingerprint", ""), expected);
}

INSTANTIATE_TEST_SUITE_P(InterruptionPoints, ServiceRecovery,
                         ::testing::Values(0, 1, 32, 100, 255, 256));

TEST(ServiceRecoveryEdge, MultiGapResume)
{
    const int shots = 256;
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 2});
    Job reference;
    reference.image = testImage(platform);
    reference.shots = shots;
    reference.seed = 7;
    reference.label = "svc";
    std::string expected =
        engine.submit(reference).get().countsFingerprint();

    // Checkpoints from two different epochs covering [0,64) and
    // [128,192): the restart must fill both holes.
    std::string dir = freshDir("recover_gaps");
    {
        Journal journal(dir);
        journal.appendAccept(testSpec(platform, 1, shots));
        Job part = reference;
        part.range = {0, 64};
        journal.writePart(1, 0, 0, engine.submit(part).get());
        part.range = {128, 192};
        journal.writePart(1, 1, 0, engine.submit(part).get());
    }
    Journal journal(dir);
    Service service(engine, journal, {});
    service.recover();
    service.waitIdle();
    Json status = statusOf(service, 1);
    EXPECT_EQ(status.getString("state", ""), "done") << status.dump();
    EXPECT_EQ(status.getString("fingerprint", ""), expected);
}

TEST(ServiceRecoveryEdge, DeletedCheckpointRerunsTamperedRefuses)
{
    const int shots = 128;
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 2});
    Job reference;
    reference.image = testImage(platform);
    reference.shots = shots;
    reference.seed = 7;
    reference.label = "svc";
    std::string expected =
        engine.submit(reference).get().countsFingerprint();

    // Lays down an accept record plus a checkpoint covering [0, 64)
    // and returns the checkpoint's path.
    auto craftJournal = [&](const std::string &dir) {
        Journal journal(dir);
        journal.appendAccept(testSpec(platform, 1, shots));
        Job head = reference;
        head.range = {0, 64};
        journal.writePart(1, 0, 0, engine.submit(head).get());
        return journal.jobDir(1) + "/part-000-000.json";
    };

    // Deleting the checkpoint merely loses its coverage: the restart
    // reruns those shots and still lands on the exact fingerprint.
    {
        std::string dir = freshDir("recover_delete");
        fs::remove(craftJournal(dir));
        Journal journal(dir);
        Service service(engine, journal, {});
        service.recover();
        service.waitIdle();
        Json status = statusOf(service, 1);
        EXPECT_EQ(status.getString("state", ""), "done");
        EXPECT_EQ(status.getString("fingerprint", ""), expected);
    }
    // Tampering with it must refuse recovery, naming the file (the
    // alternative would be silently diverging counts).
    {
        std::string dir = freshDir("recover_tamper");
        std::string victim = craftJournal(dir);
        std::string text;
        {
            std::ifstream in(victim);
            std::ostringstream buffer;
            buffer << in.rdbuf();
            text = buffer.str();
        }
        size_t pos = text.find("\"shots\": ");
        ASSERT_NE(pos, std::string::npos);
        text[pos + 9] = '9';
        {
            std::ofstream out(victim);
            out << text;
        }
        Journal journal(dir);
        Service service(engine, journal, {});
        try {
            service.recover();
            FAIL() << "tampered checkpoint must refuse recovery";
        } catch (const Error &error) {
            EXPECT_NE(error.message().find("part-000-000.json"),
                      std::string::npos);
        }
    }
}

// ------------------------------------------------------ socket server

TEST(Server, ServesLineDelimitedJsonOverUnixSocket)
{
    Platform platform = Platform::twoQubit();
    ShotEngine engine(platform, {.threads = 2});
    std::string dir = freshDir("server");
    Journal journal(dir);
    Service service(engine, journal, {});
    ServerConfig config;
    config.unixPath = dir + "/sock";
    Server server(service, config);
    std::thread serving([&] { server.run(); });

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config.unixPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    auto roundTrip = [&](const std::string &request) {
        std::string line = request + "\n";
        EXPECT_EQ(::send(fd, line.data(), line.size(), 0),
                  static_cast<ssize_t>(line.size()));
        std::string buffer;
        char chunk[4096];
        while (buffer.find('\n') == std::string::npos) {
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n <= 0)
                break;
            buffer.append(chunk, static_cast<size_t>(n));
        }
        return Json::parse(buffer.substr(0, buffer.find('\n')));
    };

    Json submit = Json::makeObject();
    submit.set("verb", "submit");
    submit.set("source", testSource());
    submit.set("shots", 64);
    Json accepted = roundTrip(submit.dump());
    EXPECT_TRUE(accepted.getBool("ok", false)) << accepted.dump();
    int64_t id = accepted.getInt("id", 0);
    EXPECT_GT(id, 0);
    // Malformed JSON gets a parse_error response, connection stays up.
    Json bad = roundTrip("{nope");
    EXPECT_FALSE(bad.getBool("ok", true));
    service.waitIdle();
    Json status = Json::makeObject();
    status.set("verb", "status");
    status.set("id", id);
    EXPECT_EQ(roundTrip(status.dump()).getString("state", ""), "done");
    Json shutdown = Json::makeObject();
    shutdown.set("verb", "shutdown");
    EXPECT_TRUE(roundTrip(shutdown.dump()).getBool("ok", false));
    ::close(fd);
    serving.join();  // the shutdown verb drains the accept loop.
    EXPECT_EQ(telemetry::registry().gaugeValue(
                  "eqasm_service_connections_active"),
              0);
}
