/**
 * @file
 * Unit tests for the compiler backend: circuit validation, ASAP
 * scheduling, the Fig. 7 instruction-count model and executable code
 * generation (which must assemble and run).
 */
#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "compiler/circuit.h"
#include "compiler/codegen.h"
#include "compiler/schedule.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"

using namespace eqasm;
using namespace eqasm::compiler;

namespace {

isa::OperationSet
ops()
{
    return isa::OperationSet::defaultSet();
}

} // namespace

// ------------------------------------------------------------- circuit

TEST(Circuit, TwoQubitFraction)
{
    Circuit circuit;
    circuit.numQubits = 3;
    circuit.add1("X", 0);
    circuit.add1("Y", 1);
    circuit.add2("CZ", 0, 1);
    EXPECT_NEAR(circuit.twoQubitFraction(), 1.0 / 3.0, 1e-12);
}

TEST(Circuit, ValidateRejectsUnknownGate)
{
    Circuit circuit;
    circuit.numQubits = 1;
    circuit.add1("H", 0); // not in the transmon set
    EXPECT_THROW(circuit.validate(ops()), Error);
}

TEST(Circuit, ValidateRejectsWrongArity)
{
    Circuit circuit;
    circuit.numQubits = 2;
    circuit.add1("CZ", 0);
    EXPECT_THROW(circuit.validate(ops()), Error);
}

TEST(Circuit, ValidateRejectsOutOfRangeQubit)
{
    Circuit circuit;
    circuit.numQubits = 2;
    circuit.add1("X", 5);
    EXPECT_THROW(circuit.validate(ops()), Error);
}

// ------------------------------------------------------------ schedule

TEST(Schedule, IndependentGatesShareStartCycle)
{
    Circuit circuit;
    circuit.numQubits = 3;
    circuit.add1("X", 0);
    circuit.add1("Y", 1);
    circuit.add1("X90", 2);
    TimedCircuit timed = scheduleAsap(circuit, ops());
    for (const TimedGate &gate : timed.gates)
        EXPECT_EQ(gate.startCycle, 0u);
    EXPECT_EQ(timed.makespan(), 1u);
}

TEST(Schedule, DependentGatesSerialise)
{
    Circuit circuit;
    circuit.numQubits = 1;
    circuit.add1("X", 0);
    circuit.add1("Y", 0);
    circuit.add1("X90", 0);
    TimedCircuit timed = scheduleAsap(circuit, ops());
    EXPECT_EQ(timed.gates[0].startCycle, 0u);
    EXPECT_EQ(timed.gates[1].startCycle, 1u);
    EXPECT_EQ(timed.gates[2].startCycle, 2u);
}

TEST(Schedule, DurationsRespected)
{
    Circuit circuit;
    circuit.numQubits = 2;
    circuit.add2("CZ", 0, 1);   // 2 cycles
    circuit.add1("X", 0);       // starts at 2
    circuit.add1("MEASZ", 1);   // starts at 2, lasts 15
    circuit.add1("Y", 1);       // starts at 17
    TimedCircuit timed = scheduleAsap(circuit, ops());
    EXPECT_EQ(timed.gates[1].startCycle, 2u);
    EXPECT_EQ(timed.gates[2].startCycle, 2u);
    EXPECT_EQ(timed.gates[3].startCycle, 17u);
    EXPECT_EQ(timed.makespan(), 18u);
}

TEST(Schedule, TwoQubitGateWaitsForBothOperands)
{
    Circuit circuit;
    circuit.numQubits = 2;
    circuit.add1("X", 0);
    circuit.add1("X", 0);
    circuit.add2("CZ", 0, 1);
    TimedCircuit timed = scheduleAsap(circuit, ops());
    EXPECT_EQ(timed.gates[2].startCycle, 2u);
}

// -------------------------------------------- Fig. 7 instruction model

namespace {

/** Back-to-back single-qubit chain: n points, 1 op each, interval 1. */
TimedCircuit
chainCircuit(int length)
{
    Circuit circuit;
    circuit.numQubits = 1;
    for (int i = 0; i < length; ++i)
        circuit.add1("X", 0);
    return scheduleAsap(circuit, ops());
}

/** Parallel layer circuit: n layers of the same op on all qubits. */
TimedCircuit
layerCircuit(int layers, int qubits)
{
    Circuit circuit;
    circuit.numQubits = qubits;
    for (int layer = 0; layer < layers; ++layer) {
        for (int q = 0; q < qubits; ++q)
            circuit.add1("X", q);
    }
    return scheduleAsap(circuit, ops());
}

} // namespace

TEST(CountModel, Ts1ChargesOneQwaitPerPoint)
{
    CodegenOptions options;
    options.timing = TimingMethod::ts1;
    options.somq = false;
    options.vliwWidth = 1;
    TimedCircuit timed = chainCircuit(10);
    CodegenStats stats = countInstructions(timed, options);
    // Point 0 at cycle 0 needs no wait; 9 remaining points do.
    EXPECT_EQ(stats.qwaitInstructions, 9u);
    EXPECT_EQ(stats.bundleInstructions, 10u);
    EXPECT_EQ(stats.totalInstructions, 19u);
}

TEST(CountModel, Ts2FoldsWaitIntoBundleSlot)
{
    CodegenOptions options;
    options.timing = TimingMethod::ts2;
    options.somq = false;
    options.vliwWidth = 2;
    TimedCircuit timed = chainCircuit(10);
    CodegenStats stats = countInstructions(timed, options);
    // Each point: 1 op + 1 wait slot except the first -> 1 bundle each.
    EXPECT_EQ(stats.totalInstructions, 10u);
    EXPECT_EQ(stats.qwaitInstructions, 0u);
}

TEST(CountModel, Ts3ShortWaitsRideInPi)
{
    CodegenOptions options;
    options.timing = TimingMethod::ts3;
    options.preIntervalWidth = 3;
    options.somq = false;
    options.vliwWidth = 1;
    TimedCircuit timed = chainCircuit(10);
    CodegenStats stats = countInstructions(timed, options);
    EXPECT_EQ(stats.totalInstructions, 10u); // no QWAITs at all.
}

TEST(CountModel, Ts3LongWaitNeedsQwait)
{
    Circuit circuit;
    circuit.numQubits = 1;
    circuit.add1("X", 0);
    circuit.add1("MEASZ", 0); // 15-cycle duration -> interval 15 next
    circuit.add1("X", 0);
    TimedCircuit timed = scheduleAsap(circuit, ops());
    CodegenOptions options;
    options.timing = TimingMethod::ts3;
    options.preIntervalWidth = 3; // max PI 7 < 15
    options.vliwWidth = 1;
    CodegenStats stats = countInstructions(timed, options);
    EXPECT_EQ(stats.qwaitInstructions, 1u);

    options.preIntervalWidth = 4; // max PI 15 >= 15
    stats = countInstructions(timed, options);
    EXPECT_EQ(stats.qwaitInstructions, 0u);
}

TEST(CountModel, Ts2RequiresVliwWidthTwo)
{
    CodegenOptions options;
    options.timing = TimingMethod::ts2;
    options.vliwWidth = 1;
    EXPECT_THROW(countInstructions(chainCircuit(2), options), Error);
}

TEST(CountModel, SomqMergesSameNamedGates)
{
    CodegenOptions with;
    with.timing = TimingMethod::ts3;
    with.somq = true;
    with.vliwWidth = 1;
    CodegenOptions without = with;
    without.somq = false;

    TimedCircuit timed = layerCircuit(5, 7);
    CodegenStats merged = countInstructions(timed, with);
    CodegenStats flat = countInstructions(timed, without);
    // All 7 qubits run X simultaneously: one slot per layer with SOMQ.
    EXPECT_EQ(merged.operationSlots, 5u);
    EXPECT_EQ(flat.operationSlots, 35u);
    EXPECT_LT(merged.totalInstructions, flat.totalInstructions);
}

TEST(CountModel, WiderVliwReducesInstructions)
{
    // Layers of *different* gates so SOMQ cannot merge them.
    Circuit circuit;
    circuit.numQubits = 4;
    const char *gates[] = {"X", "Y", "X90", "Y90"};
    for (int layer = 0; layer < 10; ++layer) {
        for (int q = 0; q < 4; ++q)
            circuit.add1(gates[q], q);
    }
    TimedCircuit timed = scheduleAsap(circuit, ops());
    CodegenOptions options;
    options.timing = TimingMethod::ts3;
    options.somq = false;
    uint64_t previous = ~0ull;
    for (int w : {1, 2, 4}) {
        options.vliwWidth = w;
        CodegenStats stats = countInstructions(timed, options);
        EXPECT_LT(stats.totalInstructions, previous) << "w=" << w;
        previous = stats.totalInstructions;
    }
}

TEST(CountModel, OpsPerBundleBounded)
{
    CodegenOptions options;
    options.vliwWidth = 2;
    TimedCircuit timed = layerCircuit(8, 7);
    CodegenStats stats = countInstructions(timed, options);
    EXPECT_GT(stats.opsPerBundle(), 0.0);
    EXPECT_LE(stats.opsPerBundle(), 2.0);
}

// ------------------------------------------------------------- codegen

TEST(Codegen, GeneratedProgramAssembles)
{
    Circuit circuit;
    circuit.numQubits = 3; // two-qubit chip address space {0, _, 2}
    circuit.add1("Y90", 0);
    circuit.add1("Y90", 2);
    circuit.add2("CZ", 0, 2);
    circuit.add1("MEASZ", 0);
    circuit.add1("MEASZ", 2);
    TimedCircuit timed = scheduleAsap(circuit, ops());
    std::string source = generateProgram(timed, ops(),
                                         chip::Topology::twoQubit());
    assembler::Assembler asm_(ops(), chip::Topology::twoQubit());
    EXPECT_NO_THROW(asm_.assemble(source)) << source;
}

TEST(Codegen, GeneratedProgramExecutesCorrectPhysics)
{
    // X on qubit 0, nothing on qubit 2, measure both — through codegen,
    // assembler, binary, decoder, microarchitecture and device.
    Circuit circuit;
    circuit.numQubits = 3;
    circuit.add1("X", 0);
    circuit.add1("MEASZ", 0);
    circuit.add1("MEASZ", 2);
    TimedCircuit timed = scheduleAsap(circuit, ops());
    std::string source = generateProgram(timed, ops(),
                                         chip::Topology::twoQubit());

    runtime::QuantumProcessor processor(
        runtime::Platform::ideal(runtime::Platform::twoQubit()), 5);
    processor.loadSource(source);
    auto record = processor.runShot();
    EXPECT_EQ(record.lastMeasurement(0), 1);
    EXPECT_EQ(record.lastMeasurement(2), 0);
}

TEST(Codegen, ReusesTargetRegisters)
{
    // The same mask used repeatedly must not emit repeated SMIS.
    Circuit circuit;
    circuit.numQubits = 1;
    for (int i = 0; i < 20; ++i)
        circuit.add1("X", 0);
    TimedCircuit timed = scheduleAsap(circuit, ops());
    std::string source = generateProgram(timed, ops(),
                                         chip::Topology::twoQubit());
    size_t count = 0;
    for (size_t pos = source.find("SMIS"); pos != std::string::npos;
         pos = source.find("SMIS", pos + 1)) {
        ++count;
    }
    EXPECT_EQ(count, 1u);
}

TEST(Codegen, RejectsDisallowedPair)
{
    Circuit circuit;
    circuit.numQubits = 3;
    circuit.add2("CZ", 0, 1); // qubit 1 is the address hole
    TimedCircuit timed = scheduleAsap(circuit, ops());
    EXPECT_THROW(
        generateProgram(timed, ops(), chip::Topology::twoQubit()),
        Error);
}

TEST(Codegen, LongIntervalEmitsQwait)
{
    Circuit circuit;
    circuit.numQubits = 1;
    circuit.add1("MEASZ", 0);
    circuit.add1("X", 0); // 15 cycles later > max PI 7
    TimedCircuit timed = scheduleAsap(circuit, ops());
    std::string source = generateProgram(timed, ops(),
                                         chip::Topology::twoQubit());
    EXPECT_NE(source.find("QWAIT 15"), std::string::npos) << source;
}
