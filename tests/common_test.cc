/**
 * @file
 * Unit tests for the common substrate: bit utilities, RNG, strings,
 * JSON and table rendering.
 */
#include <cmath>
#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/error.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"

using namespace eqasm;

// ---------------------------------------------------------------- bits

TEST(Bits, MaskCoversInclusiveRange)
{
    EXPECT_EQ(bitMask(0, 0), 0x1u);
    EXPECT_EQ(bitMask(3, 0), 0xfu);
    EXPECT_EQ(bitMask(7, 4), 0xf0u);
    EXPECT_EQ(bitMask(63, 0), ~uint64_t{0});
}

TEST(Bits, ExtractAndInsertRoundTrip)
{
    uint64_t word = 0;
    word = insertBits(word, 30, 25, 0x2a);
    word = insertBits(word, 24, 20, 0x11);
    EXPECT_EQ(bits(word, 30, 25), 0x2au);
    EXPECT_EQ(bits(word, 24, 20), 0x11u);
    EXPECT_EQ(bits(word, 19, 0), 0u);
}

TEST(Bits, InsertTruncatesOversizedField)
{
    uint64_t word = insertBits(0, 3, 0, 0xff);
    EXPECT_EQ(word, 0xfu);
}

TEST(Bits, SingleBit)
{
    EXPECT_EQ(bit(0b100, 2), 1u);
    EXPECT_EQ(bit(0b100, 1), 0u);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0xfffff, 20), -1);
    EXPECT_EQ(signExtend(0x7ffff, 20), 0x7ffff);
    EXPECT_EQ(signExtend(0x80000, 20), -524288);
    EXPECT_EQ(signExtend(0, 20), 0);
    EXPECT_EQ(signExtend(5, 4), 5);
    EXPECT_EQ(signExtend(0xf, 4), -1);
}

TEST(Bits, FitsUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(7, 3));
    EXPECT_FALSE(fitsUnsigned(8, 3));
    EXPECT_TRUE(fitsUnsigned(0, 1));
}

TEST(Bits, FitsSigned)
{
    EXPECT_TRUE(fitsSigned(-4, 3));
    EXPECT_TRUE(fitsSigned(3, 3));
    EXPECT_FALSE(fitsSigned(4, 3));
    EXPECT_FALSE(fitsSigned(-5, 3));
}

TEST(Bits, Popcount)
{
    EXPECT_EQ(popcount(0), 0);
    EXPECT_EQ(popcount(0b1011), 3);
    EXPECT_EQ(popcount(~uint64_t{0}), 64);
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double value = rng.uniform();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(24), 24u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(3);
    std::vector<int> counts(6, 0);
    for (int i = 0; i < 6000; ++i)
        ++counts[rng.uniformInt(6)];
    for (int count : counts)
        EXPECT_GT(count, 800);
}

TEST(Rng, BernoulliEdges)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng rng(5);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(9);
    Rng child = parent.fork();
    EXPECT_NE(parent.next(), child.next());
}

// ------------------------------------------------------------- strings

TEST(Strings, Format)
{
    EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(format("%05d", 42), "00042");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y \t"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, CaseConversion)
{
    EXPECT_EQ(toLower("MeasZ"), "measz");
    EXPECT_EQ(toUpper("x90"), "X90");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("rx:90", "rx:"));
    EXPECT_FALSE(startsWith("rx", "rx:"));
}

TEST(Strings, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ParseIntDecimal)
{
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt("-17"), -17);
    EXPECT_EQ(parseInt("+3"), 3);
    EXPECT_EQ(parseInt("  10 "), 10);
}

TEST(Strings, ParseIntHexAndBinary)
{
    EXPECT_EQ(parseInt("0x1f"), 31);
    EXPECT_EQ(parseInt("0b101"), 5);
    EXPECT_EQ(parseInt("-0x10"), -16);
}

TEST(Strings, ParseIntRejectsGarbage)
{
    EXPECT_THROW(parseInt(""), Error);
    EXPECT_THROW(parseInt("x"), Error);
    EXPECT_THROW(parseInt("12a"), Error);
    EXPECT_THROW(parseInt("-"), Error);
    EXPECT_THROW(parseInt("99999999999999999999999"), Error);
}

// ---------------------------------------------------------------- json

TEST(Json, ParseScalars)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_EQ(Json::parse("true").asBool(), true);
    EXPECT_EQ(Json::parse("false").asBool(), false);
    EXPECT_EQ(Json::parse("42").asInt(), 42);
    EXPECT_DOUBLE_EQ(Json::parse("-2.5e2").asDouble(), -250.0);
    EXPECT_EQ(Json::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParseNested)
{
    Json doc = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
    EXPECT_EQ(doc.at("a").size(), 3u);
    EXPECT_EQ(doc.at("a").at(size_t{2}).at("b").asBool(), true);
    EXPECT_EQ(doc.at("c").asString(), "x");
}

TEST(Json, ParseComments)
{
    Json doc = Json::parse("// leading\n{\"a\": 1 /* mid */, \"b\": 2}");
    EXPECT_EQ(doc.at("a").asInt(), 1);
    EXPECT_EQ(doc.at("b").asInt(), 2);
}

TEST(Json, StringEscapes)
{
    Json doc = Json::parse(R"("a\nb\t\"q\" A")");
    EXPECT_EQ(doc.asString(), "a\nb\t\"q\" A");
}

TEST(Json, UnicodeEscape)
{
    EXPECT_EQ(Json::parse(R"("A")").asString(), "A");
}

TEST(Json, RejectsMalformed)
{
    EXPECT_THROW(Json::parse(""), Error);
    EXPECT_THROW(Json::parse("{"), Error);
    EXPECT_THROW(Json::parse("[1,]"), Error);
    EXPECT_THROW(Json::parse("tru"), Error);
    EXPECT_THROW(Json::parse("1 2"), Error);
    EXPECT_THROW(Json::parse(R"({"a":1, "a":2})"), Error);
}

TEST(Json, ErrorsCarryLocation)
{
    try {
        Json::parse("{\n  \"a\": !\n}");
        FAIL() << "expected parse error";
    } catch (const Error &error) {
        EXPECT_NE(error.message().find("json:2"), std::string::npos)
            << error.message();
    }
}

TEST(Json, AccessorsEnforceKind)
{
    Json number(1.5);
    EXPECT_THROW(number.asString(), Error);
    EXPECT_THROW(number.asBool(), Error);
    EXPECT_THROW(number.asArray(), Error);
    EXPECT_THROW(number.asInt(), Error); // not integral
    EXPECT_THROW(Json("x").asDouble(), Error);
}

TEST(Json, DefaultingGetters)
{
    Json doc = Json::parse(R"({"a": 1})");
    EXPECT_EQ(doc.getInt("a", 9), 1);
    EXPECT_EQ(doc.getInt("missing", 9), 9);
    EXPECT_EQ(doc.getString("missing", "d"), "d");
    EXPECT_EQ(doc.getBool("missing", true), true);
    EXPECT_DOUBLE_EQ(doc.getDouble("missing", 2.5), 2.5);
}

TEST(Json, DumpParseRoundTrip)
{
    const char *source =
        R"({"name":"chip","qubits":7,"edges":[[2,0],[0,2]],"f":1.5})";
    Json doc = Json::parse(source);
    Json reparsed = Json::parse(doc.dump());
    EXPECT_TRUE(doc == reparsed);
    Json pretty = Json::parse(doc.dump(2));
    EXPECT_TRUE(doc == pretty);
}

TEST(Json, SetReplacesExistingKey)
{
    Json obj = Json::makeObject();
    obj.set("k", 1);
    obj.set("k", 2);
    EXPECT_EQ(obj.size(), 1u);
    EXPECT_EQ(obj.at("k").asInt(), 2);
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json obj = Json::makeObject();
    obj.set("z", 1);
    obj.set("a", 2);
    EXPECT_EQ(obj.asObject()[0].first, "z");
    EXPECT_EQ(obj.asObject()[1].first, "a");
}

TEST(Json, FindReturnsNullForMissing)
{
    Json doc = Json::parse(R"({"a": 1})");
    EXPECT_EQ(doc.find("b"), nullptr);
    EXPECT_NE(doc.find("a"), nullptr);
    EXPECT_EQ(Json(1).find("a"), nullptr);
    EXPECT_THROW(doc.at("b"), Error);
}

// --------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns)
{
    Table table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::string out = table.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| longer"), std::string::npos);
    auto lines = split(out, '\n');
    size_t width = lines[0].size();
    for (const auto &line : lines) {
        if (!line.empty())
            EXPECT_EQ(line.size(), width);
    }
}

TEST(Table, SeparatorRows)
{
    Table table({"a"});
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    EXPECT_EQ(table.rowCount(), 3u);
    EXPECT_FALSE(table.render().empty());
}

// --------------------------------------------------------------- error

TEST(ErrorHandling, CodesHaveNames)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::parseError), "parse_error");
    EXPECT_STREQ(errorCodeName(ErrorCode::configError), "config_error");
}

TEST(ErrorHandling, WhatEmbedsCategory)
{
    Error error(ErrorCode::notFound, "no such thing");
    EXPECT_NE(std::string(error.what()).find("not_found"),
              std::string::npos);
    EXPECT_EQ(error.code(), ErrorCode::notFound);
    EXPECT_EQ(error.message(), "no such thing");
}
