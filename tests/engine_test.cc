/**
 * @file
 * Tests for the parallel shot-execution engine: counter-based per-shot
 * RNG streams, thread-count-independent deterministic aggregation,
 * equivalence with the serial QuantumProcessor::run path, job queueing
 * and error propagation through the worker pool.
 */
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "engine/shot_engine.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "workloads/experiments.h"

using namespace eqasm;
using namespace eqasm::engine;
using namespace eqasm::runtime;

namespace {

/** Assembles @p source for @p platform into a Job. */
Job
makeJob(const Platform &platform, const std::string &source, int shots,
        uint64_t seed)
{
    assembler::Assembler asm_(platform.operations, platform.topology,
                              platform.params);
    Job job;
    job.image = asm_.assemble(source).image;
    job.shots = shots;
    job.seed = seed;
    return job;
}

/** The noisy active-reset workload: plenty of randomness per shot. */
Job
activeResetJob(const Platform &platform, int shots, uint64_t seed)
{
    return makeJob(platform, workloads::activeResetProgram(2), shots,
                   seed);
}

/** Serialised aggregates with the (legitimately nondeterministic)
 *  wall-clock and pool-size provenance fields zeroed. */
std::string
aggregateKey(const BatchResult &result)
{
    return result.countsFingerprint();
}

} // namespace

// ------------------------------------------------------------ Rng::forShot

TEST(RngForShot, DeterministicPerIndex)
{
    Rng a = Rng::forShot(42, 7);
    Rng b = Rng::forShot(42, 7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngForShot, DistinctAcrossIndicesAndSeeds)
{
    EXPECT_NE(Rng::forShot(1, 0).next(), Rng::forShot(1, 1).next());
    EXPECT_NE(Rng::forShot(1, 0).next(), Rng::forShot(2, 0).next());
    // Consecutive indices stay distinct over a longer window.
    Rng previous = Rng::forShot(9, 0);
    for (uint64_t index = 1; index < 64; ++index) {
        Rng current = Rng::forShot(9, index);
        EXPECT_NE(previous.next(), current.next());
        previous = Rng::forShot(9, index);
    }
}

// -------------------------------------------------- SimulatedDevice seeking

TEST(DeviceSeek, ShotIsReproducibleWithoutReplay)
{
    // Run five noisy shots serially, then seek back to shot 2: the
    // replayed shot must reproduce the original bits without the device
    // having to replay shots 0 and 1 first.
    Platform platform = Platform::twoQubit();
    QuantumProcessor processor(platform, 11);
    processor.loadSource(workloads::activeResetProgram(2));
    std::vector<std::vector<int>> bits;
    for (int shot = 0; shot < 5; ++shot) {
        ShotRecord record = processor.runShot();
        std::vector<int> shot_bits;
        for (const auto &measurement : record.measurements)
            shot_bits.push_back(measurement.bit);
        bits.push_back(shot_bits);
    }
    processor.device().seekShot(2);
    ShotRecord replayed = processor.runShot();
    std::vector<int> replayed_bits;
    for (const auto &measurement : replayed.measurements)
        replayed_bits.push_back(measurement.bit);
    EXPECT_EQ(replayed_bits, bits[2]);
}

// ------------------------------------------------------------- BatchResult

TEST(BatchResult, MergeIsCommutative)
{
    Platform platform = Platform::twoQubit();
    QuantumProcessor processor(platform, 5);
    processor.loadSource(workloads::activeResetProgram(2));

    BatchResult left, right, forward, backward;
    std::vector<ShotRecord> records = processor.run(6);
    for (int shot = 0; shot < 3; ++shot)
        left.addShot(records[static_cast<size_t>(shot)]);
    for (int shot = 3; shot < 6; ++shot)
        right.addShot(records[static_cast<size_t>(shot)]);

    forward.merge(left);
    forward.merge(right);
    backward.merge(right);
    backward.merge(left);
    EXPECT_EQ(forward.toJson().dump(), backward.toJson().dump());
    EXPECT_EQ(forward.shots, 6u);
}

TEST(BatchResult, FractionOneMatchesSemantics)
{
    BatchResult result;
    EXPECT_THROW(result.fractionOne(0), Error);

    Platform platform = Platform::ideal(Platform::twoQubit());
    QuantumProcessor processor(platform, 1);
    processor.loadSource("SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\n"
                         "QWAIT 50\nSTOP\n");
    for (const ShotRecord &record : processor.run(4))
        result.addShot(record);
    EXPECT_DOUBLE_EQ(result.fractionOne(0), 1.0);
    // Qubit 2 was never measured.
    EXPECT_THROW(result.fractionOne(2), Error);
    EXPECT_EQ(result.histogram.at("q0=1"), 4u);
}

// -------------------------------------------------------------- ShotEngine

TEST(ShotEngine, SameSeedIdenticalAcrossThreadCounts)
{
    Platform platform = Platform::twoQubit();
    Job job = activeResetJob(platform, 240, 77);

    EngineConfig serial;
    serial.threads = 1;
    ShotEngine one(platform, serial);
    BatchResult reference = one.run(job);

    for (int threads : {2, 4}) {
        // A tiny chunk size maximises scheduling interleave.
        EngineConfig config;
        config.threads = threads;
        config.chunkShots = 3;
        ShotEngine pool(platform, config);
        BatchResult result = pool.run(job);
        EXPECT_EQ(aggregateKey(result), aggregateKey(reference))
            << "thread count " << threads
            << " changed the aggregated result";
    }
}

TEST(ShotEngine, BatchEqualsSerialRunAggregation)
{
    Platform platform = Platform::twoQubit();
    const int shots = 120;
    const uint64_t seed = 31;

    QuantumProcessor serial(platform, seed);
    serial.loadSource(workloads::activeResetProgram(2));
    std::vector<ShotRecord> records = serial.run(shots);
    BatchResult expected;
    for (const ShotRecord &record : records)
        expected.addShot(record);

    QuantumProcessor batch(platform, seed);
    batch.loadSource(workloads::activeResetProgram(2));
    BatchResult result = batch.runBatch(shots, 4);

    EXPECT_EQ(result.shots, expected.shots);
    EXPECT_EQ(result.qubitCounts.at(2).ones,
              expected.qubitCounts.at(2).ones);
    EXPECT_EQ(result.histogram, expected.histogram);
    EXPECT_EQ(result.stats.cycles, expected.stats.cycles);
    EXPECT_EQ(result.stats.triggered, expected.stats.triggered);
    EXPECT_DOUBLE_EQ(result.fractionOne(2),
                     serial.fractionOne(records, 2));
}

TEST(ShotEngine, QueuedJobsAllComplete)
{
    Platform platform = Platform::ideal(Platform::twoQubit());
    EngineConfig config;
    config.threads = 2;
    config.chunkShots = 8;
    ShotEngine pool(platform, config);

    Job excite = makeJob(platform,
                         "SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\n"
                         "QWAIT 50\nSTOP\n",
                         64, 1);
    Job idle = makeJob(platform,
                       "SMIS S0, {0}\nQWAIT 100\nMEASZ S0\n"
                       "QWAIT 50\nSTOP\n",
                       64, 2);
    auto excited = pool.submit(excite);
    auto ground = pool.submit(idle);
    BatchResult excited_result = excited.get();
    BatchResult ground_result = ground.get();
    EXPECT_DOUBLE_EQ(excited_result.fractionOne(0), 1.0);
    EXPECT_DOUBLE_EQ(ground_result.fractionOne(0), 0.0);
    EXPECT_EQ(excited_result.shots, 64u);
    EXPECT_EQ(ground_result.shots, 64u);
}

TEST(ShotEngine, ErrorInShotSurfacesWithoutDeadlock)
{
    Platform platform = Platform::ideal(Platform::twoQubit());
    EngineConfig config;
    config.threads = 4;
    config.chunkShots = 2;
    ShotEngine pool(platform, config);

    // X lands on the qubit while the measurement still owns it: the
    // device raises a busy-qubit violation in every shot.
    Job bad = makeJob(platform,
                      "SMIS S0, {0}\nQWAIT 100\nMEASZ S0\nX S0\n"
                      "QWAIT 50\nSTOP\n",
                      100, 1);
    EXPECT_THROW(pool.run(bad), Error);

    // The pool survives the failed job and serves the next one.
    Job good = makeJob(platform,
                       "SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\n"
                       "QWAIT 50\nSTOP\n",
                       32, 1);
    BatchResult result = pool.run(good);
    EXPECT_DOUBLE_EQ(result.fractionOne(0), 1.0);
}

TEST(ShotEngine, RejectsNonPositiveShotCountsNamingTheJob)
{
    Platform platform = Platform::ideal(Platform::twoQubit());
    EngineConfig config;
    config.threads = 1;
    ShotEngine pool(platform, config);

    Job zero;
    zero.shots = 0;
    zero.label = "zero-shot-job";
    try {
        pool.submit(std::move(zero));
        FAIL() << "a zero-shot job must be rejected";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), ErrorCode::invalidArgument);
        EXPECT_NE(error.message().find("zero-shot-job"),
                  std::string::npos)
            << error.message();
    }

    Job negative;
    negative.shots = -128;
    negative.label = "negative-shot-job";
    try {
        pool.submit(std::move(negative));
        FAIL() << "a negative-shot job must be rejected";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), ErrorCode::invalidArgument);
        EXPECT_NE(error.message().find("negative-shot-job"),
                  std::string::npos)
            << error.message();
        EXPECT_NE(error.message().find("-128"), std::string::npos)
            << error.message();
    }

    // The pool still serves real work after the rejections.
    Job good = makeJob(platform,
                       "SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\n"
                       "QWAIT 50\nSTOP\n",
                       16, 1);
    EXPECT_DOUBLE_EQ(pool.run(good).fractionOne(0), 1.0);
}
