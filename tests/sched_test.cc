/**
 * @file
 * Tests for the multi-tenant job scheduler: policy ordering (FIFO,
 * priority lanes, fair-share deficit round-robin), preemption at chunk
 * boundaries, JobHandle cancellation / progress / streaming, and the
 * load-bearing property of the whole subsystem — every policy at every
 * thread count folds the same job to the identical countsFingerprint().
 */
#include <gtest/gtest.h>

#include <future>
#include <map>
#include <mutex>
#include <vector>

#include "assembler/assembler.h"
#include "common/error.h"
#include "engine/shot_engine.h"
#include "runtime/platform.h"
#include "sched/job_handle.h"
#include "sched/job_scheduler.h"
#include "workloads/experiments.h"

using namespace eqasm;
using namespace eqasm::engine;
using namespace eqasm::runtime;

namespace {

/** Assembles @p source for @p platform into a Job. */
Job
makeJob(const Platform &platform, const std::string &source, int shots,
        uint64_t seed)
{
    assembler::Assembler asm_(platform.operations, platform.topology,
                              platform.params);
    Job job;
    job.image = asm_.assemble(source).image;
    job.shots = shots;
    job.seed = seed;
    return job;
}

/** The noisy active-reset workload: plenty of randomness per shot. */
Job
activeResetJob(const Platform &platform, int shots, uint64_t seed)
{
    return makeJob(platform, workloads::activeResetProgram(2), shots,
                   seed);
}

} // namespace

// ------------------------------------------------------- policy parsing

TEST(Policy, ParseAndName)
{
    EXPECT_EQ(sched::parsePolicy("fifo"), sched::Policy::fifo);
    EXPECT_EQ(sched::parsePolicy("priority"), sched::Policy::priority);
    EXPECT_EQ(sched::parsePolicy("fair"), sched::Policy::fairShare);
    EXPECT_EQ(sched::parsePolicy("fair_share"),
              sched::Policy::fairShare);
    EXPECT_EQ(sched::parsePolicy("bogus"), std::nullopt);
    EXPECT_STREQ(sched::policyName(sched::Policy::fifo), "fifo");
    EXPECT_STREQ(sched::policyName(sched::Policy::priority),
                 "priority");
    EXPECT_STREQ(sched::policyName(sched::Policy::fairShare),
                 "fair_share");
}

// -------------------------------------------------- JobScheduler (unit)

TEST(JobScheduler, FifoServesAdmissionOrder)
{
    sched::JobScheduler scheduler;
    scheduler.enqueue({1, "", 0, 0});
    scheduler.enqueue({2, "", 5, 0});  // priority ignored under fifo.
    EXPECT_EQ(scheduler.pickNext(), 1u);
    EXPECT_EQ(scheduler.pickNext(), 1u);  // stays until removed.
    scheduler.remove(1);
    EXPECT_EQ(scheduler.pickNext(), 2u);
    scheduler.remove(2);
    EXPECT_TRUE(scheduler.empty());
    EXPECT_EQ(scheduler.pickNext(), 0u);
}

TEST(JobScheduler, PriorityPreemptsAtNextPick)
{
    sched::SchedulerConfig config;
    config.policy = sched::Policy::priority;
    sched::JobScheduler scheduler(config);
    scheduler.enqueue({1, "", 0, 0});
    EXPECT_EQ(scheduler.pickNext(), 1u);
    // A higher-priority arrival claims the very next visit.
    scheduler.enqueue({2, "", 10, 0});
    EXPECT_EQ(scheduler.pickNext(), 2u);
    scheduler.remove(2);
    EXPECT_EQ(scheduler.pickNext(), 1u);
}

TEST(JobScheduler, PriorityTiesBreakByDeadlineThenAdmission)
{
    sched::SchedulerConfig config;
    config.policy = sched::Policy::priority;
    sched::JobScheduler scheduler(config);
    scheduler.enqueue({1, "", 5, 0});       // no deadline.
    scheduler.enqueue({2, "", 5, 8000});    // soonest deadline.
    scheduler.enqueue({3, "", 5, 9000});
    EXPECT_EQ(scheduler.pickNext(), 2u);
    scheduler.remove(2);
    EXPECT_EQ(scheduler.pickNext(), 3u);
    scheduler.remove(3);
    EXPECT_EQ(scheduler.pickNext(), 1u);

    scheduler.enqueue({4, "", 5, 0});  // same lane, admitted later.
    EXPECT_EQ(scheduler.pickNext(), 1u);
}

TEST(JobScheduler, FairShareHonoursWeights)
{
    sched::SchedulerConfig config;
    config.policy = sched::Policy::fairShare;
    config.quantumShots = 8;
    config.tenantWeights["heavy"] = 3;
    sched::JobScheduler scheduler(config);
    scheduler.enqueue({1, "heavy", 0, 0});
    scheduler.enqueue({2, "light", 0, 0});

    // Claim fixed-size chunks wherever the scheduler points; over many
    // visits the shots served per tenant track the 3:1 weights.
    std::map<uint64_t, int> served;
    const int chunk = 4;
    for (int visit = 0; visit < 240; ++visit) {
        uint64_t id = scheduler.pickNext();
        ASSERT_NE(id, 0u);
        served[id] += chunk;
        scheduler.charge(id, chunk);
    }
    double ratio = static_cast<double>(served[1]) /
                   static_cast<double>(served[2]);
    EXPECT_NEAR(ratio, 3.0, 0.5) << "heavy=" << served[1]
                                 << " light=" << served[2];
}

TEST(JobScheduler, FairShareIdleTenantKeepsNoCredit)
{
    sched::SchedulerConfig config;
    config.policy = sched::Policy::fairShare;
    config.quantumShots = 4;
    sched::JobScheduler scheduler(config);

    // Tenant a drains alone for a while...
    scheduler.enqueue({1, "a", 0, 0});
    for (int visit = 0; visit < 50; ++visit) {
        EXPECT_EQ(scheduler.pickNext(), 1u);
        scheduler.charge(1, 4);
    }
    // ...then b arrives and is served promptly (fresh quantum), while
    // a (deep in deficit debt is forgiven nothing) still gets turns.
    scheduler.enqueue({2, "b", 0, 0});
    std::map<uint64_t, int> visits;
    for (int visit = 0; visit < 40; ++visit) {
        uint64_t id = scheduler.pickNext();
        ++visits[id];
        scheduler.charge(id, 4);
    }
    EXPECT_GT(visits[1], 0);
    EXPECT_GT(visits[2], 0);

    scheduler.remove(1);
    scheduler.remove(2);
    EXPECT_TRUE(scheduler.empty());
}

// ------------------------------------- determinism across the policies

TEST(SchedulerDeterminism, PoliciesAndThreadCountsAgreePerJob)
{
    Platform platform = Platform::twoQubit();

    // Three noisy jobs with distinct seeds, tenants and priorities.
    struct Spec {
        int shots;
        uint64_t seed;
        const char *label;
        const char *tenant;
        int priority;
    };
    const Spec specs[] = {
        {90, 5, "job_a", "alpha", 0},
        {120, 7, "job_b", "beta", 3},
        {60, 9, "job_c", "alpha", 1},
    };

    // label -> fingerprint of the first run; all others must match.
    std::map<std::string, std::string> reference;
    for (sched::Policy policy :
         {sched::Policy::fifo, sched::Policy::priority,
          sched::Policy::fairShare}) {
        for (int threads : {1, 2, 4}) {
            EngineConfig config;
            config.threads = threads;
            config.chunkShots = 3;  // maximise interleave.
            config.scheduler.policy = policy;
            config.scheduler.quantumShots = 6;
            config.scheduler.tenantWeights["beta"] = 2;
            ShotEngine engine(platform, config);

            std::vector<sched::JobHandle> handles;
            for (const Spec &spec : specs) {
                Job job = activeResetJob(platform, spec.shots,
                                         spec.seed);
                job.label = spec.label;
                job.tenant = spec.tenant;
                job.priority = spec.priority;
                handles.push_back(engine.submit(std::move(job)));
            }
            for (size_t i = 0; i < handles.size(); ++i) {
                BatchResult result = handles[i].get();
                std::string key = result.countsFingerprint();
                auto [it, inserted] =
                    reference.emplace(specs[i].label, key);
                EXPECT_EQ(it->second, key)
                    << specs[i].label << " diverged under policy "
                    << sched::policyName(policy) << " at " << threads
                    << " threads";
            }
        }
    }
}

// ------------------------------------------------ preemption behaviour

TEST(SchedulerPreemption, HighPriorityOvertakesRunningBatch)
{
    Platform platform = Platform::ideal(Platform::twoQubit());
    EngineConfig config;
    config.threads = 1;  // single worker: ordering is observable.
    config.chunkShots = 4;
    config.scheduler.policy = sched::Policy::priority;
    ShotEngine engine(platform, config);

    Job big = makeJob(platform,
                      "SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\n"
                      "QWAIT 50\nSTOP\n",
                      4000, 1);
    big.label = "background";
    big.priority = 0;
    // Deterministic overtake: the background job's first snapshot
    // callback (worker thread, after its first 4-shot chunk) blocks
    // until the urgent job is queued, so the lone worker can never
    // race through the whole background batch before the urgent job
    // exists — however fast shots execute.
    std::promise<void> urgent_submitted;
    std::shared_future<void> urgent_gate =
        urgent_submitted.get_future().share();
    big.partialEveryChunks = 1;
    big.onPartial = [urgent_gate](const BatchResult &) {
        urgent_gate.wait();
    };
    Job urgent = makeJob(platform,
                         "SMIS S0, {0}\nQWAIT 100\nMEASZ S0\n"
                         "QWAIT 50\nSTOP\n",
                         8, 2);
    urgent.label = "urgent";
    urgent.priority = 10;

    sched::JobHandle big_handle = engine.submit(std::move(big));
    sched::JobHandle urgent_handle = engine.submit(std::move(urgent));
    urgent_submitted.set_value();

    BatchResult urgent_result = urgent_handle.get();
    EXPECT_EQ(urgent_result.shots, 8u);
    EXPECT_DOUBLE_EQ(urgent_result.fractionOne(0), 0.0);
    // The urgent job overtook the 4000-shot batch: at the moment it
    // finished, the background still had most of its range pending.
    sched::Progress big_progress = big_handle.progress();
    EXPECT_LT(big_progress.completedShots, 4000);

    BatchResult big_result = big_handle.get();
    EXPECT_EQ(big_result.shots, 4000u);
    EXPECT_DOUBLE_EQ(big_result.fractionOne(0), 1.0);
    EXPECT_EQ(big_handle.progress().completedShots, 4000);
}

// --------------------------------------------------------- cancellation

TEST(SchedulerCancellation, CancelledJobFailsAloneAndFreesWorkers)
{
    Platform platform = Platform::ideal(Platform::twoQubit());
    EngineConfig config;
    config.threads = 1;  // the blocker pins the worker deterministically.
    ShotEngine engine(platform, config);

    // Ideal two-qubit shots run at ~10^6/s: 400k shots keep the single
    // worker busy for hundreds of milliseconds, so the cancel below
    // lands (and must settle) while the blocker is still mid-flight.
    Job blocker = makeJob(platform,
                          "SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\n"
                          "QWAIT 50\nSTOP\n",
                          400000, 1);
    blocker.label = "blocker";
    Job doomed = makeJob(platform,
                         "SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\n"
                         "QWAIT 50\nSTOP\n",
                         2000, 2);
    doomed.label = "doomed";

    sched::JobHandle blocker_handle = engine.submit(std::move(blocker));
    sched::JobHandle doomed_handle = engine.submit(std::move(doomed));
    // The worker is busy with the blocker, so the cancel lands before
    // the doomed job executes a single shot.
    doomed_handle.cancel();

    try {
        doomed_handle.get();
        FAIL() << "a cancelled job must not yield a result";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), ErrorCode::runtimeError);
        EXPECT_NE(error.message().find("doomed"), std::string::npos)
            << error.message();
        EXPECT_NE(error.message().find("cancelled"), std::string::npos)
            << error.message();
    }
    EXPECT_TRUE(doomed_handle.progress().cancelRequested);
    // The cancel settled promptly — workers sweep cancelled jobs out
    // of the queue instead of waiting for the policy to pick them, so
    // the 400k-shot blocker is still in flight when get() returns.
    EXPECT_LT(blocker_handle.progress().completedShots, 400000);

    // Only the cancelled job failed; the queue keeps flowing.
    EXPECT_EQ(blocker_handle.get().shots, 400000u);
    Job after = makeJob(platform,
                        "SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\n"
                        "QWAIT 50\nSTOP\n",
                        16, 3);
    EXPECT_DOUBLE_EQ(engine.run(after).fractionOne(0), 1.0);
}

TEST(SchedulerCancellation, CancelAfterCompletionKeepsTheResult)
{
    Platform platform = Platform::ideal(Platform::twoQubit());
    EngineConfig config;
    config.threads = 1;
    ShotEngine engine(platform, config);

    Job job = makeJob(platform,
                      "SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\n"
                      "QWAIT 50\nSTOP\n",
                      32, 1);
    sched::JobHandle handle = engine.submit(std::move(job));
    handle.wait();
    handle.cancel();  // too late to matter — every shot completed.
    EXPECT_EQ(handle.get().shots, 32u);
}

// ------------------------------------------------- streaming / progress

TEST(SchedulerStreaming, PartialSnapshotsGrowMonotonically)
{
    Platform platform = Platform::twoQubit();
    EngineConfig config;
    config.threads = 2;
    config.chunkShots = 8;
    ShotEngine engine(platform, config);

    std::mutex seen_mutex;
    std::vector<uint64_t> seen;
    Job job = activeResetJob(platform, 400, 21);
    job.label = "streamed";
    job.partialEveryChunks = 1;
    job.onPartial = [&](const BatchResult &partial) {
        std::lock_guard<std::mutex> guard(seen_mutex);
        seen.push_back(partial.shots);
    };

    sched::JobHandle handle = engine.submit(std::move(job));
    BatchResult result = handle.get();
    EXPECT_EQ(result.shots, 400u);
    EXPECT_EQ(handle.progress().completedShots, 400);
    EXPECT_DOUBLE_EQ(handle.progress().fraction(), 1.0);

    std::lock_guard<std::mutex> guard(seen_mutex);
    ASSERT_FALSE(seen.empty());
    for (size_t i = 1; i < seen.size(); ++i)
        EXPECT_LT(seen[i - 1], seen[i]);
    // Snapshots are partial by construction: the final aggregate is
    // delivered through the handle, not the callback.
    EXPECT_LE(seen.back(), 400u);

    // The streamed run folds to the same counts as an unstreamed one.
    Job plain_job = activeResetJob(platform, 400, 21);
    plain_job.label = "streamed";  // fingerprints cover the label too.
    BatchResult plain = engine.run(std::move(plain_job));
    EXPECT_EQ(plain.countsFingerprint(), result.countsFingerprint());
}

TEST(SchedulerStreaming, ThrowingCallbackFailsOnlyThatJob)
{
    Platform platform = Platform::twoQubit();
    EngineConfig config;
    config.threads = 1;
    config.chunkShots = 8;
    ShotEngine engine(platform, config);

    Job job = activeResetJob(platform, 400, 3);
    job.label = "bad-callback";
    job.partialEveryChunks = 1;
    job.onPartial = [](const BatchResult &) {
        throw Error(ErrorCode::runtimeError, "calibration converged");
    };
    sched::JobHandle handle = engine.submit(std::move(job));
    // The callback's exception fails the job instead of escaping the
    // worker thread (which would terminate the process).
    EXPECT_THROW(handle.get(), Error);

    // ...and the pool is unharmed.
    EXPECT_EQ(engine.run(activeResetJob(platform, 32, 4)).shots, 32u);
}

TEST(JobHandle, InvalidHandleIsInertNotUndefined)
{
    sched::JobHandle handle;
    EXPECT_FALSE(handle.valid());
    EXPECT_FALSE(handle.done());
    handle.wait();    // no-op, not UB.
    handle.cancel();  // no-op.
    EXPECT_EQ(handle.progress().totalShots, 0);
    EXPECT_THROW(handle.get(), Error);
    // waitFor mirrors done(): immediately false, no blocking.
    EXPECT_FALSE(handle.waitFor(std::chrono::milliseconds(0)));
    EXPECT_FALSE(handle.waitFor(std::chrono::hours(1)));
}

TEST(JobHandle, WaitForBoundsTheWaitAndObservesCompletion)
{
    Platform platform = Platform::twoQubit();
    EngineConfig config;
    config.threads = 1;
    config.chunkShots = 8;
    ShotEngine engine(platform, config);

    // A long job: a zero-timeout poll right after submission expires
    // (the single worker cannot have finished 20k shots yet)...
    sched::JobHandle handle =
        engine.submit(activeResetJob(platform, 20000, 3));
    EXPECT_FALSE(handle.waitFor(std::chrono::milliseconds(0)));
    // ...while a generous bound observes completion well before it,
    // and the handle then answers instantly and repeatedly.
    EXPECT_TRUE(handle.waitFor(std::chrono::minutes(5)));
    EXPECT_TRUE(handle.done());
    EXPECT_TRUE(handle.waitFor(std::chrono::milliseconds(0)));
    EXPECT_EQ(handle.get().shots, 20000u);
}