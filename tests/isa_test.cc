/**
 * @file
 * Unit tests for the ISA layer: instruction kinds, comparison flags,
 * the configurable operation set, the Fig. 8 binary formats, and an
 * encode/decode round-trip property over a generated corpus.
 */
#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/error.h"
#include "isa/encoding.h"
#include "isa/instruction.h"
#include "isa/opcodes.h"
#include "isa/operation_set.h"

using namespace eqasm;
using namespace eqasm::isa;

namespace {

OperationSet
defaultOps()
{
    return OperationSet::defaultSet();
}

QuantumOperation
makeOp(const OperationSet &ops, const std::string &name, int reg)
{
    const OperationInfo &info = ops.byName(name);
    QuantumOperation op;
    op.name = info.name;
    op.opcode = info.opcode;
    op.opClass = info.opClass;
    op.targetKind = targetKindForClass(info.opClass);
    op.targetReg = reg;
    return op;
}

} // namespace

// ------------------------------------------------------------- opcodes

TEST(Opcodes, NamesRoundTrip)
{
    EXPECT_EQ(instrKindName(InstrKind::qwait), "QWAIT");
    EXPECT_EQ(instrKindName(InstrKind::smis), "SMIS");
    EXPECT_EQ(instrKindName(InstrKind::logicAnd), "AND");
}

TEST(Opcodes, QuantumClassification)
{
    EXPECT_TRUE(isQuantum(InstrKind::qwait));
    EXPECT_TRUE(isQuantum(InstrKind::bundle));
    EXPECT_TRUE(isQuantum(InstrKind::smit));
    EXPECT_FALSE(isQuantum(InstrKind::fmr));
    EXPECT_FALSE(isQuantum(InstrKind::cmp));
}

TEST(Opcodes, SingleOpcodeRoundTrip)
{
    for (InstrKind kind :
         {InstrKind::nop, InstrKind::stop, InstrKind::cmp, InstrKind::br,
          InstrKind::fbr, InstrKind::ldi, InstrKind::ldui, InstrKind::ld,
          InstrKind::st, InstrKind::fmr, InstrKind::logicAnd,
          InstrKind::logicOr, InstrKind::logicXor, InstrKind::logicNot,
          InstrKind::add, InstrKind::sub, InstrKind::qwait,
          InstrKind::qwaitr, InstrKind::smis, InstrKind::smit}) {
        uint8_t opcode = opcodeForInstrKind(kind);
        auto back = instrKindForOpcode(opcode);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, kind);
    }
}

TEST(Opcodes, UnknownOpcodeRejected)
{
    EXPECT_FALSE(instrKindForOpcode(0x3f).has_value());
}

TEST(CondFlags, ParseNamesCaseInsensitive)
{
    EXPECT_EQ(parseCondFlag("eq"), CondFlag::eq);
    EXPECT_EQ(parseCondFlag("ALWAYS"), CondFlag::always);
    EXPECT_EQ(parseCondFlag("GtU"), CondFlag::gtu);
    EXPECT_FALSE(parseCondFlag("bogus").has_value());
}

TEST(Params, Config9Defaults)
{
    InstantiationParams params;
    EXPECT_EQ(params.vliwWidth, 2);
    EXPECT_EQ(params.preIntervalWidth, 3);
    EXPECT_EQ(params.maxPreInterval(), 7);
    EXPECT_EQ(params.sMaskWidth, 7);
    EXPECT_EQ(params.tMaskWidth, 16);
    EXPECT_EQ(params.qOpcodeWidth, 9);
}

// ------------------------------------------------------- operation set

TEST(OperationSet, DefaultSetContainsSection5Operations)
{
    OperationSet ops = defaultOps();
    for (const char *name :
         {"QNOP", "I", "X", "Y", "X90", "Y90", "Xm90", "Ym90", "CZ",
          "MEASZ", "C_X"}) {
        EXPECT_NE(ops.findByName(name), nullptr) << name;
    }
}

TEST(OperationSet, LookupIsCaseInsensitive)
{
    OperationSet ops = defaultOps();
    EXPECT_NE(ops.findByName("measz"), nullptr);
    EXPECT_NE(ops.findByName("x90"), nullptr);
    EXPECT_EQ(ops.findByName("nonexistent"), nullptr);
}

TEST(OperationSet, DurationsMatchSection42)
{
    // "a single- (two-)qubit gate time of 1 (2) cycle(s), and a
    // measurement time of 15 cycles".
    OperationSet ops = defaultOps();
    EXPECT_EQ(ops.byName("X").durationCycles, 1);
    EXPECT_EQ(ops.byName("CZ").durationCycles, 2);
    EXPECT_EQ(ops.byName("MEASZ").durationCycles, 15);
}

TEST(OperationSet, ConditionalGateUsesLastOneFlag)
{
    OperationSet ops = defaultOps();
    EXPECT_EQ(ops.byName("C_X").condition, ExecFlag::lastOne);
    EXPECT_EQ(ops.byName("X").condition, ExecFlag::always);
}

TEST(OperationSet, RejectsDuplicates)
{
    OperationSet ops = defaultOps();
    EXPECT_THROW(ops.add({"X", 100, OpClass::singleQubit, 1,
                          ExecFlag::always, Channel::microwave, "x"}),
                 Error);
    EXPECT_THROW(ops.add({"X2", 2, OpClass::singleQubit, 1,
                          ExecFlag::always, Channel::microwave, "x"}),
                 Error);
}

TEST(OperationSet, RejectsConditionalTwoQubit)
{
    // FCE gates single-qubit operations only (Section 3.5).
    OperationSet ops;
    ops.add({"QNOP", 0, OpClass::qnop, 0, ExecFlag::always, Channel::none,
             "i"});
    EXPECT_THROW(ops.add({"C_CZ", 33, OpClass::twoQubit, 2,
                          ExecFlag::lastOne, Channel::flux, "cz"}),
                 Error);
}

TEST(OperationSet, RejectsNonQnopOpcodeZero)
{
    OperationSet ops;
    EXPECT_THROW(ops.add({"X", 0, OpClass::singleQubit, 1,
                          ExecFlag::always, Channel::microwave, "x"}),
                 Error);
}

TEST(OperationSet, RejectsOversizedOpcode)
{
    OperationSet ops = defaultOps();
    EXPECT_THROW(ops.add({"BIG", 512, OpClass::singleQubit, 1,
                          ExecFlag::always, Channel::microwave, "x"}),
                 Error);
}

TEST(OperationSet, JsonRoundTrip)
{
    OperationSet original = defaultOps();
    OperationSet loaded = OperationSet::fromJson(original.toJson());
    EXPECT_EQ(loaded.size(), original.size());
    for (const OperationInfo &info : original.operations()) {
        const OperationInfo *copy = loaded.findByName(info.name);
        ASSERT_NE(copy, nullptr) << info.name;
        EXPECT_EQ(copy->opcode, info.opcode);
        EXPECT_EQ(copy->opClass, info.opClass);
        EXPECT_EQ(copy->durationCycles, info.durationCycles);
        EXPECT_EQ(copy->condition, info.condition);
        EXPECT_EQ(copy->channel, info.channel);
        EXPECT_EQ(copy->unitary, info.unitary);
    }
}

TEST(OperationSet, CustomConfigurationFromJson)
{
    // Compile-time configurability (Section 3.2): a CNOT-based set for
    // a different platform parses from user JSON.
    Json doc = Json::parse(R"({"operations": [
        {"name": "H", "opcode": 1, "unitary": "h"},
        {"name": "CNOT", "opcode": 40, "class": "two_qubit",
         "duration": 2, "channel": "flux", "unitary": "cnot"},
        {"name": "MEASZ", "opcode": 16, "class": "measurement",
         "duration": 15, "channel": "readout", "unitary": "measz"}
    ]})");
    OperationSet ops = OperationSet::fromJson(doc);
    EXPECT_EQ(ops.byName("CNOT").opClass, OpClass::twoQubit);
    EXPECT_EQ(ops.byName("H").unitary, "h");
}

// ------------------------------------------------------------ encoding

TEST(Encoding, BundleFormatFields)
{
    // Fig. 8 bottom: [31]=1 | 9-bit q opcode | 5-bit reg | 9 | 5 | 3 PI.
    OperationSet ops = defaultOps();
    InstantiationParams params;
    Instruction instr = Instruction::makeBundle(
        5, {makeOp(ops, "X90", 3), makeOp(ops, "CZ", 17)});
    uint32_t word = encode(instr, params);
    EXPECT_EQ(bit(word, 31), 1u);
    EXPECT_EQ(bits(word, 2, 0), 5u);
    EXPECT_EQ(bits(word, 30, 22),
              static_cast<uint64_t>(ops.byName("X90").opcode));
    EXPECT_EQ(bits(word, 21, 17), 3u);
    EXPECT_EQ(bits(word, 16, 8),
              static_cast<uint64_t>(ops.byName("CZ").opcode));
    EXPECT_EQ(bits(word, 7, 3), 17u);
}

TEST(Encoding, SingleFormatHighBitZero)
{
    InstantiationParams params;
    for (const Instruction &instr :
         {Instruction::makeQwait(100), Instruction::makeSmis(1, 0x7f),
          Instruction::makeSmit(2, 0xffff), Instruction::makeLdi(3, -4)}) {
        EXPECT_EQ(bit(encode(instr, params), 31), 0u);
    }
}

TEST(Encoding, QwaitUses20BitImmediate)
{
    InstantiationParams params;
    uint32_t word = encode(Instruction::makeQwait(0xfffff), params);
    EXPECT_EQ(bits(word, 19, 0), 0xfffffu);
    EXPECT_THROW(encode(Instruction::makeQwait(0x100000), params), Error);
}

TEST(Encoding, SmisMaskWidthEnforced)
{
    InstantiationParams params;
    EXPECT_NO_THROW(encode(Instruction::makeSmis(0, 0x7f), params));
    EXPECT_THROW(encode(Instruction::makeSmis(0, 0x80), params), Error);
    EXPECT_THROW(encode(Instruction::makeSmis(32, 1), params), Error);
}

TEST(Encoding, SmitMaskWidthEnforced)
{
    InstantiationParams params;
    EXPECT_NO_THROW(encode(Instruction::makeSmit(0, 0xffff), params));
    EXPECT_THROW(encode(Instruction::makeSmit(0, 0x10000), params), Error);
}

TEST(Encoding, BundleWiderThanVliwRejected)
{
    OperationSet ops = defaultOps();
    InstantiationParams params;
    Instruction instr = Instruction::makeBundle(
        1, {makeOp(ops, "X", 0), makeOp(ops, "Y", 1),
            makeOp(ops, "X90", 2)});
    EXPECT_THROW(encode(instr, params), Error);
}

TEST(Encoding, PreIntervalWidthEnforced)
{
    OperationSet ops = defaultOps();
    InstantiationParams params;
    Instruction instr =
        Instruction::makeBundle(8, {makeOp(ops, "X", 0)});
    EXPECT_THROW(encode(instr, params), Error);
}

TEST(Encoding, BranchOffsetsSigned)
{
    InstantiationParams params;
    OperationSet ops = defaultOps();
    Instruction instr;
    instr.kind = InstrKind::br;
    instr.cond = CondFlag::ne;
    instr.imm = -3;
    Instruction back = decode(encode(instr, params), params, ops);
    EXPECT_EQ(back.imm, -3);
    EXPECT_EQ(back.cond, CondFlag::ne);
}

TEST(Encoding, DecodeRejectsUnknownQOpcode)
{
    InstantiationParams params;
    OperationSet ops = defaultOps();
    // Craft a bundle with q opcode 0x1ff (unconfigured).
    uint32_t word = 0x80000000u;
    word = static_cast<uint32_t>(insertBits(word, 30, 22, 0x1ff));
    EXPECT_THROW(decode(word, params, ops), Error);
}

TEST(Encoding, DecodeRejectsUnknownOpcode)
{
    InstantiationParams params;
    OperationSet ops = defaultOps();
    uint32_t word = static_cast<uint32_t>(insertBits(0, 30, 25, 0x3f));
    EXPECT_THROW(decode(word, params, ops), Error);
}

// ---------------------------------------- round-trip property (TEST_P)

/** Corpus of machine-form instructions covering every kind and several
 *  boundary values per field. */
std::vector<Instruction>
roundTripCorpus()
{
    OperationSet ops = defaultOps();
    std::vector<Instruction> corpus;
    auto push = [&corpus](Instruction instr) {
        corpus.push_back(std::move(instr));
    };

    push(Instruction::makeNop());
    push(Instruction::makeStop());

    for (int64_t imm : {0ll, 1ll, 524287ll, -1ll, -524288ll})
        push(Instruction::makeLdi(imm >= 0 ? 1 : 31, imm));

    Instruction ldui;
    ldui.kind = InstrKind::ldui;
    ldui.rd = 2;
    ldui.rs = 3;
    ldui.imm = 0x7fff;
    push(ldui);

    for (int64_t offset : {0ll, 16383ll, -16384ll}) {
        Instruction ld;
        ld.kind = InstrKind::ld;
        ld.rd = 4;
        ld.rt = 5;
        ld.imm = offset;
        push(ld);
        Instruction st;
        st.kind = InstrKind::st;
        st.rs = 6;
        st.rt = 7;
        st.imm = offset;
        push(st);
    }

    for (int flag = 0; flag < kNumCondFlags; ++flag) {
        Instruction br;
        br.kind = InstrKind::br;
        br.cond = static_cast<CondFlag>(flag);
        br.imm = flag - 6;
        push(br);
        Instruction fbr;
        fbr.kind = InstrKind::fbr;
        fbr.cond = static_cast<CondFlag>(flag);
        fbr.rd = flag;
        push(fbr);
    }

    Instruction cmp;
    cmp.kind = InstrKind::cmp;
    cmp.rs = 30;
    cmp.rt = 31;
    push(cmp);

    for (InstrKind kind : {InstrKind::logicAnd, InstrKind::logicOr,
                           InstrKind::logicXor, InstrKind::add,
                           InstrKind::sub}) {
        Instruction alu;
        alu.kind = kind;
        alu.rd = 1;
        alu.rs = 2;
        alu.rt = 3;
        push(alu);
    }
    Instruction logic_not;
    logic_not.kind = InstrKind::logicNot;
    logic_not.rd = 9;
    logic_not.rt = 10;
    push(logic_not);

    Instruction fmr;
    fmr.kind = InstrKind::fmr;
    fmr.rd = 11;
    fmr.qubit = 6;
    push(fmr);

    for (int64_t wait : {0ll, 1ll, 30ll, 10000ll, 1048575ll})
        push(Instruction::makeQwait(wait));
    push(Instruction::makeQwaitr(12));

    for (uint64_t mask : {0x0ull, 0x1ull, 0x55ull & 0x7f, 0x7full})
        push(Instruction::makeSmis(static_cast<int>(mask) % 32, mask));
    for (uint64_t mask : {0x0ull, 0x1ull, 0x8001ull, 0xffffull})
        push(Instruction::makeSmit(5, mask));

    push(Instruction::makeBundle(0, {makeOp(ops, "X", 0)}));
    push(Instruction::makeBundle(7, {makeOp(ops, "MEASZ", 7),
                                     makeOp(ops, "CZ", 31)}));
    push(Instruction::makeBundle(1, {makeOp(ops, "QNOP", 0),
                                     makeOp(ops, "Y90", 2)}));
    push(Instruction::makeBundle(3, {makeOp(ops, "C_X", 2)}));
    return corpus;
}

class EncodingRoundTrip : public ::testing::TestWithParam<size_t>
{
};

TEST_P(EncodingRoundTrip, EncodeDecodeEncodeIsIdentity)
{
    OperationSet ops = defaultOps();
    InstantiationParams params;
    const Instruction original = roundTripCorpus()[GetParam()];

    uint32_t word = encode(original, params);
    Instruction decoded = decode(word, params, ops);
    EXPECT_EQ(decoded.kind, original.kind);
    uint32_t word2 = encode(decoded, params);
    EXPECT_EQ(word, word2);

    // Field-level equality for the semantically relevant fields.
    switch (original.kind) {
      case InstrKind::bundle:
        EXPECT_EQ(decoded.preInterval, original.preInterval);
        for (size_t i = 0; i < original.operations.size(); ++i) {
            EXPECT_EQ(decoded.operations[i].opcode,
                      original.operations[i].opcode);
            EXPECT_EQ(decoded.operations[i].targetReg,
                      original.operations[i].targetReg);
        }
        break;
      case InstrKind::smis:
      case InstrKind::smit:
        EXPECT_EQ(decoded.targetReg, original.targetReg);
        EXPECT_EQ(decoded.mask, original.mask);
        break;
      default:
        EXPECT_EQ(decoded.rd, original.rd);
        EXPECT_EQ(decoded.rs, original.rs);
        EXPECT_EQ(decoded.rt, original.rt);
        EXPECT_EQ(decoded.imm, original.imm);
        EXPECT_EQ(decoded.cond, original.cond);
        EXPECT_EQ(decoded.qubit, original.qubit);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(Corpus, EncodingRoundTrip,
                         ::testing::Range(size_t{0},
                                          roundTripCorpus().size()));

// ------------------------------------------------------------ toString

TEST(InstructionPrinting, CanonicalSyntax)
{
    OperationSet ops = defaultOps();
    EXPECT_EQ(toString(Instruction::makeQwait(100)), "QWAIT 100");
    EXPECT_EQ(toString(Instruction::makeLdi(0, 1)), "LDI R0, 1");
    EXPECT_EQ(toString(Instruction::makeSmis(7, 0b101)),
              "SMIS S7, {0, 2}");
    Instruction bundle = Instruction::makeBundle(
        1, {makeOp(ops, "X90", 0), makeOp(ops, "X", 2)});
    EXPECT_EQ(toString(bundle), "1, X90 S0 | X S2");
}
