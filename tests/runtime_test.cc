/**
 * @file
 * Unit tests for the runtime layer: the simulated device's physics and
 * interface contract, the mock-result device, platform presets and
 * JSON configuration, the QuantumProcessor facade and the analysis
 * helpers.
 */
#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "isa/operation_set.h"
#include "runtime/analysis.h"
#include "runtime/mock_device.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "runtime/simulated_device.h"

using namespace eqasm;
using namespace eqasm::runtime;
using microarch::MicroOpRole;
using microarch::TriggeredOp;

namespace {

/** A device rig driving TriggeredOps directly (no controller). */
struct DeviceRig {
    isa::OperationSet ops = isa::OperationSet::defaultSet();
    SimulatedDevice device;
    std::vector<std::tuple<int, int, uint64_t>> results;

    explicit DeviceRig(DeviceConfig config = {}, uint64_t seed = 1)
        : device(chip::Topology::twoQubit(), config, seed)
    {
        device.setResultSink(
            [this](int qubit, int bit, uint64_t ready) {
                results.emplace_back(qubit, bit, ready);
            });
        device.startShot(0);
    }

    TriggeredOp
    op(const char *name, int qubit, uint64_t cycle, int pair = -1,
       MicroOpRole role = MicroOpRole::single)
    {
        return {cycle, qubit, pair, role, &ops.byName(name)};
    }
};

DeviceConfig
idealConfig()
{
    DeviceConfig config;
    config.noise = qsim::NoiseModel::ideal();
    return config;
}

} // namespace

// ------------------------------------------------------ SimulatedDevice

TEST(SimulatedDevice, AppliesUnitaries)
{
    DeviceRig rig(idealConfig());
    rig.device.apply(rig.op("X", 0, 10));
    EXPECT_NEAR(rig.device.state().probabilityOne(0), 1.0, 1e-12);
    EXPECT_NEAR(rig.device.state().probabilityOne(2), 0.0, 1e-12);
}

TEST(SimulatedDevice, TwoQubitGateUsesSourceRole)
{
    DeviceRig rig(idealConfig());
    rig.device.apply(rig.op("X90", 0, 10));
    rig.device.apply(rig.op("X90", 2, 10));
    rig.device.apply(rig.op("CZ", 0, 12, 2, MicroOpRole::source));
    rig.device.apply(rig.op("CZ", 2, 12, 0, MicroOpRole::target));
    // One CZ applied (not two): purity stays 1 and the state is the
    // expected entangled state.
    EXPECT_NEAR(rig.device.state().purity(), 1.0, 1e-12);
    EXPECT_EQ(rig.device.appliedGates().size(), 3u);
}

TEST(SimulatedDevice, MeasurementReportsWithLatency)
{
    DeviceConfig config = idealConfig();
    config.measurementLatencyCycles = 15;
    DeviceRig rig(config);
    rig.device.apply(rig.op("X", 0, 10));
    rig.device.apply(rig.op("MEASZ", 0, 11));
    ASSERT_EQ(rig.results.size(), 1u);
    auto [qubit, bit, ready] = rig.results[0];
    EXPECT_EQ(qubit, 0);
    EXPECT_EQ(bit, 1);
    EXPECT_EQ(ready, 26u);
}

TEST(SimulatedDevice, MeasurementCollapsesState)
{
    DeviceRig rig(idealConfig());
    rig.device.apply(rig.op("X90", 0, 10));
    rig.device.apply(rig.op("MEASZ", 0, 11));
    double p1 = rig.device.state().probabilityOne(0);
    EXPECT_TRUE(p1 < 1e-9 || p1 > 1.0 - 1e-9);
}

TEST(SimulatedDevice, ReadoutErrorFlipsReportedBitOnly)
{
    DeviceConfig config = idealConfig();
    config.noise.enabled = true;
    config.noise.readoutError = 1.0; // always misreport
    config.noise.t1Ns = 1e12;
    config.noise.t2Ns = 1e12;
    config.noise.depol1q = 0.0;
    DeviceRig rig(config);
    rig.device.apply(rig.op("MEASZ", 0, 10));
    EXPECT_EQ(std::get<1>(rig.results[0]), 1); // |0> reported as 1
    // The physical state collapsed to |0> regardless of the report.
    EXPECT_NEAR(rig.device.state().probabilityOne(0), 0.0, 1e-12);
}

TEST(SimulatedDevice, OverlapViolationThrows)
{
    DeviceRig rig(idealConfig());
    rig.device.apply(rig.op("MEASZ", 0, 10)); // busy until 25
    EXPECT_THROW(rig.device.apply(rig.op("X", 0, 12)), Error);
}

TEST(SimulatedDevice, OverlapCountingPolicy)
{
    DeviceConfig config = idealConfig();
    config.throwOnOverlap = false;
    DeviceRig rig(config);
    rig.device.apply(rig.op("MEASZ", 0, 10));
    rig.device.apply(rig.op("X", 0, 12));
    EXPECT_EQ(rig.device.overlapViolations(), 1u);
}

TEST(SimulatedDevice, StartShotResetsState)
{
    DeviceRig rig(idealConfig());
    rig.device.apply(rig.op("X", 0, 10));
    rig.device.startShot(0);
    EXPECT_NEAR(rig.device.state().probabilityOne(0), 0.0, 1e-12);
    EXPECT_TRUE(rig.device.appliedGates().empty());
}

TEST(SimulatedDevice, IdleDecoherenceBetweenGates)
{
    DeviceConfig config;
    config.noise.enabled = true;
    config.noise.t1Ns = 1000.0; // fast decay, cycle = 20 ns
    config.noise.t2Ns = 1000.0;
    config.noise.depol1q = 0.0;
    config.noise.readoutError = 0.0;
    DeviceRig rig(config);
    rig.device.apply(rig.op("X", 0, 0));
    // 100 cycles idle = 2000 ns = 2 T1 (minus the 1-cycle gate).
    rig.device.apply(rig.op("I", 0, 100));
    double expected = std::exp(-(99.0 * 20.0) / 1000.0);
    EXPECT_NEAR(rig.device.state().probabilityOne(0), expected, 1e-6);
}

TEST(SimulatedDevice, UnknownUnitaryIsConfigError)
{
    isa::OperationSet broken;
    broken.add({"QNOP", 0, isa::OpClass::qnop, 0, isa::ExecFlag::always,
                isa::Channel::none, "i"});
    broken.add({"BAD", 1, isa::OpClass::singleQubit, 1,
                isa::ExecFlag::always, isa::Channel::microwave,
                "not_a_gate"});
    SimulatedDevice device(chip::Topology::twoQubit(), idealConfig(), 1);
    device.setResultSink([](int, int, uint64_t) {});
    device.startShot(0);
    TriggeredOp op{10, 0, -1, MicroOpRole::single, &broken.byName("BAD")};
    EXPECT_THROW(device.apply(op), Error);
}

// ------------------------------------------------------ MockResultDevice

TEST(MockDevice, ReplaysProgrammedResultsInOrder)
{
    MockResultDevice device(10);
    std::vector<int> bits;
    device.setResultSink(
        [&](int, int bit, uint64_t) { bits.push_back(bit); });
    device.programResults(0, {1, 0, 1});
    isa::OperationSet ops = isa::OperationSet::defaultSet();
    device.startShot(0);
    for (int i = 0; i < 4; ++i) {
        device.apply({static_cast<uint64_t>(20 * i), 0, -1,
                      MicroOpRole::single, &ops.byName("MEASZ")});
    }
    // Fourth measurement falls back to the default result (0).
    EXPECT_EQ(bits, (std::vector<int>{1, 0, 1, 0}));
}

TEST(MockDevice, DefaultResultConfigurable)
{
    MockResultDevice device(10);
    int observed = -1;
    device.setResultSink(
        [&](int, int bit, uint64_t) { observed = bit; });
    device.setDefaultResult(1);
    isa::OperationSet ops = isa::OperationSet::defaultSet();
    device.startShot(0);
    device.apply({0, 2, -1, MicroOpRole::single, &ops.byName("MEASZ")});
    EXPECT_EQ(observed, 1);
}

TEST(MockDevice, ShotPulsesResetPerShot)
{
    MockResultDevice device(10);
    device.setResultSink([](int, int, uint64_t) {});
    isa::OperationSet ops = isa::OperationSet::defaultSet();
    device.startShot(0);
    device.apply({0, 0, -1, MicroOpRole::single, &ops.byName("X")});
    device.startShot(0);
    EXPECT_TRUE(device.shotPulses().empty());
    EXPECT_EQ(device.pulses().size(), 1u);
}

// ------------------------------------------------------------- Platform

TEST(Platform, TwoQubitPresetShape)
{
    Platform platform = Platform::twoQubit();
    EXPECT_EQ(platform.topology.name(), "two_qubit");
    EXPECT_TRUE(platform.device.noise.enabled);
    EXPECT_NE(platform.operations.findByName("C_X"), nullptr);
}

TEST(Platform, IdealTurnsNoiseOff)
{
    Platform platform = Platform::ideal(Platform::twoQubit());
    EXPECT_FALSE(platform.device.noise.enabled);
    EXPECT_DOUBLE_EQ(platform.device.noise.readoutError, 0.0);
}

TEST(Platform, JsonRoundTrip)
{
    Platform original = Platform::surface7();
    Platform loaded = Platform::fromJson(original.toJson());
    EXPECT_EQ(loaded.topology.name(), "surface7");
    EXPECT_EQ(loaded.topology.numEdges(), 16);
    EXPECT_EQ(loaded.operations.size(), original.operations.size());
    EXPECT_DOUBLE_EQ(loaded.device.noise.t1Ns,
                     original.device.noise.t1Ns);
    EXPECT_EQ(loaded.params.vliwWidth, original.params.vliwWidth);
}

TEST(Platform, FromJsonCustomChipRuns)
{
    // The Section 5 workflow: a config file renames the chip's qubits.
    Json doc = Json::parse(R"({
        "topology": {"name": "renamed", "qubits": 3,
                     "edges": [[0, 2], [2, 0]],
                     "feedlines": [0, 0, 0]},
        "noise": {"enabled": false},
        "classical_issue_rate": 4
    })");
    Platform platform = Platform::fromJson(doc);
    EXPECT_EQ(platform.uarch.classicalIssueRate, 4);
    QuantumProcessor processor(platform, 3);
    processor.loadSource("SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\n"
                         "QWAIT 50\nSTOP\n");
    EXPECT_EQ(processor.runShot().lastMeasurement(0), 1);
}

// ----------------------------------------------------- QuantumProcessor

TEST(Processor, RejectsBadSource)
{
    QuantumProcessor processor(Platform::twoQubit(), 1);
    EXPECT_THROW(processor.loadSource("FROB R1\n"),
                 assembler::AssemblyError);
}

TEST(Processor, FractionOneRequiresMeasurements)
{
    QuantumProcessor processor(
        Platform::ideal(Platform::twoQubit()), 1);
    processor.loadSource("SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\n"
                         "QWAIT 50\nSTOP\n");
    auto records = processor.run(3);
    EXPECT_DOUBLE_EQ(processor.fractionOne(records, 0), 1.0);
    // Qubit 2 was never measured.
    EXPECT_THROW(processor.fractionOne(records, 2), Error);
    EXPECT_THROW(processor.fractionOne({}, 0), Error);
}

TEST(Processor, ShotRecordLastMeasurement)
{
    ShotRecord record;
    record.measurements = {{10, 0, 1}, {20, 0, 0}, {30, 2, 1}};
    EXPECT_EQ(record.lastMeasurement(0), 0);
    EXPECT_EQ(record.lastMeasurement(2), 1);
    EXPECT_EQ(record.lastMeasurement(1), -1);
}

TEST(Processor, LoadImageExecutesRawBinary)
{
    Platform platform = Platform::ideal(Platform::twoQubit());
    assembler::Assembler asm_(platform.operations, platform.topology,
                              platform.params);
    auto program = asm_.assemble(
        "SMIS S0, {0}\nQWAIT 100\nX S0\nMEASZ S0\nQWAIT 50\nSTOP\n");
    QuantumProcessor processor(platform, 1);
    processor.loadImage(program.image);
    EXPECT_EQ(processor.runShot().lastMeasurement(0), 1);
}

// -------------------------------------------------------------- analysis

TEST(Analysis, ReadoutCorrectInvertsAssignment)
{
    // raw = (1 - eps1) p + eps0 (1 - p); invert for several p.
    double eps0 = 0.08, eps1 = 0.12;
    for (double p : {0.0, 0.25, 0.5, 0.9, 1.0}) {
        double raw = (1.0 - eps1) * p + eps0 * (1.0 - p);
        EXPECT_NEAR(readoutCorrect(raw, eps0, eps1), p, 1e-12);
    }
}

TEST(Analysis, FitHandlesFlatData)
{
    std::vector<double> ks = {1, 2, 3, 4, 5};
    std::vector<double> ys = {0.5, 0.5, 0.5, 0.5, 0.5};
    DecayFit fit = fitExponentialDecay(ks, ys);
    EXPECT_NEAR(fit.amplitude * std::pow(fit.decay, 3.0) + fit.floor,
                0.5, 1e-9);
    EXPECT_LT(fit.residual, 1e-12);
}

TEST(Analysis, FitRejectsTooFewPoints)
{
    EXPECT_THROW(fitExponentialDecay({1.0, 2.0}, {0.9, 0.8}), Error);
    EXPECT_THROW(fitExponentialDecay({1.0, 2.0, 3.0}, {0.9, 0.8}),
                 Error);
}

TEST(Analysis, RbErrorPerGateIdentityAtPerfectDecay)
{
    EXPECT_DOUBLE_EQ(rbErrorPerGate(1.0), 0.0);
    EXPECT_GT(rbErrorPerGate(0.99), 0.0);
    // Faster decay -> larger error.
    EXPECT_GT(rbErrorPerGate(0.95), rbErrorPerGate(0.99));
}
