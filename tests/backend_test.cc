/**
 * @file
 * Tests for the pluggable simulation-backend layer: the backend
 * factory and its qubit-limit errors, stabilizer-tableau Clifford
 * semantics, density/stabilizer agreement on noiseless Clifford
 * circuits under shared per-shot seeds, and the distance-3 surface-code
 * acceptance path through the parallel shot engine.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "assembler/assembler.h"
#include "common/error.h"
#include "common/rng.h"
#include "engine/shot_engine.h"
#include "qsim/stabilizer_tableau.h"
#include "qsim/state_backend.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "workloads/surface_code.h"

using namespace eqasm;
using namespace eqasm::qsim;
using namespace eqasm::runtime;

namespace {

/** Serialised aggregate with run-varying fields normalised. */
std::string
aggregateKey(const engine::BatchResult &result)
{
    return result.countsFingerprint();
}

engine::BatchResult
runProgram(const Platform &platform, const std::string &source,
           int shots, uint64_t seed, int threads)
{
    QuantumProcessor processor(platform, seed);
    processor.loadSource(source);
    return processor.runBatch(shots, threads);
}

/** Platform copy running on the other backend. */
Platform
withBackend(Platform platform, BackendKind kind)
{
    platform.device.backend = kind;
    return platform;
}

/**
 * GHZ on (data 0, ancilla 5, data 1) of the distance-2 chip via the
 * graph-state construction: all three into |+>, CZ along the path,
 * then rotate the path ends back — stabilizers Z0 Z5, Z5 Z1, X0 X5 X1,
 * i.e. all-equal Z outcomes.
 */
const char kGhzChain[] =
    "SMIS S0, {0}\nSMIS S1, {5}\nSMIS S2, {1}\nSMIS S3, {0, 1}\n"
    "SMIT T0, {(0, 5)}\nSMIT T1, {(5, 1)}\n"
    "QWAIT 100\n"
    "0, Y90 S0 | Y90 S1\n"
    "0, Y90 S2\n"
    "1, CZ T0\n"
    "2, CZ T1\n"
    "2, Ym90 S3\n"
    "1, MEASZ S0 | MEASZ S1\n"
    "0, MEASZ S2\n"
    "QWAIT 50\nSTOP\n";

} // namespace

// ------------------------------------------------------------- factory

TEST(BackendFactory, NamesRoundTrip)
{
    EXPECT_EQ(backendKindName(BackendKind::density), "density");
    EXPECT_EQ(backendKindName(BackendKind::stabilizer), "stabilizer");
    EXPECT_EQ(parseBackendKind("density"), BackendKind::density);
    EXPECT_EQ(parseBackendKind("Stabilizer"), BackendKind::stabilizer);
    EXPECT_EQ(parseBackendKind("chp"), BackendKind::stabilizer);
    EXPECT_EQ(backendKindName(BackendKind::trajectory), "trajectory");
    EXPECT_EQ(parseBackendKind("trajectory"), BackendKind::trajectory);
    EXPECT_EQ(parseBackendKind("statevector"), BackendKind::trajectory);
    EXPECT_FALSE(parseBackendKind("montecarlo").has_value());
}

TEST(BackendFactory, CreatesConfiguredKind)
{
    auto density = makeBackend(BackendKind::density, 3);
    EXPECT_EQ(density->kind(), BackendKind::density);
    EXPECT_EQ(density->numQubits(), 3);
    auto stabilizer = makeBackend(BackendKind::stabilizer, 17);
    EXPECT_EQ(stabilizer->kind(), BackendKind::stabilizer);
    EXPECT_EQ(stabilizer->numQubits(), 17);
}

TEST(BackendFactory, RejectsOversizedTopologyWithClearError)
{
    try {
        makeBackend(BackendKind::density, 17);
        FAIL() << "density backend accepted 17 qubits";
    } catch (const Error &error) {
        std::string message = error.message();
        EXPECT_NE(message.find("17 qubits"), std::string::npos)
            << message;
        EXPECT_NE(message.find("density"), std::string::npos) << message;
        EXPECT_NE(message.find("stabilizer"), std::string::npos)
            << message;
    }
}

TEST(BackendFactory, DeviceConstructionFailsForOversizedChip)
{
    DeviceConfig config;  // density backend by default
    EXPECT_THROW(SimulatedDevice(chip::Topology::rotatedSurface(3),
                                 config),
                 Error);
    config.backend = BackendKind::stabilizer;
    EXPECT_NO_THROW(SimulatedDevice(chip::Topology::rotatedSurface(3),
                                    config));
}

TEST(BackendFactory, StateAccessorNeedsDensityBackend)
{
    DeviceConfig config;
    config.backend = BackendKind::stabilizer;
    SimulatedDevice device(chip::Topology::twoQubit(), config);
    EXPECT_THROW(device.state(), Error);
    EXPECT_EQ(device.backend().kind(), BackendKind::stabilizer);
}

// ----------------------------------------------- result provenance

TEST(BatchProvenance, MergeAdoptsProvenanceAndRejectsConflicts)
{
    engine::BatchResult shard;
    shard.backend = "stabilizer";
    shard.seed = 7;
    shard.threads = 2;

    engine::BatchResult merged;
    merged.merge(shard);
    EXPECT_EQ(merged.backend, "stabilizer");
    EXPECT_EQ(merged.seed, 7u);
    EXPECT_EQ(merged.threads, 2);

    // Conflicting origins are a refusal, not a silent reconciliation:
    // merging results of different backends or seeds would fold counts
    // that can never have come from one job.
    engine::BatchResult foreign;
    foreign.backend = "density";
    foreign.seed = 7;
    try {
        merged.merge(foreign);
        FAIL() << "backend mismatch was merged";
    } catch (const Error &error) {
        EXPECT_NE(std::string(error.what()).find("backend"),
                  std::string::npos)
            << error.what();
    }
    foreign.backend = "stabilizer";
    foreign.seed = 9;
    try {
        merged.merge(foreign);
        FAIL() << "seed mismatch was merged";
    } catch (const Error &error) {
        EXPECT_NE(std::string(error.what()).find("seed"),
                  std::string::npos)
            << error.what();
    }
    // The refused merges left the aggregate untouched.
    EXPECT_EQ(merged.backend, "stabilizer");
    EXPECT_EQ(merged.seed, 7u);
}

// -------------------------------------------------- stabilizer tableau

TEST(StabilizerTableau, InitialStateMeasuresZero)
{
    StabilizerTableau tableau(3);
    Rng rng(7);
    for (int q = 0; q < 3; ++q) {
        EXPECT_TRUE(tableau.isDeterministic(q));
        EXPECT_DOUBLE_EQ(tableau.probabilityOne(q), 0.0);
        EXPECT_EQ(tableau.measure(q, rng), 0);
    }
}

TEST(StabilizerTableau, PauliAndRotationSemantics)
{
    StabilizerTableau tableau(2);
    Rng rng(7);
    tableau.gateX(0);
    EXPECT_DOUBLE_EQ(tableau.probabilityOne(0), 1.0);
    EXPECT_EQ(tableau.measure(0, rng), 1);

    // X90 twice = X (up to phase): |0> -> |1>.
    tableau.reset();
    tableau.gateX90(1);
    EXPECT_FALSE(tableau.isDeterministic(1));
    EXPECT_DOUBLE_EQ(tableau.probabilityOne(1), 0.5);
    tableau.gateX90(1);
    EXPECT_DOUBLE_EQ(tableau.probabilityOne(1), 1.0);

    // Y90 then Ym90 cancels.
    tableau.reset();
    tableau.gateY90(0);
    tableau.gateYm90(0);
    EXPECT_DOUBLE_EQ(tableau.probabilityOne(0), 0.0);

    // S^4 = identity on stabilizers.
    tableau.reset();
    tableau.gateH(0);
    std::string before = tableau.stabilizerString(0);
    for (int i = 0; i < 4; ++i)
        tableau.gateS(0);
    EXPECT_EQ(tableau.stabilizerString(0), before);
}

TEST(StabilizerTableau, BellPairIsCorrelated)
{
    Rng rng(123);
    int equal = 0;
    const int shots = 64;
    for (int shot = 0; shot < shots; ++shot) {
        StabilizerTableau tableau(2);
        tableau.gateH(0);
        tableau.gateCnot(0, 1);
        EXPECT_EQ(tableau.stabilizerString(0), "+XX");
        EXPECT_EQ(tableau.stabilizerString(1), "+ZZ");
        int a = tableau.measure(0, rng);
        int b = tableau.measure(1, rng);
        EXPECT_EQ(a, b);
        equal += a;
    }
    // Both outcomes occur.
    EXPECT_GT(equal, 0);
    EXPECT_LT(equal, shots);
}

TEST(StabilizerTableau, CzMatchesCnotConjugation)
{
    // CZ sandwiched in H on the target equals CNOT: |10> -> |11>.
    StabilizerTableau tableau(2);
    Rng rng(3);
    tableau.gateX(0);
    tableau.gateH(1);
    tableau.gateCz(0, 1);
    tableau.gateH(1);
    EXPECT_DOUBLE_EQ(tableau.probabilityOne(0), 1.0);
    EXPECT_DOUBLE_EQ(tableau.probabilityOne(1), 1.0);
    (void)rng;
}

TEST(StabilizerTableau, ResetQubitReprepares)
{
    StabilizerTableau tableau(2);
    Rng rng(5);
    tableau.gateX(0);
    tableau.gateH(1);
    tableau.resetQubit(0, rng);
    tableau.resetQubit(1, rng);
    EXPECT_DOUBLE_EQ(tableau.probabilityOne(0), 0.0);
    EXPECT_DOUBLE_EQ(tableau.probabilityOne(1), 0.0);
}

TEST(StabilizerTableau, RejectsNonCliffordGates)
{
    StabilizerTableau tableau(1);
    auto t_gate = makeGate("t");
    ASSERT_TRUE(t_gate.has_value());
    EXPECT_THROW(tableau.applyGate1(*t_gate, 0), Error);
    auto rx45 = makeGate("rx:45");
    ASSERT_TRUE(rx45.has_value());
    EXPECT_THROW(tableau.applyGate1(*rx45, 0), Error);
    // Clifford angles of the parametric form are accepted.
    auto rx180 = makeGate("rx:180");
    ASSERT_TRUE(rx180.has_value());
    tableau.applyGate1(*rx180, 0);
    EXPECT_DOUBLE_EQ(tableau.probabilityOne(0), 1.0);
}

TEST(StabilizerTableau, MeasureConsumesExactlyOneDraw)
{
    // Deterministic and random measurements must consume the same
    // number of draws, or backend agreement under shared seeds breaks.
    StabilizerTableau tableau(2);
    tableau.gateH(0);  // qubit 0 random, qubit 1 deterministic
    Rng a(99);
    Rng b(99);
    (void)tableau.probabilityOne(0);
    StabilizerTableau copy = tableau;
    (void)copy.measure(1, a);  // deterministic: one draw
    (void)a.uniform();
    (void)b.uniform();         // align manually
    (void)b.uniform();
    EXPECT_EQ(a.next(), b.next());
}

// -------------------------------------------- density <-> stabilizer

TEST(BackendAgreement, CliffordProgramsProduceIdenticalCounts)
{
    // Noiseless Clifford programs on the 7-qubit distance-2 chip: the
    // AllXY Clifford subset, a GHZ-style entangling chain and one full
    // syndrome round must sample identical bits on both backends under
    // the same per-shot seeds, at 1 and 4 engine threads.
    Platform stab = Platform::ideal(Platform::rotatedSurface(2));
    Platform dens = withBackend(stab, BackendKind::density);

    const std::string allxy_clifford =
        "SMIS S0, {0}\nSMIS S1, {1}\nSMIS S2, {2, 3}\n"
        "QWAIT 100\n"
        "0, X S0 | Y S1\n"
        "1, X90 S0 | Y90 S1\n"
        "1, Xm90 S2\n"
        "1, Ym90 S0 | I S1\n"
        "1, MEASZ S2\n"
        "3, MEASZ S0 | MEASZ S1\n"
        "QWAIT 50\nSTOP\n";
    const std::string ghz_chain = kGhzChain;
    const std::string syndrome =
        workloads::syndromeProgram(2, 1, stab.operations);

    int index = 0;
    for (const std::string &source :
         {allxy_clifford, ghz_chain, syndrome}) {
        SCOPED_TRACE(index++);
        for (int threads : {1, 4}) {
            SCOPED_TRACE(threads);
            engine::BatchResult on_stab =
                runProgram(stab, source, 160, 2024, threads);
            engine::BatchResult on_dens =
                runProgram(dens, source, 160, 2024, threads);
            EXPECT_EQ(on_stab.histogram, on_dens.histogram);
            for (const auto &[qubit, counts] : on_dens.qubitCounts) {
                EXPECT_EQ(on_stab.qubitCounts.at(qubit).ones,
                          counts.ones)
                    << "qubit " << qubit;
            }
        }
    }
}

TEST(BackendAgreement, GhzChainIsPerfectlyCorrelated)
{
    Platform platform = Platform::ideal(Platform::rotatedSurface(2));
    engine::BatchResult result =
        runProgram(platform, kGhzChain, 256, 7, 2);
    uint64_t counted = 0;
    for (const auto &[bits, count] : result.histogram) {
        EXPECT_TRUE(bits == "q0=0 q1=0 q5=0" ||
                    bits == "q0=1 q1=1 q5=1")
            << bits;
        counted += count;
    }
    EXPECT_EQ(counted, 256u);
    EXPECT_GT(result.qubitCounts.at(0).ones, 0u);
    EXPECT_LT(result.qubitCounts.at(0).ones, 256u);
}

// ------------------------------------------- d = 3 through the engine

TEST(SurfaceQec, Distance3RunsThroughShotEngineDeterministically)
{
    // Acceptance criterion: 17 qubits, >= 1000 syndrome-extraction
    // shots on the stabilizer backend with the calibrated noise model,
    // bitwise-identical BatchResult across 1/2/4 worker threads.
    Platform platform = Platform::rotatedSurface(3);
    EXPECT_EQ(platform.topology.numQubits(), 17);
    std::string source =
        workloads::syndromeProgram(3, 1, platform.operations);

    assembler::Assembler asm_(platform.operations, platform.topology,
                              platform.params);
    engine::Job job;
    job.image = asm_.assemble(source).image;
    job.shots = 1000;
    job.seed = 99;
    job.label = "surface_d3";

    engine::EngineConfig serial;
    serial.threads = 1;
    engine::ShotEngine one(platform, serial);
    engine::BatchResult reference = one.run(job);
    EXPECT_EQ(reference.shots, 1000u);
    EXPECT_EQ(reference.backend, "stabilizer");
    EXPECT_EQ(reference.seed, 99u);
    EXPECT_EQ(reference.threads, 1);
    // All 8 ancillas are measured every shot.
    workloads::RotatedSurfaceCode code(3);
    for (int ancilla : code.xAncillas())
        EXPECT_EQ(reference.qubitCounts.at(ancilla).shots, 1000u);
    for (int ancilla : code.zAncillas())
        EXPECT_EQ(reference.qubitCounts.at(ancilla).shots, 1000u);

    for (int threads : {2, 4}) {
        engine::EngineConfig config;
        config.threads = threads;
        config.chunkShots = 7;  // maximise scheduling interleave
        engine::ShotEngine pool(platform, config);
        engine::BatchResult result = pool.run(job);
        EXPECT_EQ(aggregateKey(result), aggregateKey(reference))
            << "thread count " << threads
            << " changed the aggregated result";
    }
}

TEST(SurfaceQec, InjectedErrorFlipsAdjacentZChecks)
{
    // Noiseless distance-3 round with an X error on data qubit 4 (the
    // grid centre): exactly the Z ancillas adjacent to it report 1.
    Platform platform = Platform::ideal(Platform::rotatedSurface(3));
    std::string source =
        workloads::syndromeProgram(3, 1, platform.operations, 4);
    engine::BatchResult result =
        runProgram(platform, source, 32, 5, 2);

    workloads::RotatedSurfaceCode code(3);
    for (const chip::SurfacePlaquette &plaquette : code.plaquettes()) {
        if (plaquette.isX)
            continue;
        std::vector<int> data = plaquette.dataQubits();
        bool adjacent = std::find(data.begin(), data.end(), 4) !=
                        data.end();
        EXPECT_DOUBLE_EQ(result.fractionOne(plaquette.ancilla),
                         adjacent ? 1.0 : 0.0)
            << "ancilla " << plaquette.ancilla;
    }
}

TEST(SurfaceQec, StabilizerRejectsNonCliffordProgram)
{
    // The Rabi-style parametric pulse is not Clifford: the stabilizer
    // backend must fail the job with a clear error instead of
    // mis-simulating it.
    Platform platform = Platform::ideal(Platform::rotatedSurface(2));
    isa::OperationInfo pulse;
    pulse.name = "X_AMP";
    pulse.opcode = 100;
    pulse.opClass = isa::OpClass::singleQubit;
    pulse.unitary = "rx:45";
    platform.operations.add(pulse);
    QuantumProcessor processor(platform, 1);
    processor.loadSource("SMIS S0, {0}\nQWAIT 100\nX_AMP S0\n"
                         "MEASZ S0\nQWAIT 50\nSTOP\n");
    EXPECT_THROW(processor.runBatch(16, 2), Error);
}
