/**
 * @file
 * Unit tests for the quantum simulation substrate: linear algebra and
 * the Hermitian eigensolver, the gate library, state-vector and
 * density-matrix backends, noise channels, and tomography with MLE.
 */
#include <cmath>
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "qsim/density_matrix.h"
#include "qsim/gates.h"
#include "qsim/linalg.h"
#include "qsim/noise.h"
#include "qsim/trajectory_state_vector.h"
#include "qsim/tomography.h"

using namespace eqasm;
using namespace eqasm::qsim;

// -------------------------------------------------------------- linalg

TEST(Linalg, MatrixProduct)
{
    CMatrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
    CMatrix b(2, 2, {0.0, 1.0, 1.0, 0.0});
    CMatrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0).real(), 2.0);
    EXPECT_DOUBLE_EQ(c(0, 1).real(), 1.0);
    EXPECT_DOUBLE_EQ(c(1, 0).real(), 4.0);
    EXPECT_DOUBLE_EQ(c(1, 1).real(), 3.0);
}

TEST(Linalg, DaggerConjugatesAndTransposes)
{
    CMatrix y = matY();
    CMatrix ydag = y.dagger();
    EXPECT_EQ(ydag(0, 1), Complex(0.0, -1.0));
    EXPECT_EQ(ydag(1, 0), Complex(0.0, 1.0));
}

TEST(Linalg, KroneckerProductDimensions)
{
    CMatrix k = matX().kron(matI());
    EXPECT_EQ(k.rows(), 4u);
    // X (x) I in basis |q1 q0>: X on the high qubit.
    EXPECT_DOUBLE_EQ(k(0, 2).real(), 1.0);
    EXPECT_DOUBLE_EQ(k(1, 3).real(), 1.0);
}

TEST(Linalg, PauliMatricesAreUnitaryAndHermitian)
{
    for (char axis : {'X', 'Y', 'Z', 'I'}) {
        CMatrix p = pauli(axis);
        EXPECT_TRUE(p.isUnitary()) << axis;
        EXPECT_TRUE(p.isHermitian()) << axis;
    }
}

TEST(Linalg, EigenPauliZ)
{
    EigenResult eig = eigenHermitian(matZ());
    ASSERT_EQ(eig.values.size(), 2u);
    EXPECT_NEAR(eig.values[0], -1.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
}

TEST(Linalg, EigenPauliYComplexVectors)
{
    EigenResult eig = eigenHermitian(matY());
    EXPECT_NEAR(eig.values[0], -1.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
    // Check A v = lambda v for the + eigenvector.
    std::vector<Complex> v = {eig.vectors(0, 1), eig.vectors(1, 1)};
    std::vector<Complex> av = multiply(matY(), v);
    EXPECT_NEAR(std::abs(av[0] - v[0]), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(av[1] - v[1]), 0.0, 1e-9);
}

TEST(Linalg, EigenReconstructsRandomHermitian)
{
    Rng rng(13);
    const size_t n = 6;
    CMatrix a(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i; j < n; ++j) {
            Complex value(rng.normal(), i == j ? 0.0 : rng.normal());
            a(i, j) = value;
            a(j, i) = std::conj(value);
        }
    }
    EigenResult eig = eigenHermitian(a);
    // Reconstruct V D V^dagger.
    CMatrix d(n, n);
    for (size_t k = 0; k < n; ++k)
        d(k, k) = eig.values[k];
    CMatrix reconstructed = eig.vectors * d * eig.vectors.dagger();
    EXPECT_LT(reconstructed.maxAbsDiff(a), 1e-8);
    for (size_t k = 1; k < n; ++k)
        EXPECT_LE(eig.values[k - 1], eig.values[k]);
}

TEST(Linalg, EigenRejectsNonHermitian)
{
    CMatrix bad(2, 2, {1.0, 2.0, 3.0, 4.0});
    EXPECT_THROW(eigenHermitian(bad), Error);
}

// --------------------------------------------------------------- gates

class GateUnitarity : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GateUnitarity, AllNamedGatesAreUnitary)
{
    auto gate = makeGate(GetParam());
    ASSERT_TRUE(gate.has_value()) << GetParam();
    EXPECT_TRUE(gate->matrix.isUnitary(1e-10)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Names, GateUnitarity,
    ::testing::Values("i", "x", "y", "z", "h", "s", "sdg", "t", "tdg",
                      "x90", "xm90", "y90", "ym90", "z90", "zm90", "cz",
                      "cnot", "swap", "rx:37.5", "ry:-120", "rz:301"));

TEST(Gates, UnknownNamesRejected)
{
    EXPECT_FALSE(makeGate("bogus").has_value());
    EXPECT_FALSE(makeGate("measz").has_value()); // not a unitary
    EXPECT_FALSE(makeGate("rx:abc").has_value());
}

TEST(Gates, RotationComposition)
{
    // X90 twice = X (up to global phase): Rx(pi/2)^2 = Rx(pi) = -iX.
    CMatrix twice = matRx(M_PI / 2.0) * matRx(M_PI / 2.0);
    Complex overlap = (twice.dagger() * matX()).trace();
    EXPECT_NEAR(std::abs(overlap), 2.0, 1e-10);
}

TEST(Gates, HadamardFromYZ)
{
    // H = Ry(pi/2) Z exactly (used by the Grover construction).
    CMatrix h = matRy(M_PI / 2.0) * matZ();
    EXPECT_LT(h.maxAbsDiff(matH()), 1e-12);
}

TEST(Gates, ParametricRotationAngle)
{
    auto gate = makeGate("rx:180");
    ASSERT_TRUE(gate.has_value());
    Complex overlap = (gate->matrix.dagger() * matX()).trace();
    EXPECT_NEAR(std::abs(overlap), 2.0, 1e-10);
}

// -------------------------------------------------------- state vector

TEST(StateVector, InitialState)
{
    StateVector psi(3);
    EXPECT_DOUBLE_EQ(psi.probabilityOf(0), 1.0);
    EXPECT_DOUBLE_EQ(psi.norm(), 1.0);
}

TEST(StateVector, XFlipsTargetQubitOnly)
{
    StateVector psi(3);
    psi.applyGate1(matX(), 1);
    EXPECT_DOUBLE_EQ(psi.probabilityOf(0b010), 1.0);
    EXPECT_DOUBLE_EQ(psi.probabilityOne(1), 1.0);
    EXPECT_DOUBLE_EQ(psi.probabilityOne(0), 0.0);
    EXPECT_DOUBLE_EQ(psi.probabilityOne(2), 0.0);
}

TEST(StateVector, HadamardSuperposition)
{
    StateVector psi(1);
    psi.applyGate1(matH(), 0);
    EXPECT_NEAR(psi.probabilityOne(0), 0.5, 1e-12);
    EXPECT_NEAR(psi.expectationZ(0), 0.0, 1e-12);
}

TEST(StateVector, CnotEntangles)
{
    StateVector psi(2);
    psi.applyGate1(matH(), 0);
    psi.applyGate2(matCnot(), 0, 1);
    EXPECT_NEAR(psi.probabilityOf(0b00), 0.5, 1e-12);
    EXPECT_NEAR(psi.probabilityOf(0b11), 0.5, 1e-12);
    EXPECT_NEAR(psi.probabilityOf(0b01), 0.0, 1e-12);
}

TEST(StateVector, CzPhaseOnlyOn11)
{
    StateVector psi(2);
    psi.applyGate1(matH(), 0);
    psi.applyGate1(matH(), 1);
    psi.applyGate2(matCz(), 0, 1);
    // Amplitudes: (1,1,1,-1)/2.
    EXPECT_NEAR(psi.amplitudes()[3].real(), -0.5, 1e-12);
    EXPECT_NEAR(psi.amplitudes()[0].real(), 0.5, 1e-12);
}

TEST(StateVector, TwoQubitGateOnNonAdjacentQubits)
{
    StateVector psi(3);
    psi.applyGate1(matX(), 0);
    psi.applyGate2(matCnot(), 0, 2); // control qubit 0, target qubit 2
    EXPECT_DOUBLE_EQ(psi.probabilityOf(0b101), 1.0);
}

TEST(StateVector, MeasureCollapses)
{
    Rng rng(3);
    StateVector psi(1);
    psi.applyGate1(matH(), 0);
    int outcome = psi.measure(0, rng);
    EXPECT_DOUBLE_EQ(psi.probabilityOne(0),
                     outcome == 1 ? 1.0 : 0.0);
    EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
}

TEST(StateVector, MeasurementStatistics)
{
    Rng rng(5);
    int ones = 0;
    const int shots = 4000;
    for (int i = 0; i < shots; ++i) {
        StateVector psi(1);
        psi.applyGate1(matRy(M_PI / 3.0), 0);
        ones += psi.measure(0, rng);
    }
    // P(1) = sin^2(pi/6) = 0.25.
    EXPECT_NEAR(static_cast<double>(ones) / shots, 0.25, 0.03);
}

TEST(StateVector, PostselectImpossibleOutcomeThrows)
{
    StateVector psi(1);
    EXPECT_THROW(psi.postselect(0, 1), Error);
}

TEST(StateVector, FidelityBetweenStates)
{
    StateVector a(1), b(1);
    b.applyGate1(matX(), 0);
    EXPECT_NEAR(a.fidelity(b), 0.0, 1e-12);
    EXPECT_NEAR(a.fidelity(a), 1.0, 1e-12);
    StateVector c(1);
    c.applyGate1(matH(), 0);
    EXPECT_NEAR(a.fidelity(c), 0.5, 1e-12);
}

TEST(StateVector, SampleAllMatchesDistribution)
{
    Rng rng(9);
    StateVector psi(2);
    psi.applyGate1(matX(), 1);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(psi.sampleAll(rng), 0b10u);
}

TEST(StateVector, RejectsBadArguments)
{
    EXPECT_THROW(StateVector(0), Error);
    EXPECT_THROW(StateVector(25), Error);
    StateVector psi(2);
    EXPECT_THROW(psi.applyGate1(matX(), 2), Error);
    EXPECT_THROW(psi.applyGate1(matX(), -1), Error);
}

// ------------------------------------------------------ density matrix

TEST(DensityMatrix, PureStateFromStateVector)
{
    StateVector psi(2);
    psi.applyGate1(matH(), 0);
    DensityMatrix rho(psi);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    EXPECT_NEAR(rho.fidelityWith(psi), 1.0, 1e-12);
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-12);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStateVector)
{
    StateVector psi(3);
    DensityMatrix rho(3);
    struct Step {
        const char *gate;
        std::vector<int> qubits;
    };
    std::vector<Step> steps = {{"h", {0}},   {"x90", {1}}, {"cz", {0, 2}},
                               {"y90", {2}}, {"cnot", {1, 2}}};
    for (const Step &step : steps) {
        Gate gate = *makeGate(step.gate);
        psi.apply(gate, step.qubits);
        rho.apply(gate, step.qubits);
    }
    EXPECT_NEAR(rho.fidelityWith(psi), 1.0, 1e-10);
    for (int q = 0; q < 3; ++q) {
        EXPECT_NEAR(rho.probabilityOne(q), psi.probabilityOne(q), 1e-10);
    }
}

TEST(DensityMatrix, MeasureMatchesProbabilities)
{
    Rng rng(17);
    DensityMatrix rho(1);
    rho.applyGate1(matRy(M_PI / 2.0), 0);
    int ones = 0;
    const int shots = 4000;
    for (int i = 0; i < shots; ++i) {
        DensityMatrix copy = rho;
        ones += copy.measure(0, rng);
    }
    EXPECT_NEAR(static_cast<double>(ones) / shots, 0.5, 0.03);
}

TEST(DensityMatrix, ResetQubitTracesOut)
{
    DensityMatrix rho(2);
    rho.applyGate1(matX(), 0);
    rho.applyGate1(matH(), 1);
    rho.resetQubit(0);
    EXPECT_NEAR(rho.probabilityOne(0), 0.0, 1e-12);
    // Qubit 1 untouched.
    EXPECT_NEAR(rho.probabilityOne(1), 0.5, 1e-12);
}

TEST(DensityMatrix, PauliExpectations)
{
    DensityMatrix rho(2);
    rho.applyGate1(matH(), 0); // |+> on qubit 0
    rho.applyGate1(matX(), 1); // |1> on qubit 1
    EXPECT_NEAR(rho.pauliExpectation("XI"), 1.0, 1e-12);
    EXPECT_NEAR(rho.pauliExpectation("ZI"), 0.0, 1e-12);
    EXPECT_NEAR(rho.pauliExpectation("IZ"), -1.0, 1e-12);
    EXPECT_NEAR(rho.pauliExpectation("XZ"), -1.0, 1e-12);
    EXPECT_NEAR(rho.pauliExpectation("II"), 1.0, 1e-12);
}

TEST(DensityMatrix, DepolarizingShrinksPurity)
{
    DensityMatrix rho(1);
    rho.applyGate1(matH(), 0);
    rho.applyChannel1(krausDepolarizing1(0.3), 0);
    EXPECT_LT(rho.purity(), 1.0);
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-12);
    // <X> shrinks by (1 - 4p/3).
    EXPECT_NEAR(rho.pauliExpectation("X"), 1.0 - 4.0 * 0.3 / 3.0, 1e-12);
}

TEST(DensityMatrix, AmplitudeDampingDecaysExcitedState)
{
    DensityMatrix rho(1);
    rho.applyGate1(matX(), 0);
    rho.applyChannel1(krausAmplitudeDamping(0.25), 0);
    EXPECT_NEAR(rho.probabilityOne(0), 0.75, 1e-12);
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-12);
}

TEST(DensityMatrix, PhaseDampingKillsCoherence)
{
    DensityMatrix rho(1);
    rho.applyGate1(matH(), 0);
    rho.applyChannel1(krausPhaseDamping(1.0), 0);
    EXPECT_NEAR(rho.pauliExpectation("X"), 0.0, 1e-9);
    EXPECT_NEAR(rho.probabilityOne(0), 0.5, 1e-12);
}

TEST(DensityMatrix, TwoQubitDepolarizingPreservesTrace)
{
    DensityMatrix rho(2);
    rho.applyGate1(matH(), 0);
    rho.applyGate2(matCz(), 0, 1);
    rho.applyChannel2(krausDepolarizing2(0.1), 0, 1);
    EXPECT_NEAR(rho.traceReal(), 1.0, 1e-10);
    EXPECT_LT(rho.purity(), 1.0);
}

// --------------------------------------------------------------- noise

TEST(Noise, IdleNoiseRelaxesTowardGround)
{
    NoiseModel model;
    model.t1Ns = 1000.0;
    model.t2Ns = 1000.0;
    DensityMatrix rho(1);
    rho.applyGate1(matX(), 0);
    applyIdleNoise(rho, 0, 1000.0, model);
    EXPECT_NEAR(rho.probabilityOne(0), std::exp(-1.0), 1e-9);
}

TEST(Noise, IdleNoiseDephasesAtT2)
{
    NoiseModel model;
    model.t1Ns = 1e12; // effectively no relaxation
    model.t2Ns = 500.0;
    DensityMatrix rho(1);
    rho.applyGate1(matH(), 0);
    applyIdleNoise(rho, 0, 500.0, model);
    EXPECT_NEAR(rho.pauliExpectation("X"), std::exp(-1.0), 1e-6);
}

TEST(Noise, DisabledModelIsIdentity)
{
    NoiseModel model = NoiseModel::ideal();
    DensityMatrix rho(1);
    rho.applyGate1(matH(), 0);
    applyIdleNoise(rho, 0, 1e6, model);
    applyGateNoise1(rho, 0, model);
    EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
    EXPECT_NEAR(rho.pauliExpectation("X"), 1.0, 1e-12);
}

TEST(Noise, JsonRoundTrip)
{
    NoiseModel model;
    model.t1Ns = 123.0;
    model.t2Ns = 200.0;
    model.readoutError = 0.07;
    NoiseModel loaded = NoiseModel::fromJson(model.toJson());
    EXPECT_DOUBLE_EQ(loaded.t1Ns, 123.0);
    EXPECT_DOUBLE_EQ(loaded.t2Ns, 200.0);
    EXPECT_DOUBLE_EQ(loaded.readoutError, 0.07);
}

TEST(Noise, RejectsUnphysicalT2)
{
    Json doc = Json::parse(R"({"t1_ns": 100, "t2_ns": 300})");
    EXPECT_THROW(NoiseModel::fromJson(doc), Error);
}

TEST(Noise, KrausSetsAreTracePreserving)
{
    for (const auto &kraus :
         {krausAmplitudeDamping(0.3), krausPhaseDamping(0.5),
          krausDepolarizing1(0.2)}) {
        CMatrix sum(2, 2);
        for (const CMatrix &k : kraus)
            sum = sum + k.dagger() * k;
        EXPECT_LT(sum.maxAbsDiff(CMatrix::identity(2)), 1e-12);
    }
    CMatrix sum(4, 4);
    for (const CMatrix &k : krausDepolarizing2(0.2))
        sum = sum + k.dagger() * k;
    EXPECT_LT(sum.maxAbsDiff(CMatrix::identity(4)), 1e-12);
}

// ----------------------------------------------------------- tomography

TEST(Tomography, PauliStringsEnumerateAll)
{
    auto strings = pauliStrings(2);
    EXPECT_EQ(strings.size(), 16u);
    EXPECT_EQ(strings[0], "II");
    // Character 0 addresses qubit 0.
    EXPECT_EQ(strings[1], "XI");
}

TEST(Tomography, LinearInversionRecoversBellState)
{
    StateVector bell(2);
    bell.applyGate1(matH(), 0);
    bell.applyGate2(matCnot(), 0, 1);
    DensityMatrix rho(bell);

    std::map<std::string, double> expectations;
    for (const std::string &axes : pauliStrings(2))
        expectations[axes] = rho.pauliExpectation(axes);
    CMatrix reconstructed = linearInversion(2, expectations);
    EXPECT_LT(reconstructed.maxAbsDiff(rho.matrix()), 1e-10);
    EXPECT_NEAR(stateFidelity(reconstructed, bell), 1.0, 1e-10);
}

TEST(Tomography, MlePhysicalStateUnchanged)
{
    StateVector psi(1);
    psi.applyGate1(matRy(1.1), 0);
    DensityMatrix rho(psi);
    CMatrix projected = mleProject(rho.matrix());
    EXPECT_LT(projected.maxAbsDiff(rho.matrix()), 1e-9);
}

TEST(Tomography, MleRepairsNegativeEigenvalues)
{
    // An unphysical "density matrix" with a negative eigenvalue, as
    // linear inversion produces under shot noise.
    CMatrix bad(2, 2, {1.1, 0.0, 0.0, -0.1});
    CMatrix fixed = mleProject(bad);
    EigenResult eig = eigenHermitian(fixed);
    for (double value : eig.values)
        EXPECT_GE(value, -1e-12);
    EXPECT_NEAR(fixed.trace().real(), 1.0, 1e-12);
    // Closest physical state is |0><0|.
    EXPECT_NEAR(fixed(0, 0).real(), 1.0, 1e-12);
}

TEST(Tomography, MlePreservesTraceOne)
{
    Rng rng(31);
    // Noisy expectations around a random pure state.
    StateVector psi(2);
    psi.applyGate1(matRy(0.7), 0);
    psi.applyGate1(matRx(1.9), 1);
    psi.applyGate2(matCz(), 0, 1);
    DensityMatrix rho(psi);
    std::map<std::string, double> expectations;
    for (const std::string &axes : pauliStrings(2)) {
        double noise = axes == "II" ? 0.0 : 0.05 * rng.normal();
        expectations[axes] = rho.pauliExpectation(axes) + noise;
    }
    CMatrix estimate = mleProject(linearInversion(2, expectations));
    EXPECT_NEAR(estimate.trace().real(), 1.0, 1e-10);
    EXPECT_GT(stateFidelity(estimate, psi), 0.85);
}
