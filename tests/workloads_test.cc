/**
 * @file
 * Unit tests for the workload generators: the Clifford group and its
 * 1.875-gate decomposition, RB sequences and survival physics, AllXY
 * tables and programs, the Fig. 7 benchmark circuits' structural
 * statistics, and the two-qubit Grover construction.
 */
#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "compiler/schedule.h"
#include "qsim/trajectory_state_vector.h"
#include "runtime/analysis.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "compiler/codegen.h"
#include "workloads/allxy.h"
#include "workloads/clifford.h"
#include "workloads/experiments.h"
#include "workloads/grover2q.h"
#include "workloads/grover_sr.h"
#include "workloads/ising.h"
#include "workloads/rb.h"
#include "workloads/surface_code.h"

using namespace eqasm;
using namespace eqasm::workloads;

// ------------------------------------------------------- Clifford group

TEST(Clifford, GroupHas24Elements)
{
    const CliffordGroup &group = CliffordGroup::instance();
    // All unitaries pairwise distinct (up to phase) by construction;
    // spot-check identity and a rotation.
    EXPECT_EQ(group.indexOf(qsim::CMatrix::identity(2)), 0);
    EXPECT_GE(group.indexOf(qsim::matRx(M_PI / 2.0)), 0);
}

TEST(Clifford, AverageDecompositionIs1875)
{
    // The paper: "each Clifford gate is decomposed into primitive x-
    // and y-rotations the gate count is increased by 1.875 on average".
    EXPECT_DOUBLE_EQ(CliffordGroup::instance().averageGateCount(), 1.875);
}

TEST(Clifford, DecompositionsReproduceUnitaries)
{
    const CliffordGroup &group = CliffordGroup::instance();
    for (int index = 0; index < kNumCliffords; ++index) {
        qsim::CMatrix product = qsim::CMatrix::identity(2);
        for (const std::string &gate : group.decomposition(index)) {
            if (gate == "I")
                continue;
            auto parsed = qsim::makeGate(gate);
            ASSERT_TRUE(parsed.has_value()) << gate;
            product = parsed->matrix * product;
        }
        EXPECT_EQ(group.indexOf(product), index);
    }
}

class CliffordElement : public ::testing::TestWithParam<int>
{
};

TEST_P(CliffordElement, InverseComposesToIdentity)
{
    const CliffordGroup &group = CliffordGroup::instance();
    int index = GetParam();
    EXPECT_EQ(group.compose(index, group.inverse(index)), 0);
    EXPECT_EQ(group.compose(group.inverse(index), index), 0);
}

TEST_P(CliffordElement, CompositionStaysInGroup)
{
    const CliffordGroup &group = CliffordGroup::instance();
    int a = GetParam();
    for (int b = 0; b < kNumCliffords; ++b) {
        int c = group.compose(a, b);
        EXPECT_GE(c, 0);
        EXPECT_LT(c, kNumCliffords);
    }
}

TEST_P(CliffordElement, DecompositionAtMostThreePrimitives)
{
    const CliffordGroup &group = CliffordGroup::instance();
    EXPECT_LE(group.decomposition(GetParam()).size(), 3u);
    EXPECT_GE(group.decomposition(GetParam()).size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(All24, CliffordElement,
                         ::testing::Range(0, kNumCliffords));

TEST(Clifford, RandomSequenceRecoveryReturnsToZero)
{
    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        RbSequence sequence = randomRbSequence(20, rng);
        EXPECT_EQ(sequence.cliffords.size(), 21u);
        qsim::StateVector psi(1);
        for (const std::string &gate : sequence.gates) {
            if (gate == "I")
                continue;
            psi.applyGate1(qsim::makeGate(gate)->matrix, 0);
        }
        EXPECT_NEAR(psi.probabilityOf(0), 1.0, 1e-9) << "trial " << trial;
    }
}

// ------------------------------------------------------------------ RB

TEST(Rb, NoNoiseMeansPerfectSurvival)
{
    Rng rng(3);
    RbSequence sequence = randomRbSequence(50, rng);
    double survival = rbSurvivalProbability(
        sequence, 20.0, qsim::NoiseModel::ideal());
    EXPECT_NEAR(survival, 1.0, 1e-9);
}

TEST(Rb, SurvivalDecaysWithLength)
{
    Rng rng(5);
    qsim::NoiseModel noise; // calibrated defaults
    auto curve = rbDecayCurve({4, 64, 512}, 8, 20.0, noise, rng);
    EXPECT_GT(curve[0], curve[1]);
    EXPECT_GT(curve[1], curve[2]);
    EXPECT_GT(curve[0], 0.9);
}

TEST(Rb, LargerIntervalDecaysFaster)
{
    Rng rng(5);
    qsim::NoiseModel noise;
    auto fast = rbDecayCurve({256}, 10, 20.0, noise, rng);
    Rng rng2(5);
    auto slow = rbDecayCurve({256}, 10, 320.0, noise, rng2);
    EXPECT_GT(fast[0], slow[0] + 0.02);
}

TEST(Rb, CircuitHasExpectedDensity)
{
    Rng rng(11);
    compiler::Circuit circuit = rbCircuit(7, 100, rng);
    EXPECT_EQ(circuit.numQubits, 7);
    // 7 qubits x 100 Cliffords x 1.875 gates on average.
    double expected = 7 * 100 * 1.875;
    EXPECT_NEAR(static_cast<double>(circuit.gates.size()), expected,
                expected * 0.1);
    EXPECT_DOUBLE_EQ(circuit.twoQubitFraction(), 0.0);
}

TEST(Rb, DecayFitRecoversErrorRate)
{
    // Generate a synthetic decay and check the fit pipeline.
    std::vector<double> ks, ys;
    const double p = 0.995, a = 0.5, b = 0.5;
    for (int k = 1; k <= 800; k += 40) {
        ks.push_back(k);
        ys.push_back(a * std::pow(p, k) + b);
    }
    runtime::DecayFit fit = runtime::fitExponentialDecay(ks, ys);
    EXPECT_NEAR(fit.decay, p, 1e-3);
    EXPECT_NEAR(fit.amplitude, a, 1e-2);
    EXPECT_NEAR(fit.floor, b, 1e-2);
    double eps = runtime::rbErrorPerGate(fit.decay);
    EXPECT_NEAR(eps, 1.0 - std::pow((1.0 + p) / 2.0, 1.0 / 1.875), 1e-4);
}

// --------------------------------------------------------------- AllXY

TEST(Allxy, TableShape)
{
    const auto &pairs = allxyPairs();
    int zeros = 0, halves = 0, ones = 0;
    for (const AllxyPair &pair : pairs) {
        if (pair.idealFractionOne == 0.0)
            ++zeros;
        else if (pair.idealFractionOne == 0.5)
            ++halves;
        else
            ++ones;
    }
    EXPECT_EQ(zeros, 5);
    EXPECT_EQ(halves, 12);
    EXPECT_EQ(ones, 4);
}

TEST(Allxy, IdealFractionsMatchStateVector)
{
    for (const AllxyPair &pair : allxyPairs()) {
        qsim::StateVector psi(1);
        for (const char *gate : {pair.first, pair.second}) {
            if (std::string(gate) == "I")
                continue;
            psi.applyGate1(qsim::makeGate(gate)->matrix, 0);
        }
        EXPECT_NEAR(psi.probabilityOne(0), pair.idealFractionOne, 1e-9)
            << pair.first << ", " << pair.second;
    }
}

TEST(Allxy, CombinationIndexing)
{
    // "each gate pair ... repeated on the first qubit while the entire
    // sequence is repeated on the second qubit".
    EXPECT_EQ(allxyFirstQubitPair(0), 0);
    EXPECT_EQ(allxyFirstQubitPair(1), 0);
    EXPECT_EQ(allxyFirstQubitPair(41), 20);
    EXPECT_EQ(allxySecondQubitPair(0), 0);
    EXPECT_EQ(allxySecondQubitPair(21), 0);
    EXPECT_EQ(allxySecondQubitPair(41), 20);
}

TEST(Allxy, ProgramsContainFig3Structure)
{
    std::string program = twoQubitAllxyProgram(7, 0, 2);
    EXPECT_NE(program.find("QWAIT 10000"), std::string::npos);
    EXPECT_NE(program.find("MEASZ S7"), std::string::npos);
    EXPECT_NE(program.find("|"), std::string::npos); // VLIW bundle
}

// ------------------------------------------- Fig. 7 benchmark circuits

TEST(Ising, MatchesPaperStatistics)
{
    compiler::Circuit circuit = isingCircuit(chip::Topology::surface7());
    EXPECT_EQ(circuit.numQubits, 7);
    EXPECT_GT(circuit.gates.size(), 1000u);
    // "< 1% two-qubit gates".
    EXPECT_LT(circuit.twoQubitFraction(), 0.01);
    EXPECT_GT(circuit.twoQubitFraction(), 0.0);
}

TEST(Ising, TwoQubitGatesUseAllowedPairs)
{
    chip::Topology chip = chip::Topology::surface7();
    compiler::Circuit circuit = isingCircuit(chip);
    for (const compiler::Gate &gate : circuit.gates) {
        if (gate.qubits.size() == 2) {
            EXPECT_TRUE(
                chip.edgeIndex(gate.qubits[0], gate.qubits[1]).has_value());
        }
    }
}

TEST(GroverSr, MatchesPaperStatistics)
{
    compiler::Circuit circuit = groverSquareRootCircuit();
    EXPECT_EQ(circuit.numQubits, 8);
    // "~39% two-qubit gates".
    EXPECT_NEAR(circuit.twoQubitFraction(), 0.39, 0.02);
}

TEST(GroverSr, IsSequential)
{
    // The schedule of a sequential circuit is almost as long as the sum
    // of its gate durations (little parallelism).
    compiler::Circuit circuit = groverSquareRootCircuit({8, 4});
    auto timed = compiler::scheduleAsap(
        circuit, isa::OperationSet::defaultSet());
    uint64_t total = 0;
    for (const auto &gate : timed.gates)
        total += static_cast<uint64_t>(gate.durationCycles);
    EXPECT_GT(static_cast<double>(timed.makespan()),
              0.55 * static_cast<double>(total));
}

// ---------------------------------------------------------- Grover 2q

TEST(Grover2q, CircuitFindsMarkedElementExactly)
{
    for (int marked = 0; marked < 4; ++marked) {
        compiler::Circuit circuit = groverCircuit(marked);
        qsim::StateVector psi(2);
        for (const compiler::Gate &gate : circuit.gates) {
            auto parsed = qsim::makeGate(
                gate.op == "CZ" ? "cz" : gate.op);
            ASSERT_TRUE(parsed.has_value()) << gate.op;
            psi.apply(*parsed, gate.qubits);
        }
        EXPECT_NEAR(psi.probabilityOf(static_cast<uint64_t>(marked)), 1.0,
                    1e-9)
            << "marked " << marked;
    }
}

TEST(Grover2q, IdealStateMatchesMarkedElement)
{
    for (int marked = 0; marked < 4; ++marked) {
        qsim::StateVector ideal = groverIdealState(marked);
        EXPECT_DOUBLE_EQ(
            ideal.probabilityOf(static_cast<uint64_t>(marked)), 1.0);
    }
}

TEST(Grover2q, BasisPreRotations)
{
    EXPECT_STREQ(basisPreRotation(MeasBasis::z), "I");
    EXPECT_STREQ(basisPreRotation(MeasBasis::x), "Ym90");
    EXPECT_STREQ(basisPreRotation(MeasBasis::y), "X90");
}

TEST(Grover2q, PreRotationMapsBasisOntoZ)
{
    // |+> measured in the X basis must give +1 deterministically.
    qsim::StateVector plus(1);
    plus.applyGate1(qsim::matH(), 0);
    plus.applyGate1(qsim::makeGate("ym90")->matrix, 0);
    EXPECT_NEAR(plus.expectationZ(0), 1.0, 1e-9);

    // |+i> measured in the Y basis likewise.
    qsim::StateVector plus_i(1);
    plus_i.applyGate1(qsim::makeGate("xm90")->matrix, 0);
    plus_i.applyGate1(qsim::makeGate("x90")->matrix, 0);
    EXPECT_NEAR(plus_i.expectationZ(0), 1.0, 1e-9);
}

// --------------------------------------------------------- surface code

class SurfaceCodeError : public ::testing::TestWithParam<int>
{
};

TEST_P(SurfaceCodeError, ZAncillaDetectsInjectedXError)
{
    // Through the complete stack: codegen -> assembler -> binary ->
    // microarchitecture -> simulated chip.
    int error_qubit = GetParam();
    auto timed = compiler::scheduleAsap(
        zSyndromeRound(error_qubit), isa::OperationSet::defaultSet());
    runtime::Platform platform =
        runtime::Platform::ideal(runtime::Platform::surface7());
    runtime::QuantumProcessor processor(platform, 5);
    processor.loadSource(compiler::generateProgram(
        timed, isa::OperationSet::defaultSet(), platform.topology));
    int syndrome = processor.runShot().lastMeasurement(5);
    EXPECT_EQ(syndrome, error_qubit >= 0 ? 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(DataQubits, SurfaceCodeError,
                         ::testing::Values(-1, 0, 1, 3, 6));

TEST(SurfaceCode, TwoErrorsCancelInTheParity)
{
    // A weight-4 Z check sees the product: two X errors are invisible
    // (the distance-2 code detects exactly one error, Section 4.1).
    compiler::Circuit circuit = zSyndromeRound(0);
    circuit.gates.insert(circuit.gates.begin(),
                         compiler::Gate("X", 1));
    auto timed = compiler::scheduleAsap(
        circuit, isa::OperationSet::defaultSet());
    runtime::Platform platform =
        runtime::Platform::ideal(runtime::Platform::surface7());
    runtime::QuantumProcessor processor(platform, 5);
    processor.loadSource(compiler::generateProgram(
        timed, isa::OperationSet::defaultSet(), platform.topology));
    EXPECT_EQ(processor.runShot().lastMeasurement(5), 0);
}

TEST(SurfaceCode, FullRoundUsesOnlyAllowedPairs)
{
    compiler::Circuit circuit = fullSyndromeRound(3);
    chip::Topology chip = chip::Topology::surface7();
    for (const compiler::Gate &gate : circuit.gates) {
        if (gate.qubits.size() == 2) {
            EXPECT_TRUE(chip.edgeIndex(gate.qubits[0], gate.qubits[1])
                            .has_value());
        }
    }
    circuit.validate(isa::OperationSet::defaultSet());
}

// ------------------------------------------- rotated surface code (d)

class RotatedSurface : public ::testing::TestWithParam<int>
{
};

TEST_P(RotatedSurface, LayoutInvariants)
{
    int d = GetParam();
    RotatedSurfaceCode code(d);
    EXPECT_EQ(code.numDataQubits(), d * d);
    EXPECT_EQ(static_cast<int>(code.plaquettes().size()), d * d - 1);
    // Odd distances split checks evenly; d = 2 has 2 X + 1 Z.
    int x_count = static_cast<int>(code.xAncillas().size());
    int z_count = static_cast<int>(code.zAncillas().size());
    EXPECT_EQ(x_count + z_count, d * d - 1);
    EXPECT_LE(std::abs(x_count - z_count), 1);

    int bulk = 0;
    std::vector<int> x_checks_per_data(
        static_cast<size_t>(code.numDataQubits()), 0);
    std::vector<int> z_checks_per_data(x_checks_per_data);
    for (const chip::SurfacePlaquette &plaquette : code.plaquettes()) {
        std::vector<int> data = plaquette.dataQubits();
        EXPECT_TRUE(data.size() == 2 || data.size() == 4);
        bulk += data.size() == 4 ? 1 : 0;
        EXPECT_GE(plaquette.ancilla, code.numDataQubits());
        EXPECT_LT(plaquette.ancilla, code.numQubits());
        for (int qubit : data) {
            ASSERT_GE(qubit, 0);
            ASSERT_LT(qubit, code.numDataQubits());
            auto &per_data =
                plaquette.isX ? x_checks_per_data : z_checks_per_data;
            ++per_data[static_cast<size_t>(qubit)];
        }
    }
    EXPECT_EQ(bulk, (d - 1) * (d - 1));
    // Every data qubit is covered by 1-2 checks of each basis, and
    // neighbouring checks overlap on at most... (commutation: X and Z
    // plaquettes share 0 or 2 data qubits).
    for (int count : x_checks_per_data) {
        EXPECT_GE(count, 1);
        EXPECT_LE(count, 2);
    }
    for (int count : z_checks_per_data) {
        EXPECT_GE(count, 1);
        EXPECT_LE(count, 2);
    }
    for (const chip::SurfacePlaquette &x_plaquette : code.plaquettes()) {
        if (!x_plaquette.isX)
            continue;
        for (const chip::SurfacePlaquette &z_plaquette :
             code.plaquettes()) {
            if (z_plaquette.isX)
                continue;
            std::vector<int> x_data = x_plaquette.dataQubits();
            int shared = 0;
            for (int qubit : z_plaquette.dataQubits()) {
                shared += std::find(x_data.begin(), x_data.end(),
                                    qubit) != x_data.end();
            }
            EXPECT_TRUE(shared == 0 || shared == 2)
                << "anticommuting X/Z checks share " << shared
                << " data qubits";
        }
    }
}

TEST_P(RotatedSurface, TopologyMatchesPlaquettes)
{
    int d = GetParam();
    RotatedSurfaceCode code(d);
    chip::Topology topology = code.topology();
    EXPECT_EQ(topology.numQubits(), 2 * d * d - 1);
    int couplings = 0;
    for (const chip::SurfacePlaquette &plaquette : code.plaquettes()) {
        for (int data : plaquette.dataQubits()) {
            ++couplings;
            EXPECT_TRUE(
                topology.edgeIndex(plaquette.ancilla, data).has_value());
            EXPECT_TRUE(
                topology.edgeIndex(data, plaquette.ancilla).has_value());
        }
    }
    EXPECT_EQ(topology.numEdges(), 2 * couplings);
}

TEST_P(RotatedSurface, SyndromeCircuitIsConflictFreePerStep)
{
    int d = GetParam();
    RotatedSurfaceCode code(d);
    compiler::Circuit circuit = code.syndromeRounds(2);
    circuit.validate(isa::OperationSet::defaultSet());
    chip::Topology topology = code.topology();
    for (const compiler::Gate &gate : circuit.gates) {
        if (gate.qubits.size() == 2) {
            EXPECT_TRUE(
                topology.edgeIndex(gate.qubits[0], gate.qubits[1])
                    .has_value());
        }
    }
    // Each round measures every ancilla exactly once.
    int measurements = 0;
    for (const compiler::Gate &gate : circuit.gates)
        measurements += gate.op == "MEASZ" ? 1 : 0;
    EXPECT_EQ(measurements, 2 * (d * d - 1));
}

INSTANTIATE_TEST_SUITE_P(Distances, RotatedSurface,
                         ::testing::Values(2, 3, 5));

TEST(RotatedSurfaceCircuit, NoiselessZChecksReadZeroAtDistance2)
{
    // d = 2 fits the density backend: run one round end-to-end through
    // codegen -> assembler -> engine and check the Z ancilla parity.
    runtime::Platform platform =
        runtime::Platform::ideal(runtime::Platform::rotatedSurface(2));
    platform.device.backend = qsim::BackendKind::density;
    runtime::QuantumProcessor processor(platform, 3);
    processor.loadSource(
        syndromeProgram(2, 1, platform.operations));
    engine::BatchResult result = processor.runBatch(64, 2);
    RotatedSurfaceCode code(2);
    for (int ancilla : code.zAncillas())
        EXPECT_DOUBLE_EQ(result.fractionOne(ancilla), 0.0);
}

// ---------------------------------------------------------- experiments

TEST(Experiments, ActiveResetProgramMatchesFig4)
{
    std::string program = activeResetProgram(2);
    EXPECT_NE(program.find("X90 S2"), std::string::npos);
    EXPECT_NE(program.find("C_X S2"), std::string::npos);
    EXPECT_NE(program.find("QWAIT 10000"), std::string::npos);
}

TEST(Experiments, CfcProgramMatchesFig5)
{
    std::string program = cfcProgram(1, 0);
    EXPECT_NE(program.find("FMR R1, Q1"), std::string::npos);
    EXPECT_NE(program.find("BR EQ, eq_path"), std::string::npos);
    EXPECT_NE(program.find("BR ALWAYS, next"), std::string::npos);
}

TEST(Experiments, RabiOperationSetSpansAngles)
{
    isa::OperationSet set = rabiOperationSet(5);
    EXPECT_NE(set.findByName("X_AMP_0"), nullptr);
    EXPECT_NE(set.findByName("X_AMP_4"), nullptr);
    EXPECT_EQ(set.byName("X_AMP_0").unitary, "rx:0.000000");
    EXPECT_EQ(set.byName("X_AMP_4").unitary, "rx:360.000000");
}

TEST(Experiments, AnalysisHelpers)
{
    EXPECT_NEAR(runtime::readoutCorrect(0.5, 0.1, 0.1), 0.5, 1e-12);
    EXPECT_NEAR(runtime::readoutCorrect(0.9, 0.1, 0.1), 1.0, 1e-12);
    EXPECT_NEAR(runtime::readoutCorrect(0.05, 0.1, 0.1), 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(runtime::mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_NEAR(runtime::standardDeviation({1.0, 2.0, 3.0}), 1.0, 1e-12);
}
