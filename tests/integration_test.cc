/**
 * @file
 * Cross-module integration tests: full eQASM programs assembled to
 * binary, decoded, and executed on the QuMA_v2 model against the
 * simulated (or mock) device — the Section 5 experiments in miniature.
 */
#include <gtest/gtest.h>

#include "qsim/gates.h"
#include "runtime/analysis.h"
#include "runtime/mock_device.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "workloads/allxy.h"
#include "workloads/experiments.h"
#include "workloads/grover2q.h"

using namespace eqasm;
using runtime::Platform;
using runtime::QuantumProcessor;

namespace {

Platform
idealTwoQubit()
{
    return Platform::ideal(Platform::twoQubit());
}

} // namespace

TEST(Integration, XGateFlipsQubitDeterministically)
{
    QuantumProcessor processor(idealTwoQubit(), /*seed=*/7);
    processor.loadSource("SMIS S0, {0}\n"
                         "QWAIT 100\n"
                         "X S0\n"
                         "MEASZ S0\n"
                         "QWAIT 50\n"
                         "STOP\n");
    for (int shot = 0; shot < 20; ++shot) {
        runtime::ShotRecord record = processor.runShot();
        ASSERT_EQ(record.measurements.size(), 1u);
        EXPECT_EQ(record.lastMeasurement(0), 1);
    }
}

TEST(Integration, IdleQubitMeasuresZero)
{
    QuantumProcessor processor(idealTwoQubit(), 7);
    processor.loadSource("SMIS S0, {0}\n"
                         "QWAIT 100\n"
                         "MEASZ S0\n"
                         "QWAIT 50\n"
                         "STOP\n");
    EXPECT_EQ(processor.runShot().lastMeasurement(0), 0);
}

TEST(Integration, SomqAppliesToBothQubits)
{
    QuantumProcessor processor(idealTwoQubit(), 7);
    processor.loadSource("SMIS S7, {0, 2}\n"
                         "QWAIT 100\n"
                         "X S7\n"
                         "MEASZ S7\n"
                         "QWAIT 50\n"
                         "STOP\n");
    runtime::ShotRecord record = processor.runShot();
    EXPECT_EQ(record.lastMeasurement(0), 1);
    EXPECT_EQ(record.lastMeasurement(2), 1);
}

TEST(Integration, VliwBundleAppliesDifferentGates)
{
    QuantumProcessor processor(idealTwoQubit(), 7);
    // X on qubit 0 (-> |1>), I on qubit 2 (-> |0>), simultaneously.
    processor.loadSource("SMIS S0, {0}\n"
                         "SMIS S2, {2}\n"
                         "SMIS S7, {0, 2}\n"
                         "QWAIT 100\n"
                         "1, X S0 | I S2\n"
                         "1, MEASZ S7\n"
                         "QWAIT 50\n"
                         "STOP\n");
    runtime::ShotRecord record = processor.runShot();
    EXPECT_EQ(record.lastMeasurement(0), 1);
    EXPECT_EQ(record.lastMeasurement(2), 0);
}

TEST(Integration, CzCreatesCorrelations)
{
    QuantumProcessor processor(idealTwoQubit(), 21);
    // Bell-like state: Y90 both, CZ, Ym90 on target -> |00> + |11>.
    processor.loadSource("SMIS S7, {0, 2}\n"
                         "SMIS S1, {2}\n"
                         "SMIT T0, {(0, 2)}\n"
                         "QWAIT 100\n"
                         "Y90 S7\n"
                         "CZ T0\n"
                         "2, Ym90 S1\n"
                         "1, MEASZ S7\n"
                         "QWAIT 50\n"
                         "STOP\n");
    int agreements = 0;
    const int shots = 200;
    for (int shot = 0; shot < shots; ++shot) {
        runtime::ShotRecord record = processor.runShot();
        if (record.lastMeasurement(0) == record.lastMeasurement(2))
            ++agreements;
    }
    // A Bell state measures both qubits equal every time.
    EXPECT_EQ(agreements, shots);
}

TEST(Integration, ActiveResetIdealDeviceResetsPerfectly)
{
    QuantumProcessor processor(idealTwoQubit(), 99);
    processor.loadSource(workloads::activeResetProgram(2));
    const int shots = 300;
    int zeros = 0;
    for (int shot = 0; shot < shots; ++shot) {
        runtime::ShotRecord record = processor.runShot();
        ASSERT_EQ(record.measurements.size(), 2u);
        if (record.lastMeasurement(2) == 0)
            ++zeros;
    }
    // Without readout error the conditional X always resets to |0>.
    EXPECT_EQ(zeros, shots);
}

TEST(Integration, ActiveResetFirstMeasurementIsRandom)
{
    QuantumProcessor processor(idealTwoQubit(), 123);
    processor.loadSource(workloads::activeResetProgram(2));
    int first_ones = 0;
    const int shots = 400;
    for (int shot = 0; shot < shots; ++shot) {
        runtime::ShotRecord record = processor.runShot();
        first_ones += record.measurements.front().bit;
    }
    double fraction = static_cast<double>(first_ones) / shots;
    EXPECT_NEAR(fraction, 0.5, 0.1);
}

TEST(Integration, CfcBranchesOnMockResultOne)
{
    Platform platform = idealTwoQubit();
    microarch::QuMa controller(platform.operations, platform.topology,
                               platform.uarch);
    runtime::MockResultDevice device(15);
    controller.attachDevice(&device);

    assembler::Assembler asm_(platform.operations, platform.topology,
                              platform.params);
    auto program = asm_.assemble(workloads::cfcProgram(2, 0));
    controller.loadImage(program.image);

    device.programResults(2, {1});
    controller.runShot();
    // Result 1 -> the EQ path applies Y.
    bool saw_y = false;
    for (const auto &pulse : device.shotPulses()) {
        if (pulse.operation == "Y" && pulse.qubit == 0)
            saw_y = true;
        EXPECT_NE(pulse.operation, "X");
    }
    EXPECT_TRUE(saw_y);
}

TEST(Integration, CfcBranchesOnMockResultZero)
{
    Platform platform = idealTwoQubit();
    microarch::QuMa controller(platform.operations, platform.topology,
                               platform.uarch);
    runtime::MockResultDevice device(15);
    controller.attachDevice(&device);

    assembler::Assembler asm_(platform.operations, platform.topology,
                              platform.params);
    auto program = asm_.assemble(workloads::cfcProgram(2, 0));
    controller.loadImage(program.image);

    device.programResults(2, {0});
    controller.runShot();
    bool saw_x = false;
    for (const auto &pulse : device.shotPulses()) {
        if (pulse.operation == "X" && pulse.qubit == 0)
            saw_x = true;
        EXPECT_NE(pulse.operation, "Y");
    }
    EXPECT_TRUE(saw_x);
}

TEST(Integration, CfcAlternatesLikeThePaperValidation)
{
    // "The UHFQC is programmed to generate alternative mock measurement
    // results ... The alternation between X and Y operations is
    // verified" — run shots with alternating programmed results.
    Platform platform = idealTwoQubit();
    microarch::QuMa controller(platform.operations, platform.topology,
                               platform.uarch);
    runtime::MockResultDevice device(15);
    controller.attachDevice(&device);
    assembler::Assembler asm_(platform.operations, platform.topology,
                              platform.params);
    controller.loadImage(asm_.assemble(workloads::cfcProgram(2, 0)).image);

    std::vector<std::string> driven_ops;
    for (int shot = 0; shot < 6; ++shot) {
        device.programResults(2, {shot % 2});
        controller.runShot();
        for (const auto &pulse : device.shotPulses()) {
            if (pulse.qubit == 0)
                driven_ops.push_back(pulse.operation);
        }
    }
    ASSERT_EQ(driven_ops.size(), 6u);
    for (int shot = 0; shot < 6; ++shot)
        EXPECT_EQ(driven_ops[static_cast<size_t>(shot)],
                  shot % 2 ? "Y" : "X");
}

TEST(Integration, AllxyIdealStaircase)
{
    Platform platform = idealTwoQubit();
    for (int combination = 0;
         combination < workloads::kTwoQubitAllxyCombinations;
         combination += 5) {
        QuantumProcessor processor(platform, 17);
        processor.loadSource(
            workloads::twoQubitAllxyProgram(combination, 0, 2));
        const int shots = 200;
        auto records = processor.run(shots);
        double f_a = processor.fractionOne(records, 0);
        double f_b = processor.fractionOne(records, 2);
        double ideal_a =
            workloads::allxyPairs()[static_cast<size_t>(
                workloads::allxyFirstQubitPair(combination))]
                .idealFractionOne;
        double ideal_b =
            workloads::allxyPairs()[static_cast<size_t>(
                workloads::allxySecondQubitPair(combination))]
                .idealFractionOne;
        EXPECT_NEAR(f_a, ideal_a, 0.12)
            << "combination " << combination;
        EXPECT_NEAR(f_b, ideal_b, 0.12)
            << "combination " << combination;
    }
}

TEST(Integration, GroverFindsEveryMarkedElementIdeally)
{
    Platform platform = idealTwoQubit();
    for (int marked = 0; marked < 4; ++marked) {
        QuantumProcessor processor(platform, 5);
        processor.loadSource(workloads::groverProgram(
            marked, workloads::MeasBasis::z, workloads::MeasBasis::z, 0,
            2));
        for (int shot = 0; shot < 25; ++shot) {
            runtime::ShotRecord record = processor.runShot();
            int bit0 = record.lastMeasurement(0);
            int bit1 = record.lastMeasurement(2);
            EXPECT_EQ(bit0, marked & 1) << "marked " << marked;
            EXPECT_EQ(bit1, (marked >> 1) & 1) << "marked " << marked;
        }
    }
}

TEST(Integration, T1DecayIsMonotoneWithNoise)
{
    Platform platform = Platform::twoQubit();
    std::vector<double> fractions;
    for (uint64_t wait : {50ull, 2000ull, 8000ull, 30000ull}) {
        QuantumProcessor processor(platform, 31);
        processor.loadSource(workloads::t1Program(wait, 0));
        auto records = processor.run(400);
        fractions.push_back(processor.fractionOne(records, 0));
    }
    // Longer waits relax further toward |0>.
    for (size_t i = 1; i < fractions.size(); ++i)
        EXPECT_LT(fractions[i], fractions[i - 1] + 0.05);
    EXPECT_GT(fractions.front(), 0.75);
    EXPECT_LT(fractions.back(), 0.45);
}

TEST(Integration, RabiOscillationSweepsExcitation)
{
    const int steps = 9;
    Platform platform = idealTwoQubit();
    platform.operations = workloads::rabiOperationSet(steps);
    std::vector<double> fractions;
    for (int step = 0; step < steps; ++step) {
        QuantumProcessor processor(platform, 47);
        processor.loadSource(workloads::rabiProgram(step, 0));
        auto records = processor.run(300);
        fractions.push_back(processor.fractionOne(records, 0));
    }
    // rx(0) -> 0, rx(180 deg) -> 1, rx(360 deg) -> 0.
    EXPECT_NEAR(fractions[0], 0.0, 0.05);
    EXPECT_NEAR(fractions[4], 1.0, 0.05);
    EXPECT_NEAR(fractions[8], 0.0, 0.05);
}

TEST(Integration, MeasurementResultRegisterReadableViaFmr)
{
    QuantumProcessor processor(idealTwoQubit(), 3);
    processor.loadSource("SMIS S0, {0}\n"
                         "QWAIT 100\n"
                         "X S0\n"
                         "MEASZ S0\n"
                         "QWAIT 50\n"
                         "FMR R5, Q0\n"
                         "STOP\n");
    processor.runShot();
    EXPECT_EQ(processor.controller().gpr(5), 1u);
    EXPECT_TRUE(processor.controller().measurementRegisterValid(0));
}

TEST(Integration, StoreMeasurementToDataMemory)
{
    QuantumProcessor processor(idealTwoQubit(), 3);
    processor.loadSource("SMIS S0, {0}\n"
                         "QWAIT 100\n"
                         "X S0\n"
                         "MEASZ S0\n"
                         "QWAIT 50\n"
                         "FMR R5, Q0\n"
                         "LDI R6, 16\n"
                         "ST R5, R6(4)\n"
                         "STOP\n");
    processor.runShot();
    EXPECT_EQ(processor.controller().dataWord(20), 1u);
}

TEST(Integration, LoopWithBranchRunsBundlesRepeatedly)
{
    // A classical loop applying X an odd number of times.
    QuantumProcessor processor(idealTwoQubit(), 3);
    processor.loadSource("SMIS S0, {0}\n"
                         "LDI R0, 3\n"
                         "LDI R1, 0\n"
                         "LDI R2, 1\n"
                         "QWAIT 100\n"
                         "loop:\n"
                         "X S0\n"
                         "ADD R1, R1, R2\n"
                         "CMP R1, R0\n"
                         "BR LT, loop\n"
                         "MEASZ S0\n"
                         "QWAIT 50\n"
                         "STOP\n");
    runtime::ShotRecord record = processor.runShot();
    EXPECT_EQ(record.lastMeasurement(0), 1); // three X = one X.
}

TEST(Integration, ReadoutErrorLimitsResetFidelity)
{
    // With the calibrated (noisy) platform the reset probability drops
    // to the paper's ballpark (82.7 %, "limited by the readout
    // fidelity").
    Platform platform = Platform::twoQubit();
    QuantumProcessor processor(platform, 2026);
    processor.loadSource(workloads::activeResetProgram(2));
    auto records = processor.run(1500);
    double p_zero = 1.0 - processor.fractionOne(records, 2);
    EXPECT_GT(p_zero, 0.75);
    EXPECT_LT(p_zero, 0.92);
}

TEST(Integration, RunShotIsReproducibleAcrossSeeds)
{
    auto run_once = [](uint64_t seed) {
        QuantumProcessor processor(Platform::twoQubit(), seed);
        processor.loadSource(workloads::activeResetProgram(2));
        std::vector<int> bits;
        for (int shot = 0; shot < 50; ++shot)
            bits.push_back(processor.runShot().lastMeasurement(2));
        return bits;
    };
    EXPECT_EQ(run_once(11), run_once(11));
    EXPECT_NE(run_once(11), run_once(12));
}
