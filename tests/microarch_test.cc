/**
 * @file
 * Unit tests for the QuMA_v2 model: classical instruction semantics
 * (Table 1), comparison flags, the timeline/trigger machinery, fast
 * conditional execution (all four flag types), CFC counters and FMR
 * stalling, error conditions (operation combination conflicts, invalid
 * T registers, underruns) and the issue-rate problem.
 */
#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "chip/topology.h"
#include "common/strings.h"
#include "isa/operation_set.h"
#include "microarch/quma.h"
#include "runtime/mock_device.h"

using namespace eqasm;
using isa::CondFlag;
using microarch::MicroarchConfig;
using microarch::QuMa;
using runtime::MockResultDevice;

namespace {

/** Assembles a program and runs it on a QuMa with a mock device. */
struct Rig {
    isa::OperationSet ops;
    chip::Topology topology;
    QuMa controller;
    MockResultDevice device;

    explicit Rig(isa::OperationSet operation_set =
                     isa::OperationSet::defaultSet(),
                 MicroarchConfig config = {})
        : ops(std::move(operation_set)),
          topology(chip::Topology::twoQubit()),
          controller(ops, topology, config), device(15)
    {
        controller.attachDevice(&device);
    }

    microarch::RunStats
    run(const std::string &source)
    {
        assembler::Assembler asm_(ops, topology);
        controller.loadImage(asm_.assemble(source).image);
        return controller.runShot();
    }
};

/** Operation set with conditional gates for every execution flag. */
isa::OperationSet
flagOps()
{
    auto set = isa::OperationSet::defaultSet();
    set.add({"CX_SAME", 26, isa::OpClass::singleQubit, 1,
             isa::ExecFlag::lastTwoSame, isa::Channel::microwave, "x"});
    set.add({"CX_ZERO", 27, isa::OpClass::singleQubit, 1,
             isa::ExecFlag::lastZero, isa::Channel::microwave, "x"});
    return set;
}

} // namespace

// ----------------------------------------------- classical instructions

TEST(Classical, LdiSignExtends)
{
    Rig rig;
    rig.run("LDI R1, -1\nLDI R2, 524287\nSTOP\n");
    EXPECT_EQ(rig.controller.gpr(1), 0xffffffffu);
    EXPECT_EQ(rig.controller.gpr(2), 524287u);
}

TEST(Classical, LduiConcatenatesBitFields)
{
    // Rd = Imm[14:0] :: Rs[16:0] (Table 1).
    Rig rig;
    rig.run("LDI R1, 0x1ffff\nLDUI R2, 0x7fff, R1\nSTOP\n");
    EXPECT_EQ(rig.controller.gpr(2), 0xffffffffu);
    Rig rig2;
    rig2.run("LDI R1, 3\nLDUI R2, 1, R1\nSTOP\n");
    EXPECT_EQ(rig2.controller.gpr(2), (1u << 17) | 3u);
}

TEST(Classical, ArithmeticAndLogic)
{
    Rig rig;
    rig.run("LDI R1, 12\nLDI R2, 10\n"
            "ADD R3, R1, R2\nSUB R4, R1, R2\n"
            "AND R5, R1, R2\nOR R6, R1, R2\nXOR R7, R1, R2\n"
            "NOT R8, R1\nSTOP\n");
    EXPECT_EQ(rig.controller.gpr(3), 22u);
    EXPECT_EQ(rig.controller.gpr(4), 2u);
    EXPECT_EQ(rig.controller.gpr(5), 8u);
    EXPECT_EQ(rig.controller.gpr(6), 14u);
    EXPECT_EQ(rig.controller.gpr(7), 6u);
    EXPECT_EQ(rig.controller.gpr(8), ~12u);
}

TEST(Classical, SubtractionWraps)
{
    Rig rig;
    rig.run("LDI R1, 0\nLDI R2, 1\nSUB R3, R1, R2\nSTOP\n");
    EXPECT_EQ(rig.controller.gpr(3), 0xffffffffu);
}

TEST(Classical, LoadStoreDataMemory)
{
    Rig rig;
    rig.run("LDI R1, 100\nLDI R2, 77\nST R2, R1(5)\nLD R3, R1(5)\nSTOP\n");
    EXPECT_EQ(rig.controller.gpr(3), 77u);
    EXPECT_EQ(rig.controller.dataWord(105), 77u);
}

TEST(Classical, LoadOutOfRangeFaults)
{
    Rig rig;
    EXPECT_THROW(rig.run("LDI R1, 100000\nLD R2, R1(0)\nSTOP\n"), Error);
}

struct CmpCase {
    int32_t lhs;
    int32_t rhs;
    CondFlag flag;
    bool expected;
};

class ComparisonFlags : public ::testing::TestWithParam<CmpCase>
{
};

TEST_P(ComparisonFlags, CmpSetsAllFlags)
{
    const CmpCase &c = GetParam();
    Rig rig;
    rig.run(format("LDI R1, %d\nLDI R2, %d\nCMP R1, R2\nSTOP\n", c.lhs,
                   c.rhs));
    EXPECT_EQ(rig.controller.comparisonFlag(c.flag), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ComparisonFlags,
    ::testing::Values(
        CmpCase{5, 5, CondFlag::eq, true},
        CmpCase{5, 6, CondFlag::eq, false},
        CmpCase{5, 6, CondFlag::ne, true},
        CmpCase{-1, 1, CondFlag::lt, true},   // signed
        CmpCase{-1, 1, CondFlag::ltu, false}, // unsigned: 0xffffffff > 1
        CmpCase{-1, 1, CondFlag::gtu, true},
        CmpCase{2, 2, CondFlag::ge, true},
        CmpCase{2, 2, CondFlag::le, true},
        CmpCase{3, 2, CondFlag::gt, true},
        CmpCase{2, 3, CondFlag::leu, true},
        CmpCase{7, 7, CondFlag::geu, true},
        CmpCase{0, 0, CondFlag::always, true},
        CmpCase{0, 0, CondFlag::never, false}));

TEST(Classical, FbrFetchesFlagIntoGpr)
{
    Rig rig;
    rig.run("LDI R1, 4\nLDI R2, 4\nCMP R1, R2\nFBR EQ, R3\nFBR NE, R4\n"
            "STOP\n");
    EXPECT_EQ(rig.controller.gpr(3), 1u);
    EXPECT_EQ(rig.controller.gpr(4), 0u);
}

TEST(Classical, BranchTakenAndNotTaken)
{
    Rig rig;
    rig.run("LDI R1, 1\nLDI R2, 2\nCMP R1, R2\n"
            "BR EQ, skip\n"
            "LDI R3, 111\n"
            "skip:\n"
            "STOP\n");
    EXPECT_EQ(rig.controller.gpr(3), 111u); // EQ false: not taken.

    Rig rig2;
    rig2.run("LDI R1, 2\nLDI R2, 2\nCMP R1, R2\n"
             "BR EQ, skip\n"
             "LDI R3, 111\n"
             "skip:\n"
             "STOP\n");
    EXPECT_EQ(rig2.controller.gpr(3), 0u); // taken.
}

TEST(Classical, BranchOutOfRangeFaults)
{
    Rig rig;
    EXPECT_THROW(rig.run("BR ALWAYS, -5\nSTOP\n"), Error);
}

TEST(Classical, ProgramWithoutStopHaltsAtEnd)
{
    Rig rig;
    auto stats = rig.run("LDI R1, 5\n");
    EXPECT_EQ(rig.controller.gpr(1), 5u);
    EXPECT_GT(stats.classicalInstructions, 0u);
}

// --------------------------------------------------- timeline & trigger

TEST(Timing, PulseCycleMatchesTimelineLabel)
{
    MicroarchConfig config;
    Rig rig(isa::OperationSet::defaultSet(), config);
    rig.run("SMIS S0, {0}\nQWAIT 100\nX S0\nSTOP\n");
    ASSERT_EQ(rig.device.pulses().size(), 1u);
    // Label = 100 (QWAIT) + 1 (default PI); trigger at startDelay +
    // label; output triggerOutputCycles later.
    uint64_t expected = static_cast<uint64_t>(config.startDelayCycles) +
                        101 + static_cast<uint64_t>(
                            config.triggerOutputCycles);
    EXPECT_EQ(rig.device.pulses()[0].cycle, expected);
}

TEST(Timing, QwaitZeroSharesTimingPoint)
{
    Rig rig;
    rig.run("SMIS S0, {0}\nSMIS S1, {2}\nQWAIT 100\n"
            "0, X S0\nQWAIT 0\n0, Y S1\nSTOP\n");
    ASSERT_EQ(rig.device.pulses().size(), 2u);
    EXPECT_EQ(rig.device.pulses()[0].cycle, rig.device.pulses()[1].cycle);
}

TEST(Timing, PreIntervalSpacesOperations)
{
    Rig rig;
    rig.run("SMIS S0, {0}\nQWAIT 100\n1, X S0\n5, Y S0\nSTOP\n");
    ASSERT_EQ(rig.device.pulses().size(), 2u);
    EXPECT_EQ(rig.device.pulses()[1].cycle - rig.device.pulses()[0].cycle,
              5u);
}

TEST(Timing, QwaitrUsesRegisterValue)
{
    Rig rig;
    rig.run("SMIS S0, {0}\nLDI R1, 200\nQWAITR R1\nX S0\nSTOP\n");
    Rig rig2;
    rig2.run("SMIS S0, {0}\nLDI R1, 300\nQWAITR R1\nX S0\nSTOP\n");
    EXPECT_EQ(rig2.device.pulses()[0].cycle -
                  rig.device.pulses()[0].cycle,
              100u);
}

TEST(Timing, ExampleFromSection313)
{
    // The Section 3.1.3 listing: four operations back-to-back.
    Rig rig;
    rig.run("SMIS S0, {0}\n"
            "LDI R0, 1\n"
            "QWAIT 100\n"
            "0, X S0\n"     // Q_OP0 (attach to the QWAIT point)
            "X S0\n"        // Q_OP1, default PI = 1
            "QWAITR R0\n"   // register-valued waiting
            "0, X S0\n"     // Q_OP2
            "QWAIT 0\n"     // equivalent to NOP
            "1, X S0\n"     // Q_OP3, explicit PI = 1
            "STOP\n");
    ASSERT_EQ(rig.device.pulses().size(), 4u);
    for (size_t i = 1; i < 4; ++i) {
        EXPECT_EQ(rig.device.pulses()[i].cycle -
                      rig.device.pulses()[i - 1].cycle,
                  1u)
            << i;
    }
}

TEST(Timing, SomqFansOutToAllMaskedQubits)
{
    Rig rig;
    auto stats = rig.run("SMIS S7, {0, 2}\nQWAIT 10\nX S7\nSTOP\n");
    EXPECT_EQ(stats.microOps, 2u);
    EXPECT_EQ(rig.device.pulses().size(), 2u);
    EXPECT_EQ(rig.device.pulses()[0].cycle, rig.device.pulses()[1].cycle);
}

TEST(Timing, TwoQubitOpEmitsSourceAndTargetMicroOps)
{
    Rig rig;
    auto stats = rig.run("SMIT T0, {(0, 2)}\nQWAIT 10\nCZ T0\nSTOP\n");
    EXPECT_EQ(stats.microOps, 2u);
    // The mock device records one pulse for the source role.
    EXPECT_EQ(rig.device.pulses().size(), 1u);
    EXPECT_EQ(rig.device.pulses()[0].operation, "CZ");
}

// ------------------------------------------------------ FCE (Section 3.5)

TEST(Fce, ConditionalExecutesWhenLastResultOne)
{
    Rig rig;
    rig.device.programResults(0, {1});
    auto stats = rig.run("SMIS S0, {0}\nQWAIT 10\nMEASZ S0\nQWAIT 50\n"
                         "C_X S0\nSTOP\n");
    EXPECT_EQ(stats.cancelled, 0u);
    bool saw_cx = false;
    for (const auto &pulse : rig.device.pulses())
        saw_cx |= pulse.operation == "C_X";
    EXPECT_TRUE(saw_cx);
}

TEST(Fce, ConditionalCancelledWhenLastResultZero)
{
    Rig rig;
    rig.device.programResults(0, {0});
    auto stats = rig.run("SMIS S0, {0}\nQWAIT 10\nMEASZ S0\nQWAIT 50\n"
                         "C_X S0\nSTOP\n");
    EXPECT_EQ(stats.cancelled, 1u);
    for (const auto &pulse : rig.device.pulses())
        EXPECT_NE(pulse.operation, "C_X");
}

TEST(Fce, LastZeroFlag)
{
    Rig rig(flagOps());
    rig.device.programResults(0, {0});
    auto stats = rig.run("SMIS S0, {0}\nQWAIT 10\nMEASZ S0\nQWAIT 50\n"
                         "CX_ZERO S0\nSTOP\n");
    EXPECT_EQ(stats.cancelled, 0u);

    Rig rig2(flagOps());
    rig2.device.programResults(0, {1});
    auto stats2 = rig2.run("SMIS S0, {0}\nQWAIT 10\nMEASZ S0\nQWAIT 50\n"
                           "CX_ZERO S0\nSTOP\n");
    EXPECT_EQ(stats2.cancelled, 1u);
}

TEST(Fce, LastTwoSameFlag)
{
    const char *program = "SMIS S0, {0}\nQWAIT 10\nMEASZ S0\nQWAIT 50\n"
                          "MEASZ S0\nQWAIT 50\nCX_SAME S0\nSTOP\n";
    Rig same(flagOps());
    same.device.programResults(0, {1, 1});
    EXPECT_EQ(same.run(program).cancelled, 0u);

    Rig differ(flagOps());
    differ.device.programResults(0, {1, 0});
    EXPECT_EQ(differ.run(program).cancelled, 1u);
}

TEST(Fce, LastTwoSameNeedsTwoResults)
{
    // With only one measurement the flag must read '0'.
    Rig rig(flagOps());
    rig.device.programResults(0, {1});
    auto stats = rig.run("SMIS S0, {0}\nQWAIT 10\nMEASZ S0\nQWAIT 50\n"
                         "CX_SAME S0\nSTOP\n");
    EXPECT_EQ(stats.cancelled, 1u);
}

// ------------------------------------------------------ CFC (Section 3.6)

TEST(Cfc, FmrStallsUntilResultReady)
{
    Rig rig;
    rig.device.programResults(0, {1});
    auto stats = rig.run("SMIS S0, {0}\nQWAIT 10\nMEASZ S0\n"
                         "FMR R1, Q0\nSTOP\n");
    EXPECT_GT(stats.fmrStallCycles, 0u);
    EXPECT_EQ(rig.controller.gpr(1), 1u);
    EXPECT_TRUE(rig.controller.measurementRegisterValid(0));
}

TEST(Cfc, FmrWithoutPendingMeasurementDoesNotStall)
{
    Rig rig;
    auto stats = rig.run("FMR R1, Q0\nSTOP\n");
    EXPECT_EQ(stats.fmrStallCycles, 0u);
    EXPECT_EQ(rig.controller.gpr(1), 0u);
}

TEST(Cfc, FmrFetchesLatestOfMultipleMeasurements)
{
    Rig rig;
    rig.device.programResults(0, {1, 0});
    rig.run("SMIS S0, {0}\nQWAIT 10\nMEASZ S0\nQWAIT 50\nMEASZ S0\n"
            "FMR R1, Q0\nSTOP\n");
    EXPECT_EQ(rig.controller.gpr(1), 0u);
}

TEST(Cfc, MeasurementRegisterHoldsLastResult)
{
    Rig rig;
    rig.device.programResults(0, {1});
    rig.run("SMIS S0, {0}\nQWAIT 10\nMEASZ S0\nQWAIT 50\nSTOP\n");
    EXPECT_EQ(rig.controller.measurementRegister(0), 1);
}

// ----------------------------------------------------- error conditions

TEST(Errors, OperationCombinationConflict)
{
    // Both VLIW lanes target qubit 0 at the same timing point: "an
    // error is raised, and the quantum processor stops" (Section 4.3).
    Rig rig;
    EXPECT_THROW(rig.run("SMIS S0, {0}\nQWAIT 10\n1, X S0 | Y S0\nSTOP\n"),
                 Error);
}

TEST(Errors, ConflictAcrossBundlesAtSamePoint)
{
    // Two bundle instructions with PI = 0 extend the same timing point;
    // duplicate qubits across them are also a conflict.
    Rig rig;
    EXPECT_THROW(
        rig.run("SMIS S0, {0}\nQWAIT 10\n1, X S0\n0, Y S0\nSTOP\n"),
        Error);
}

TEST(Errors, NoConflictAcrossDifferentPoints)
{
    Rig rig;
    EXPECT_NO_THROW(
        rig.run("SMIS S0, {0}\nQWAIT 10\n1, X S0\n1, Y S0\nSTOP\n"));
}

TEST(Errors, InvalidTRegisterAtRuntime)
{
    // Bypass the assembler's static check by loading a crafted SMIT.
    Rig rig;
    chip::Topology surface = chip::Topology::surface7();
    QuMa controller(isa::OperationSet::defaultSet(), surface);
    MockResultDevice device(15);
    controller.attachDevice(&device);
    std::vector<isa::Instruction> program;
    // Edges 0 and 1 share qubits 0 and 2.
    program.push_back(isa::Instruction::makeSmit(0, 0b11));
    program.push_back(isa::Instruction::makeStop());
    controller.loadProgram(program);
    EXPECT_THROW(controller.runShot(), Error);
}

TEST(Errors, WatchdogAbortsRunawayShot)
{
    MicroarchConfig config;
    config.maxCycles = 1000;
    Rig rig(isa::OperationSet::defaultSet(), config);
    // A shot that outlives the watchdog: huge waits, tiny cycle limit.
    isa::QuantumOperation x_op;
    const isa::OperationInfo &x_info = rig.ops.byName("X");
    x_op.name = x_info.name;
    x_op.opcode = x_info.opcode;
    x_op.opClass = x_info.opClass;
    x_op.targetKind = isa::targetKindForClass(x_info.opClass);
    x_op.targetReg = 0;
    rig.controller.loadProgram(
        {isa::Instruction::makeSmis(0, 1),
         isa::Instruction::makeQwait(500000),
         isa::Instruction::makeQwait(600000),
         isa::Instruction::makeBundle(1, {x_op}),
         isa::Instruction::makeStop()});
    EXPECT_THROW(rig.controller.runShot(), Error);
}

TEST(Errors, RunWithoutDeviceOrProgram)
{
    QuMa controller(isa::OperationSet::defaultSet(),
                    chip::Topology::twoQubit());
    EXPECT_THROW(controller.runShot(), Error);
    MockResultDevice device(15);
    controller.attachDevice(&device);
    EXPECT_THROW(controller.runShot(), Error);
}

// --------------------------------------- issue-rate problem (Section 1.2)

TEST(IssueRate, ReserveFallingBehindRaisesUnderrun)
{
    // Dense timing points with lots of classical filler between them:
    // the classical pipeline (2 instructions/cycle) cannot keep the
    // reserve phase ahead of the trigger phase.
    MicroarchConfig config;
    config.underrunPolicy = MicroarchConfig::UnderrunPolicy::count;
    Rig rig(isa::OperationSet::defaultSet(), config);
    std::string source = "SMIS S0, {0}\nQWAIT 2\n";
    for (int i = 0; i < 30; ++i) {
        source += "1, X S0\n";
        for (int j = 0; j < 8; ++j)
            source += "NOP\n";
    }
    source += "STOP\n";
    auto stats = rig.run(source);
    EXPECT_GT(stats.underruns, 0u);
}

TEST(IssueRate, ErrorPolicyThrows)
{
    MicroarchConfig config;
    config.underrunPolicy = MicroarchConfig::UnderrunPolicy::error;
    Rig rig(isa::OperationSet::defaultSet(), config);
    std::string source = "SMIS S0, {0}\nQWAIT 2\n";
    for (int i = 0; i < 30; ++i) {
        source += "1, X S0\n";
        for (int j = 0; j < 8; ++j)
            source += "NOP\n";
    }
    source += "STOP\n";
    EXPECT_THROW(rig.run(source), Error);
}

TEST(IssueRate, FasterClassicalPipelineAvoidsUnderrun)
{
    // The same program is fine when the classical pipeline issues 16
    // instructions per cycle — the microarchitectural fix the paper
    // mentions (increasing R_allowed).
    MicroarchConfig config;
    config.classicalIssueRate = 16;
    Rig rig(isa::OperationSet::defaultSet(), config);
    std::string source = "SMIS S0, {0}\nQWAIT 2\n";
    for (int i = 0; i < 30; ++i) {
        source += "1, X S0\n";
        for (int j = 0; j < 8; ++j)
            source += "NOP\n";
    }
    source += "STOP\n";
    auto stats = rig.run(source);
    EXPECT_EQ(stats.underruns, 0u);
}

// ----------------------------------------------------------- statistics

TEST(Stats, CountsInstructionsAndBundles)
{
    Rig rig;
    auto stats = rig.run("SMIS S7, {0, 2}\nQWAIT 10\nX S7\nY S7\nSTOP\n");
    EXPECT_EQ(stats.bundles, 2u);
    EXPECT_EQ(stats.microOps, 4u);
    EXPECT_EQ(stats.triggered, 4u);
    EXPECT_EQ(stats.quantumInstructions, 4u); // SMIS + QWAIT + 2 bundles
    EXPECT_GT(stats.classicalInstructions, 0u);
}

TEST(Stats, TraceRecordsOutputsAndResults)
{
    Rig rig;
    rig.device.programResults(0, {1});
    rig.run("SMIS S0, {0}\nQWAIT 10\nMEASZ S0\nQWAIT 50\nSTOP\n");
    bool saw_output = false, saw_result = false;
    for (const auto &event : rig.controller.trace()) {
        if (event.kind == microarch::TraceEvent::Kind::opOutput)
            saw_output = true;
        if (event.kind == microarch::TraceEvent::Kind::resultArrived) {
            saw_result = true;
            EXPECT_EQ(event.bit, 1);
        }
    }
    EXPECT_TRUE(saw_output);
    EXPECT_TRUE(saw_result);
}
