/**
 * @file
 * Tests for the telemetry subsystem: exactness of the sharded
 * lock-free registry under concurrency, histogram bucket boundaries,
 * scrape-while-writing safety, the Prometheus exposition format
 * (golden), the bounded trace ring and its Chrome trace-event export,
 * and the end-to-end instrumentation contracts — a 2-tenant fair-share
 * run whose per-tenant served-shot counters sum to the job totals
 * exactly and whose timeline shows both tenants interleaved across
 * worker tracks.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "assembler/assembler.h"
#include "common/error.h"
#include "common/json.h"
#include "engine/shot_engine.h"
#include "runtime/platform.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_log.h"
#include "workloads/experiments.h"

using namespace eqasm;
using namespace eqasm::telemetry;

// ---------------------------------------------------- registry (unit)

TEST(Registry, CounterConcurrentIncrementsAreExact)
{
    Registry registry;
    Counter counter = registry.counter("test_ops_total", "ops");
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 100'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                counter.inc();
            counter.add(5);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(registry.counterValue("test_ops_total"),
              kThreads * (kPerThread + 5));
}

TEST(Registry, GaugeTracksSignedDeltasAcrossThreads)
{
    Registry registry;
    Gauge gauge = registry.gauge("test_depth", "depth");
    gauge.add(10);
    std::thread other([&] {
        gauge.dec();
        gauge.dec();
        gauge.add(-3);
    });
    other.join();
    EXPECT_EQ(registry.gaugeValue("test_depth"), 5);
    gauge.add(-8);
    EXPECT_EQ(registry.gaugeValue("test_depth"), -3);
}

TEST(Registry, HistogramBucketBoundariesAreInclusiveUpperBounds)
{
    Registry registry;
    Histogram h =
        registry.histogram("test_latency_us", "latency", {10, 100});
    // le-bucket semantics: value <= bound lands in that bucket.
    h.observe(9);
    h.observe(10);   // boundary: still le="10".
    h.observe(11);
    h.observe(100);  // boundary: still le="100".
    h.observe(101);  // +Inf.
    EXPECT_EQ(registry.histogramCount("test_latency_us"), 5u);
    EXPECT_EQ(registry.histogramSum("test_latency_us"),
              9u + 10u + 11u + 100u + 101u);
    const std::string text = registry.prometheus();
    // Cumulative rendering: 2 at le=10, 4 at le=100, 5 at +Inf.
    EXPECT_NE(text.find("test_latency_us_bucket{le=\"10\"} 2"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("test_latency_us_bucket{le=\"100\"} 4"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("test_latency_us_bucket{le=\"+Inf\"} 5"),
              std::string::npos)
        << text;
}

TEST(Registry, ReRegistrationReturnsTheSameSeries)
{
    Registry registry;
    Counter a = registry.counter("test_shared_total", "shared");
    Counter b = registry.counter("test_shared_total", "shared");
    a.add(3);
    b.add(4);
    EXPECT_EQ(registry.counterValue("test_shared_total"), 7u);
    EXPECT_EQ(registry.seriesCount(), 1u);
    // Distinct labels are a distinct series; label order is canonical.
    Counter l1 = registry.counter("test_shared_total", "shared",
                                  {{"a", "1"}, {"b", "2"}});
    Counter l2 = registry.counter("test_shared_total", "shared",
                                  {{"b", "2"}, {"a", "1"}});
    l1.inc();
    l2.inc();
    EXPECT_EQ(registry.counterValue("test_shared_total",
                                    {{"a", "1"}, {"b", "2"}}),
              2u);
    EXPECT_EQ(registry.seriesCount(), 2u);
}

TEST(Registry, RegistrationRejectsConflictsAndBadNames)
{
    Registry registry;
    registry.counter("test_kind_total", "x");
    EXPECT_THROW(registry.gauge("test_kind_total", "x"), Error);
    registry.histogram("test_hist_us", "x", {1, 2});
    EXPECT_THROW(registry.histogram("test_hist_us", "x", {1, 3}), Error);
    EXPECT_THROW(registry.counter("0bad", "x"), Error);
    EXPECT_THROW(registry.counter("has space", "x"), Error);
    EXPECT_THROW(registry.histogram("test_empty_us", "x", {}), Error);
    EXPECT_THROW(registry.histogram("test_unsorted_us", "x", {5, 2}),
                 Error);
}

TEST(Registry, DisabledHandlesRecordNothing)
{
    Registry registry;
    Counter counter = registry.counter("test_gated_total", "gated");
    registry.setEnabled(false);
    counter.add(100);
    EXPECT_EQ(registry.counterValue("test_gated_total"), 0u);
    registry.setEnabled(true);
    counter.add(1);
    EXPECT_EQ(registry.counterValue("test_gated_total"), 1u);
}

TEST(Registry, ScrapeWhileWritingIsSafeAndLosesNothing)
{
    Registry registry;
    Counter counter = registry.counter("test_racy_total", "racy");
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 50'000;
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                counter.inc();
        });
    }
    // Scrape continuously while the writers hammer the slots; every
    // intermediate exposition must be well-formed and the final sum
    // exact (TSan runs this suite too — see tools/ci.sh).
    uint64_t lastSeen = 0;
    for (int i = 0; i < 50; ++i) {
        const std::string text = registry.prometheus();
        EXPECT_NE(text.find("# TYPE test_racy_total counter"),
                  std::string::npos);
        uint64_t seen = registry.counterValue("test_racy_total");
        EXPECT_GE(seen, lastSeen);  // counters are monotone.
        lastSeen = seen;
    }
    for (std::thread &writer : writers)
        writer.join();
    EXPECT_EQ(registry.counterValue("test_racy_total"),
              kThreads * kPerThread);
}

TEST(Registry, PrometheusExpositionMatchesGolden)
{
    Registry registry;
    Counter shots = registry.counter("demo_shots_total",
                                     "Shots executed");
    Counter tenantA = registry.counter("demo_served_total",
                                       "Shots served, by tenant",
                                       {{"tenant", "alice"}});
    Counter tenantB = registry.counter("demo_served_total",
                                       "Shots served, by tenant",
                                       {{"tenant", "bob"}});
    Gauge depth = registry.gauge("demo_depth", "Queue depth");
    Histogram wait = registry.histogram("demo_wait_us",
                                        "Queue wait", {10, 100});
    shots.add(42);
    tenantA.add(30);
    tenantB.add(12);
    depth.add(3);
    depth.dec();
    wait.observe(7);
    wait.observe(70);
    wait.observe(700);

    const char *golden =
        "# HELP demo_depth Queue depth\n"
        "# TYPE demo_depth gauge\n"
        "demo_depth 2\n"
        "# HELP demo_served_total Shots served, by tenant\n"
        "# TYPE demo_served_total counter\n"
        "demo_served_total{tenant=\"alice\"} 30\n"
        "demo_served_total{tenant=\"bob\"} 12\n"
        "# HELP demo_shots_total Shots executed\n"
        "# TYPE demo_shots_total counter\n"
        "demo_shots_total 42\n"
        "# HELP demo_wait_us Queue wait\n"
        "# TYPE demo_wait_us histogram\n"
        "demo_wait_us_bucket{le=\"10\"} 1\n"
        "demo_wait_us_bucket{le=\"100\"} 2\n"
        "demo_wait_us_bucket{le=\"+Inf\"} 3\n"
        "demo_wait_us_sum 777\n"
        "demo_wait_us_count 3\n";
    EXPECT_EQ(registry.prometheus(), golden);
}

TEST(Registry, JsonSnapshotCarriesValuesAndBuckets)
{
    Registry registry;
    registry.counter("snap_total", "c").add(9);
    Histogram h = registry.histogram("snap_us", "h", {50});
    h.observe(40);
    h.observe(60);
    Json snapshot = registry.snapshotJson();
    ASSERT_TRUE(snapshot.isObject());
    const Json &metrics = snapshot.at("metrics");
    ASSERT_EQ(metrics.size(), 2u);
    EXPECT_EQ(metrics.at(size_t{0}).at("name").asString(), "snap_total");
    EXPECT_EQ(metrics.at(size_t{0}).at("value").asInt(), 9);
    const Json &hist = metrics.at(size_t{1});
    EXPECT_EQ(hist.at("type").asString(), "histogram");
    EXPECT_EQ(hist.at("count").asInt(), 2);
    EXPECT_EQ(hist.at("sum").asInt(), 100);
    ASSERT_EQ(hist.at("buckets").size(), 2u);
    EXPECT_EQ(hist.at("buckets").at(size_t{0}).at("count").asInt(), 1);
    // Round-trips through the parser (the --metrics .json output).
    EXPECT_NO_THROW(Json::parse(snapshot.dump(2)));
}

TEST(Registry, ResetZeroesSlotsButKeepsSeries)
{
    Registry registry;
    Counter counter = registry.counter("reset_total", "r");
    counter.add(5);
    registry.reset();
    EXPECT_EQ(registry.counterValue("reset_total"), 0u);
    EXPECT_EQ(registry.seriesCount(), 1u);
    counter.inc();
    EXPECT_EQ(registry.counterValue("reset_total"), 1u);
}

// ----------------------------------------------------------- trace log

namespace {

TraceSpan
span(const char *name, int32_t track, uint64_t start, uint64_t dur)
{
    TraceSpan s;
    s.name = name;
    s.cat = "test";
    s.track = track;
    s.startUs = start;
    s.durUs = dur;
    return s;
}

} // namespace

TEST(TraceLogTest, BoundedRingOverwritesOldest)
{
    TraceLog log(4);
    log.setEnabled(true);
    for (int i = 0; i < 6; ++i)
        log.record(span(("s" + std::to_string(i)).c_str(), 0,
                        static_cast<uint64_t>(i), 1));
    EXPECT_EQ(log.size(), 4u);
    EXPECT_EQ(log.recorded(), 6u);
    std::vector<TraceSpan> spans = log.spans();
    ASSERT_EQ(spans.size(), 4u);
    EXPECT_EQ(spans.front().name, "s2");  // oldest surviving.
    EXPECT_EQ(spans.back().name, "s5");
}

TEST(TraceLogTest, DisabledRecordsNothing)
{
    TraceLog log(4);
    log.record(span("dropped", 0, 0, 1));
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.recorded(), 0u);
}

TEST(TraceLogTest, ChromeTraceJsonHasTrackMetadataAndCompleteEvents)
{
    TraceLog log(16);
    log.setEnabled(true);
    TraceSpan chunk = span("chunk", 1, 100, 50);
    chunk.jobId = 7;
    chunk.tenant = "alice";
    chunk.detail = "rabi [0,32)";
    log.record(chunk);
    log.record(span("job", TraceLog::kJobTrackBase + 7, 90, 80));

    Json trace = log.chromeTraceJson();
    ASSERT_TRUE(trace.isObject());
    const Json &events = trace.at("traceEvents");
    // 2 thread_name metadata events + 2 complete events.
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.at(size_t{0}).at("ph").asString(), "M");
    EXPECT_EQ(events.at(size_t{0}).at("args").at("name").asString(),
              "worker 1");
    EXPECT_EQ(events.at(size_t{1}).at("args").at("name").asString(),
              "job track 7");
    const Json &complete = events.at(size_t{2});
    EXPECT_EQ(complete.at("ph").asString(), "X");
    EXPECT_EQ(complete.at("tid").asInt(), 1);
    EXPECT_EQ(complete.at("ts").asInt(), 100);
    EXPECT_EQ(complete.at("dur").asInt(), 50);
    EXPECT_EQ(complete.at("args").at("tenant").asString(), "alice");
    EXPECT_NO_THROW(Json::parse(trace.dump()));
}

// ------------------------------------------- engine integration (e2e)

namespace {

engine::Job
testJob(const runtime::Platform &platform, int shots, uint64_t seed)
{
    assembler::Assembler asm_(platform.operations, platform.topology,
                              platform.params);
    engine::Job job;
    job.image =
        asm_.assemble(workloads::activeResetProgram(2)).image;
    job.shots = shots;
    job.seed = seed;
    return job;
}

} // namespace

TEST(EngineTelemetry, FairShareServedShotCountersSumToJobTotalsExactly)
{
    Registry &reg = registry();
    const uint64_t servedABefore = reg.counterValue(
        "eqasm_sched_tenant_served_shots_total", {{"tenant", "alice"}});
    const uint64_t servedBBefore = reg.counterValue(
        "eqasm_sched_tenant_served_shots_total", {{"tenant", "bob"}});
    const uint64_t shotsBefore =
        reg.counterValue("eqasm_engine_shots_total");

    runtime::Platform platform = runtime::Platform::twoQubit();
    engine::EngineConfig config;
    config.threads = 2;
    config.chunkShots = 16;
    config.scheduler.policy = sched::Policy::fairShare;
    config.scheduler.quantumShots = 32;
    config.scheduler.tenantWeights = {{"alice", 3}, {"bob", 1}};
    engine::ShotEngine engine(platform, config);

    engine::Job jobA = testJob(platform, 300, 11);
    jobA.tenant = "alice";
    jobA.label = "alice-job";
    engine::Job jobB = testJob(platform, 200, 11);
    jobB.tenant = "bob";
    jobB.label = "bob-job";
    sched::JobHandle handleA = engine.submit(std::move(jobA));
    sched::JobHandle handleB = engine.submit(std::move(jobB));
    engine::BatchResult resultA = handleA.get();
    engine::BatchResult resultB = handleB.get();
    EXPECT_EQ(resultA.shots, 300u);
    EXPECT_EQ(resultB.shots, 200u);

    // Exactness: every claimed chunk was charged to its tenant, so the
    // per-tenant counters account for the job totals with no slack.
    EXPECT_EQ(reg.counterValue("eqasm_sched_tenant_served_shots_total",
                               {{"tenant", "alice"}}) -
                  servedABefore,
              300u);
    EXPECT_EQ(reg.counterValue("eqasm_sched_tenant_served_shots_total",
                               {{"tenant", "bob"}}) -
                  servedBBefore,
              200u);
    EXPECT_EQ(reg.counterValue("eqasm_engine_shots_total") - shotsBefore,
              500u);
    // The deficit gauges settle to zero once both tenants go idle
    // (leftover credit is discarded on removal).
    EXPECT_EQ(reg.gaugeValue("eqasm_sched_tenant_deficit_shots",
                             {{"tenant", "alice"}}),
              0);
    EXPECT_EQ(reg.gaugeValue("eqasm_sched_tenant_deficit_shots",
                             {{"tenant", "bob"}}),
              0);
    // Transient gauges return to rest.
    EXPECT_EQ(reg.gaugeValue("eqasm_engine_queue_depth"), 0);
    EXPECT_EQ(reg.gaugeValue("eqasm_engine_active_workers"), 0);
    // Both jobs went through the queue-wait histogram exactly once.
    EXPECT_GE(reg.histogramCount("eqasm_engine_queue_wait_us"), 2u);
}

TEST(EngineTelemetry, InstrumentationCoversUarchAndNoiseCache)
{
    Registry &reg = registry();
    const uint64_t quantumBefore =
        reg.counterValue("eqasm_quma_quantum_instructions_total");
    const uint64_t singleBefore = reg.counterValue(
        "eqasm_quma_micro_ops_total", {{"class", "single_qubit"}});
    const uint64_t measBefore = reg.counterValue(
        "eqasm_quma_micro_ops_total", {{"class", "measurement"}});
    const uint64_t hitsBefore =
        reg.counterValue("eqasm_qsim_channel_cache_hits_total");
    const uint64_t chunksBefore =
        reg.counterValue("eqasm_engine_chunks_total");

    runtime::Platform platform = runtime::Platform::twoQubit();
    engine::EngineConfig config;
    config.threads = 2;
    engine::ShotEngine engine(platform, config);
    engine::BatchResult result = engine.run(testJob(platform, 100, 5));
    EXPECT_EQ(result.shots, 100u);

    // The active-reset program measures and conditionally flips every
    // shot on a noisy density backend: all these must have moved.
    EXPECT_GT(reg.counterValue("eqasm_quma_quantum_instructions_total"),
              quantumBefore);
    EXPECT_GT(reg.counterValue("eqasm_quma_micro_ops_total",
                               {{"class", "single_qubit"}}),
              singleBefore);
    EXPECT_GT(reg.counterValue("eqasm_quma_micro_ops_total",
                               {{"class", "measurement"}}),
              measBefore);
    EXPECT_GT(reg.counterValue("eqasm_qsim_channel_cache_hits_total"),
              hitsBefore);
    EXPECT_GT(reg.counterValue("eqasm_engine_chunks_total"),
              chunksBefore);
    EXPECT_GE(reg.histogramCount("eqasm_engine_chunk_exec_us"),
              reg.counterValue("eqasm_engine_chunks_total") -
                  chunksBefore);
}

TEST(EngineTelemetry, TraceTimelineShowsBothTenantsAcrossWorkerTracks)
{
    TraceLog &log = traceLog();
    log.clear();

    runtime::Platform platform = runtime::Platform::twoQubit();
    engine::EngineConfig config;
    config.threads = 2;
    config.chunkShots = 8;
    config.traceTimeline = true;
    config.scheduler.policy = sched::Policy::fairShare;
    config.scheduler.quantumShots = 16;
    {
        engine::ShotEngine engine(platform, config);
        engine::Job jobA = testJob(platform, 120, 3);
        jobA.tenant = "alice";
        jobA.label = "alice-job";
        engine::Job jobB = testJob(platform, 120, 3);
        jobB.tenant = "bob";
        jobB.label = "bob-job";
        sched::JobHandle handleA = engine.submit(std::move(jobA));
        sched::JobHandle handleB = engine.submit(std::move(jobB));
        handleA.get();
        handleB.get();
    }
    log.setEnabled(false);  // stop recording for later tests.

    std::set<int32_t> workerTracks;
    std::set<std::string> tenants;
    size_t jobSpans = 0;
    for (const TraceSpan &s : log.spans()) {
        if (s.cat == "engine" && s.name == "chunk") {
            workerTracks.insert(s.track);
            tenants.insert(s.tenant);
        } else if (s.cat == "job") {
            ++jobSpans;
        }
    }
    // 240 shots in 8-shot chunks over 2 workers: both tracks busy, both
    // tenants present, one job span per job.
    EXPECT_EQ(workerTracks, (std::set<int32_t>{0, 1}));
    EXPECT_EQ(tenants, (std::set<std::string>{"alice", "bob"}));
    EXPECT_EQ(jobSpans, 2u);

    // The export is loadable Chrome trace-event JSON with one named
    // track per worker.
    Json trace = Json::parse(log.chromeTraceJson().dump());
    std::set<std::string> trackNames;
    for (const Json &event : trace.at("traceEvents").asArray()) {
        if (event.at("ph").asString() == "M")
            trackNames.insert(event.at("args").at("name").asString());
    }
    EXPECT_TRUE(trackNames.count("worker 0"));
    EXPECT_TRUE(trackNames.count("worker 1"));
    log.clear();
}
