/**
 * @file
 * Unit tests for chip topologies: the Fig. 6 surface-7 reconstruction,
 * the Section 5 two-qubit chip, the Section 3.3.2 comparison chips,
 * mask handling and validity checking.
 */
#include <gtest/gtest.h>

#include "chip/topology.h"
#include "common/error.h"

using namespace eqasm;
using chip::Topology;

TEST(Surface7, HasSevenQubitsSixteenEdges)
{
    Topology chip = Topology::surface7();
    EXPECT_EQ(chip.numQubits(), 7);
    EXPECT_EQ(chip.numEdges(), 16);
}

TEST(Surface7, EdgeZeroIsQubit2ToQubit0)
{
    // Section 3.3.1: "allowed qubit pair 0 has qubit 2 as the source
    // qubit and qubit 0 as the target qubit".
    Topology chip = Topology::surface7();
    EXPECT_EQ(chip.edge(0).source, 2);
    EXPECT_EQ(chip.edge(0).target, 0);
}

TEST(Surface7, Qubit0OnEdges0189)
{
    // Section 4.3: "qubit 0 ... is connected to edges 0, 1, 8, and 9".
    Topology chip = Topology::surface7();
    EXPECT_EQ(chip.edgesOfQubit(0), (std::vector<int>{0, 1, 8, 9}));
}

TEST(Surface7, OpSel0FormulaEdges)
{
    // OpSel0 = (T[0] | T[9]) :: (T[1] | T[8]): qubit 0 is the target of
    // edges 0 and 9 and the source of edges 1 and 8.
    Topology chip = Topology::surface7();
    EXPECT_EQ(chip.edge(0).target, 0);
    EXPECT_EQ(chip.edge(9).target, 0);
    EXPECT_EQ(chip.edge(1).source, 0);
    EXPECT_EQ(chip.edge(8).source, 0);
}

TEST(Surface7, EveryCouplingHasBothDirections)
{
    Topology chip = Topology::surface7();
    for (const chip::QubitPair &pair : chip.edges()) {
        EXPECT_TRUE(
            chip.edgeIndex(pair.target, pair.source).has_value());
    }
}

TEST(Surface7, CentreAncillaHasDegreeFour)
{
    // The surface-7 code's middle ancilla (qubit 5) couples to all four
    // data qubits; the other degrees are 2.
    Topology chip = Topology::surface7();
    EXPECT_EQ(chip.edgesOfQubit(5).size(), 8u); // 4 couplings x 2 dirs
    for (int qubit : {0, 1, 2, 3, 4, 6})
        EXPECT_EQ(chip.edgesOfQubit(qubit).size(), 4u);
}

TEST(Surface7, FeedlinesMatchThePaper)
{
    // Qubits 0, 2, 3, 5, 6 on feedline 0; qubits 1, 4 on feedline 1.
    Topology chip = Topology::surface7();
    EXPECT_EQ(chip.numFeedlines(), 2);
    for (int qubit : {0, 2, 3, 5, 6})
        EXPECT_EQ(chip.feedlineOfQubit(qubit), 0);
    for (int qubit : {1, 4})
        EXPECT_EQ(chip.feedlineOfQubit(qubit), 1);
}

TEST(TwoQubitChip, QubitsZeroAndTwo)
{
    Topology chip = Topology::twoQubit();
    EXPECT_TRUE(chip.validQubit(0));
    EXPECT_TRUE(chip.validQubit(2));
    EXPECT_TRUE(chip.edgeIndex(0, 2).has_value());
    EXPECT_TRUE(chip.edgeIndex(2, 0).has_value());
    EXPECT_EQ(chip.numEdges(), 2);
}

TEST(ComparisonChips, IbmQx2HasSixPairs)
{
    // Section 3.3.2: IBM QX2 "also contains five qubits but has only
    // six allowed qubit pairs", so a 6-bit mask beats address pairs.
    Topology chip = Topology::ibmQx2();
    EXPECT_EQ(chip.numQubits(), 5);
    EXPECT_EQ(chip.numEdges(), 6);
}

TEST(ComparisonChips, IonTrap5FullyConnected)
{
    // Section 3.3.2: 20 directed pairs on the fully connected 5-qubit
    // trapped-ion processor.
    Topology chip = Topology::ionTrap5();
    EXPECT_EQ(chip.numQubits(), 5);
    EXPECT_EQ(chip.numEdges(), 20);
    for (int a = 0; a < 5; ++a) {
        for (int b = 0; b < 5; ++b) {
            if (a != b)
                EXPECT_TRUE(chip.edgeIndex(a, b).has_value());
        }
    }
}

TEST(Topology, MaskConflictDetectsSharedQubit)
{
    Topology chip = Topology::surface7();
    // Edges 0 (2->0) and 1 (0->2) share both qubits.
    uint64_t mask = chip.edgesToMask({0, 1});
    EXPECT_TRUE(chip.maskConflict(mask).has_value());
}

TEST(Topology, MaskConflictAcceptsDisjointPairs)
{
    Topology chip = Topology::surface7();
    // Edge 0 = (2, 0) and edge 6 = (4, 1) are disjoint.
    uint64_t mask = chip.edgesToMask({0, 6});
    EXPECT_FALSE(chip.maskConflict(mask).has_value());
    EXPECT_FALSE(chip.maskConflict(0).has_value());
}

TEST(Topology, MaskRoundTrip)
{
    Topology chip = Topology::surface7();
    std::vector<int> edges = {0, 3, 15};
    uint64_t mask = chip.edgesToMask(edges);
    EXPECT_EQ(chip.maskToEdges(mask), edges);
}

TEST(Topology, EdgesToMaskRejectsOutOfRange)
{
    Topology chip = Topology::twoQubit();
    EXPECT_THROW(chip.edgesToMask({5}), Error);
    EXPECT_THROW(chip.edge(99), Error);
    EXPECT_THROW(chip.feedlineOfQubit(-1), Error);
}

TEST(Topology, JsonRoundTrip)
{
    Topology original = Topology::surface7();
    Topology loaded = Topology::fromJson(original.toJson());
    EXPECT_EQ(loaded.name(), original.name());
    EXPECT_EQ(loaded.numQubits(), original.numQubits());
    EXPECT_EQ(loaded.numEdges(), original.numEdges());
    for (int e = 0; e < original.numEdges(); ++e) {
        EXPECT_EQ(loaded.edge(e), original.edge(e));
    }
    for (int q = 0; q < original.numQubits(); ++q)
        EXPECT_EQ(loaded.feedlineOfQubit(q), original.feedlineOfQubit(q));
}

TEST(Topology, FromJsonParsesHandWrittenConfig)
{
    // A configuration file is how the Section 5 setup renamed its two
    // qubits ("A configuration file is used to specify the quantum chip
    // topology").
    Json doc = Json::parse(R"({
        "name": "custom",          // free-form chip name
        "qubits": 3,
        "edges": [[0, 2], [2, 0]],
        "feedlines": [0, 0, 0]
    })");
    Topology chip = Topology::fromJson(doc);
    EXPECT_EQ(chip.name(), "custom");
    EXPECT_TRUE(chip.edgeIndex(0, 2).has_value());
}

TEST(EncodingCost, IonTrapPrefersAddressPairs)
{
    // Section 3.3.2: "only 2 x 2 x 3 bits = 12 bits are required ...
    // more efficient than a mask of 20 bits".
    Topology chip = Topology::ionTrap5();
    EXPECT_EQ(chip.maskEncodingBits(), 20);
    EXPECT_EQ(chip.maxParallelPairs(), 2);
    EXPECT_EQ(chip.addressPairEncodingBits(2), 12);
}

TEST(EncodingCost, Qx2PrefersMask)
{
    // "a mask of 6 bits is more efficient for the IBM QX2".
    Topology chip = Topology::ibmQx2();
    EXPECT_EQ(chip.maskEncodingBits(), 6);
    EXPECT_LT(chip.maskEncodingBits(),
              chip.addressPairEncodingBits(chip.maxParallelPairs()));
}

TEST(EncodingCost, MaxParallelPairsIsAMatching)
{
    // Surface-7: the centre ancilla (qubit 5) blocks most pairs; three
    // disjoint couplings exist, e.g. (2,0), (4,1), (5,6).
    EXPECT_EQ(Topology::surface7().maxParallelPairs(), 3);
    EXPECT_EQ(Topology::twoQubit().maxParallelPairs(), 1);
}

TEST(Topology, ConstructorRejectsBadEdges)
{
    EXPECT_THROW(Topology("bad", 2, {{0, 0}}), Error);   // self loop
    EXPECT_THROW(Topology("bad", 2, {{0, 5}}), Error);   // out of range
    EXPECT_THROW(Topology("bad", 2, {{0, 1}, {0, 1}}), Error); // dup
    EXPECT_THROW(Topology("bad", 0, {}), Error);         // no qubits
    EXPECT_THROW(Topology("bad", 2, {{0, 1}}, {0}), Error); // feedline
}
