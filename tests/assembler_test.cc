/**
 * @file
 * Unit tests for the assembler: grammar coverage (the paper's Figs.
 * 3-5), bundle splitting, semantic checks, label resolution, error
 * reporting, and the assemble/disassemble round-trip property.
 */
#include <gtest/gtest.h>

#include "assembler/assembler.h"
#include "assembler/disassembler.h"
#include "assembler/lexer.h"
#include "chip/topology.h"
#include "common/error.h"
#include "isa/encoding.h"
#include "isa/operation_set.h"

using namespace eqasm;
using assembler::Assembler;
using assembler::AssemblyError;
using assembler::Program;
using isa::InstrKind;

namespace {

Assembler
surfaceAssembler()
{
    return Assembler(isa::OperationSet::defaultSet(),
                     chip::Topology::surface7());
}

Assembler
twoQubitAssembler()
{
    return Assembler(isa::OperationSet::defaultSet(),
                     chip::Topology::twoQubit());
}

/** Assembler for the 17-qubit distance-3 chip: masks wider than one
 *  word, exercising the segmented SMIS/SMIT encoding. */
Assembler
rotatedSurfaceAssembler()
{
    chip::Topology topology = chip::Topology::rotatedSurface(3);
    isa::InstantiationParams params;
    params.numQubits = topology.numQubits();
    params.numEdges = topology.numEdges();
    params.sMaskWidth = topology.numQubits();
    params.tMaskWidth = topology.numEdges();
    return Assembler(isa::OperationSet::defaultSet(),
                     std::move(topology), params);
}

} // namespace

// --------------------------------------------------------------- lexer

TEST(Lexer, TokenizesPunctuationAndIdentifiers)
{
    auto tokens = assembler::tokenizeLine("SMIT T3, {(1, 3), (2, 4)}");
    // SMIT T3 , { ( 1 , 3 ) , ( 2 , 4 ) } EOL
    EXPECT_EQ(tokens.size(), 17u);
    EXPECT_EQ(tokens[0].kind, assembler::TokenKind::identifier);
    EXPECT_EQ(tokens[0].text, "SMIT");
    EXPECT_EQ(tokens[2].kind, assembler::TokenKind::comma);
    EXPECT_EQ(tokens[3].kind, assembler::TokenKind::lbrace);
}

TEST(Lexer, StripsComments)
{
    auto tokens = assembler::tokenizeLine("QWAIT 5 # wait a bit");
    EXPECT_EQ(tokens.size(), 3u); // QWAIT 5 EOL
    tokens = assembler::tokenizeLine("X S0 // slash comment");
    EXPECT_EQ(tokens.size(), 3u);
}

TEST(Lexer, ParsesNumericBases)
{
    auto tokens = assembler::tokenizeLine("LDI R0, 0x1F");
    EXPECT_EQ(tokens[3].value, 31);
    tokens = assembler::tokenizeLine("LDI R0, -5");
    EXPECT_EQ(tokens[3].value, -5);
}

TEST(Lexer, RejectsStrayCharacters)
{
    EXPECT_THROW(assembler::tokenizeLine("LDI R0, $5"), Error);
}

// ---------------------------------------------------- basic assembling

TEST(Assembler, AssemblesFig3Program)
{
    // The two-qubit AllXY routine from Fig. 3 of the paper.
    Program program = twoQubitAssembler().assemble(
        "SMIS S0, {0}\n"
        "SMIS S2, {2}\n"
        "SMIS S7, {0, 2}\n"
        "QWAIT 10000\n"
        "0, Y S7\n"
        "1, X90 S0 | X S2\n"
        "1, MEASZ S7\n"
        "QWAIT 50\n");
    ASSERT_EQ(program.instructions.size(), 8u);
    EXPECT_EQ(program.instructions[0].kind, InstrKind::smis);
    EXPECT_EQ(program.instructions[0].mask, 0b1u);
    EXPECT_EQ(program.instructions[2].mask, 0b101u);
    EXPECT_EQ(program.instructions[4].kind, InstrKind::bundle);
    EXPECT_EQ(program.instructions[4].preInterval, 0);
    EXPECT_EQ(program.instructions[5].operations.size(), 2u);
    EXPECT_EQ(program.image.size(), 8u);
}

TEST(Assembler, DefaultPreIntervalIsOne)
{
    Program program = twoQubitAssembler().assemble("X S0\n");
    ASSERT_EQ(program.instructions.size(), 1u);
    EXPECT_EQ(program.instructions[0].preInterval, 1);
}

TEST(Assembler, MixedCaseMnemonics)
{
    Program program = twoQubitAssembler().assemble(
        "smis s0, {0}\nqwait 10\nx90 s0\nmeasz S0\nstop\n");
    EXPECT_EQ(program.instructions.size(), 5u);
}

TEST(Assembler, AllClassicalInstructionsParse)
{
    Program program = twoQubitAssembler().assemble(
        "NOP\n"
        "LDI R1, -100\n"
        "LDUI R1, 0x7fff, R1\n"
        "ADD R2, R1, R0\n"
        "SUB R3, R2, R1\n"
        "AND R4, R3, R2\n"
        "OR R5, R4, R3\n"
        "XOR R6, R5, R4\n"
        "NOT R7, R6\n"
        "CMP R1, R2\n"
        "FBR EQ, R8\n"
        "LD R9, R1(12)\n"
        "ST R9, R1(-12)\n"
        "FMR R10, Q2\n"
        "QWAITR R1\n"
        "STOP\n");
    EXPECT_EQ(program.instructions.size(), 16u);
    EXPECT_EQ(program.instructions[1].imm, -100);
    EXPECT_EQ(program.instructions[13].qubit, 2);
}

TEST(Assembler, BundleSplitAcrossVliwWidth)
{
    // Section 3.4.2: a 3-op bundle splits into two instructions, the
    // second with PI = 0 and a QNOP filler.
    Program program = surfaceAssembler().assemble(
        "SMIS S1, {1}\nSMIS S2, {2}\nSMIS S3, {3}\n"
        "2, X S1 | Y S2 | X90 S3\n");
    ASSERT_EQ(program.instructions.size(), 5u);
    const auto &first = program.instructions[3];
    const auto &second = program.instructions[4];
    EXPECT_EQ(first.preInterval, 2);
    EXPECT_EQ(first.operations.size(), 2u);
    EXPECT_EQ(second.preInterval, 0);
    EXPECT_EQ(second.operations.size(), 1u);
    EXPECT_EQ(second.operations[0].name, "X90");
}

TEST(Assembler, LabelsResolveToRelativeOffsets)
{
    Program program = twoQubitAssembler().assemble(
        "LDI R0, 1\n"
        "loop:\n"
        "ADD R1, R1, R0\n"
        "CMP R1, R0\n"
        "BR LT, loop\n"
        "STOP\n");
    EXPECT_EQ(program.labels.at("loop"), 1);
    // BR at address 3, target 1 -> offset -2.
    EXPECT_EQ(program.instructions[3].imm, -2);
}

TEST(Assembler, ForwardLabelAndTrailingLabel)
{
    Program program = twoQubitAssembler().assemble(
        "BR ALWAYS, end\n"
        "NOP\n"
        "end:\n");
    EXPECT_EQ(program.labels.at("end"), 2);
    EXPECT_EQ(program.instructions[0].imm, 2);
}

TEST(Assembler, Fig5CfcProgramAssembles)
{
    Program program = twoQubitAssembler().assemble(
        "SMIS S0, {0}\n"
        "SMIS S1, {2}\n"
        "LDI R0, 1\n"
        "MEASZ S1\n"
        "QWAIT 30\n"
        "FMR R1, Q2\n"
        "CMP R1, R0\n"
        "BR EQ, eq_path\n"
        "ne_path:\n"
        "X S0\n"
        "BR ALWAYS, next\n"
        "eq_path:\n"
        "Y S0\n"
        "next:\n"
        "STOP\n");
    EXPECT_EQ(program.labels.at("ne_path"), 8);
    EXPECT_EQ(program.labels.at("eq_path"), 10);
    EXPECT_EQ(program.labels.at("next"), 11);
}

TEST(Assembler, SmitAcceptsAllowedPairs)
{
    Program program = surfaceAssembler().assemble(
        "SMIT T3, {(2, 0), (4, 1)}\n");
    // Edge 0 = (2,0), edge 6 = (4,1).
    EXPECT_EQ(program.instructions[0].mask, (1u << 0) | (1u << 6));
}

// --------------------------------------------------------- diagnostics

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_THROW(twoQubitAssembler().assemble("FROB R1\n"),
                 AssemblyError);
}

TEST(AssemblerErrors, UnknownQuantumOperation)
{
    // H is not in the configured set for the transmon platform.
    EXPECT_THROW(twoQubitAssembler().assemble("H S0\n"), AssemblyError);
}

TEST(AssemblerErrors, QubitNotOnChip)
{
    EXPECT_THROW(twoQubitAssembler().assemble("SMIS S0, {5}\n"),
                 AssemblyError);
}

TEST(AssemblerErrors, DisallowedPair)
{
    EXPECT_THROW(surfaceAssembler().assemble("SMIT T0, {(0, 1)}\n"),
                 AssemblyError);
}

TEST(AssemblerErrors, TRegisterSharedQubitRejected)
{
    // Section 4.3: two edges connecting to the same qubit in one T
    // register are invalid; (2,0) and (0,5) share qubit 0.
    EXPECT_THROW(
        surfaceAssembler().assemble("SMIT T0, {(2, 0), (0, 5)}\n"),
        AssemblyError);
}

TEST(AssemblerErrors, RegisterOutOfRange)
{
    EXPECT_THROW(twoQubitAssembler().assemble("LDI R32, 1\n"),
                 AssemblyError);
    EXPECT_THROW(twoQubitAssembler().assemble("X S32\n"), AssemblyError);
}

TEST(AssemblerErrors, PreIntervalTooLarge)
{
    // wPI = 3 bits: PI must fit [0, 7].
    EXPECT_THROW(twoQubitAssembler().assemble("8, X S0\n"),
                 AssemblyError);
}

TEST(AssemblerErrors, ImmediateOverflow)
{
    EXPECT_THROW(twoQubitAssembler().assemble("QWAIT 1048576\n"),
                 AssemblyError);
    EXPECT_THROW(twoQubitAssembler().assemble("LDI R0, 600000\n"),
                 AssemblyError);
}

TEST(AssemblerErrors, UndefinedLabel)
{
    EXPECT_THROW(twoQubitAssembler().assemble("BR ALWAYS, nowhere\n"),
                 AssemblyError);
}

TEST(AssemblerErrors, DuplicateLabel)
{
    EXPECT_THROW(
        twoQubitAssembler().assemble("a:\nNOP\na:\nNOP\n"),
        AssemblyError);
}

TEST(AssemblerErrors, WrongTargetRegisterKind)
{
    EXPECT_THROW(twoQubitAssembler().assemble("X T0\n"), AssemblyError);
    EXPECT_THROW(twoQubitAssembler().assemble("CZ S0\n"), AssemblyError);
}

TEST(AssemblerErrors, ReportsAllErrorsWithLines)
{
    try {
        twoQubitAssembler().assemble("LDI R99, 1\nQWAIT -2\nFOO\n");
        FAIL() << "expected assembly errors";
    } catch (const AssemblyError &error) {
        EXPECT_EQ(error.diagnostics().size(), 3u);
        EXPECT_EQ(error.diagnostics()[0].line, 1);
        EXPECT_EQ(error.diagnostics()[1].line, 2);
        EXPECT_EQ(error.diagnostics()[2].line, 3);
    }
}

TEST(AssemblerErrors, TrailingTokens)
{
    EXPECT_THROW(twoQubitAssembler().assemble("NOP NOP\n"),
                 AssemblyError);
}

// ------------------------------------------------- round-trip property

class AsmRoundTrip : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AsmRoundTrip, AssembleDisassembleAssembleFixedPoint)
{
    Assembler asm_ = surfaceAssembler();
    Program first = asm_.assemble(GetParam());
    std::string text = assembler::disassemble(
        first.image, asm_.operations(), asm_.topology(), asm_.params());
    Program second = asm_.assemble(text);
    EXPECT_EQ(first.image, second.image) << "disassembly:\n" << text;
}

INSTANTIATE_TEST_SUITE_P(
    Programs, AsmRoundTrip,
    ::testing::Values(
        "SMIS S0, {0}\nQWAIT 10000\nX S0\nMEASZ S0\nSTOP\n",
        "SMIS S7, {0, 2, 5}\nSMIT T3, {(2, 0)}\n0, Y S7\n1, CZ T3\n",
        "LDI R0, -10\nLDUI R1, 32767, R0\nADD R2, R1, R0\nNOP\nSTOP\n",
        "QWAIT 0\nQWAIT 1048575\nQWAITR R5\n",
        "SMIS S1, {1}\nSMIS S2, {2}\nSMIS S3, {3}\n"
        "7, X S1 | Y S2 | X90 S3 | Ym90 S1\n",
        "CMP R1, R2\nFBR GEU, R3\nFMR R4, Q6\nLD R5, R6(100)\n"
        "ST R5, R6(-100)\nSTOP\n",
        "2, MEASZ S0\nQWAIT 50\nC_X S0\nSTOP\n"));

// ------------------------------------------------- wide-mask segments

TEST(WideMask, SmisBeyondSixteenQubitsSplitsIntoSegments)
{
    Assembler asm_ = rotatedSurfaceAssembler();
    Program narrow = asm_.assemble("SMIS S3, {0, 15}\n");
    EXPECT_EQ(narrow.image.size(), 1u);
    Program wide = asm_.assemble("SMIS S3, {0, 15, 16}\n");
    ASSERT_EQ(wide.image.size(), 2u);
    // Segment 0 is bit-identical to the narrow encoding of the low
    // chunk; segment 1 carries qubit 16 in its [18:16] = 1 word.
    EXPECT_EQ(wide.image[0], narrow.image[0]);
    isa::Instruction high = isa::decode(wide.image[1], asm_.params(),
                                        asm_.operations());
    EXPECT_EQ(high.kind, InstrKind::smis);
    EXPECT_EQ(high.maskSegment, 1);
    EXPECT_EQ(high.mask, 1u);
}

TEST(WideMask, RoundTripRestoresTheFullQubitList)
{
    Assembler asm_ = rotatedSurfaceAssembler();
    Program program =
        asm_.assemble("SMIS S0, {0, 7, 16}\n"
                      "SMIT T1, {(9, 0), (16, 8)}\n");
    std::string text = assembler::disassemble(
        program.image, asm_.operations(), asm_.topology(),
        asm_.params());
    EXPECT_NE(text.find("SMIS S0, {0, 7, 16}"), std::string::npos)
        << text;
    Program again = asm_.assemble(text);
    EXPECT_EQ(program.image, again.image) << text;
}

TEST(WideMask, DecodeRejectsSegmentsBeyondTheRegisters)
{
    // Segments 4..7 fit the 3-bit field but would shift past the
    // 64-bit S/T registers; the decoder must reject them like any
    // other malformed word instead of aliasing the shift.
    Assembler asm_ = rotatedSurfaceAssembler();
    Program wide = asm_.assemble("SMIS S3, {0, 16}\n");
    ASSERT_EQ(wide.image.size(), 2u);
    uint32_t corrupted = (wide.image[1] & ~(0x7u << 16)) | (5u << 16);
    EXPECT_THROW(isa::decode(corrupted, asm_.params(),
                             asm_.operations()),
                 Error);
}

TEST(WideMask, SevenQubitChipEncodingUnchanged)
{
    // The wide-mask format must leave the original instantiation's
    // binary image untouched: mask in [15:0], segment bits zero.
    Assembler asm_ = surfaceAssembler();
    Program program = asm_.assemble("SMIS S7, {0, 2, 5}\n");
    ASSERT_EQ(program.image.size(), 1u);
    EXPECT_EQ(program.image[0] & 0xffffu, 0b100101u);
    EXPECT_EQ((program.image[0] >> 16) & 0x7u, 0u);
}

TEST(Disassembler, RendersSmitAsPairList)
{
    Assembler asm_ = surfaceAssembler();
    Program program = asm_.assemble("SMIT T2, {(2, 0), (4, 1)}\n");
    std::string text = assembler::disassemble(
        program.image, asm_.operations(), asm_.topology(), asm_.params());
    EXPECT_NE(text.find("SMIT T2, {(2, 0), (4, 1)}"), std::string::npos)
        << text;
}

TEST(Disassembler, HidesQnopPadding)
{
    Assembler asm_ = surfaceAssembler();
    Program program = asm_.assemble("SMIS S1, {1}\n3, X S1\n");
    std::string text = assembler::disassemble(
        program.image, asm_.operations(), asm_.topology(), asm_.params());
    EXPECT_NE(text.find("3, X S1"), std::string::npos);
    EXPECT_EQ(text.find("QNOP"), std::string::npos);
}
