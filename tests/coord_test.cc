/**
 * @file
 * Tests for the shard-lease coordinator (src/coord/): the failpoint
 * registry, the lease protocol (grant / renew / expiry / re-issue /
 * heartbeat-based dead-worker detection), the duplicate-discard rule,
 * coordinator crash-resume from the journal, the Service verb layer
 * over it, and the load-bearing property: every randomly seeded
 * worker-death schedule over k workers converges to the bit-identical
 * 1-process counts_fingerprint, with duplicate returns discarded and
 * never double-merged. All of it on an injectable microsecond clock —
 * no sleeps.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "assembler/assembler.h"
#include "common/error.h"
#include "common/strings.h"
#include "coord/coordinator.h"
#include "coord/failpoints.h"
#include "engine/shot_engine.h"
#include "runtime/platform.h"
#include "service/journal.h"
#include "service/service.h"
#include "workloads/experiments.h"

using namespace eqasm;
using namespace eqasm::coord;
using namespace eqasm::engine;
using namespace eqasm::runtime;

namespace fs = std::filesystem;

namespace {

std::string
freshDir(const std::string &hint)
{
    static int counter = 0;
    std::string path =
        format("%s/eqasm_coord_%d_%s_%d", testing::TempDir().c_str(),
               getpid(), hint.c_str(), counter++);
    fs::remove_all(path);
    fs::create_directories(path);
    return path;
}

std::string
testSource()
{
    return workloads::activeResetProgram(2);
}

/** One engine for the whole suite — shard results are pure functions
 *  of (program, seed, range), so sharing replicas is safe and fast. */
ShotEngine &
testEngine()
{
    static ShotEngine engine(Platform::twoQubit(), [] {
        EngineConfig config;
        config.threads = 2;
        return config;
    }());
    return engine;
}

std::vector<uint32_t>
testImage()
{
    static const std::vector<uint32_t> image = [] {
        const Platform &platform = testEngine().platform();
        assembler::Assembler asm_(platform.operations,
                                  platform.topology, platform.params);
        return asm_.assemble(testSource()).image;
    }();
    return image;
}

service::JobSpec
testSpec(uint64_t id, int shots, uint64_t seed = 7)
{
    service::JobSpec spec;
    spec.id = id;
    spec.label = "coord";
    spec.tenant = "alice";
    spec.shots = shots;
    spec.seed = seed;
    spec.image = testImage();
    return spec;
}

/** Executes one shard slice of @p spec (bit-identical wherever run). */
BatchResult
runShard(const service::JobSpec &spec, int shard, int count)
{
    Job job;
    job.image = spec.image;
    job.shots = spec.shots;
    job.seed = spec.seed;
    job.label = spec.label;
    job.tenant = spec.tenant;
    job.shard.index = shard;
    job.shard.count = count;
    return testEngine().run(std::move(job));
}

/** The 1-process fingerprint every coordinated schedule must hit. */
std::string
baselineFingerprint(const service::JobSpec &spec)
{
    Job job;
    job.image = spec.image;
    job.shots = spec.shots;
    job.seed = spec.seed;
    job.label = spec.label;
    return testEngine().run(std::move(job)).countsFingerprint();
}

} // namespace

// ------------------------------------------------------------ Failpoints

TEST(Failpoints, FireConsumesArmsAndDisarms)
{
    Failpoints::clear();
    Failpoints::arm("boom", 2);
    EXPECT_TRUE(Failpoints::armed("boom"));
    EXPECT_TRUE(Failpoints::fire("boom"));
    EXPECT_TRUE(Failpoints::fire("boom"));
    EXPECT_FALSE(Failpoints::fire("boom"));  // arms exhausted.
    EXPECT_FALSE(Failpoints::armed("boom"));
    EXPECT_FALSE(Failpoints::fire("never_armed"));
    Failpoints::clear();
}

TEST(Failpoints, NegativeCountFiresForever)
{
    Failpoints::clear();
    Failpoints::arm("always", -1);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(Failpoints::fire("always"));
    Failpoints::clear();
    EXPECT_FALSE(Failpoints::fire("always"));
}

TEST(Failpoints, ArmFromSpecParsesNamesAndCounts)
{
    Failpoints::clear();
    Failpoints::armFromSpec(
        "drop_heartbeat, kill_before_complete:3 ,stall_renew:-1");
    EXPECT_TRUE(Failpoints::armed("drop_heartbeat"));
    EXPECT_TRUE(Failpoints::armed("kill_before_complete"));
    EXPECT_TRUE(Failpoints::armed("stall_renew"));
    EXPECT_TRUE(Failpoints::fire("drop_heartbeat"));
    EXPECT_FALSE(Failpoints::fire("drop_heartbeat"));  // count 1.
    EXPECT_THROW(Failpoints::armFromSpec("bad:count:here"), Error);
    Failpoints::clear();
}

// --------------------------------------------------- lease bookkeeping

TEST(Coordinator, LeasesPartitionTheShotRangeExactly)
{
    Coordinator coordinator(nullptr);
    coordinator.addPlan(testSpec(1, 100), 4, 0);
    uint64_t expectedBegin = 0;
    for (int i = 0; i < 4; ++i) {
        auto grant = coordinator.acquire("w1", 10);
        ASSERT_TRUE(grant.has_value());
        EXPECT_EQ(grant->lease.jobId, 1u);
        EXPECT_EQ(grant->lease.shard, i);
        EXPECT_EQ(grant->lease.shardCount, 4);
        EXPECT_EQ(grant->lease.begin, expectedBegin);
        expectedBegin = grant->lease.end;
        EXPECT_EQ(grant->spec.shots, 100);
        EXPECT_EQ(grant->spec.seed, 7u);
    }
    EXPECT_EQ(expectedBegin, 100u);
    // Everything is leased out: nothing more to grant.
    EXPECT_FALSE(coordinator.acquire("w2", 20).has_value());
}

TEST(Coordinator, PlanValidationRefusesBadShardCounts)
{
    Coordinator coordinator(nullptr);
    EXPECT_THROW(coordinator.addPlan(testSpec(1, 100), 0, 0), Error);
    // More shards than shots would leave empty slices that can never
    // complete.
    EXPECT_THROW(coordinator.addPlan(testSpec(2, 3), 4, 0), Error);
    coordinator.addPlan(testSpec(3, 100), 4, 0);
    EXPECT_THROW(coordinator.addPlan(testSpec(3, 100), 2, 0), Error);
}

TEST(Coordinator, CompletingAllShardsReproducesOneProcessFingerprint)
{
    service::JobSpec spec = testSpec(1, 300);
    Coordinator coordinator(nullptr);
    coordinator.addPlan(spec, 3, 0);
    for (int i = 0; i < 3; ++i) {
        auto grant = coordinator.acquire("w1", 10);
        ASSERT_TRUE(grant.has_value());
        EXPECT_TRUE(coordinator.complete(
            "w1", grant->lease.id,
            runShard(spec, grant->lease.shard, 3), 20));
    }
    Json status = coordinator.statusJson(1);
    EXPECT_EQ(status.getString("state", ""), "done");
    EXPECT_EQ(status.getInt("shards_done", 0), 3);
    EXPECT_EQ(status.getInt("shots_done", 0), 300);
    EXPECT_EQ(status.getString("fingerprint", ""),
              baselineFingerprint(spec));
    // The settled job is handed to the quota-release drain exactly once.
    auto settled = coordinator.drainSettled();
    ASSERT_EQ(settled.size(), 1u);
    EXPECT_EQ(settled[0].id, 1u);
    EXPECT_EQ(settled[0].tenant, "alice");
    EXPECT_TRUE(coordinator.drainSettled().empty());
}

TEST(Coordinator, ExpiredLeaseIsReissuedAndOldRenewRefused)
{
    CoordinatorOptions options;
    options.leaseTtlUs = 1000;
    options.heartbeatTtlUs = 100000;
    Coordinator coordinator(nullptr, options);
    coordinator.addPlan(testSpec(1, 100), 1, 0);

    auto grant = coordinator.acquire("w1", 0);
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(grant->lease.expiresAtUs, 1000u);

    // Renewal inside the TTL pushes the deadline out.
    EXPECT_EQ(coordinator.renew("w1", grant->lease.id, 500), 1500u);

    // Nothing pending while the lease is live.
    EXPECT_FALSE(coordinator.acquire("w2", 600).has_value());

    // Let it expire: the shard is re-queued and re-issued to w2.
    EXPECT_EQ(coordinator.tick(1500), 1u);
    auto regrant = coordinator.acquire("w2", 1600);
    ASSERT_TRUE(regrant.has_value());
    EXPECT_EQ(regrant->lease.shard, grant->lease.shard);
    EXPECT_NE(regrant->lease.id, grant->lease.id);

    // The original holder's renewal is now refused as not_found.
    try {
        coordinator.renew("w1", grant->lease.id, 1700);
        FAIL() << "renew of an expired lease should be refused";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), ErrorCode::notFound);
    }
    EXPECT_EQ(coordinator.statusJson(1).getInt("lease_reissues", 0), 1);
}

TEST(Coordinator, LateRenewExpiresTheLeaseImmediately)
{
    CoordinatorOptions options;
    options.leaseTtlUs = 1000;
    Coordinator coordinator(nullptr, options);
    coordinator.addPlan(testSpec(1, 100), 1, 0);
    auto grant = coordinator.acquire("w1", 0);
    ASSERT_TRUE(grant.has_value());
    // No tick has run, but the renewal itself arrives after the
    // deadline: the coordinator must not resurrect the lease.
    EXPECT_THROW(coordinator.renew("w1", grant->lease.id, 5000), Error);
    // The shard went back to pending without waiting for a tick.
    EXPECT_TRUE(coordinator.acquire("w2", 5001).has_value());
}

TEST(Coordinator, DeadWorkerLosesAllLeasesAtOnce)
{
    CoordinatorOptions options;
    options.leaseTtlUs = 50000;     // leases alone would survive...
    options.heartbeatTtlUs = 10000; // ...but the heartbeat gives out.
    Coordinator coordinator(nullptr, options);
    coordinator.addPlan(testSpec(1, 100), 2, 0);

    ASSERT_TRUE(coordinator.acquire("w1", 0).has_value());
    ASSERT_TRUE(coordinator.acquire("w1", 100).has_value());
    coordinator.heartbeat("w2", 100);

    // w1 goes silent; w2 keeps beating.
    coordinator.heartbeat("w2", 9000);
    EXPECT_EQ(coordinator.tick(10200), 2u);

    // Both shards are immediately grantable again — to w2.
    EXPECT_TRUE(coordinator.acquire("w2", 10300).has_value());
    EXPECT_TRUE(coordinator.acquire("w2", 10400).has_value());
    EXPECT_EQ(coordinator.statusJson(1).getInt("lease_reissues", 0), 2);
}

TEST(Coordinator, SlowWorkerCompletionAcceptedThenDuplicateDiscarded)
{
    service::JobSpec spec = testSpec(1, 200);
    CoordinatorOptions options;
    options.leaseTtlUs = 1000;
    options.heartbeatTtlUs = 1000000;
    Coordinator coordinator(nullptr, options);
    coordinator.addPlan(spec, 2, 0);

    auto slow = coordinator.acquire("w1", 0);  // shard 0, will stall.
    ASSERT_TRUE(slow.has_value());
    EXPECT_EQ(coordinator.tick(2000), 1u);     // w1's lease expires.
    auto retry = coordinator.acquire("w2", 2100);
    ASSERT_TRUE(retry.has_value());
    EXPECT_EQ(retry->lease.shard, 0);

    // The slow worker was not dead — its (bit-identical) result lands
    // first, under the expired lease, and is ACCEPTED: recomputing it
    // would be waste, and determinism makes it indistinguishable from
    // the replacement's future result.
    BatchResult shard0 = runShard(spec, 0, 2);
    EXPECT_TRUE(coordinator.complete("w1", slow->lease.id, shard0,
                                     2500));

    // The replacement's return is now the duplicate: verified
    // fingerprint-equal, discarded, counted — never double-merged.
    EXPECT_FALSE(coordinator.complete("w2", retry->lease.id, shard0,
                                      3000));
    Json status = coordinator.statusJson(1);
    EXPECT_EQ(status.getInt("duplicates_discarded", 0), 1);
    EXPECT_EQ(status.getInt("shards_done", 0), 1);
    EXPECT_EQ(status.getInt("shots_done", 0), 100);

    // Finishing shard 1 completes the job at the 1-process fingerprint
    // (proof the duplicate did not double-fold shard 0's counts).
    auto grant1 = coordinator.acquire("w2", 3100);
    ASSERT_TRUE(grant1.has_value());
    EXPECT_EQ(grant1->lease.shard, 1);
    EXPECT_TRUE(coordinator.complete("w2", grant1->lease.id,
                                     runShard(spec, 1, 2), 3200));
    EXPECT_EQ(coordinator.statusJson(1).getString("fingerprint", ""),
              baselineFingerprint(spec));
}

TEST(Coordinator, DivergingDuplicateIsRefusedLoudly)
{
    service::JobSpec spec = testSpec(1, 200);
    CoordinatorOptions options;
    options.leaseTtlUs = 1000;
    Coordinator coordinator(nullptr, options);
    coordinator.addPlan(spec, 2, 0);

    auto first = coordinator.acquire("w1", 0);
    ASSERT_TRUE(first.has_value());
    coordinator.tick(2000);
    auto second = coordinator.acquire("w2", 2100);
    ASSERT_TRUE(second.has_value());

    BatchResult shard0 = runShard(spec, 0, 2);
    EXPECT_TRUE(coordinator.complete("w2", second->lease.id, shard0,
                                     2200));

    // A worker returning *different* counts for the same (program,
    // seed, range) violates the determinism invariant — that is a
    // broken worker, and discarding silently would hide it.
    BatchResult diverged = shard0;
    diverged.qubitCounts.begin()->second.ones ^= 1;
    try {
        coordinator.complete("w1", first->lease.id, diverged, 2300);
        FAIL() << "a diverging duplicate must be refused";
    } catch (const Error &error) {
        EXPECT_EQ(error.code(), ErrorCode::invalidArgument);
        EXPECT_NE(error.message().find("fingerprint"),
                  std::string::npos)
            << error.message();
    }
}

TEST(Coordinator, CompletionValidatesProvenanceAgainstThePlan)
{
    service::JobSpec spec = testSpec(1, 200);
    Coordinator coordinator(nullptr);
    coordinator.addPlan(spec, 2, 0);
    auto grant = coordinator.acquire("w1", 0);
    ASSERT_TRUE(grant.has_value());

    // Wrong seed: the result is internally consistent but belongs to a
    // different run; the refusal names the seed.
    service::JobSpec wrongSeed = testSpec(1, 200, 8);
    try {
        coordinator.complete("w1", grant->lease.id,
                             runShard(wrongSeed, 0, 2), 100);
        FAIL() << "wrong-seed shard must be refused";
    } catch (const Error &error) {
        EXPECT_NE(error.message().find("seed"), std::string::npos)
            << error.message();
    }

    // Wrong shard: covers a different slice than the lease names.
    try {
        coordinator.complete("w1", grant->lease.id,
                             runShard(spec, 1, 2), 200);
        FAIL() << "wrong-shard result must be refused";
    } catch (const Error &error) {
        EXPECT_NE(error.message().find("shard"), std::string::npos)
            << error.message();
    }

    // The shard stays incomplete after the refusals and the correct
    // result still lands.
    EXPECT_TRUE(coordinator.complete("w1", grant->lease.id,
                                     runShard(spec, 0, 2), 300));
}

TEST(Coordinator, CancelRetiresLeasesAndDiscardsLateCompletions)
{
    service::JobSpec spec = testSpec(1, 100);
    Coordinator coordinator(nullptr);
    coordinator.addPlan(spec, 2, 0);
    auto grant = coordinator.acquire("w1", 0);
    ASSERT_TRUE(grant.has_value());

    coordinator.cancel(1);
    EXPECT_EQ(coordinator.statusJson(1).getString("state", ""),
              "cancelled");
    // No more grants, and the in-flight completion is moot (false),
    // not an error.
    EXPECT_FALSE(coordinator.acquire("w2", 10).has_value());
    EXPECT_FALSE(coordinator.complete("w1", grant->lease.id,
                                      runShard(spec, 0, 2), 20));
    auto settled = coordinator.drainSettled();
    ASSERT_EQ(settled.size(), 1u);
    EXPECT_EQ(settled[0].id, 1u);
}

// ------------------------------------------ property: death schedules

namespace {

/**
 * Deterministic cluster simulation: k workers against one coordinator
 * on a virtual microsecond clock. A seeded schedule kills workers at
 * random times; a killed worker stops renewing and heartbeating, and
 * with probability 1/2 its in-flight shard still arrives later (the
 * "slow, not dead" case — exercising stale-accept and duplicate
 * discard). A respawned worker guarantees progress when everyone died.
 * Returns the number of duplicate completions the coordinator
 * discarded.
 */
uint64_t
runDeathSchedule(const service::JobSpec &spec, int shardCount,
                 int workerCount, uint64_t scheduleSeed,
                 const std::vector<BatchResult> &shardResults)
{
    CoordinatorOptions options;
    options.leaseTtlUs = 8000;
    options.heartbeatTtlUs = 20000;
    Coordinator coordinator(nullptr, options);
    coordinator.addPlan(spec, shardCount, 0);

    std::mt19937_64 rng(scheduleSeed);

    struct Worker {
        std::string name;
        bool alive = true;
        uint64_t diesAtUs = 0;  ///< 0 = survives the whole run.
        std::optional<Lease> lease;
        uint64_t finishAtUs = 0;
    };
    std::vector<Worker> workers;
    for (int w = 0; w < workerCount; ++w) {
        Worker worker;
        worker.name = format("w%d", w);
        // Most workers die, at a random point of the window the job
        // actually runs in (it converges within a few tens of ms) —
        // later deaths would be no-ops that test nothing.
        if (rng() % 4 != 0)
            worker.diesAtUs = 1 + rng() % 25000;
        workers.push_back(std::move(worker));
    }

    struct ZombieCompletion {
        uint64_t atUs;
        std::string worker;
        uint64_t leaseId;
        int shard;
    };
    std::vector<ZombieCompletion> zombies;

    uint64_t duplicates = 0;
    const uint64_t tickUs = 1000;
    uint64_t now = 0;
    bool respawned = false;
    for (int step = 0; step < 3000; ++step) {
        now += tickUs;
        coordinator.tick(now);

        // Deliver due zombie completions (dead workers' results).
        for (auto it = zombies.begin(); it != zombies.end();) {
            if (it->atUs > now) {
                ++it;
                continue;
            }
            if (!coordinator.complete(it->worker, it->leaseId,
                                      shardResults[it->shard], now))
                ++duplicates;
            it = zombies.erase(it);
        }

        bool anyAlive = false;
        for (Worker &worker : workers) {
            if (!worker.alive)
                continue;
            if (worker.diesAtUs != 0 && now >= worker.diesAtUs) {
                worker.alive = false;
                // Every killed leaseholder is "slow, not dead": its
                // in-flight result arrives shortly after its lease
                // expired and the shard was re-issued — the
                // duplicate-discard path's natural habitat.
                if (worker.lease) {
                    zombies.push_back(
                        {now + options.leaseTtlUs + 1000 + rng() % 8000,
                         worker.name, worker.lease->id,
                         worker.lease->shard});
                }
                worker.lease.reset();
                continue;
            }
            anyAlive = true;
            coordinator.heartbeat(worker.name, now);
            if (worker.lease) {
                if (now >= worker.finishAtUs) {
                    if (!coordinator.complete(
                            worker.name, worker.lease->id,
                            shardResults[worker.lease->shard], now))
                        ++duplicates;
                    worker.lease.reset();
                } else {
                    try {
                        coordinator.renew(worker.name,
                                          worker.lease->id, now);
                    } catch (const Error &) {
                        // Expired under us (shouldn't happen for a
                        // renewing worker, but harmless): abandon.
                        worker.lease.reset();
                    }
                }
            }
            if (!worker.lease) {
                auto grant = coordinator.acquire(worker.name, now);
                if (grant) {
                    worker.lease = grant->lease;
                    worker.finishAtUs = now + 2000 + rng() % 12000;
                }
            }
        }
        if (!anyAlive && !respawned) {
            // Everyone died: elasticity means a fresh worker finishes
            // the job.
            Worker fresh;
            fresh.name = "respawn";
            workers.push_back(std::move(fresh));
            respawned = true;
        }

        if (coordinator.statusJson(spec.id).getString("state", "") ==
            "done")
            break;
    }

    // Zombies whose delivery time never came before convergence still
    // report in: a settled plan must treat them as moot (false), never
    // as an error or a double-merge.
    for (const ZombieCompletion &zombie : zombies) {
        EXPECT_FALSE(coordinator.complete(zombie.worker, zombie.leaseId,
                                          shardResults[zombie.shard],
                                          now + 1000));
        ++duplicates;
    }

    Json status = coordinator.statusJson(spec.id);
    EXPECT_EQ(status.getString("state", ""), "done")
        << "schedule seed " << scheduleSeed << " with " << workerCount
        << " workers never converged: " << status.dump();
    EXPECT_EQ(status.getString("fingerprint", ""),
              baselineFingerprint(spec))
        << "schedule seed " << scheduleSeed;
    EXPECT_EQ(status.getInt("shots_done", 0), spec.shots)
        << "duplicates were double-merged (schedule seed "
        << scheduleSeed << ")";
    return duplicates;
}

} // namespace

TEST(CoordinatorProperty, RandomDeathSchedulesConvergeToBaseline)
{
    const int shardCount = 6;
    service::JobSpec spec = testSpec(1, 240);
    std::vector<BatchResult> shardResults;
    for (int i = 0; i < shardCount; ++i)
        shardResults.push_back(runShard(spec, i, shardCount));

    uint64_t totalDuplicates = 0;
    for (int workerCount = 2; workerCount <= 5; ++workerCount) {
        for (uint64_t scheduleSeed = 1; scheduleSeed <= 4;
             ++scheduleSeed) {
            totalDuplicates += runDeathSchedule(
                spec, shardCount, workerCount,
                scheduleSeed * 1000 + workerCount, shardResults);
        }
    }
    // The sweep is seeded and deterministic; at least one schedule
    // exercises the duplicate-discard path (zombie completions).
    EXPECT_GT(totalDuplicates, 0u);
}

// ----------------------------------------------------- crash-resume

TEST(Coordinator, CrashResumeContinuesThePlanFromShardFiles)
{
    service::JobSpec spec = testSpec(1, 300);
    const std::string dir = freshDir("resume");
    std::string fingerprintBefore;
    {
        service::Journal journal(dir);
        Coordinator coordinator(&journal);
        coordinator.addPlan(spec, 3, 0);
        auto grant = coordinator.acquire("w1", 10);
        ASSERT_TRUE(grant.has_value());
        EXPECT_TRUE(coordinator.complete("w1", grant->lease.id,
                                         runShard(spec, 0, 3), 20));
        // kill -9: the coordinator object is simply dropped with a
        // live lease on shard 1 outstanding.
        auto inflight = coordinator.acquire("w1", 30);
        ASSERT_TRUE(inflight.has_value());
    }
    {
        service::Journal journal(dir);
        service::Journal::Replay replay = journal.replay();
        ASSERT_EQ(replay.coordPlans.size(), 1u);
        EXPECT_EQ(replay.coordPlans[0].shards, 3);
        EXPECT_EQ(replay.coordPlans[0].spec.id, 1u);
        EXPECT_TRUE(replay.terminal.empty());

        Coordinator coordinator(&journal);
        coordinator.restorePlan(replay.coordPlans[0].spec,
                                replay.coordPlans[0].shards);
        Json status = coordinator.statusJson(1);
        EXPECT_EQ(status.getString("state", ""), "running");
        EXPECT_EQ(status.getInt("shards_done", 0), 1);

        // The in-flight lease from before the crash is gone; shards 1
        // and 2 are pending again and finish the job.
        for (int remaining = 0; remaining < 2; ++remaining) {
            auto grant = coordinator.acquire("w2", 100 + remaining);
            ASSERT_TRUE(grant.has_value());
            EXPECT_TRUE(coordinator.complete(
                "w2", grant->lease.id,
                runShard(spec, grant->lease.shard, 3), 200));
        }
        fingerprintBefore =
            coordinator.statusJson(1).getString("fingerprint", "");
        EXPECT_EQ(fingerprintBefore, baselineFingerprint(spec));
    }
    // The verified result is durable and the shard files superseded.
    {
        service::Journal journal(dir);
        auto result = journal.loadResult(1);
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(result->countsFingerprint(), fingerprintBefore);
        EXPECT_TRUE(journal.loadShardList(1).empty());
    }
}

TEST(Coordinator, CrashAfterLastShardBeforeResultStillSettles)
{
    service::JobSpec spec = testSpec(1, 200);
    const std::string dir = freshDir("lastshard");
    {
        service::Journal journal(dir);
        journal.appendCoordPlan(spec, 2);
        // Both shard files landed but the crash hit before result.json
        // was written and before any terminal record.
        journal.writeShard(1, 0, runShard(spec, 0, 2));
        journal.writeShard(1, 1, runShard(spec, 1, 2));
    }
    service::Journal journal(dir);
    service::Journal::Replay replay = journal.replay();
    ASSERT_EQ(replay.coordPlans.size(), 1u);
    Coordinator coordinator(&journal);
    coordinator.restorePlan(replay.coordPlans[0].spec,
                            replay.coordPlans[0].shards);
    EXPECT_EQ(coordinator.statusJson(1).getString("state", ""),
              "done");
    EXPECT_EQ(coordinator.statusJson(1).getString("fingerprint", ""),
              baselineFingerprint(spec));
    ASSERT_TRUE(journal.loadResult(1).has_value());
}

TEST(Coordinator, TamperedShardFileRefusedOnResume)
{
    service::JobSpec spec = testSpec(1, 200);
    const std::string dir = freshDir("tampered");
    {
        service::Journal journal(dir);
        journal.appendCoordPlan(spec, 2);
        journal.writeShard(1, 0, runShard(spec, 0, 2));
    }
    // Flip one digit of a stored count.
    const std::string shardFile =
        dir + "/job-000001/shard-0000.json";
    std::ifstream in(shardFile);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    size_t pos = text.find("\"ones\": ");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 8] = text[pos + 8] == '1' ? '2' : '1';
    std::ofstream out(shardFile);
    out << text;
    out.close();

    service::Journal journal(dir);
    service::Journal::Replay replay = journal.replay();
    Coordinator coordinator(&journal);
    try {
        coordinator.restorePlan(replay.coordPlans[0].spec,
                                replay.coordPlans[0].shards);
        FAIL() << "a tampered shard file must refuse to resume";
    } catch (const Error &error) {
        EXPECT_NE(error.message().find("shard-0000.json"),
                  std::string::npos)
            << error.message();
    }
}

// -------------------------------------------------- Service verb layer

TEST(ServiceCoord, CoordSubmitLeaseCompleteRoundTrip)
{
    const std::string dir = freshDir("svc");
    service::Journal journal(dir);
    service::Service service(testEngine(), journal, {});
    service.recover();

    // coord_submit via the verb layer (what `eqasm-cli submit
    // --shards 3` sends).
    Json submit = Json::makeObject();
    submit.set("verb", "coord_submit");
    submit.set("source", testSource());
    submit.set("shots", static_cast<int64_t>(300));
    submit.set("seed", static_cast<int64_t>(7));
    submit.set("label", "coord");
    submit.set("tenant", "alice");
    submit.set("shards", static_cast<int64_t>(3));
    Json accepted = service.handle(submit);
    ASSERT_TRUE(accepted.getBool("ok", false)) << accepted.dump();
    uint64_t id = static_cast<uint64_t>(accepted.getInt("id", 0));
    ASSERT_GT(id, 0u);

    service::JobSpec spec = testSpec(id, 300);
    for (int i = 0; i < 3; ++i) {
        Json acquire = Json::makeObject();
        acquire.set("verb", "lease_acquire");
        acquire.set("worker", "w1");
        Json grant = service.handle(acquire);
        ASSERT_TRUE(grant.getBool("ok", false)) << grant.dump();
        ASSERT_TRUE(grant.getBool("granted", false)) << grant.dump();
        const Json &lease = grant.at("lease");
        // The lease carries everything a zero-config worker needs.
        EXPECT_TRUE(grant.find("platform") != nullptr);
        service::JobSpec leased =
            service::JobSpec::fromJson(grant.at("job"));
        EXPECT_EQ(leased.shots, 300);

        Json renew = Json::makeObject();
        renew.set("verb", "lease_renew");
        renew.set("worker", "w1");
        renew.set("lease", lease.getInt("id", 0));
        EXPECT_TRUE(service.handle(renew).getBool("ok", false));

        BatchResult result = runShard(
            leased, static_cast<int>(lease.getInt("shard", 0)), 3);
        Json complete = Json::makeObject();
        complete.set("verb", "lease_complete");
        complete.set("worker", "w1");
        complete.set("lease", lease.getInt("id", 0));
        complete.set("result", result.toJson());
        Json ack = service.handle(complete);
        ASSERT_TRUE(ack.getBool("ok", false)) << ack.dump();
        EXPECT_TRUE(ack.getBool("merged", false));
    }

    // status answers for the coordinated job (the eqasm-cli stream
    // path) and reports the 1-process fingerprint.
    Json status = Json::makeObject();
    status.set("verb", "status");
    status.set("id", id);
    status.set("result", true);
    Json report = service.handle(status);
    ASSERT_TRUE(report.getBool("ok", false)) << report.dump();
    EXPECT_EQ(report.getString("state", ""), "done");
    EXPECT_TRUE(report.getBool("coordinated", false));
    EXPECT_EQ(report.getString("fingerprint", ""),
              baselineFingerprint(spec));
    EXPECT_TRUE(report.find("result") != nullptr);

    // heartbeat verb round-trips.
    Json heartbeat = Json::makeObject();
    heartbeat.set("verb", "worker_heartbeat");
    heartbeat.set("worker", "w1");
    EXPECT_TRUE(service.handle(heartbeat).getBool("ok", false));
}

TEST(ServiceCoord, DaemonRestartResumesThePlanOverVerbs)
{
    const std::string dir = freshDir("svcresume");
    uint64_t id = 0;
    {
        service::Journal journal(dir);
        service::Service service(testEngine(), journal, {});
        service.recover();
        Json submit = Json::makeObject();
        submit.set("verb", "coord_submit");
        submit.set("source", testSource());
        submit.set("shots", static_cast<int64_t>(200));
        submit.set("seed", static_cast<int64_t>(7));
        submit.set("label", "coord");
        submit.set("tenant", "alice");
        submit.set("shards", static_cast<int64_t>(2));
        Json accepted = service.handle(submit);
        ASSERT_TRUE(accepted.getBool("ok", false)) << accepted.dump();
        id = static_cast<uint64_t>(accepted.getInt("id", 0));

        // One shard completes before the "crash".
        Json acquire = Json::makeObject();
        acquire.set("verb", "lease_acquire");
        acquire.set("worker", "w1");
        Json grant = service.handle(acquire);
        ASSERT_TRUE(grant.getBool("granted", false)) << grant.dump();
        service::JobSpec leased =
            service::JobSpec::fromJson(grant.at("job"));
        Json complete = Json::makeObject();
        complete.set("verb", "lease_complete");
        complete.set("worker", "w1");
        complete.set("lease", grant.at("lease").getInt("id", 0));
        complete.set(
            "result",
            runShard(leased,
                     static_cast<int>(
                         grant.at("lease").getInt("shard", 0)),
                     2)
                .toJson());
        ASSERT_TRUE(service.handle(complete).getBool("ok", false));
        // The Service is destroyed with shard 1 never leased — the
        // daemon-restart analogue of kill -9.
    }
    {
        service::Journal journal(dir);
        service::Service service(testEngine(), journal, {});
        service.recover();

        Json status = Json::makeObject();
        status.set("verb", "status");
        status.set("id", id);
        Json report = service.handle(status);
        ASSERT_TRUE(report.getBool("ok", false)) << report.dump();
        EXPECT_EQ(report.getString("state", ""), "running");
        EXPECT_EQ(report.getInt("shards_done", 0), 1);

        // A worker connecting to the restarted daemon finishes it.
        Json acquire = Json::makeObject();
        acquire.set("verb", "lease_acquire");
        acquire.set("worker", "w2");
        Json grant = service.handle(acquire);
        ASSERT_TRUE(grant.getBool("granted", false)) << grant.dump();
        service::JobSpec leased =
            service::JobSpec::fromJson(grant.at("job"));
        Json complete = Json::makeObject();
        complete.set("verb", "lease_complete");
        complete.set("worker", "w2");
        complete.set("lease", grant.at("lease").getInt("id", 0));
        complete.set(
            "result",
            runShard(leased,
                     static_cast<int>(
                         grant.at("lease").getInt("shard", 0)),
                     2)
                .toJson());
        ASSERT_TRUE(service.handle(complete).getBool("ok", false));

        report = service.handle(status);
        EXPECT_EQ(report.getString("state", ""), "done");
        EXPECT_EQ(report.getString("fingerprint", ""),
                  baselineFingerprint(testSpec(id, 200)));
    }
    // Third start: the settled plan replays as terminal and still
    // answers status.
    {
        service::Journal journal(dir);
        service::Service service(testEngine(), journal, {});
        service.recover();
        Json status = Json::makeObject();
        status.set("verb", "status");
        status.set("id", id);
        Json report = service.handle(status);
        EXPECT_EQ(report.getString("state", ""), "done");
    }
}

TEST(ServiceCoord, CancelSettlesACoordinatedJob)
{
    const std::string dir = freshDir("svccancel");
    service::Journal journal(dir);
    service::Service service(testEngine(), journal, {});
    service.recover();
    Json submit = Json::makeObject();
    submit.set("verb", "coord_submit");
    submit.set("source", testSource());
    submit.set("shots", static_cast<int64_t>(100));
    submit.set("shards", static_cast<int64_t>(2));
    Json accepted = service.handle(submit);
    ASSERT_TRUE(accepted.getBool("ok", false)) << accepted.dump();

    Json cancel = Json::makeObject();
    cancel.set("verb", "cancel");
    cancel.set("id", accepted.getInt("id", 0));
    Json ack = service.handle(cancel);
    EXPECT_TRUE(ack.getBool("ok", false)) << ack.dump();
    EXPECT_EQ(ack.getString("state", ""), "cancelled");

    // No leases are granted for a cancelled plan.
    Json acquire = Json::makeObject();
    acquire.set("verb", "lease_acquire");
    acquire.set("worker", "w1");
    EXPECT_FALSE(service.handle(acquire).getBool("granted", true));
}

TEST(ServiceCoord, CoordSubmitValidatesShardCount)
{
    const std::string dir = freshDir("svcbad");
    service::Journal journal(dir);
    service::Service service(testEngine(), journal, {});
    service.recover();
    Json submit = Json::makeObject();
    submit.set("verb", "coord_submit");
    submit.set("source", testSource());
    submit.set("shots", static_cast<int64_t>(10));
    submit.set("shards", static_cast<int64_t>(0));
    Json refused = service.handle(submit);
    EXPECT_FALSE(refused.getBool("ok", true));
    submit.set("shards", static_cast<int64_t>(11));
    refused = service.handle(submit);
    EXPECT_FALSE(refused.getBool("ok", true)) << refused.dump();
}
