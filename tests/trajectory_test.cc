/**
 * @file
 * Tests for the Monte-Carlo trajectory state-vector backend and the
 * SIMD kernel dispatch layer:
 *
 *  - factory wiring (names, limits, clear oversize errors);
 *  - statistical agreement of trajectory sampling with the exact
 *    density-matrix channels, at the qsim unit level (trajectory
 *    frequencies vs density Born probabilities on a noisy entangling
 *    mini-circuit) and through the engine (total-variation distance of
 *    full-batch histograms on the noisy active-reset workload) — fixed
 *    seeds, so CI is deterministic;
 *  - bitwise fingerprint identity of trajectory batches across thread
 *    counts and across a 3-way shard + merge, plus backend provenance
 *    and the trajectory/density strict-merge refusal;
 *  - exact-element SIMD-vs-scalar identity for every state-vector and
 *    density-matrix kernel class on random states (the qsim/kernels.h
 *    bit-identity contract; on machines without AVX2 both paths are
 *    the scalar one and the comparison is trivially true);
 *  - the forced-fallback switches (EQASM_SIMD env and
 *    setSimdEnabled).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "assembler/assembler.h"
#include "common/error.h"
#include "common/rng.h"
#include "engine/shot_engine.h"
#include "qsim/density_matrix.h"
#include "qsim/kernels.h"
#include "qsim/noise.h"
#include "qsim/state_backend.h"
#include "qsim/trajectory_state_vector.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "workloads/experiments.h"
#include "workloads/surface_code.h"

using namespace eqasm;
using namespace eqasm::engine;
using namespace eqasm::qsim;
using namespace eqasm::runtime;

namespace {

/** Restores the SIMD switch on scope exit. */
struct ScopedSimd {
    bool saved = kernels::simdEnabled();
    ~ScopedSimd() { kernels::setSimdEnabled(saved); }
};

BatchResult
runProgram(const Platform &platform, const std::string &source, int shots,
           uint64_t seed, int threads)
{
    QuantumProcessor processor(platform, seed);
    processor.loadSource(source);
    return processor.runBatch(shots, threads);
}

Platform
withBackend(Platform platform, BackendKind kind)
{
    platform.device.backend = kind;
    return platform;
}

Job
makeJob(const Platform &platform, const std::string &source, int shots,
        uint64_t seed)
{
    assembler::Assembler asm_(platform.operations, platform.topology,
                              platform.params);
    Job job;
    job.image = asm_.assemble(source).image;
    job.shots = shots;
    job.seed = seed;
    return job;
}

BatchResult
runOnFreshEngine(const Platform &platform, Job job, int threads)
{
    EngineConfig config;
    config.threads = threads;
    ShotEngine engine(platform, config);
    return engine.run(std::move(job));
}

/** Total-variation distance between two result histograms. */
double
tvDistance(const BatchResult &a, const BatchResult &b)
{
    std::set<std::string> keys;
    for (const auto &[key, count] : a.histogram)
        keys.insert(key);
    for (const auto &[key, count] : b.histogram)
        keys.insert(key);
    double tv = 0.0;
    for (const std::string &key : keys) {
        auto ita = a.histogram.find(key);
        auto itb = b.histogram.find(key);
        double pa = ita == a.histogram.end()
                        ? 0.0
                        : static_cast<double>(ita->second) /
                              static_cast<double>(a.shots);
        double pb = itb == b.histogram.end()
                        ? 0.0
                        : static_cast<double>(itb->second) /
                              static_cast<double>(b.shots);
        tv += std::fabs(pa - pb);
    }
    return 0.5 * tv;
}

std::vector<Complex>
randomState(int num_qubits, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Complex> amp(size_t{1} << num_qubits);
    for (Complex &a : amp)
        a = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    return amp;
}

CMatrix
randomMatrix(size_t n, uint64_t seed)
{
    Rng rng(seed);
    CMatrix m(n, n);
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < n; ++c)
            m(r, c) = Complex{rng.uniform(-1.0, 1.0),
                              rng.uniform(-1.0, 1.0)};
    }
    return m;
}

void
expectBitEqual(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(Complex)),
              0);
}

template <typename Fn>
void
expectErrorContaining(Fn &&fn, const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected Error mentioning '" << needle << "'";
    } catch (const Error &error) {
        EXPECT_NE(std::string(error.what()).find(needle),
                  std::string::npos)
            << "message: " << error.what();
    }
}

const Gate &
gate(const char *name)
{
    static std::map<std::string, Gate> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        auto parsed = makeGate(name);
        EXPECT_TRUE(parsed.has_value()) << name;
        it = cache.emplace(name, *parsed).first;
    }
    return it->second;
}

} // namespace

// ------------------------------------------------------------- factory

TEST(TrajectoryFactory, NamesRoundTrip)
{
    EXPECT_EQ(backendKindName(BackendKind::trajectory), "trajectory");
    EXPECT_EQ(parseBackendKind("trajectory"), BackendKind::trajectory);
    EXPECT_EQ(parseBackendKind("Trajectory"), BackendKind::trajectory);
    EXPECT_EQ(parseBackendKind("traj"), BackendKind::trajectory);
    EXPECT_EQ(parseBackendKind("statevector"), BackendKind::trajectory);
    EXPECT_EQ(parseBackendKind("sv"), BackendKind::trajectory);
    EXPECT_EQ(backendMaxQubits(BackendKind::trajectory), 24);
}

TEST(TrajectoryFactory, CreatesBackend)
{
    auto backend = makeBackend(BackendKind::trajectory, 17);
    EXPECT_EQ(backend->kind(), BackendKind::trajectory);
    EXPECT_EQ(backend->numQubits(), 17);
}

TEST(TrajectoryFactory, RejectsOversizedTopologyWithClearError)
{
    try {
        makeBackend(BackendKind::trajectory, 25);
        FAIL() << "trajectory backend accepted 25 qubits";
    } catch (const Error &error) {
        std::string message = error.message();
        EXPECT_NE(message.find("25 qubits"), std::string::npos) << message;
        EXPECT_NE(message.find("trajectory"), std::string::npos)
            << message;
        EXPECT_NE(message.find("stabilizer"), std::string::npos)
            << message;
    }
}

// ------------------------------------------- statistical noise physics

TEST(TrajectoryStatistics, T1DecayMatchesExponential)
{
    NoiseModel model;
    model.t2Ns = 2.0 * model.t1Ns; // pure T1 (no dephasing branch).
    const double t = 20'000.0;
    const double p_keep = std::exp(-t / model.t1Ns);
    const int trials = 4000;
    int ones = 0;
    for (int trial = 0; trial < trials; ++trial) {
        TrajectoryStateVector state(1);
        Rng rng = Rng::forShot(11, trial);
        state.applyGate1(gate("x"), 0);
        state.applyIdleNoise(0, t, model, rng);
        ones += state.measure(0, rng);
    }
    double fraction = static_cast<double>(ones) / trials;
    // 4+ sigma of the binomial at p ~ 0.565 and N = 4000 is ~0.032.
    EXPECT_NEAR(fraction, p_keep, 0.04);
}

/**
 * Trajectory branch frequencies vs the density backend's exact Born
 * probabilities on a noisy entangling mini-circuit (superpositions +
 * CZ + fused T1/T2 idle with both damping and dephasing active + 1q/2q
 * depolarizing). The density side applies the same channel hooks
 * exactly once (they are deterministic for density), then the joint
 * outcome distribution is read off by postselection.
 */
TEST(TrajectoryStatistics, NoisyCircuitMatchesDensityDistribution)
{
    NoiseModel model; // defaults: T1 = 35 us, T2 = 25 us, depol on.
    model.depol1q = 0.05; // crank the depolarizing branches so every
    model.depol2q = 0.10; // Kraus class actually fires in 4000 trials.
    auto drive = [&](StateBackend &state, Rng &rng) {
        state.applyGate1(gate("x90"), 0);
        state.applyGate1(gate("y90"), 1);
        state.applyGate2(gate("cz"), 0, 1);
        state.applyGateNoise2(0, 1, model, rng);
        state.applyIdleNoise(0, 20'000.0, model, rng);
        state.applyIdleNoise(1, 7'500.0, model, rng);
        state.applyGateNoise1(0, model, rng);
    };

    DensityMatrix dm(2);
    Rng dmRng(1); // density hooks never draw; any rng works.
    drive(dm, dmRng);
    double p1q0 = dm.probabilityOne(0);
    double exact[4];
    for (int b0 = 0; b0 < 2; ++b0) {
        DensityMatrix conditioned = dm;
        conditioned.postselect(0, b0);
        double p1q1 = conditioned.probabilityOne(1);
        double pb0 = b0 == 1 ? p1q0 : 1.0 - p1q0;
        exact[b0] = pb0 * (1.0 - p1q1);
        exact[b0 + 2] = pb0 * p1q1;
    }

    const int trials = 4000;
    int counts[4] = {0, 0, 0, 0};
    for (int trial = 0; trial < trials; ++trial) {
        TrajectoryStateVector state(2);
        Rng rng = Rng::forShot(23, trial);
        drive(state, rng);
        int b0 = state.measure(0, rng);
        int b1 = state.measure(1, rng);
        ++counts[b0 + 2 * b1];
    }
    double tv = 0.0;
    for (int outcome = 0; outcome < 4; ++outcome) {
        tv += std::fabs(static_cast<double>(counts[outcome]) / trials -
                        exact[outcome]);
    }
    tv *= 0.5;
    EXPECT_LT(tv, 0.04) << "trajectory vs density TV distance";
}

TEST(TrajectoryStatistics, ResetQubitEndsInZero)
{
    NoiseModel model;
    for (int trial = 0; trial < 32; ++trial) {
        TrajectoryStateVector state(2);
        Rng rng = Rng::forShot(5, trial);
        state.applyGate1(gate("x90"), 0);
        state.applyGate2(gate("cz"), 0, 1);
        state.applyIdleNoise(0, 10'000.0, model, rng);
        state.resetQubit(0, rng);
        EXPECT_NEAR(state.probabilityOne(0), 0.0, 1e-12);
        EXPECT_NEAR(state.norm(), 1.0, 1e-9);
    }
}

// ----------------------------------------------- engine determinism

TEST(TrajectoryEngine, StatisticalAgreementWithDensityThroughEngine)
{
    Platform platform = Platform::twoQubit(); // density by default.
    std::string source = workloads::activeResetProgram(2);
    BatchResult density = runProgram(platform, source, 4000, 42, 2);
    BatchResult trajectory =
        runProgram(withBackend(platform, BackendKind::trajectory), source,
                   4000, 43, 2);
    EXPECT_EQ(density.backend, "density");
    EXPECT_EQ(trajectory.backend, "trajectory");
    EXPECT_LT(tvDistance(density, trajectory), 0.06);
}

TEST(TrajectoryEngine, FingerprintInvariantAcrossThreadCounts)
{
    Platform platform = withBackend(Platform::rotatedSurface(2),
                                    BackendKind::trajectory);
    std::string source =
        workloads::syndromeProgram(2, 2, platform.operations);
    BatchResult one = runProgram(platform, source, 300, 7, 1);
    BatchResult two = runProgram(platform, source, 300, 7, 2);
    BatchResult four = runProgram(platform, source, 300, 7, 4);
    EXPECT_EQ(one.countsFingerprint(), two.countsFingerprint());
    EXPECT_EQ(one.countsFingerprint(), four.countsFingerprint());
}

TEST(TrajectoryEngine, ShardMergeBitIdentity)
{
    Platform platform = withBackend(Platform::twoQubit(),
                                    BackendKind::trajectory);
    std::string source = workloads::activeResetProgram(2);
    BatchResult whole =
        runOnFreshEngine(platform, makeJob(platform, source, 300, 9), 2);

    BatchResult merged;
    for (int index = 0; index < 3; ++index) {
        Job job = makeJob(platform, source, 300, 9);
        job.shard = {index, 3};
        BatchResult slice = runOnFreshEngine(platform, std::move(job), 1);
        EXPECT_EQ(slice.backend, "trajectory");
        if (index == 0)
            merged = std::move(slice);
        else
            merged.merge(slice);
    }
    merged.verifyComplete();
    EXPECT_EQ(merged.countsFingerprint(), whole.countsFingerprint());
}

TEST(TrajectoryEngine, RefusesToMergeWithDensityResults)
{
    Platform platform = Platform::twoQubit();
    std::string source = workloads::activeResetProgram(2);
    Platform trajPlatform = withBackend(platform, BackendKind::trajectory);

    Job densityHalf = makeJob(platform, source, 100, 3);
    densityHalf.shard = {0, 2};
    BatchResult density =
        runOnFreshEngine(platform, std::move(densityHalf), 1);

    Job trajectoryHalf = makeJob(trajPlatform, source, 100, 3);
    trajectoryHalf.shard = {1, 2};
    BatchResult trajectory =
        runOnFreshEngine(trajPlatform, std::move(trajectoryHalf), 1);

    expectErrorContaining([&] { density.merge(trajectory); }, "backend");
}

// --------------------------------------------- SIMD kernel identity

TEST(KernelIdentity, StateVectorKernelsMatchScalarBitwise)
{
    ScopedSimd guard;
    const int n = 5;
    const CMatrix u1 = randomMatrix(2, 101);
    const CMatrix u2 = randomMatrix(4, 202);
    Complex u1flat[4] = {u1(0, 0), u1(0, 1), u1(1, 0), u1(1, 1)};
    Complex u2flat[16];
    for (size_t r = 0; r < 4; ++r) {
        for (size_t c = 0; c < 4; ++c)
            u2flat[4 * r + c] = u2(r, c);
    }

    struct Case {
        const char *name;
        void (*op)(std::vector<Complex> &, const Complex *,
                   const Complex *);
    };
    using kernels::svDiag1;
    using kernels::svGate1;
    using kernels::svGate2;
    using kernels::svJumpDown;
    using kernels::svPauli;
    using kernels::svPhaseFlipWhere;
    using kernels::svScalePair;
    const Case cases[] = {
        {"gate1 q0",
         [](std::vector<Complex> &a, const Complex *g1, const Complex *) {
             svGate1(a.data(), a.size(), 0, g1);
         }},
        {"gate1 q3",
         [](std::vector<Complex> &a, const Complex *g1, const Complex *) {
             svGate1(a.data(), a.size(), 3, g1);
         }},
        {"gate2 q1q3",
         [](std::vector<Complex> &a, const Complex *, const Complex *g2) {
             svGate2(a.data(), a.size(), 1, 3, g2);
         }},
        {"gate2 q0q2",
         [](std::vector<Complex> &a, const Complex *, const Complex *g2) {
             svGate2(a.data(), a.size(), 0, 2, g2);
         }},
        {"diag1 q2",
         [](std::vector<Complex> &a, const Complex *g1, const Complex *) {
             svDiag1(a.data(), a.size(), 2, g1[0], g1[3]);
         }},
        {"scalePair q4",
         [](std::vector<Complex> &a, const Complex *, const Complex *) {
             svScalePair(a.data(), a.size(), 4, 0.75, 1.25);
         }},
        {"jumpDown q1",
         [](std::vector<Complex> &a, const Complex *, const Complex *) {
             svJumpDown(a.data(), a.size(), 1, 1.5);
         }},
        {"pauliX q2",
         [](std::vector<Complex> &a, const Complex *, const Complex *) {
             svPauli(a.data(), a.size(), 2, 1);
         }},
        {"pauliY q3",
         [](std::vector<Complex> &a, const Complex *, const Complex *) {
             svPauli(a.data(), a.size(), 3, 2);
         }},
        {"pauliZ q1",
         [](std::vector<Complex> &a, const Complex *, const Complex *) {
             svPauli(a.data(), a.size(), 1, 3);
         }},
        {"phaseFlip q2q4",
         [](std::vector<Complex> &a, const Complex *, const Complex *) {
             size_t mask = (size_t{1} << 2) | (size_t{1} << 4);
             svPhaseFlipWhere(a.data(), a.size(), mask, mask);
         }},
    };

    for (const Case &test : cases) {
        std::vector<Complex> simd = randomState(n, 999);
        std::vector<Complex> scalar = simd;
        kernels::setSimdEnabled(true);
        test.op(simd, u1flat, u2flat);
        kernels::setSimdEnabled(false);
        test.op(scalar, u1flat, u2flat);
        SCOPED_TRACE(test.name);
        expectBitEqual(simd, scalar);
    }

    // The probability reduction must agree to the last bit too.
    std::vector<Complex> amp = randomState(n, 77);
    for (int qubit = 0; qubit < n; ++qubit) {
        for (int bit = 0; bit < 2; ++bit) {
            kernels::setSimdEnabled(true);
            double vec = kernels::svProbHalf(amp.data(), amp.size(),
                                             qubit, bit);
            kernels::setSimdEnabled(false);
            double scl = kernels::svProbHalf(amp.data(), amp.size(),
                                             qubit, bit);
            EXPECT_EQ(vec, scl) << "qubit " << qubit << " bit " << bit;
        }
    }
}

TEST(KernelIdentity, DensityMatrixKernelsMatchScalarBitwise)
{
    ScopedSimd guard;
    const CMatrix dense1 = randomMatrix(2, 303);
    const CMatrix dense2 = randomMatrix(4, 404);
    auto drive = [&](DensityMatrix &dm) {
        dm.applyGate1(gate("h").matrix, 0);
        dm.applyGate1(gate("x90").matrix, 1);
        dm.applyGate1(gate("t").matrix, 3);
        dm.applyGate2(gate("cz").matrix, 1, 2);
        dm.applyGate2(gate("cnot").matrix, 0, 3);
        dm.applyGate1(randomMatrix(2, 1), 3);
        dm.applyGate2(randomMatrix(4, 2), 1, 3);
        dm.applyChannel1(krausAmplitudeDamping(0.25), 2);
        dm.applyChannel1(krausDepolarizing1(0.1), 1);
        dm.applyChannel1(krausDepolarizing1(0.1), 0); // scalar fallback.
        dm.applyChannel1({dense1}, 2); // dense (non-mono-row) branch.
        dm.applyChannel2(krausDepolarizing2(0.08), 1, 2);
        dm.applyChannel2(krausDepolarizing2(0.08), 0, 2); // fallback.
        dm.applyChannel2({dense2}, 2, 3); // dense branch.
    };

    DensityMatrix simd(4);
    kernels::setSimdEnabled(true);
    drive(simd);
    DensityMatrix scalar(4);
    kernels::setSimdEnabled(false);
    drive(scalar);
    ASSERT_EQ(simd.matrix().data().size(), scalar.matrix().data().size());
    EXPECT_EQ(std::memcmp(simd.matrix().data().data(),
                          scalar.matrix().data().data(),
                          simd.matrix().data().size() * sizeof(Complex)),
              0);

    // And both agree with the textbook reference kernels to rounding.
    DensityMatrix reference(4);
    reference.setReferenceKernels(true);
    kernels::setSimdEnabled(true);
    drive(reference);
    EXPECT_LT(simd.matrix().maxAbsDiff(reference.matrix()), 1e-12);
}

// ------------------------------------------------- dispatch switches

TEST(SimdDispatch, SetterForcesScalarFallback)
{
    ScopedSimd guard;
    kernels::setSimdEnabled(false);
    EXPECT_EQ(kernels::activeLevel(), kernels::SimdLevel::scalar);
    EXPECT_FALSE(kernels::simdActive());
    kernels::setSimdEnabled(true);
    EXPECT_EQ(kernels::activeLevel(), kernels::availableLevel());
}

TEST(SimdDispatch, EnvVarForcesScalarFallback)
{
    ScopedSimd guard;
    ::setenv("EQASM_SIMD", "scalar", 1);
    kernels::applySimdEnv();
    EXPECT_EQ(kernels::activeLevel(), kernels::SimdLevel::scalar);
    EXPECT_FALSE(kernels::simdActive());

    // A forced-scalar engine run must be bit-identical to the
    // dispatched run — the cross-ISA determinism guarantee.
    Platform platform = withBackend(Platform::twoQubit(),
                                    BackendKind::trajectory);
    std::string source = workloads::activeResetProgram(2);
    BatchResult scalar = runProgram(platform, source, 200, 13, 2);

    ::unsetenv("EQASM_SIMD");
    kernels::applySimdEnv();
    EXPECT_TRUE(kernels::simdEnabled());
    BatchResult dispatched = runProgram(platform, source, 200, 13, 2);
    EXPECT_EQ(scalar.countsFingerprint(),
              dispatched.countsFingerprint());
}

TEST(SimdDispatch, LevelNamesAreStable)
{
    EXPECT_EQ(kernels::simdLevelName(kernels::SimdLevel::scalar),
              "scalar");
    EXPECT_EQ(kernels::simdLevelName(kernels::SimdLevel::avx2), "avx2");
    EXPECT_EQ(kernels::simdLevelName(kernels::SimdLevel::neon), "neon");
}
