/**
 * @file
 * Tests for the allocation-free shot fast path: the load-bearing
 * property is that every fast-path ingredient — fused channel kernels,
 * the noise-channel cache, pre-resolved gate tables, the shared
 * program image, and disabled per-gate trace logs — changes cost only,
 * never counts. Each ingredient is toggled against a reference run and
 * the aggregated counts_fingerprint (or the full density matrix) must
 * come out identical.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "assembler/assembler.h"
#include "engine/shot_engine.h"
#include "isa/operation_set.h"
#include "microarch/quma.h"
#include "qsim/density_matrix.h"
#include "qsim/gates.h"
#include "qsim/noise.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "runtime/simulated_device.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_log.h"
#include "workloads/allxy.h"
#include "workloads/experiments.h"
#include "workloads/surface_code.h"

using namespace eqasm;
using namespace eqasm::engine;
using namespace eqasm::qsim;
using namespace eqasm::runtime;

namespace {

struct Case {
    std::string name;
    Platform platform;
    std::vector<uint32_t> image;
    int shots;
    uint64_t seed;
};

Case
makeCase(std::string name, Platform platform, const std::string &source,
         int shots, uint64_t seed)
{
    assembler::Assembler assembler(platform.operations,
                                   platform.topology, platform.params);
    Case c{std::move(name), std::move(platform),
           assembler.assemble(source).image, shots, seed};
    return c;
}

/** The workload mix: rabi + allxy on the density backend, allxy on the
 *  stabilizer backend (Clifford-only pairs), and d = 2 / d = 3 QEC on
 *  density / stabilizer respectively. */
std::vector<Case>
fastPathCases()
{
    std::vector<Case> cases;
    {
        Platform p = Platform::twoQubit();
        p.operations = workloads::rabiOperationSet(17);
        cases.push_back(makeCase("rabi_density", p,
                                 workloads::rabiProgram(8, 0), 200,
                                 300));
    }
    {
        Platform p = Platform::twoQubit();
        cases.push_back(
            makeCase("allxy_density", p,
                     workloads::twoQubitAllxyProgram(10, 0, 2), 200,
                     1010));
    }
    {
        // Combination 2 is (X, X) / (Y, Y): Clifford gates only, so
        // the same program also runs on the stabilizer backend.
        Platform p = Platform::twoQubit();
        p.device.backend = BackendKind::stabilizer;
        cases.push_back(
            makeCase("allxy_stabilizer", p,
                     workloads::twoQubitAllxyProgram(2, 0, 2), 200,
                     1010));
    }
    {
        Platform p = Platform::rotatedSurface(2);
        p.device.backend = BackendKind::density;
        cases.push_back(makeCase(
            "qec_d2_density", p,
            workloads::syndromeProgram(2, 1, p.operations), 24, 11));
    }
    {
        Platform p = Platform::rotatedSurface(3);
        cases.push_back(makeCase(
            "qec_d3_stabilizer", p,
            workloads::syndromeProgram(3, 1, p.operations), 400, 11));
    }
    return cases;
}

std::string
runFingerprint(const Case &c, int threads, bool keep_trace,
               bool channel_cache, bool reference_kernels)
{
    Platform platform = c.platform;
    platform.device.channelCache = channel_cache;
    platform.device.referenceKernels = reference_kernels;
    EngineConfig config;
    config.threads = threads;
    config.chunkShots = 7;  // odd size: maximise cross-chunk seams.
    config.keepReplicaTrace = keep_trace;
    ShotEngine engine(platform, config);
    Job job;
    job.image = c.image;
    job.shots = c.shots;
    job.seed = c.seed;
    job.label = c.name;
    return engine.run(std::move(job)).countsFingerprint();
}

} // namespace

// ------------------------------------------------ engine-level identity

TEST(FastPath, FingerprintIdenticalAcrossEveryConfiguration)
{
    for (const Case &c : fastPathCases()) {
        SCOPED_TRACE(c.name);
        std::string reference = runFingerprint(c, 1, false, true, false);

        // Thread counts.
        EXPECT_EQ(runFingerprint(c, 2, false, true, false), reference);
        EXPECT_EQ(runFingerprint(c, 4, false, true, false), reference);

        // recordTrace / TraceEvent logs back on.
        EXPECT_EQ(runFingerprint(c, 2, true, true, false), reference);

        // Channel cache off (density knob; a no-op for stabilizer).
        EXPECT_EQ(runFingerprint(c, 2, false, false, false), reference);

        // Full legacy configuration: textbook kernels, no cache,
        // per-gate trace logs.
        EXPECT_EQ(runFingerprint(c, 1, true, false, true), reference);
    }
}

TEST(FastPath, FingerprintIdenticalWithTelemetryOnAndOff)
{
    // The telemetry subsystem observes the fast path (chunk folds,
    // opcode-class tallies, cache hit counts) but must never perturb
    // it: the fingerprint of every workload at every thread count is
    // identical with the registry on, off, and with the trace timeline
    // recording.
    for (const Case &c : fastPathCases()) {
        SCOPED_TRACE(c.name);
        for (int threads : {1, 2, 4}) {
            SCOPED_TRACE(threads);
            telemetry::setEnabled(true);
            std::string on = runFingerprint(c, threads, false, true,
                                            false);
            telemetry::setEnabled(false);
            std::string off = runFingerprint(c, threads, false, true,
                                             false);
            telemetry::setEnabled(true);
            EXPECT_EQ(on, off);

            // Timeline recording changes the trace ring only.
            Platform platform = c.platform;
            EngineConfig config;
            config.threads = threads;
            config.chunkShots = 7;
            config.traceTimeline = true;
            ShotEngine engine(platform, config);
            Job job;
            job.image = c.image;
            job.shots = c.shots;
            job.seed = c.seed;
            job.label = c.name;
            EXPECT_EQ(engine.run(std::move(job)).countsFingerprint(),
                      on);
            telemetry::traceLog().setEnabled(false);
            telemetry::traceLog().clear();
        }
    }
}

// --------------------------------------------- kernel-level equivalence

namespace {

/** Runs a representative noisy sequence (gates, idle decoherence,
 *  measurement, active reset) on @p rho. */
void
runNoisySequence(DensityMatrix &rho, const NoiseModel &noise)
{
    NoiseChannelCache *cache = rho.channelCache();
    Rng rng(7);
    CMatrix x90 = matRx(M_PI / 2.0);
    CMatrix h = matH();
    CMatrix cz = matCz();
    for (int rep = 0; rep < 3; ++rep) {
        rho.applyGate1(x90, 0);
        applyGateNoise1(rho, 0, noise, cache);
        rho.applyGate1(h, 1);
        applyGateNoise1(rho, 1, noise, cache);
        rho.applyGate2(cz, 0, 1);
        applyGateNoise2(rho, 0, 1, noise, cache);
        rho.applyGate2(cz, 2, 3);
        applyGateNoise2(rho, 2, 3, noise, cache);
        applyIdleNoise(rho, 2, 140.0, noise, cache);
        applyIdleNoise(rho, 3, 60.0, noise, cache);
        rho.measure(1, rng);
        rho.resetQubit(1);
    }
}

/** Exact element equality (treats +0 and -0 as equal, like ==). */
void
expectExactlyEqual(const DensityMatrix &a, const DensityMatrix &b)
{
    ASSERT_EQ(a.dim(), b.dim());
    EXPECT_EQ(a.matrix().maxAbsDiff(b.matrix()), 0.0);
}

} // namespace

TEST(FastPath, FusedChannelKernelsMatchReferenceExactly)
{
    NoiseModel noise;
    DensityMatrix fused(4);
    DensityMatrix reference(4);
    reference.setReferenceKernels(true);
    runNoisySequence(fused, noise);
    runNoisySequence(reference, noise);
    expectExactlyEqual(fused, reference);
}

TEST(FastPath, CachedChannelsMatchUncachedExactly)
{
    NoiseModel noise;
    DensityMatrix cached(4);
    DensityMatrix uncached(4);
    uncached.setChannelCacheEnabled(false);
    ASSERT_EQ(uncached.channelCache(), nullptr);
    runNoisySequence(cached, noise);
    runNoisySequence(uncached, noise);
    expectExactlyEqual(cached, uncached);
}

TEST(FastPath, ResetQubitMatchesExplicitChannel)
{
    DensityMatrix rho(2);
    rho.applyGate1(matH(), 0);
    rho.applyGate2(matCnot(), 0, 1);
    DensityMatrix manual = rho;
    manual.setChannelCacheEnabled(false);

    rho.resetQubit(0);
    manual.applyChannel1(krausAmplitudeDamping(1.0), 0);
    expectExactlyEqual(rho, manual);
    EXPECT_EQ(rho.probabilityOne(0), 0.0);
}

TEST(FastPath, NoiseChannelCacheMemoizesPerDuration)
{
    NoiseModel noise;
    NoiseChannelCache cache;
    const auto &idle_a = cache.idle(20.0, noise);
    EXPECT_EQ(cache.idleEntries(), 1u);
    cache.idle(20.0, noise);
    EXPECT_EQ(cache.idleEntries(), 1u);
    cache.idle(40.0, noise);
    EXPECT_EQ(cache.idleEntries(), 2u);
    EXPECT_EQ(idle_a.amplitudeDamping.size(), 2u);
    // T2 < 2 T1 in the default model: a dephasing component exists.
    EXPECT_FALSE(idle_a.phaseDamping.empty());

    // A model change invalidates the idle entries.
    NoiseModel other = noise;
    other.t1Ns *= 2.0;
    cache.idle(20.0, other);
    EXPECT_EQ(cache.idleEntries(), 1u);

    // Cached channels replay the exact kraus* constructions.
    double gamma = 1.0 - std::exp(-20.0 / other.t1Ns);
    const auto &entry = cache.idle(20.0, other);
    EXPECT_EQ(entry.amplitudeDamping[0].maxAbsDiff(
                  krausAmplitudeDamping(gamma)[0]),
              0.0);
    EXPECT_EQ(cache.depolarizing1(noise.depol1q)[1].maxAbsDiff(
                  krausDepolarizing1(noise.depol1q)[1]),
              0.0);
    EXPECT_EQ(cache.depolarizing2(noise.depol2q)[7].maxAbsDiff(
                  krausDepolarizing2(noise.depol2q)[7]),
              0.0);
}

// ------------------------------------------- device + controller pieces

TEST(FastPath, OperationIdsAreAssignedAndResolvable)
{
    isa::OperationSet ops = isa::OperationSet::defaultSet();
    int index = 0;
    for (const isa::OperationInfo &info : ops.operations())
        EXPECT_EQ(info.id, index++);
    // An OperationInfo never registered with a set keeps id -1.
    EXPECT_EQ(isa::OperationInfo{}.id, -1);

    ResolvedGateTable table(ops);
    const isa::OperationInfo &x90 = ops.byName("X90");
    ASSERT_NE(table.find(x90.id), nullptr);
    EXPECT_EQ(table.find(x90.id)->numQubits, 1);
    const isa::OperationInfo &cz = ops.byName("CZ");
    ASSERT_NE(table.find(cz.id), nullptr);
    EXPECT_EQ(table.find(cz.id)->numQubits, 2);
    // Non-unitary operations stay unresolved; out-of-range ids are
    // answered with null instead of UB.
    const isa::OperationInfo &measz = ops.byName("MEASZ");
    EXPECT_EQ(table.find(measz.id), nullptr);
    EXPECT_EQ(table.find(-1), nullptr);
    EXPECT_EQ(table.find(1000), nullptr);
    EXPECT_GT(table.memoryBytes(), 0u);
}

TEST(FastPath, ConstStateAccessorDoesNotRequireMutableDevice)
{
    Platform platform = Platform::twoQubit();
    SimulatedDevice device(platform.topology, platform.device);
    const SimulatedDevice &const_device = device;
    EXPECT_EQ(const_device.state().numQubits(),
              platform.topology.numQubits());

    DeviceConfig stab = platform.device;
    stab.backend = BackendKind::stabilizer;
    SimulatedDevice stab_device(platform.topology, stab);
    const SimulatedDevice &const_stab = stab_device;
    EXPECT_THROW(const_stab.state(), Error);
    EXPECT_THROW(stab_device.state(), Error);
}

TEST(FastPath, MeasurementLogSurvivesDisabledTrace)
{
    Platform platform = Platform::ideal(Platform::twoQubit());
    platform.uarch.enableTrace = false;
    platform.device.recordTrace = false;
    QuantumProcessor processor(platform, 5);
    processor.loadSource("SMIS S0, {0}\nQWAIT 10\nX S0\n"
                         "QWAIT 10\nMEASZ S0\nQWAIT 50\nSTOP\n");
    ShotRecord record = processor.runShot();
    ASSERT_EQ(record.measurements.size(), 1u);
    EXPECT_EQ(record.measurements[0].qubit, 0);
    EXPECT_EQ(record.measurements[0].bit, 1);
    // The per-gate logs really were off.
    EXPECT_TRUE(processor.controller().trace().empty());
    EXPECT_TRUE(processor.device().appliedGates().empty());
}

TEST(FastPath, SharedProgramImageRunsOnMultipleControllers)
{
    Platform platform = Platform::ideal(Platform::twoQubit());
    assembler::Assembler assembler(platform.operations,
                                   platform.topology, platform.params);
    auto image = assembler
                     .assemble("SMIS S0, {0}\nQWAIT 10\nX S0\n"
                               "QWAIT 10\nMEASZ S0\nQWAIT 50\nSTOP\n")
                     .image;
    auto program =
        std::make_shared<const std::vector<isa::Instruction>>(
            isa::decodeProgram(image, platform.uarch.params,
                               platform.operations));

    for (int replica = 0; replica < 2; ++replica) {
        microarch::QuMa controller(platform.operations,
                                   platform.topology, platform.uarch);
        SimulatedDevice device(platform.topology, platform.device, 3);
        controller.attachDevice(&device);
        controller.loadShared(program);
        controller.runShot();
        ASSERT_EQ(controller.measurements().size(), 1u);
        EXPECT_EQ(controller.measurements()[0].bit, 1);
    }
    // The image is still owned here too: three owners total survived.
    EXPECT_EQ(program.use_count(), 1);
    EXPECT_EQ(program->size(), isa::decodeProgram(
                                   image, platform.uarch.params,
                                   platform.operations)
                                   .size());
}
