/**
 * @file
 * Distance-2 surface-code error detection on the seven-qubit chip —
 * the application the paper's chip was built for (Section 4.1) and the
 * showcase for SOMQ's instruction-density benefit (Section 4.2).
 *
 * Part 1 injects an X error on each data qubit in turn and shows the
 * centre Z-ancilla detecting it. Part 2 counts the eQASM instructions
 * of a repeated full syndrome round with and without SOMQ.
 */
#include <cstdio>

#include "compiler/codegen.h"
#include "compiler/schedule.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "workloads/surface_code.h"

int
main()
{
    using namespace eqasm;

    runtime::Platform platform =
        runtime::Platform::ideal(runtime::Platform::surface7());
    isa::OperationSet ops = isa::OperationSet::defaultSet();
    workloads::SurfaceCodeLayout layout;

    std::printf("Part 1: Z-stabilizer detects a single X error\n");
    std::printf("  injected error   Z-ancilla (qubit %d) syndrome\n",
                layout.zAncilla);
    for (int error = -1; error < 7; ++error) {
        bool is_data = false;
        for (int data : layout.dataQubits)
            is_data |= data == error;
        if (error >= 0 && !is_data)
            continue;
        auto timed = compiler::scheduleAsap(
            workloads::zSyndromeRound(error), ops);
        runtime::QuantumProcessor processor(platform, 3);
        processor.loadSource(compiler::generateProgram(
            timed, ops, platform.topology));
        int syndrome = processor.runShot().lastMeasurement(
            layout.zAncilla);
        if (error < 0) {
            std::printf("  (none)           %d\n", syndrome);
        } else {
            std::printf("  X on data %d      %d\n", error, syndrome);
        }
    }

    std::printf("\nPart 2: instruction density of repeated syndrome "
                "extraction (Config 9, w = 2)\n");
    auto timed = compiler::scheduleAsap(
        workloads::fullSyndromeRound(50), ops);
    compiler::CodegenOptions with;
    compiler::CodegenOptions without;
    without.somq = false;
    auto merged = compiler::countInstructions(timed, with);
    auto flat = compiler::countInstructions(timed, without);
    std::printf("  without SOMQ: %llu instructions\n",
                static_cast<unsigned long long>(flat.totalInstructions));
    std::printf("  with SOMQ:    %llu instructions  (%.0f%% fewer — the "
                "paper's QEC prediction)\n",
                static_cast<unsigned long long>(
                    merged.totalInstructions),
                100.0 * (1.0 - static_cast<double>(
                                   merged.totalInstructions) /
                                   static_cast<double>(
                                       flat.totalInstructions)));
    return 0;
}
