/**
 * @file
 * Seven-qubit example on the Fig. 6 surface-7 chip: SOMQ applies one
 * operation to all seven qubits with a single instruction, SMIT drives
 * two disjoint CZ pairs from one T register, and the two feedlines
 * measure all qubits simultaneously. This is the instantiation target
 * of the paper (the chip its 32-bit ISA was designed for).
 */
#include <cstdio>

#include "runtime/platform.h"
#include "runtime/quantum_processor.h"

int
main()
{
    using namespace eqasm;

    runtime::Platform platform =
        runtime::Platform::ideal(runtime::Platform::surface7());

    // Edge list (see chip::Topology::surface7): (2,0) and (4,1) are
    // disjoint allowed pairs, so one SMIT mask may select both.
    const char *source =
        "SMIS S7, {0, 1, 2, 3, 4, 5, 6}   # all seven qubits\n"
        "SMIS S1, {0, 1}                  # the two CZ targets\n"
        "SMIT T0, {(2, 0), (4, 1)}        # two disjoint pairs\n"
        "QWAIT 10000\n"
        "0, X90 S7                        # SOMQ across the chip\n"
        "CZ T0                            # two CZs, one instruction\n"
        "2, Xm90 S7\n"
        "1, MEASZ S7                      # both feedlines fire\n"
        "QWAIT 50\n"
        "STOP\n";

    runtime::QuantumProcessor processor(platform, 11);
    processor.loadSource(source);

    const int shots = 500;
    std::vector<int> ones(7, 0);
    uint64_t micro_ops = 0;
    uint64_t bundles = 0;
    for (int shot = 0; shot < shots; ++shot) {
        runtime::ShotRecord record = processor.runShot();
        for (int qubit = 0; qubit < 7; ++qubit)
            ones[static_cast<size_t>(qubit)] +=
                record.lastMeasurement(qubit);
        micro_ops = record.stats.microOps;
        bundles = record.stats.bundles;
    }

    std::printf("surface-7 chip: %llu micro-operations from %llu bundle "
                "instructions per shot\n\n",
                static_cast<unsigned long long>(micro_ops),
                static_cast<unsigned long long>(bundles));
    std::printf("qubit  feedline  F|1>\n");
    for (int qubit = 0; qubit < 7; ++qubit) {
        std::printf("  %d       %d      %.3f\n", qubit,
                    platform.topology.feedlineOfQubit(qubit),
                    static_cast<double>(ones[static_cast<size_t>(qubit)]) /
                        shots);
    }
    std::printf("\nqubits untouched by a CZ return to |0> "
                "(X90 then Xm90 cancel); the CZ pairs pick up\n"
                "entangling phases and end up partially excited.\n");
    return 0;
}
