/**
 * @file
 * Two-qubit Grover's search (Section 5 of the paper): for each of the
 * four oracles, one Grover iteration deterministically amplifies the
 * marked basis state. The example prints the outcome histogram per
 * oracle on the calibrated-noise device and the success probability —
 * the noisy analogue of the paper's 85.6 % algorithmic fidelity.
 */
#include <cstdio>

#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "workloads/grover2q.h"

int
main()
{
    using namespace eqasm;
    using workloads::MeasBasis;

    runtime::Platform platform = runtime::Platform::twoQubit();
    const int shots = 2000;

    std::printf("two-qubit Grover's search, one iteration, %d shots "
                "per oracle (noisy device)\n\n",
                shots);
    std::printf("oracle      |00>   |01>   |10>   |11>   P(marked)\n");

    double total = 0.0;
    for (int marked = 0; marked < 4; ++marked) {
        runtime::QuantumProcessor processor(platform,
                                            100 + static_cast<uint64_t>(
                                                      marked));
        processor.loadSource(workloads::groverProgram(
            marked, MeasBasis::z, MeasBasis::z, 0, 2));

        int counts[4] = {0, 0, 0, 0};
        for (int shot = 0; shot < shots; ++shot) {
            runtime::ShotRecord record = processor.runShot();
            int outcome = record.lastMeasurement(0) |
                          (record.lastMeasurement(2) << 1);
            ++counts[outcome];
        }
        double p_marked = static_cast<double>(counts[marked]) / shots;
        total += p_marked;
        std::printf("|%d%d>    %6.3f %6.3f %6.3f %6.3f   %.3f\n",
                    (marked >> 1) & 1, marked & 1,
                    static_cast<double>(counts[0]) / shots,
                    static_cast<double>(counts[1]) / shots,
                    static_cast<double>(counts[2]) / shots,
                    static_cast<double>(counts[3]) / shots, p_marked);
    }
    std::printf("\naverage raw success probability: %.3f "
                "(readout-uncorrected; the paper's 85.6 %% is the\n"
                "readout-corrected MLE-tomography fidelity — see "
                "bench_sec5_grover)\n",
                total / 4.0);
    return 0;
}
