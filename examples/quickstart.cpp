/**
 * @file
 * Quickstart: assemble an eQASM program, inspect its binary, and run it
 * on the simulated two-qubit processor.
 *
 *   $ ./quickstart
 *
 * The program prepares a Bell-like state (Y90 on both qubits, CZ, then
 * a recovery rotation), measures both qubits and prints the outcome
 * statistics — on an ideal device the two qubits always agree.
 */
#include <cstdio>
#include <map>

#include "assembler/disassembler.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"

int
main()
{
    using namespace eqasm;

    // 1. Pick a platform: chip topology + configured operation set +
    //    microarchitecture + device noise. Platform::ideal() switches
    //    the noise off so the physics is exact.
    runtime::Platform platform =
        runtime::Platform::ideal(runtime::Platform::twoQubit());

    // 2. Write eQASM. Quantum bundles are "[PI,] op reg [| op reg]":
    //    PI cycles after the previous timing point, apply the listed
    //    operations simultaneously. SMIS/SMIT preload target registers.
    const char *source =
        "SMIS S7, {0, 2}      # both qubits\n"
        "SMIS S1, {2}         # the pair's target qubit\n"
        "SMIT T0, {(0, 2)}    # the allowed qubit pair\n"
        "QWAIT 10000          # 200 us initialisation\n"
        "0, Y90 S7            # SOMQ: one op, both qubits\n"
        "CZ T0                # two-qubit gate (2 cycles)\n"
        "2, Ym90 S1           # recovery on qubit 2\n"
        "1, MEASZ S7          # measure both simultaneously\n"
        "QWAIT 50             # let the readout finish\n"
        "STOP\n";

    // 3. Assemble and load. The processor executes from the encoded
    //    32-bit binary through the full decoder path.
    runtime::QuantumProcessor processor(platform, /*seed=*/42);
    processor.loadSource(source);

    std::printf("binary image (%zu words):\n",
                processor.program().image.size());
    std::printf("%s\n",
                assembler::disassemble(processor.program().image,
                                       platform.operations,
                                       platform.topology,
                                       platform.params)
                    .c_str());

    // 4. Run shots and collect per-shot measurement records.
    const int shots = 1000;
    std::map<std::string, int> histogram;
    for (int shot = 0; shot < shots; ++shot) {
        runtime::ShotRecord record = processor.runShot();
        std::string key = std::to_string(record.lastMeasurement(0)) +
                          std::to_string(record.lastMeasurement(2));
        ++histogram[key];
    }

    std::printf("outcome histogram over %d shots (q0, q2):\n", shots);
    for (const auto &[outcome, count] : histogram)
        std::printf("  |%s> : %d\n", outcome.c_str(), count);
    std::printf("\nBell correlations: the two bits always agree on an "
                "ideal device.\n");
    return 0;
}
