/**
 * @file
 * Comprehensive feedback control (Fig. 5 of the paper): measure a
 * condition qubit, fetch the result into a GPR with FMR (which stalls
 * until the result is valid), compare and branch, and apply X or Y on
 * a second qubit depending on the outcome.
 *
 * Two runs are shown:
 *  - against the mock-result device (the paper's UHFQC-with-mock-
 *    results validation), demonstrating deterministic alternation;
 *  - against the simulated quantum device with the condition qubit in
 *    superposition, so the branch truly depends on quantum chance.
 */
#include <cstdio>

#include "assembler/assembler.h"
#include "microarch/quma.h"
#include "runtime/mock_device.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "workloads/experiments.h"

int
main()
{
    using namespace eqasm;

    std::printf("eQASM program (Fig. 5):\n%s\n",
                workloads::cfcProgram(2, 0).c_str());

    // --- Part 1: mock results, as in the paper's CFC validation.
    runtime::Platform platform = runtime::Platform::twoQubit();
    {
        microarch::QuMa controller(platform.operations,
                                   platform.topology, platform.uarch);
        runtime::MockResultDevice device(15);
        controller.attachDevice(&device);
        assembler::Assembler asm_(platform.operations,
                                  platform.topology, platform.params);
        controller.loadImage(
            asm_.assemble(workloads::cfcProgram(2, 0)).image);

        std::printf("mock-result device (alternating 0/1):\n");
        for (int shot = 0; shot < 6; ++shot) {
            device.programResults(2, {shot % 2});
            controller.runShot();
            for (const auto &pulse : device.shotPulses()) {
                if (pulse.qubit == 0) {
                    std::printf("  shot %d: result %d -> pulse %s\n",
                                shot, shot % 2,
                                pulse.operation.c_str());
                }
            }
        }
    }

    // --- Part 2: real (simulated) qubit in superposition decides.
    {
        // Prepend an X90 so the condition qubit is 50/50.
        std::string source = "SMIS S1, {2}\n"
                             "QWAIT 10000\n"
                             "X90 S1\n" +
                             workloads::cfcProgram(2, 0).substr(
                                 std::string("SMIS S0, {0}\n").size());
        // Rebuild the S0 definition dropped by the substring surgery.
        source = "SMIS S0, {0}\n" + source;

        runtime::QuantumProcessor processor(
            runtime::Platform::ideal(platform), 11);
        processor.loadSource(source);
        int ys = 0;
        const int shots = 400;
        for (int shot = 0; shot < shots; ++shot) {
            runtime::ShotRecord record = processor.runShot();
            ys += record.measurements.front().bit;
        }
        std::printf("\nsimulated qubit in superposition: the Y branch "
                    "was taken in %.1f %% of %d shots\n",
                    100.0 * ys / shots, shots);
    }
    return 0;
}
