/**
 * @file
 * Single-qubit AllXY calibration (the routine behind Fig. 11): 21 gate
 * pairs from {I, X, Y, X90, Y90} produce the characteristic
 * 0 / 0.5 / 1 staircase in the measured |1>-fraction. Deviations from
 * the staircase diagnose specific calibration errors, which is why the
 * experiment is a standard tune-up step. The example renders an ASCII
 * staircase from the simulated (readout-corrected) data.
 */
#include <cstdio>
#include <string>

#include "runtime/analysis.h"
#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "workloads/allxy.h"

int
main()
{
    using namespace eqasm;

    runtime::Platform platform = runtime::Platform::twoQubit();
    const int shots = 600;
    double eps = platform.device.noise.readoutError;

    std::printf("single-qubit AllXY on qubit 0, %d shots per pair, "
                "readout-corrected\n\n",
                shots);
    std::printf("idx  pair        F|1>   ideal  "
                "0.0       0.5       1.0\n");

    for (int pair_index = 0; pair_index < 21; ++pair_index) {
        runtime::QuantumProcessor processor(
            platform, 40 + static_cast<uint64_t>(pair_index));
        processor.loadSource(
            workloads::singleQubitAllxyProgram(pair_index, 0));
        auto records = processor.run(shots);
        double corrected = runtime::readoutCorrect(
            processor.fractionOne(records, 0), eps, eps);
        const auto &pair =
            workloads::allxyPairs()[static_cast<size_t>(pair_index)];

        std::string bar(static_cast<size_t>(corrected * 20.0 + 0.5),
                        '#');
        std::printf("%3d  %-4s %-4s   %.3f  %.1f    |%-20s|\n",
                    pair_index, pair.first, pair.second, corrected,
                    pair.idealFractionOne, bar.c_str());
    }
    std::printf("\nThe three plateaus (0, 0.5, 1) reproduce the Fig. 11 "
                "staircase; run bench_fig11_allxy\nfor the full "
                "two-qubit variant.\n");
    return 0;
}
