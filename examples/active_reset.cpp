/**
 * @file
 * Active qubit reset (Fig. 4 of the paper) using fast conditional
 * execution: measure the qubit, then apply C_X — a conditional X pulse
 * that the FCE unit releases only when the last measurement result was
 * |1>. Run with calibrated noise the reset lands at ~83 % (readout
 * limited), matching Section 5; with an ideal device it is perfect.
 */
#include <cstdio>

#include "runtime/platform.h"
#include "runtime/quantum_processor.h"
#include "workloads/experiments.h"

int
main()
{
    using namespace eqasm;

    std::printf("eQASM program (Fig. 4):\n%s\n",
                workloads::activeResetProgram(2).c_str());

    const int shots = 4000;
    for (bool noisy : {false, true}) {
        runtime::Platform platform = runtime::Platform::twoQubit();
        if (!noisy)
            platform = runtime::Platform::ideal(platform);
        runtime::QuantumProcessor processor(platform, 7);
        processor.loadSource(workloads::activeResetProgram(2));

        int reset_ok = 0, first_one = 0, cx_applied = 0;
        for (int shot = 0; shot < shots; ++shot) {
            runtime::ShotRecord record = processor.runShot();
            first_one += record.measurements.front().bit;
            reset_ok += record.lastMeasurement(2) == 0 ? 1 : 0;
            cx_applied +=
                static_cast<int>(record.stats.triggered -
                                 record.stats.cancelled) > 3
                    ? 1
                    : 0;
        }
        std::printf("%s device: P(first meas = 1) = %.3f, "
                    "P(|0> after reset) = %.3f\n",
                    noisy ? "calibrated-noise" : "ideal",
                    static_cast<double>(first_one) / shots,
                    static_cast<double>(reset_ok) / shots);
    }
    std::printf("\npaper: 82.7 %% after reset, limited by readout "
                "fidelity.\n");
    return 0;
}
