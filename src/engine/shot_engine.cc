#include "engine/shot_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/error.h"
#include "microarch/quma.h"
#include "runtime/quantum_processor.h"
#include "runtime/simulated_device.h"

namespace eqasm::engine {

using Clock = std::chrono::steady_clock;

/** A queued job plus its in-flight aggregation state. The shot claim is
 *  a lock-free counter; everything else is guarded by the engine
 *  mutex. */
struct ShotEngine::JobState {
    uint64_t id = 0;
    Job job;
    Clock::time_point start;

    /** Next unclaimed shot index (may overshoot job.shots). */
    std::atomic<int> nextShot{0};

    // --- guarded by ShotEngine::mutex_ ---
    BatchResult aggregate;
    int completedShots = 0;
    bool failed = false;
    std::exception_ptr error;

    std::promise<BatchResult> promise;
};

/** One worker's private controller + device replica, built from the
 *  shared Platform. Owning a full replica means workers share no
 *  mutable state at all during shot execution. */
struct ShotEngine::Replica {
    microarch::QuMa controller;
    runtime::SimulatedDevice device;
    uint64_t loadedJob = 0;  ///< id of the job whose image is loaded.

    explicit Replica(const runtime::Platform &platform)
        : controller(platform.operations, platform.topology,
                     platform.uarch),
          device(platform.topology, platform.device)
    {
        controller.attachDevice(&device);
    }
};

ShotEngine::ShotEngine(runtime::Platform platform, EngineConfig config)
    : platform_(std::move(platform)), config_(config)
{
    if (config_.chunkShots < 1)
        config_.chunkShots = 1;
    int threads = config_.threads;
    if (threads <= 0)
        threads = static_cast<int>(std::thread::hardware_concurrency());
    threads = std::max(threads, 1);
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ShotEngine::~ShotEngine()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::future<BatchResult>
ShotEngine::submit(Job job)
{
    if (job.shots <= 0) {
        throwError(ErrorCode::invalidArgument,
                   "a job needs at least one shot");
    }
    auto state = std::make_shared<JobState>();
    state->job = std::move(job);
    state->aggregate.label = state->job.label;
    // Provenance for sharded/merged result files: which backend and
    // seed produced these counts, and on how many workers.
    state->aggregate.backend = std::string(
        qsim::backendKindName(platform_.device.backend));
    state->aggregate.seed = state->job.seed;
    state->aggregate.threads = threads();
    state->start = Clock::now();
    std::future<BatchResult> future = state->promise.get_future();
    {
        std::lock_guard<std::mutex> guard(mutex_);
        state->id = nextJobId_++;
        queue_.push_back(std::move(state));
    }
    workAvailable_.notify_all();
    return future;
}

BatchResult
ShotEngine::run(Job job)
{
    return submit(std::move(job)).get();
}

void
ShotEngine::workerLoop()
{
    // The replica is constructed lazily inside runChunk's try block: a
    // Platform the device rejects (e.g. a topology the simulator cannot
    // hold) then fails the job it was claimed for instead of letting
    // the exception escape the thread and terminate the process.
    std::optional<Replica> replica;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workAvailable_.wait(
            lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        std::shared_ptr<JobState> state = queue_.front();
        int begin = state->nextShot.fetch_add(config_.chunkShots);
        if (begin >= state->job.shots) {
            // Fully claimed: retire it so workers move to the next job.
            // Completion is signalled by the last finished chunk, which
            // may still be in flight on another worker.
            if (queue_.front() == state)
                queue_.pop_front();
            continue;
        }
        int end = std::min(begin + config_.chunkShots, state->job.shots);
        lock.unlock();
        runChunk(replica, *state, begin, end);
        lock.lock();
    }
}

void
ShotEngine::runChunk(std::optional<Replica> &replica, JobState &state,
                     int begin, int end)
{
    BatchResult partial;
    std::exception_ptr error;

    bool skip;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        skip = state.failed;
    }
    if (!skip) {
        try {
            if (!replica)
                replica.emplace(platform_);
            if (replica->loadedJob != state.id) {
                replica->controller.loadImage(state.job.image);
                replica->device.reseed(state.job.seed);
                replica->loadedJob = state.id;
            }
            for (int shot = begin; shot < end; ++shot) {
                // Position the replica: shot k draws from the
                // counter-based stream (seed, k) no matter which worker
                // runs it, so aggregation is schedule-independent.
                replica->device.seekShot(static_cast<uint64_t>(shot));
                microarch::RunStats stats =
                    replica->controller.runShot();
                partial.addShot(
                    runtime::recordShot(replica->controller, stats));
            }
        } catch (...) {
            error = std::current_exception();
        }
    }
    finishChunk(state, std::move(partial), end - begin, error);
}

void
ShotEngine::finishChunk(JobState &state, BatchResult &&partial,
                        int count, std::exception_ptr error)
{
    bool done;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (error && !state.failed) {
            state.failed = true;
            state.error = error;
        }
        state.aggregate.merge(partial);
        state.completedShots += count;
        done = state.completedShots == state.job.shots;
    }
    if (!done)
        return;
    // Every chunk is accounted for: no other thread touches this state
    // any more, so the promise can be settled without the lock.
    if (state.error) {
        state.promise.set_exception(state.error);
        return;
    }
    double wall = std::chrono::duration<double>(Clock::now() -
                                                state.start)
                      .count();
    state.aggregate.wallSeconds = wall;
    state.aggregate.shotsPerSecond =
        wall > 0.0 ? static_cast<double>(state.aggregate.shots) / wall
                   : 0.0;
    state.promise.set_value(std::move(state.aggregate));
}

} // namespace eqasm::engine
