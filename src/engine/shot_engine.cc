#include "engine/shot_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/error.h"
#include "common/strings.h"
#include "isa/encoding.h"
#include "microarch/quma.h"
#include "qsim/noise.h"
#include "runtime/quantum_processor.h"
#include "runtime/simulated_device.h"
#include "telemetry/metrics.h"
#include "telemetry/trace_log.h"

namespace eqasm::engine {

using Clock = std::chrono::steady_clock;

namespace {

/**
 * The engine's registry handles, resolved once per process. Every
 * ShotEngine shares one set of series — the registry dedups by (name,
 * labels) — so counters mean "across all pools in this process", which
 * is what a scrape wants.
 */
struct EngineMetrics {
    telemetry::Counter jobsSubmitted;
    telemetry::Counter jobsCompleted;
    telemetry::Counter jobsFailed;
    telemetry::Counter jobsCancelled;
    telemetry::Counter shotsTotal;
    telemetry::Counter chunksTotal;
    telemetry::Counter cancelSweeps;
    telemetry::Counter cancelSweptJobs;
    telemetry::Counter cacheHits;
    telemetry::Counter cacheMisses;
    telemetry::Counter classicalInstructions;
    telemetry::Counter quantumInstructions;
    telemetry::Counter opQnop;
    telemetry::Counter opSingleQubit;
    telemetry::Counter opTwoQubit;
    telemetry::Counter opMeasurement;
    telemetry::Gauge queueDepth;
    telemetry::Gauge activeWorkers;
    telemetry::Histogram queueWaitUs;
    telemetry::Histogram chunkExecUs;
};

const EngineMetrics &
engineMetrics()
{
    static const EngineMetrics metrics = [] {
        telemetry::Registry &r = telemetry::registry();
        EngineMetrics m;
        m.jobsSubmitted = r.counter("eqasm_engine_jobs_submitted_total",
                                    "Jobs admitted to the queue");
        m.jobsCompleted = r.counter("eqasm_engine_jobs_completed_total",
                                    "Jobs that settled successfully");
        m.jobsFailed = r.counter("eqasm_engine_jobs_failed_total",
                                 "Jobs that settled with an error");
        m.jobsCancelled = r.counter("eqasm_engine_jobs_cancelled_total",
                                    "Jobs that settled as cancelled");
        m.shotsTotal = r.counter("eqasm_engine_shots_total",
                                 "Shots executed (rate() gives shots/s)");
        m.chunksTotal = r.counter("eqasm_engine_chunks_total",
                                  "Chunks executed by the worker pool");
        m.cancelSweeps = r.counter(
            "eqasm_engine_cancel_sweeps_total",
            "Cancel-epoch sweeps that removed at least one queued job");
        m.cancelSweptJobs = r.counter(
            "eqasm_engine_cancel_swept_jobs_total",
            "Queued jobs removed by cancel sweeps");
        m.cacheHits = r.counter(
            "eqasm_qsim_channel_cache_hits_total",
            "Noise-channel cache lookups that replayed a stored Kraus "
            "set (folded per chunk from the worker replicas)");
        m.cacheMisses = r.counter(
            "eqasm_qsim_channel_cache_misses_total",
            "Noise-channel cache lookups that (re)built a Kraus set");
        m.classicalInstructions = r.counter(
            "eqasm_quma_classical_instructions_total",
            "Classical instructions issued across all worker replicas");
        m.quantumInstructions = r.counter(
            "eqasm_quma_quantum_instructions_total",
            "Quantum instructions issued across all worker replicas");
        m.opQnop = r.counter("eqasm_quma_micro_ops_total",
                             "Micro-ops issued, by operation class",
                             {{"class", "qnop"}});
        m.opSingleQubit = r.counter("eqasm_quma_micro_ops_total",
                                    "Micro-ops issued, by operation class",
                                    {{"class", "single_qubit"}});
        m.opTwoQubit = r.counter("eqasm_quma_micro_ops_total",
                                 "Micro-ops issued, by operation class",
                                 {{"class", "two_qubit"}});
        m.opMeasurement = r.counter("eqasm_quma_micro_ops_total",
                                    "Micro-ops issued, by operation class",
                                    {{"class", "measurement"}});
        m.queueDepth = r.gauge("eqasm_engine_queue_depth",
                               "Jobs currently holding unclaimed shots");
        m.activeWorkers = r.gauge("eqasm_engine_active_workers",
                                  "Workers currently executing a chunk");
        m.queueWaitUs = r.histogram(
            "eqasm_engine_queue_wait_us",
            "Submit to first claimed chunk, microseconds",
            telemetry::defaultLatencyBucketsUs());
        m.chunkExecUs = r.histogram(
            "eqasm_engine_chunk_exec_us",
            "Per-chunk execution time, microseconds",
            telemetry::defaultLatencyBucketsUs());
        return m;
    }();
    return metrics;
}

} // namespace

/** A queued job plus its in-flight aggregation state. Chunk claims and
 *  aggregation are guarded by the engine mutex; the handle-facing
 *  controls (cancel, progress) are lock-free so a JobHandle stays safe
 *  from any thread, even after the engine is gone. */
struct ShotEngine::JobState : sched::JobControl {
    uint64_t id = 0;
    Job job;
    Clock::time_point start;
    /** Absolute shot sub-range this process executes — the whole
     *  [0, job.shots) unless the job is sharded (see ShardSpec). Set
     *  once at submission, constant afterwards. */
    int rangeBegin = 0;
    int rangeEnd = 0;

    int rangeShots() const { return rangeEnd - rangeBegin; }

    // --- handle-facing, lock-free ---
    std::atomic<bool> cancelRequested{false};
    std::atomic<int> executedShots{0};  ///< mirror of aggregate.shots.
    /** Engine-wide cancel counter, shared so a handle can signal after
     *  the engine is gone (the signal is then simply unobserved). */
    std::shared_ptr<std::atomic<uint64_t>> cancelEpoch;

    // --- guarded by ShotEngine::mutex_ ---
    /** Absolute claim cursor: the next unclaimed shot index. Starts at
     *  rangeBegin and advances to rangeEnd as workers claim chunks. */
    int claimedShots = 0;
    int accountedShots = 0;  ///< shots whose chunks finished/skipped.
    /** Absolute ranges whose shots have actually executed and folded
     *  into the aggregate — what a partial snapshot truthfully covers
     *  (chunks finish out of order, so this is generally a disjoint
     *  set until the job completes). */
    std::vector<std::pair<uint64_t, uint64_t>> completedRanges;
    int chunksSinceSnapshot = 0;
    bool firstClaimObserved = false;  ///< queue-wait histogram fired.
    bool failed = false;
    bool settled = false;  ///< a thread owns/has done promise settlement.
    std::exception_ptr error;
    BatchResult aggregate;
    std::promise<BatchResult> promise;

    // --- streaming delivery (own mutex; never held with mutex_) ---
    std::mutex callbackMutex;
    uint64_t deliveredShots = 0;
    bool deliveryClosed = false;  ///< set before the promise settles.

    // --- shared read-only program image ---
    /** The job's image decoded once; every worker replica loads this
     *  same shared copy instead of re-decoding into private storage. */
    std::mutex decodeMutex;
    std::shared_ptr<const std::vector<isa::Instruction>> decoded;

    void requestCancel() override
    {
        cancelRequested.store(true, std::memory_order_relaxed);
        // Bump the epoch after the flag so a worker that observes the
        // new epoch also observes the flag — workers then sweep the
        // job out of the queue without waiting for a policy pick.
        if (cancelEpoch)
            cancelEpoch->fetch_add(1, std::memory_order_release);
    }

    sched::Progress progress() const override
    {
        sched::Progress progress;
        progress.completedShots =
            executedShots.load(std::memory_order_relaxed);
        progress.totalShots = rangeShots();
        progress.cancelRequested =
            cancelRequested.load(std::memory_order_relaxed);
        return progress;
    }
};

/** One worker's private controller + device replica, built from the
 *  shared Platform. Workers share no *mutable* state during shot
 *  execution; the read-only program image and resolved gate table are
 *  shared across the pool, so per-replica private state shrinks to
 *  the controller's architectural registers, the backend state and
 *  the RNG. */
struct ShotEngine::Replica {
    microarch::QuMa controller;
    runtime::SimulatedDevice device;
    uint64_t loadedJob = 0;  ///< id of the job whose image is loaded.

    Replica(const runtime::Platform &platform,
            std::shared_ptr<const runtime::ResolvedGateTable> gates)
        : controller(platform.operations, platform.topology,
                     platform.uarch),
          device(platform.topology, platform.device)
    {
        device.shareGateTable(std::move(gates));
        controller.attachDevice(&device);
    }
};

ShotEngine::ShotEngine(runtime::Platform platform, EngineConfig config)
    : platform_(std::move(platform)), config_(config),
      scheduler_(config.scheduler),
      cancelEpoch_(std::make_shared<std::atomic<uint64_t>>(0))
{
    if (config_.chunkShots < 1)
        config_.chunkShots = 1;
    // Batch replicas skip the per-gate logs: results come from the
    // always-on measurement path, and the logs' per-op string pushes
    // are pure overhead at batch rates (results are bit-identical, as
    // the fast-path tests assert).
    replicaPlatform_ = platform_;
    if (!config_.keepReplicaTrace) {
        replicaPlatform_.uarch.enableTrace = false;
        replicaPlatform_.device.recordTrace = false;
    }
    gateTable_ = std::make_shared<const runtime::ResolvedGateTable>(
        platform_.operations);
    int threads = config_.threads;
    if (threads <= 0)
        threads = static_cast<int>(std::thread::hardware_concurrency());
    threads = std::max(threads, 1);
    if (config_.traceTimeline)
        telemetry::traceLog().setEnabled(true);
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ShotEngine::~ShotEngine()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    // Workers drain the queue before exiting, so every submitted job
    // has settled by now (join() made their writes visible). This is a
    // safety net so a future bug can never leave a waiter blocked.
    for (auto &[id, state] : active_) {
        engineMetrics().queueDepth.dec();
        if (state->settled)
            continue;
        state->settled = true;
        state->promise.set_exception(std::make_exception_ptr(
            Error(ErrorCode::runtimeError,
                  format("engine stopped before job '%s' completed",
                         state->job.label.c_str()))));
    }
}

sched::JobHandle
ShotEngine::submit(Job job)
{
    if (job.shots <= 0) {
        throwError(
            ErrorCode::invalidArgument,
            format("job '%s' requests %d shots; a job needs at least "
                   "one shot",
                   job.label.empty() ? "(unlabelled)" : job.label.c_str(),
                   job.shots));
    }
    if (job.shard.count < 0 ||
        (job.shard.active() &&
         (job.shard.index < 0 || job.shard.index >= job.shard.count))) {
        throwError(
            ErrorCode::invalidArgument,
            format("job '%s' names shard %d/%d; a shard index must lie "
                   "in [0, count)",
                   job.label.empty() ? "(unlabelled)" : job.label.c_str(),
                   job.shard.index, job.shard.count));
    }
    if (job.range.active() && job.shard.active()) {
        throwError(
            ErrorCode::invalidArgument,
            format("job '%s' combines shard %d/%d with an explicit "
                   "range [%d, %d); a resume range already names its "
                   "absolute shots",
                   job.label.empty() ? "(unlabelled)" : job.label.c_str(),
                   job.shard.index, job.shard.count, job.range.begin,
                   job.range.end));
    }
    if (job.range.active() &&
        (job.range.begin < 0 || job.range.end > job.shots)) {
        throwError(
            ErrorCode::invalidArgument,
            format("job '%s' range [%d, %d) lies outside the job's "
                   "[0, %d) shots",
                   job.label.empty() ? "(unlabelled)" : job.label.c_str(),
                   job.range.begin, job.range.end, job.shots));
    }
    auto [rangeBegin, rangeEnd] = shardRange(job.shots, job.shard);
    if (job.range.active()) {
        rangeBegin = job.range.begin;
        rangeEnd = job.range.end;
    }
    if (rangeBegin == rangeEnd) {
        throwError(
            ErrorCode::invalidArgument,
            format("job '%s' shard %d/%d of %d shots is empty; use at "
                   "most %d shards",
                   job.label.empty() ? "(unlabelled)" : job.label.c_str(),
                   job.shard.index, job.shard.count, job.shots,
                   job.shots));
    }
    auto state = std::make_shared<JobState>();
    state->job = std::move(job);
    state->cancelEpoch = cancelEpoch_;
    state->rangeBegin = rangeBegin;
    state->rangeEnd = rangeEnd;
    state->claimedShots = rangeBegin;
    state->aggregate.label = state->job.label;
    // Provenance for sharded/merged result files: which backend, seed
    // and program produced these counts, on how many workers, and
    // which slice of the job this process is running (merge() checks
    // compatibility and range disjointness from exactly these fields).
    state->aggregate.backend = std::string(
        qsim::backendKindName(platform_.device.backend));
    state->aggregate.seed = state->job.seed;
    state->aggregate.threads = threads();
    state->aggregate.programHash = imageFingerprint(state->job.image);
    state->aggregate.totalShots =
        static_cast<uint64_t>(state->job.shots);
    state->aggregate.shard = state->job.shard;
    state->aggregate.shotRanges = {
        {static_cast<uint64_t>(rangeBegin),
         static_cast<uint64_t>(rangeEnd)}};
    state->start = Clock::now();
    std::shared_future<BatchResult> future =
        state->promise.get_future().share();
    {
        std::lock_guard<std::mutex> guard(mutex_);
        state->id = nextJobId_++;
        sched::QueuedJob queued;
        queued.id = state->id;
        queued.tenant = state->job.tenant;
        queued.priority = state->job.priority;
        queued.deadlineUs = state->job.deadlineUs;
        scheduler_.enqueue(std::move(queued));
        active_.emplace(state->id, state);
    }
    engineMetrics().jobsSubmitted.inc();
    engineMetrics().queueDepth.inc();
    workAvailable_.notify_all();
    return sched::JobHandle(state, std::move(future));
}

BatchResult
ShotEngine::run(Job job)
{
    return submit(std::move(job)).get();
}

std::vector<std::pair<std::shared_ptr<ShotEngine::JobState>, int>>
ShotEngine::sweepCancelledJobs()
{
    std::vector<std::pair<std::shared_ptr<JobState>, int>> swept;
    for (auto it = active_.begin(); it != active_.end();) {
        const std::shared_ptr<JobState> &state = it->second;
        if (!state->cancelRequested.load(std::memory_order_acquire)) {
            ++it;
            continue;
        }
        int begin = state->claimedShots;
        state->claimedShots = state->rangeEnd;
        swept.emplace_back(state, begin);
        scheduler_.remove(it->first);
        it = active_.erase(it);
        engineMetrics().queueDepth.dec();
    }
    if (!swept.empty()) {
        engineMetrics().cancelSweeps.inc();
        engineMetrics().cancelSweptJobs.add(swept.size());
    }
    return swept;
}

void
ShotEngine::workerLoop(int workerIndex)
{
    // The replica is constructed lazily inside runChunk's try block: a
    // Platform the device rejects (e.g. a topology the simulator cannot
    // hold) then fails the job it was claimed for instead of letting
    // the exception escape the thread and terminate the process.
    std::optional<Replica> replica;
    uint64_t seenCancelEpoch = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workAvailable_.wait(
            lock, [this] { return stopping_ || !scheduler_.empty(); });
        if (scheduler_.empty()) {
            if (stopping_)
                return;
            continue;
        }
        // A moved cancel epoch means some queued job may be cancelled:
        // sweep those out now instead of waiting for the policy to pick
        // them (a starved low-priority cancel would otherwise never
        // settle). The skipped ranges are accounted like any chunk.
        uint64_t epoch =
            cancelEpoch_->load(std::memory_order_acquire);
        if (epoch != seenCancelEpoch) {
            seenCancelEpoch = epoch;
            auto swept = sweepCancelledJobs();
            if (!swept.empty()) {
                lock.unlock();
                for (auto &[state, begin] : swept) {
                    runChunk(replica, *state, begin,
                             state->rangeEnd, workerIndex);
                }
                lock.lock();
                continue;
            }
            if (scheduler_.empty())
                continue;
        }
        uint64_t id = scheduler_.pickNext();
        auto it = active_.find(id);
        EQASM_ASSERT(it != active_.end(), "scheduled job has no state");
        std::shared_ptr<JobState> state = it->second;
        // Failed and cancelled jobs skip execution, so their whole
        // remaining range is claimed (and accounted) in one visit —
        // cancellation frees the workers immediately.
        bool skip =
            state->failed ||
            state->cancelRequested.load(std::memory_order_relaxed);
        int begin = state->claimedShots;
        int end = skip ? state->rangeEnd
                       : std::min(begin + config_.chunkShots,
                                  state->rangeEnd);
        state->claimedShots = end;
        if (!skip) {
            // Skipped ranges never execute; charging them would leave
            // the tenant's fair-share deficit paying for work that
            // freed the worker instantly.
            scheduler_.charge(id, end - begin);
            if (!state->firstClaimObserved) {
                state->firstClaimObserved = true;
                engineMetrics().queueWaitUs.observe(static_cast<uint64_t>(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - state->start)
                        .count()));
            }
        }
        if (end == state->rangeEnd) {
            // Fully claimed: retire it so visits go to other jobs.
            // Completion is signalled by the last finished chunk, which
            // may still be in flight on another worker.
            scheduler_.remove(id);
            active_.erase(it);
            engineMetrics().queueDepth.dec();
        }
        lock.unlock();
        runChunk(replica, *state, begin, end, workerIndex);
        lock.lock();
    }
}

std::shared_ptr<const std::vector<isa::Instruction>>
ShotEngine::decodedProgram(JobState &state)
{
    // Decode on first use (inside the worker's try block, so a bad
    // image fails its job exactly like loadImage used to) and share
    // the read-only result with every replica that runs this job.
    std::lock_guard<std::mutex> guard(state.decodeMutex);
    if (!state.decoded) {
        state.decoded =
            std::make_shared<const std::vector<isa::Instruction>>(
                isa::decodeProgram(state.job.image,
                                   platform_.uarch.params,
                                   platform_.operations));
    }
    return state.decoded;
}

void
ShotEngine::runChunk(std::optional<Replica> &replica, JobState &state,
                     int begin, int end, int workerIndex)
{
    BatchResult partial;
    std::exception_ptr error;

    bool skip;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        skip = state.failed;
    }
    skip = skip || state.cancelRequested.load(std::memory_order_relaxed);
    if (!skip) {
        const EngineMetrics &metrics = engineMetrics();
        metrics.activeWorkers.inc();
        const uint64_t startUs = telemetry::nowMonotonicUs();
        // Per-replica tallies are plain members, so the hot loop pays
        // zero atomic traffic; the chunk folds the *deltas* into the
        // sharded registry slots here, once per claim.
        microarch::OpClassCounts opsBefore;
        uint64_t cacheHitsBefore = 0;
        uint64_t cacheMissesBefore = 0;
        uint64_t classicalSum = 0;
        uint64_t quantumSum = 0;
        bool tallied = false;
        try {
            if (!replica)
                replica.emplace(replicaPlatform_, gateTable_);
            opsBefore = replica->controller.opClassCounts();
            if (const auto *cache = replica->device.channelCache()) {
                cacheHitsBefore = cache->cacheHits();
                cacheMissesBefore = cache->cacheMisses();
            }
            tallied = true;
            if (replica->loadedJob != state.id) {
                replica->controller.loadShared(decodedProgram(state));
                replica->device.reseed(state.job.seed);
                replica->loadedJob = state.id;
            }
            for (int shot = begin; shot < end; ++shot) {
                // Position the replica: shot k draws from the
                // counter-based stream (seed, k) no matter which worker
                // runs it, so aggregation is schedule-independent.
                replica->device.seekShot(static_cast<uint64_t>(shot));
                microarch::RunStats stats =
                    replica->controller.runShot();
                classicalSum += stats.classicalInstructions;
                quantumSum += stats.quantumInstructions;
                partial.addShot(
                    runtime::recordShot(replica->controller, stats));
            }
        } catch (...) {
            error = std::current_exception();
        }
        if (tallied) {
            const microarch::OpClassCounts &ops =
                replica->controller.opClassCounts();
            metrics.opQnop.add(ops.qnop - opsBefore.qnop);
            metrics.opSingleQubit.add(ops.singleQubit -
                                      opsBefore.singleQubit);
            metrics.opTwoQubit.add(ops.twoQubit - opsBefore.twoQubit);
            metrics.opMeasurement.add(ops.measurement -
                                      opsBefore.measurement);
            if (const auto *cache = replica->device.channelCache()) {
                metrics.cacheHits.add(cache->cacheHits() -
                                      cacheHitsBefore);
                metrics.cacheMisses.add(cache->cacheMisses() -
                                        cacheMissesBefore);
            }
        }
        metrics.classicalInstructions.add(classicalSum);
        metrics.quantumInstructions.add(quantumSum);
        metrics.chunksTotal.inc();
        const uint64_t endUs = telemetry::nowMonotonicUs();
        metrics.chunkExecUs.observe(endUs - startUs);
        telemetry::TraceLog &log = telemetry::traceLog();
        if (log.enabled()) {
            telemetry::TraceSpan span;
            span.name = "chunk";
            span.cat = "engine";
            span.track = workerIndex;
            span.jobId = state.id;
            span.tenant = state.job.tenant;
            span.detail = format(
                "%s [%d,%d)",
                state.job.label.empty() ? "(unlabelled)"
                                        : state.job.label.c_str(),
                begin, end);
            span.startUs = startUs;
            span.durUs = endUs - startUs;
            log.record(std::move(span));
        }
        metrics.activeWorkers.dec();
    }
    finishChunk(state, std::move(partial), begin, end - begin, error);
}

void
ShotEngine::finishChunk(JobState &state, BatchResult &&partial,
                        int begin, int count, std::exception_ptr error)
{
    bool done;
    bool snapshot = false;
    BatchResult snapshotCopy;
    engineMetrics().shotsTotal.add(partial.shots);
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (error && !state.failed) {
            state.failed = true;
            state.error = error;
        }
        state.aggregate.merge(partial);
        // Record what this chunk actually executed (a chunk that threw
        // mid-way covers only its completed prefix — shots run in
        // order). The coverage feeds partial snapshots so a persisted
        // checkpoint never claims shots it does not hold.
        if (partial.shots > 0) {
            insertShotRange(state.completedRanges,
                            static_cast<uint64_t>(begin),
                            static_cast<uint64_t>(begin) +
                                partial.shots);
        }
        state.executedShots.store(
            static_cast<int>(state.aggregate.shots),
            std::memory_order_relaxed);
        state.accountedShots += count;
        done = state.accountedShots == state.rangeShots();
        if (done) {
            state.settled = true;  // this thread owns settlement.
        } else if (state.job.onPartial && !state.failed &&
                   !state.cancelRequested.load(
                       std::memory_order_relaxed)) {
            int every = std::max(1, state.job.partialEveryChunks);
            if (++state.chunksSinceSnapshot >= every) {
                state.chunksSinceSnapshot = 0;
                snapshotCopy = state.aggregate;
                // The aggregate's shotRanges claim the job's whole
                // assigned range (its provenance); a snapshot instead
                // reports the coverage that has truly completed.
                snapshotCopy.shotRanges = state.completedRanges;
                snapshot = true;
            }
        }
    }
    if (!done) {
        if (snapshot) {
            double wall = std::chrono::duration<double>(Clock::now() -
                                                        state.start)
                              .count();
            snapshotCopy.wallSeconds = wall;
            snapshotCopy.shotsPerSecond =
                wall > 0.0
                    ? static_cast<double>(snapshotCopy.shots) / wall
                    : 0.0;
            // Deliver outside the engine mutex; the per-job callback
            // mutex serialises deliveries, drops stale snapshots so
            // shot counts are strictly increasing for the callback,
            // and refuses once the completing thread closed delivery —
            // a snapshot must never chase the final result out of the
            // engine (the caller may free callback state right after
            // get() returns).
            std::exception_ptr callbackError;
            {
                std::lock_guard<std::mutex> guard(state.callbackMutex);
                if (!state.deliveryClosed &&
                    snapshotCopy.shots > state.deliveredShots) {
                    state.deliveredShots = snapshotCopy.shots;
                    try {
                        state.job.onPartial(snapshotCopy);
                    } catch (...) {
                        // A throwing callback must not escape the
                        // worker thread (std::terminate); it fails the
                        // job like a throwing shot would.
                        callbackError = std::current_exception();
                    }
                }
            }
            if (callbackError) {
                std::lock_guard<std::mutex> guard(mutex_);
                if (!state.failed) {
                    state.failed = true;
                    state.error = callbackError;
                }
            }
        }
        return;
    }
    // Close the delivery window first: once this mutex round completes,
    // any straggling snapshot from a slower worker is dropped, so no
    // callback runs after the promise below is settled.
    {
        std::lock_guard<std::mutex> guard(state.callbackMutex);
        state.deliveryClosed = true;
    }
    // The job's span covers submit to settlement. state.start predates
    // the trace-log timebase capture of this span, so the start is
    // reconstructed by subtracting the job's wall time from "now" on
    // the shared monotonic clock.
    telemetry::TraceLog &log = telemetry::traceLog();
    if (log.enabled()) {
        const uint64_t nowUs = telemetry::nowMonotonicUs();
        const uint64_t jobUs = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - state.start)
                .count());
        telemetry::TraceSpan span;
        span.name = state.job.label.empty() ? "job" : state.job.label;
        span.cat = "job";
        span.track = telemetry::TraceLog::kJobTrackBase +
                     static_cast<int32_t>(state.id % 256);
        span.jobId = state.id;
        span.tenant = state.job.tenant;
        span.detail = format("%d shots", state.rangeShots());
        span.startUs = jobUs < nowUs ? nowUs - jobUs : 0;
        span.durUs = jobUs;
        log.record(std::move(span));
    }
    // Every chunk is accounted for: no other thread touches this state
    // any more, so the promise can be settled without the lock.
    if (state.error) {
        engineMetrics().jobsFailed.inc();
        state.promise.set_exception(state.error);
        return;
    }
    if (state.cancelRequested.load(std::memory_order_relaxed) &&
        state.aggregate.shots <
            static_cast<uint64_t>(state.rangeShots())) {
        engineMetrics().jobsCancelled.inc();
        state.promise.set_exception(std::make_exception_ptr(Error(
            ErrorCode::runtimeError,
            format("job '%s' cancelled after %llu of %d shots",
                   state.job.label.empty() ? "(unlabelled)"
                                           : state.job.label.c_str(),
                   static_cast<unsigned long long>(
                       state.aggregate.shots),
                   state.rangeShots()))));
        return;
    }
    engineMetrics().jobsCompleted.inc();
    double wall = std::chrono::duration<double>(Clock::now() -
                                                state.start)
                      .count();
    state.aggregate.wallSeconds = wall;
    state.aggregate.shotsPerSecond =
        wall > 0.0 ? static_cast<double>(state.aggregate.shots) / wall
                   : 0.0;
    state.promise.set_value(std::move(state.aggregate));
}

} // namespace eqasm::engine
