/**
 * @file
 * ShotEngine — parallel shot execution across controller replicas.
 *
 * Every experiment the paper validates (Rabi, T1, AllXY, RB, Grover,
 * surface-code QEC) repeats one program for thousands of shots, and the
 * shots are independent: the architecture resets all state between
 * shots. The engine exploits that by keeping a pool of workers, each
 * owning a full QuMA_v2 controller + SimulatedDevice replica built from
 * the shared Platform. A sched::JobScheduler decides which pending job
 * receives each worker visit (FIFO by default; priority lanes and
 * weighted fair-share across tenants are one config field away);
 * workers claim chunks of the chosen job's shot range, position their
 * device replica at each shot index (counter-based Rng::forShot
 * streams), execute, and fold the shots into commutative BatchResult
 * partials. Aggregation is therefore deterministic: a job's result is
 * bitwise-identical for any thread count, any policy, and any
 * scheduling order.
 *
 * Preemption happens at chunk boundaries: a newly arrived
 * high-priority job claims the very next worker visit; in-flight shots
 * of the preempted job finish (at most chunkShots of them per worker)
 * and its remaining range resumes when the scheduler picks it again.
 * Cancellation uses the same mechanism — unclaimed shots are dropped
 * at the next visit, in-flight shots complete, and only the cancelled
 * job fails.
 *
 * An error in any shot (architectural error, timing violation, device
 * misconfiguration) fails the whole job: the first exception is
 * captured and rethrown to the waiter, remaining shots of that job are
 * skipped, and the pool moves on to the next job — a failed job never
 * wedges the engine.
 */
#ifndef EQASM_ENGINE_SHOT_ENGINE_H
#define EQASM_ENGINE_SHOT_ENGINE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/batch_result.h"
#include "engine/job.h"
#include "runtime/platform.h"
#include "sched/job_handle.h"
#include "sched/job_scheduler.h"

namespace eqasm::engine {

/** Pool configuration. */
struct EngineConfig {
    /** Worker threads; 0 selects std::thread::hardware_concurrency(). */
    int threads = 0;

    /** Shots a worker claims per queue visit. Small enough to balance
     *  load across workers (and to bound preemption latency), large
     *  enough to amortise the claim. */
    int chunkShots = 32;

    /** Queue policy + fair-share weights (see sched::JobScheduler). */
    sched::SchedulerConfig scheduler;

    /**
     * Keep the per-gate logs (QuMa TraceEvents, device AppliedGates) on
     * the worker replicas. Off by default: batch results are built from
     * the always-on measurement log, so recording a per-gate trace that
     * nothing reads only reallocates strings in the hot shot loop.
     * Results are bitwise-identical either way (the fast-path identity
     * tests assert it); turn this on to inspect replica traces or to
     * benchmark the logging cost.
     */
    bool keepReplicaTrace = false;

    /**
     * Record job/chunk spans into the process-wide telemetry::TraceLog
     * (exported as a Chrome trace-event timeline by `eqasm-run
     * --trace-timeline`). Off by default: span recording allocates
     * strings at chunk cadence, which the allocation-free fast path
     * only pays when a timeline was asked for. Metrics counters are
     * independent of this flag and always recorded (unless the registry
     * is disabled); results are bit-identical either way.
     */
    bool traceTimeline = false;
};

/** Worker-pool batch executor over one Platform. */
class ShotEngine
{
  public:
    explicit ShotEngine(runtime::Platform platform,
                        EngineConfig config = {});
    ~ShotEngine();

    ShotEngine(const ShotEngine &) = delete;
    ShotEngine &operator=(const ShotEngine &) = delete;

    /**
     * Enqueues a job. The handle waits for the aggregated BatchResult
     * (or the first error any of the job's shots raised), reports
     * progress, streams partial snapshots when job.onPartial is set,
     * and cancels.
     *
     * A sharded job (job.shard.count > 0) executes only its slice of
     * the shot range at the *absolute* shot indices shardRange()
     * assigns, so the per-shot RNG streams — and therefore the counts
     * — line up with a single-process run; the result carries the
     * program hash, total shot count and covered range so the slices
     * can be folded back with BatchResult::merge and verified with
     * verifyComplete().
     * A job with an explicit range override (job.range.active())
     * executes only that absolute sub-range — the journal-resume path,
     * where the uncovered remainder of a crashed job is generally not
     * expressible as a shard slice. Partial snapshots report the
     * coverage that has actually completed (BatchResult::shotRanges of
     * a snapshot holds the finished chunk ranges, coalesced), so a
     * persisted snapshot is an honest checkpoint.
     * @throws Error{invalidArgument} when the job requests fewer than
     *         one shot, names an out-of-range shard index, shards so
     *         finely that its slice is empty, combines a shard with a
     *         range override, or names a range outside [0, shots); the
     *         message names the job's label.
     */
    sched::JobHandle submit(Job job);

    /** Convenience: submit and block for the result. */
    BatchResult run(Job job);

    int threads() const { return static_cast<int>(workers_.size()); }
    const runtime::Platform &platform() const { return platform_; }
    sched::Policy policy() const
    {
        return config_.scheduler.policy;
    }

  private:
    /** A queued job plus its in-flight aggregation state. */
    struct JobState;

    /** One worker's private controller + device replica. */
    struct Replica;

    void workerLoop(int workerIndex);
    void runChunk(std::optional<Replica> &replica, JobState &state,
                  int begin, int end, int workerIndex);
    /** The job's decoded read-only program image, decoding on first
     *  use (thread-safe; every replica then shares the one copy). */
    std::shared_ptr<const std::vector<isa::Instruction>>
    decodedProgram(JobState &state);
    void finishChunk(JobState &state, BatchResult &&partial, int begin,
                     int count, std::exception_ptr error);
    /** Claims the remaining range of every cancelled queued job (called
     *  under mutex_); returns the claims to account outside the lock. */
    std::vector<std::pair<std::shared_ptr<JobState>, int>>
    sweepCancelledJobs();

    runtime::Platform platform_;
    EngineConfig config_;
    /** platform_ with the per-gate logs switched off for the worker
     *  replicas (unless config_.keepReplicaTrace). */
    runtime::Platform replicaPlatform_;
    /** Gates pre-resolved from the operation set once per engine and
     *  shared read-only by every replica. */
    std::shared_ptr<const runtime::ResolvedGateTable> gateTable_;

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    sched::JobScheduler scheduler_;
    /** Jobs with unclaimed shots, by id (removed once fully claimed;
     *  completion is tracked per job by its chunk accounting). */
    std::unordered_map<uint64_t, std::shared_ptr<JobState>> active_;
    uint64_t nextJobId_ = 1;
    bool stopping_ = false;
    /** Bumped by JobHandle::cancel(); workers sweep cancelled jobs out
     *  of the queue when it moves, so a cancel settles promptly even if
     *  the policy would never pick the job (shared with the job states
     *  so handles stay safe after the engine is destroyed). */
    std::shared_ptr<std::atomic<uint64_t>> cancelEpoch_;

    std::vector<std::thread> workers_;
};

} // namespace eqasm::engine

#endif // EQASM_ENGINE_SHOT_ENGINE_H
