/**
 * @file
 * ShotEngine — parallel shot execution across controller replicas.
 *
 * Every experiment the paper validates (Rabi, T1, AllXY, RB, Grover,
 * surface-code QEC) repeats one program for thousands of shots, and the
 * shots are independent: the architecture resets all state between
 * shots. The engine exploits that by keeping a pool of workers, each
 * owning a full QuMA_v2 controller + SimulatedDevice replica built from
 * the shared Platform. Jobs enter a FIFO queue; workers claim chunks of
 * a job's shot range, position their device replica at each shot index
 * (counter-based Rng::forShot streams), execute, and fold the shots
 * into commutative BatchResult partials. Aggregation is therefore
 * deterministic: a job's result is bitwise-identical for any thread
 * count and any scheduling order.
 *
 * An error in any shot (architectural error, timing violation, device
 * misconfiguration) fails the whole job: the first exception is
 * captured and rethrown to the waiter, remaining shots of that job are
 * skipped, and the pool moves on to the next job — a failed job never
 * wedges the engine.
 */
#ifndef EQASM_ENGINE_SHOT_ENGINE_H
#define EQASM_ENGINE_SHOT_ENGINE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "engine/batch_result.h"
#include "engine/job.h"
#include "runtime/platform.h"

namespace eqasm::engine {

/** Pool configuration. */
struct EngineConfig {
    /** Worker threads; 0 selects std::thread::hardware_concurrency(). */
    int threads = 0;

    /** Shots a worker claims per queue visit. Small enough to balance
     *  load across workers, large enough to amortise the claim. */
    int chunkShots = 32;
};

/** Worker-pool batch executor over one Platform. */
class ShotEngine
{
  public:
    explicit ShotEngine(runtime::Platform platform,
                        EngineConfig config = {});
    ~ShotEngine();

    ShotEngine(const ShotEngine &) = delete;
    ShotEngine &operator=(const ShotEngine &) = delete;

    /**
     * Enqueues a job. The future yields the aggregated BatchResult, or
     * rethrows the first error any of the job's shots raised.
     * @throws Error{invalidArgument} when the job requests no shots.
     */
    std::future<BatchResult> submit(Job job);

    /** Convenience: submit and block for the result. */
    BatchResult run(Job job);

    int threads() const { return static_cast<int>(workers_.size()); }
    const runtime::Platform &platform() const { return platform_; }

  private:
    /** A queued job plus its in-flight aggregation state. */
    struct JobState;

    /** One worker's private controller + device replica. */
    struct Replica;

    void workerLoop();
    void runChunk(std::optional<Replica> &replica, JobState &state,
                  int begin, int end);
    void finishChunk(JobState &state, BatchResult &&partial, int count,
                     std::exception_ptr error);

    runtime::Platform platform_;
    EngineConfig config_;

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::deque<std::shared_ptr<JobState>> queue_;
    uint64_t nextJobId_ = 1;
    bool stopping_ = false;

    std::vector<std::thread> workers_;
};

} // namespace eqasm::engine

#endif // EQASM_ENGINE_SHOT_ENGINE_H
