/**
 * @file
 * A Job — the unit of work the shot engine executes.
 *
 * A job carries an already-assembled program image (the host CPU has
 * "loaded the quantum code ... into the quantum processor", per the
 * paper's execution model), a shot count and a seed. The seed fully
 * determines every stochastic choice of every shot through the
 * counter-based per-shot streams (Rng::forShot), so a job's aggregated
 * result is independent of how its shots are scheduled across workers.
 */
#ifndef EQASM_ENGINE_JOB_H
#define EQASM_ENGINE_JOB_H

#include <cstdint>
#include <string>
#include <vector>

namespace eqasm::engine {

/** One batch-execution request. */
struct Job {
    std::vector<uint32_t> image;  ///< assembled eQASM binary image.
    int shots = 1;                ///< number of shots to execute.
    uint64_t seed = 1;            ///< base seed of the per-shot streams.
    std::string label;            ///< free-form tag echoed in results.
};

} // namespace eqasm::engine

#endif // EQASM_ENGINE_JOB_H
