/**
 * @file
 * A Job — the unit of work the shot engine executes.
 *
 * A job carries an already-assembled program image (the host CPU has
 * "loaded the quantum code ... into the quantum processor", per the
 * paper's execution model), a shot count and a seed. The seed fully
 * determines every stochastic choice of every shot through the
 * counter-based per-shot streams (Rng::forShot), so a job's aggregated
 * result is independent of how its shots are scheduled across workers.
 *
 * The scheduling fields (tenant, priority, deadline) feed the
 * sched::JobScheduler policies; they change *when* shots run, never
 * what they produce. onPartial streams merged snapshots while the
 * batch runs so long jobs report progress and calibration loops can
 * stop early (cancel the handle once the estimate converges).
 */
#ifndef EQASM_ENGINE_JOB_H
#define EQASM_ENGINE_JOB_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace eqasm::engine {

struct BatchResult;

/** One batch-execution request. */
struct Job {
    std::vector<uint32_t> image;  ///< assembled eQASM binary image.
    int shots = 1;                ///< number of shots to execute.
    uint64_t seed = 1;            ///< base seed of the per-shot streams.
    std::string label;            ///< free-form tag echoed in results.

    // --- scheduling metadata (see sched::JobScheduler) ---
    std::string tenant;           ///< fair-share bucket ("" = default).
    int priority = 0;             ///< higher runs earlier (priority policy).
    uint64_t deadlineUs = 0;      ///< soft deadline, tie-break only (0 = none).

    // --- streaming partial results ---
    /** Invoked with a merged snapshot of the aggregate every
     *  partialEveryChunks finished chunks. Runs on a worker thread;
     *  snapshots arrive with strictly increasing shot counts. A
     *  throwing callback fails the job (its exception is rethrown
     *  from the handle), like a throwing shot would. */
    std::function<void(const BatchResult &)> onPartial;
    int partialEveryChunks = 8;   ///< snapshot cadence (>= 1) when set.
};

} // namespace eqasm::engine

#endif // EQASM_ENGINE_JOB_H
