/**
 * @file
 * A Job — the unit of work the shot engine executes.
 *
 * A job carries an already-assembled program image (the host CPU has
 * "loaded the quantum code ... into the quantum processor", per the
 * paper's execution model), a shot count and a seed. The seed fully
 * determines every stochastic choice of every shot through the
 * counter-based per-shot streams (Rng::forShot), so a job's aggregated
 * result is independent of how its shots are scheduled across workers.
 *
 * The scheduling fields (tenant, priority, deadline) feed the
 * sched::JobScheduler policies; they change *when* shots run, never
 * what they produce. onPartial streams merged snapshots while the
 * batch runs so long jobs report progress and calibration loops can
 * stop early (cancel the handle once the estimate converges).
 */
#ifndef EQASM_ENGINE_JOB_H
#define EQASM_ENGINE_JOB_H

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace eqasm::engine {

struct BatchResult;

/**
 * One slice of a job sharded across processes/hosts. A job submitted
 * with shard {i, n} executes only the shot sub-range
 * [floor(i*N/n), floor((i+1)*N/n)) of its N shots — absolute shot
 * indices, so the counter-based Rng::forShot(seed, k) streams line up
 * with a single-process run and the n serialised slices fold back
 * (BatchResult::merge) to a bit-identical aggregate. count == 0 means
 * the job is not sharded and runs its whole range.
 */
struct ShardSpec {
    int index = 0;  ///< which slice, in [0, count).
    int count = 0;  ///< total slices; 0 = not sharded.

    bool active() const { return count > 0; }
};

/**
 * The shot sub-range [begin, end) that @p shard covers of a
 * @p totalShots -shot job. Slices are contiguous, disjoint, in index
 * order, cover [0, totalShots) exactly, and differ in size by at most
 * one shot. An inactive shard covers the whole range.
 */
inline std::pair<int, int>
shardRange(int totalShots, const ShardSpec &shard)
{
    if (!shard.active())
        return {0, totalShots};
    auto boundary = [&](int slice) {
        return static_cast<int>(static_cast<int64_t>(totalShots) *
                                slice / shard.count);
    };
    return {boundary(shard.index), boundary(shard.index + 1)};
}

/**
 * An explicit absolute shot sub-range [begin, end) of a job — the
 * journal-resume counterpart of ShardSpec. Where a shard derives its
 * range from an (index, count) plan, a resumed job names the exact
 * uncovered range a crashed run left behind (which is generally not
 * expressible as a slice i/n of the total). Like a shard, the range
 * keeps its absolute indices so Rng::forShot streams line up and the
 * result merges with already-persisted coverage. end == 0 (the
 * default) means no override: the whole range (or the shard's slice)
 * runs.
 */
struct ShotRange {
    int begin = 0;  ///< first shot index, >= 0.
    int end = 0;    ///< one past the last shot; 0 = no override.

    bool active() const { return end > begin; }
};

/** One batch-execution request. */
struct Job {
    std::vector<uint32_t> image;  ///< assembled eQASM binary image.
    int shots = 1;                ///< shots of the *whole* job (all shards).
    uint64_t seed = 1;            ///< base seed of the per-shot streams.
    std::string label;            ///< free-form tag echoed in results.

    /** Which slice of the job this process executes (see ShardSpec);
     *  default: not sharded, the whole range runs here. */
    ShardSpec shard;

    /** Explicit absolute sub-range override (see ShotRange) — used by
     *  the service journal to resume exactly the shots a crashed run
     *  never covered. Mutually exclusive with an active shard. */
    ShotRange range;

    // --- scheduling metadata (see sched::JobScheduler) ---
    std::string tenant;           ///< fair-share bucket ("" = default).
    int priority = 0;             ///< higher runs earlier (priority policy).
    uint64_t deadlineUs = 0;      ///< soft deadline, tie-break only (0 = none).

    // --- streaming partial results ---
    /** Invoked with a merged snapshot of the aggregate every
     *  partialEveryChunks finished chunks. Runs on a worker thread;
     *  snapshots arrive with strictly increasing shot counts. A
     *  throwing callback fails the job (its exception is rethrown
     *  from the handle), like a throwing shot would. */
    std::function<void(const BatchResult &)> onPartial;
    int partialEveryChunks = 8;   ///< snapshot cadence (>= 1) when set.
};

} // namespace eqasm::engine

#endif // EQASM_ENGINE_JOB_H
