#include "engine/batch_result.h"

#include <algorithm>
#include <charconv>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/strings.h"
#include "runtime/quantum_processor.h"

namespace eqasm::engine {

namespace {

/** Adds @p shot into @p total field-wise (maxQueueDepth by maximum). */
void
accumulateStats(microarch::RunStats &total,
                const microarch::RunStats &shot)
{
    total.cycles += shot.cycles;
    total.classicalInstructions += shot.classicalInstructions;
    total.quantumInstructions += shot.quantumInstructions;
    total.bundles += shot.bundles;
    total.microOps += shot.microOps;
    total.triggered += shot.triggered;
    total.cancelled += shot.cancelled;
    total.fmrStallCycles += shot.fmrStallCycles;
    total.underruns += shot.underruns;
    total.maxQueueDepth = std::max(total.maxQueueDepth,
                                   shot.maxQueueDepth);
}

} // namespace

void
BatchResult::addShot(const runtime::ShotRecord &record)
{
    ++shots;

    // Last measurement per qubit, in ascending qubit order. A shot
    // measures a handful of qubits, so an insertion-sorted scratch
    // vector beats a node-allocating map in the per-shot hot path.
    std::vector<std::pair<int, int>> last;
    last.reserve(record.measurements.size());
    for (const runtime::MeasurementRecord &measurement :
         record.measurements) {
        auto it = std::lower_bound(
            last.begin(), last.end(), measurement.qubit,
            [](const auto &entry, int qubit) {
                return entry.first < qubit;
            });
        if (it != last.end() && it->first == measurement.qubit)
            it->second = measurement.bit;
        else
            last.insert(it, {measurement.qubit, measurement.bit});
    }

    // Bitstring key, byte-identical to the historical
    // format("q%d=%d", ...) join (fingerprint compatibility), without
    // a vsnprintf round-trip per qubit.
    std::string bitstring;
    bitstring.reserve(last.size() * 6);
    for (const auto &[qubit, bit] : last) {
        QubitCounts &counts = qubitCounts[qubit];
        ++counts.shots;
        counts.ones += static_cast<uint64_t>(bit);
        if (!bitstring.empty())
            bitstring += ' ';
        bitstring += 'q';
        char digits[12];
        auto [end, ec] = std::to_chars(digits, digits + sizeof(digits),
                                       qubit);
        (void)ec;
        bitstring.append(digits, end);
        bitstring += '=';
        bitstring += static_cast<char>('0' + (bit ? 1 : 0));
    }
    ++histogram[bitstring];

    accumulateStats(stats, record.stats);
}

void
BatchResult::merge(const BatchResult &other)
{
    if (backend.empty()) {
        backend = other.backend;
    } else if (!other.backend.empty() && other.backend != backend) {
        backend = "mixed";
    }
    if (seed == 0) {
        seed = other.seed;
    } else if (other.seed != 0 && other.seed != seed) {
        seed = 0;
    }
    threads = std::max(threads, other.threads);
    shots += other.shots;
    for (const auto &[qubit, counts] : other.qubitCounts) {
        QubitCounts &mine = qubitCounts[qubit];
        mine.ones += counts.ones;
        mine.shots += counts.shots;
    }
    for (const auto &[bitstring, count] : other.histogram)
        histogram[bitstring] += count;
    accumulateStats(stats, other.stats);
}

double
BatchResult::fractionOne(int qubit) const
{
    if (shots == 0) {
        throwError(ErrorCode::invalidArgument,
                   "fractionOne needs at least one shot");
    }
    auto it = qubitCounts.find(qubit);
    if (it == qubitCounts.end() || it->second.shots != shots) {
        throwError(ErrorCode::invalidArgument,
                   format("a shot never measured qubit %d", qubit));
    }
    return static_cast<double>(it->second.ones) /
           static_cast<double>(shots);
}

namespace {

/** 64-bit FNV-1a over @p text. */
uint64_t
fnv1a64(const std::string &text)
{
    uint64_t hash = 1469598103934665603ULL;
    for (unsigned char byte : text) {
        hash ^= byte;
        hash *= 1099511628211ULL;
    }
    return hash;
}

/** Zeroes the legitimately run-varying keys of a serialised body in
 *  place and hashes the canonical dump. */
std::string
fingerprintOf(Json &body)
{
    body.set("threads", static_cast<int64_t>(0));
    body.set("wall_seconds", 0.0);
    body.set("shots_per_second", 0.0);
    return format("fnv1a:%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(body.dump())));
}

} // namespace

std::string
BatchResult::countsFingerprint() const
{
    Json body = toJsonBody();
    return fingerprintOf(body);
}

Json
BatchResult::toJson() const
{
    // One body build: zero the run-varying keys for the hash, then put
    // the real values back (set() overwrites in place, so the key
    // order — and therefore the canonical form — is unchanged).
    Json result = toJsonBody();
    std::string fingerprint = fingerprintOf(result);
    result.set("threads", static_cast<int64_t>(threads));
    result.set("wall_seconds", wallSeconds);
    result.set("shots_per_second", shotsPerSecond);
    result.set("counts_fingerprint", fingerprint);
    return result;
}

Json
BatchResult::toJsonBody() const
{
    Json qubits = Json::makeArray();
    for (const auto &[qubit, counts] : qubitCounts) {
        Json entry = Json::makeObject();
        entry.set("qubit", qubit);
        entry.set("shots", counts.shots);
        entry.set("ones", counts.ones);
        if (counts.shots > 0) {
            entry.set("fraction_one",
                      static_cast<double>(counts.ones) /
                          static_cast<double>(counts.shots));
        }
        qubits.append(std::move(entry));
    }

    Json bins = Json::makeObject();
    for (const auto &[bitstring, count] : histogram)
        bins.set(bitstring, count);

    Json run_stats = Json::makeObject();
    run_stats.set("cycles", stats.cycles);
    run_stats.set("classical_instructions", stats.classicalInstructions);
    run_stats.set("quantum_instructions", stats.quantumInstructions);
    run_stats.set("bundles", stats.bundles);
    run_stats.set("micro_ops", stats.microOps);
    run_stats.set("triggered", stats.triggered);
    run_stats.set("cancelled", stats.cancelled);
    run_stats.set("fmr_stall_cycles", stats.fmrStallCycles);
    run_stats.set("underruns", stats.underruns);
    run_stats.set("max_queue_depth", stats.maxQueueDepth);

    Json result = Json::makeObject();
    if (!label.empty())
        result.set("label", label);
    if (!backend.empty())
        result.set("backend", backend);
    result.set("seed", seed);
    result.set("threads", static_cast<int64_t>(threads));
    result.set("shots", shots);
    result.set("qubits", std::move(qubits));
    result.set("histogram", std::move(bins));
    result.set("stats", std::move(run_stats));
    result.set("wall_seconds", wallSeconds);
    result.set("shots_per_second", shotsPerSecond);
    return result;
}

} // namespace eqasm::engine
