#include "engine/batch_result.h"

#include <algorithm>
#include <charconv>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/strings.h"
#include "runtime/quantum_processor.h"
#include "telemetry/metrics.h"

namespace eqasm::engine {

namespace {

/** Merge/verify observability. These count *operations*, not shots —
 *  the serialized result schema is frozen, so the counters live only
 *  in the registry. */
struct MergeMetrics {
    telemetry::Counter merges;
    telemetry::Counter mergeRefusals;
    telemetry::Counter verifies;
    telemetry::Counter verifyFailures;
};

const MergeMetrics &
mergeMetrics()
{
    static const MergeMetrics metrics = [] {
        telemetry::Registry &r = telemetry::registry();
        MergeMetrics m;
        m.merges = r.counter("eqasm_merge_operations_total",
                             "BatchResult::merge calls that folded");
        m.mergeRefusals = r.counter(
            "eqasm_merge_refusals_total",
            "Merges refused (incompatible provenance or overlapping "
            "shot ranges)");
        m.verifies = r.counter("eqasm_shard_verify_total",
                               "Shard completeness verifications run");
        m.verifyFailures = r.counter(
            "eqasm_shard_verify_failures_total",
            "Shard completeness verifications that found gaps or "
            "corrupt provenance");
        return m;
    }();
    return metrics;
}

/** Adds @p shot into @p total field-wise (maxQueueDepth by maximum). */
void
accumulateStats(microarch::RunStats &total,
                const microarch::RunStats &shot)
{
    total.cycles += shot.cycles;
    total.classicalInstructions += shot.classicalInstructions;
    total.quantumInstructions += shot.quantumInstructions;
    total.bundles += shot.bundles;
    total.microOps += shot.microOps;
    total.triggered += shot.triggered;
    total.cancelled += shot.cancelled;
    total.fmrStallCycles += shot.fmrStallCycles;
    total.underruns += shot.underruns;
    total.maxQueueDepth = std::max(total.maxQueueDepth,
                                   shot.maxQueueDepth);
}

} // namespace

void
BatchResult::addShot(const runtime::ShotRecord &record)
{
    ++shots;

    // Last measurement per qubit, in ascending qubit order. A shot
    // measures a handful of qubits, so an insertion-sorted scratch
    // vector beats a node-allocating map in the per-shot hot path.
    std::vector<std::pair<int, int>> last;
    last.reserve(record.measurements.size());
    for (const runtime::MeasurementRecord &measurement :
         record.measurements) {
        auto it = std::lower_bound(
            last.begin(), last.end(), measurement.qubit,
            [](const auto &entry, int qubit) {
                return entry.first < qubit;
            });
        if (it != last.end() && it->first == measurement.qubit)
            it->second = measurement.bit;
        else
            last.insert(it, {measurement.qubit, measurement.bit});
    }

    // Bitstring key, byte-identical to the historical
    // format("q%d=%d", ...) join (fingerprint compatibility), without
    // a vsnprintf round-trip per qubit.
    std::string bitstring;
    bitstring.reserve(last.size() * 6);
    for (const auto &[qubit, bit] : last) {
        QubitCounts &counts = qubitCounts[qubit];
        ++counts.shots;
        counts.ones += static_cast<uint64_t>(bit);
        if (!bitstring.empty())
            bitstring += ' ';
        bitstring += 'q';
        char digits[12];
        auto [end, ec] = std::to_chars(digits, digits + sizeof(digits),
                                       qubit);
        (void)ec;
        bitstring.append(digits, end);
        bitstring += '=';
        bitstring += static_cast<char>('0' + (bit ? 1 : 0));
    }
    ++histogram[bitstring];

    accumulateStats(stats, record.stats);
}

namespace {

/** Unions two sorted-disjoint range lists, coalescing adjacent ranges.
 *  @throws Error{invalidArgument} naming the first colliding pair. */
std::vector<std::pair<uint64_t, uint64_t>>
unionRanges(const std::vector<std::pair<uint64_t, uint64_t>> &lhs,
            const std::vector<std::pair<uint64_t, uint64_t>> &rhs)
{
    std::vector<std::pair<uint64_t, uint64_t>> all = lhs;
    all.insert(all.end(), rhs.begin(), rhs.end());
    std::sort(all.begin(), all.end());
    std::vector<std::pair<uint64_t, uint64_t>> merged;
    for (const auto &range : all) {
        if (!merged.empty() && range.first < merged.back().second) {
            throwError(
                ErrorCode::invalidArgument,
                format("cannot merge: shot ranges overlap ([%llu, %llu) "
                       "and [%llu, %llu) cover the same shots — the "
                       "same shard folded twice?)",
                       static_cast<unsigned long long>(
                           merged.back().first),
                       static_cast<unsigned long long>(
                           merged.back().second),
                       static_cast<unsigned long long>(range.first),
                       static_cast<unsigned long long>(range.second)));
        }
        if (!merged.empty() && range.first == merged.back().second)
            merged.back().second = range.second;
        else
            merged.push_back(range);
    }
    return merged;
}

} // namespace

void
BatchResult::merge(const BatchResult &other)
{
    // Compatibility is checked up front so a refused merge leaves this
    // result untouched (the CLI reports the error and keeps going).
    // The early throws below double as the refusal tally.
    struct RefusalTally {
        bool folded = false;
        ~RefusalTally()
        {
            if (folded)
                mergeMetrics().merges.inc();
            else
                mergeMetrics().mergeRefusals.inc();
        }
    } tally;
    if (!backend.empty() && !other.backend.empty() &&
        other.backend != backend) {
        throwError(ErrorCode::invalidArgument,
                   format("cannot merge: backend mismatch ('%s' vs "
                          "'%s')",
                          backend.c_str(), other.backend.c_str()));
    }
    if (seed != 0 && other.seed != 0 && other.seed != seed) {
        throwError(
            ErrorCode::invalidArgument,
            format("cannot merge: seed mismatch (%llu vs %llu) — "
                   "shards of one job must share the base seed",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(other.seed)));
    }
    if (!programHash.empty() && !other.programHash.empty() &&
        other.programHash != programHash) {
        throwError(ErrorCode::invalidArgument,
                   format("cannot merge: program_hash mismatch ('%s' "
                          "vs '%s') — the shards executed different "
                          "programs",
                          programHash.c_str(),
                          other.programHash.c_str()));
    }
    if (totalShots != 0 && other.totalShots != 0 &&
        other.totalShots != totalShots) {
        throwError(
            ErrorCode::invalidArgument,
            format("cannot merge: total_shots mismatch (%llu vs %llu)",
                   static_cast<unsigned long long>(totalShots),
                   static_cast<unsigned long long>(other.totalShots)));
    }
    if (!label.empty() && !other.label.empty() &&
        other.label != label) {
        // The label is part of the canonical body the fingerprint
        // hashes, so silently keeping one side's would make the merged
        // fingerprint depend on merge order — refuse like the other
        // provenance fields instead.
        throwError(ErrorCode::invalidArgument,
                   format("cannot merge: label mismatch ('%s' vs "
                          "'%s')",
                          label.c_str(), other.label.c_str()));
    }
    if (shard.active() && other.shard.active() &&
        other.shard.count != shard.count) {
        throwError(
            ErrorCode::invalidArgument,
            format("cannot merge: shard count mismatch (%d/%d vs "
                   "%d/%d) — slices of different shard plans partition "
                   "the shot range differently",
                   shard.index, shard.count, other.shard.index,
                   other.shard.count));
    }
    // unionRanges throws on overlap before any state below mutates.
    std::vector<std::pair<uint64_t, uint64_t>> ranges =
        unionRanges(shotRanges, other.shotRanges);

    // The shard identity survives only while the result still *is*
    // that one slice: a blank accumulator becomes whatever it absorbs,
    // and folding in a different slice (an active foreign shard, or an
    // already-merged result carrying foreign ranges) makes this a
    // multi-slice aggregate — not a shard.
    const bool blank = shots == 0 && shotRanges.empty();
    if (blank) {
        shard = other.shard;
    } else if (shard.active() &&
               (other.shard.active()
                    ? other.shard.index != shard.index
                    : !other.shotRanges.empty())) {
        shard = ShardSpec{};
    }

    shotRanges = std::move(ranges);
    if (backend.empty())
        backend = other.backend;
    if (seed == 0)
        seed = other.seed;
    if (programHash.empty())
        programHash = other.programHash;
    if (totalShots == 0)
        totalShots = other.totalShots;
    if (label.empty())
        label = other.label;
    threads = std::max(threads, other.threads);
    shots += other.shots;
    for (const auto &[qubit, counts] : other.qubitCounts) {
        QubitCounts &mine = qubitCounts[qubit];
        mine.ones += counts.ones;
        mine.shots += counts.shots;
    }
    for (const auto &[bitstring, count] : other.histogram)
        histogram[bitstring] += count;
    accumulateStats(stats, other.stats);
    // Shards execute concurrently on different hosts, so the merged
    // wall-clock is the slowest shard's, and the throughput follows.
    wallSeconds = std::max(wallSeconds, other.wallSeconds);
    shotsPerSecond = wallSeconds > 0.0
                         ? static_cast<double>(shots) / wallSeconds
                         : 0.0;
    tally.folded = true;
}

void
BatchResult::verifyComplete() const
{
    struct FailureTally {
        bool passed = false;
        ~FailureTally()
        {
            mergeMetrics().verifies.inc();
            if (!passed)
                mergeMetrics().verifyFailures.inc();
        }
    } tally;
    if (totalShots == 0) {
        throwError(ErrorCode::invalidArgument,
                   "result carries no total_shots provenance; cannot "
                   "verify shard completeness");
    }
    auto missing = [](uint64_t begin, uint64_t end) {
        throwError(
            ErrorCode::invalidArgument,
            format("merged shards are incomplete: shots [%llu, %llu) "
                   "are missing (a shard file was not merged?)",
                   static_cast<unsigned long long>(begin),
                   static_cast<unsigned long long>(end)));
    };
    if (shotRanges.empty())
        missing(0, totalShots);
    if (shotRanges.back().second > totalShots) {
        // A hand-edited file can claim ranges past the job size (the
        // fingerprint does not cover the provenance fields); report
        // the excess as such rather than as an inverted "missing"
        // interval.
        throwError(
            ErrorCode::invalidArgument,
            format("result covers shots [%llu, %llu) beyond "
                   "total_shots %llu — corrupt shard provenance",
                   static_cast<unsigned long long>(
                       shotRanges.back().first),
                   static_cast<unsigned long long>(
                       shotRanges.back().second),
                   static_cast<unsigned long long>(totalShots)));
    }
    if (shotRanges.front().first != 0)
        missing(0, shotRanges.front().first);
    for (size_t i = 1; i < shotRanges.size(); ++i) {
        if (shotRanges[i - 1].second < shotRanges[i].first)
            missing(shotRanges[i - 1].second, shotRanges[i].first);
    }
    if (shotRanges.back().second != totalShots)
        missing(shotRanges.back().second, totalShots);
    if (shots != totalShots) {
        throwError(
            ErrorCode::invalidArgument,
            format("result claims range [0, %llu) but holds %llu "
                   "shots — a partial snapshot cannot stand in for a "
                   "completed shard",
                   static_cast<unsigned long long>(totalShots),
                   static_cast<unsigned long long>(shots)));
    }
    tally.passed = true;
}

double
BatchResult::fractionOne(int qubit) const
{
    if (shots == 0) {
        throwError(ErrorCode::invalidArgument,
                   "fractionOne needs at least one shot");
    }
    auto it = qubitCounts.find(qubit);
    if (it == qubitCounts.end() || it->second.shots != shots) {
        throwError(ErrorCode::invalidArgument,
                   format("a shot never measured qubit %d", qubit));
    }
    return static_cast<double>(it->second.ones) /
           static_cast<double>(shots);
}

namespace {

/** 64-bit FNV-1a over @p text. */
uint64_t
fnv1a64(const std::string &text)
{
    uint64_t hash = 1469598103934665603ULL;
    for (unsigned char byte : text) {
        hash ^= byte;
        hash *= 1099511628211ULL;
    }
    return hash;
}

/** Zeroes the legitimately run-varying keys of a serialised body in
 *  place and hashes the canonical dump. */
std::string
fingerprintOf(Json &body)
{
    body.set("threads", static_cast<int64_t>(0));
    body.set("wall_seconds", 0.0);
    body.set("shots_per_second", 0.0);
    return format("fnv1a:%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(body.dump())));
}

} // namespace

std::string
BatchResult::countsFingerprint() const
{
    Json body = toJsonBody();
    return fingerprintOf(body);
}

Json
BatchResult::toJson() const
{
    // One body build: zero the run-varying keys for the hash, then put
    // the real values back (set() overwrites in place, so the key
    // order — and therefore the canonical form — is unchanged). The
    // shard-provenance fields are appended *after* the fingerprint is
    // taken: they describe which slice of the job produced the counts,
    // and must not make equal counts hash differently (a merged shard
    // set must fingerprint identically to a single-process run).
    Json result = toJsonBody();
    std::string fingerprint = fingerprintOf(result);
    result.set("threads", static_cast<int64_t>(threads));
    result.set("wall_seconds", wallSeconds);
    result.set("shots_per_second", shotsPerSecond);
    result.set("total_shots", totalShots);
    if (!programHash.empty())
        result.set("program_hash", programHash);
    if (shard.active()) {
        Json slice = Json::makeObject();
        slice.set("index", static_cast<int64_t>(shard.index));
        slice.set("count", static_cast<int64_t>(shard.count));
        result.set("shard", std::move(slice));
    }
    if (!shotRanges.empty()) {
        Json ranges = Json::makeArray();
        for (const auto &[begin, end] : shotRanges) {
            Json range = Json::makeArray();
            range.append(begin);
            range.append(end);
            ranges.append(std::move(range));
        }
        result.set("shot_ranges", std::move(ranges));
    }
    result.set("counts_fingerprint", fingerprint);
    return result;
}

Json
BatchResult::toJsonBody() const
{
    Json qubits = Json::makeArray();
    for (const auto &[qubit, counts] : qubitCounts) {
        Json entry = Json::makeObject();
        entry.set("qubit", qubit);
        entry.set("shots", counts.shots);
        entry.set("ones", counts.ones);
        if (counts.shots > 0) {
            entry.set("fraction_one",
                      static_cast<double>(counts.ones) /
                          static_cast<double>(counts.shots));
        }
        qubits.append(std::move(entry));
    }

    Json bins = Json::makeObject();
    for (const auto &[bitstring, count] : histogram)
        bins.set(bitstring, count);

    Json run_stats = Json::makeObject();
    run_stats.set("cycles", stats.cycles);
    run_stats.set("classical_instructions", stats.classicalInstructions);
    run_stats.set("quantum_instructions", stats.quantumInstructions);
    run_stats.set("bundles", stats.bundles);
    run_stats.set("micro_ops", stats.microOps);
    run_stats.set("triggered", stats.triggered);
    run_stats.set("cancelled", stats.cancelled);
    run_stats.set("fmr_stall_cycles", stats.fmrStallCycles);
    run_stats.set("underruns", stats.underruns);
    run_stats.set("max_queue_depth", stats.maxQueueDepth);

    Json result = Json::makeObject();
    if (!label.empty())
        result.set("label", label);
    if (!backend.empty())
        result.set("backend", backend);
    result.set("seed", seed);
    result.set("threads", static_cast<int64_t>(threads));
    result.set("shots", shots);
    result.set("qubits", std::move(qubits));
    result.set("histogram", std::move(bins));
    result.set("stats", std::move(run_stats));
    result.set("wall_seconds", wallSeconds);
    result.set("shots_per_second", shotsPerSecond);
    return result;
}

namespace {

/** The member @p key of @p json, which must exist. */
const Json &
require(const Json &json, const char *key)
{
    const Json *value = json.find(key);
    if (!value) {
        throwError(
            ErrorCode::invalidArgument,
            format("BatchResult JSON is missing field '%s'", key));
    }
    return *value;
}

/** The member @p key, which must be an integral number. */
int64_t
requireInt(const Json &json, const char *key)
{
    const Json &value = require(json, key);
    if (!value.isNumber()) {
        throwError(ErrorCode::invalidArgument,
                   format("BatchResult field '%s' must be a number",
                          key));
    }
    return value.asInt();  // throws on non-integral / out-of-range.
}

/** The member @p key, which must be an integral number >= 0. */
uint64_t
requireUInt(const Json &json, const char *key)
{
    int64_t value = requireInt(json, key);
    if (value < 0) {
        throwError(ErrorCode::invalidArgument,
                   format("BatchResult field '%s' must be >= 0, got "
                          "%lld",
                          key, static_cast<long long>(value)));
    }
    return static_cast<uint64_t>(value);
}

/** The member @p key, which must be a (possibly fractional) number. */
double
requireDouble(const Json &json, const char *key)
{
    const Json &value = require(json, key);
    if (!value.isNumber()) {
        throwError(ErrorCode::invalidArgument,
                   format("BatchResult field '%s' must be a number",
                          key));
    }
    return value.asDouble();
}

/** The member @p key, which must be a string. */
const std::string &
requireString(const Json &json, const char *key)
{
    const Json &value = require(json, key);
    if (!value.isString()) {
        throwError(ErrorCode::invalidArgument,
                   format("BatchResult field '%s' must be a string",
                          key));
    }
    return value.asString();
}

/** True when @p text is a well-formed "fnv1a:<16 hex digits>". */
bool
isFingerprintFormat(const std::string &text)
{
    const std::string prefix = "fnv1a:";
    if (text.size() != prefix.size() + 16 ||
        text.compare(0, prefix.size(), prefix) != 0)
        return false;
    for (size_t i = prefix.size(); i < text.size(); ++i) {
        char c = text[i];
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    }
    return true;
}

} // namespace

BatchResult
BatchResult::fromJson(const Json &json)
{
    if (!json.isObject()) {
        throwError(ErrorCode::invalidArgument,
                   "a serialised BatchResult must be a JSON object");
    }
    BatchResult result;
    if (const Json *label = json.find("label")) {
        if (!label->isString()) {
            throwError(ErrorCode::invalidArgument,
                       "BatchResult field 'label' must be a string");
        }
        result.label = label->asString();
    }
    if (const Json *backend = json.find("backend")) {
        if (!backend->isString()) {
            throwError(ErrorCode::invalidArgument,
                       "BatchResult field 'backend' must be a string");
        }
        result.backend = backend->asString();
    }
    result.seed = requireUInt(json, "seed");
    result.threads = static_cast<int>(requireInt(json, "threads"));
    result.shots = requireUInt(json, "shots");
    result.totalShots = requireUInt(json, "total_shots");

    const Json &qubits = require(json, "qubits");
    if (!qubits.isArray()) {
        throwError(ErrorCode::invalidArgument,
                   "BatchResult field 'qubits' must be an array");
    }
    for (const Json &entry : qubits.asArray()) {
        if (!entry.isObject()) {
            throwError(ErrorCode::invalidArgument,
                       "each 'qubits' entry must be an object");
        }
        int qubit = static_cast<int>(requireInt(entry, "qubit"));
        if (result.qubitCounts.count(qubit)) {
            throwError(ErrorCode::invalidArgument,
                       format("duplicate 'qubits' entry for qubit %d",
                              qubit));
        }
        QubitCounts counts;
        counts.shots = requireUInt(entry, "shots");
        counts.ones = requireUInt(entry, "ones");
        result.qubitCounts.emplace(qubit, counts);
    }

    const Json &histogram = require(json, "histogram");
    if (!histogram.isObject()) {
        throwError(ErrorCode::invalidArgument,
                   "BatchResult field 'histogram' must be an object");
    }
    for (const auto &[bitstring, count] : histogram.asObject()) {
        if (!count.isNumber() || count.asInt() < 0) {
            throwError(ErrorCode::invalidArgument,
                       format("histogram count of '%s' must be a "
                              "number >= 0",
                              bitstring.c_str()));
        }
        result.histogram[bitstring] =
            static_cast<uint64_t>(count.asInt());
    }

    const Json &run_stats = require(json, "stats");
    if (!run_stats.isObject()) {
        throwError(ErrorCode::invalidArgument,
                   "BatchResult field 'stats' must be an object");
    }
    result.stats.cycles = requireUInt(run_stats, "cycles");
    result.stats.classicalInstructions =
        requireUInt(run_stats, "classical_instructions");
    result.stats.quantumInstructions =
        requireUInt(run_stats, "quantum_instructions");
    result.stats.bundles = requireUInt(run_stats, "bundles");
    result.stats.microOps = requireUInt(run_stats, "micro_ops");
    result.stats.triggered = requireUInt(run_stats, "triggered");
    result.stats.cancelled = requireUInt(run_stats, "cancelled");
    result.stats.fmrStallCycles =
        requireUInt(run_stats, "fmr_stall_cycles");
    result.stats.underruns = requireUInt(run_stats, "underruns");
    result.stats.maxQueueDepth =
        requireUInt(run_stats, "max_queue_depth");

    result.wallSeconds = requireDouble(json, "wall_seconds");
    result.shotsPerSecond = requireDouble(json, "shots_per_second");

    if (const Json *hash = json.find("program_hash")) {
        if (!hash->isString() ||
            !isFingerprintFormat(hash->asString())) {
            throwError(ErrorCode::invalidArgument,
                       "BatchResult field 'program_hash' must be an "
                       "'fnv1a:<16 hex digits>' string");
        }
        result.programHash = hash->asString();
    }
    if (const Json *slice = json.find("shard")) {
        if (!slice->isObject()) {
            throwError(ErrorCode::invalidArgument,
                       "BatchResult field 'shard' must be an object");
        }
        result.shard.index =
            static_cast<int>(requireInt(*slice, "index"));
        result.shard.count =
            static_cast<int>(requireInt(*slice, "count"));
        if (result.shard.count < 1 || result.shard.index < 0 ||
            result.shard.index >= result.shard.count) {
            throwError(ErrorCode::invalidArgument,
                       format("BatchResult shard %d/%d is not a valid "
                              "slice (need 0 <= index < count)",
                              result.shard.index, result.shard.count));
        }
    }
    if (const Json *ranges = json.find("shot_ranges")) {
        if (!ranges->isArray()) {
            throwError(ErrorCode::invalidArgument,
                       "BatchResult field 'shot_ranges' must be an "
                       "array of [begin, end) pairs");
        }
        std::vector<std::pair<uint64_t, uint64_t>> parsed;
        for (const Json &range : ranges->asArray()) {
            if (!range.isArray() || range.size() != 2 ||
                !range.at(0).isNumber() || !range.at(1).isNumber()) {
                throwError(ErrorCode::invalidArgument,
                           "each shot_ranges entry must be a [begin, "
                           "end) pair of numbers");
            }
            int64_t begin = range.at(0).asInt();
            int64_t end = range.at(1).asInt();
            if (begin < 0 || end <= begin) {
                throwError(
                    ErrorCode::invalidArgument,
                    format("shot range [%lld, %lld) is empty or "
                           "negative",
                           static_cast<long long>(begin),
                           static_cast<long long>(end)));
            }
            parsed.emplace_back(static_cast<uint64_t>(begin),
                                static_cast<uint64_t>(end));
        }
        // Normalise (sort + coalesce) and refuse self-overlap.
        result.shotRanges = unionRanges(parsed, {});
    }

    // The embedded fingerprint must match the counts we just parsed:
    // this is what catches truncated or hand-edited shard files and any
    // silent schema drift between writer and reader.
    const std::string &claimed =
        requireString(json, "counts_fingerprint");
    if (!isFingerprintFormat(claimed)) {
        throwError(ErrorCode::invalidArgument,
                   "BatchResult field 'counts_fingerprint' must be an "
                   "'fnv1a:<16 hex digits>' string");
    }
    std::string recomputed = result.countsFingerprint();
    if (claimed != recomputed) {
        throwError(
            ErrorCode::invalidArgument,
            format("counts_fingerprint mismatch: file claims %s but "
                   "its counts hash to %s (corrupt file or "
                   "writer/reader schema drift)",
                   claimed.c_str(), recomputed.c_str()));
    }
    return result;
}

void
insertShotRange(std::vector<std::pair<uint64_t, uint64_t>> &ranges,
                uint64_t begin, uint64_t end)
{
    if (end <= begin) {
        throwError(ErrorCode::invalidArgument,
                   format("cannot insert empty shot range [%llu, %llu)",
                          static_cast<unsigned long long>(begin),
                          static_cast<unsigned long long>(end)));
    }
    ranges = unionRanges(ranges, {{begin, end}});
}

std::vector<std::pair<uint64_t, uint64_t>>
missingShotRanges(const std::vector<std::pair<uint64_t, uint64_t>> &ranges,
                  uint64_t totalShots)
{
    std::vector<std::pair<uint64_t, uint64_t>> gaps;
    uint64_t cursor = 0;
    for (const auto &[begin, end] : ranges) {
        if (begin >= totalShots)
            break;
        if (begin > cursor)
            gaps.emplace_back(cursor, begin);
        cursor = std::max(cursor, std::min(end, totalShots));
    }
    if (cursor < totalShots)
        gaps.emplace_back(cursor, totalShots);
    return gaps;
}

std::string
imageFingerprint(const std::vector<uint32_t> &image)
{
    // Hash the words little-endian so the fingerprint is a property of
    // the binary program, not of host byte order.
    std::string bytes;
    bytes.reserve(image.size() * 4);
    for (uint32_t word : image) {
        bytes.push_back(static_cast<char>(word & 0xff));
        bytes.push_back(static_cast<char>((word >> 8) & 0xff));
        bytes.push_back(static_cast<char>((word >> 16) & 0xff));
        bytes.push_back(static_cast<char>((word >> 24) & 0xff));
    }
    return format("fnv1a:%016llx",
                  static_cast<unsigned long long>(fnv1a64(bytes)));
}

} // namespace eqasm::engine
