/**
 * @file
 * BatchResult — deterministic aggregation of a batch of shots.
 *
 * Instead of keeping every ShotRecord (which grows without bound for
 * the shot counts a serving system handles), the engine folds each shot
 * into commutative aggregates: per-qubit |1> counts over the *last*
 * measurement of each qubit (the statistic the Section 5 experiments
 * report), a bitstring histogram over the measured qubits, and summed
 * RunStats. Because every aggregate is a sum or a max, merging partial
 * results from workers is order-independent — the batch result is
 * bitwise-identical regardless of thread count or scheduling.
 */
#ifndef EQASM_ENGINE_BATCH_RESULT_H
#define EQASM_ENGINE_BATCH_RESULT_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "engine/job.h"
#include "microarch/quma.h"

namespace eqasm::runtime {
struct ShotRecord;
}

namespace eqasm::engine {

/** Per-qubit tally over the shots that measured the qubit. */
struct QubitCounts {
    uint64_t ones = 0;   ///< shots whose last measurement reported |1>.
    uint64_t shots = 0;  ///< shots that measured the qubit at all.
};

/** Aggregated outcome of one Job. */
struct BatchResult {
    std::string label;       ///< copied from the job.
    uint64_t shots = 0;      ///< shots folded into this result.

    // --- run provenance, stamped by the engine at submission so
    //     sharded/merged result files can be audited ---
    std::string backend;     ///< simulation backend ("density", ...).
    uint64_t seed = 0;       ///< base seed of the per-shot streams.
    int threads = 0;         ///< worker threads of the executing pool.

    // --- shard provenance (see ShardSpec / docs/result_format.md) ---
    /** Fingerprint of the executed binary image ("fnv1a:<16hex>", see
     *  imageFingerprint); "" when unknown. merge() refuses to fold
     *  results of different programs. */
    std::string programHash;
    /** Shots of the whole job across all shards (equal to `shots` for
     *  an unsharded run); 0 when unknown. */
    uint64_t totalShots = 0;
    /** Which slice produced this result; count == 0 for unsharded runs
     *  and for merged multi-shard results. */
    ShardSpec shard;
    /** Absolute shot sub-ranges [begin, end) this result covers —
     *  sorted, disjoint, coalesced. A fresh shard carries exactly its
     *  assigned range; merge() unions them and refuses overlap. */
    std::vector<std::pair<uint64_t, uint64_t>> shotRanges;

    /** qubit -> counts over that qubit's last measurement per shot. */
    std::map<int, QubitCounts> qubitCounts;

    /** Bitstring ("q0=1 q2=0", qubits ascending) -> occurrence count.
     *  Shots that measure no qubit land under the empty string. */
    std::map<std::string, uint64_t> histogram;

    /** RunStats summed over shots (maxQueueDepth is the maximum). */
    microarch::RunStats stats;

    double wallSeconds = 0.0;     ///< batch wall-clock (not merged).
    double shotsPerSecond = 0.0;  ///< throughput over the wall-clock.

    /** Folds one shot into the aggregates. */
    void addShot(const runtime::ShotRecord &record);

    /**
     * Merges another partial result (commutative, associative over the
     * counts) with strict compatibility checking, so shard files from
     * different processes/hosts fold back safely. An unknown field
     * (empty string / zero) adopts the other side's value; two *known*
     * but different values are a refusal: backend, seed, programHash,
     * totalShots, label (part of the fingerprinted body) and the
     * shard count each throw Error{invalidArgument} naming the
     * offending field, and overlapping shotRanges throw naming the
     * colliding ranges. On refusal *this is unchanged.
     *
     * threads keeps the maximum pool size, wallSeconds the maximum
     * elapsed wall-clock (shards run concurrently on different hosts),
     * shotsPerSecond is recomputed from the merged counts, and the
     * shard index/count survive only when both sides name the same
     * slice — a merged multi-shard result is no longer a shard.
     */
    void merge(const BatchResult &other);

    /**
     * Verifies this (typically merged) result covers its whole job:
     * shotRanges must coalesce to exactly [0, totalShots) and `shots`
     * must equal totalShots.
     * @throws Error{invalidArgument} naming the first missing shot
     *         range (e.g. a forgotten shard file) or the shot-count
     *         mismatch (e.g. a partial snapshot passed off as a shard).
     */
    void verifyComplete() const;

    /**
     * Deterministic fingerprint of the counts: a 64-bit FNV-1a hash
     * (rendered "fnv1a:<16 hex digits>") of the canonical serialisation
     * with the legitimately run-varying fields (wallSeconds,
     * shotsPerSecond, threads) zeroed. Equal fingerprints == identical
     * counts; the thread-count and policy determinism checks in the
     * tests and benches compare these, and toJson() embeds the value
     * so sharded-slice merges can verify determinism end to end from
     * the serialised files alone.
     */
    std::string countsFingerprint() const;

    /**
     * Fraction of shots whose last measurement of @p qubit was |1>.
     * @throws Error{invalidArgument} when the batch is empty or some
     *         shot never measured the qubit (mirrors
     *         QuantumProcessor::fractionOne).
     */
    double fractionOne(int qubit) const;

    /** Serialises counts, histogram, stats, throughput, the shard
     *  provenance and the counts_fingerprint (see countsFingerprint()).
     *  The exact schema is frozen in docs/result_format.md and by the
     *  schema-stability test in tests/shard_test.cc. */
    Json toJson() const;

    /**
     * The exact inverse of toJson(): rebuilds a BatchResult such that
     * fromJson(x.toJson()).toJson() is byte-identical to x.toJson().
     * Strictly validating — a missing or mistyped field throws
     * Error{invalidArgument} naming the field, and the embedded
     * counts_fingerprint is recomputed from the parsed counts and must
     * match the file's value (so truncated, hand-edited or
     * schema-drifted files are refused, never silently merged).
     * Never exhibits UB on malformed input; every failure is a typed
     * Error (use Json::parse first; it throws Error{parseError} with
     * line/column context on syntactically bad text).
     */
    static BatchResult fromJson(const Json &json);

  private:
    /** toJson() without the fingerprint and shard-provenance fields —
     *  the canonical body the fingerprint hashes (keeping the
     *  fingerprint independent of *which* slice of the job produced
     *  equal counts, so a merged shard set hashes identically to a
     *  single-process run). */
    Json toJsonBody() const;
};

/**
 * Fingerprint of an assembled binary image ("fnv1a:<16hex>", 64-bit
 * FNV-1a over the little-endian instruction words). Stamped into
 * BatchResult::programHash by the engine so shard files can prove they
 * executed the same program before merging.
 */
std::string imageFingerprint(const std::vector<uint32_t> &image);

/**
 * Inserts [begin, end) into @p ranges, keeping the sorted / disjoint /
 * coalesced invariant of BatchResult::shotRanges. The engine uses this
 * to track which chunks of a job have actually completed (the coverage
 * a partial snapshot reports), and the service journal to fold
 * recovered checkpoint coverage.
 * @throws Error{invalidArgument} when the new range is empty or
 *         overlaps an existing one.
 */
void insertShotRange(std::vector<std::pair<uint64_t, uint64_t>> &ranges,
                     uint64_t begin, uint64_t end);

/**
 * The complement of @p ranges (sorted, disjoint, coalesced) within
 * [0, totalShots) — the shots a recovered result does NOT cover, in
 * ascending order. A crashed daemon resumes a job by submitting one
 * range-override job (Job::range) per returned gap.
 */
std::vector<std::pair<uint64_t, uint64_t>>
missingShotRanges(const std::vector<std::pair<uint64_t, uint64_t>> &ranges,
                  uint64_t totalShots);

} // namespace eqasm::engine

#endif // EQASM_ENGINE_BATCH_RESULT_H
