/**
 * @file
 * BatchResult — deterministic aggregation of a batch of shots.
 *
 * Instead of keeping every ShotRecord (which grows without bound for
 * the shot counts a serving system handles), the engine folds each shot
 * into commutative aggregates: per-qubit |1> counts over the *last*
 * measurement of each qubit (the statistic the Section 5 experiments
 * report), a bitstring histogram over the measured qubits, and summed
 * RunStats. Because every aggregate is a sum or a max, merging partial
 * results from workers is order-independent — the batch result is
 * bitwise-identical regardless of thread count or scheduling.
 */
#ifndef EQASM_ENGINE_BATCH_RESULT_H
#define EQASM_ENGINE_BATCH_RESULT_H

#include <cstdint>
#include <map>
#include <string>

#include "common/json.h"
#include "microarch/quma.h"

namespace eqasm::runtime {
struct ShotRecord;
}

namespace eqasm::engine {

/** Per-qubit tally over the shots that measured the qubit. */
struct QubitCounts {
    uint64_t ones = 0;   ///< shots whose last measurement reported |1>.
    uint64_t shots = 0;  ///< shots that measured the qubit at all.
};

/** Aggregated outcome of one Job. */
struct BatchResult {
    std::string label;       ///< copied from the job.
    uint64_t shots = 0;      ///< shots folded into this result.

    // --- run provenance, stamped by the engine at submission so
    //     sharded/merged result files can be audited ---
    std::string backend;     ///< simulation backend ("density", ...).
    uint64_t seed = 0;       ///< base seed of the per-shot streams.
    int threads = 0;         ///< worker threads of the executing pool.

    /** qubit -> counts over that qubit's last measurement per shot. */
    std::map<int, QubitCounts> qubitCounts;

    /** Bitstring ("q0=1 q2=0", qubits ascending) -> occurrence count.
     *  Shots that measure no qubit land under the empty string. */
    std::map<std::string, uint64_t> histogram;

    /** RunStats summed over shots (maxQueueDepth is the maximum). */
    microarch::RunStats stats;

    double wallSeconds = 0.0;     ///< batch wall-clock (not merged).
    double shotsPerSecond = 0.0;  ///< throughput over the wall-clock.

    /** Folds one shot into the aggregates. */
    void addShot(const runtime::ShotRecord &record);

    /**
     * Merges another partial result (commutative, associative over the
     * counts). Provenance: an empty/zero field adopts the other side's
     * value; conflicting backends merge to "mixed" and conflicting
     * seeds to 0 (unknown), so a merged shard never claims a single
     * origin it does not have. threads keeps the maximum pool size.
     */
    void merge(const BatchResult &other);

    /**
     * Deterministic fingerprint of the counts: a 64-bit FNV-1a hash
     * (rendered "fnv1a:<16 hex digits>") of the canonical serialisation
     * with the legitimately run-varying fields (wallSeconds,
     * shotsPerSecond, threads) zeroed. Equal fingerprints == identical
     * counts; the thread-count and policy determinism checks in the
     * tests and benches compare these, and toJson() embeds the value
     * so sharded-slice merges can verify determinism end to end from
     * the serialised files alone.
     */
    std::string countsFingerprint() const;

    /**
     * Fraction of shots whose last measurement of @p qubit was |1>.
     * @throws Error{invalidArgument} when the batch is empty or some
     *         shot never measured the qubit (mirrors
     *         QuantumProcessor::fractionOne).
     */
    double fractionOne(int qubit) const;

    /** Serialises counts, histogram, stats, throughput and the
     *  counts_fingerprint (see countsFingerprint()). */
    Json toJson() const;

  private:
    /** toJson() without the fingerprint field — the canonical body the
     *  fingerprint hashes (keeping the two from recursing). */
    Json toJsonBody() const;
};

} // namespace eqasm::engine

#endif // EQASM_ENGINE_BATCH_RESULT_H
