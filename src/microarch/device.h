/**
 * @file
 * The analog-digital interface (ADI) between the central controller and
 * the electronics driving the qubits (right-hand side of Fig. 9/10).
 *
 * After the timing controller triggers a device operation and fast
 * conditional execution releases it, the operation crosses the ADI as a
 * codeword-triggered pulse. A Device implementation turns those pulses
 * into physics: the SimulatedDevice in src/runtime applies them to a
 * density-matrix simulator with a calibrated noise model, while the
 * MockResultDevice replays programmed measurement results (the paper
 * validated CFC the same way, with a UHFQC "programmed to generate
 * alternative mock measurement results").
 */
#ifndef EQASM_MICROARCH_DEVICE_H
#define EQASM_MICROARCH_DEVICE_H

#include <cstdint>
#include <functional>

#include "isa/operation_set.h"

namespace eqasm::microarch {

/** Role of a micro-operation within its quantum operation (Table 2). */
enum class MicroOpRole {
    single,  ///< a single-qubit operation's only micro-op ('11').
    source,  ///< two-qubit micro-op on the pair's source qubit ('01').
    target,  ///< two-qubit micro-op on the pair's target qubit ('10').
};

/**
 * A qubit-level operation released to the ADI. For a two-qubit gate the
 * controller emits one source-role and one target-role micro-op at the
 * same cycle; the simulated device applies the joint unitary when it
 * sees the source-role half and treats the target-role half as the
 * second pulse of the same gate.
 */
struct TriggeredOp {
    uint64_t cycle = 0;     ///< trigger cycle (20 ns granularity).
    int qubit = -1;         ///< the qubit this micro-op addresses.
    int pairQubit = -1;     ///< other qubit of the pair (two-qubit only).
    MicroOpRole role = MicroOpRole::single;
    const isa::OperationInfo *info = nullptr;  ///< configured operation.
};

/**
 * Abstract ADI device. Implementations must be deterministic given
 * their seed so experiments are reproducible.
 */
class Device
{
  public:
    /** Callback used to return measurement results to the controller:
     *  (qubit, reported bit, cycle at which the result arrives). */
    using ResultSink =
        std::function<void(int qubit, int bit, uint64_t ready_cycle)>;

    virtual ~Device();

    /** Begins a new shot: re-initialises all qubits at @p cycle. */
    virtual void startShot(uint64_t cycle) = 0;

    /** Applies one released operation. Measurement operations must
     *  eventually report through the result sink. */
    virtual void apply(const TriggeredOp &op) = 0;

    /** Ends the shot (the controller drained all queues). */
    virtual void endShot(uint64_t cycle) = 0;

    void setResultSink(ResultSink sink) { resultSink_ = std::move(sink); }

  protected:
    void reportResult(int qubit, int bit, uint64_t ready_cycle);

  private:
    ResultSink resultSink_;
};

} // namespace eqasm::microarch

#endif // EQASM_MICROARCH_DEVICE_H
