#include "microarch/quma.h"

#include <algorithm>
#include <limits>

#include "common/bits.h"
#include "common/error.h"
#include "common/strings.h"

namespace eqasm::microarch {

using isa::CondFlag;
using isa::ExecFlag;
using isa::Instruction;
using isa::InstrKind;
using isa::OpClass;

QuMa::QuMa(isa::OperationSet operations, chip::Topology topology,
           MicroarchConfig config)
    : operations_(std::move(operations)), topology_(std::move(topology)),
      config_(config)
{
    // S/T target registers are 64-bit qubit/edge masks; a chip beyond
    // that needs the address-pair encoding of Section 3.3.2, which this
    // instantiation does not implement. Fail at construction with the
    // sizes spelled out rather than corrupting masks at runtime.
    if (topology_.numQubits() > 64 || topology_.numEdges() > 64) {
        architecturalError(
            format("chip '%s' (%d qubits, %d directed edges) exceeds "
                   "the 64-bit mask target registers of this eQASM "
                   "instantiation",
                   topology_.name().c_str(), topology_.numQubits(),
                   topology_.numEdges()));
    }
    gpr_.assign(static_cast<size_t>(config_.params.numGprs), 0);
    sRegs_.assign(static_cast<size_t>(config_.params.numSRegisters), 0);
    tRegs_.assign(static_cast<size_t>(config_.params.numTRegisters), 0);
    dataMem_.assign(config_.dataMemoryWords, 0);
    size_t n = static_cast<size_t>(topology_.numQubits());
    qi_.assign(n, 0);
    pendingMeasurements_.assign(n, 0);
    lastResult_.assign(n, 0);
    prevResult_.assign(n, 0);
    resultCount_.assign(n, 0);
}

void
QuMa::loadImage(std::vector<uint32_t> image)
{
    program_ = std::make_shared<const std::vector<Instruction>>(
        isa::decodeProgram(image, config_.params, operations_));
}

void
QuMa::loadProgram(std::vector<Instruction> program)
{
    program_ = std::make_shared<const std::vector<Instruction>>(
        std::move(program));
}

void
QuMa::loadShared(
    std::shared_ptr<const std::vector<Instruction>> program)
{
    program_ = std::move(program);
}

void
QuMa::attachDevice(Device *device)
{
    device_ = device;
    if (device_ != nullptr) {
        device_->setResultSink(
            [this](int qubit, int bit, uint64_t ready_cycle) {
                if (!topology_.validQubit(qubit)) {
                    architecturalError(
                        format("device reported a result for invalid "
                               "qubit %d",
                               qubit));
                }
                inFlight_.push_back({ready_cycle, qubit, bit});
            });
    }
}

void
QuMa::resetState()
{
    cycle_ = 0;
    pc_ = 0;
    halted_ = false;
    std::fill(gpr_.begin(), gpr_.end(), 0);
    cmpFlags_.fill(false);
    cmpFlags_[static_cast<size_t>(CondFlag::always)] = true;
    if (dataMemDirty_) {
        // Only programs that stored (or hosts that preloaded) pay the
        // data-memory wipe; for store-free programs the 16 KiB fill per
        // shot is pure overhead.
        std::fill(dataMem_.begin(), dataMem_.end(), 0);
        dataMemDirty_ = false;
    }
    std::fill(sRegs_.begin(), sRegs_.end(), 0);
    std::fill(tRegs_.begin(), tRegs_.end(), 0);
    timelineLabel_ = 0;
    collectorLabel_ = 0;
    collector_.clear();
    inTransit_.clear();
    inTransitHead_ = 0;
    eventQueue_.clear();
    eventQueueHead_ = 0;
    std::fill(qi_.begin(), qi_.end(), 0);
    std::fill(pendingMeasurements_.begin(), pendingMeasurements_.end(), 0);
    std::fill(lastResult_.begin(), lastResult_.end(), 0);
    std::fill(prevResult_.begin(), prevResult_.end(), 0);
    std::fill(resultCount_.begin(), resultCount_.end(), 0);
    inFlight_.clear();
    trace_.clear();
    measurements_.clear();
    stats_ = RunStats{};
}

uint64_t
QuMa::labelToCycle(uint64_t label) const
{
    return static_cast<uint64_t>(config_.startDelayCycles) + label;
}

void
QuMa::architecturalError(const std::string &message) const
{
    throwError(ErrorCode::runtimeError,
               format("cycle %llu: %s",
                      static_cast<unsigned long long>(cycle_),
                      message.c_str()));
}

bool
QuMa::drained() const
{
    return halted_ && collector_.empty() &&
           inTransitHead_ == inTransit_.size() &&
           eventQueueHead_ == eventQueue_.size() && inFlight_.empty();
}

RunStats
QuMa::runShot()
{
    if (device_ == nullptr) {
        throwError(ErrorCode::runtimeError,
                   "no device attached to the controller");
    }
    if (program_ == nullptr || program_->empty()) {
        throwError(ErrorCode::runtimeError, "no program loaded");
    }
    resetState();
    device_->startShot(0);

    while (!drained()) {
        if (cycle_ > config_.maxCycles) {
            architecturalError("watchdog: shot exceeded the cycle limit");
        }
        deliverDueResults();
        issueClassical();
        drainTransitPipeline();
        triggerDueEvents();
        ++cycle_;

        // Fast-forward idle stretches: when the classical pipeline can
        // make no progress this turn (halted or FMR-stalled with no
        // deliverable result), jump to the next cycle where something
        // is due. This keeps 200 us initialisation waits cheap.
        bool stalled = !halted_ && pc_ < program_->size() &&
                       (*program_)[pc_].kind == InstrKind::fmr &&
                       pendingMeasurements_[static_cast<size_t>(
                           (*program_)[pc_].qubit)] > 0;
        if (halted_ || stalled) {
            uint64_t next = std::numeric_limits<uint64_t>::max();
            if (eventQueueHead_ < eventQueue_.size()) {
                next = std::min(
                    next,
                    labelToCycle(eventQueue_[eventQueueHead_].label));
            }
            if (inTransitHead_ < inTransit_.size()) {
                next = std::min(
                    next, inTransit_[inTransitHead_].readyCycle);
            }
            for (const PendingResult &result : inFlight_) {
                next = std::min(
                    next, result.readyCycle +
                              static_cast<uint64_t>(
                                  config_.resultUpdateCycles));
            }
            if (next != std::numeric_limits<uint64_t>::max() &&
                next > cycle_) {
                cycle_ = next;
            }
        }
    }

    device_->endShot(cycle_);
    stats_.cycles = cycle_;
    return stats_;
}

void
QuMa::deliverDueResults()
{
    for (size_t i = 0; i < inFlight_.size();) {
        const PendingResult &result = inFlight_[i];
        uint64_t effective =
            result.readyCycle +
            static_cast<uint64_t>(config_.resultUpdateCycles);
        if (effective > cycle_) {
            ++i;
            continue;
        }
        size_t q = static_cast<size_t>(result.qubit);
        // Qubit measurement result register + CFC counter.
        qi_[q] = result.bit;
        if (pendingMeasurements_[q] <= 0) {
            architecturalError(
                format("unexpected measurement result for qubit %d",
                       result.qubit));
        }
        --pendingMeasurements_[q];
        // Execution flag history for fast conditional execution.
        prevResult_[q] = lastResult_[q];
        lastResult_[q] = result.bit;
        ++resultCount_[q];
        measurements_.push_back(
            {result.readyCycle, result.qubit, result.bit});
        if (config_.enableTrace) {
            trace_.push_back({TraceEvent::Kind::resultArrived,
                              result.readyCycle, result.qubit, result.bit,
                              "MEAS_RESULT"});
        }
        inFlight_.erase(inFlight_.begin() +
                        static_cast<std::ptrdiff_t>(i));
    }
}

void
QuMa::updateComparisonFlags(uint32_t lhs, uint32_t rhs)
{
    auto set = [this](CondFlag flag, bool value) {
        cmpFlags_[static_cast<size_t>(flag)] = value;
    };
    auto slhs = static_cast<int32_t>(lhs);
    auto srhs = static_cast<int32_t>(rhs);
    set(CondFlag::always, true);
    set(CondFlag::never, false);
    set(CondFlag::eq, lhs == rhs);
    set(CondFlag::ne, lhs != rhs);
    set(CondFlag::ltu, lhs < rhs);
    set(CondFlag::geu, lhs >= rhs);
    set(CondFlag::leu, lhs <= rhs);
    set(CondFlag::gtu, lhs > rhs);
    set(CondFlag::lt, slhs < srhs);
    set(CondFlag::ge, slhs >= srhs);
    set(CondFlag::le, slhs <= srhs);
    set(CondFlag::gt, slhs > srhs);
}

void
QuMa::issueClassical()
{
    for (int slot = 0; slot < config_.classicalIssueRate; ++slot) {
        if (halted_)
            return;
        const std::vector<Instruction> &program = *program_;
        if (pc_ >= program.size()) {
            // Running off the end behaves as an implicit STOP.
            halted_ = true;
            flushCollector();
            return;
        }
        const Instruction &instr = program[pc_];

        if (instr.kind == InstrKind::fmr) {
            size_t q = static_cast<size_t>(instr.qubit);
            if (q >= qi_.size()) {
                architecturalError(
                    format("FMR on invalid qubit %d", instr.qubit));
            }
            if (pendingMeasurements_[q] > 0) {
                // Qi invalid: stall the pipeline (Section 4.3). A
                // stalled pipeline can contribute no further operations
                // to the current timing point, so the operation
                // collector is flushed — otherwise a measurement still
                // buffered there could never trigger and the FMR would
                // deadlock waiting for its own result.
                flushCollector();
                ++stats_.fmrStallCycles;
                return;
            }
        }

        ++pc_;
        if (isa::isQuantum(instr.kind)) {
            ++stats_.quantumInstructions;
            executeQuantum(instr);
        } else {
            ++stats_.classicalInstructions;
            executeClassical(instr);
        }
    }
}

void
QuMa::executeClassical(const Instruction &instr)
{
    auto reg = [this](int index) -> uint32_t & {
        return gpr_[static_cast<size_t>(index)];
    };
    switch (instr.kind) {
      case InstrKind::nop:
        break;
      case InstrKind::stop:
        halted_ = true;
        flushCollector();
        break;
      case InstrKind::cmp:
        updateComparisonFlags(reg(instr.rs), reg(instr.rt));
        break;
      case InstrKind::br:
        if (cmpFlags_[static_cast<size_t>(instr.cond)]) {
            int64_t target = static_cast<int64_t>(pc_) - 1 + instr.imm;
            if (target < 0 ||
                target > static_cast<int64_t>(program_->size())) {
                architecturalError(
                    format("branch target %lld out of range",
                           static_cast<long long>(target)));
            }
            pc_ = static_cast<size_t>(target);
        }
        break;
      case InstrKind::fbr:
        reg(instr.rd) =
            cmpFlags_[static_cast<size_t>(instr.cond)] ? 1 : 0;
        break;
      case InstrKind::ldi:
        reg(instr.rd) = static_cast<uint32_t>(
            signExtend(static_cast<uint64_t>(instr.imm), 20));
        break;
      case InstrKind::ldui:
        // Rd = Imm[14:0] :: Rs[16:0] (Table 1).
        reg(instr.rd) = (static_cast<uint32_t>(instr.imm & 0x7fff) << 17) |
                        (reg(instr.rs) & 0x1ffff);
        break;
      case InstrKind::ld: {
        int64_t address = static_cast<int64_t>(
                              static_cast<int32_t>(reg(instr.rt))) +
                          instr.imm;
        if (address < 0 ||
            static_cast<size_t>(address) >= dataMem_.size()) {
            architecturalError(format("load address %lld out of range",
                                      static_cast<long long>(address)));
        }
        reg(instr.rd) = dataMem_[static_cast<size_t>(address)];
        break;
      }
      case InstrKind::st: {
        int64_t address = static_cast<int64_t>(
                              static_cast<int32_t>(reg(instr.rt))) +
                          instr.imm;
        if (address < 0 ||
            static_cast<size_t>(address) >= dataMem_.size()) {
            architecturalError(format("store address %lld out of range",
                                      static_cast<long long>(address)));
        }
        dataMem_[static_cast<size_t>(address)] = reg(instr.rs);
        dataMemDirty_ = true;
        break;
      }
      case InstrKind::fmr:
        // The stall check happened at issue; Qi is valid here.
        reg(instr.rd) =
            static_cast<uint32_t>(qi_[static_cast<size_t>(instr.qubit)]);
        break;
      case InstrKind::logicAnd:
        reg(instr.rd) = reg(instr.rs) & reg(instr.rt);
        break;
      case InstrKind::logicOr:
        reg(instr.rd) = reg(instr.rs) | reg(instr.rt);
        break;
      case InstrKind::logicXor:
        reg(instr.rd) = reg(instr.rs) ^ reg(instr.rt);
        break;
      case InstrKind::logicNot:
        reg(instr.rd) = ~reg(instr.rt);
        break;
      case InstrKind::add:
        reg(instr.rd) = reg(instr.rs) + reg(instr.rt);
        break;
      case InstrKind::sub:
        reg(instr.rd) = reg(instr.rs) - reg(instr.rt);
        break;
      default:
        EQASM_ASSERT(false, "quantum instruction in classical path");
    }
}

void
QuMa::executeQuantum(const Instruction &instr)
{
    switch (instr.kind) {
      case InstrKind::qwait:
        advanceTimeline(static_cast<uint64_t>(instr.imm));
        break;
      case InstrKind::qwaitr:
        // Only the least significant 20 bits are used (Section 4.2).
        advanceTimeline(gpr_[static_cast<size_t>(instr.rs)] & 0xfffff);
        break;
      case InstrKind::smis: {
        // Wide-chip masks arrive as 16-bit chunks: segment 0 sets the
        // register, higher segments OR their shifted chunk in (see
        // Instruction::maskSegment). Pre-decoded programs carry full
        // masks with segment 0, which degenerates to a plain set.
        uint64_t chunk =
            isa::expandMaskSegment(instr.mask, instr.maskSegment);
        uint64_t &sreg = sRegs_[static_cast<size_t>(instr.targetReg)];
        sreg = instr.maskSegment == 0 ? chunk : (sreg | chunk);
        break;
      }
      case InstrKind::smit: {
        uint64_t chunk =
            isa::expandMaskSegment(instr.mask, instr.maskSegment);
        uint64_t &treg = tRegs_[static_cast<size_t>(instr.targetReg)];
        uint64_t value = instr.maskSegment == 0 ? chunk : (treg | chunk);
        if (auto conflict = topology_.maskConflict(value)) {
            architecturalError(
                format("invalid T%d value: qubit %d appears in two "
                       "selected pairs",
                       instr.targetReg, *conflict));
        }
        treg = value;
        break;
      }
      case InstrKind::bundle:
        ++stats_.bundles;
        processBundle(instr);
        break;
      default:
        EQASM_ASSERT(false, "classical instruction in quantum path");
    }
}

void
QuMa::processBundle(const Instruction &instr)
{
    advanceTimeline(static_cast<uint64_t>(instr.preInterval));
    for (const isa::QuantumOperation &slot : instr.operations) {
        if (slot.isQnop()) {
            ++opClassCounts_.qnop;
            continue;
        }
        const isa::OperationInfo *info = operations_.findByOpcode(
            slot.opcode);
        if (info == nullptr) {
            architecturalError(
                format("q opcode %d missing from the Q control store",
                       slot.opcode));
        }
        switch (info->opClass) {
          case OpClass::qnop:
            ++opClassCounts_.qnop;
            break;
          case OpClass::singleQubit:
          case OpClass::measurement: {
            uint64_t mask = sRegs_[static_cast<size_t>(slot.targetReg)];
            for (int qubit = 0; qubit < topology_.numQubits(); ++qubit) {
                if (!bit(mask, static_cast<unsigned>(qubit)))
                    continue;
                if (info->opClass == OpClass::measurement) {
                    // Issuing a measurement invalidates Qi (Section 3.6).
                    ++pendingMeasurements_[static_cast<size_t>(qubit)];
                    ++opClassCounts_.measurement;
                } else {
                    ++opClassCounts_.singleQubit;
                }
                addMicroOp({qubit, -1, MicroOpRole::single, info});
            }
            break;
          }
          case OpClass::twoQubit: {
            uint64_t mask = tRegs_[static_cast<size_t>(slot.targetReg)];
            if (auto conflict = topology_.maskConflict(mask)) {
                architecturalError(
                    format("T%d selects qubit %d twice", slot.targetReg,
                           *conflict));
            }
            for (int edge : topology_.maskToEdges(mask)) {
                const chip::QubitPair &pair = topology_.edge(edge);
                ++opClassCounts_.twoQubit;
                addMicroOp({pair.source, pair.target,
                            MicroOpRole::source, info});
                addMicroOp({pair.target, pair.source,
                            MicroOpRole::target, info});
            }
            break;
          }
        }
    }
}

void
QuMa::addMicroOp(MicroOp op)
{
    // Operation combination module: two micro-operations on the same
    // qubit at the same timing point are an error; the quantum
    // processor stops (Section 4.3).
    for (const MicroOp &existing : collector_) {
        if (existing.qubit == op.qubit) {
            architecturalError(
                format("operation combination conflict on qubit %d "
                       "('%s' vs '%s') at timing point %llu",
                       op.qubit, existing.info->name.c_str(),
                       op.info->name.c_str(),
                       static_cast<unsigned long long>(collectorLabel_)));
        }
    }
    ++stats_.microOps;
    collector_.push_back(op);
}

void
QuMa::flushCollector()
{
    if (collector_.empty())
        return;
    // Flushed micro-operations traverse the reserve pipeline (Fig. 9)
    // before reaching the event queues of the timing control unit.
    uint64_t ready =
        cycle_ + static_cast<uint64_t>(config_.quantumPipelineDepthCycles);
    for (MicroOp &op : collector_)
        inTransit_.push_back({ready, collectorLabel_, op});
    collector_.clear();
}

void
QuMa::drainTransitPipeline()
{
    while (inTransitHead_ < inTransit_.size() &&
           inTransit_[inTransitHead_].readyCycle <= cycle_) {
        TransitOp transit = inTransit_[inTransitHead_];
        ++inTransitHead_;
        if (inTransitHead_ == inTransit_.size()) {
            // Fully drained: rewind so the storage is reused.
            inTransit_.clear();
            inTransitHead_ = 0;
        }
        if (labelToCycle(transit.label) < cycle_) {
            // The reserve phase missed the timing point: this is the
            // quantum-operation issue-rate problem surfacing at runtime.
            ++stats_.underruns;
            if (config_.underrunPolicy ==
                MicroarchConfig::UnderrunPolicy::error) {
                architecturalError(format(
                    "timing violation: operations for timing point "
                    "%llu (cycle %llu) arrived too late",
                    static_cast<unsigned long long>(transit.label),
                    static_cast<unsigned long long>(
                        labelToCycle(transit.label))));
            }
        }
        if (eventQueue_.size() == eventQueueHead_) {
            // Queue ran empty: rewind so the storage is reused.
            eventQueue_.clear();
            eventQueueHead_ = 0;
        }
        if (eventQueue_.empty() ||
            eventQueue_.back().label <= transit.label) {
            eventQueue_.push_back({transit.label, transit.op});
        } else {
            // Out-of-order label (does not happen on the monotone
            // timeline, but the structure must not depend on that):
            // insert at the upper bound, exactly where the previous
            // multimap representation placed it.
            auto it = std::upper_bound(
                eventQueue_.begin() +
                    static_cast<std::ptrdiff_t>(eventQueueHead_),
                eventQueue_.end(), transit.label,
                [](uint64_t label, const QueuedEvent &event) {
                    return label < event.label;
                });
            eventQueue_.insert(it, {transit.label, transit.op});
        }
        stats_.maxQueueDepth = std::max(
            stats_.maxQueueDepth,
            static_cast<uint64_t>(eventQueue_.size() -
                                  eventQueueHead_));
    }
}

void
QuMa::advanceTimeline(uint64_t cycles)
{
    if (cycles == 0)
        return; // same timing point (Section 3.1.2).
    flushCollector();
    timelineLabel_ += cycles;
    collectorLabel_ = timelineLabel_;
}

bool
QuMa::executionFlag(int qubit, ExecFlag flag) const
{
    size_t q = static_cast<size_t>(qubit);
    switch (flag) {
      case ExecFlag::always:
        return true;
      case ExecFlag::lastOne:
        return resultCount_[q] >= 1 && lastResult_[q] == 1;
      case ExecFlag::lastZero:
        return resultCount_[q] >= 1 && lastResult_[q] == 0;
      case ExecFlag::lastTwoSame:
        return resultCount_[q] >= 2 && lastResult_[q] == prevResult_[q];
    }
    return false;
}

void
QuMa::triggerDueEvents()
{
    while (eventQueueHead_ < eventQueue_.size() &&
           labelToCycle(eventQueue_[eventQueueHead_].label) <= cycle_) {
        MicroOp op = eventQueue_[eventQueueHead_].op;
        ++eventQueueHead_;
        if (eventQueueHead_ == eventQueue_.size()) {
            eventQueue_.clear();
            eventQueueHead_ = 0;
        }
        uint64_t output_cycle =
            cycle_ + static_cast<uint64_t>(config_.triggerOutputCycles);

        // Fast conditional execution: Go/No-go per single-qubit
        // micro-operation based on the selected execution flag.
        if (op.role == MicroOpRole::single &&
            op.info->condition != ExecFlag::always &&
            !executionFlag(op.qubit, op.info->condition)) {
            ++stats_.cancelled;
            if (config_.enableTrace) {
                trace_.push_back({TraceEvent::Kind::opCancelled,
                                  output_cycle, op.qubit, -1,
                                  op.info->name});
            }
            continue;
        }
        ++stats_.triggered;
        if (config_.enableTrace) {
            trace_.push_back({TraceEvent::Kind::opOutput, output_cycle,
                              op.qubit, -1, op.info->name});
        }
        device_->apply({output_cycle, op.qubit, op.pairQubit, op.role,
                        op.info});
    }
}

uint32_t
QuMa::gpr(int index) const
{
    EQASM_ASSERT(index >= 0 && index < config_.params.numGprs,
                 "GPR index out of range");
    return gpr_[static_cast<size_t>(index)];
}

bool
QuMa::comparisonFlag(CondFlag flag) const
{
    return cmpFlags_[static_cast<size_t>(flag)];
}

int
QuMa::measurementRegister(int qubit) const
{
    EQASM_ASSERT(topology_.validQubit(qubit), "qubit out of range");
    return qi_[static_cast<size_t>(qubit)];
}

bool
QuMa::measurementRegisterValid(int qubit) const
{
    EQASM_ASSERT(topology_.validQubit(qubit), "qubit out of range");
    return pendingMeasurements_[static_cast<size_t>(qubit)] == 0;
}

uint64_t
QuMa::sRegister(int index) const
{
    EQASM_ASSERT(index >= 0 && index < config_.params.numSRegisters,
                 "S register index out of range");
    return sRegs_[static_cast<size_t>(index)];
}

uint64_t
QuMa::tRegister(int index) const
{
    EQASM_ASSERT(index >= 0 && index < config_.params.numTRegisters,
                 "T register index out of range");
    return tRegs_[static_cast<size_t>(index)];
}

uint32_t
QuMa::dataWord(size_t address) const
{
    EQASM_ASSERT(address < dataMem_.size(), "data address out of range");
    return dataMem_[address];
}

void
QuMa::setDataWord(size_t address, uint32_t value)
{
    EQASM_ASSERT(address < dataMem_.size(), "data address out of range");
    dataMem_[address] = value;
    dataMemDirty_ = true;
}

} // namespace eqasm::microarch
