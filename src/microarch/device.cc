#include "microarch/device.h"

#include "common/error.h"

namespace eqasm::microarch {

Device::~Device() = default;

void
Device::reportResult(int qubit, int bit, uint64_t ready_cycle)
{
    EQASM_ASSERT(resultSink_ != nullptr,
                 "device has no result sink; attach it to a controller");
    resultSink_(qubit, bit, ready_cycle);
}

} // namespace eqasm::microarch
