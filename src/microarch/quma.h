/**
 * @file
 * QuMA_v2 — the quantum control microarchitecture implementing the
 * instantiated eQASM (Fig. 9 of the paper), as a cycle-level model.
 *
 * The model is organised around the paper's two timing domains:
 *
 *  - non-deterministic domain (reserve phase): the classical pipeline
 *    fetches and executes instructions; quantum instructions flow
 *    through the VLIW front-end, microcode unit, target registers and
 *    quantum microinstruction buffer, producing micro-operations
 *    associated with timing points on a timeline (the timestamp
 *    manager);
 *  - deterministic domain (trigger phase): the timing controller walks
 *    the timeline at one timing point per cycle and triggers the
 *    buffered device operations exactly at their timing points; fast
 *    conditional execution then releases or cancels each single-qubit
 *    micro-operation based on the selected execution flag.
 *
 * The quantum-operation issue-rate problem (Section 1.2) is modelled
 * faithfully: when the reserve phase falls behind the trigger phase —
 * a micro-operation reaches the event queues after its timing point has
 * already passed — the controller records a timing-violation
 * (underrun) and, per the paper, "cannot execute the quantum program
 * correctly"; policy decides whether this raises an error or is only
 * counted (the Fig. 7 ablation uses the counting mode).
 */
#ifndef EQASM_MICROARCH_QUMA_H
#define EQASM_MICROARCH_QUMA_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chip/topology.h"
#include "isa/encoding.h"
#include "isa/instruction.h"
#include "isa/operation_set.h"
#include "microarch/device.h"

namespace eqasm::microarch {

/** Tunable microarchitecture parameters. */
struct MicroarchConfig {
    isa::InstantiationParams params;

    /** Classical instructions processed per 20 ns cycle. The classical
     *  pipeline runs at 100 MHz against the 50 MHz timing grid
     *  (Section 4.4), hence the default of 2. */
    int classicalIssueRate = 2;

    /** Cycles between the start of the timeline (label 0) and the start
     *  of instruction execution; models the external start trigger and
     *  gives the reserve phase initial slack over the trigger phase. */
    int startDelayCycles = 16;

    /** Trigger -> ADI output path length in cycles (timing controller,
     *  FCE gating and codeword output registers). */
    int triggerOutputCycles = 2;

    /** Result-arrival -> execution-flag/Qi-update path in cycles. */
    int resultUpdateCycles = 2;

    /** Reserve-phase pipeline depth in cycles: a micro-operation
     *  flushed from the quantum microinstruction buffer traverses the
     *  multi-level decoding path of Fig. 9 (VLIW front-end, microcode
     *  unit, address resolution, operation combination, device event
     *  distributor) before it reaches the event queues. This depth is
     *  what makes CFC's feedback latency much larger than fast
     *  conditional execution's (~316 ns vs ~92 ns in the paper). The
     *  default is the largest depth for which the paper's Fig. 5
     *  program (QWAIT 30 between measurement and feedback) still meets
     *  its timing point. */
    int quantumPipelineDepthCycles = 10;

    /** Data memory size in 32-bit words. */
    size_t dataMemoryWords = 4096;

    /** Watchdog: abort shots exceeding this many cycles. */
    uint64_t maxCycles = 50'000'000;

    /** What to do when the reserve phase misses a timing point. */
    enum class UnderrunPolicy { error, count };
    UnderrunPolicy underrunPolicy = UnderrunPolicy::error;

    /** Record a TraceEvent log (outputs, cancellations, results). */
    bool enableTrace = true;
};

/**
 * One measurement result as observed by the controller. Unlike the
 * TraceEvent log (which records every output/cancellation and is
 * switched off for batch replicas), this log is always recorded — it
 * is the data results are built from, and it stays tiny: one entry per
 * measurement, no strings.
 */
struct MeasurementEvent {
    uint64_t cycle = 0;  ///< cycle the result entered the controller.
    int qubit = -1;
    int bit = 0;
};

/** One entry of the execution trace, used by tests and benches. */
struct TraceEvent {
    enum class Kind {
        opOutput,       ///< operation released to the ADI.
        opCancelled,    ///< operation cancelled by FCE.
        resultArrived,  ///< measurement result entered the controller.
    };
    Kind kind = Kind::opOutput;
    uint64_t cycle = 0;
    int qubit = -1;
    int bit = -1;          ///< resultArrived only.
    std::string operation; ///< op mnemonic for op events.
};

/**
 * Cumulative micro-operation issue tallies by operation class — the
 * paper's Section 5 issue-rate metric, observable live. Single-qubit
 * and measurement classes count one per selected target qubit,
 * two-qubit one per selected pair, qnop one per explicit QNOP slot.
 * Deliberately *not* part of RunStats: these accumulate over the
 * controller's lifetime (plain increments, no per-shot reset) so the
 * shot engine can fold per-chunk deltas into the telemetry registry
 * without touching the frozen BatchResult serialization.
 */
struct OpClassCounts {
    uint64_t qnop = 0;
    uint64_t singleQubit = 0;
    uint64_t twoQubit = 0;
    uint64_t measurement = 0;
};

/** Counters exposed after a run. */
struct RunStats {
    uint64_t cycles = 0;
    uint64_t classicalInstructions = 0;
    uint64_t quantumInstructions = 0;
    uint64_t bundles = 0;
    uint64_t microOps = 0;
    uint64_t triggered = 0;
    uint64_t cancelled = 0;
    uint64_t fmrStallCycles = 0;
    uint64_t underruns = 0;
    uint64_t maxQueueDepth = 0;
};

/**
 * The central controller. Owns all architectural state of Fig. 2 and
 * the pipeline of Fig. 9; drives one Device through the ADI.
 */
class QuMa
{
  public:
    QuMa(isa::OperationSet operations, chip::Topology topology,
         MicroarchConfig config = {});

    /** Loads a binary program image into the instruction memory. */
    void loadImage(std::vector<uint32_t> image);

    /** Loads pre-decoded instructions (bypasses the decoder; used by
     *  tests that construct instructions directly). */
    void loadProgram(std::vector<isa::Instruction> program);

    /**
     * Loads a shared, already-decoded, read-only program image. The
     * shot engine decodes a job's image once and hands the same
     * shared_ptr to every worker replica, so an N-worker pool holds one
     * copy of the program instead of N — the controller only ever reads
     * the instruction stream during execution.
     */
    void
    loadShared(std::shared_ptr<const std::vector<isa::Instruction>> program);

    /** Attaches the ADI device (not owned). */
    void attachDevice(Device *device);

    /**
     * Runs one shot: resets all architectural state (GPRs, flags,
     * target registers, queues, timeline), starts the device, executes
     * until STOP + all queues drained.
     *
     * @throws Error{runtimeError} on architectural error conditions
     *         (operation combination conflict, invalid T register,
     *         underrun with the error policy, watchdog).
     */
    RunStats runShot();

    // --- post-run observation (architectural state of Fig. 2) ---

    uint32_t gpr(int index) const;
    bool comparisonFlag(isa::CondFlag flag) const;
    int measurementRegister(int qubit) const;        ///< Qi
    bool measurementRegisterValid(int qubit) const;  ///< Ci == 0
    uint64_t sRegister(int index) const;
    uint64_t tRegister(int index) const;
    uint32_t dataWord(size_t address) const;
    void setDataWord(size_t address, uint32_t value);

    const std::vector<TraceEvent> &trace() const { return trace_; }

    /** Measurement results of the last shot, in arrival order. Always
     *  recorded (independent of MicroarchConfig::enableTrace). */
    const std::vector<MeasurementEvent> &measurements() const
    {
        return measurements_;
    }

    const RunStats &stats() const { return stats_; }

    /** Lifetime micro-op issue tallies by class (see OpClassCounts). */
    const OpClassCounts &opClassCounts() const { return opClassCounts_; }

    const MicroarchConfig &config() const { return config_; }
    const chip::Topology &topology() const { return topology_; }
    const isa::OperationSet &operations() const { return operations_; }

  private:
    /** A micro-operation waiting in the quantum microinstruction
     *  buffer / event queues. */
    struct MicroOp {
        int qubit = -1;
        int pairQubit = -1;
        MicroOpRole role = MicroOpRole::single;
        const isa::OperationInfo *info = nullptr;
    };

    /** A measurement result in flight from the device. */
    struct PendingResult {
        uint64_t readyCycle = 0;
        int qubit = -1;
        int bit = 0;
    };

    void resetState();
    void issueClassical();
    void executeClassical(const isa::Instruction &instr);
    void executeQuantum(const isa::Instruction &instr);
    void processBundle(const isa::Instruction &instr);
    void addMicroOp(MicroOp op);
    void flushCollector();
    void drainTransitPipeline();
    void advanceTimeline(uint64_t cycles);
    void triggerDueEvents();
    void deliverDueResults();
    void updateComparisonFlags(uint32_t lhs, uint32_t rhs);
    bool executionFlag(int qubit, isa::ExecFlag flag) const;
    uint64_t labelToCycle(uint64_t label) const;
    bool drained() const;
    [[noreturn]] void architecturalError(const std::string &message) const;

    isa::OperationSet operations_;
    chip::Topology topology_;
    MicroarchConfig config_;
    Device *device_ = nullptr;

    /** The loaded program: immutable, possibly shared across replicas
     *  (see loadShared). Null until a program is loaded. */
    std::shared_ptr<const std::vector<isa::Instruction>> program_;

    // Classical pipeline state.
    uint64_t cycle_ = 0;
    size_t pc_ = 0;
    bool halted_ = false;
    std::vector<uint32_t> gpr_;
    std::array<bool, isa::kNumCondFlags> cmpFlags_{};
    std::vector<uint32_t> dataMem_;
    /** Data memory has non-zero words (ST executed / host preload);
     *  lets resetState skip the per-shot wipe for store-free programs. */
    bool dataMemDirty_ = false;

    // Quantum front-end state.
    std::vector<uint64_t> sRegs_;
    std::vector<uint64_t> tRegs_;
    uint64_t timelineLabel_ = 0;
    std::vector<MicroOp> collector_;
    uint64_t collectorLabel_ = 0;

    /** A flushed micro-op still traversing the reserve pipeline. */
    struct TransitOp {
        uint64_t readyCycle = 0;
        uint64_t label = 0;
        MicroOp op;
    };

    // Micro-ops in flight between the collector and the event queues.
    // FIFO as a vector + head index: entries enter in ready-cycle
    // order and leave from the front, and the backing storage is
    // reused across shots (no steady-state allocation).
    std::vector<TransitOp> inTransit_;
    size_t inTransitHead_ = 0;

    /** One queued (timing point, micro-op) entry of the timing control
     *  unit; kept sorted by label, insertion order within a label. */
    struct QueuedEvent {
        uint64_t label = 0;
        MicroOp op;
    };
    // Timing control unit event queue. Labels arrive in non-decreasing
    // order (the collector flushes along a monotone timeline through a
    // FIFO pipeline), so pushes are O(1) appends on a reused vector;
    // an out-of-order label would be placed exactly where the previous
    // multimap put it (upper bound, preserving equal-label FIFO).
    std::vector<QueuedEvent> eventQueue_;
    size_t eventQueueHead_ = 0;

    // Measurement result registers + CFC counters + FCE history.
    std::vector<int> qi_;
    std::vector<int> pendingMeasurements_;  ///< Ci counters.
    std::vector<int> lastResult_;
    std::vector<int> prevResult_;
    std::vector<int> resultCount_;
    std::vector<PendingResult> inFlight_;

    std::vector<TraceEvent> trace_;
    std::vector<MeasurementEvent> measurements_;
    RunStats stats_;
    OpClassCounts opClassCounts_;  ///< lifetime, never reset per shot.
};

} // namespace eqasm::microarch

#endif // EQASM_MICROARCH_QUMA_H
