#include "assembler/disassembler.h"

#include "common/bits.h"
#include "common/error.h"
#include "common/strings.h"
#include "isa/encoding.h"
#include "isa/instruction.h"

namespace eqasm::assembler {

namespace {

std::string
renderSmit(const isa::Instruction &instr, const chip::Topology &topology)
{
    std::string out = format("SMIT T%d, {", instr.targetReg);
    bool first = true;
    for (int edge : topology.maskToEdges(isa::expandMaskSegment(
             instr.mask, instr.maskSegment))) {
        if (!first)
            out += ", ";
        const chip::QubitPair &pair = topology.edge(edge);
        out += format("(%d, %d)", pair.source, pair.target);
        first = false;
    }
    out += "}";
    return out;
}

std::string
renderBundle(const isa::Instruction &instr)
{
    std::string out = format("%d, ", instr.preInterval);
    bool first = true;
    for (const isa::QuantumOperation &op : instr.operations) {
        if (op.isQnop() && instr.operations.size() > 1)
            continue; // QNOP padding is an encoding artefact.
        if (!first)
            out += " | ";
        out += op.name;
        switch (op.targetKind) {
          case isa::QuantumOperation::TargetKind::none:
            break;
          case isa::QuantumOperation::TargetKind::sreg:
            out += format(" S%d", op.targetReg);
            break;
          case isa::QuantumOperation::TargetKind::treg:
            out += format(" T%d", op.targetReg);
            break;
        }
        first = false;
    }
    if (first)
        out += "QNOP"; // all slots empty
    return out;
}

/** Canonical-syntax rendering shared by disassembleWord and
 *  disassemble(). */
std::string
renderInstruction(const isa::Instruction &instr,
                  const chip::Topology &topology)
{
    switch (instr.kind) {
      case isa::InstrKind::smit:
        return renderSmit(instr, topology);
      case isa::InstrKind::bundle:
        return renderBundle(instr);
      default:
        return isa::toString(instr);
    }
}

} // namespace

std::string
disassembleWord(uint32_t word, const isa::OperationSet &operations,
                const chip::Topology &topology,
                const isa::InstantiationParams &params)
{
    return renderInstruction(isa::decode(word, params, operations),
                             topology);
}

std::string
disassemble(const std::vector<uint32_t> &image,
            const isa::OperationSet &operations,
            const chip::Topology &topology,
            const isa::InstantiationParams &params)
{
    // Segmented SMIS/SMIT runs (wide-chip masks, see
    // isa::Instruction::maskSegment) are folded back into the single
    // assembly statement the assembler splits them from, so the
    // disassembly reassembles to a bit-identical image.
    std::vector<isa::Instruction> program;
    program.reserve(image.size());
    for (uint32_t word : image)
        program.push_back(isa::decode(word, params, operations));

    std::string out;
    for (size_t index = 0; index < program.size(); ++index) {
        isa::Instruction instr = program[index];
        bool maskable = instr.kind == isa::InstrKind::smis ||
                        instr.kind == isa::InstrKind::smit;
        if (maskable && instr.maskSegment != 0) {
            throwError(ErrorCode::parseError,
                       format("word %zu is mask segment %d of %c%d "
                              "without a preceding segment 0",
                              index, instr.maskSegment,
                              instr.kind == isa::InstrKind::smis ? 'S'
                                                                 : 'T',
                              instr.targetReg));
        }
        if (maskable) {
            int previous_segment = 0;
            while (index + 1 < program.size()) {
                const isa::Instruction &next = program[index + 1];
                if (next.kind != instr.kind ||
                    next.targetReg != instr.targetReg ||
                    next.maskSegment <= previous_segment) {
                    break;
                }
                instr.mask |= isa::expandMaskSegment(next.mask,
                                                     next.maskSegment);
                previous_segment = next.maskSegment;
                ++index;
            }
        }
        out += renderInstruction(instr, topology);
        out += '\n';
    }
    return out;
}

} // namespace eqasm::assembler
