#include "assembler/disassembler.h"

#include "common/bits.h"
#include "common/strings.h"
#include "isa/encoding.h"
#include "isa/instruction.h"

namespace eqasm::assembler {

namespace {

std::string
renderSmit(const isa::Instruction &instr, const chip::Topology &topology)
{
    std::string out = format("SMIT T%d, {", instr.targetReg);
    bool first = true;
    for (int edge : topology.maskToEdges(instr.mask)) {
        if (!first)
            out += ", ";
        const chip::QubitPair &pair = topology.edge(edge);
        out += format("(%d, %d)", pair.source, pair.target);
        first = false;
    }
    out += "}";
    return out;
}

std::string
renderBundle(const isa::Instruction &instr)
{
    std::string out = format("%d, ", instr.preInterval);
    bool first = true;
    for (const isa::QuantumOperation &op : instr.operations) {
        if (op.isQnop() && instr.operations.size() > 1)
            continue; // QNOP padding is an encoding artefact.
        if (!first)
            out += " | ";
        out += op.name;
        switch (op.targetKind) {
          case isa::QuantumOperation::TargetKind::none:
            break;
          case isa::QuantumOperation::TargetKind::sreg:
            out += format(" S%d", op.targetReg);
            break;
          case isa::QuantumOperation::TargetKind::treg:
            out += format(" T%d", op.targetReg);
            break;
        }
        first = false;
    }
    if (first)
        out += "QNOP"; // all slots empty
    return out;
}

} // namespace

std::string
disassembleWord(uint32_t word, const isa::OperationSet &operations,
                const chip::Topology &topology,
                const isa::InstantiationParams &params)
{
    isa::Instruction instr = isa::decode(word, params, operations);
    switch (instr.kind) {
      case isa::InstrKind::smit:
        return renderSmit(instr, topology);
      case isa::InstrKind::bundle:
        return renderBundle(instr);
      default:
        return isa::toString(instr);
    }
}

std::string
disassemble(const std::vector<uint32_t> &image,
            const isa::OperationSet &operations,
            const chip::Topology &topology,
            const isa::InstantiationParams &params)
{
    std::string out;
    for (uint32_t word : image) {
        out += disassembleWord(word, operations, topology, params);
        out += '\n';
    }
    return out;
}

} // namespace eqasm::assembler
