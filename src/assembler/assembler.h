/**
 * @file
 * The eQASM assembler: text -> instructions -> 32-bit binary.
 *
 * The assembler is configured with the quantum operation set (Section
 * 3.2: mnemonics are not fixed by the QISA), the target chip topology
 * (SMIS qubit lists and SMIT pair lists are encoded against it) and the
 * instantiation parameters (field widths, VLIW width).
 *
 * Responsibilities, all from the paper:
 *  - parse the assembly grammar of Figs. 3-5, including quantum bundles
 *    "[PI,] op reg [| op reg]*" with a defaulted PI of 1 (Section 3.1.2);
 *  - split long bundles into consecutive bundle instructions with PI = 0
 *    and QNOP fill (Section 3.4.2);
 *  - validate SMIT masks: "it is invalid if two edges connecting to the
 *    same qubit are selected in the same T register" (Section 4.3);
 *  - resolve branch labels to PC-relative offsets;
 *  - encode to the Fig. 8 binary formats.
 */
#ifndef EQASM_ASSEMBLER_ASSEMBLER_H
#define EQASM_ASSEMBLER_ASSEMBLER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chip/topology.h"
#include "common/error.h"
#include "isa/encoding.h"
#include "isa/instruction.h"
#include "isa/operation_set.h"

namespace eqasm::assembler {

/** One assembler diagnostic (always an error; assembly is all-or-nothing). */
struct Diagnostic {
    int line = 0;  ///< 1-based source line.
    std::string message;

    std::string toString() const;
};

/** An assembled program: machine-form instructions plus binary image. */
struct Program {
    std::vector<isa::Instruction> instructions;
    std::vector<uint32_t> image;
    std::map<std::string, int> labels;  ///< label -> instruction address.
};

/** Thrown when assembly fails; carries all collected diagnostics. */
class AssemblyError : public Error
{
  public:
    explicit AssemblyError(std::vector<Diagnostic> diagnostics);

    const std::vector<Diagnostic> &diagnostics() const
    {
        return diagnostics_;
    }

  private:
    std::vector<Diagnostic> diagnostics_;
};

/** The assembler object; cheap to construct, reusable across programs. */
class Assembler
{
  public:
    Assembler(isa::OperationSet operations, chip::Topology topology,
              isa::InstantiationParams params = {});

    /**
     * Assembles a full source text.
     * @throws AssemblyError listing every diagnosed problem.
     */
    Program assemble(const std::string &source) const;

    const isa::OperationSet &operations() const { return operations_; }
    const chip::Topology &topology() const { return topology_; }
    const isa::InstantiationParams &params() const { return params_; }

  private:
    isa::OperationSet operations_;
    chip::Topology topology_;
    isa::InstantiationParams params_;
};

} // namespace eqasm::assembler

#endif // EQASM_ASSEMBLER_ASSEMBLER_H
