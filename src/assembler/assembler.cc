#include "assembler/assembler.h"

#include <utility>

#include "assembler/lexer.h"
#include "common/bits.h"
#include "common/strings.h"

namespace eqasm::assembler {

using isa::Instruction;
using isa::InstrKind;
using isa::OpClass;
using isa::QuantumOperation;

std::string
Diagnostic::toString() const
{
    return format("line %d: %s", line, message.c_str());
}

namespace {

std::string
joinDiagnostics(const std::vector<Diagnostic> &diagnostics)
{
    std::string out = format("assembly failed with %zu error(s)",
                             diagnostics.size());
    for (const Diagnostic &diag : diagnostics)
        out += "\n  " + diag.toString();
    return out;
}

/** Parses one source line's token stream into zero or more instructions. */
class LineParser
{
  public:
    LineParser(std::vector<Token> tokens, int line,
               const isa::OperationSet &operations,
               const chip::Topology &topology,
               const isa::InstantiationParams &params)
        : tokens_(std::move(tokens)), line_(line), operations_(operations),
          topology_(topology), params_(params)
    {
    }

    /** Label definitions at the start of the line ("name:"). */
    std::vector<std::string>
    takeLabels()
    {
        std::vector<std::string> labels;
        while (peek().kind == TokenKind::identifier &&
               peekAt(1).kind == TokenKind::colon &&
               !isMnemonicLike(peek().text)) {
            labels.push_back(peek().text);
            pos_ += 2;
        }
        return labels;
    }

    bool atEnd() const { return peek().kind == TokenKind::endOfLine; }

    /** Parses the single instruction on this line (split later). */
    Instruction
    parseInstruction()
    {
        const Token &first = peek();
        if (first.kind == TokenKind::integer) {
            // "[PI,] op ..." — a bundle with explicit pre-interval.
            int64_t pi = next().value;
            expect(TokenKind::comma, "',' after the pre-interval");
            return parseBundle(pi);
        }
        if (first.kind != TokenKind::identifier)
            fail("expected an instruction mnemonic");
        std::string upper = toUpper(first.text);

        if (upper == "NOP" || upper == "STOP") {
            next();
            Instruction instr;
            instr.kind = upper == "NOP" ? InstrKind::nop : InstrKind::stop;
            return finish(instr);
        }
        if (upper == "CMP") {
            next();
            Instruction instr;
            instr.kind = InstrKind::cmp;
            instr.rs = parseRegister('R', params_.numGprs);
            expect(TokenKind::comma, "',' between CMP operands");
            instr.rt = parseRegister('R', params_.numGprs);
            return finish(instr);
        }
        if (upper == "BR") {
            next();
            Instruction instr;
            instr.kind = InstrKind::br;
            instr.cond = parseCondFlag();
            expect(TokenKind::comma, "',' after the branch condition");
            if (peek().kind == TokenKind::integer) {
                instr.imm = next().value;
            } else if (peek().kind == TokenKind::identifier) {
                instr.label = next().text;
            } else {
                fail("expected a branch target (label or offset)");
            }
            return finish(instr);
        }
        if (upper == "FBR") {
            next();
            Instruction instr;
            instr.kind = InstrKind::fbr;
            instr.cond = parseCondFlag();
            expect(TokenKind::comma, "',' after the condition flag");
            instr.rd = parseRegister('R', params_.numGprs);
            return finish(instr);
        }
        if (upper == "LDI") {
            next();
            Instruction instr;
            instr.kind = InstrKind::ldi;
            instr.rd = parseRegister('R', params_.numGprs);
            expect(TokenKind::comma, "',' after the destination");
            instr.imm = parseInteger();
            return finish(instr);
        }
        if (upper == "LDUI") {
            next();
            Instruction instr;
            instr.kind = InstrKind::ldui;
            instr.rd = parseRegister('R', params_.numGprs);
            expect(TokenKind::comma, "',' after the destination");
            instr.imm = parseInteger();
            expect(TokenKind::comma, "',' after the immediate");
            instr.rs = parseRegister('R', params_.numGprs);
            return finish(instr);
        }
        if (upper == "LD" || upper == "ST") {
            next();
            Instruction instr;
            instr.kind = upper == "LD" ? InstrKind::ld : InstrKind::st;
            int data_reg = parseRegister('R', params_.numGprs);
            if (instr.kind == InstrKind::ld) {
                instr.rd = data_reg;
            } else {
                instr.rs = data_reg;
            }
            expect(TokenKind::comma, "',' after the data register");
            instr.rt = parseRegister('R', params_.numGprs);
            expect(TokenKind::lparen, "'(' before the offset");
            instr.imm = parseInteger();
            expect(TokenKind::rparen, "')' after the offset");
            return finish(instr);
        }
        if (upper == "FMR") {
            next();
            Instruction instr;
            instr.kind = InstrKind::fmr;
            instr.rd = parseRegister('R', params_.numGprs);
            expect(TokenKind::comma, "',' after the destination");
            instr.qubit = parseRegister('Q', topology_.numQubits());
            return finish(instr);
        }
        if (upper == "AND" || upper == "OR" || upper == "XOR" ||
            upper == "ADD" || upper == "SUB") {
            next();
            Instruction instr;
            instr.kind = upper == "AND"   ? InstrKind::logicAnd
                         : upper == "OR"  ? InstrKind::logicOr
                         : upper == "XOR" ? InstrKind::logicXor
                         : upper == "ADD" ? InstrKind::add
                                          : InstrKind::sub;
            instr.rd = parseRegister('R', params_.numGprs);
            expect(TokenKind::comma, "',' after the destination");
            instr.rs = parseRegister('R', params_.numGprs);
            expect(TokenKind::comma, "',' after the first source");
            instr.rt = parseRegister('R', params_.numGprs);
            return finish(instr);
        }
        if (upper == "NOT") {
            next();
            Instruction instr;
            instr.kind = InstrKind::logicNot;
            instr.rd = parseRegister('R', params_.numGprs);
            expect(TokenKind::comma, "',' after the destination");
            instr.rt = parseRegister('R', params_.numGprs);
            return finish(instr);
        }
        if (upper == "QWAIT") {
            next();
            Instruction instr;
            instr.kind = InstrKind::qwait;
            instr.imm = parseInteger();
            if (instr.imm < 0)
                fail("QWAIT interval must be non-negative");
            return finish(instr);
        }
        if (upper == "QWAITR") {
            next();
            Instruction instr;
            instr.kind = InstrKind::qwaitr;
            instr.rs = parseRegister('R', params_.numGprs);
            return finish(instr);
        }
        if (upper == "SMIS")
            return parseSmis();
        if (upper == "SMIT")
            return parseSmit();

        // Anything else must be a configured quantum operation starting
        // a bundle with the default pre-interval of 1 (Section 3.1.2).
        if (operations_.findByName(upper) != nullptr)
            return parseBundle(1);
        fail(format("unknown mnemonic or quantum operation '%s'",
                    first.text.c_str()));
    }

    [[noreturn]] void
    fail(const std::string &message) const
    {
        throwError(ErrorCode::parseError, message);
    }

  private:
    const Token &peek() const { return tokens_[pos_]; }
    const Token &
    peekAt(size_t offset) const
    {
        size_t index = pos_ + offset;
        return index < tokens_.size() ? tokens_[index] : tokens_.back();
    }
    const Token &
    next()
    {
        const Token &token = tokens_[pos_];
        if (token.kind != TokenKind::endOfLine)
            ++pos_;
        return token;
    }

    void
    expect(TokenKind kind, const char *what)
    {
        if (peek().kind != kind)
            fail(format("expected %s", what));
        next();
    }

    /** True when the identifier names an instruction or quantum op, to
     *  disambiguate "X :" (never valid) from a label definition. */
    bool
    isMnemonicLike(const std::string &text) const
    {
        return operations_.findByName(text) != nullptr;
    }

    Instruction
    finish(Instruction instr)
    {
        instr.sourceLine = line_;
        if (peek().kind != TokenKind::endOfLine)
            fail("trailing tokens after instruction");
        return instr;
    }

    int64_t
    parseInteger()
    {
        if (peek().kind != TokenKind::integer)
            fail("expected an integer");
        return next().value;
    }

    int
    parseRegister(char prefix, int count)
    {
        if (peek().kind != TokenKind::identifier)
            fail(format("expected a %c-register", prefix));
        std::string text = toUpper(next().text);
        if (text.size() < 2 || text[0] != prefix)
            fail(format("expected a %c-register, got '%s'", prefix,
                        text.c_str()));
        int64_t index;
        try {
            index = parseInt(text.substr(1));
        } catch (const Error &) {
            fail(format("bad register name '%s'", text.c_str()));
        }
        if (index < 0 || index >= count) {
            fail(format("register %s out of range [%c0, %c%d)",
                        text.c_str(), prefix, prefix, count));
        }
        return static_cast<int>(index);
    }

    isa::CondFlag
    parseCondFlag()
    {
        if (peek().kind != TokenKind::identifier)
            fail("expected a comparison flag name");
        std::string text = next().text;
        auto flag = isa::parseCondFlag(text);
        if (!flag)
            fail(format("unknown comparison flag '%s'", text.c_str()));
        return *flag;
    }

    Instruction
    parseSmis()
    {
        next(); // SMIS
        Instruction instr;
        instr.kind = InstrKind::smis;
        instr.targetReg = parseRegister('S', params_.numSRegisters);
        expect(TokenKind::comma, "',' after the S register");
        expect(TokenKind::lbrace, "'{' starting the qubit list");
        uint64_t mask = 0;
        while (peek().kind != TokenKind::rbrace) {
            int64_t qubit = parseInteger();
            if (!topology_.validQubit(static_cast<int>(qubit))) {
                fail(format("qubit %lld is not on chip '%s'",
                            static_cast<long long>(qubit),
                            topology_.name().c_str()));
            }
            mask |= uint64_t{1} << qubit;
            if (peek().kind == TokenKind::comma)
                next();
        }
        next(); // '}'
        instr.mask = mask;
        return finish(instr);
    }

    Instruction
    parseSmit()
    {
        next(); // SMIT
        Instruction instr;
        instr.kind = InstrKind::smit;
        instr.targetReg = parseRegister('T', params_.numTRegisters);
        expect(TokenKind::comma, "',' after the T register");
        expect(TokenKind::lbrace, "'{' starting the pair list");
        uint64_t mask = 0;
        while (peek().kind != TokenKind::rbrace) {
            expect(TokenKind::lparen, "'(' starting a qubit pair");
            int64_t source = parseInteger();
            expect(TokenKind::comma, "',' inside the qubit pair");
            int64_t target = parseInteger();
            expect(TokenKind::rparen, "')' closing the qubit pair");
            auto edge = topology_.edgeIndex(static_cast<int>(source),
                                            static_cast<int>(target));
            if (!edge) {
                fail(format("(%lld, %lld) is not an allowed qubit pair "
                            "on chip '%s'",
                            static_cast<long long>(source),
                            static_cast<long long>(target),
                            topology_.name().c_str()));
            }
            mask |= uint64_t{1} << *edge;
            if (peek().kind == TokenKind::comma)
                next();
        }
        next(); // '}'
        if (auto conflict = topology_.maskConflict(mask)) {
            fail(format("invalid T register value: qubit %d appears in "
                        "two selected pairs",
                        *conflict));
        }
        instr.mask = mask;
        return finish(instr);
    }

    Instruction
    parseBundle(int64_t pre_interval)
    {
        if (pre_interval < 0 ||
            pre_interval > params_.maxPreInterval()) {
            fail(format("pre-interval %lld outside [0, %d] — use QWAIT "
                        "for longer waits",
                        static_cast<long long>(pre_interval),
                        params_.maxPreInterval()));
        }
        Instruction instr;
        instr.kind = InstrKind::bundle;
        instr.preInterval = static_cast<int>(pre_interval);
        for (;;) {
            instr.operations.push_back(parseQuantumOperation());
            if (peek().kind != TokenKind::pipe)
                break;
            next();
        }
        return finish(instr);
    }

    QuantumOperation
    parseQuantumOperation()
    {
        if (peek().kind != TokenKind::identifier)
            fail("expected a quantum operation name");
        std::string name = next().text;
        const isa::OperationInfo *info = operations_.findByName(name);
        if (info == nullptr) {
            fail(format("quantum operation '%s' is not configured",
                        name.c_str()));
        }
        QuantumOperation op;
        op.name = info->name;
        op.opcode = info->opcode;
        op.opClass = info->opClass;
        op.targetKind = isa::targetKindForClass(info->opClass);
        switch (op.targetKind) {
          case QuantumOperation::TargetKind::none:
            break;
          case QuantumOperation::TargetKind::sreg:
            op.targetReg = parseRegister('S', params_.numSRegisters);
            break;
          case QuantumOperation::TargetKind::treg:
            op.targetReg = parseRegister('T', params_.numTRegisters);
            break;
        }
        return op;
    }

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    int line_;
    const isa::OperationSet &operations_;
    const chip::Topology &topology_;
    const isa::InstantiationParams &params_;
};

/**
 * Splits a bundle wider than the VLIW width into consecutive bundle
 * instructions with PI = 0 (Section 3.4.2). The encoder pads missing
 * slots with QNOP.
 */
std::vector<Instruction>
splitBundle(Instruction instr, int vliw_width)
{
    std::vector<Instruction> out;
    if (instr.kind != InstrKind::bundle ||
        static_cast<int>(instr.operations.size()) <= vliw_width) {
        out.push_back(std::move(instr));
        return out;
    }
    std::vector<QuantumOperation> ops = std::move(instr.operations);
    size_t offset = 0;
    bool first = true;
    while (offset < ops.size()) {
        Instruction part;
        part.kind = InstrKind::bundle;
        part.sourceLine = instr.sourceLine;
        part.preInterval = first ? instr.preInterval : 0;
        first = false;
        for (int slot = 0; slot < vliw_width && offset < ops.size();
             ++slot, ++offset) {
            part.operations.push_back(ops[offset]);
        }
        out.push_back(std::move(part));
    }
    return out;
}

/**
 * Splits an SMIS/SMIT whose mask exceeds the 16 bits a single word can
 * carry into consecutive segment instructions (see
 * isa::Instruction::maskSegment): segment 0 always first (it *sets* the
 * register, so the low chunk is emitted even when empty), followed by
 * every higher segment with a non-zero chunk. Narrow masks pass through
 * untouched, keeping seven-qubit images bit-identical.
 */
std::vector<Instruction>
splitWideMask(Instruction instr)
{
    std::vector<Instruction> out;
    if ((instr.kind != InstrKind::smis &&
         instr.kind != InstrKind::smit) ||
        instr.mask < (uint64_t{1} << 16)) {
        out.push_back(std::move(instr));
        return out;
    }
    uint64_t mask = instr.mask;
    for (int segment = 0; segment < 4; ++segment) {
        uint64_t chunk = (mask >> (16 * segment)) & 0xffff;
        if (segment > 0 && chunk == 0)
            continue;
        Instruction part = instr;
        part.mask = chunk;
        part.maskSegment = segment;
        out.push_back(std::move(part));
    }
    return out;
}

} // namespace

AssemblyError::AssemblyError(std::vector<Diagnostic> diagnostics)
    : Error(ErrorCode::parseError, joinDiagnostics(diagnostics)),
      diagnostics_(std::move(diagnostics))
{
}

Assembler::Assembler(isa::OperationSet operations, chip::Topology topology,
                     isa::InstantiationParams params)
    : operations_(std::move(operations)), topology_(std::move(topology)),
      params_(params)
{
}

Program
Assembler::assemble(const std::string &source) const
{
    Program program;
    std::vector<Diagnostic> diagnostics;
    std::vector<std::string> pending_labels;

    std::vector<std::string> lines = split(source, '\n');
    for (size_t line_index = 0; line_index < lines.size(); ++line_index) {
        int line_number = static_cast<int>(line_index) + 1;
        try {
            LineParser parser(tokenizeLine(lines[line_index]), line_number,
                              operations_, topology_, params_);
            for (std::string &label : parser.takeLabels())
                pending_labels.push_back(std::move(label));
            if (parser.atEnd())
                continue;
            Instruction instr = parser.parseInstruction();
            int address = static_cast<int>(program.instructions.size());
            for (const std::string &label : pending_labels) {
                if (program.labels.count(label)) {
                    throwError(ErrorCode::semanticError,
                               format("duplicate label '%s'",
                                      label.c_str()));
                }
                program.labels[label] = address;
            }
            pending_labels.clear();
            for (Instruction &split :
                 splitBundle(std::move(instr), params_.vliwWidth)) {
                for (Instruction &part : splitWideMask(std::move(split)))
                    program.instructions.push_back(std::move(part));
            }
        } catch (const Error &error) {
            diagnostics.push_back({line_number, error.message()});
        }
    }

    // A trailing label points one past the last instruction.
    for (const std::string &label : pending_labels) {
        program.labels[label] =
            static_cast<int>(program.instructions.size());
    }

    // Resolve symbolic branch targets: "BR <flag>, Offset" jumps to
    // PC + Offset where PC is the address of the BR itself.
    for (size_t address = 0; address < program.instructions.size();
         ++address) {
        Instruction &instr = program.instructions[address];
        if (instr.kind != InstrKind::br || instr.label.empty())
            continue;
        auto it = program.labels.find(instr.label);
        if (it == program.labels.end()) {
            diagnostics.push_back(
                {instr.sourceLine,
                 format("undefined label '%s'", instr.label.c_str())});
            continue;
        }
        instr.imm = it->second - static_cast<int>(address);
    }

    if (!diagnostics.empty())
        throw AssemblyError(std::move(diagnostics));

    // Encode; encoding errors carry the source line in their message.
    for (const Instruction &instr : program.instructions) {
        try {
            program.image.push_back(isa::encode(instr, params_));
        } catch (const Error &error) {
            diagnostics.push_back({instr.sourceLine, error.message()});
        }
    }
    if (!diagnostics.empty())
        throw AssemblyError(std::move(diagnostics));
    return program;
}

} // namespace eqasm::assembler
