#include "assembler/lexer.h"

#include <cctype>

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::assembler {

std::string_view
stripComment(std::string_view line)
{
    for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '#')
            return line.substr(0, i);
        if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/')
            return line.substr(0, i);
    }
    return line;
}

std::vector<Token>
tokenizeLine(std::string_view line)
{
    line = stripComment(line);
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < line.size()) {
        char c = line[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        Token token;
        token.column = static_cast<int>(i) + 1;
        switch (c) {
          case ',': token.kind = TokenKind::comma; ++i; break;
          case '|': token.kind = TokenKind::pipe; ++i; break;
          case ':': token.kind = TokenKind::colon; ++i; break;
          case '{': token.kind = TokenKind::lbrace; ++i; break;
          case '}': token.kind = TokenKind::rbrace; ++i; break;
          case '(': token.kind = TokenKind::lparen; ++i; break;
          case ')': token.kind = TokenKind::rparen; ++i; break;
          default:
            if (std::isdigit(static_cast<unsigned char>(c)) ||
                ((c == '-' || c == '+') && i + 1 < line.size() &&
                 std::isdigit(static_cast<unsigned char>(line[i + 1])))) {
                size_t start = i;
                if (c == '-' || c == '+')
                    ++i;
                while (i < line.size() &&
                       (std::isalnum(static_cast<unsigned char>(line[i])))) {
                    ++i;
                }
                token.kind = TokenKind::integer;
                token.text = std::string(line.substr(start, i - start));
                token.value = parseInt(token.text);
            } else if (std::isalpha(static_cast<unsigned char>(c)) ||
                       c == '_' || c == '.') {
                size_t start = i;
                while (i < line.size() &&
                       (std::isalnum(static_cast<unsigned char>(line[i])) ||
                        line[i] == '_' || line[i] == '.')) {
                    ++i;
                }
                token.kind = TokenKind::identifier;
                token.text = std::string(line.substr(start, i - start));
            } else {
                throwError(ErrorCode::parseError,
                           format("unexpected character '%c' at column %zu",
                                  c, i + 1));
            }
        }
        tokens.push_back(std::move(token));
    }
    Token eol;
    eol.kind = TokenKind::endOfLine;
    eol.column = static_cast<int>(line.size()) + 1;
    tokens.push_back(eol);
    return tokens;
}

} // namespace eqasm::assembler
