/**
 * @file
 * Disassembler: 32-bit eQASM binary back to canonical assembly text.
 *
 * The disassembler needs the same configuration as the assembler (the
 * operation set gives q opcodes their mnemonics; the topology turns
 * SMIT edge masks back into qubit pair lists). Round-tripping
 * assemble(disassemble(image)) reproduces the image bit-for-bit, which
 * the test suite verifies as a property.
 */
#ifndef EQASM_ASSEMBLER_DISASSEMBLER_H
#define EQASM_ASSEMBLER_DISASSEMBLER_H

#include <cstdint>
#include <string>
#include <vector>

#include "chip/topology.h"
#include "isa/opcodes.h"
#include "isa/operation_set.h"

namespace eqasm::assembler {

/** Renders one decoded word as assembly text. */
std::string disassembleWord(uint32_t word,
                            const isa::OperationSet &operations,
                            const chip::Topology &topology,
                            const isa::InstantiationParams &params);

/** Renders a whole image, one instruction per line. */
std::string disassemble(const std::vector<uint32_t> &image,
                        const isa::OperationSet &operations,
                        const chip::Topology &topology,
                        const isa::InstantiationParams &params = {});

} // namespace eqasm::assembler

#endif // EQASM_ASSEMBLER_DISASSEMBLER_H
