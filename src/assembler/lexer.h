/**
 * @file
 * Line tokenizer for eQASM assembly.
 *
 * The assembly grammar is line-oriented (Fig. 3/4/5 of the paper):
 * comments start with '#' (also '//' is accepted), labels end with ':',
 * operands are separated by commas, bundle slots by '|'. The lexer
 * produces a flat token stream per line; the parser in assembler.cc
 * consumes it.
 */
#ifndef EQASM_ASSEMBLER_LEXER_H
#define EQASM_ASSEMBLER_LEXER_H

#include <string>
#include <string_view>
#include <vector>

namespace eqasm::assembler {

/** Token categories produced by the lexer. */
enum class TokenKind {
    identifier,  ///< mnemonics, label names, register names.
    integer,     ///< decimal/hex/binary literal (value in Token::value).
    comma,
    pipe,        ///< '|' bundle separator.
    colon,       ///< label definition.
    lbrace,      ///< '{'
    rbrace,      ///< '}'
    lparen,      ///< '('
    rparen,      ///< ')'
    endOfLine,
};

struct Token {
    TokenKind kind = TokenKind::endOfLine;
    std::string text;     ///< raw spelling (identifiers/integers).
    int64_t value = 0;    ///< parsed value for integer tokens.
    int column = 0;       ///< 1-based column for diagnostics.
};

/**
 * Tokenizes one source line (comment already allowed in the input).
 * @throws Error{parseError} on an unrecognised character.
 */
std::vector<Token> tokenizeLine(std::string_view line);

/** Strips a trailing '#' or '//' comment. */
std::string_view stripComment(std::string_view line);

} // namespace eqasm::assembler

#endif // EQASM_ASSEMBLER_LEXER_H
