#include "isa/opcodes.h"

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::isa {

std::string_view
instrKindName(InstrKind kind)
{
    switch (kind) {
      case InstrKind::nop: return "NOP";
      case InstrKind::stop: return "STOP";
      case InstrKind::cmp: return "CMP";
      case InstrKind::br: return "BR";
      case InstrKind::fbr: return "FBR";
      case InstrKind::ldi: return "LDI";
      case InstrKind::ldui: return "LDUI";
      case InstrKind::ld: return "LD";
      case InstrKind::st: return "ST";
      case InstrKind::fmr: return "FMR";
      case InstrKind::logicAnd: return "AND";
      case InstrKind::logicOr: return "OR";
      case InstrKind::logicXor: return "XOR";
      case InstrKind::logicNot: return "NOT";
      case InstrKind::add: return "ADD";
      case InstrKind::sub: return "SUB";
      case InstrKind::qwait: return "QWAIT";
      case InstrKind::qwaitr: return "QWAITR";
      case InstrKind::smis: return "SMIS";
      case InstrKind::smit: return "SMIT";
      case InstrKind::bundle: return "BUNDLE";
    }
    return "UNKNOWN";
}

bool
isQuantum(InstrKind kind)
{
    switch (kind) {
      case InstrKind::qwait:
      case InstrKind::qwaitr:
      case InstrKind::smis:
      case InstrKind::smit:
      case InstrKind::bundle:
        return true;
      default:
        return false;
    }
}

std::string_view
condFlagName(CondFlag flag)
{
    switch (flag) {
      case CondFlag::always: return "ALWAYS";
      case CondFlag::never: return "NEVER";
      case CondFlag::eq: return "EQ";
      case CondFlag::ne: return "NE";
      case CondFlag::ltu: return "LTU";
      case CondFlag::geu: return "GEU";
      case CondFlag::leu: return "LEU";
      case CondFlag::gtu: return "GTU";
      case CondFlag::lt: return "LT";
      case CondFlag::ge: return "GE";
      case CondFlag::le: return "LE";
      case CondFlag::gt: return "GT";
    }
    return "UNKNOWN";
}

std::optional<CondFlag>
parseCondFlag(std::string_view name)
{
    std::string upper = toUpper(name);
    for (int i = 0; i < kNumCondFlags; ++i) {
        auto flag = static_cast<CondFlag>(i);
        if (upper == condFlagName(flag))
            return flag;
    }
    return std::nullopt;
}

std::optional<InstrKind>
instrKindForOpcode(uint8_t opcode)
{
    switch (static_cast<SingleOpcode>(opcode)) {
      case SingleOpcode::nop: return InstrKind::nop;
      case SingleOpcode::stop: return InstrKind::stop;
      case SingleOpcode::add: return InstrKind::add;
      case SingleOpcode::sub: return InstrKind::sub;
      case SingleOpcode::logicAnd: return InstrKind::logicAnd;
      case SingleOpcode::logicOr: return InstrKind::logicOr;
      case SingleOpcode::logicXor: return InstrKind::logicXor;
      case SingleOpcode::logicNot: return InstrKind::logicNot;
      case SingleOpcode::cmp: return InstrKind::cmp;
      case SingleOpcode::br: return InstrKind::br;
      case SingleOpcode::fbr: return InstrKind::fbr;
      case SingleOpcode::ldi: return InstrKind::ldi;
      case SingleOpcode::ldui: return InstrKind::ldui;
      case SingleOpcode::ld: return InstrKind::ld;
      case SingleOpcode::st: return InstrKind::st;
      case SingleOpcode::fmr: return InstrKind::fmr;
      case SingleOpcode::smis: return InstrKind::smis;
      case SingleOpcode::smit: return InstrKind::smit;
      case SingleOpcode::qwait: return InstrKind::qwait;
      case SingleOpcode::qwaitr: return InstrKind::qwaitr;
    }
    return std::nullopt;
}

uint8_t
opcodeForInstrKind(InstrKind kind)
{
    switch (kind) {
      case InstrKind::nop: return static_cast<uint8_t>(SingleOpcode::nop);
      case InstrKind::stop: return static_cast<uint8_t>(SingleOpcode::stop);
      case InstrKind::cmp: return static_cast<uint8_t>(SingleOpcode::cmp);
      case InstrKind::br: return static_cast<uint8_t>(SingleOpcode::br);
      case InstrKind::fbr: return static_cast<uint8_t>(SingleOpcode::fbr);
      case InstrKind::ldi: return static_cast<uint8_t>(SingleOpcode::ldi);
      case InstrKind::ldui: return static_cast<uint8_t>(SingleOpcode::ldui);
      case InstrKind::ld: return static_cast<uint8_t>(SingleOpcode::ld);
      case InstrKind::st: return static_cast<uint8_t>(SingleOpcode::st);
      case InstrKind::fmr: return static_cast<uint8_t>(SingleOpcode::fmr);
      case InstrKind::logicAnd:
        return static_cast<uint8_t>(SingleOpcode::logicAnd);
      case InstrKind::logicOr:
        return static_cast<uint8_t>(SingleOpcode::logicOr);
      case InstrKind::logicXor:
        return static_cast<uint8_t>(SingleOpcode::logicXor);
      case InstrKind::logicNot:
        return static_cast<uint8_t>(SingleOpcode::logicNot);
      case InstrKind::add: return static_cast<uint8_t>(SingleOpcode::add);
      case InstrKind::sub: return static_cast<uint8_t>(SingleOpcode::sub);
      case InstrKind::qwait:
        return static_cast<uint8_t>(SingleOpcode::qwait);
      case InstrKind::qwaitr:
        return static_cast<uint8_t>(SingleOpcode::qwaitr);
      case InstrKind::smis: return static_cast<uint8_t>(SingleOpcode::smis);
      case InstrKind::smit: return static_cast<uint8_t>(SingleOpcode::smit);
      case InstrKind::bundle:
        EQASM_ASSERT(false, "bundle has no single-format opcode");
    }
    return 0;
}

} // namespace eqasm::isa
