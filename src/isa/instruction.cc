#include "isa/instruction.h"

#include "common/bits.h"
#include "common/error.h"
#include "common/strings.h"

namespace eqasm::isa {

QuantumOperation::TargetKind
targetKindForClass(OpClass op_class)
{
    switch (op_class) {
      case OpClass::qnop:
        return QuantumOperation::TargetKind::none;
      case OpClass::singleQubit:
      case OpClass::measurement:
        return QuantumOperation::TargetKind::sreg;
      case OpClass::twoQubit:
        return QuantumOperation::TargetKind::treg;
    }
    return QuantumOperation::TargetKind::none;
}

uint64_t
expandMaskSegment(uint64_t chunk, int segment)
{
    if (segment < 0 || segment > 3) {
        throwError(ErrorCode::invalidArgument,
                   format("mask segment %d exceeds the 64-bit S/T "
                          "target registers (segments 0..3)",
                          segment));
    }
    if (segment != 0 && chunk > 0xffff) {
        throwError(ErrorCode::invalidArgument,
                   format("mask chunk 0x%llx of segment %d exceeds 16 "
                          "bits",
                          static_cast<unsigned long long>(chunk),
                          segment));
    }
    return chunk << (16 * segment);
}

Instruction
Instruction::makeNop()
{
    return Instruction{};
}

Instruction
Instruction::makeStop()
{
    Instruction instr;
    instr.kind = InstrKind::stop;
    return instr;
}

Instruction
Instruction::makeLdi(int rd, int64_t imm)
{
    Instruction instr;
    instr.kind = InstrKind::ldi;
    instr.rd = rd;
    instr.imm = imm;
    return instr;
}

Instruction
Instruction::makeQwait(int64_t cycles)
{
    Instruction instr;
    instr.kind = InstrKind::qwait;
    instr.imm = cycles;
    return instr;
}

Instruction
Instruction::makeQwaitr(int rs)
{
    Instruction instr;
    instr.kind = InstrKind::qwaitr;
    instr.rs = rs;
    return instr;
}

Instruction
Instruction::makeSmis(int sd, uint64_t qubit_mask)
{
    Instruction instr;
    instr.kind = InstrKind::smis;
    instr.targetReg = sd;
    instr.mask = qubit_mask;
    return instr;
}

Instruction
Instruction::makeSmit(int td, uint64_t edge_mask)
{
    Instruction instr;
    instr.kind = InstrKind::smit;
    instr.targetReg = td;
    instr.mask = edge_mask;
    return instr;
}

Instruction
Instruction::makeBundle(int pre_interval, std::vector<QuantumOperation> ops)
{
    Instruction instr;
    instr.kind = InstrKind::bundle;
    instr.preInterval = pre_interval;
    instr.operations = std::move(ops);
    return instr;
}

namespace {

std::string
maskToList(uint64_t mask)
{
    std::string out = "{";
    bool first = true;
    for (unsigned i = 0; i < 64; ++i) {
        if (bit(mask, i)) {
            if (!first)
                out += ", ";
            out += format("%u", i);
            first = false;
        }
    }
    out += "}";
    return out;
}

std::string
operandName(const QuantumOperation &op)
{
    switch (op.targetKind) {
      case QuantumOperation::TargetKind::none:
        return "";
      case QuantumOperation::TargetKind::sreg:
        return format(" S%d", op.targetReg);
      case QuantumOperation::TargetKind::treg:
        return format(" T%d", op.targetReg);
    }
    return "";
}

} // namespace

std::string
toString(const Instruction &instr)
{
    auto name = std::string(instrKindName(instr.kind));
    switch (instr.kind) {
      case InstrKind::nop:
      case InstrKind::stop:
        return name;
      case InstrKind::cmp:
        return format("CMP R%d, R%d", instr.rs, instr.rt);
      case InstrKind::br:
        if (!instr.label.empty()) {
            return format("BR %s, %s",
                          std::string(condFlagName(instr.cond)).c_str(),
                          instr.label.c_str());
        }
        return format("BR %s, %lld",
                      std::string(condFlagName(instr.cond)).c_str(),
                      static_cast<long long>(instr.imm));
      case InstrKind::fbr:
        return format("FBR %s, R%d",
                      std::string(condFlagName(instr.cond)).c_str(),
                      instr.rd);
      case InstrKind::ldi:
        return format("LDI R%d, %lld", instr.rd,
                      static_cast<long long>(instr.imm));
      case InstrKind::ldui:
        return format("LDUI R%d, %lld, R%d", instr.rd,
                      static_cast<long long>(instr.imm), instr.rs);
      case InstrKind::ld:
        return format("LD R%d, R%d(%lld)", instr.rd, instr.rt,
                      static_cast<long long>(instr.imm));
      case InstrKind::st:
        return format("ST R%d, R%d(%lld)", instr.rs, instr.rt,
                      static_cast<long long>(instr.imm));
      case InstrKind::fmr:
        return format("FMR R%d, Q%d", instr.rd, instr.qubit);
      case InstrKind::logicAnd:
      case InstrKind::logicOr:
      case InstrKind::logicXor:
      case InstrKind::add:
      case InstrKind::sub:
        return format("%s R%d, R%d, R%d", name.c_str(), instr.rd,
                      instr.rs, instr.rt);
      case InstrKind::logicNot:
        return format("NOT R%d, R%d", instr.rd, instr.rt);
      case InstrKind::qwait:
        return format("QWAIT %lld", static_cast<long long>(instr.imm));
      case InstrKind::qwaitr:
        return format("QWAITR R%d", instr.rs);
      case InstrKind::smis:
        return format("SMIS S%d, %s", instr.targetReg,
                      maskToList(expandMaskSegment(instr.mask,
                                                   instr.maskSegment))
                          .c_str());
      case InstrKind::smit:
        return format("SMIT T%d, [%s]", instr.targetReg,
                      maskToList(expandMaskSegment(instr.mask,
                                                   instr.maskSegment))
                          .c_str());
      case InstrKind::bundle: {
        std::string out = format("%d, ", instr.preInterval);
        for (size_t i = 0; i < instr.operations.size(); ++i) {
            if (i)
                out += " | ";
            const QuantumOperation &op = instr.operations[i];
            out += op.name + operandName(op);
        }
        return out;
      }
    }
    return name;
}

} // namespace eqasm::isa
