#include "isa/encoding.h"

#include "common/bits.h"
#include "common/error.h"
#include "common/strings.h"

namespace eqasm::isa {
namespace {

/// Bit positions shared by all single-format instructions.
constexpr unsigned kOpcodeHi = 30;
constexpr unsigned kOpcodeLo = 25;

void
checkRegister(int reg, int count, const char *what)
{
    if (reg < 0 || reg >= count) {
        throwError(ErrorCode::encodeError,
                   format("%s address %d out of range [0, %d)", what, reg,
                          count));
    }
}

void
checkUnsignedField(uint64_t value, unsigned width, const char *what)
{
    if (!fitsUnsigned(value, width)) {
        throwError(ErrorCode::encodeError,
                   format("%s value %llu does not fit in %u bits", what,
                          static_cast<unsigned long long>(value), width));
    }
}

void
checkSignedField(int64_t value, unsigned width, const char *what)
{
    if (!fitsSigned(value, width)) {
        throwError(ErrorCode::encodeError,
                   format("%s value %lld does not fit in %u signed bits",
                          what, static_cast<long long>(value), width));
    }
}

uint32_t
encodeBundle(const Instruction &instr, const InstantiationParams &params)
{
    if (static_cast<int>(instr.operations.size()) > params.vliwWidth) {
        throwError(ErrorCode::encodeError,
                   format("bundle with %zu operations exceeds VLIW width "
                          "%d (assembler must split bundles first)",
                          instr.operations.size(), params.vliwWidth));
    }
    checkUnsignedField(static_cast<uint64_t>(instr.preInterval),
                       static_cast<unsigned>(params.preIntervalWidth), "PI");
    uint64_t word = 0;
    word = insertBits(word, 31, 31, 1);
    word = insertBits(word, 2, 0, static_cast<uint64_t>(instr.preInterval));
    // Slot 0 occupies [30:17], slot 1 occupies [16:3].
    const unsigned slot_hi[2] = {30, 16};
    for (size_t slot = 0; slot < 2; ++slot) {
        QuantumOperation op; // defaults to QNOP
        if (slot < instr.operations.size())
            op = instr.operations[slot];
        checkUnsignedField(static_cast<uint64_t>(op.opcode),
                           static_cast<unsigned>(params.qOpcodeWidth),
                           "q opcode");
        checkRegister(op.targetReg, params.numSRegisters,
                      "bundle target register");
        unsigned hi = slot_hi[slot];
        word = insertBits(word, hi, hi - 8,
                          static_cast<uint64_t>(op.opcode));
        word = insertBits(word, hi - 9, hi - 13,
                          static_cast<uint64_t>(op.targetReg));
    }
    return static_cast<uint32_t>(word);
}

} // namespace

uint32_t
encode(const Instruction &instr, const InstantiationParams &params)
{
    if (instr.kind == InstrKind::bundle)
        return encodeBundle(instr, params);

    uint64_t word = 0;
    word = insertBits(word, kOpcodeHi, kOpcodeLo,
                      opcodeForInstrKind(instr.kind));
    switch (instr.kind) {
      case InstrKind::nop:
      case InstrKind::stop:
        break;
      case InstrKind::cmp:
        checkRegister(instr.rs, params.numGprs, "GPR");
        checkRegister(instr.rt, params.numGprs, "GPR");
        word = insertBits(word, 24, 20, static_cast<uint64_t>(instr.rs));
        word = insertBits(word, 19, 15, static_cast<uint64_t>(instr.rt));
        break;
      case InstrKind::br:
        checkSignedField(instr.imm,
                         static_cast<unsigned>(params.branchOffsetWidth),
                         "branch offset");
        word = insertBits(word, 24, 21,
                          static_cast<uint64_t>(instr.cond));
        word = insertBits(word, 20, 0,
                          static_cast<uint64_t>(instr.imm) &
                              bitMask(20, 0));
        break;
      case InstrKind::fbr:
        checkRegister(instr.rd, params.numGprs, "GPR");
        word = insertBits(word, 24, 21,
                          static_cast<uint64_t>(instr.cond));
        word = insertBits(word, 20, 16, static_cast<uint64_t>(instr.rd));
        break;
      case InstrKind::ldi:
        checkRegister(instr.rd, params.numGprs, "GPR");
        checkSignedField(instr.imm,
                         static_cast<unsigned>(params.ldiImmWidth),
                         "LDI immediate");
        word = insertBits(word, 24, 20, static_cast<uint64_t>(instr.rd));
        word = insertBits(word, 19, 0,
                          static_cast<uint64_t>(instr.imm) &
                              bitMask(19, 0));
        break;
      case InstrKind::ldui:
        checkRegister(instr.rd, params.numGprs, "GPR");
        checkRegister(instr.rs, params.numGprs, "GPR");
        checkUnsignedField(static_cast<uint64_t>(instr.imm),
                           static_cast<unsigned>(params.lduiImmWidth),
                           "LDUI immediate");
        word = insertBits(word, 24, 20, static_cast<uint64_t>(instr.rd));
        word = insertBits(word, 19, 15, static_cast<uint64_t>(instr.rs));
        word = insertBits(word, 14, 0, static_cast<uint64_t>(instr.imm));
        break;
      case InstrKind::ld:
      case InstrKind::st: {
        int data_reg = instr.kind == InstrKind::ld ? instr.rd : instr.rs;
        checkRegister(data_reg, params.numGprs, "GPR");
        checkRegister(instr.rt, params.numGprs, "GPR");
        checkSignedField(instr.imm,
                         static_cast<unsigned>(params.memOffsetWidth),
                         "memory offset");
        word = insertBits(word, 24, 20, static_cast<uint64_t>(data_reg));
        word = insertBits(word, 19, 15, static_cast<uint64_t>(instr.rt));
        word = insertBits(word, 14, 0,
                          static_cast<uint64_t>(instr.imm) &
                              bitMask(14, 0));
        break;
      }
      case InstrKind::fmr:
        checkRegister(instr.rd, params.numGprs, "GPR");
        checkUnsignedField(static_cast<uint64_t>(instr.qubit), 5,
                           "qubit address");
        word = insertBits(word, 24, 20, static_cast<uint64_t>(instr.rd));
        word = insertBits(word, 19, 15,
                          static_cast<uint64_t>(instr.qubit));
        break;
      case InstrKind::logicAnd:
      case InstrKind::logicOr:
      case InstrKind::logicXor:
      case InstrKind::add:
      case InstrKind::sub:
        checkRegister(instr.rd, params.numGprs, "GPR");
        checkRegister(instr.rs, params.numGprs, "GPR");
        checkRegister(instr.rt, params.numGprs, "GPR");
        word = insertBits(word, 24, 20, static_cast<uint64_t>(instr.rd));
        word = insertBits(word, 19, 15, static_cast<uint64_t>(instr.rs));
        word = insertBits(word, 14, 10, static_cast<uint64_t>(instr.rt));
        break;
      case InstrKind::logicNot:
        checkRegister(instr.rd, params.numGprs, "GPR");
        checkRegister(instr.rt, params.numGprs, "GPR");
        word = insertBits(word, 24, 20, static_cast<uint64_t>(instr.rd));
        word = insertBits(word, 14, 10, static_cast<uint64_t>(instr.rt));
        break;
      case InstrKind::qwait:
        checkUnsignedField(static_cast<uint64_t>(instr.imm),
                           static_cast<unsigned>(params.qwaitImmWidth),
                           "QWAIT immediate");
        word = insertBits(word, 19, 0, static_cast<uint64_t>(instr.imm));
        break;
      case InstrKind::qwaitr:
        checkRegister(instr.rs, params.numGprs, "GPR");
        word = insertBits(word, 19, 15, static_cast<uint64_t>(instr.rs));
        break;
      case InstrKind::smis:
      case InstrKind::smit: {
        // Wide-chip mask format: a word carries a 16-bit mask chunk in
        // [15:0] plus a 3-bit segment index in [18:16]; segment 0 sets
        // the target register, segment k ORs chunk << 16k into it. For
        // masks that fit 16 bits the segment is 0 and the word is
        // bit-identical to the original seven-qubit encoding (the
        // assembler splits wider masks into consecutive words).
        bool is_smis = instr.kind == InstrKind::smis;
        checkRegister(instr.targetReg,
                      is_smis ? params.numSRegisters
                              : params.numTRegisters,
                      is_smis ? "S register" : "T register");
        checkUnsignedField(instr.mask, 16,
                           is_smis ? "qubit mask chunk"
                                   : "qubit pair mask chunk");
        // The field holds 3 bits, but 64-bit mask registers cap the
        // usable segments at 4 (qubit/edge addresses < 64).
        checkUnsignedField(static_cast<uint64_t>(instr.maskSegment), 2,
                           "mask segment");
        int chip_width = is_smis ? params.sMaskWidth : params.tMaskWidth;
        checkUnsignedField(expandMaskSegment(instr.mask,
                                             instr.maskSegment),
                           static_cast<unsigned>(chip_width),
                           is_smis ? "qubit mask" : "qubit pair mask");
        word = insertBits(word, 24, 20,
                          static_cast<uint64_t>(instr.targetReg));
        word = insertBits(word, 18, 16,
                          static_cast<uint64_t>(instr.maskSegment));
        word = insertBits(word, 15, 0, instr.mask);
        break;
      }
      case InstrKind::bundle:
        EQASM_ASSERT(false, "unreachable");
    }
    return static_cast<uint32_t>(word);
}

std::vector<uint32_t>
encodeProgram(const std::vector<Instruction> &program,
              const InstantiationParams &params)
{
    std::vector<uint32_t> image;
    image.reserve(program.size());
    for (const Instruction &instr : program)
        image.push_back(encode(instr, params));
    return image;
}

Instruction
decode(uint32_t word, const InstantiationParams &params,
       const OperationSet &ops)
{
    Instruction instr;
    if (bit(word, 31)) {
        instr.kind = InstrKind::bundle;
        instr.preInterval = static_cast<int>(bits(word, 2, 0));
        const unsigned slot_hi[2] = {30, 16};
        for (unsigned hi : slot_hi) {
            int opcode = static_cast<int>(bits(word, hi, hi - 8));
            int reg = static_cast<int>(bits(word, hi - 9, hi - 13));
            const OperationInfo *info = ops.findByOpcode(opcode);
            if (info == nullptr) {
                throwError(ErrorCode::parseError,
                           format("q opcode %d is not configured", opcode));
            }
            QuantumOperation op;
            op.name = info->name;
            op.opcode = opcode;
            op.opClass = info->opClass;
            op.targetKind = targetKindForClass(info->opClass);
            op.targetReg = reg;
            instr.operations.push_back(std::move(op));
        }
        return instr;
    }

    auto opcode = static_cast<uint8_t>(bits(word, kOpcodeHi, kOpcodeLo));
    auto kind = instrKindForOpcode(opcode);
    if (!kind) {
        throwError(ErrorCode::parseError,
                   format("unknown opcode 0x%02x", opcode));
    }
    instr.kind = *kind;
    switch (instr.kind) {
      case InstrKind::nop:
      case InstrKind::stop:
        break;
      case InstrKind::cmp:
        instr.rs = static_cast<int>(bits(word, 24, 20));
        instr.rt = static_cast<int>(bits(word, 19, 15));
        break;
      case InstrKind::br:
        instr.cond = static_cast<CondFlag>(bits(word, 24, 21));
        instr.imm = signExtend(bits(word, 20, 0), 21);
        break;
      case InstrKind::fbr:
        instr.cond = static_cast<CondFlag>(bits(word, 24, 21));
        instr.rd = static_cast<int>(bits(word, 20, 16));
        break;
      case InstrKind::ldi:
        instr.rd = static_cast<int>(bits(word, 24, 20));
        instr.imm = signExtend(bits(word, 19, 0), 20);
        break;
      case InstrKind::ldui:
        instr.rd = static_cast<int>(bits(word, 24, 20));
        instr.rs = static_cast<int>(bits(word, 19, 15));
        instr.imm = static_cast<int64_t>(bits(word, 14, 0));
        break;
      case InstrKind::ld:
        instr.rd = static_cast<int>(bits(word, 24, 20));
        instr.rt = static_cast<int>(bits(word, 19, 15));
        instr.imm = signExtend(bits(word, 14, 0), 15);
        break;
      case InstrKind::st:
        instr.rs = static_cast<int>(bits(word, 24, 20));
        instr.rt = static_cast<int>(bits(word, 19, 15));
        instr.imm = signExtend(bits(word, 14, 0), 15);
        break;
      case InstrKind::fmr:
        instr.rd = static_cast<int>(bits(word, 24, 20));
        instr.qubit = static_cast<int>(bits(word, 19, 15));
        break;
      case InstrKind::logicAnd:
      case InstrKind::logicOr:
      case InstrKind::logicXor:
      case InstrKind::add:
      case InstrKind::sub:
        instr.rd = static_cast<int>(bits(word, 24, 20));
        instr.rs = static_cast<int>(bits(word, 19, 15));
        instr.rt = static_cast<int>(bits(word, 14, 10));
        break;
      case InstrKind::logicNot:
        instr.rd = static_cast<int>(bits(word, 24, 20));
        instr.rt = static_cast<int>(bits(word, 14, 10));
        break;
      case InstrKind::qwait:
        instr.imm = static_cast<int64_t>(bits(word, 19, 0));
        break;
      case InstrKind::qwaitr:
        instr.rs = static_cast<int>(bits(word, 19, 15));
        break;
      case InstrKind::smis:
      case InstrKind::smit:
        instr.targetReg = static_cast<int>(bits(word, 24, 20));
        instr.maskSegment = static_cast<int>(bits(word, 18, 16));
        if (instr.maskSegment > 3) {
            // The encoder never emits segments 4..7 (64-bit target
            // registers); reject them like any other malformed field
            // instead of letting shifts alias downstream.
            throwError(ErrorCode::parseError,
                       format("mask segment %d exceeds the 64-bit "
                              "target registers",
                              instr.maskSegment));
        }
        instr.mask = bits(word, 15, 0);
        break;
      case InstrKind::bundle:
        EQASM_ASSERT(false, "unreachable");
    }
    (void)params;
    return instr;
}

std::vector<Instruction>
decodeProgram(const std::vector<uint32_t> &image,
              const InstantiationParams &params, const OperationSet &ops)
{
    std::vector<Instruction> program;
    program.reserve(image.size());
    for (uint32_t word : image)
        program.push_back(decode(word, params, ops));
    return program;
}

} // namespace eqasm::isa
