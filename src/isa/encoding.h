/**
 * @file
 * Binary encoding of the 32-bit eQASM instantiation (Fig. 8).
 *
 * Two instruction formats exist:
 *
 *  - single format, bit 31 = '0': a 6-bit opcode in bits [30:25]
 *    followed by kind-specific fields. Covers all auxiliary classical
 *    instructions and SMIS/SMIT/QWAIT/QWAITR.
 *  - bundle format, bit 31 = '1': two 14-bit VLIW slots (9-bit q opcode
 *    + 5-bit target register address each) and a 3-bit PI field:
 *
 *        [31] = 1 | [30:22] q_op0 | [21:17] reg0
 *                 | [16:8]  q_op1 | [7:3]   reg1 | [2:0] PI
 *
 * The paper leaves the classical formats to the instantiation ("For
 * brevity, we only present the format of quantum instructions"); the
 * field layout chosen here is documented with each encode function.
 */
#ifndef EQASM_ISA_ENCODING_H
#define EQASM_ISA_ENCODING_H

#include <cstdint>
#include <vector>

#include "isa/instruction.h"
#include "isa/opcodes.h"
#include "isa/operation_set.h"

namespace eqasm::isa {

/**
 * Encodes one instruction into a 32-bit word.
 *
 * The instruction must already be in machine form: branch targets
 * resolved to offsets, SMIS/SMIT masks computed, and bundles split so
 * that operations().size() <= params.vliwWidth (the assembler performs
 * the splitting; see Section 3.4.2).
 *
 * @throws Error{encodeError} when a field does not fit its width.
 */
uint32_t encode(const Instruction &instr, const InstantiationParams &params);

/** Encodes a whole program. */
std::vector<uint32_t> encodeProgram(const std::vector<Instruction> &program,
                                    const InstantiationParams &params);

/**
 * Decodes a 32-bit word. Bundle slots are resolved against @p ops so the
 * decoded instruction carries mnemonics and operand kinds; trailing QNOP
 * slots are preserved (the microarchitecture ignores them).
 *
 * @throws Error{parseError} on an unknown opcode or q opcode.
 */
Instruction decode(uint32_t word, const InstantiationParams &params,
                   const OperationSet &ops);

/** Decodes a whole program image. */
std::vector<Instruction> decodeProgram(const std::vector<uint32_t> &image,
                                       const InstantiationParams &params,
                                       const OperationSet &ops);

} // namespace eqasm::isa

#endif // EQASM_ISA_ENCODING_H
