#include "isa/operation_set.h"

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::isa {

std::string_view
opClassName(OpClass op_class)
{
    switch (op_class) {
      case OpClass::qnop: return "qnop";
      case OpClass::singleQubit: return "single_qubit";
      case OpClass::twoQubit: return "two_qubit";
      case OpClass::measurement: return "measurement";
    }
    return "unknown";
}

std::string_view
execFlagName(ExecFlag flag)
{
    switch (flag) {
      case ExecFlag::always: return "always";
      case ExecFlag::lastOne: return "last_one";
      case ExecFlag::lastZero: return "last_zero";
      case ExecFlag::lastTwoSame: return "last_two_same";
    }
    return "unknown";
}

std::optional<ExecFlag>
parseExecFlag(std::string_view name)
{
    std::string lower = toLower(name);
    for (int i = 0; i < kNumExecFlags; ++i) {
        auto flag = static_cast<ExecFlag>(i);
        if (lower == execFlagName(flag))
            return flag;
    }
    return std::nullopt;
}

std::string_view
channelName(Channel channel)
{
    switch (channel) {
      case Channel::none: return "none";
      case Channel::microwave: return "microwave";
      case Channel::flux: return "flux";
      case Channel::readout: return "readout";
    }
    return "unknown";
}

std::optional<Channel>
parseChannel(std::string_view name)
{
    std::string lower = toLower(name);
    if (lower == "none")
        return Channel::none;
    if (lower == "microwave")
        return Channel::microwave;
    if (lower == "flux")
        return Channel::flux;
    if (lower == "readout")
        return Channel::readout;
    return std::nullopt;
}

namespace {
std::optional<OpClass>
parseOpClass(std::string_view name)
{
    std::string lower = toLower(name);
    if (lower == "qnop")
        return OpClass::qnop;
    if (lower == "single_qubit")
        return OpClass::singleQubit;
    if (lower == "two_qubit")
        return OpClass::twoQubit;
    if (lower == "measurement")
        return OpClass::measurement;
    return std::nullopt;
}
} // namespace

void
OperationSet::add(OperationInfo info)
{
    std::string key = toUpper(info.name);
    if (key.empty())
        throwError(ErrorCode::configError, "operation needs a name");
    if (byName_.count(key)) {
        throwError(ErrorCode::configError,
                   format("duplicate operation name '%s'",
                          info.name.c_str()));
    }
    if (info.opcode < 0 || info.opcode >= (1 << 9)) {
        throwError(ErrorCode::configError,
                   format("q opcode %d of '%s' does not fit in 9 bits",
                          info.opcode, info.name.c_str()));
    }
    if ((info.opcode == 0) != (info.opClass == OpClass::qnop)) {
        throwError(ErrorCode::configError,
                   "q opcode 0 is reserved for (and required by) QNOP");
    }
    if (byOpcode_.count(info.opcode)) {
        throwError(ErrorCode::configError,
                   format("duplicate q opcode %d ('%s')", info.opcode,
                          info.name.c_str()));
    }
    if (info.opClass != OpClass::singleQubit &&
        info.condition != ExecFlag::always) {
        // Fast conditional execution gates single-qubit micro-operations
        // only (Section 3.5); cancelling one half of a two-qubit gate
        // would corrupt the other qubit.
        throwError(ErrorCode::configError,
                   format("operation '%s': only single-qubit operations "
                          "may be conditional",
                          info.name.c_str()));
    }
    if (info.durationCycles <= 0 && info.opClass != OpClass::qnop) {
        throwError(ErrorCode::configError,
                   format("operation '%s' needs a positive duration",
                          info.name.c_str()));
    }
    byName_[key] = ops_.size();
    byOpcode_[info.opcode] = ops_.size();
    info.id = static_cast<int>(ops_.size());
    ops_.push_back(std::move(info));
}

const OperationInfo *
OperationSet::findByName(std::string_view name) const
{
    auto it = byName_.find(toUpper(name));
    return it == byName_.end() ? nullptr : &ops_[it->second];
}

const OperationInfo *
OperationSet::findByOpcode(int opcode) const
{
    auto it = byOpcode_.find(opcode);
    return it == byOpcode_.end() ? nullptr : &ops_[it->second];
}

const OperationInfo &
OperationSet::byName(std::string_view name) const
{
    const OperationInfo *info = findByName(name);
    if (info == nullptr) {
        throwError(ErrorCode::notFound,
                   format("quantum operation '%s' is not configured",
                          std::string(name).c_str()));
    }
    return *info;
}

const OperationInfo &
OperationSet::byOpcode(int opcode) const
{
    const OperationInfo *info = findByOpcode(opcode);
    if (info == nullptr) {
        throwError(ErrorCode::notFound,
                   format("q opcode %d is not configured", opcode));
    }
    return *info;
}

OperationSet
OperationSet::defaultSet()
{
    OperationSet set;
    set.add({"QNOP", 0, OpClass::qnop, 0, ExecFlag::always, Channel::none,
             "i"});
    struct Entry {
        const char *name;
        int opcode;
        Channel channel;
        const char *unitary;
    };
    // Single-qubit rotations available on the target transmon processor
    // (Section 4.1): x/y axis rotations by microwave pulses, z rotations
    // by flux pulses.
    const Entry singles[] = {
        {"I", 1, Channel::none, "i"},
        {"X", 2, Channel::microwave, "x"},
        {"Y", 3, Channel::microwave, "y"},
        {"Z", 4, Channel::flux, "z"},
        {"X90", 5, Channel::microwave, "x90"},
        {"Y90", 6, Channel::microwave, "y90"},
        {"Xm90", 7, Channel::microwave, "xm90"},
        {"Ym90", 8, Channel::microwave, "ym90"},
        {"Z90", 9, Channel::flux, "z90"},
        {"Zm90", 10, Channel::flux, "zm90"},
    };
    for (const Entry &entry : singles) {
        set.add({entry.name, entry.opcode, OpClass::singleQubit, 1,
                 ExecFlag::always, entry.channel, entry.unitary});
    }
    // Conditional gates for fast conditional execution: C_X executes
    // iff the last finished measurement of the target qubit was |1>
    // (used for active qubit reset, Fig. 4).
    set.add({"C_X", 24, OpClass::singleQubit, 1, ExecFlag::lastOne,
             Channel::microwave, "x"});
    set.add({"C_Y", 25, OpClass::singleQubit, 1, ExecFlag::lastOne,
             Channel::microwave, "y"});
    // Two-qubit controlled-phase gate: ~40 ns = 2 cycles.
    set.add({"CZ", 32, OpClass::twoQubit, 2, ExecFlag::always,
             Channel::flux, "cz"});
    // Measurement: 300 ns = 15 cycles in the Section 4.2 analysis.
    set.add({"MEASZ", 16, OpClass::measurement, 15, ExecFlag::always,
             Channel::readout, "measz"});
    return set;
}

OperationSet
OperationSet::fromJson(const Json &json)
{
    OperationSet set;
    set.add({"QNOP", 0, OpClass::qnop, 0, ExecFlag::always, Channel::none,
             "i"});
    for (const Json &entry : json.at("operations").asArray()) {
        OperationInfo info;
        info.name = entry.at("name").asString();
        if (toUpper(info.name) == "QNOP")
            continue; // implied
        info.opcode = static_cast<int>(entry.at("opcode").asInt());
        auto op_class = parseOpClass(
            entry.getString("class", "single_qubit"));
        if (!op_class) {
            throwError(ErrorCode::configError,
                       format("operation '%s': bad class",
                              info.name.c_str()));
        }
        info.opClass = *op_class;
        info.durationCycles =
            static_cast<int>(entry.getInt("duration", 1));
        auto condition = parseExecFlag(
            entry.getString("condition", "always"));
        if (!condition) {
            throwError(ErrorCode::configError,
                       format("operation '%s': bad condition",
                              info.name.c_str()));
        }
        info.condition = *condition;
        auto channel = parseChannel(
            entry.getString("channel", "microwave"));
        if (!channel) {
            throwError(ErrorCode::configError,
                       format("operation '%s': bad channel",
                              info.name.c_str()));
        }
        info.channel = *channel;
        info.unitary = entry.getString("unitary", "i");
        set.add(std::move(info));
    }
    return set;
}

Json
OperationSet::toJson() const
{
    Json ops = Json::makeArray();
    for (const OperationInfo &info : ops_) {
        if (info.opClass == OpClass::qnop)
            continue;
        Json entry = Json::makeObject();
        entry.set("name", info.name);
        entry.set("opcode", static_cast<int64_t>(info.opcode));
        entry.set("class", std::string(opClassName(info.opClass)));
        entry.set("duration", static_cast<int64_t>(info.durationCycles));
        entry.set("condition", std::string(execFlagName(info.condition)));
        entry.set("channel", std::string(channelName(info.channel)));
        entry.set("unitary", info.unitary);
        ops.append(std::move(entry));
    }
    Json out = Json::makeObject();
    out.set("operations", std::move(ops));
    return out;
}

} // namespace eqasm::isa
