/**
 * @file
 * The compile-time-configurable quantum operation set (Section 3.2).
 *
 * eQASM does not fix quantum operations at QISA design time. Instead the
 * programmer configures, per program, the mapping
 *
 *     assembly mnemonic  ->  q opcode  ->  micro-operation(s)  ->  pulse
 *
 * and "the assembler, the microcode unit, and the pulse generator should
 * be configured consistently at compile time". OperationSet is that
 * single consistent configuration object: the assembler resolves
 * mnemonics through it, the microarchitecture's microcode unit (Q control
 * store) expands opcodes through it, and the simulated device interprets
 * the resulting micro-operation codewords through it.
 */
#ifndef EQASM_ISA_OPERATION_SET_H
#define EQASM_ISA_OPERATION_SET_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace eqasm::isa {

/** Structural class of a configured quantum operation. */
enum class OpClass {
    qnop,         ///< no-operation filler (q opcode 0).
    singleQubit,  ///< one micro-op applied to each masked qubit.
    twoQubit,     ///< src/tgt micro-op pair applied to each masked edge.
    measurement,  ///< readout; invalidates Qi and returns a result later.
};

/** @return a stable lower-case name for @p op_class. */
std::string_view opClassName(OpClass op_class);

/**
 * Execution-flag selector for fast conditional execution (Sections 3.5
 * and 4.3). The instantiation defines four combinatorial flag types;
 * `always` is the mandatory default that is constant '1'.
 */
enum class ExecFlag : uint8_t {
    always = 0,       ///< unconditional execution.
    lastOne = 1,      ///< '1' iff the last finished measurement was |1>.
    lastZero = 2,     ///< '1' iff the last finished measurement was |0>.
    lastTwoSame = 3,  ///< '1' iff the last two measurements agreed.
};

inline constexpr int kNumExecFlags = 4;

/** @return the configuration name of @p flag ("always", ...). */
std::string_view execFlagName(ExecFlag flag);

/** Parses an execution-flag name. */
std::optional<ExecFlag> parseExecFlag(std::string_view name);

/** Analog-digital-interface channel driven by an operation (Fig. 10). */
enum class Channel {
    none,       ///< QNOP / identity-like operations.
    microwave,  ///< HDAWG + VSM microwave drive (x/y rotations).
    flux,       ///< flux AWG (z rotations, CZ).
    readout,    ///< UHFQC measurement pulse.
};

std::string_view channelName(Channel channel);
std::optional<Channel> parseChannel(std::string_view name);

/**
 * One configured quantum operation. `unitary` carries the pulse
 * semantics for the simulated device in a small gate language:
 * "i", "x", "y", "z", "x90", "y90", "xm90", "ym90", "z90", "zm90",
 * "h", "cz", "cnot", "swap", "measz", or parametric "rx:<deg>",
 * "ry:<deg>", "rz:<deg>" (used e.g. by the Rabi amplitude sweep).
 */
struct OperationInfo {
    std::string name;             ///< assembly mnemonic (case-insensitive).
    int opcode = 0;               ///< q opcode (9 bits; 0 reserved: QNOP).
    OpClass opClass = OpClass::singleQubit;
    int durationCycles = 1;       ///< cycles the operation occupies.
    ExecFlag condition = ExecFlag::always;  ///< FCE flag selector.
    Channel channel = Channel::microwave;
    std::string unitary = "i";    ///< pulse semantics (see above).

    /**
     * Stable dense id assigned by OperationSet::add (the operation's
     * registration index; copies of a set keep the ids). The simulated
     * device uses it to index a pre-resolved gate table instead of
     * re-looking the unitary string up on every triggered operation.
     * -1 on an OperationInfo never registered with a set, for which
     * devices fall back to string-keyed resolution.
     */
    int id = -1;
};

/**
 * A consistent set of configured quantum operations with lookup by
 * mnemonic and by opcode.
 */
class OperationSet
{
  public:
    OperationSet() = default;

    /**
     * Registers an operation.
     * @throws Error{configError} on duplicate name/opcode, opcode
     *         overflow, a non-QNOP with opcode 0, a conditional
     *         two-qubit operation (FCE is restricted to single-qubit
     *         operations per Section 3.5), or a non-positive duration.
     */
    void add(OperationInfo info);

    /** @return the operation named @p name (case-insensitive), if any. */
    const OperationInfo *findByName(std::string_view name) const;

    /** @return the operation with q opcode @p opcode, if any. */
    const OperationInfo *findByOpcode(int opcode) const;

    /** Like findByName but throws Error{notFound}. */
    const OperationInfo &byName(std::string_view name) const;

    /** Like findByOpcode but throws Error{notFound}. */
    const OperationInfo &byOpcode(int opcode) const;

    /** All operations in registration order (QNOP first). */
    const std::vector<OperationInfo> &operations() const { return ops_; }

    size_t size() const { return ops_.size(); }

    /**
     * The operation set configured for the Section 5 experiments:
     * {I, X, Y, Z, X90, Y90, Xm90, Ym90, Z90, Zm90}, the two-qubit CZ,
     * MEASZ, and the conditional gates C_X / C_Y (execute iff the last
     * measurement returned |1>) used by active qubit reset.
     */
    static OperationSet defaultSet();

    /**
     * Loads a set from JSON:
     * {"operations": [{"name": "X90", "opcode": 5, "class":
     *  "single_qubit", "duration": 1, "condition": "always",
     *  "channel": "microwave", "unitary": "x90"}, ...]}.
     * A QNOP entry is implied and need not be listed.
     */
    static OperationSet fromJson(const Json &json);

    /** Serialises to the fromJson() schema. */
    Json toJson() const;

  private:
    std::vector<OperationInfo> ops_;
    std::map<std::string, size_t> byName_;
    std::map<int, size_t> byOpcode_;
};

} // namespace eqasm::isa

#endif // EQASM_ISA_OPERATION_SET_H
