/**
 * @file
 * Instruction kinds, comparison flags and the fixed binary opcode
 * assignments of the 32-bit eQASM instantiation (Section 4.2).
 *
 * eQASM separates the assembly-level definition (Table 1 of the paper)
 * from the instantiated binary format (Fig. 8). The enumerations here
 * cover the assembly level; the numeric opcode constants belong to the
 * seven-qubit instantiation. Quantum operation opcodes (q opcodes) are
 * deliberately NOT listed here: they are configured at compile time
 * through isa::OperationSet (Section 3.2 of the paper).
 */
#ifndef EQASM_ISA_OPCODES_H
#define EQASM_ISA_OPCODES_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace eqasm::isa {

/**
 * Assembly-level instruction kinds (Table 1), plus NOP/STOP which any
 * real instantiation needs (QWAIT 0 doubles as a NOP per Section 3.1.3,
 * but an explicit NOP costs nothing and STOP terminates execution).
 */
enum class InstrKind {
    // Auxiliary classical instructions.
    nop,
    stop,
    cmp,     ///< CMP Rs, Rt — set all comparison flags.
    br,      ///< BR <flag>, Offset — PC-relative conditional branch.
    fbr,     ///< FBR <flag>, Rd — fetch a comparison flag into a GPR.
    ldi,     ///< LDI Rd, Imm — Rd = sign_ext(Imm[19:0], 32).
    ldui,    ///< LDUI Rd, Imm, Rs — Rd = Imm[14:0] :: Rs[16:0].
    ld,      ///< LD Rd, Rt(Imm) — load from data memory.
    st,      ///< ST Rs, Rt(Imm) — store to data memory.
    fmr,     ///< FMR Rd, Qi — fetch last measurement result (may stall).
    logicAnd,
    logicOr,
    logicXor,
    logicNot,
    add,
    sub,
    // Quantum instructions.
    qwait,   ///< QWAIT Imm — advance the timeline by Imm cycles.
    qwaitr,  ///< QWAITR Rs — advance the timeline by GPR Rs cycles.
    smis,    ///< SMIS Sd, {qubits} — set single-qubit target register.
    smit,    ///< SMIT Td, {(pairs)} — set two-qubit target register.
    bundle,  ///< [PI,] op reg [| op reg]* — quantum bundle.
};

/** @return the canonical assembly mnemonic for @p kind. */
std::string_view instrKindName(InstrKind kind);

/** @return true for QWAIT/QWAITR/SMIS/SMIT/bundle. */
bool isQuantum(InstrKind kind);

/**
 * Comparison flags written by CMP and consumed by BR/FBR.
 *
 * ALWAYS/NEVER are constant pseudo-flags so unconditional jumps need no
 * separate opcode (the Fig. 5 example uses "BR ALWAYS, next").
 */
enum class CondFlag : uint8_t {
    always = 0,
    never = 1,
    eq = 2,
    ne = 3,
    ltu = 4,   ///< unsigned <
    geu = 5,   ///< unsigned >=
    leu = 6,   ///< unsigned <=
    gtu = 7,   ///< unsigned >
    lt = 8,    ///< signed <
    ge = 9,    ///< signed >=
    le = 10,   ///< signed <=
    gt = 11,   ///< signed >
};

/** Number of distinct comparison flags (encoding width is 4 bits). */
inline constexpr int kNumCondFlags = 12;

/** @return assembly name ("EQ", "ALWAYS", ...) of @p flag. */
std::string_view condFlagName(CondFlag flag);

/** Parses a comparison flag name (case-insensitive). */
std::optional<CondFlag> parseCondFlag(std::string_view name);

/**
 * Binary opcodes of single-format (bit 31 = '0') instructions in the
 * seven-qubit instantiation. Six bits wide (Fig. 8). The split mirrors
 * the figure: quantum single-format instructions occupy the upper half
 * of the opcode space.
 */
enum class SingleOpcode : uint8_t {
    nop = 0x00,
    stop = 0x01,
    add = 0x02,
    sub = 0x03,
    logicAnd = 0x04,
    logicOr = 0x05,
    logicXor = 0x06,
    logicNot = 0x07,
    cmp = 0x08,
    br = 0x09,
    fbr = 0x0a,
    ldi = 0x0b,
    ldui = 0x0c,
    ld = 0x0d,
    st = 0x0e,
    fmr = 0x0f,
    smis = 0x20,
    smit = 0x28,
    qwait = 0x30,
    qwaitr = 0x38,
};

/** Maps a single-format opcode back to its instruction kind. */
std::optional<InstrKind> instrKindForOpcode(uint8_t opcode);

/** Maps an instruction kind to its single-format opcode. */
uint8_t opcodeForInstrKind(InstrKind kind);

/**
 * Architectural constants of the eQASM definition and of the 32-bit
 * seven-qubit instantiation (Section 4.2): register file sizes, field
 * widths and the chosen design point (Config 9: ts3, wPI = 3, SOMQ,
 * VLIW width w = 2).
 */
struct InstantiationParams {
    int numGprs = 32;             ///< 32-bit general purpose registers.
    int numSRegisters = 32;       ///< single-qubit target registers.
    int numTRegisters = 32;       ///< two-qubit target registers.
    int numQubits = 7;            ///< physical qubits on the target chip.
    int numEdges = 16;            ///< allowed (directed) qubit pairs.
    int vliwWidth = 2;            ///< quantum ops per bundle instruction.
    int preIntervalWidth = 3;     ///< wPI — bits of the PI field.
    int sMaskWidth = 7;           ///< SMIS qubit-mask width.
    int tMaskWidth = 16;          ///< SMIT pair-mask width.
    int targetRegAddrWidth = 5;   ///< Sd/Td field width.
    int qOpcodeWidth = 9;         ///< q opcode field width.
    int qwaitImmWidth = 20;       ///< QWAIT immediate width.
    int ldiImmWidth = 20;         ///< LDI immediate width.
    int lduiImmWidth = 15;        ///< LDUI immediate width.
    int memOffsetWidth = 15;      ///< LD/ST offset width.
    int branchOffsetWidth = 21;   ///< BR offset width (signed).

    /** @return the largest PI value encodable in the bundle format. */
    int maxPreInterval() const { return (1 << preIntervalWidth) - 1; }
};

} // namespace eqasm::isa

#endif // EQASM_ISA_OPCODES_H
