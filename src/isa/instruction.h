/**
 * @file
 * In-memory representation of eQASM instructions (Table 1).
 *
 * A single Instruction struct covers all instruction kinds; which fields
 * are meaningful depends on `kind`. This flat representation keeps the
 * decoder, assembler and microarchitecture simple and is cheap enough
 * for the program sizes involved.
 */
#ifndef EQASM_ISA_INSTRUCTION_H
#define EQASM_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcodes.h"
#include "isa/operation_set.h"

namespace eqasm::isa {

/** One quantum operation slot inside a bundle. */
struct QuantumOperation {
    /** Whether the operand names an S register, a T register or nothing
     *  (QNOP). Derived from the operation's OpClass. */
    enum class TargetKind { none, sreg, treg };

    std::string name;       ///< configured mnemonic, e.g. "X90".
    int opcode = 0;         ///< resolved q opcode.
    OpClass opClass = OpClass::qnop;
    TargetKind targetKind = TargetKind::none;
    int targetReg = 0;      ///< S/T register address.

    bool isQnop() const { return opClass == OpClass::qnop; }
};

/** @return the operand register kind implied by @p op_class. */
QuantumOperation::TargetKind targetKindForClass(OpClass op_class);

/**
 * A decoded/parsed eQASM instruction. Field usage by kind:
 *
 *   CMP           rs, rt
 *   BR            cond, imm (signed offset), label (unresolved operand)
 *   FBR           cond, rd
 *   LDI           rd, imm (20-bit signed)
 *   LDUI          rd, imm (15-bit unsigned), rs
 *   LD / ST       rd/rs, rt, imm (15-bit signed offset)
 *   FMR           rd, qubit
 *   AND/OR/XOR    rd, rs, rt       NOT rd, rt
 *   ADD/SUB       rd, rs, rt
 *   QWAIT         imm (20-bit unsigned)       QWAITR rs
 *   SMIS          targetReg, mask (one bit per qubit)
 *   SMIT          targetReg, mask (one bit per edge address)
 *   bundle        preInterval, operations
 */
struct Instruction {
    InstrKind kind = InstrKind::nop;

    int rd = 0;
    int rs = 0;
    int rt = 0;
    int64_t imm = 0;
    CondFlag cond = CondFlag::always;
    int qubit = 0;

    int targetReg = 0;
    uint64_t mask = 0;

    /**
     * SMIS/SMIT wide-mask segment index (wide-chip instantiation). A
     * 32-bit word carries at most 16 mask bits, so chips with more
     * qubits/edges split a target-register write into consecutive
     * words: segment 0 sets the register to its 16-bit chunk, segment
     * k > 0 ORs `mask << 16 k` into it. For the seven-qubit
     * instantiation this is always 0 and the binary format is
     * bit-identical to the original encoding. Instructions built
     * directly (tests, loadProgram) may keep a full 64-bit mask with
     * segment 0.
     */
    int maskSegment = 0;

    int preInterval = 1;
    std::vector<QuantumOperation> operations;

    /** Unresolved symbolic branch target (assembler only). */
    std::string label;
    /** 1-based source line for diagnostics; 0 when synthesised. */
    int sourceLine = 0;

    /** Convenience factories for the common kinds. */
    static Instruction makeNop();
    static Instruction makeStop();
    static Instruction makeLdi(int rd, int64_t imm);
    static Instruction makeQwait(int64_t cycles);
    static Instruction makeQwaitr(int rs);
    static Instruction makeSmis(int sd, uint64_t qubit_mask);
    static Instruction makeSmit(int td, uint64_t edge_mask);
    static Instruction makeBundle(int pre_interval,
                                  std::vector<QuantumOperation> ops);
};

/**
 * Places a wide-mask chunk at its segment's bit position:
 * `chunk << (16 * segment)` (see Instruction::maskSegment). The single
 * authority for the segment rule — encoder, decoder, microarchitecture
 * and disassembler all go through it.
 * @throws Error{invalidArgument} for segments outside 0..3, which
 *         would shift past the 64-bit S/T target registers.
 */
uint64_t expandMaskSegment(uint64_t chunk, int segment);

/**
 * Renders an instruction in canonical eQASM assembly syntax. SMIS/SMIT
 * masks are rendered as qubit lists; pair lists need the chip topology,
 * so SMIT is rendered with edge addresses when no topology is given
 * (the assembler's disassembler passes one).
 */
std::string toString(const Instruction &instr);

} // namespace eqasm::isa

#endif // EQASM_ISA_INSTRUCTION_H
