/**
 * @file
 * Aaronson–Gottesman CHP stabilizer tableau backend.
 *
 * Represents an n-qubit stabilizer state as 2n+1 Pauli rows (n
 * destabilizers, n stabilizers, one scratch row) of X/Z bits plus a
 * phase bit, per "Improved simulation of stabilizer circuits"
 * (arXiv:quant-ph/0406196). Every Clifford gate is O(n) and a
 * measurement is O(n^2), so distance-d rotated surface codes — 2d^2-1
 * qubits — simulate in microseconds per syndrome round where the
 * density matrix backend stops at 8 qubits.
 *
 * Rows are bit-packed into uint64_t words: a gate touches one bit per
 * row, and the measurement-dominating row product (rowsum) runs
 * word-parallel — the Pauli-product phase is accumulated with bitwise
 * masks and popcounts over 64 qubit columns at a time instead of a
 * per-qubit g-function loop. The packed layout is an internal change
 * only: gate semantics, draw counts and therefore every sampled bit
 * are identical to the byte-per-cell representation it replaces.
 *
 * Supported gates are the chip's native Clifford set: the Pauli gates,
 * H/S/Sdg, the +-90/180-degree x/y/z rotations (and "rx:<deg>" etc.
 * strings whose angle reduces to a multiple of 90 degrees), CZ, CNOT
 * and SWAP. Non-Clifford gates raise Error{configError}.
 *
 * Noise is Pauli-twirled: idle T1/T2 decoherence becomes a stochastic
 * X/Y/Z insertion with p_x = p_y = (1-e^{-t/T1})/4 and
 * p_z = (1-e^{-t/T2})/2 - (1-e^{-t/T1})/4, and gate depolarization
 * becomes a uniformly random non-identity Pauli with the configured
 * probability. This is the standard Clifford approximation of the
 * density backend's exact channels (it symmetrises amplitude damping,
 * so |1> decays at half the exact T1 rate); each noise event consumes
 * exactly one uniform draw, keeping shots bitwise-deterministic.
 */
#ifndef EQASM_QSIM_STABILIZER_TABLEAU_H
#define EQASM_QSIM_STABILIZER_TABLEAU_H

#include <cstdint>
#include <string>
#include <vector>

#include "qsim/state_backend.h"

namespace eqasm::qsim {

/** CHP-style stabilizer-state backend. */
class StabilizerTableau : public StateBackend
{
  public:
    /** Initialises |0...0> on @p num_qubits qubits. */
    explicit StabilizerTableau(int num_qubits);

    // --- StateBackend ---
    BackendKind kind() const override { return BackendKind::stabilizer; }
    int numQubits() const override { return numQubits_; }
    void reset() override;
    void resetQubit(int qubit, Rng &rng) override;
    void applyGate1(const Gate &gate, int qubit) override;
    void applyGate2(const Gate &gate, int qubit0, int qubit1) override;
    void applyIdleNoise(int qubit, double duration_ns,
                        const NoiseModel &model, Rng &rng) override;
    void applyGateNoise1(int qubit, const NoiseModel &model,
                         Rng &rng) override;
    void applyGateNoise2(int qubit0, int qubit1, const NoiseModel &model,
                         Rng &rng) override;
    double probabilityOne(int qubit) const override;
    int measure(int qubit, Rng &rng) override;

    /** @return true iff a Z measurement of @p qubit has a predetermined
     *  outcome in the current state. */
    bool isDeterministic(int qubit) const;

    // --- direct Clifford primitives (also used by gate dispatch) ---
    void gateH(int qubit);
    void gateS(int qubit);      ///< Z90 phase gate.
    void gateSdg(int qubit);
    void gateX(int qubit);
    void gateY(int qubit);
    void gateZ(int qubit);
    void gateX90(int qubit);
    void gateXm90(int qubit);
    void gateY90(int qubit);
    void gateYm90(int qubit);
    void gateCnot(int control, int target);
    void gateCz(int qubit0, int qubit1);
    void gateSwap(int qubit0, int qubit1);

    /**
     * Renders stabilizer row @p index (0..n-1) as a sign and a Pauli
     * string with qubit 0 leftmost, e.g. "+XZI". Test/debug aid.
     */
    std::string stabilizerString(int index) const;

  private:
    void checkQubit(int qubit) const;
    /** Row h *= row i (word-parallel Pauli product with phase
     *  tracking). */
    void rowsum(int h, int i);
    /** Applies Pauli @p pauli (1 = X, 2 = Y, 3 = Z) to @p qubit. */
    void applyPauli(int qubit, int pauli);
    /** Resolves a gate name to a Clifford update or throws. */
    void dispatch1(const std::string &name, int qubit);

    // --- packed-row access ---
    uint64_t *xRow(int row)
    {
        return x_.data() + static_cast<size_t>(row) * words_;
    }
    const uint64_t *xRow(int row) const
    {
        return x_.data() + static_cast<size_t>(row) * words_;
    }
    uint64_t *zRow(int row)
    {
        return z_.data() + static_cast<size_t>(row) * words_;
    }
    const uint64_t *zRow(int row) const
    {
        return z_.data() + static_cast<size_t>(row) * words_;
    }
    bool xBit(int row, int qubit) const
    {
        return (xRow(row)[qubit >> 6] >> (qubit & 63)) & 1;
    }
    bool zBit(int row, int qubit) const
    {
        return (zRow(row)[qubit >> 6] >> (qubit & 63)) & 1;
    }

    int numQubits_ = 0;
    int rows_ = 0;   ///< 2n + 1 (destabilizers, stabilizers, scratch).
    int words_ = 0;  ///< uint64_t words per packed row.
    // Row-major bit-packed storage: row r's X (Z) bits live in words
    // [r*words_, (r+1)*words_); bits past numQubits_ in the last word
    // stay zero.
    std::vector<uint64_t> x_, z_;
    std::vector<uint8_t> r_;
};

} // namespace eqasm::qsim

#endif // EQASM_QSIM_STABILIZER_TABLEAU_H
