/**
 * @file
 * Aaronson–Gottesman CHP stabilizer tableau backend.
 *
 * Represents an n-qubit stabilizer state as 2n+1 Pauli rows (n
 * destabilizers, n stabilizers, one scratch row) of X/Z bits plus a
 * phase bit, per "Improved simulation of stabilizer circuits"
 * (arXiv:quant-ph/0406196). Every Clifford gate is O(n) and a
 * measurement is O(n^2), so distance-d rotated surface codes — 2d^2-1
 * qubits — simulate in microseconds per syndrome round where the
 * density matrix backend stops at 8 qubits.
 *
 * Supported gates are the chip's native Clifford set: the Pauli gates,
 * H/S/Sdg, the +-90/180-degree x/y/z rotations (and "rx:<deg>" etc.
 * strings whose angle reduces to a multiple of 90 degrees), CZ, CNOT
 * and SWAP. Non-Clifford gates raise Error{configError}.
 *
 * Noise is Pauli-twirled: idle T1/T2 decoherence becomes a stochastic
 * X/Y/Z insertion with p_x = p_y = (1-e^{-t/T1})/4 and
 * p_z = (1-e^{-t/T2})/2 - (1-e^{-t/T1})/4, and gate depolarization
 * becomes a uniformly random non-identity Pauli with the configured
 * probability. This is the standard Clifford approximation of the
 * density backend's exact channels (it symmetrises amplitude damping,
 * so |1> decays at half the exact T1 rate); each noise event consumes
 * exactly one uniform draw, keeping shots bitwise-deterministic.
 */
#ifndef EQASM_QSIM_STABILIZER_TABLEAU_H
#define EQASM_QSIM_STABILIZER_TABLEAU_H

#include <cstdint>
#include <string>
#include <vector>

#include "qsim/state_backend.h"

namespace eqasm::qsim {

/** CHP-style stabilizer-state backend. */
class StabilizerTableau : public StateBackend
{
  public:
    /** Initialises |0...0> on @p num_qubits qubits. */
    explicit StabilizerTableau(int num_qubits);

    // --- StateBackend ---
    BackendKind kind() const override { return BackendKind::stabilizer; }
    int numQubits() const override { return numQubits_; }
    void reset() override;
    void resetQubit(int qubit, Rng &rng) override;
    void applyGate1(const Gate &gate, int qubit) override;
    void applyGate2(const Gate &gate, int qubit0, int qubit1) override;
    void applyIdleNoise(int qubit, double duration_ns,
                        const NoiseModel &model, Rng &rng) override;
    void applyGateNoise1(int qubit, const NoiseModel &model,
                         Rng &rng) override;
    void applyGateNoise2(int qubit0, int qubit1, const NoiseModel &model,
                         Rng &rng) override;
    double probabilityOne(int qubit) const override;
    int measure(int qubit, Rng &rng) override;

    /** @return true iff a Z measurement of @p qubit has a predetermined
     *  outcome in the current state. */
    bool isDeterministic(int qubit) const;

    // --- direct Clifford primitives (also used by gate dispatch) ---
    void gateH(int qubit);
    void gateS(int qubit);      ///< Z90 phase gate.
    void gateSdg(int qubit);
    void gateX(int qubit);
    void gateY(int qubit);
    void gateZ(int qubit);
    void gateX90(int qubit);
    void gateXm90(int qubit);
    void gateY90(int qubit);
    void gateYm90(int qubit);
    void gateCnot(int control, int target);
    void gateCz(int qubit0, int qubit1);
    void gateSwap(int qubit0, int qubit1);

    /**
     * Renders stabilizer row @p index (0..n-1) as a sign and a Pauli
     * string with qubit 0 leftmost, e.g. "+XZI". Test/debug aid.
     */
    std::string stabilizerString(int index) const;

  private:
    void checkQubit(int qubit) const;
    /** Row h *= row i (Pauli product with phase tracking). */
    void rowsum(int h, int i);
    /** Pauli product phase exponent contribution (Aaronson–Gottesman
     *  g function) for one qubit column. */
    static int phaseG(int x1, int z1, int x2, int z2);
    /** Applies Pauli @p pauli (1 = X, 2 = Y, 3 = Z) to @p qubit. */
    void applyPauli(int qubit, int pauli);
    /** Resolves a gate name to a Clifford update or throws. */
    void dispatch1(const std::string &name, int qubit);

    uint8_t &x(int row, int qubit);
    uint8_t &z(int row, int qubit);
    uint8_t xAt(int row, int qubit) const;
    uint8_t zAt(int row, int qubit) const;

    int numQubits_ = 0;
    int rows_ = 0;  ///< 2n + 1 (destabilizers, stabilizers, scratch).
    // Dense byte-per-cell storage: simple and fast enough for the chip
    // sizes the ISA can address (<= 64 qubits). Bit-packing the rows is
    // the known next optimisation if larger codes ever matter.
    std::vector<uint8_t> x_, z_;
    std::vector<uint8_t> r_;
};

} // namespace eqasm::qsim

#endif // EQASM_QSIM_STABILIZER_TABLEAU_H
