#include "qsim/density_matrix.h"

#include <cmath>

#include "common/error.h"
#include "common/strings.h"
#include "qsim/noise.h"

namespace eqasm::qsim {

DensityMatrix::DensityMatrix(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > 8) {
        throwError(ErrorCode::invalidArgument,
                   format("density matrix supports 1..8 qubits, got %d",
                          num_qubits));
    }
    rho_ = CMatrix(dim(), dim());
    rho_(0, 0) = 1.0;
}

DensityMatrix::DensityMatrix(const StateVector &state)
    : numQubits_(state.numQubits())
{
    if (numQubits_ > 8) {
        throwError(ErrorCode::invalidArgument,
                   "density matrix supports at most 8 qubits");
    }
    rho_ = CMatrix(dim(), dim());
    const auto &amp = state.amplitudes();
    for (size_t i = 0; i < dim(); ++i) {
        for (size_t j = 0; j < dim(); ++j)
            rho_(i, j) = amp[i] * std::conj(amp[j]);
    }
}

void
DensityMatrix::reset()
{
    rho_ = CMatrix(dim(), dim());
    rho_(0, 0) = 1.0;
}

void
DensityMatrix::resetQubit(int qubit)
{
    checkQubit(qubit);
    // Trace out the qubit and re-prepare it in |0>: rho' =
    // P0 rho P0 + X P1 rho P1 X restricted appropriately. Implemented as
    // the amplitude-damping channel with gamma = 1.
    CMatrix k0(2, 2, {1.0, 0.0, 0.0, 0.0});
    CMatrix k1(2, 2, {0.0, 1.0, 0.0, 0.0});
    applyChannel1({k0, k1}, qubit);
}

void
DensityMatrix::checkQubit(int qubit) const
{
    if (qubit < 0 || qubit >= numQubits_) {
        throwError(ErrorCode::invalidArgument,
                   format("qubit %d out of range [0, %d)", qubit,
                          numQubits_));
    }
}

void
DensityMatrix::applyGate1(const CMatrix &unitary, int qubit)
{
    checkQubit(qubit);
    EQASM_ASSERT(unitary.rows() == 2 && unitary.cols() == 2,
                 "applyGate1 needs a 2x2 matrix");
    size_t stride = size_t{1} << qubit;
    size_t n = dim();
    // Left multiply: rows mix in pairs differing in the qubit bit.
    for (size_t col = 0; col < n; ++col) {
        for (size_t base = 0; base < n; base += 2 * stride) {
            for (size_t offset = 0; offset < stride; ++offset) {
                size_t r0 = base + offset;
                size_t r1 = r0 + stride;
                Complex a0 = rho_(r0, col);
                Complex a1 = rho_(r1, col);
                rho_(r0, col) = unitary(0, 0) * a0 + unitary(0, 1) * a1;
                rho_(r1, col) = unitary(1, 0) * a0 + unitary(1, 1) * a1;
            }
        }
    }
    // Right multiply by U^dagger: columns mix.
    for (size_t row = 0; row < n; ++row) {
        for (size_t base = 0; base < n; base += 2 * stride) {
            for (size_t offset = 0; offset < stride; ++offset) {
                size_t c0 = base + offset;
                size_t c1 = c0 + stride;
                Complex a0 = rho_(row, c0);
                Complex a1 = rho_(row, c1);
                rho_(row, c0) = a0 * std::conj(unitary(0, 0)) +
                                a1 * std::conj(unitary(0, 1));
                rho_(row, c1) = a0 * std::conj(unitary(1, 0)) +
                                a1 * std::conj(unitary(1, 1));
            }
        }
    }
}

void
DensityMatrix::applyGate2(const CMatrix &unitary, int qubit0, int qubit1)
{
    checkQubit(qubit0);
    checkQubit(qubit1);
    EQASM_ASSERT(qubit0 != qubit1, "two-qubit gate needs distinct qubits");
    EQASM_ASSERT(unitary.rows() == 4 && unitary.cols() == 4,
                 "applyGate2 needs a 4x4 matrix");
    size_t bit0 = size_t{1} << qubit0;
    size_t bit1 = size_t{1} << qubit1;
    size_t n = dim();
    auto indexOf = [&](size_t base, size_t k) {
        return base | (k & 1 ? bit0 : 0) | (k & 2 ? bit1 : 0);
    };
    // Left multiply.
    for (size_t col = 0; col < n; ++col) {
        for (size_t base = 0; base < n; ++base) {
            if (base & (bit0 | bit1))
                continue;
            Complex a[4];
            for (size_t k = 0; k < 4; ++k)
                a[k] = rho_(indexOf(base, k), col);
            for (size_t r = 0; r < 4; ++r) {
                Complex sum = 0.0;
                for (size_t c = 0; c < 4; ++c)
                    sum += unitary(r, c) * a[c];
                rho_(indexOf(base, r), col) = sum;
            }
        }
    }
    // Right multiply by U^dagger.
    for (size_t row = 0; row < n; ++row) {
        for (size_t base = 0; base < n; ++base) {
            if (base & (bit0 | bit1))
                continue;
            Complex a[4];
            for (size_t k = 0; k < 4; ++k)
                a[k] = rho_(row, indexOf(base, k));
            for (size_t c = 0; c < 4; ++c) {
                Complex sum = 0.0;
                for (size_t k = 0; k < 4; ++k)
                    sum += a[k] * std::conj(unitary(c, k));
                rho_(row, indexOf(base, c)) = sum;
            }
        }
    }
}

void
DensityMatrix::apply(const Gate &gate, const std::vector<int> &qubits)
{
    if (gate.numQubits == 1) {
        EQASM_ASSERT(qubits.size() == 1, "gate arity mismatch");
        applyGate1(gate.matrix, qubits[0]);
    } else {
        EQASM_ASSERT(qubits.size() == 2, "gate arity mismatch");
        applyGate2(gate.matrix, qubits[0], qubits[1]);
    }
}

void
DensityMatrix::leftMultiply1(const CMatrix &m, int qubit,
                             CMatrix &target) const
{
    size_t stride = size_t{1} << qubit;
    size_t n = dim();
    for (size_t col = 0; col < n; ++col) {
        for (size_t base = 0; base < n; base += 2 * stride) {
            for (size_t offset = 0; offset < stride; ++offset) {
                size_t r0 = base + offset;
                size_t r1 = r0 + stride;
                Complex a0 = target(r0, col);
                Complex a1 = target(r1, col);
                target(r0, col) = m(0, 0) * a0 + m(0, 1) * a1;
                target(r1, col) = m(1, 0) * a0 + m(1, 1) * a1;
            }
        }
    }
}

void
DensityMatrix::applyChannel1(const std::vector<CMatrix> &kraus, int qubit)
{
    checkQubit(qubit);
    CMatrix accum(dim(), dim());
    for (const CMatrix &k : kraus) {
        EQASM_ASSERT(k.rows() == 2 && k.cols() == 2,
                     "single-qubit Kraus operator must be 2x2");
        // term = K rho K^dagger via a scratch density matrix.
        DensityMatrix scratch = *this;
        scratch.leftMultiply1(k, qubit, scratch.rho_);
        // right multiply by K^dagger: (K rho)^ op on columns.
        size_t stride = size_t{1} << qubit;
        size_t n = dim();
        for (size_t row = 0; row < n; ++row) {
            for (size_t base = 0; base < n; base += 2 * stride) {
                for (size_t offset = 0; offset < stride; ++offset) {
                    size_t c0 = base + offset;
                    size_t c1 = c0 + stride;
                    Complex a0 = scratch.rho_(row, c0);
                    Complex a1 = scratch.rho_(row, c1);
                    scratch.rho_(row, c0) = a0 * std::conj(k(0, 0)) +
                                            a1 * std::conj(k(0, 1));
                    scratch.rho_(row, c1) = a0 * std::conj(k(1, 0)) +
                                            a1 * std::conj(k(1, 1));
                }
            }
        }
        accum = accum + scratch.rho_;
    }
    rho_ = std::move(accum);
}

void
DensityMatrix::applyChannel2(const std::vector<CMatrix> &kraus, int qubit0,
                             int qubit1)
{
    checkQubit(qubit0);
    checkQubit(qubit1);
    CMatrix accum(dim(), dim());
    for (const CMatrix &k : kraus) {
        EQASM_ASSERT(k.rows() == 4 && k.cols() == 4,
                     "two-qubit Kraus operator must be 4x4");
        DensityMatrix scratch = *this;
        // K rho K^dagger implemented through the (unitary-shaped)
        // two-qubit update, which never relies on unitarity.
        scratch.applyGate2(k, qubit0, qubit1);
        accum = accum + scratch.rho_;
    }
    rho_ = std::move(accum);
}

void
DensityMatrix::applyIdleNoise(int qubit, double duration_ns,
                              const NoiseModel &model, Rng &rng)
{
    (void)rng;
    qsim::applyIdleNoise(*this, qubit, duration_ns, model);
}

void
DensityMatrix::applyGateNoise1(int qubit, const NoiseModel &model,
                               Rng &rng)
{
    (void)rng;
    qsim::applyGateNoise1(*this, qubit, model);
}

void
DensityMatrix::applyGateNoise2(int qubit0, int qubit1,
                               const NoiseModel &model, Rng &rng)
{
    (void)rng;
    qsim::applyGateNoise2(*this, qubit0, qubit1, model);
}

double
DensityMatrix::probabilityOne(int qubit) const
{
    checkQubit(qubit);
    size_t mask = size_t{1} << qubit;
    double p1 = 0.0;
    for (size_t i = 0; i < dim(); ++i) {
        if (i & mask)
            p1 += rho_(i, i).real();
    }
    return p1;
}

int
DensityMatrix::measure(int qubit, Rng &rng)
{
    double p1 = probabilityOne(qubit);
    int outcome = rng.uniform() < p1 ? 1 : 0;
    postselect(qubit, outcome);
    return outcome;
}

void
DensityMatrix::postselect(int qubit, int outcome)
{
    checkQubit(qubit);
    size_t mask = size_t{1} << qubit;
    double kept = outcome == 1 ? probabilityOne(qubit)
                               : 1.0 - probabilityOne(qubit);
    if (kept <= 1e-15) {
        throwError(ErrorCode::invalidArgument,
                   format("postselecting qubit %d on %d has probability 0",
                          qubit, outcome));
    }
    for (size_t i = 0; i < dim(); ++i) {
        for (size_t j = 0; j < dim(); ++j) {
            bool keep_i = ((i & mask) != 0) == (outcome == 1);
            bool keep_j = ((j & mask) != 0) == (outcome == 1);
            if (!keep_i || !keep_j)
                rho_(i, j) = 0.0;
        }
    }
    rho_ = rho_ * Complex{1.0 / kept, 0.0};
}

double
DensityMatrix::pauliExpectation(const std::string &axes) const
{
    if (axes.size() != static_cast<size_t>(numQubits_)) {
        throwError(ErrorCode::invalidArgument,
                   format("pauli string length %zu != %d qubits",
                          axes.size(), numQubits_));
    }
    // tr(rho P) with P = (x)_q pauli(axes[q]); apply P on the left and
    // take the trace.
    CMatrix scratch = rho_;
    for (int q = 0; q < numQubits_; ++q) {
        char axis = axes[static_cast<size_t>(q)];
        if (axis == 'I' || axis == 'i')
            continue;
        leftMultiply1(pauli(axis), q, scratch);
    }
    return scratch.trace().real();
}

double
DensityMatrix::fidelityWith(const StateVector &psi) const
{
    EQASM_ASSERT(psi.numQubits() == numQubits_,
                 "fidelity needs equal qubit counts");
    const auto &amp = psi.amplitudes();
    Complex value = 0.0;
    for (size_t i = 0; i < dim(); ++i) {
        for (size_t j = 0; j < dim(); ++j)
            value += std::conj(amp[i]) * rho_(i, j) * amp[j];
    }
    return value.real();
}

double
DensityMatrix::purity() const
{
    double sum = 0.0;
    for (size_t i = 0; i < dim(); ++i) {
        for (size_t j = 0; j < dim(); ++j)
            sum += std::norm(rho_(i, j));
    }
    return sum;
}

double
DensityMatrix::traceReal() const
{
    return rho_.trace().real();
}

void
DensityMatrix::normalize()
{
    double trace = traceReal();
    EQASM_ASSERT(trace > 1e-12, "density matrix trace collapsed to zero");
    rho_ = rho_ * Complex{1.0 / trace, 0.0};
}

} // namespace eqasm::qsim
