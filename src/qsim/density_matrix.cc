#include "qsim/density_matrix.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "common/error.h"
#include "common/strings.h"
#include "qsim/kernels.h"
#include "qsim/noise.h"

namespace eqasm::qsim {

namespace {

/**
 * lhs * rhs with the finite-value semantics of complex multiplication.
 * std::complex's operator* routes through the __muldc3 libcall, whose
 * NaN-recovery branch makes it non-inlinable — a measurable cost when
 * the channel kernels execute thousands of multiplies per gate. For
 * finite operands __muldc3 computes exactly (ac - bd, ad + bc) with
 * the same three-operation rounding order as this expression, so the
 * results are bit-identical; a density matrix never holds non-finite
 * values (any NaN/Inf means the state is already corrupt).
 */
inline Complex
cmul(const Complex &lhs, const Complex &rhs)
{
    return Complex{lhs.real() * rhs.real() - lhs.imag() * rhs.imag(),
                   lhs.real() * rhs.imag() + lhs.imag() * rhs.real()};
}

/** lhs * conj(rhs), with the same finite-value semantics as cmul. */
inline Complex
cmulConj(const Complex &lhs, const Complex &rhs)
{
    return cmul(lhs, std::conj(rhs));
}

} // namespace

DensityMatrix::DensityMatrix(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > 8) {
        throwError(ErrorCode::invalidArgument,
                   format("density matrix supports 1..8 qubits, got %d",
                          num_qubits));
    }
    rho_ = CMatrix(dim(), dim());
    rho_(0, 0) = 1.0;
}

DensityMatrix::DensityMatrix(const StateVector &state)
    : numQubits_(state.numQubits())
{
    if (numQubits_ > 8) {
        throwError(ErrorCode::invalidArgument,
                   "density matrix supports at most 8 qubits");
    }
    rho_ = CMatrix(dim(), dim());
    const auto &amp = state.amplitudes();
    for (size_t i = 0; i < dim(); ++i) {
        for (size_t j = 0; j < dim(); ++j)
            rho_(i, j) = amp[i] * std::conj(amp[j]);
    }
}

DensityMatrix::DensityMatrix(const DensityMatrix &other)
    : numQubits_(other.numQubits_), rho_(other.rho_),
      channelCacheEnabled_(other.channelCacheEnabled_),
      referenceKernels_(other.referenceKernels_)
{
}

DensityMatrix &
DensityMatrix::operator=(const DensityMatrix &other)
{
    if (this != &other) {
        numQubits_ = other.numQubits_;
        rho_ = other.rho_;
        channelCacheEnabled_ = other.channelCacheEnabled_;
        referenceKernels_ = other.referenceKernels_;
        channelCache_.reset();
    }
    return *this;
}

DensityMatrix::~DensityMatrix() = default;

void
DensityMatrix::setChannelCacheEnabled(bool enabled)
{
    channelCacheEnabled_ = enabled;
}

NoiseChannelCache *
DensityMatrix::channelCache()
{
    if (!channelCacheEnabled_)
        return nullptr;
    if (!channelCache_)
        channelCache_ = std::make_unique<NoiseChannelCache>();
    return channelCache_.get();
}

void
DensityMatrix::reset()
{
    auto &data = rho_.data();
    std::fill(data.begin(), data.end(), Complex{});
    rho_(0, 0) = 1.0;
}

void
DensityMatrix::resetQubit(int qubit)
{
    checkQubit(qubit);
    // Trace out the qubit and re-prepare it in |0>: rho' =
    // P0 rho P0 + X P1 rho P1 X restricted appropriately. Implemented as
    // the amplitude-damping channel with gamma = 1, whose Kraus pair is
    // constant — the cache builds it once instead of twice per measured
    // qubit per active-reset shot.
    if (NoiseChannelCache *cache = channelCache()) {
        applyChannel1(cache->qubitReset(), qubit);
        return;
    }
    applyChannel1(krausAmplitudeDamping(1.0), qubit);
}

void
DensityMatrix::checkQubit(int qubit) const
{
    if (qubit < 0 || qubit >= numQubits_) {
        throwError(ErrorCode::invalidArgument,
                   format("qubit %d out of range [0, %d)", qubit,
                          numQubits_));
    }
}

void
DensityMatrix::applyGate1(const CMatrix &unitary, int qubit)
{
    checkQubit(qubit);
    EQASM_ASSERT(unitary.rows() == 2 && unitary.cols() == 2,
                 "applyGate1 needs a 2x2 matrix");
    size_t stride = size_t{1} << qubit;
    size_t n = dim();
    // Hoist the unitary's entries into locals: the compiler cannot do
    // it (the 2x2 could alias rho_'s storage for all it knows), and a
    // reload per block write defeats the register kernel.
    const Complex u00 = unitary(0, 0), u01 = unitary(0, 1);
    const Complex u10 = unitary(1, 0), u11 = unitary(1, 1);
    // SIMD path first (bit-identical per the qsim/kernels.h contract);
    // it declines qubit-0 gates and forced-scalar runs.
    const Complex uflat[4] = {u00, u01, u10, u11};
    if (kernels::dmGate1Vec(rho_.data().data(), n, qubit, uflat))
        return;
    // U rho U^dagger in one pass: each 2x2 block spanned by a row pair
    // and a column pair differing in the qubit bit maps independently
    // (t = U a, then out = t U^dagger — the same per-element expression
    // sequence as separate left and right passes, so results are
    // bit-identical to the two-pass formulation, with half the memory
    // traffic).
    for (size_t rbase = 0; rbase < n; rbase += 2 * stride) {
        for (size_t roffset = 0; roffset < stride; ++roffset) {
            size_t r0 = rbase + roffset;
            size_t r1 = r0 + stride;
            for (size_t cbase = 0; cbase < n; cbase += 2 * stride) {
                for (size_t coffset = 0; coffset < stride; ++coffset) {
                    size_t c0 = cbase + coffset;
                    size_t c1 = c0 + stride;
                    Complex a00 = rho_(r0, c0);
                    Complex a01 = rho_(r0, c1);
                    Complex a10 = rho_(r1, c0);
                    Complex a11 = rho_(r1, c1);
                    Complex t00 = cmul(u00, a00) + cmul(u01, a10);
                    Complex t01 = cmul(u00, a01) + cmul(u01, a11);
                    Complex t10 = cmul(u10, a00) + cmul(u11, a10);
                    Complex t11 = cmul(u10, a01) + cmul(u11, a11);
                    rho_(r0, c0) = cmulConj(t00, u00) +
                                   cmulConj(t01, u01);
                    rho_(r0, c1) = cmulConj(t00, u10) +
                                   cmulConj(t01, u11);
                    rho_(r1, c0) = cmulConj(t10, u00) +
                                   cmulConj(t11, u01);
                    rho_(r1, c1) = cmulConj(t10, u10) +
                                   cmulConj(t11, u11);
                }
            }
        }
    }
}

void
DensityMatrix::applyGate2(const CMatrix &unitary, int qubit0, int qubit1)
{
    checkQubit(qubit0);
    checkQubit(qubit1);
    EQASM_ASSERT(qubit0 != qubit1, "two-qubit gate needs distinct qubits");
    EQASM_ASSERT(unitary.rows() == 4 && unitary.cols() == 4,
                 "applyGate2 needs a 4x4 matrix");
    // Single-pass blockwise U rho U^dagger, as in applyGate1 (4x4
    // blocks over the two qubit bits); bit-identical to the two-pass
    // applyGate2To with half the memory traffic.
    Complex u[4][4];
    for (size_t r = 0; r < 4; ++r) {
        for (size_t c = 0; c < 4; ++c)
            u[r][c] = unitary(r, c);
    }
    size_t bit0 = size_t{1} << qubit0;
    size_t bit1 = size_t{1} << qubit1;
    size_t n = dim();
    if (kernels::dmGate2Vec(rho_.data().data(), n, qubit0, qubit1,
                            &u[0][0])) {
        return;
    }
    auto indexOf = [&](size_t base, size_t k) {
        return base | (k & 1 ? bit0 : 0) | (k & 2 ? bit1 : 0);
    };
    for (size_t rbase = 0; rbase < n; ++rbase) {
        if (rbase & (bit0 | bit1))
            continue;
        for (size_t cbase = 0; cbase < n; ++cbase) {
            if (cbase & (bit0 | bit1))
                continue;
            Complex a[4][4];
            for (size_t r = 0; r < 4; ++r) {
                for (size_t c = 0; c < 4; ++c)
                    a[r][c] = rho_(indexOf(rbase, r), indexOf(cbase, c));
            }
            Complex t[4][4];
            // t = U a (the left pass, row by row).
            for (size_t c = 0; c < 4; ++c) {
                for (size_t r = 0; r < 4; ++r) {
                    Complex value = 0.0;
                    for (size_t j = 0; j < 4; ++j)
                        value += cmul(u[r][j], a[j][c]);
                    t[r][c] = value;
                }
            }
            // out = t U^dagger (the right pass, column by column).
            for (size_t r = 0; r < 4; ++r) {
                for (size_t c = 0; c < 4; ++c) {
                    Complex value = 0.0;
                    for (size_t j = 0; j < 4; ++j)
                        value += cmulConj(t[r][j], u[c][j]);
                    rho_(indexOf(rbase, r), indexOf(cbase, c)) = value;
                }
            }
        }
    }
}

void
DensityMatrix::applyGate2To(const CMatrix &unitary, int qubit0,
                            int qubit1, CMatrix &target) const
{
    size_t bit0 = size_t{1} << qubit0;
    size_t bit1 = size_t{1} << qubit1;
    size_t n = dim();
    auto indexOf = [&](size_t base, size_t k) {
        return base | (k & 1 ? bit0 : 0) | (k & 2 ? bit1 : 0);
    };
    // Left multiply.
    for (size_t col = 0; col < n; ++col) {
        for (size_t base = 0; base < n; ++base) {
            if (base & (bit0 | bit1))
                continue;
            Complex a[4];
            for (size_t k = 0; k < 4; ++k)
                a[k] = target(indexOf(base, k), col);
            for (size_t r = 0; r < 4; ++r) {
                Complex sum = 0.0;
                for (size_t c = 0; c < 4; ++c)
                    sum += cmul(unitary(r, c), a[c]);
                target(indexOf(base, r), col) = sum;
            }
        }
    }
    // Right multiply by U^dagger.
    for (size_t row = 0; row < n; ++row) {
        for (size_t base = 0; base < n; ++base) {
            if (base & (bit0 | bit1))
                continue;
            Complex a[4];
            for (size_t k = 0; k < 4; ++k)
                a[k] = target(row, indexOf(base, k));
            for (size_t c = 0; c < 4; ++c) {
                Complex sum = 0.0;
                for (size_t k = 0; k < 4; ++k)
                    sum += cmulConj(a[k], unitary(c, k));
                target(row, indexOf(base, c)) = sum;
            }
        }
    }
}

void
DensityMatrix::apply(const Gate &gate, const std::vector<int> &qubits)
{
    if (gate.numQubits == 1) {
        EQASM_ASSERT(qubits.size() == 1, "gate arity mismatch");
        applyGate1(gate.matrix, qubits[0]);
    } else {
        EQASM_ASSERT(qubits.size() == 2, "gate arity mismatch");
        applyGate2(gate.matrix, qubits[0], qubits[1]);
    }
}

void
DensityMatrix::leftMultiply1(const CMatrix &m, int qubit,
                             CMatrix &target) const
{
    size_t stride = size_t{1} << qubit;
    size_t n = dim();
    for (size_t col = 0; col < n; ++col) {
        for (size_t base = 0; base < n; base += 2 * stride) {
            for (size_t offset = 0; offset < stride; ++offset) {
                size_t r0 = base + offset;
                size_t r1 = r0 + stride;
                Complex a0 = target(r0, col);
                Complex a1 = target(r1, col);
                target(r0, col) = m(0, 0) * a0 + m(0, 1) * a1;
                target(r1, col) = m(1, 0) * a0 + m(1, 1) * a1;
            }
        }
    }
}

void
DensityMatrix::applyChannel1(const std::vector<CMatrix> &kraus, int qubit)
{
    checkQubit(qubit);
    if (referenceKernels_) {
        applyChannel1Reference(kraus, qubit);
        return;
    }
    // sum_k K rho K^dagger in one allocation-free pass. The channel
    // maps each 2x2 block of rho spanned by (row pair, column pair)
    // differing in the qubit bit to a function of that block alone, so
    // every block is read once, transformed under all Kraus operators
    // with the sum held locally, and written back in place.
    //
    // Equality with the textbook scratch-matrix formulation holds
    // because every elementary operation sequence per element is
    // unchanged: t = K a (left pass), out = t K^dagger (right pass),
    // terms summed in Kraus order starting from zero. The sparse
    // variant below additionally skips products with exact-zero Kraus
    // coefficients, which contribute exactly +/-0 to those sums.
    for (const CMatrix &k : kraus) {
        EQASM_ASSERT(k.rows() == 2 && k.cols() == 2,
                     "single-qubit Kraus operator must be 2x2");
    }
    size_t num_kraus = kraus.size();
    // Hoisted Kraus entries (register kernel; see applyGate1 on why
    // the compiler cannot hoist them itself). Every channel this
    // library builds has at most 16 operators and stays on the stack;
    // larger caller-supplied channels spill to the heap.
    //
    // Each hoisted operator also records, per row, the column of its
    // single nonzero entry (or -1 for an all-zero row). Every noise
    // channel in this library — Pauli depolarizing, amplitude/phase
    // damping, qubit reset — is "mono-row" (at most one nonzero per
    // row), which lets the kernel skip the products with exact-zero
    // coefficients: those contribute exactly +/-0 to each sum, so
    // every value is unchanged (only the sign of exact zeros can
    // differ, which no probability, sum or comparison observes).
    // Operators with a denser row use the full expression. (The
    // hoisted form is kernels::Kraus1 so the SIMD kernel can consume
    // it directly.)
    using kernels::Kraus1;
    Kraus1 fixed[16];
    std::vector<Kraus1> overflow;
    Kraus1 *kk = fixed;
    if (num_kraus > 16) {
        overflow.resize(num_kraus);
        kk = overflow.data();
    }
    for (size_t ki = 0; ki < num_kraus; ++ki) {
        const CMatrix &k = kraus[ki];
        Kraus1 &h = kk[ki];
        h.k[0] = k(0, 0);
        h.k[1] = k(0, 1);
        h.k[2] = k(1, 0);
        h.k[3] = k(1, 1);
        h.sparse = true;
        for (int row = 0; row < 2; ++row) {
            h.nz[row] = -1;
            for (int col = 0; col < 2; ++col) {
                if (h.k[2 * row + col] == Complex{}) // matches +/-0
                    continue;
                if (h.nz[row] >= 0)
                    h.sparse = false;
                h.nz[row] = col;
            }
        }
    }
    size_t stride = size_t{1} << qubit;
    size_t n = dim();
    if (kernels::dmChannel1Vec(rho_.data().data(), n, qubit, kk,
                               num_kraus)) {
        return;
    }
    for (size_t rbase = 0; rbase < n; rbase += 2 * stride) {
        for (size_t roffset = 0; roffset < stride; ++roffset) {
            size_t r0 = rbase + roffset;
            size_t r1 = r0 + stride;
            for (size_t cbase = 0; cbase < n; cbase += 2 * stride) {
                for (size_t coffset = 0; coffset < stride; ++coffset) {
                    size_t c0 = cbase + coffset;
                    size_t c1 = c0 + stride;
                    const Complex a[2][2] = {
                        {rho_(r0, c0), rho_(r0, c1)},
                        {rho_(r1, c0), rho_(r1, c1)}};
                    Complex s00{}, s01{}, s10{}, s11{};
                    for (size_t ki = 0; ki < num_kraus; ++ki) {
                        const Kraus1 &h = kk[ki];
                        if (h.sparse) {
                            // t row r = K(r, jr) * a row jr; out col c
                            // picks K row c's nonzero column jc:
                            // s(r, c) += t(r, jc) * conj(K(c, jc)).
                            int j0 = h.nz[0], j1 = h.nz[1];
                            Complex t[2][2] = {};
                            if (j0 >= 0) {
                                const Complex k0 = h.k[j0];
                                t[0][0] = cmul(k0, a[j0][0]);
                                t[0][1] = cmul(k0, a[j0][1]);
                            }
                            if (j1 >= 0) {
                                const Complex k1 = h.k[2 + j1];
                                t[1][0] = cmul(k1, a[j1][0]);
                                t[1][1] = cmul(k1, a[j1][1]);
                            }
                            if (j0 >= 0) {
                                const Complex k0 = h.k[j0];
                                s00 += cmulConj(t[0][j0], k0);
                                s10 += cmulConj(t[1][j0], k0);
                            }
                            if (j1 >= 0) {
                                const Complex k1 = h.k[2 + j1];
                                s01 += cmulConj(t[0][j1], k1);
                                s11 += cmulConj(t[1][j1], k1);
                            }
                        } else {
                            const Complex k00 = h.k[0], k01 = h.k[1];
                            const Complex k10 = h.k[2], k11 = h.k[3];
                            // t = K a on the block's rows...
                            Complex t00 =
                                cmul(k00, a[0][0]) + cmul(k01, a[1][0]);
                            Complex t01 =
                                cmul(k00, a[0][1]) + cmul(k01, a[1][1]);
                            Complex t10 =
                                cmul(k10, a[0][0]) + cmul(k11, a[1][0]);
                            Complex t11 =
                                cmul(k10, a[0][1]) + cmul(k11, a[1][1]);
                            // ...then t K^dagger on its columns.
                            s00 += cmulConj(t00, k00) +
                                   cmulConj(t01, k01);
                            s01 += cmulConj(t00, k10) +
                                   cmulConj(t01, k11);
                            s10 += cmulConj(t10, k00) +
                                   cmulConj(t11, k01);
                            s11 += cmulConj(t10, k10) +
                                   cmulConj(t11, k11);
                        }
                    }
                    rho_(r0, c0) = s00;
                    rho_(r0, c1) = s01;
                    rho_(r1, c0) = s10;
                    rho_(r1, c1) = s11;
                }
            }
        }
    }
}

void
DensityMatrix::applyChannel2(const std::vector<CMatrix> &kraus, int qubit0,
                             int qubit1)
{
    checkQubit(qubit0);
    checkQubit(qubit1);
    if (referenceKernels_) {
        applyChannel2Reference(kraus, qubit0, qubit1);
        return;
    }
    // Same single-pass block scheme as applyChannel1 over the 4x4
    // blocks spanned by (row quad, column quad) differing in the two
    // qubit bits; K rho K^dagger never relies on unitarity.
    for (const CMatrix &k : kraus) {
        EQASM_ASSERT(k.rows() == 4 && k.cols() == 4,
                     "two-qubit Kraus operator must be 4x4");
    }
    size_t num_kraus = kraus.size();
    // Hoisted Kraus entries, as in applyChannel1 (the two-qubit
    // depolarizing channel has 16 operators), with the same mono-row
    // sparsity classification: every kron(Pauli, Pauli) operator has
    // exactly one nonzero per row, so the sparse kernel does 32
    // multiplies per operator per block instead of 128, and skipped
    // products contribute exactly +/-0 (values unchanged).
    using kernels::Kraus2;
    Kraus2 fixed[16];
    std::vector<Kraus2> overflow;
    Kraus2 *kk = fixed;
    if (num_kraus > 16) {
        overflow.resize(num_kraus);
        kk = overflow.data();
    }
    for (size_t ki = 0; ki < num_kraus; ++ki) {
        const CMatrix &k = kraus[ki];
        Kraus2 &h = kk[ki];
        h.sparse = true;
        for (size_t r = 0; r < 4; ++r) {
            h.nz[r] = -1;
            for (size_t c = 0; c < 4; ++c) {
                h.k[r][c] = k(r, c);
                if (h.k[r][c] == Complex{})
                    continue;
                if (h.nz[r] >= 0)
                    h.sparse = false;
                h.nz[r] = static_cast<int>(c);
            }
        }
    }
    size_t bit0 = size_t{1} << qubit0;
    size_t bit1 = size_t{1} << qubit1;
    size_t n = dim();
    if (kernels::dmChannel2Vec(rho_.data().data(), n, qubit0, qubit1, kk,
                               num_kraus)) {
        return;
    }
    auto indexOf = [&](size_t base, size_t k) {
        return base | (k & 1 ? bit0 : 0) | (k & 2 ? bit1 : 0);
    };
    for (size_t rbase = 0; rbase < n; ++rbase) {
        if (rbase & (bit0 | bit1))
            continue;
        for (size_t cbase = 0; cbase < n; ++cbase) {
            if (cbase & (bit0 | bit1))
                continue;
            Complex a[4][4];
            for (size_t r = 0; r < 4; ++r) {
                for (size_t c = 0; c < 4; ++c)
                    a[r][c] = rho_(indexOf(rbase, r), indexOf(cbase, c));
            }
            Complex sum[4][4] = {};
            for (size_t ki = 0; ki < num_kraus; ++ki) {
                const Kraus2 &h = kk[ki];
                if (h.sparse) {
                    Complex t[4][4] = {};
                    for (size_t r = 0; r < 4; ++r) {
                        int jr = h.nz[r];
                        if (jr < 0)
                            continue;
                        const Complex kr = h.k[r][static_cast<size_t>(jr)];
                        for (size_t c = 0; c < 4; ++c)
                            t[r][c] = cmul(kr, a[jr][c]);
                    }
                    for (size_t c = 0; c < 4; ++c) {
                        int jc = h.nz[c];
                        if (jc < 0)
                            continue;
                        const Complex kc = h.k[c][static_cast<size_t>(jc)];
                        for (size_t r = 0; r < 4; ++r)
                            sum[r][c] += cmulConj(t[r][jc], kc);
                    }
                    continue;
                }
                Complex t[4][4];
                // t = K a (the left pass of applyGate2To, row by row).
                for (size_t c = 0; c < 4; ++c) {
                    for (size_t r = 0; r < 4; ++r) {
                        Complex value = 0.0;
                        for (size_t j = 0; j < 4; ++j)
                            value += cmul(h.k[r][j], a[j][c]);
                        t[r][c] = value;
                    }
                }
                // out = t K^dagger (the right pass, column by column).
                for (size_t r = 0; r < 4; ++r) {
                    for (size_t c = 0; c < 4; ++c) {
                        Complex value = 0.0;
                        for (size_t j = 0; j < 4; ++j)
                            value += cmulConj(t[r][j], h.k[c][j]);
                        sum[r][c] += value;
                    }
                }
            }
            for (size_t r = 0; r < 4; ++r) {
                for (size_t c = 0; c < 4; ++c) {
                    rho_(indexOf(rbase, r), indexOf(cbase, c)) =
                        sum[r][c];
                }
            }
        }
    }
}

void
DensityMatrix::applyChannel1Reference(const std::vector<CMatrix> &kraus,
                                      int qubit)
{
    // The historical formulation: term = K rho K^dagger via a scratch
    // matrix per Kraus operator, accumulated out of place. Kept (behind
    // setReferenceKernels) as the oracle the fused kernel is tested
    // against and as the bench's before/after baseline.
    CMatrix accum(dim(), dim());
    size_t stride = size_t{1} << qubit;
    size_t n = dim();
    for (const CMatrix &k : kraus) {
        EQASM_ASSERT(k.rows() == 2 && k.cols() == 2,
                     "single-qubit Kraus operator must be 2x2");
        CMatrix scratch = rho_;
        leftMultiply1(k, qubit, scratch);
        // Right multiply by K^dagger: columns mix.
        for (size_t row = 0; row < n; ++row) {
            for (size_t base = 0; base < n; base += 2 * stride) {
                for (size_t offset = 0; offset < stride; ++offset) {
                    size_t c0 = base + offset;
                    size_t c1 = c0 + stride;
                    Complex a0 = scratch(row, c0);
                    Complex a1 = scratch(row, c1);
                    scratch(row, c0) = a0 * std::conj(k(0, 0)) +
                                       a1 * std::conj(k(0, 1));
                    scratch(row, c1) = a0 * std::conj(k(1, 0)) +
                                       a1 * std::conj(k(1, 1));
                }
            }
        }
        accum = accum + scratch;
    }
    rho_ = std::move(accum);
}

void
DensityMatrix::applyChannel2Reference(const std::vector<CMatrix> &kraus,
                                      int qubit0, int qubit1)
{
    CMatrix accum(dim(), dim());
    for (const CMatrix &k : kraus) {
        EQASM_ASSERT(k.rows() == 4 && k.cols() == 4,
                     "two-qubit Kraus operator must be 4x4");
        // K rho K^dagger through the (unitary-shaped) two-qubit
        // update, which never relies on unitarity.
        CMatrix scratch = rho_;
        applyGate2To(k, qubit0, qubit1, scratch);
        accum = accum + scratch;
    }
    rho_ = std::move(accum);
}

void
DensityMatrix::applyIdleNoise(int qubit, double duration_ns,
                              const NoiseModel &model, Rng &rng)
{
    (void)rng;
    qsim::applyIdleNoise(*this, qubit, duration_ns, model,
                         channelCache());
}

void
DensityMatrix::applyGateNoise1(int qubit, const NoiseModel &model,
                               Rng &rng)
{
    (void)rng;
    qsim::applyGateNoise1(*this, qubit, model, channelCache());
}

void
DensityMatrix::applyGateNoise2(int qubit0, int qubit1,
                               const NoiseModel &model, Rng &rng)
{
    (void)rng;
    qsim::applyGateNoise2(*this, qubit0, qubit1, model, channelCache());
}

double
DensityMatrix::probabilityOne(int qubit) const
{
    checkQubit(qubit);
    size_t mask = size_t{1} << qubit;
    double p1 = 0.0;
    for (size_t i = 0; i < dim(); ++i) {
        if (i & mask)
            p1 += rho_(i, i).real();
    }
    return p1;
}

int
DensityMatrix::measure(int qubit, Rng &rng)
{
    double p1 = probabilityOne(qubit);
    int outcome = rng.uniform() < p1 ? 1 : 0;
    // The collapse reuses p1 instead of re-scanning the diagonal;
    // probabilityOne is deterministic, so the value is the same double
    // the public postselect would recompute.
    postselectWithProbability(qubit, outcome,
                              outcome == 1 ? p1 : 1.0 - p1);
    return outcome;
}

void
DensityMatrix::postselect(int qubit, int outcome)
{
    checkQubit(qubit);
    double kept = outcome == 1 ? probabilityOne(qubit)
                               : 1.0 - probabilityOne(qubit);
    postselectWithProbability(qubit, outcome, kept);
}

void
DensityMatrix::postselectWithProbability(int qubit, int outcome,
                                         double kept)
{
    checkQubit(qubit);
    size_t mask = size_t{1} << qubit;
    if (kept <= 1e-15) {
        throwError(ErrorCode::invalidArgument,
                   format("postselecting qubit %d on %d has probability 0",
                          qubit, outcome));
    }
    // Zero the discarded outcome's rows/columns and renormalise the
    // kept block, in one pass (zeroed entries match the zero-then-scale
    // formulation exactly: +0.0 either way).
    Complex scale{1.0 / kept, 0.0};
    for (size_t i = 0; i < dim(); ++i) {
        for (size_t j = 0; j < dim(); ++j) {
            bool keep_i = ((i & mask) != 0) == (outcome == 1);
            bool keep_j = ((j & mask) != 0) == (outcome == 1);
            rho_(i, j) = keep_i && keep_j ? cmul(rho_(i, j), scale)
                                          : Complex{};
        }
    }
}

void
DensityMatrix::scaleInPlace(Complex scalar)
{
    for (Complex &value : rho_.data())
        value = cmul(value, scalar);
}

double
DensityMatrix::pauliExpectation(const std::string &axes) const
{
    if (axes.size() != static_cast<size_t>(numQubits_)) {
        throwError(ErrorCode::invalidArgument,
                   format("pauli string length %zu != %d qubits",
                          axes.size(), numQubits_));
    }
    // tr(rho P) with P = (x)_q pauli(axes[q]); apply P on the left and
    // take the trace.
    CMatrix scratch = rho_;
    for (int q = 0; q < numQubits_; ++q) {
        char axis = axes[static_cast<size_t>(q)];
        if (axis == 'I' || axis == 'i')
            continue;
        leftMultiply1(pauli(axis), q, scratch);
    }
    return scratch.trace().real();
}

double
DensityMatrix::fidelityWith(const StateVector &psi) const
{
    EQASM_ASSERT(psi.numQubits() == numQubits_,
                 "fidelity needs equal qubit counts");
    const auto &amp = psi.amplitudes();
    Complex value = 0.0;
    for (size_t i = 0; i < dim(); ++i) {
        for (size_t j = 0; j < dim(); ++j)
            value += std::conj(amp[i]) * rho_(i, j) * amp[j];
    }
    return value.real();
}

double
DensityMatrix::purity() const
{
    double sum = 0.0;
    for (size_t i = 0; i < dim(); ++i) {
        for (size_t j = 0; j < dim(); ++j)
            sum += std::norm(rho_(i, j));
    }
    return sum;
}

double
DensityMatrix::traceReal() const
{
    return rho_.trace().real();
}

void
DensityMatrix::normalize()
{
    double trace = traceReal();
    EQASM_ASSERT(trace > 1e-12, "density matrix trace collapsed to zero");
    scaleInPlace(Complex{1.0 / trace, 0.0});
}

} // namespace eqasm::qsim
