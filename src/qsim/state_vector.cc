#include "qsim/state_vector.h"

#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::qsim {

StateVector::StateVector(int num_qubits) : numQubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > 24) {
        throwError(ErrorCode::invalidArgument,
                   format("state vector supports 1..24 qubits, got %d",
                          num_qubits));
    }
    amplitudes_.assign(size_t{1} << num_qubits, Complex{0.0, 0.0});
    amplitudes_[0] = 1.0;
}

void
StateVector::reset()
{
    std::fill(amplitudes_.begin(), amplitudes_.end(), Complex{0.0, 0.0});
    amplitudes_[0] = 1.0;
}

void
StateVector::checkQubit(int qubit) const
{
    if (qubit < 0 || qubit >= numQubits_) {
        throwError(ErrorCode::invalidArgument,
                   format("qubit %d out of range [0, %d)", qubit,
                          numQubits_));
    }
}

void
StateVector::applyGate1(const CMatrix &unitary, int qubit)
{
    checkQubit(qubit);
    EQASM_ASSERT(unitary.rows() == 2 && unitary.cols() == 2,
                 "applyGate1 needs a 2x2 matrix");
    size_t stride = size_t{1} << qubit;
    for (size_t base = 0; base < amplitudes_.size(); base += 2 * stride) {
        for (size_t offset = 0; offset < stride; ++offset) {
            size_t i0 = base + offset;
            size_t i1 = i0 + stride;
            Complex a0 = amplitudes_[i0];
            Complex a1 = amplitudes_[i1];
            amplitudes_[i0] = unitary(0, 0) * a0 + unitary(0, 1) * a1;
            amplitudes_[i1] = unitary(1, 0) * a0 + unitary(1, 1) * a1;
        }
    }
}

void
StateVector::applyGate2(const CMatrix &unitary, int qubit0, int qubit1)
{
    checkQubit(qubit0);
    checkQubit(qubit1);
    EQASM_ASSERT(unitary.rows() == 4 && unitary.cols() == 4,
                 "applyGate2 needs a 4x4 matrix");
    EQASM_ASSERT(qubit0 != qubit1, "two-qubit gate needs distinct qubits");
    size_t bit0 = size_t{1} << qubit0;
    size_t bit1 = size_t{1} << qubit1;
    for (size_t index = 0; index < amplitudes_.size(); ++index) {
        if (index & (bit0 | bit1))
            continue;
        size_t i00 = index;
        size_t i01 = index | bit0;
        size_t i10 = index | bit1;
        size_t i11 = index | bit0 | bit1;
        Complex a[4] = {amplitudes_[i00], amplitudes_[i01],
                        amplitudes_[i10], amplitudes_[i11]};
        for (size_t r = 0; r < 4; ++r) {
            Complex sum = 0.0;
            for (size_t c = 0; c < 4; ++c)
                sum += unitary(r, c) * a[c];
            size_t target = r == 0 ? i00 : r == 1 ? i01 : r == 2 ? i10 : i11;
            amplitudes_[target] = sum;
        }
    }
}

void
StateVector::apply(const Gate &gate, const std::vector<int> &qubits)
{
    if (gate.numQubits == 1) {
        EQASM_ASSERT(qubits.size() == 1, "gate arity mismatch");
        applyGate1(gate.matrix, qubits[0]);
    } else {
        EQASM_ASSERT(qubits.size() == 2, "gate arity mismatch");
        applyGate2(gate.matrix, qubits[0], qubits[1]);
    }
}

double
StateVector::probabilityOne(int qubit) const
{
    checkQubit(qubit);
    size_t mask = size_t{1} << qubit;
    double p1 = 0.0;
    for (size_t index = 0; index < amplitudes_.size(); ++index) {
        if (index & mask)
            p1 += std::norm(amplitudes_[index]);
    }
    return p1;
}

int
StateVector::measure(int qubit, Rng &rng)
{
    double p1 = probabilityOne(qubit);
    int outcome = rng.uniform() < p1 ? 1 : 0;
    postselect(qubit, outcome);
    return outcome;
}

void
StateVector::postselect(int qubit, int outcome)
{
    checkQubit(qubit);
    size_t mask = size_t{1} << qubit;
    double kept = 0.0;
    for (size_t index = 0; index < amplitudes_.size(); ++index) {
        bool is_one = (index & mask) != 0;
        if (is_one != (outcome == 1)) {
            amplitudes_[index] = 0.0;
        } else {
            kept += std::norm(amplitudes_[index]);
        }
    }
    if (kept <= 0.0) {
        throwError(ErrorCode::invalidArgument,
                   format("postselecting qubit %d on %d has probability 0",
                          qubit, outcome));
    }
    double scale = 1.0 / std::sqrt(kept);
    for (Complex &amp : amplitudes_)
        amp *= scale;
}

double
StateVector::fidelity(const StateVector &other) const
{
    EQASM_ASSERT(numQubits_ == other.numQubits_,
                 "fidelity needs equal qubit counts");
    Complex overlap = 0.0;
    for (size_t index = 0; index < amplitudes_.size(); ++index)
        overlap += std::conj(amplitudes_[index]) * other.amplitudes_[index];
    return std::norm(overlap);
}

double
StateVector::probabilityOf(uint64_t index) const
{
    EQASM_ASSERT(index < amplitudes_.size(), "basis index out of range");
    return std::norm(amplitudes_[index]);
}

uint64_t
StateVector::sampleAll(Rng &rng) const
{
    double r = rng.uniform();
    double cumulative = 0.0;
    for (size_t index = 0; index < amplitudes_.size(); ++index) {
        cumulative += std::norm(amplitudes_[index]);
        if (r < cumulative)
            return index;
    }
    return amplitudes_.size() - 1;
}

double
StateVector::expectationZ(int qubit) const
{
    return 1.0 - 2.0 * probabilityOne(qubit);
}

double
StateVector::norm() const
{
    double sum = 0.0;
    for (const Complex &amp : amplitudes_)
        sum += std::norm(amp);
    return sum;
}

} // namespace eqasm::qsim
