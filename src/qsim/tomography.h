/**
 * @file
 * Quantum state tomography with maximum-likelihood estimation.
 *
 * The paper's two-qubit Grover experiment reports an algorithmic
 * fidelity of 85.6 % "using quantum tomography with maximum likelihood
 * estimation". This module provides the same pipeline: measure Pauli
 * expectation values, reconstruct rho by linear inversion, and project
 * the (generally unphysical) estimate onto the closest positive
 * semidefinite unit-trace matrix using the fast MLE algorithm of
 * Smolin, Gambetta and Smith (PRL 108, 070502).
 */
#ifndef EQASM_QSIM_TOMOGRAPHY_H
#define EQASM_QSIM_TOMOGRAPHY_H

#include <map>
#include <string>

#include "qsim/density_matrix.h"
#include "qsim/linalg.h"
#include "qsim/trajectory_state_vector.h"

namespace eqasm::qsim {

/** All 4^n Pauli strings on @p num_qubits qubits ("II", "IX", ...).
 *  Character k of the string addresses qubit k (LSB first). */
std::vector<std::string> pauliStrings(int num_qubits);

/** Builds the full 2^n x 2^n matrix of a Pauli string. */
CMatrix pauliStringMatrix(const std::string &axes);

/**
 * Linear-inversion reconstruction from Pauli expectation values:
 * rho = 2^-n * sum_P <P> P. The identity string must be present
 * (its value is 1 for properly normalised data).
 */
CMatrix linearInversion(int num_qubits,
                        const std::map<std::string, double> &expectations);

/**
 * Projects a Hermitian unit-trace matrix onto the physical state space
 * (PSD, trace 1) in the Frobenius norm — the MLE estimate for Gaussian
 * measurement noise.
 */
CMatrix mleProject(const CMatrix &rho);

/** @return <psi| rho |psi> for a pure target state. */
double stateFidelity(const CMatrix &rho, const StateVector &psi);

} // namespace eqasm::qsim

#endif // EQASM_QSIM_TOMOGRAPHY_H
