/**
 * @file
 * Density-matrix quantum simulator with Kraus-channel noise.
 *
 * This backend represents the full mixed state of up to 8 qubits and is
 * used by the simulated device to model decoherence (T1/T2), gate
 * depolarization and measurement back-action — the physics behind the
 * paper's Fig. 11, Fig. 12 and Section 5 fidelity numbers.
 *
 * Qubit 0 is the least significant bit of the basis index, matching
 * StateVector.
 */
#ifndef EQASM_QSIM_DENSITY_MATRIX_H
#define EQASM_QSIM_DENSITY_MATRIX_H

#include <memory>
#include <vector>

#include "common/rng.h"
#include "qsim/gates.h"
#include "qsim/linalg.h"
#include "qsim/state_backend.h"
#include "qsim/trajectory_state_vector.h"

namespace eqasm::qsim {

class NoiseChannelCache;

/** Mixed-state simulator for up to 8 qubits; the exact-physics
 *  StateBackend implementation. */
class DensityMatrix : public StateBackend
{
  public:
    /** Initialises |0...0><0...0| on @p num_qubits qubits. */
    explicit DensityMatrix(int num_qubits);

    /** Builds the pure density matrix of @p state. */
    explicit DensityMatrix(const StateVector &state);

    /** Copies share no state; the copy starts with a fresh (empty)
     *  channel cache, which affects only lookup cost, never results. */
    DensityMatrix(const DensityMatrix &other);
    DensityMatrix &operator=(const DensityMatrix &other);
    DensityMatrix(DensityMatrix &&) = default;
    DensityMatrix &operator=(DensityMatrix &&) = default;
    ~DensityMatrix() override;

    BackendKind kind() const override { return BackendKind::density; }
    int numQubits() const override { return numQubits_; }
    size_t dim() const { return size_t{1} << numQubits_; }

    /** Resets to |0...0><0...0| (in place — the storage allocated at
     *  construction is reused across shots). */
    void reset() override;

    /** Resets one qubit to |0> (used by active-reset modelling) via the
     *  cached gamma = 1 amplitude-damping channel. */
    void resetQubit(int qubit);

    /** StateBackend reset hook; the Kraus-channel reset is
     *  deterministic, so @p rng is untouched. */
    void resetQubit(int qubit, Rng &rng) override
    {
        (void)rng;
        resetQubit(qubit);
    }

    const CMatrix &matrix() const { return rho_; }
    CMatrix &matrix() { return rho_; }

    /** Applies a 2x2 unitary to @p qubit: rho -> U rho U^dagger. */
    void applyGate1(const CMatrix &unitary, int qubit);

    /** Applies a 4x4 unitary to (qubit0 = LSB operand, qubit1). */
    void applyGate2(const CMatrix &unitary, int qubit0, int qubit1);

    /** Applies a named/parsed Gate to the listed qubits. */
    void apply(const Gate &gate, const std::vector<int> &qubits);

    // --- StateBackend gate/noise hooks ---
    void applyGate1(const Gate &gate, int qubit) override
    {
        applyGate1(gate.matrix, qubit);
    }
    void applyGate2(const Gate &gate, int qubit0, int qubit1) override
    {
        applyGate2(gate.matrix, qubit0, qubit1);
    }
    /** Exact Kraus channels; deterministic, @p rng untouched (keeps the
     *  per-shot draw sequence identical to the pre-backend code). */
    void applyIdleNoise(int qubit, double duration_ns,
                        const NoiseModel &model, Rng &rng) override;
    void applyGateNoise1(int qubit, const NoiseModel &model,
                         Rng &rng) override;
    void applyGateNoise2(int qubit0, int qubit1, const NoiseModel &model,
                         Rng &rng) override;

    /** Applies a single-qubit Kraus channel {K_k} to @p qubit.
     *  Allocation-free: sum_k K rho K^dagger is evaluated in one
     *  in-place pass over the independent 2x2 blocks of rho. The
     *  per-element arithmetic of the textbook scratch-matrix
     *  formulation is preserved operation for operation; products
     *  whose Kraus coefficient is exactly zero are skipped, which can
     *  flip the sign of exact zeros but changes no value — every
     *  probability, expectation and sampled bit is identical. */
    void applyChannel1(const std::vector<CMatrix> &kraus, int qubit);

    /** Applies a two-qubit Kraus channel to (qubit0, qubit1);
     *  allocation-free single pass like applyChannel1 (4x4 blocks). */
    void applyChannel2(const std::vector<CMatrix> &kraus, int qubit0,
                       int qubit1);

    /**
     * Enables/disables the per-instance NoiseChannelCache consulted by
     * the noise hooks (on by default). Cached and uncached runs are
     * bit-identical — the cache stores the exact Kraus operators the
     * uncached path would rebuild — so disabling it is only useful to
     * measure the cost it removes (bench) and to assert the identity
     * (tests).
     */
    void setChannelCacheEnabled(bool enabled);
    bool channelCacheEnabled() const { return channelCacheEnabled_; }

    /** The cache the noise hooks use, or nullptr when disabled. */
    NoiseChannelCache *channelCache();

    /**
     * Routes applyChannel1/2 through the textbook scratch-matrix
     * formulation (one full-matrix scratch copy per Kraus operator and
     * a separate accumulator, exactly the historical implementation)
     * instead of the fused single-pass kernels. Off by default. The
     * two paths produce equal states — the fast-path tests assert it
     * element for element — so this exists only as the bit-identity
     * oracle and as the bench's before/after baseline.
     */
    void setReferenceKernels(bool enabled)
    {
        referenceKernels_ = enabled;
    }
    bool referenceKernels() const { return referenceKernels_; }

    /** @return probability of measuring |1> on @p qubit. */
    double probabilityOne(int qubit) const override;

    /** Samples a projective measurement and collapses the state. */
    int measure(int qubit, Rng &rng) override;

    /** Collapses @p qubit to @p outcome and renormalises. */
    void postselect(int qubit, int outcome);

    /** @return tr(rho P) where @p axes gives a Pauli per qubit
     *  (axes[q] in {'I','X','Y','Z'}, axes.size() == numQubits()). */
    double pauliExpectation(const std::string &axes) const;

    /** @return <psi| rho |psi>. */
    double fidelityWith(const StateVector &psi) const;

    /** @return tr(rho^2). */
    double purity() const;

    /** @return tr(rho) (should stay 1 within rounding). */
    double traceReal() const;

    /** Renormalises to unit trace (guards against drift). */
    void normalize();

  private:
    void checkQubit(int qubit) const;
    /** rho -> M rho (2x2 block acting on @p qubit rows). */
    void leftMultiply1(const CMatrix &m, int qubit, CMatrix &target) const;
    /** target -> U target U^dagger with U a 4x4 on (qubit0, qubit1) —
     *  the applyGate2 update on an arbitrary buffer. */
    void applyGate2To(const CMatrix &unitary, int qubit0, int qubit1,
                      CMatrix &target) const;
    /** rho -> rho * scalar, in place. */
    void scaleInPlace(Complex scalar);
    /** Collapses @p qubit to @p outcome given its precomputed
     *  probability (shared by measure and the public postselect). */
    void postselectWithProbability(int qubit, int outcome, double kept);
    /** Textbook scratch-matrix channel applications (see
     *  setReferenceKernels). */
    void applyChannel1Reference(const std::vector<CMatrix> &kraus,
                                int qubit);
    void applyChannel2Reference(const std::vector<CMatrix> &kraus,
                                int qubit0, int qubit1);

    int numQubits_;
    CMatrix rho_;
    std::unique_ptr<NoiseChannelCache> channelCache_;
    bool channelCacheEnabled_ = true;
    bool referenceKernels_ = false;
};

} // namespace eqasm::qsim

#endif // EQASM_QSIM_DENSITY_MATRIX_H
