/**
 * @file
 * Density-matrix quantum simulator with Kraus-channel noise.
 *
 * This backend represents the full mixed state of up to 8 qubits and is
 * used by the simulated device to model decoherence (T1/T2), gate
 * depolarization and measurement back-action — the physics behind the
 * paper's Fig. 11, Fig. 12 and Section 5 fidelity numbers.
 *
 * Qubit 0 is the least significant bit of the basis index, matching
 * StateVector.
 */
#ifndef EQASM_QSIM_DENSITY_MATRIX_H
#define EQASM_QSIM_DENSITY_MATRIX_H

#include <vector>

#include "common/rng.h"
#include "qsim/gates.h"
#include "qsim/linalg.h"
#include "qsim/state_backend.h"
#include "qsim/state_vector.h"

namespace eqasm::qsim {

/** Mixed-state simulator for up to 8 qubits; the exact-physics
 *  StateBackend implementation. */
class DensityMatrix : public StateBackend
{
  public:
    /** Initialises |0...0><0...0| on @p num_qubits qubits. */
    explicit DensityMatrix(int num_qubits);

    /** Builds the pure density matrix of @p state. */
    explicit DensityMatrix(const StateVector &state);

    BackendKind kind() const override { return BackendKind::density; }
    int numQubits() const override { return numQubits_; }
    size_t dim() const { return size_t{1} << numQubits_; }

    /** Resets to |0...0><0...0|. */
    void reset() override;

    /** Resets one qubit to |0> (used by active-reset modelling). */
    void resetQubit(int qubit);

    /** StateBackend reset hook; the Kraus-channel reset is
     *  deterministic, so @p rng is untouched. */
    void resetQubit(int qubit, Rng &rng) override
    {
        (void)rng;
        resetQubit(qubit);
    }

    const CMatrix &matrix() const { return rho_; }
    CMatrix &matrix() { return rho_; }

    /** Applies a 2x2 unitary to @p qubit: rho -> U rho U^dagger. */
    void applyGate1(const CMatrix &unitary, int qubit);

    /** Applies a 4x4 unitary to (qubit0 = LSB operand, qubit1). */
    void applyGate2(const CMatrix &unitary, int qubit0, int qubit1);

    /** Applies a named/parsed Gate to the listed qubits. */
    void apply(const Gate &gate, const std::vector<int> &qubits);

    // --- StateBackend gate/noise hooks ---
    void applyGate1(const Gate &gate, int qubit) override
    {
        applyGate1(gate.matrix, qubit);
    }
    void applyGate2(const Gate &gate, int qubit0, int qubit1) override
    {
        applyGate2(gate.matrix, qubit0, qubit1);
    }
    /** Exact Kraus channels; deterministic, @p rng untouched (keeps the
     *  per-shot draw sequence identical to the pre-backend code). */
    void applyIdleNoise(int qubit, double duration_ns,
                        const NoiseModel &model, Rng &rng) override;
    void applyGateNoise1(int qubit, const NoiseModel &model,
                         Rng &rng) override;
    void applyGateNoise2(int qubit0, int qubit1, const NoiseModel &model,
                         Rng &rng) override;

    /** Applies a single-qubit Kraus channel {K_k} to @p qubit. */
    void applyChannel1(const std::vector<CMatrix> &kraus, int qubit);

    /** Applies a two-qubit Kraus channel to (qubit0, qubit1). */
    void applyChannel2(const std::vector<CMatrix> &kraus, int qubit0,
                       int qubit1);

    /** @return probability of measuring |1> on @p qubit. */
    double probabilityOne(int qubit) const override;

    /** Samples a projective measurement and collapses the state. */
    int measure(int qubit, Rng &rng) override;

    /** Collapses @p qubit to @p outcome and renormalises. */
    void postselect(int qubit, int outcome);

    /** @return tr(rho P) where @p axes gives a Pauli per qubit
     *  (axes[q] in {'I','X','Y','Z'}, axes.size() == numQubits()). */
    double pauliExpectation(const std::string &axes) const;

    /** @return <psi| rho |psi>. */
    double fidelityWith(const StateVector &psi) const;

    /** @return tr(rho^2). */
    double purity() const;

    /** @return tr(rho) (should stay 1 within rounding). */
    double traceReal() const;

    /** Renormalises to unit trace (guards against drift). */
    void normalize();

  private:
    void checkQubit(int qubit) const;
    /** rho -> M rho (2x2 block acting on @p qubit rows). */
    void leftMultiply1(const CMatrix &m, int qubit, CMatrix &target) const;

    int numQubits_;
    CMatrix rho_;
};

} // namespace eqasm::qsim

#endif // EQASM_QSIM_DENSITY_MATRIX_H
