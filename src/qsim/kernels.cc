/**
 * @file
 * Kernel dispatch + the scalar reference paths.
 *
 * The scalar loops here are the canonical definition of every kernel's
 * arithmetic: the vector paths in kernels_vec.cc reproduce these
 * expression trees lane for lane (see kernels.h for the bit-identity
 * contract). Keep the two files in sync — any change to an expression
 * here must be mirrored there, and tests/trajectory_test.cc will catch
 * a mismatch as a non-zero element diff.
 */
#include "qsim/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace eqasm::qsim::kernels {

namespace {

/** Finite-value complex multiply; see the cmul note in
 *  density_matrix.cc (bit-identical to __muldc3 on finite operands,
 *  but inlinable). */
inline Complex
cmul(const Complex &lhs, const Complex &rhs)
{
    return Complex{lhs.real() * rhs.real() - lhs.imag() * rhs.imag(),
                   lhs.real() * rhs.imag() + lhs.imag() * rhs.real()};
}

inline Complex
cmulConj(const Complex &lhs, const Complex &rhs)
{
    return cmul(lhs, std::conj(rhs));
}

SimdLevel
detectLevel()
{
#if defined(__AVX2__)
    // The whole binary targets AVX2 already; no runtime check needed.
    return SimdLevel::avx2;
#elif (defined(__x86_64__) || defined(_M_X64)) &&                        \
    (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") ? SimdLevel::avx2
                                          : SimdLevel::scalar;
#elif defined(__aarch64__)
    return SimdLevel::neon;
#else
    return SimdLevel::scalar;
#endif
}

std::atomic<bool> g_simd_enabled{true};

/** One-time env application, racing initialisations are idempotent. */
bool
initFromEnv()
{
    applySimdEnv();
    return true;
}

inline void
ensureInit()
{
    static const bool once = initFromEnv();
    (void)once;
}

} // namespace

std::string_view
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::avx2:
        return "avx2";
    case SimdLevel::neon:
        return "neon";
    case SimdLevel::scalar:
        break;
    }
    return "scalar";
}

SimdLevel
availableLevel()
{
    static const SimdLevel level = detectLevel();
    return level;
}

SimdLevel
activeLevel()
{
    ensureInit();
    return g_simd_enabled.load(std::memory_order_relaxed)
               ? availableLevel()
               : SimdLevel::scalar;
}

bool
simdActive()
{
    return activeLevel() != SimdLevel::scalar;
}

void
setSimdEnabled(bool enabled)
{
    ensureInit();
    g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

bool
simdEnabled()
{
    ensureInit();
    return g_simd_enabled.load(std::memory_order_relaxed);
}

void
applySimdEnv()
{
    const char *env = std::getenv("EQASM_SIMD");
    bool enabled = true;
    if (env != nullptr &&
        (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0 ||
         std::strcmp(env, "0") == 0)) {
        enabled = false;
    }
    g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

// ------------------------------------------------------------------
// State-vector kernels.
// ------------------------------------------------------------------

namespace {

void
svGate1Scalar(Complex *amp, size_t n, int qubit, const Complex *u)
{
    const Complex u00 = u[0], u01 = u[1], u10 = u[2], u11 = u[3];
    size_t stride = size_t{1} << qubit;
    for (size_t base = 0; base < n; base += 2 * stride) {
        for (size_t offset = 0; offset < stride; ++offset) {
            size_t i0 = base + offset;
            size_t i1 = i0 + stride;
            Complex a0 = amp[i0];
            Complex a1 = amp[i1];
            amp[i0] = cmul(u00, a0) + cmul(u01, a1);
            amp[i1] = cmul(u10, a0) + cmul(u11, a1);
        }
    }
}

void
svGate2Scalar(Complex *amp, size_t n, int qubit0, int qubit1,
              const Complex *u)
{
    size_t bit0 = size_t{1} << qubit0;
    size_t bit1 = size_t{1} << qubit1;
    size_t mask = bit0 | bit1;
    for (size_t index = 0; index < n; ++index) {
        if (index & mask)
            continue;
        const size_t idx[4] = {index, index | bit0, index | bit1,
                               index | mask};
        const Complex a[4] = {amp[idx[0]], amp[idx[1]], amp[idx[2]],
                              amp[idx[3]]};
        for (size_t r = 0; r < 4; ++r) {
            Complex sum{};
            for (size_t c = 0; c < 4; ++c)
                sum += cmul(u[4 * r + c], a[c]);
            amp[idx[r]] = sum;
        }
    }
}

double
svProbHalfScalar(const Complex *amp, size_t n, int qubit, int bit)
{
    size_t stride = size_t{1} << qubit;
    size_t start = bit ? stride : 0;
    double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
    if (stride == 1) {
        // Runs of a single complex value: both components go into the
        // first accumulator pair (the canonical order for short runs).
        for (size_t i = start; i < n; i += 2) {
            acc0 += amp[i].real() * amp[i].real();
            acc1 += amp[i].imag() * amp[i].imag();
        }
    } else {
        for (size_t base = start; base < n; base += 2 * stride) {
            for (size_t offset = 0; offset < stride; offset += 2) {
                const Complex &a0 = amp[base + offset];
                const Complex &a1 = amp[base + offset + 1];
                acc0 += a0.real() * a0.real();
                acc1 += a0.imag() * a0.imag();
                acc2 += a1.real() * a1.real();
                acc3 += a1.imag() * a1.imag();
            }
        }
    }
    return (acc0 + acc1) + (acc2 + acc3);
}

void
svScaleHalfScalar(Complex *amp, size_t n, int qubit, int bit, double s)
{
    size_t stride = size_t{1} << qubit;
    size_t start = bit ? stride : 0;
    for (size_t base = start; base < n; base += 2 * stride) {
        for (size_t offset = 0; offset < stride; ++offset) {
            Complex &a = amp[base + offset];
            a = Complex{a.real() * s, a.imag() * s};
        }
    }
}

void
svJumpDownScalar(Complex *amp, size_t n, int qubit, double scale)
{
    size_t stride = size_t{1} << qubit;
    for (size_t base = 0; base < n; base += 2 * stride) {
        for (size_t offset = 0; offset < stride; ++offset) {
            size_t i0 = base + offset;
            size_t i1 = i0 + stride;
            amp[i0] = Complex{amp[i1].real() * scale,
                              amp[i1].imag() * scale};
            amp[i1] = Complex{};
        }
    }
}

void
svDiagHalfScalar(Complex *amp, size_t n, int qubit, int bit, Complex d)
{
    size_t stride = size_t{1} << qubit;
    size_t start = bit ? stride : 0;
    for (size_t base = start; base < n; base += 2 * stride) {
        for (size_t offset = 0; offset < stride; ++offset) {
            Complex &a = amp[base + offset];
            a = cmul(d, a);
        }
    }
}

void
svPauliScalar(Complex *amp, size_t n, int qubit, int pauli)
{
    size_t stride = size_t{1} << qubit;
    for (size_t base = 0; base < n; base += 2 * stride) {
        for (size_t offset = 0; offset < stride; ++offset) {
            size_t i0 = base + offset;
            size_t i1 = i0 + stride;
            Complex a0 = amp[i0];
            Complex a1 = amp[i1];
            switch (pauli) {
            case 1: // X: swap.
                amp[i0] = a1;
                amp[i1] = a0;
                break;
            case 2: // Y = [[0,-i],[i,0]]: component moves + sign flips.
                amp[i0] = Complex{a1.imag(), -a1.real()};
                amp[i1] = Complex{-a0.imag(), a0.real()};
                break;
            default: // Z: negate the |1> half.
                amp[i1] = Complex{-a1.real(), -a1.imag()};
                break;
            }
        }
    }
}

void
svPhaseFlipWhereScalar(Complex *amp, size_t n, size_t mask, size_t match)
{
    for (size_t i = 0; i < n; ++i) {
        if ((i & mask) == match)
            amp[i] = Complex{-amp[i].real(), -amp[i].imag()};
    }
}

} // namespace

void
svGate1(Complex *amp, size_t n, int qubit, const Complex *u)
{
    if (qubit >= 1 && simdActive()) {
        vec::svGate1(amp, n, qubit, u);
        return;
    }
    svGate1Scalar(amp, n, qubit, u);
}

void
svGate2(Complex *amp, size_t n, int qubit0, int qubit1, const Complex *u)
{
    if (qubit0 >= 1 && qubit1 >= 1 && simdActive()) {
        vec::svGate2(amp, n, qubit0, qubit1, u);
        return;
    }
    svGate2Scalar(amp, n, qubit0, qubit1, u);
}

double
svProbHalf(const Complex *amp, size_t n, int qubit, int bit)
{
    if (qubit >= 1 && simdActive())
        return vec::svProbHalf(amp, n, qubit, bit);
    return svProbHalfScalar(amp, n, qubit, bit);
}

void
svScalePair(Complex *amp, size_t n, int qubit, double s0, double s1)
{
    if (qubit >= 1 && simdActive()) {
        vec::svScalePair(amp, n, qubit, s0, s1);
        return;
    }
    if (s0 != 1.0)
        svScaleHalfScalar(amp, n, qubit, 0, s0);
    if (s1 != 1.0)
        svScaleHalfScalar(amp, n, qubit, 1, s1);
}

void
svJumpDown(Complex *amp, size_t n, int qubit, double scale)
{
    if (qubit >= 1 && simdActive()) {
        vec::svJumpDown(amp, n, qubit, scale);
        return;
    }
    svJumpDownScalar(amp, n, qubit, scale);
}

void
svDiag1(Complex *amp, size_t n, int qubit, Complex d0, Complex d1)
{
    if (qubit >= 1 && simdActive()) {
        vec::svDiag1(amp, n, qubit, d0, d1);
        return;
    }
    if (d0 != Complex{1.0, 0.0})
        svDiagHalfScalar(amp, n, qubit, 0, d0);
    if (d1 != Complex{1.0, 0.0})
        svDiagHalfScalar(amp, n, qubit, 1, d1);
}

void
svPauli(Complex *amp, size_t n, int qubit, int pauli)
{
    // Exact component moves/negations: any implementation is
    // bit-identical, so the vector path only needs contiguous runs.
    if (qubit >= 1 && simdActive()) {
        vec::svPauli(amp, n, qubit, pauli);
        return;
    }
    svPauliScalar(amp, n, qubit, pauli);
}

void
svPhaseFlipWhere(Complex *amp, size_t n, size_t mask, size_t match)
{
    if ((mask & 1) == 0 && simdActive()) {
        vec::svPhaseFlipWhere(amp, n, mask, match);
        return;
    }
    svPhaseFlipWhereScalar(amp, n, mask, match);
}

// ------------------------------------------------------------------
// Density-matrix dispatchers. The vectorizable layout is contiguous
// column pairs, which needs every gate qubit above bit 0; otherwise
// report false and let density_matrix.cc run its scalar loops.
// ------------------------------------------------------------------

bool
dmGate1Vec(Complex *rho, size_t dim, int qubit, const Complex *u)
{
    if (qubit < 1 || !simdActive())
        return false;
    return vec::dmGate1(rho, dim, qubit, u);
}

bool
dmGate2Vec(Complex *rho, size_t dim, int qubit0, int qubit1,
           const Complex *u)
{
    if (qubit0 < 1 || qubit1 < 1 || !simdActive())
        return false;
    return vec::dmGate2(rho, dim, qubit0, qubit1, u);
}

bool
dmChannel1Vec(Complex *rho, size_t dim, int qubit, const Kraus1 *kk,
              size_t num_kraus)
{
    if (qubit < 1 || !simdActive())
        return false;
    return vec::dmChannel1(rho, dim, qubit, kk, num_kraus);
}

bool
dmChannel2Vec(Complex *rho, size_t dim, int qubit0, int qubit1,
              const Kraus2 *kk, size_t num_kraus)
{
    if (qubit0 < 1 || qubit1 < 1 || !simdActive())
        return false;
    return vec::dmChannel2(rho, dim, qubit0, qubit1, kk, num_kraus);
}

} // namespace eqasm::qsim::kernels
