/**
 * @file
 * Noise channels and the device noise model.
 *
 * The simulated superconducting device combines three error sources,
 * which together reproduce the error phenomenology of the paper's
 * Section 5 experiments:
 *
 *  - idle decoherence: amplitude damping (T1) plus pure dephasing
 *    (T_phi derived from T2), applied for every nanosecond a qubit sits
 *    idle between operations — the mechanism behind Fig. 12's growth of
 *    error with inter-gate interval;
 *  - gate depolarization: a depolarizing channel following every gate,
 *    modelling control-pulse infidelity (separately for single- and
 *    two-qubit gates; the paper's CZ is the dominant error in the
 *    Grover experiment);
 *  - readout assignment error: the reported bit flips with a given
 *    probability, which limits active reset to ~82.7 % in the paper.
 */
#ifndef EQASM_QSIM_NOISE_H
#define EQASM_QSIM_NOISE_H

#include <vector>

#include "common/json.h"
#include "qsim/density_matrix.h"
#include "qsim/linalg.h"

namespace eqasm::qsim {

/** Amplitude damping Kraus pair for decay probability @p gamma. */
std::vector<CMatrix> krausAmplitudeDamping(double gamma);

/** Phase damping Kraus pair for dephasing probability @p lambda. */
std::vector<CMatrix> krausPhaseDamping(double lambda);

/** Single-qubit depolarizing channel with error probability @p p
 *  (p is the total probability of applying one of X, Y, Z). */
std::vector<CMatrix> krausDepolarizing1(double p);

/** Two-qubit depolarizing channel over the 15 non-identity Paulis. */
std::vector<CMatrix> krausDepolarizing2(double p);

/** Calibrated noise parameters of a simulated transmon processor. */
struct NoiseModel {
    bool enabled = true;
    double t1Ns = 35'000.0;        ///< relaxation time.
    double t2Ns = 25'000.0;        ///< coherence time (T2 <= 2 T1).
    double depol1q = 5.0e-4;       ///< depolarizing p per 1q gate.
    double depol2q = 4.0e-2;       ///< depolarizing p per 2q gate.
    double readoutError = 0.085;   ///< P(reported bit != actual bit).
    double measDephase = 1.0;      ///< dephasing strength during readout.

    /** Perfect-device model (all error sources off). */
    static NoiseModel ideal();

    /** Loads from JSON ({"t1_ns": ..., "t2_ns": ..., ...}). */
    static NoiseModel fromJson(const Json &json);

    Json toJson() const;
};

/**
 * Applies idle decoherence for @p duration_ns to @p qubit: amplitude
 * damping gamma = 1 - exp(-t/T1) and extra pure dephasing so the total
 * off-diagonal decay matches exp(-t/T2).
 */
void applyIdleNoise(DensityMatrix &rho, int qubit, double duration_ns,
                    const NoiseModel &model);

/** Applies the post-gate depolarizing channel for a 1q gate. */
void applyGateNoise1(DensityMatrix &rho, int qubit,
                     const NoiseModel &model);

/** Applies the post-gate depolarizing channel for a 2q gate. */
void applyGateNoise2(DensityMatrix &rho, int qubit0, int qubit1,
                     const NoiseModel &model);

} // namespace eqasm::qsim

#endif // EQASM_QSIM_NOISE_H
