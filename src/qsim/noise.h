/**
 * @file
 * Noise channels and the device noise model.
 *
 * The simulated superconducting device combines three error sources,
 * which together reproduce the error phenomenology of the paper's
 * Section 5 experiments:
 *
 *  - idle decoherence: amplitude damping (T1) plus pure dephasing
 *    (T_phi derived from T2), applied for every nanosecond a qubit sits
 *    idle between operations — the mechanism behind Fig. 12's growth of
 *    error with inter-gate interval;
 *  - gate depolarization: a depolarizing channel following every gate,
 *    modelling control-pulse infidelity (separately for single- and
 *    two-qubit gates; the paper's CZ is the dominant error in the
 *    Grover experiment);
 *  - readout assignment error: the reported bit flips with a given
 *    probability, which limits active reset to ~82.7 % in the paper.
 */
#ifndef EQASM_QSIM_NOISE_H
#define EQASM_QSIM_NOISE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/json.h"
#include "qsim/density_matrix.h"
#include "qsim/linalg.h"

namespace eqasm::qsim {

/** Amplitude damping Kraus pair for decay probability @p gamma. */
std::vector<CMatrix> krausAmplitudeDamping(double gamma);

/** Phase damping Kraus pair for dephasing probability @p lambda. */
std::vector<CMatrix> krausPhaseDamping(double lambda);

/** Single-qubit depolarizing channel with error probability @p p
 *  (p is the total probability of applying one of X, Y, Z). */
std::vector<CMatrix> krausDepolarizing1(double p);

/** Two-qubit depolarizing channel over the 15 non-identity Paulis. */
std::vector<CMatrix> krausDepolarizing2(double p);

/** Calibrated noise parameters of a simulated transmon processor. */
struct NoiseModel {
    bool enabled = true;
    double t1Ns = 35'000.0;        ///< relaxation time.
    double t2Ns = 25'000.0;        ///< coherence time (T2 <= 2 T1).
    double depol1q = 5.0e-4;       ///< depolarizing p per 1q gate.
    double depol2q = 4.0e-2;       ///< depolarizing p per 2q gate.
    double readoutError = 0.085;   ///< P(reported bit != actual bit).
    double measDephase = 1.0;      ///< dephasing strength during readout.

    /** Perfect-device model (all error sources off). */
    static NoiseModel ideal();

    /** Loads from JSON ({"t1_ns": ..., "t2_ns": ..., ...}). */
    static NoiseModel fromJson(const Json &json);

    Json toJson() const;
};

/**
 * Memoized Kraus sets for the channels of one NoiseModel.
 *
 * Building a Kraus set heap-allocates several CMatrix objects (16 for
 * the two-qubit depolarizing channel) and, for the idle channels, pays
 * two exp() calls — per gate, per shot, for channels that are functions
 * of parameters that never change within a batch. The cache computes
 * each distinct channel once with exactly the kraus*() constructors
 * above and replays the stored operators afterwards, so cached and
 * uncached execution are bit-identical (same doubles in, same Kraus
 * operators out).
 *
 * Gate channels are keyed by their error probability; idle channels by
 * the exact bit pattern of duration_ns (idle gaps are cycle-grid
 * multiples, so a program has a small set of distinct durations that
 * repeat exactly — no quantization error is possible). A model change
 * (different T1/T2/p) invalidates the affected entries, and the idle
 * map is dropped if a pathological workload exceeds kMaxIdleEntries.
 *
 * One cache serves one DensityMatrix (engine replicas each own their
 * backend), so no locking is needed.
 */
class NoiseChannelCache
{
  public:
    /** Kraus pair of the gamma = 1 amplitude-damping channel — the
     *  trace-out-and-reprepare channel behind resetQubit(). */
    const std::vector<CMatrix> &qubitReset();

    /** Memoized krausDepolarizing1(p). */
    const std::vector<CMatrix> &depolarizing1(double p);

    /** Memoized krausDepolarizing2(p). */
    const std::vector<CMatrix> &depolarizing2(double p);

    /** The idle-decoherence channels for one duration. phaseDamping is
     *  empty when the model has no pure-dephasing component
     *  (1/T2 <= 1/(2 T1)). */
    struct IdleChannels {
        std::vector<CMatrix> amplitudeDamping;
        std::vector<CMatrix> phaseDamping;
    };

    /** Memoized idle channels for @p duration_ns under @p model. */
    const IdleChannels &idle(double duration_ns, const NoiseModel &model);

    /** Distinct idle durations cached so far (bench/test observability). */
    size_t idleEntries() const { return idle_.size(); }

    /**
     * Lookup tallies since construction: a hit replayed a stored Kraus
     * set, a miss (re)built one. Plain members — the cache is
     * single-threaded per backend — that the engine folds into the
     * telemetry registry at chunk boundaries, keeping the per-gate cost
     * at one increment.
     */
    uint64_t cacheHits() const { return hits_; }
    uint64_t cacheMisses() const { return misses_; }

  private:
    static constexpr size_t kMaxIdleEntries = 4096;

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;

    std::vector<CMatrix> reset_;
    double depol1P_ = -1.0;
    std::vector<CMatrix> depol1_;
    double depol2P_ = -1.0;
    std::vector<CMatrix> depol2_;
    double idleT1Ns_ = 0.0;
    double idleT2Ns_ = 0.0;
    std::unordered_map<uint64_t, IdleChannels> idle_;
};

/**
 * Applies idle decoherence for @p duration_ns to @p qubit: amplitude
 * damping gamma = 1 - exp(-t/T1) and extra pure dephasing so the total
 * off-diagonal decay matches exp(-t/T2). @p cache (when non-null)
 * memoizes the Kraus sets; results are bit-identical either way.
 */
void applyIdleNoise(DensityMatrix &rho, int qubit, double duration_ns,
                    const NoiseModel &model,
                    NoiseChannelCache *cache = nullptr);

/** Applies the post-gate depolarizing channel for a 1q gate. */
void applyGateNoise1(DensityMatrix &rho, int qubit,
                     const NoiseModel &model,
                     NoiseChannelCache *cache = nullptr);

/** Applies the post-gate depolarizing channel for a 2q gate. */
void applyGateNoise2(DensityMatrix &rho, int qubit0, int qubit1,
                     const NoiseModel &model,
                     NoiseChannelCache *cache = nullptr);

} // namespace eqasm::qsim

#endif // EQASM_QSIM_NOISE_H
