/**
 * @file
 * StateBackend — the pluggable quantum-state representation behind the
 * simulated device.
 *
 * The paper's architecture is agnostic to what sits behind the ADI: the
 * central controller emits codeword-triggered operations and receives
 * measurement bits. Mirroring that, the runtime's SimulatedDevice drives
 * an abstract StateBackend, and the concrete state representation is
 * chosen per DeviceConfig:
 *
 *  - BackendKind::density — the O(4^n) DensityMatrix with exact Kraus
 *    noise channels (T1/T2 amplitude/phase damping, depolarizing).
 *    Capped at 8 qubits; the physics reference for the Section 5
 *    experiments.
 *  - BackendKind::stabilizer — the Aaronson–Gottesman CHP tableau,
 *    O(n^2) per gate, Clifford-only, with Pauli-twirled stochastic
 *    noise. Opens distance-3+ surface-code QEC (17+ qubits) — the
 *    workload the paper names as benefiting most from SOMQ — to the
 *    parallel shot engine.
 *  - BackendKind::trajectory — the O(2^n) TrajectoryStateVector:
 *    Monte-Carlo quantum trajectories sampling one Kraus branch per
 *    noise event per shot. Exact circuit-level noise in distribution
 *    (beyond the stabilizer backend's Pauli-twirl approximation) up
 *    to 24 qubits; aggregate counts match density statistically, not
 *    by fingerprint.
 *
 * Determinism contract: backends draw randomness only from the Rng
 * passed into the noise/measurement hooks. The device hands them the
 * counter-based per-shot stream (Rng::forShot), so shot k produces the
 * same bits on any engine worker at any thread count.
 */
#ifndef EQASM_QSIM_STATE_BACKEND_H
#define EQASM_QSIM_STATE_BACKEND_H

#include <memory>
#include <optional>
#include <string_view>

#include "common/rng.h"
#include "qsim/gates.h"

namespace eqasm::qsim {

struct NoiseModel;

/** Selectable quantum-state representations. */
enum class BackendKind {
    density,     ///< exact mixed-state density matrix (<= 8 qubits).
    stabilizer,  ///< CHP stabilizer tableau (Clifford circuits only).
    trajectory,  ///< Monte-Carlo trajectory state vector (<= 24 qubits).
};

/** @return a stable lower-case name ("density", "stabilizer",
 *  "trajectory"). */
std::string_view backendKindName(BackendKind kind);

/** Parses a backend name (case-insensitive). */
std::optional<BackendKind> parseBackendKind(std::string_view name);

/** @return the largest qubit count @p kind can represent. */
int backendMaxQubits(BackendKind kind);

/**
 * Abstract quantum-state backend. One instance holds the state of all
 * qubits of one device replica for the duration of a shot.
 */
class StateBackend
{
  public:
    virtual ~StateBackend();

    virtual BackendKind kind() const = 0;
    virtual int numQubits() const = 0;

    /** Re-initialises to |0...0>. */
    virtual void reset() = 0;

    /** Re-prepares one qubit in |0> (active-reset modelling). Backends
     *  whose reset is stochastic draw from @p rng. */
    virtual void resetQubit(int qubit, Rng &rng) = 0;

    /** Applies a named/parsed single-qubit gate.
     *  @throws Error{configError} when the backend cannot represent the
     *          gate (e.g. a non-Clifford gate on the stabilizer
     *          backend). */
    virtual void applyGate1(const Gate &gate, int qubit) = 0;

    /** Applies a named/parsed two-qubit gate to (qubit0, qubit1) with
     *  qubit0 the first operand (LSB for matrix backends). */
    virtual void applyGate2(const Gate &gate, int qubit0, int qubit1) = 0;

    /**
     * Applies idle decoherence for @p duration_ns to @p qubit. The
     * density backend applies the exact T1/T2 Kraus channels and never
     * touches @p rng; the stabilizer backend samples a Pauli-twirled
     * error.
     */
    virtual void applyIdleNoise(int qubit, double duration_ns,
                                const NoiseModel &model, Rng &rng) = 0;

    /** Post-gate depolarizing noise for a single-qubit gate. */
    virtual void applyGateNoise1(int qubit, const NoiseModel &model,
                                 Rng &rng) = 0;

    /** Post-gate depolarizing noise for a two-qubit gate. */
    virtual void applyGateNoise2(int qubit0, int qubit1,
                                 const NoiseModel &model, Rng &rng) = 0;

    /** @return probability of measuring |1> on @p qubit. */
    virtual double probabilityOne(int qubit) const = 0;

    /**
     * Samples a projective Z measurement and collapses the state.
     * Consumes exactly one uniform draw from @p rng regardless of
     * whether the outcome is deterministic, so backends simulating the
     * same circuit stay draw-aligned and produce identical bits on
     * noiseless Clifford programs.
     */
    virtual int measure(int qubit, Rng &rng) = 0;
};

/**
 * Creates the backend for @p kind over @p num_qubits.
 * @throws Error{configError} when @p num_qubits exceeds what the
 *         backend can represent; the message names the qubit count and
 *         the backend so oversized topologies fail loudly instead of
 *         silently allocating a 4^n matrix.
 */
std::unique_ptr<StateBackend> makeBackend(BackendKind kind,
                                          int num_qubits);

} // namespace eqasm::qsim

#endif // EQASM_QSIM_STATE_BACKEND_H
