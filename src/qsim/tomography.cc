#include "qsim/tomography.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::qsim {

std::vector<std::string>
pauliStrings(int num_qubits)
{
    EQASM_ASSERT(num_qubits >= 1 && num_qubits <= 8,
                 "pauliStrings supports 1..8 qubits");
    const char axes[4] = {'I', 'X', 'Y', 'Z'};
    std::vector<std::string> out;
    size_t total = size_t{1} << (2 * num_qubits);
    out.reserve(total);
    for (size_t code = 0; code < total; ++code) {
        std::string s(static_cast<size_t>(num_qubits), 'I');
        size_t rest = code;
        for (int q = 0; q < num_qubits; ++q) {
            s[static_cast<size_t>(q)] = axes[rest & 3];
            rest >>= 2;
        }
        out.push_back(std::move(s));
    }
    return out;
}

CMatrix
pauliStringMatrix(const std::string &axes)
{
    EQASM_ASSERT(!axes.empty(), "empty Pauli string");
    // Qubit 0 is the LSB, so it is the rightmost kron factor.
    CMatrix out = pauli(axes[0]);
    for (size_t q = 1; q < axes.size(); ++q)
        out = pauli(axes[q]).kron(out);
    return out;
}

CMatrix
linearInversion(int num_qubits,
                const std::map<std::string, double> &expectations)
{
    size_t dim = size_t{1} << num_qubits;
    CMatrix rho(dim, dim);
    size_t expected = size_t{1} << (2 * num_qubits);
    if (expectations.size() != expected) {
        throwError(ErrorCode::invalidArgument,
                   format("linear inversion needs all %zu Pauli "
                          "expectations, got %zu",
                          expected, expectations.size()));
    }
    double scale = 1.0 / static_cast<double>(dim);
    for (const auto &[axes, value] : expectations) {
        if (axes.size() != static_cast<size_t>(num_qubits)) {
            throwError(ErrorCode::invalidArgument,
                       format("Pauli string '%s' has wrong length",
                              axes.c_str()));
        }
        rho = rho + pauliStringMatrix(axes) * Complex{value * scale, 0.0};
    }
    return rho;
}

CMatrix
mleProject(const CMatrix &rho)
{
    if (rho.rows() != rho.cols()) {
        throwError(ErrorCode::invalidArgument,
                   "mleProject needs a square matrix");
    }
    // Symmetrise to guard against rounding, then eigendecompose.
    CMatrix herm = (rho + rho.dagger()) * Complex{0.5, 0.0};
    EigenResult eig = eigenHermitian(herm);
    size_t n = eig.values.size();

    // Smolin-Gambetta-Smith: walk eigenvalues from the smallest; when a
    // value (plus accumulated deficit spread over the remaining ones)
    // would be negative, zero it and spread its mass over the rest.
    std::vector<double> values = eig.values; // ascending
    double accumulator = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double share = accumulator / static_cast<double>(n - i);
        if (values[i] + share < 0.0) {
            accumulator += values[i];
            values[i] = 0.0;
        } else {
            for (size_t j = i; j < n; ++j)
                values[j] += accumulator / static_cast<double>(n - i);
            accumulator = 0.0;
            break;
        }
    }

    CMatrix out(n, n);
    for (size_t k = 0; k < n; ++k) {
        if (values[k] <= 0.0)
            continue;
        for (size_t i = 0; i < n; ++i) {
            Complex vik = eig.vectors(i, k);
            if (vik == Complex{0.0, 0.0})
                continue;
            for (size_t j = 0; j < n; ++j) {
                out(i, j) += values[k] * vik *
                             std::conj(eig.vectors(j, k));
            }
        }
    }
    // Normalise the trace exactly.
    double trace = out.trace().real();
    EQASM_ASSERT(trace > 1e-12, "MLE projection collapsed to zero");
    return out * Complex{1.0 / trace, 0.0};
}

double
stateFidelity(const CMatrix &rho, const StateVector &psi)
{
    const auto &amp = psi.amplitudes();
    EQASM_ASSERT(rho.rows() == amp.size(),
                 "state fidelity dimension mismatch");
    Complex value = 0.0;
    for (size_t i = 0; i < rho.rows(); ++i) {
        for (size_t j = 0; j < rho.cols(); ++j)
            value += std::conj(amp[i]) * rho(i, j) * amp[j];
    }
    return value.real();
}

} // namespace eqasm::qsim
