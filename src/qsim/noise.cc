#include "qsim/noise.h"

#include <cmath>
#include <cstring>

#include "common/error.h"

namespace eqasm::qsim {

std::vector<CMatrix>
krausAmplitudeDamping(double gamma)
{
    EQASM_ASSERT(gamma >= 0.0 && gamma <= 1.0, "gamma out of [0, 1]");
    CMatrix k0(2, 2, {1.0, 0.0, 0.0, std::sqrt(1.0 - gamma)});
    CMatrix k1(2, 2, {0.0, std::sqrt(gamma), 0.0, 0.0});
    return {k0, k1};
}

std::vector<CMatrix>
krausPhaseDamping(double lambda)
{
    EQASM_ASSERT(lambda >= 0.0 && lambda <= 1.0, "lambda out of [0, 1]");
    CMatrix k0(2, 2, {1.0, 0.0, 0.0, std::sqrt(1.0 - lambda)});
    CMatrix k1(2, 2, {0.0, 0.0, 0.0, std::sqrt(lambda)});
    return {k0, k1};
}

std::vector<CMatrix>
krausDepolarizing1(double p)
{
    EQASM_ASSERT(p >= 0.0 && p <= 1.0, "p out of [0, 1]");
    std::vector<CMatrix> kraus;
    kraus.push_back(matI() * Complex{std::sqrt(1.0 - p), 0.0});
    double w = std::sqrt(p / 3.0);
    kraus.push_back(matX() * Complex{w, 0.0});
    kraus.push_back(matY() * Complex{w, 0.0});
    kraus.push_back(matZ() * Complex{w, 0.0});
    return kraus;
}

std::vector<CMatrix>
krausDepolarizing2(double p)
{
    EQASM_ASSERT(p >= 0.0 && p <= 1.0, "p out of [0, 1]");
    std::vector<CMatrix> kraus;
    const CMatrix paulis[4] = {matI(), matX(), matY(), matZ()};
    double w = std::sqrt(p / 15.0);
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            double weight = (a == 0 && b == 0) ? std::sqrt(1.0 - p) : w;
            // Operand 0 is the LSB: P_b (x) P_a with a on qubit0.
            kraus.push_back(paulis[b].kron(paulis[a]) *
                            Complex{weight, 0.0});
        }
    }
    return kraus;
}

NoiseModel
NoiseModel::ideal()
{
    NoiseModel model;
    model.enabled = false;
    model.depol1q = 0.0;
    model.depol2q = 0.0;
    model.readoutError = 0.0;
    return model;
}

NoiseModel
NoiseModel::fromJson(const Json &json)
{
    NoiseModel model;
    model.enabled = json.getBool("enabled", true);
    model.t1Ns = json.getDouble("t1_ns", model.t1Ns);
    model.t2Ns = json.getDouble("t2_ns", model.t2Ns);
    model.depol1q = json.getDouble("depol_1q", model.depol1q);
    model.depol2q = json.getDouble("depol_2q", model.depol2q);
    model.readoutError = json.getDouble("readout_error",
                                        model.readoutError);
    model.measDephase = json.getDouble("meas_dephase", model.measDephase);
    if (model.t2Ns > 2.0 * model.t1Ns) {
        throwError(ErrorCode::configError,
                   "noise model violates T2 <= 2 T1");
    }
    return model;
}

Json
NoiseModel::toJson() const
{
    Json out = Json::makeObject();
    out.set("enabled", enabled);
    out.set("t1_ns", t1Ns);
    out.set("t2_ns", t2Ns);
    out.set("depol_1q", depol1q);
    out.set("depol_2q", depol2q);
    out.set("readout_error", readoutError);
    out.set("meas_dephase", measDephase);
    return out;
}

const std::vector<CMatrix> &
NoiseChannelCache::qubitReset()
{
    if (reset_.empty()) {
        ++misses_;
        reset_ = krausAmplitudeDamping(1.0);
    } else {
        ++hits_;
    }
    return reset_;
}

const std::vector<CMatrix> &
NoiseChannelCache::depolarizing1(double p)
{
    if (depol1_.empty() || depol1P_ != p) {
        ++misses_;
        depol1_ = krausDepolarizing1(p);
        depol1P_ = p;
    } else {
        ++hits_;
    }
    return depol1_;
}

const std::vector<CMatrix> &
NoiseChannelCache::depolarizing2(double p)
{
    if (depol2_.empty() || depol2P_ != p) {
        ++misses_;
        depol2_ = krausDepolarizing2(p);
        depol2P_ = p;
    } else {
        ++hits_;
    }
    return depol2_;
}

namespace {

/** Exact cache key of a duration: its IEEE-754 bit pattern. */
uint64_t
durationKey(double duration_ns)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(duration_ns));
    std::memcpy(&bits, &duration_ns, sizeof(bits));
    return bits;
}

/** Builds the idle channels exactly as the uncached path does. */
NoiseChannelCache::IdleChannels
buildIdleChannels(double duration_ns, const NoiseModel &model)
{
    NoiseChannelCache::IdleChannels channels;
    double gamma = 1.0 - std::exp(-duration_ns / model.t1Ns);
    channels.amplitudeDamping = krausAmplitudeDamping(gamma);
    double inv_tphi = 1.0 / model.t2Ns - 0.5 / model.t1Ns;
    if (inv_tphi > 0.0) {
        double lambda = 1.0 - std::exp(-2.0 * duration_ns * inv_tphi);
        channels.phaseDamping = krausPhaseDamping(lambda);
    }
    return channels;
}

} // namespace

const NoiseChannelCache::IdleChannels &
NoiseChannelCache::idle(double duration_ns, const NoiseModel &model)
{
    // Idle entries are functions of (duration, T1, T2); a model change
    // invalidates them all. Likewise a pathological workload with more
    // distinct durations than the cap — dropping the map keeps every
    // returned reference valid for the duration of one lookup.
    if (model.t1Ns != idleT1Ns_ || model.t2Ns != idleT2Ns_ ||
        idle_.size() > kMaxIdleEntries) {
        idle_.clear();
        idleT1Ns_ = model.t1Ns;
        idleT2Ns_ = model.t2Ns;
    }
    uint64_t key = durationKey(duration_ns);
    auto it = idle_.find(key);
    if (it == idle_.end()) {
        ++misses_;
        it = idle_.emplace(key, buildIdleChannels(duration_ns, model))
                 .first;
    } else {
        ++hits_;
    }
    return it->second;
}

void
applyIdleNoise(DensityMatrix &rho, int qubit, double duration_ns,
               const NoiseModel &model, NoiseChannelCache *cache)
{
    if (!model.enabled || duration_ns <= 0.0)
        return;
    if (cache != nullptr) {
        const NoiseChannelCache::IdleChannels &channels =
            cache->idle(duration_ns, model);
        rho.applyChannel1(channels.amplitudeDamping, qubit);
        if (!channels.phaseDamping.empty())
            rho.applyChannel1(channels.phaseDamping, qubit);
        return;
    }
    double gamma = 1.0 - std::exp(-duration_ns / model.t1Ns);
    rho.applyChannel1(krausAmplitudeDamping(gamma), qubit);
    // Pure dephasing rate: 1/T_phi = 1/T2 - 1/(2 T1). The phase-damping
    // channel multiplies coherences by sqrt(1 - lambda), so lambda =
    // 1 - exp(-2 t / T_phi) realises the exp(-t/T_phi) factor.
    double inv_tphi = 1.0 / model.t2Ns - 0.5 / model.t1Ns;
    if (inv_tphi > 0.0) {
        double lambda = 1.0 - std::exp(-2.0 * duration_ns * inv_tphi);
        rho.applyChannel1(krausPhaseDamping(lambda), qubit);
    }
}

void
applyGateNoise1(DensityMatrix &rho, int qubit, const NoiseModel &model,
                NoiseChannelCache *cache)
{
    if (!model.enabled || model.depol1q <= 0.0)
        return;
    if (cache != nullptr) {
        rho.applyChannel1(cache->depolarizing1(model.depol1q), qubit);
        return;
    }
    rho.applyChannel1(krausDepolarizing1(model.depol1q), qubit);
}

void
applyGateNoise2(DensityMatrix &rho, int qubit0, int qubit1,
                const NoiseModel &model, NoiseChannelCache *cache)
{
    if (!model.enabled || model.depol2q <= 0.0)
        return;
    if (cache != nullptr) {
        rho.applyChannel2(cache->depolarizing2(model.depol2q), qubit0,
                          qubit1);
        return;
    }
    rho.applyChannel2(krausDepolarizing2(model.depol2q), qubit0, qubit1);
}

} // namespace eqasm::qsim
