#include "qsim/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::qsim {

CMatrix::CMatrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex{0.0, 0.0})
{
}

CMatrix::CMatrix(size_t rows, size_t cols, std::vector<Complex> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    if (data_.size() != rows_ * cols_) {
        throwError(ErrorCode::invalidArgument,
                   format("matrix data size %zu does not match %zux%zu",
                          data_.size(), rows_, cols_));
    }
}

CMatrix
CMatrix::identity(size_t n)
{
    CMatrix out(n, n);
    for (size_t i = 0; i < n; ++i)
        out(i, i) = 1.0;
    return out;
}

CMatrix
CMatrix::operator*(const CMatrix &other) const
{
    if (cols_ != other.rows_) {
        throwError(ErrorCode::invalidArgument,
                   "matrix product dimension mismatch");
    }
    CMatrix out(rows_, other.cols_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            Complex aik = (*this)(i, k);
            if (aik == Complex{0.0, 0.0})
                continue;
            for (size_t j = 0; j < other.cols_; ++j)
                out(i, j) += aik * other(k, j);
        }
    }
    return out;
}

CMatrix
CMatrix::operator+(const CMatrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_) {
        throwError(ErrorCode::invalidArgument,
                   "matrix sum dimension mismatch");
    }
    CMatrix out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += other.data_[i];
    return out;
}

CMatrix
CMatrix::operator-(const CMatrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_) {
        throwError(ErrorCode::invalidArgument,
                   "matrix difference dimension mismatch");
    }
    CMatrix out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= other.data_[i];
    return out;
}

CMatrix
CMatrix::operator*(Complex scalar) const
{
    CMatrix out = *this;
    for (Complex &value : out.data_)
        value *= scalar;
    return out;
}

CMatrix
CMatrix::dagger() const
{
    CMatrix out(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t j = 0; j < cols_; ++j)
            out(j, i) = std::conj((*this)(i, j));
    }
    return out;
}

CMatrix
CMatrix::kron(const CMatrix &other) const
{
    CMatrix out(rows_ * other.rows_, cols_ * other.cols_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t j = 0; j < cols_; ++j) {
            Complex aij = (*this)(i, j);
            if (aij == Complex{0.0, 0.0})
                continue;
            for (size_t k = 0; k < other.rows_; ++k) {
                for (size_t l = 0; l < other.cols_; ++l) {
                    out(i * other.rows_ + k, j * other.cols_ + l) =
                        aij * other(k, l);
                }
            }
        }
    }
    return out;
}

Complex
CMatrix::trace() const
{
    Complex sum = 0.0;
    size_t n = std::min(rows_, cols_);
    for (size_t i = 0; i < n; ++i)
        sum += (*this)(i, i);
    return sum;
}

double
CMatrix::distance(const CMatrix &other) const
{
    double sum = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        sum += std::norm(data_[i] - other.data_[i]);
    return std::sqrt(sum);
}

double
CMatrix::maxAbsDiff(const CMatrix &other) const
{
    double max_diff = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        max_diff = std::max(max_diff, std::abs(data_[i] - other.data_[i]));
    return max_diff;
}

bool
CMatrix::isHermitian(double tol) const
{
    if (rows_ != cols_)
        return false;
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t j = i; j < cols_; ++j) {
            if (std::abs((*this)(i, j) - std::conj((*this)(j, i))) > tol)
                return false;
        }
    }
    return true;
}

bool
CMatrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    CMatrix product = *this * dagger();
    return product.maxAbsDiff(CMatrix::identity(rows_)) <= tol;
}

std::vector<Complex>
multiply(const CMatrix &matrix, const std::vector<Complex> &vec)
{
    if (matrix.cols() != vec.size()) {
        throwError(ErrorCode::invalidArgument,
                   "matrix-vector dimension mismatch");
    }
    std::vector<Complex> out(matrix.rows(), Complex{0.0, 0.0});
    for (size_t i = 0; i < matrix.rows(); ++i) {
        Complex sum = 0.0;
        for (size_t j = 0; j < matrix.cols(); ++j)
            sum += matrix(i, j) * vec[j];
        out[i] = sum;
    }
    return out;
}

EigenResult
eigenHermitian(const CMatrix &matrix, double tol, int max_sweeps)
{
    if (matrix.rows() != matrix.cols()) {
        throwError(ErrorCode::invalidArgument,
                   "eigenHermitian needs a square matrix");
    }
    if (!matrix.isHermitian(1e-8)) {
        throwError(ErrorCode::invalidArgument,
                   "eigenHermitian needs a Hermitian matrix");
    }
    size_t n = matrix.rows();
    CMatrix a = matrix;
    CMatrix v = CMatrix::identity(n);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q)
                off += std::norm(a(p, q));
        }
        if (off < tol * tol)
            break;

        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                Complex apq = a(p, q);
                double mag = std::abs(apq);
                if (mag < 1e-300)
                    continue;
                // Phase of the off-diagonal element and the rotation
                // angle that annihilates it.
                Complex phase = apq / mag;
                double app = a(p, p).real();
                double aqq = a(q, q).real();
                double theta = 0.5 * std::atan2(2.0 * mag, aqq - app);
                double c = std::cos(theta);
                double s = std::sin(theta);

                // Columns p and q of A <- A J, with
                // J[p][p]=c, J[p][q]=-s*conj(phase)... chosen so that
                // (J^dagger A J)[p][q] = 0.
                for (size_t i = 0; i < n; ++i) {
                    Complex aip = a(i, p);
                    Complex aiq = a(i, q);
                    a(i, p) = c * aip - s * std::conj(phase) * aiq;
                    a(i, q) = s * phase * aip + c * aiq;
                }
                // Rows p and q of A <- J^dagger A.
                for (size_t j = 0; j < n; ++j) {
                    Complex apj = a(p, j);
                    Complex aqj = a(q, j);
                    a(p, j) = c * apj - s * phase * aqj;
                    a(q, j) = s * std::conj(phase) * apj + c * aqj;
                }
                // Accumulate eigenvectors: V <- V J.
                for (size_t i = 0; i < n; ++i) {
                    Complex vip = v(i, p);
                    Complex viq = v(i, q);
                    v(i, p) = c * vip - s * std::conj(phase) * viq;
                    v(i, q) = s * phase * vip + c * viq;
                }
            }
        }
    }

    // Collect and sort ascending.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::vector<double> diag(n);
    for (size_t i = 0; i < n; ++i)
        diag[i] = a(i, i).real();
    std::sort(order.begin(), order.end(),
              [&](size_t lhs, size_t rhs) { return diag[lhs] < diag[rhs]; });

    EigenResult result;
    result.values.resize(n);
    result.vectors = CMatrix(n, n);
    for (size_t k = 0; k < n; ++k) {
        result.values[k] = diag[order[k]];
        for (size_t i = 0; i < n; ++i)
            result.vectors(i, k) = v(i, order[k]);
    }
    return result;
}

} // namespace eqasm::qsim
