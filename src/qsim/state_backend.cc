#include "qsim/state_backend.h"

#include "common/error.h"
#include "common/strings.h"
#include "qsim/density_matrix.h"
#include "qsim/stabilizer_tableau.h"
#include "qsim/trajectory_state_vector.h"

namespace eqasm::qsim {

StateBackend::~StateBackend() = default;

std::string_view
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::density:
        return "density";
      case BackendKind::stabilizer:
        return "stabilizer";
      case BackendKind::trajectory:
        return "trajectory";
    }
    return "unknown";
}

std::optional<BackendKind>
parseBackendKind(std::string_view name)
{
    std::string lower = toLower(trim(name));
    if (lower == "density" || lower == "density_matrix" ||
        lower == "dm") {
        return BackendKind::density;
    }
    if (lower == "stabilizer" || lower == "chp" || lower == "tableau")
        return BackendKind::stabilizer;
    if (lower == "trajectory" || lower == "traj" ||
        lower == "statevector" || lower == "state_vector" ||
        lower == "sv") {
        return BackendKind::trajectory;
    }
    return std::nullopt;
}

int
backendMaxQubits(BackendKind kind)
{
    switch (kind) {
      case BackendKind::density:
        // O(4^n) storage: 8 qubits is a 65536-entry complex matrix.
        return 8;
      case BackendKind::stabilizer:
        // O(n^2) storage; far beyond what the mask-based ISA can
        // address, so the tableau never becomes the limit.
        return 4096;
      case BackendKind::trajectory:
        // O(2^n) storage: 24 qubits is a 256 MiB amplitude vector.
        return 24;
    }
    return 0;
}

std::unique_ptr<StateBackend>
makeBackend(BackendKind kind, int num_qubits)
{
    int limit = backendMaxQubits(kind);
    if (num_qubits < 1 || num_qubits > limit) {
        throwError(
            ErrorCode::configError,
            format("topology with %d qubits exceeds the %.*s backend "
                   "limit of %d qubits%s",
                   num_qubits,
                   static_cast<int>(backendKindName(kind).size()),
                   backendKindName(kind).data(), limit,
                   kind == BackendKind::density
                       ? " — select the trajectory backend for larger "
                         "noisy workloads or the stabilizer backend "
                         "for larger Clifford workloads"
                       : kind == BackendKind::trajectory
                             ? " — select the stabilizer backend for "
                               "larger Clifford workloads"
                             : ""));
    }
    switch (kind) {
      case BackendKind::density:
        return std::make_unique<DensityMatrix>(num_qubits);
      case BackendKind::stabilizer:
        return std::make_unique<StabilizerTableau>(num_qubits);
      case BackendKind::trajectory:
        return std::make_unique<TrajectoryStateVector>(num_qubits);
    }
    throwError(ErrorCode::invalidArgument, "unknown backend kind");
}

} // namespace eqasm::qsim
