/**
 * @file
 * Dense complex linear algebra for the quantum state simulators.
 *
 * Dimensions in this library are tiny (at most 2^8 for the density
 * matrix backend), so a straightforward dense row-major implementation
 * is both adequate and easy to audit. The Hermitian eigensolver is a
 * cyclic complex Jacobi iteration, used by the maximum-likelihood
 * tomography projection.
 */
#ifndef EQASM_QSIM_LINALG_H
#define EQASM_QSIM_LINALG_H

#include <complex>
#include <cstddef>
#include <vector>

namespace eqasm::qsim {

using Complex = std::complex<double>;

/** Dense row-major complex matrix. */
class CMatrix
{
  public:
    CMatrix() = default;

    /** Zero matrix of shape rows x cols. */
    CMatrix(size_t rows, size_t cols);

    /** Builds from a row-major initializer (size must be rows*cols). */
    CMatrix(size_t rows, size_t cols, std::vector<Complex> data);

    /** @return the n x n identity. */
    static CMatrix identity(size_t n);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    Complex &operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
    const Complex &
    operator()(size_t r, size_t c) const
    {
        return data_[r * cols_ + c];
    }

    const std::vector<Complex> &data() const { return data_; }
    std::vector<Complex> &data() { return data_; }

    CMatrix operator*(const CMatrix &other) const;
    CMatrix operator+(const CMatrix &other) const;
    CMatrix operator-(const CMatrix &other) const;
    CMatrix operator*(Complex scalar) const;

    /** Conjugate transpose. */
    CMatrix dagger() const;

    /** Kronecker product: this (x) other. */
    CMatrix kron(const CMatrix &other) const;

    Complex trace() const;

    /** Frobenius norm of (this - other). */
    double distance(const CMatrix &other) const;

    /** max_ij |a_ij - b_ij|; convenient for approximate comparisons. */
    double maxAbsDiff(const CMatrix &other) const;

    /** @return true iff max |A - A^dagger| element is below @p tol. */
    bool isHermitian(double tol = 1e-9) const;

    /** @return true iff max |A A^dagger - I| element is below @p tol. */
    bool isUnitary(double tol = 1e-9) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<Complex> data_;
};

/** Matrix-vector product. */
std::vector<Complex> multiply(const CMatrix &matrix,
                              const std::vector<Complex> &vec);

/** Result of a Hermitian eigendecomposition: A = V diag(values) V^dagger. */
struct EigenResult {
    std::vector<double> values;  ///< ascending eigenvalues.
    CMatrix vectors;             ///< column k is the k-th eigenvector.
};

/**
 * Eigendecomposition of a Hermitian matrix by cyclic complex Jacobi
 * rotations. @p matrix must be Hermitian (checked within tolerance).
 *
 * @throws Error{invalidArgument} when not square/Hermitian.
 */
EigenResult eigenHermitian(const CMatrix &matrix, double tol = 1e-12,
                           int max_sweeps = 100);

} // namespace eqasm::qsim

#endif // EQASM_QSIM_LINALG_H
