/**
 * @file
 * Vector-path kernels: explicit 256-bit lanes (two complex doubles)
 * via GCC/Clang vector extensions.
 *
 * On x86-64 this translation unit is compiled with -mavx2 (see
 * CMakeLists.txt) and entered only behind the runtime cpuid dispatch
 * in kernels.cc; on AArch64 the same source lowers to two 128-bit NEON
 * operations per vector and is the baseline path.
 *
 * Bit-identity with kernels.cc's scalar loops: every lane evaluates
 * the same expression tree as the scalar element —
 *   cmulv(k, v)  per lane pair = (kr*re + (ki*im)*-1, kr*im + (ki*re)*+1)
 * which matches cmul's (kr*re - ki*im, kr*im + ki*re) exactly
 * (x + (-y) == x - y, and *±1.0 is an exact sign operation in IEEE
 * 754). FMA contraction is disabled for this file (-ffp-contract=off)
 * so the two-instruction multiply+add sequence is never fused into a
 * differently-rounded fma. Reductions replicate the canonical
 * four-accumulator scheme: the accumulator vector's four slots ARE
 * acc0..acc3.
 */
#include "qsim/kernels.h"

#include <cstring>

namespace eqasm::qsim::kernels::vec {

namespace {

typedef double v4df __attribute__((vector_size(32)));

inline v4df
loadv(const Complex *p)
{
    v4df v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline void
storev(Complex *p, v4df v)
{
    std::memcpy(static_cast<void *>(p), &v, sizeof(v));
}

/** Swaps (re, im) within each complex lane. */
inline v4df
swapv(v4df v)
{
    return __builtin_shufflevector(v, v, 1, 0, 3, 2);
}

/** Broadcast complex k times two complex lanes; lane expression tree
 *  identical to kernels.cc's cmul(k, a). */
inline v4df
cmulv(const Complex &k, v4df v)
{
    const v4df sign = {-1.0, 1.0, -1.0, 1.0};
    return k.real() * v + (k.imag() * swapv(v)) * sign;
}

/** Matches cmulConj(a, k) == cmul(a, conj(k)) per lane (complex
 *  multiplication commutes operand-wise at the bit level: products
 *  commute exactly and the two cross terms feed one IEEE addition,
 *  which is commutative). */
inline v4df
cmulConjv(const Complex &k, v4df v)
{
    return cmulv(Complex{k.real(), -k.imag()}, v);
}

inline v4df
zerov()
{
    return v4df{0.0, 0.0, 0.0, 0.0};
}

} // namespace

// ------------------------------------------------------------------
// State-vector kernels. All entered with qubit >= 1 (contiguous runs
// of >= 2 complex values); dispatch guarantees it.
// ------------------------------------------------------------------

void
svGate1(Complex *amp, size_t n, int qubit, const Complex *u)
{
    const Complex u00 = u[0], u01 = u[1], u10 = u[2], u11 = u[3];
    size_t stride = size_t{1} << qubit;
    for (size_t base = 0; base < n; base += 2 * stride) {
        for (size_t offset = 0; offset < stride; offset += 2) {
            Complex *p0 = amp + base + offset;
            Complex *p1 = p0 + stride;
            v4df a0 = loadv(p0);
            v4df a1 = loadv(p1);
            storev(p0, cmulv(u00, a0) + cmulv(u01, a1));
            storev(p1, cmulv(u10, a0) + cmulv(u11, a1));
        }
    }
}

void
svGate2(Complex *amp, size_t n, int qubit0, int qubit1, const Complex *u)
{
    size_t bit0 = size_t{1} << qubit0;
    size_t bit1 = size_t{1} << qubit1;
    size_t mask = bit0 | bit1;
    // Valid base indices (no mask bit set) come in adjacent pairs
    // because bit 0 is not in the mask: vectorize over the pair.
    for (size_t base = 0; base < n; base += 2) {
        if (base & mask)
            continue;
        Complex *p[4] = {amp + base, amp + (base | bit0),
                         amp + (base | bit1), amp + (base | mask)};
        v4df a[4];
        for (size_t k = 0; k < 4; ++k)
            a[k] = loadv(p[k]);
        for (size_t r = 0; r < 4; ++r) {
            v4df sum = zerov();
            for (size_t c = 0; c < 4; ++c)
                sum += cmulv(u[4 * r + c], a[c]);
            storev(p[r], sum);
        }
    }
}

double
svProbHalf(const Complex *amp, size_t n, int qubit, int bit)
{
    size_t stride = size_t{1} << qubit;
    size_t start = bit ? stride : 0;
    v4df acc = zerov(); // slots are the canonical acc0..acc3.
    for (size_t base = start; base < n; base += 2 * stride) {
        for (size_t offset = 0; offset < stride; offset += 2) {
            v4df v = loadv(amp + base + offset);
            acc += v * v;
        }
    }
    return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

namespace {

void
svScaleHalf(Complex *amp, size_t n, int qubit, int bit, double s)
{
    size_t stride = size_t{1} << qubit;
    size_t start = bit ? stride : 0;
    for (size_t base = start; base < n; base += 2 * stride) {
        for (size_t offset = 0; offset < stride; offset += 2) {
            Complex *p = amp + base + offset;
            storev(p, loadv(p) * s);
        }
    }
}

void
svDiagHalf(Complex *amp, size_t n, int qubit, int bit, Complex d)
{
    size_t stride = size_t{1} << qubit;
    size_t start = bit ? stride : 0;
    for (size_t base = start; base < n; base += 2 * stride) {
        for (size_t offset = 0; offset < stride; offset += 2) {
            Complex *p = amp + base + offset;
            storev(p, cmulv(d, loadv(p)));
        }
    }
}

} // namespace

void
svScalePair(Complex *amp, size_t n, int qubit, double s0, double s1)
{
    if (s0 != 1.0)
        svScaleHalf(amp, n, qubit, 0, s0);
    if (s1 != 1.0)
        svScaleHalf(amp, n, qubit, 1, s1);
}

void
svJumpDown(Complex *amp, size_t n, int qubit, double scale)
{
    size_t stride = size_t{1} << qubit;
    for (size_t base = 0; base < n; base += 2 * stride) {
        for (size_t offset = 0; offset < stride; offset += 2) {
            Complex *p0 = amp + base + offset;
            Complex *p1 = p0 + stride;
            storev(p0, loadv(p1) * scale);
            storev(p1, zerov());
        }
    }
}

void
svDiag1(Complex *amp, size_t n, int qubit, Complex d0, Complex d1)
{
    if (d0 != Complex{1.0, 0.0})
        svDiagHalf(amp, n, qubit, 0, d0);
    if (d1 != Complex{1.0, 0.0})
        svDiagHalf(amp, n, qubit, 1, d1);
}

void
svPauli(Complex *amp, size_t n, int qubit, int pauli)
{
    size_t stride = size_t{1} << qubit;
    const v4df yneglow = {1.0, -1.0, 1.0, -1.0};  // (im, -re) lanes.
    const v4df yneghigh = {-1.0, 1.0, -1.0, 1.0}; // (-im, re) lanes.
    for (size_t base = 0; base < n; base += 2 * stride) {
        for (size_t offset = 0; offset < stride; offset += 2) {
            Complex *p0 = amp + base + offset;
            Complex *p1 = p0 + stride;
            switch (pauli) {
            case 1: { // X: swap halves.
                v4df a0 = loadv(p0);
                storev(p0, loadv(p1));
                storev(p1, a0);
                break;
            }
            case 2: { // Y: component swap + exact sign flips.
                v4df a0 = loadv(p0);
                v4df a1 = loadv(p1);
                storev(p0, swapv(a1) * yneglow);
                storev(p1, swapv(a0) * yneghigh);
                break;
            }
            default: // Z: negate the |1> half.
                storev(p1, loadv(p1) * -1.0);
                break;
            }
        }
    }
}

void
svPhaseFlipWhere(Complex *amp, size_t n, size_t mask, size_t match)
{
    // Dispatch guarantees bit 0 is not in the mask, so matching
    // indices come in adjacent pairs.
    for (size_t base = 0; base < n; base += 2) {
        if ((base & mask) != match)
            continue;
        Complex *p = amp + base;
        storev(p, loadv(p) * -1.0);
    }
}

// ------------------------------------------------------------------
// Density-matrix kernels: vectorized over the contiguous column
// offset within each block (qubits >= 1 guaranteed by dispatch).
// The per-lane expression sequences mirror density_matrix.cc's
// scalar block loops operation for operation.
// ------------------------------------------------------------------

bool
dmGate1(Complex *rho, size_t dim, int qubit, const Complex *u)
{
    const Complex u00 = u[0], u01 = u[1], u10 = u[2], u11 = u[3];
    size_t stride = size_t{1} << qubit;
    for (size_t rbase = 0; rbase < dim; rbase += 2 * stride) {
        for (size_t roffset = 0; roffset < stride; ++roffset) {
            Complex *row0 = rho + (rbase + roffset) * dim;
            Complex *row1 = row0 + stride * dim;
            for (size_t cbase = 0; cbase < dim; cbase += 2 * stride) {
                for (size_t coffset = 0; coffset < stride; coffset += 2) {
                    size_t c0 = cbase + coffset;
                    size_t c1 = c0 + stride;
                    v4df a00 = loadv(row0 + c0);
                    v4df a01 = loadv(row0 + c1);
                    v4df a10 = loadv(row1 + c0);
                    v4df a11 = loadv(row1 + c1);
                    v4df t00 = cmulv(u00, a00) + cmulv(u01, a10);
                    v4df t01 = cmulv(u00, a01) + cmulv(u01, a11);
                    v4df t10 = cmulv(u10, a00) + cmulv(u11, a10);
                    v4df t11 = cmulv(u10, a01) + cmulv(u11, a11);
                    storev(row0 + c0,
                           cmulConjv(u00, t00) + cmulConjv(u01, t01));
                    storev(row0 + c1,
                           cmulConjv(u10, t00) + cmulConjv(u11, t01));
                    storev(row1 + c0,
                           cmulConjv(u00, t10) + cmulConjv(u01, t11));
                    storev(row1 + c1,
                           cmulConjv(u10, t10) + cmulConjv(u11, t11));
                }
            }
        }
    }
    return true;
}

bool
dmGate2(Complex *rho, size_t dim, int qubit0, int qubit1, const Complex *u)
{
    size_t bit0 = size_t{1} << qubit0;
    size_t bit1 = size_t{1} << qubit1;
    size_t mask = bit0 | bit1;
    auto indexOf = [&](size_t base, size_t k) {
        return base | (k & 1 ? bit0 : 0) | (k & 2 ? bit1 : 0);
    };
    for (size_t rbase = 0; rbase < dim; ++rbase) {
        if (rbase & mask)
            continue;
        // Column bases pair up (bit 0 is not in the mask).
        for (size_t cbase = 0; cbase < dim; cbase += 2) {
            if (cbase & mask)
                continue;
            v4df a[4][4];
            for (size_t r = 0; r < 4; ++r) {
                const Complex *row = rho + indexOf(rbase, r) * dim;
                for (size_t c = 0; c < 4; ++c)
                    a[r][c] = loadv(row + indexOf(cbase, c));
            }
            v4df t[4][4];
            for (size_t c = 0; c < 4; ++c) {
                for (size_t r = 0; r < 4; ++r) {
                    v4df value = zerov();
                    for (size_t j = 0; j < 4; ++j)
                        value += cmulv(u[4 * r + j], a[j][c]);
                    t[r][c] = value;
                }
            }
            for (size_t r = 0; r < 4; ++r) {
                Complex *row = rho + indexOf(rbase, r) * dim;
                for (size_t c = 0; c < 4; ++c) {
                    v4df value = zerov();
                    for (size_t j = 0; j < 4; ++j)
                        value += cmulConjv(u[4 * c + j], t[r][j]);
                    storev(row + indexOf(cbase, c), value);
                }
            }
        }
    }
    return true;
}

bool
dmChannel1(Complex *rho, size_t dim, int qubit, const Kraus1 *kk,
           size_t num_kraus)
{
    size_t stride = size_t{1} << qubit;
    for (size_t rbase = 0; rbase < dim; rbase += 2 * stride) {
        for (size_t roffset = 0; roffset < stride; ++roffset) {
            Complex *row0 = rho + (rbase + roffset) * dim;
            Complex *row1 = row0 + stride * dim;
            for (size_t cbase = 0; cbase < dim; cbase += 2 * stride) {
                for (size_t coffset = 0; coffset < stride; coffset += 2) {
                    size_t c0 = cbase + coffset;
                    size_t c1 = c0 + stride;
                    const v4df a[2][2] = {
                        {loadv(row0 + c0), loadv(row0 + c1)},
                        {loadv(row1 + c0), loadv(row1 + c1)}};
                    v4df s00 = zerov(), s01 = zerov();
                    v4df s10 = zerov(), s11 = zerov();
                    for (size_t ki = 0; ki < num_kraus; ++ki) {
                        const Kraus1 &h = kk[ki];
                        if (h.sparse) {
                            int j0 = h.nz[0], j1 = h.nz[1];
                            v4df t[2][2] = {{zerov(), zerov()},
                                            {zerov(), zerov()}};
                            if (j0 >= 0) {
                                const Complex k0 = h.k[j0];
                                t[0][0] = cmulv(k0, a[j0][0]);
                                t[0][1] = cmulv(k0, a[j0][1]);
                            }
                            if (j1 >= 0) {
                                const Complex k1 = h.k[2 + j1];
                                t[1][0] = cmulv(k1, a[j1][0]);
                                t[1][1] = cmulv(k1, a[j1][1]);
                            }
                            if (j0 >= 0) {
                                const Complex k0 = h.k[j0];
                                s00 += cmulConjv(k0, t[0][j0]);
                                s10 += cmulConjv(k0, t[1][j0]);
                            }
                            if (j1 >= 0) {
                                const Complex k1 = h.k[2 + j1];
                                s01 += cmulConjv(k1, t[0][j1]);
                                s11 += cmulConjv(k1, t[1][j1]);
                            }
                        } else {
                            const Complex k00 = h.k[0], k01 = h.k[1];
                            const Complex k10 = h.k[2], k11 = h.k[3];
                            v4df t00 =
                                cmulv(k00, a[0][0]) + cmulv(k01, a[1][0]);
                            v4df t01 =
                                cmulv(k00, a[0][1]) + cmulv(k01, a[1][1]);
                            v4df t10 =
                                cmulv(k10, a[0][0]) + cmulv(k11, a[1][0]);
                            v4df t11 =
                                cmulv(k10, a[0][1]) + cmulv(k11, a[1][1]);
                            s00 += cmulConjv(k00, t00) +
                                   cmulConjv(k01, t01);
                            s01 += cmulConjv(k10, t00) +
                                   cmulConjv(k11, t01);
                            s10 += cmulConjv(k00, t10) +
                                   cmulConjv(k01, t11);
                            s11 += cmulConjv(k10, t10) +
                                   cmulConjv(k11, t11);
                        }
                    }
                    storev(row0 + c0, s00);
                    storev(row0 + c1, s01);
                    storev(row1 + c0, s10);
                    storev(row1 + c1, s11);
                }
            }
        }
    }
    return true;
}

bool
dmChannel2(Complex *rho, size_t dim, int qubit0, int qubit1,
           const Kraus2 *kk, size_t num_kraus)
{
    size_t bit0 = size_t{1} << qubit0;
    size_t bit1 = size_t{1} << qubit1;
    size_t mask = bit0 | bit1;
    auto indexOf = [&](size_t base, size_t k) {
        return base | (k & 1 ? bit0 : 0) | (k & 2 ? bit1 : 0);
    };
    for (size_t rbase = 0; rbase < dim; ++rbase) {
        if (rbase & mask)
            continue;
        for (size_t cbase = 0; cbase < dim; cbase += 2) {
            if (cbase & mask)
                continue;
            v4df a[4][4];
            for (size_t r = 0; r < 4; ++r) {
                const Complex *row = rho + indexOf(rbase, r) * dim;
                for (size_t c = 0; c < 4; ++c)
                    a[r][c] = loadv(row + indexOf(cbase, c));
            }
            v4df sum[4][4];
            for (size_t r = 0; r < 4; ++r) {
                for (size_t c = 0; c < 4; ++c)
                    sum[r][c] = zerov();
            }
            for (size_t ki = 0; ki < num_kraus; ++ki) {
                const Kraus2 &h = kk[ki];
                if (h.sparse) {
                    v4df t[4][4];
                    for (size_t r = 0; r < 4; ++r) {
                        for (size_t c = 0; c < 4; ++c)
                            t[r][c] = zerov();
                    }
                    for (size_t r = 0; r < 4; ++r) {
                        int jr = h.nz[r];
                        if (jr < 0)
                            continue;
                        const Complex kr = h.k[r][jr];
                        for (size_t c = 0; c < 4; ++c)
                            t[r][c] = cmulv(kr, a[jr][c]);
                    }
                    for (size_t c = 0; c < 4; ++c) {
                        int jc = h.nz[c];
                        if (jc < 0)
                            continue;
                        const Complex kc = h.k[c][jc];
                        for (size_t r = 0; r < 4; ++r)
                            sum[r][c] += cmulConjv(kc, t[r][jc]);
                    }
                    continue;
                }
                v4df t[4][4];
                for (size_t c = 0; c < 4; ++c) {
                    for (size_t r = 0; r < 4; ++r) {
                        v4df value = zerov();
                        for (size_t j = 0; j < 4; ++j)
                            value += cmulv(h.k[r][j], a[j][c]);
                        t[r][c] = value;
                    }
                }
                for (size_t r = 0; r < 4; ++r) {
                    for (size_t c = 0; c < 4; ++c) {
                        v4df value = zerov();
                        for (size_t j = 0; j < 4; ++j)
                            value += cmulConjv(h.k[c][j], t[r][j]);
                        sum[r][c] += value;
                    }
                }
            }
            for (size_t r = 0; r < 4; ++r) {
                Complex *row = rho + indexOf(rbase, r) * dim;
                for (size_t c = 0; c < 4; ++c)
                    storev(row + indexOf(cbase, c), sum[r][c]);
            }
        }
    }
    return true;
}

} // namespace eqasm::qsim::kernels::vec
