#include "qsim/trajectory_state_vector.h"

#include <cmath>
#include <cstring>

#include "common/error.h"
#include "common/strings.h"
#include "qsim/kernels.h"
#include "qsim/noise.h"

namespace eqasm::qsim {

namespace {

/** Exact-bit-pattern key for a duration (same idiom as
 *  NoiseChannelCache::durationKey). */
uint64_t
durationKey(double duration_ns)
{
    uint64_t key;
    static_assert(sizeof(key) == sizeof(duration_ns));
    std::memcpy(&key, &duration_ns, sizeof(key));
    return key;
}

} // namespace

TrajectoryStateVector::TrajectoryStateVector(int num_qubits)
    : numQubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > 24) {
        throwError(ErrorCode::invalidArgument,
                   format("state vector supports 1..24 qubits, got %d",
                          num_qubits));
    }
    amplitudes_.assign(size_t{1} << num_qubits, Complex{0.0, 0.0});
    amplitudes_[0] = 1.0;
}

void
TrajectoryStateVector::reset()
{
    std::fill(amplitudes_.begin(), amplitudes_.end(), Complex{0.0, 0.0});
    amplitudes_[0] = 1.0;
    unnormalized_ = false;
}

void
TrajectoryStateVector::checkQubit(int qubit) const
{
    if (qubit < 0 || qubit >= numQubits_) {
        throwError(ErrorCode::invalidArgument,
                   format("qubit %d out of range [0, %d)", qubit,
                          numQubits_));
    }
}

void
TrajectoryStateVector::applyGate1(const CMatrix &unitary, int qubit)
{
    checkQubit(qubit);
    EQASM_ASSERT(unitary.rows() == 2 && unitary.cols() == 2,
                 "applyGate1 needs a 2x2 matrix");
    const Complex u[4] = {unitary(0, 0), unitary(0, 1), unitary(1, 0),
                          unitary(1, 1)};
    // Diagonal gates (rz/s/t/z/i) touch each amplitude once — and an
    // exact-identity diagonal half not at all — instead of running the
    // full butterfly.
    if (u[1] == Complex{} && u[2] == Complex{}) {
        kernels::svDiag1(amplitudes_.data(), amplitudes_.size(), qubit,
                         u[0], u[3]);
        return;
    }
    kernels::svGate1(amplitudes_.data(), amplitudes_.size(), qubit, u);
}

void
TrajectoryStateVector::applyGate2(const CMatrix &unitary, int qubit0,
                                  int qubit1)
{
    checkQubit(qubit0);
    checkQubit(qubit1);
    EQASM_ASSERT(unitary.rows() == 4 && unitary.cols() == 4,
                 "applyGate2 needs a 4x4 matrix");
    EQASM_ASSERT(qubit0 != qubit1, "two-qubit gate needs distinct qubits");
    Complex u[16];
    bool diag = true;
    for (size_t r = 0; r < 4; ++r) {
        for (size_t c = 0; c < 4; ++c) {
            u[4 * r + c] = unitary(r, c);
            if (r != c && u[4 * r + c] != Complex{})
                diag = false;
        }
    }
    // CZ — the workhorse two-qubit gate of every surface-code round —
    // is diag(1, 1, 1, -1): flip the sign of the |11> quadrant and
    // leave the other three quadrants untouched (exact no-ops).
    if (diag && u[0] == Complex{1.0} && u[5] == Complex{1.0} &&
        u[10] == Complex{1.0} && u[15] == Complex{-1.0}) {
        size_t mask = (size_t{1} << qubit0) | (size_t{1} << qubit1);
        kernels::svPhaseFlipWhere(amplitudes_.data(), amplitudes_.size(),
                                  mask, mask);
        return;
    }
    kernels::svGate2(amplitudes_.data(), amplitudes_.size(), qubit0,
                     qubit1, u);
}

void
TrajectoryStateVector::apply(const Gate &gate,
                             const std::vector<int> &qubits)
{
    if (gate.numQubits == 1) {
        EQASM_ASSERT(qubits.size() == 1, "gate arity mismatch");
        applyGate1(gate.matrix, qubits[0]);
    } else {
        EQASM_ASSERT(qubits.size() == 2, "gate arity mismatch");
        applyGate2(gate.matrix, qubits[0], qubits[1]);
    }
}

void
TrajectoryStateVector::halfNorms(int qubit, double &p1,
                                 double &total) const
{
    p1 = kernels::svProbHalf(amplitudes_.data(), amplitudes_.size(),
                             qubit, 1);
    total = unnormalized_
                ? p1 + kernels::svProbHalf(amplitudes_.data(),
                                           amplitudes_.size(), qubit, 0)
                : 1.0;
}

void
TrajectoryStateVector::collapse(int qubit, int outcome,
                                double kept_unnorm)
{
    double scale = 1.0 / std::sqrt(kept_unnorm);
    if (outcome == 1) {
        kernels::svScalePair(amplitudes_.data(), amplitudes_.size(),
                             qubit, 0.0, scale);
    } else {
        kernels::svScalePair(amplitudes_.data(), amplitudes_.size(),
                             qubit, scale, 0.0);
    }
    unnormalized_ = false;
}

const TrajectoryStateVector::IdleParams &
TrajectoryStateVector::idleParams(double duration_ns,
                                  const NoiseModel &model)
{
    if (model.t1Ns != idleT1_ || model.t2Ns != idleT2_) {
        idleParams_.clear();
        idleT1_ = model.t1Ns;
        idleT2_ = model.t2Ns;
    }
    uint64_t key = durationKey(duration_ns);
    auto it = idleParams_.find(key);
    if (it == idleParams_.end()) {
        IdleParams p;
        p.gamma = 1.0 - std::exp(-duration_ns / model.t1Ns);
        double inv_tphi = 1.0 / model.t2Ns - 0.5 / model.t1Ns;
        p.lambda = inv_tphi > 0.0
                       ? 1.0 - std::exp(-2.0 * duration_ns * inv_tphi)
                       : 0.0;
        p.k0scale = std::sqrt((1.0 - p.gamma) * (1.0 - p.lambda));
        p.gl = p.gamma + (1.0 - p.gamma) * p.lambda;
        it = idleParams_.emplace(key, p).first;
    }
    return it->second;
}

void
TrajectoryStateVector::applyIdleNoise(int qubit, double duration_ns,
                                      const NoiseModel &model, Rng &rng)
{
    if (!model.enabled || duration_ns <= 0.0)
        return;
    checkQubit(qubit);
    const IdleParams &p = idleParams(duration_ns, model);
    double u = rng.uniform();
    if (u >= p.gl) {
        // P(K1) + P(K2) = gl * p1/N <= gl, so this draw selects the
        // no-jump branch K0 whatever the state holds. Deferred
        // normalization: scale only the |1> half by K0's damping
        // factor and leave ||psi|| < 1 until an operation that needs
        // p1 anyway renormalizes.
        if (p.k0scale != 1.0) {
            kernels::svScalePair(amplitudes_.data(), amplitudes_.size(),
                                 qubit, 1.0, p.k0scale);
            unnormalized_ = true;
        }
        return;
    }
    // Rare path: resolve the branch with the exact Born weights.
    double p1, total;
    halfNorms(qubit, p1, total);
    double t1 = p.gamma * p1 / total;
    double t2 = t1 + (1.0 - p.gamma) * p.lambda * p1 / total;
    if (u < t1) {
        // T1 relaxation jump: |1> amplitudes move to |0>, normalized.
        kernels::svJumpDown(amplitudes_.data(), amplitudes_.size(),
                            qubit, 1.0 / std::sqrt(p1));
        unnormalized_ = false;
        return;
    }
    if (u < t2) {
        // Pure-dephasing projection onto |1>.
        collapse(qubit, 1, p1);
        return;
    }
    // No-jump branch taken with its exact probability; since p1 and
    // the norm are in hand, renormalize instead of deferring. The
    // kept weight is N - gl*p1; a non-positive value can only mean
    // p1 ~ N with gamma ~ 1 (all weight decays), where the jump is
    // the right branch.
    double kept = total - p.gl * p1;
    if (kept <= 0.0) {
        kernels::svJumpDown(amplitudes_.data(), amplitudes_.size(),
                            qubit, 1.0 / std::sqrt(p1));
        unnormalized_ = false;
        return;
    }
    double inv = 1.0 / std::sqrt(kept);
    kernels::svScalePair(amplitudes_.data(), amplitudes_.size(), qubit,
                         inv, p.k0scale * inv);
    unnormalized_ = false;
}

void
TrajectoryStateVector::applyGateNoise1(int qubit, const NoiseModel &model,
                                       Rng &rng)
{
    if (!model.enabled || model.depol1q <= 0.0)
        return;
    checkQubit(qubit);
    // Depolarizing branch weights are state-independent (Pauli Kraus
    // operators are unitary up to the branch weight): one draw, and
    // the overwhelmingly common identity branch never reads the state.
    double u = rng.uniform();
    if (u >= model.depol1q)
        return;
    int pauli = 1 + static_cast<int>(u / (model.depol1q / 3.0));
    if (pauli > 3)
        pauli = 3;
    kernels::svPauli(amplitudes_.data(), amplitudes_.size(), qubit,
                     pauli);
}

void
TrajectoryStateVector::applyGateNoise2(int qubit0, int qubit1,
                                       const NoiseModel &model, Rng &rng)
{
    if (!model.enabled || model.depol2q <= 0.0)
        return;
    checkQubit(qubit0);
    checkQubit(qubit1);
    double u = rng.uniform();
    if (u >= model.depol2q)
        return;
    // One of the 15 non-identity Pauli pairs, uniformly; index 1..15
    // decomposes as (low two bits -> qubit0's Pauli, high two bits ->
    // qubit1's), matching krausDepolarizing2's enumeration.
    int idx = 1 + static_cast<int>(u / (model.depol2q / 15.0));
    if (idx > 15)
        idx = 15;
    int pauli0 = idx & 3;
    int pauli1 = idx >> 2;
    if (pauli0 != 0) {
        kernels::svPauli(amplitudes_.data(), amplitudes_.size(), qubit0,
                         pauli0);
    }
    if (pauli1 != 0) {
        kernels::svPauli(amplitudes_.data(), amplitudes_.size(), qubit1,
                         pauli1);
    }
}

void
TrajectoryStateVector::resetQubit(int qubit, Rng &rng)
{
    checkQubit(qubit);
    // The gamma = 1 amplitude-damping channel, sampled: with
    // probability p1 the qubit relaxes from |1> (jump branch), else it
    // is projected onto |0>. Either way it ends in |0>; the branch
    // decides what happens to the rest of the register's correlations.
    double p1, total;
    halfNorms(qubit, p1, total);
    double u = rng.uniform();
    if (u < p1 / total) {
        kernels::svJumpDown(amplitudes_.data(), amplitudes_.size(),
                            qubit, 1.0 / std::sqrt(p1));
        unnormalized_ = false;
        return;
    }
    collapse(qubit, 0, total - p1);
}

double
TrajectoryStateVector::probabilityOne(int qubit) const
{
    checkQubit(qubit);
    double p1, total;
    halfNorms(qubit, p1, total);
    return unnormalized_ ? p1 / total : p1;
}

int
TrajectoryStateVector::measure(int qubit, Rng &rng)
{
    checkQubit(qubit);
    double p1, total;
    halfNorms(qubit, p1, total);
    double prob_one = unnormalized_ ? p1 / total : p1;
    int outcome = rng.uniform() < prob_one ? 1 : 0;
    collapse(qubit, outcome, outcome == 1 ? p1 : total - p1);
    return outcome;
}

void
TrajectoryStateVector::postselect(int qubit, int outcome)
{
    checkQubit(qubit);
    double p1, total;
    halfNorms(qubit, p1, total);
    double kept = outcome == 1 ? p1 : total - p1;
    if (kept <= 0.0) {
        throwError(ErrorCode::invalidArgument,
                   format("postselecting qubit %d on %d has probability 0",
                          qubit, outcome));
    }
    collapse(qubit, outcome, kept);
}

double
TrajectoryStateVector::fidelity(const TrajectoryStateVector &other) const
{
    EQASM_ASSERT(numQubits_ == other.numQubits_,
                 "fidelity needs equal qubit counts");
    Complex overlap = 0.0;
    for (size_t index = 0; index < amplitudes_.size(); ++index)
        overlap += std::conj(amplitudes_[index]) * other.amplitudes_[index];
    return std::norm(overlap);
}

double
TrajectoryStateVector::probabilityOf(uint64_t index) const
{
    EQASM_ASSERT(index < amplitudes_.size(), "basis index out of range");
    return std::norm(amplitudes_[index]);
}

uint64_t
TrajectoryStateVector::sampleAll(Rng &rng) const
{
    double r = rng.uniform();
    double cumulative = 0.0;
    for (size_t index = 0; index < amplitudes_.size(); ++index) {
        cumulative += std::norm(amplitudes_[index]);
        if (r < cumulative)
            return index;
    }
    return amplitudes_.size() - 1;
}

double
TrajectoryStateVector::expectationZ(int qubit) const
{
    return 1.0 - 2.0 * probabilityOne(qubit);
}

double
TrajectoryStateVector::norm() const
{
    double sum = 0.0;
    for (const Complex &amp : amplitudes_)
        sum += std::norm(amp);
    return sum;
}

} // namespace eqasm::qsim
