/**
 * @file
 * Gate library: named unitaries used across the simulator.
 *
 * Gate semantics strings come from the operation-set configuration
 * (isa::OperationInfo::unitary). The grammar is:
 *
 *   fixed:      i x y z h s sdg t tdg x90 y90 xm90 ym90 z90 zm90
 *   parametric: rx:<deg>  ry:<deg>  rz:<deg>
 *   two-qubit:  cz cnot swap
 *
 * Rotations follow the physics convention R_a(theta) = exp(-i theta A/2),
 * so "x90" = R_x(+pi/2) and "xm90" = R_x(-pi/2).
 */
#ifndef EQASM_QSIM_GATES_H
#define EQASM_QSIM_GATES_H

#include <optional>
#include <string>
#include <string_view>

#include "qsim/linalg.h"

namespace eqasm::qsim {

/** A named unitary acting on one or two qubits. */
struct Gate {
    std::string name;
    int numQubits = 1;
    CMatrix matrix;  ///< 2x2 or 4x4 unitary.
};

/** Fixed 2x2 matrices. */
CMatrix matI();
CMatrix matX();
CMatrix matY();
CMatrix matZ();
CMatrix matH();
CMatrix matS();
CMatrix matSdg();
CMatrix matT();
CMatrix matTdg();

/** Rotations by @p radians around the x/y/z axis. */
CMatrix matRx(double radians);
CMatrix matRy(double radians);
CMatrix matRz(double radians);

/** Fixed 4x4 matrices (qubit order: operand 0 is the least significant
 *  index bit; for CNOT/CZ operand 0 is the control). */
CMatrix matCz();
CMatrix matCnot();
CMatrix matSwap();

/**
 * Resolves a gate semantics string (see file comment).
 * @return std::nullopt for the non-unitary "measz" marker or an
 *         unrecognised name.
 */
std::optional<Gate> makeGate(std::string_view name);

/** @return the single-qubit Pauli matrix for axis 'I','X','Y','Z'. */
CMatrix pauli(char axis);

} // namespace eqasm::qsim

#endif // EQASM_QSIM_GATES_H
