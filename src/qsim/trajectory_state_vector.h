/**
 * @file
 * Monte-Carlo trajectory state-vector simulator.
 *
 * The third StateBackend: a 2^n pure-state amplitude vector in which
 * every noise event (idle T1/T2, post-gate depolarizing, qubit reset)
 * samples exactly ONE Kraus branch with the Born probability
 * p_k = ||K_k psi||^2 / ||psi||^2, drawing one uniform from the
 * per-shot RNG stream per event. Averaged over shots this reproduces
 * the density-matrix channel exactly (it is the standard quantum
 * trajectory / quantum jump unravelling), while a single shot costs
 * O(2^n) memory instead of O(4^n) — circuit-level noise at d=3
 * (17 qubits) and beyond, where the density backend stops at 8.
 *
 * Validation contract: per-shot results are bit-deterministic for a
 * fixed (seed, shot index) at any thread count — the same fingerprint
 * guarantees as every other backend — but aggregate counts agree with
 * density only in distribution, so cross-backend checks are
 * statistical (total-variation bounds in tests), never fingerprints.
 *
 * Sampling scheme (one draw per event, deferred normalization):
 *
 *  - The fused idle channel is the 3-operator set
 *      K0 = diag(1, sqrt((1-g)(1-l)))   (no jump)
 *      K1 = [[0, sqrt(g)], [0, 0]]      (T1 relaxation jump)
 *      K2 = diag(0, sqrt((1-g) l))      (pure-dephasing projection)
 *    with g = 1 - exp(-t/T1) and l = 1 - exp(-2 t / T_phi). This is
 *    element-for-element the operator product of the phase-damping
 *    set after the amplitude-damping set (the cross term
 *    K1_phase K1_amp is the zero matrix), so one draw from this set
 *    is distributed identically to density's sequential
 *    amplitude-then-phase composition.
 *  - P(K1) + P(K2) = (g + (1-g) l) * p1 / N <= gl regardless of the
 *    state, so a draw u >= gl selects K0 with certainty WITHOUT
 *    reading the state; the kernel then multiplies only the |1> half
 *    by K0's sqrt((1-g)(1-l)) and leaves the vector unnormalized
 *    (tracked by a flag). Rare branches (u < gl) and measurements
 *    compute p1 and the norm exactly and renormalize, restoring the
 *    invariant. Depolarizing branches are state-independent Pauli
 *    mixtures — one draw, no state read, applied as exact
 *    permutation/negation kernels.
 *
 * The class absorbs the former standalone qsim::StateVector (same
 * constructor contract, gate application, measurement, fidelity and
 * sampling API; `StateVector` is now an alias), so tomography, the
 * Grover analysis and the DensityMatrix pure-state bridge all run on
 * this one implementation. All hot loops go through qsim/kernels.h
 * and are SIMD-dispatched.
 *
 * Qubit 0 is the least significant bit of the basis index, matching
 * DensityMatrix.
 */
#ifndef EQASM_QSIM_TRAJECTORY_STATE_VECTOR_H
#define EQASM_QSIM_TRAJECTORY_STATE_VECTOR_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "qsim/gates.h"
#include "qsim/linalg.h"
#include "qsim/state_backend.h"

namespace eqasm::qsim {

struct NoiseModel;

/** Trajectory state-vector simulator for up to 24 qubits. */
class TrajectoryStateVector : public StateBackend
{
  public:
    /** Initialises |0...0> on @p num_qubits qubits. */
    explicit TrajectoryStateVector(int num_qubits);

    BackendKind kind() const override { return BackendKind::trajectory; }
    int numQubits() const override { return numQubits_; }
    size_t dim() const { return amplitudes_.size(); }

    /** Resets to |0...0>. */
    void reset() override;

    const std::vector<Complex> &amplitudes() const { return amplitudes_; }

    /** Applies a 2x2 unitary to @p qubit. */
    void applyGate1(const CMatrix &unitary, int qubit);

    /** Applies a 4x4 unitary to (qubit0 = LSB operand, qubit1). */
    void applyGate2(const CMatrix &unitary, int qubit0, int qubit1);

    /** Applies a named/parsed Gate to the listed qubits. */
    void apply(const Gate &gate, const std::vector<int> &qubits);

    // --- StateBackend gate hooks ---
    void applyGate1(const Gate &gate, int qubit) override
    {
        applyGate1(gate.matrix, qubit);
    }
    void applyGate2(const Gate &gate, int qubit0, int qubit1) override
    {
        applyGate2(gate.matrix, qubit0, qubit1);
    }

    /** Samples the gamma = 1 amplitude-damping branch pair: one
     *  uniform draw decides whether the qubit relaxes from |1> or is
     *  projected onto |0>; either way it ends in |0>. */
    void resetQubit(int qubit, Rng &rng) override;

    /** Samples one branch of the fused T1/T2 idle channel (one
     *  uniform draw when the model is enabled and the duration is
     *  positive; see the file comment for the scheme). */
    void applyIdleNoise(int qubit, double duration_ns,
                        const NoiseModel &model, Rng &rng) override;

    /** Samples the post-gate depolarizing Pauli (one uniform draw;
     *  probability depol1q split evenly over X, Y, Z). */
    void applyGateNoise1(int qubit, const NoiseModel &model,
                         Rng &rng) override;

    /** Samples the two-qubit depolarizing Pauli pair (one uniform
     *  draw over the 15 non-identity pairs). */
    void applyGateNoise2(int qubit0, int qubit1, const NoiseModel &model,
                         Rng &rng) override;

    /** @return probability of measuring |1> on @p qubit (normalized
     *  even while the vector is internally unnormalized). */
    double probabilityOne(int qubit) const override;

    /**
     * Projective measurement of @p qubit: consumes exactly one uniform
     * draw (the StateBackend contract), collapses and renormalises.
     */
    int measure(int qubit, Rng &rng) override;

    /** Collapses @p qubit to @p outcome (must have nonzero probability). */
    void postselect(int qubit, int outcome);

    /** @return |<this|other>|^2 (assumes both states normalized). */
    double fidelity(const TrajectoryStateVector &other) const;

    /** @return probability of the computational basis state @p index. */
    double probabilityOf(uint64_t index) const;

    /** Samples a full computational-basis outcome without collapse
     *  (assumes a normalized state). */
    uint64_t sampleAll(Rng &rng) const;

    /** @return <Z_qubit>. */
    double expectationZ(int qubit) const;

    /** Squared norm (1 within rounding after any renormalizing op). */
    double norm() const;

  private:
    /** Precomputed per-duration idle-channel parameters (mirrors
     *  NoiseChannelCache's exact-bit-pattern keying: idle gaps are
     *  cycle-grid multiples, so durations repeat exactly). */
    struct IdleParams {
        double gamma;    ///< 1 - exp(-t/T1).
        double lambda;   ///< 1 - exp(-2 t/T_phi), 0 if no dephasing.
        double k0scale;  ///< sqrt((1-gamma)(1-lambda)).
        double gl;       ///< gamma + (1-gamma) lambda = P_max(non-K0).
    };

    void checkQubit(int qubit) const;
    const IdleParams &idleParams(double duration_ns,
                                 const NoiseModel &model);
    /** Unnormalized |1>-weight and total norm^2 of @p qubit. */
    void halfNorms(int qubit, double &p1, double &total) const;
    /** Collapses @p qubit to @p outcome given its unnormalized kept
     *  weight; renormalises and clears the deferred-norm flag. */
    void collapse(int qubit, int outcome, double kept_unnorm);

    int numQubits_;
    std::vector<Complex> amplitudes_;
    /** True while a deferred idle-K0 branch has left ||psi|| < 1;
     *  every renormalizing operation (measure, collapse, rare idle
     *  branch, reset) restores it to false. */
    bool unnormalized_ = false;

    double idleT1_ = 0.0;
    double idleT2_ = 0.0;
    std::unordered_map<uint64_t, IdleParams> idleParams_;
};

/** The amplitude-vector implementation behind the historical name:
 *  tomography, Grover analysis and the DensityMatrix bridge take a
 *  StateVector; noise-free use never touches the sampling hooks. */
using StateVector = TrajectoryStateVector;

} // namespace eqasm::qsim

#endif // EQASM_QSIM_TRAJECTORY_STATE_VECTOR_H
