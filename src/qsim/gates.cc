#include "qsim/gates.h"

#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::qsim {
namespace {
const Complex kI{0.0, 1.0};
} // namespace

CMatrix
matI()
{
    return CMatrix(2, 2, {1.0, 0.0, 0.0, 1.0});
}

CMatrix
matX()
{
    return CMatrix(2, 2, {0.0, 1.0, 1.0, 0.0});
}

CMatrix
matY()
{
    return CMatrix(2, 2, {0.0, -kI, kI, 0.0});
}

CMatrix
matZ()
{
    return CMatrix(2, 2, {1.0, 0.0, 0.0, -1.0});
}

CMatrix
matH()
{
    double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    return CMatrix(2, 2,
                   {inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2});
}

CMatrix
matS()
{
    return CMatrix(2, 2, {1.0, 0.0, 0.0, kI});
}

CMatrix
matSdg()
{
    return CMatrix(2, 2, {1.0, 0.0, 0.0, -kI});
}

CMatrix
matT()
{
    return CMatrix(2, 2, {1.0, 0.0, 0.0, std::exp(kI * (M_PI / 4.0))});
}

CMatrix
matTdg()
{
    return CMatrix(2, 2, {1.0, 0.0, 0.0, std::exp(-kI * (M_PI / 4.0))});
}

CMatrix
matRx(double radians)
{
    double c = std::cos(radians / 2.0);
    double s = std::sin(radians / 2.0);
    return CMatrix(2, 2, {c, -kI * s, -kI * s, c});
}

CMatrix
matRy(double radians)
{
    double c = std::cos(radians / 2.0);
    double s = std::sin(radians / 2.0);
    return CMatrix(2, 2, {c, -s, s, c});
}

CMatrix
matRz(double radians)
{
    return CMatrix(2, 2,
                   {std::exp(-kI * (radians / 2.0)), 0.0, 0.0,
                    std::exp(kI * (radians / 2.0))});
}

CMatrix
matCz()
{
    CMatrix out = CMatrix::identity(4);
    out(3, 3) = -1.0;
    return out;
}

CMatrix
matCnot()
{
    // Operand 0 (LSB of the index) is the control: basis order
    // |q1 q0> = |00>, |01>, |10>, |11>; control set in |01> and |11>.
    CMatrix out(4, 4);
    out(0, 0) = 1.0;
    out(1, 3) = 1.0;
    out(2, 2) = 1.0;
    out(3, 1) = 1.0;
    return out;
}

CMatrix
matSwap()
{
    CMatrix out(4, 4);
    out(0, 0) = 1.0;
    out(1, 2) = 1.0;
    out(2, 1) = 1.0;
    out(3, 3) = 1.0;
    return out;
}

std::optional<Gate>
makeGate(std::string_view name)
{
    std::string lower = toLower(trim(name));
    auto single = [&](CMatrix matrix) {
        return Gate{lower, 1, std::move(matrix)};
    };
    auto twoQ = [&](CMatrix matrix) {
        return Gate{lower, 2, std::move(matrix)};
    };

    if (lower == "i" || lower == "id")
        return single(matI());
    if (lower == "x")
        return single(matX());
    if (lower == "y")
        return single(matY());
    if (lower == "z")
        return single(matZ());
    if (lower == "h")
        return single(matH());
    if (lower == "s")
        return single(matS());
    if (lower == "sdg")
        return single(matSdg());
    if (lower == "t")
        return single(matT());
    if (lower == "tdg")
        return single(matTdg());
    if (lower == "x90")
        return single(matRx(M_PI / 2.0));
    if (lower == "xm90")
        return single(matRx(-M_PI / 2.0));
    if (lower == "y90")
        return single(matRy(M_PI / 2.0));
    if (lower == "ym90")
        return single(matRy(-M_PI / 2.0));
    if (lower == "z90")
        return single(matRz(M_PI / 2.0));
    if (lower == "zm90")
        return single(matRz(-M_PI / 2.0));
    if (lower == "cz")
        return twoQ(matCz());
    if (lower == "cnot")
        return twoQ(matCnot());
    if (lower == "swap")
        return twoQ(matSwap());

    // Parametric rotations: "rx:<degrees>".
    for (const char *prefix : {"rx:", "ry:", "rz:"}) {
        if (startsWith(lower, prefix)) {
            double degrees = 0.0;
            try {
                degrees = std::stod(lower.substr(3));
            } catch (const std::exception &) {
                return std::nullopt;
            }
            double radians = degrees * M_PI / 180.0;
            CMatrix matrix = prefix[1] == 'x'   ? matRx(radians)
                             : prefix[1] == 'y' ? matRy(radians)
                                                : matRz(radians);
            return single(std::move(matrix));
        }
    }
    return std::nullopt;
}

CMatrix
pauli(char axis)
{
    switch (axis) {
      case 'I': case 'i': return matI();
      case 'X': case 'x': return matX();
      case 'Y': case 'y': return matY();
      case 'Z': case 'z': return matZ();
      default:
        throwError(ErrorCode::invalidArgument,
                   format("bad Pauli axis '%c'", axis));
    }
}

} // namespace eqasm::qsim
