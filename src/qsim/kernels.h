/**
 * @file
 * SIMD-dispatched inner kernels for the amplitude-vector and
 * density-matrix backends.
 *
 * Every hot loop of the state simulators — the fused single-/two-qubit
 * gate butterflies, the Kraus-channel block maps and the probability
 * reductions — lives behind this interface in two implementations:
 *
 *  - a scalar path (kernels.cc), plain C++ loops;
 *  - a vector path (kernels_vec.cc), hand-written with explicit-width
 *    GCC/Clang vector types processing two complex doubles per
 *    operation. On x86-64 the translation unit is compiled with -mavx2
 *    and entered only after a runtime cpuid check; on AArch64 the same
 *    code lowers to baseline NEON.
 *
 * Bit-identity contract: both paths evaluate the *same IEEE-754
 * expression tree per element* (lanes are independent elements, FMA
 * contraction is disabled, and reductions use a fixed four-accumulator
 * scheme defined on the data layout rather than the ISA), so a result
 * computed with SIMD on is bit-identical to the scalar fallback — the
 * counts fingerprint of a run does not depend on the host's vector
 * ISA. tests/trajectory_test.cc asserts exact element equality per
 * gate/channel class on random states.
 *
 * Dispatch: the vector path is used when the CPU supports it, unless
 * disabled via setSimdEnabled(false) or the EQASM_SIMD environment
 * variable ("scalar" / "off" / "0" force the scalar fallback).
 */
#ifndef EQASM_QSIM_KERNELS_H
#define EQASM_QSIM_KERNELS_H

#include <cstddef>
#include <string_view>

#include "qsim/linalg.h"

namespace eqasm::qsim::kernels {

/** Vector instruction set selected by the runtime dispatcher. */
enum class SimdLevel {
    scalar,  ///< plain C++ loops (always available).
    avx2,    ///< 256-bit path on x86-64 (cpuid-gated).
    neon,    ///< 128-bit path on AArch64 (baseline).
};

/** @return a stable lower-case name ("scalar", "avx2", "neon"). */
std::string_view simdLevelName(SimdLevel level);

/** The best level this binary + CPU supports (ignores overrides). */
SimdLevel availableLevel();

/** The level kernels actually run at: availableLevel() unless the
 *  programmatic switch or EQASM_SIMD forces the scalar fallback. */
SimdLevel activeLevel();

/** @return activeLevel() != SimdLevel::scalar. */
bool simdActive();

/**
 * Programmatic force-fallback switch (process-global): false routes
 * every kernel through the scalar path. Results are bit-identical
 * either way; tests use this to assert exactly that, benches to
 * measure the vector speedup.
 */
void setSimdEnabled(bool enabled);
bool simdEnabled();

/** Re-reads EQASM_SIMD ("scalar"/"off"/"0" force the fallback; empty
 *  or "auto" restore dispatch). Called once at startup automatically;
 *  exposed so tests can exercise the env switch. */
void applySimdEnv();

// ------------------------------------------------------------------
// State-vector kernels. amp is a 2^n complex array, qubit 0 the least
// significant index bit; n is the array length (a power of two).
// ------------------------------------------------------------------

/** Butterfly u (2x2, row-major u[0..3] = u00,u01,u10,u11) on @p qubit. */
void svGate1(Complex *amp, size_t n, int qubit, const Complex *u);

/** 4x4 unitary (row-major, operand 0 = LSB) on (qubit0, qubit1). */
void svGate2(Complex *amp, size_t n, int qubit0, int qubit1,
             const Complex *u);

/**
 * Sum of |amp_i|^2 over indices whose @p qubit bit equals @p bit.
 * Canonical reduction order (identical on every path): contiguous runs
 * are consumed as pairs of complex values into four accumulators
 * (re0^2, im0^2, re1^2, im1^2), odd single values into the first two,
 * and the result is (acc0 + acc1) + (acc2 + acc3).
 */
double svProbHalf(const Complex *amp, size_t n, int qubit, int bit);

/** amp_i *= (bit of @p qubit ? s1 : s0); a factor exactly 1.0 skips
 *  its half entirely (bit-preserving no-op). */
void svScalePair(Complex *amp, size_t n, int qubit, double s0, double s1);

/** The amplitude-damping jump: amp_i0 = amp_i1 * scale, amp_i1 = 0
 *  for every (i0, i1) pair differing in @p qubit. */
void svJumpDown(Complex *amp, size_t n, int qubit, double scale);

/** Diagonal single-qubit gate diag(d0, d1): each half is multiplied by
 *  its (complex) entry; an entry exactly (1, 0) skips its half. */
void svDiag1(Complex *amp, size_t n, int qubit, Complex d0, Complex d1);

/** Pauli applications as exact component moves/negations (no rounding,
 *  used by the trajectory noise sampler). pauli: 1 = X, 2 = Y, 3 = Z. */
void svPauli(Complex *amp, size_t n, int qubit, int pauli);

/** Negates every amp_i with (i & mask) == match (the CZ fast path:
 *  mask = match = bit0 | bit1). */
void svPhaseFlipWhere(Complex *amp, size_t n, size_t mask, size_t match);

// ------------------------------------------------------------------
// Density-matrix kernels. rho is a dim x dim row-major complex array.
// The vector entry points return false when they did not run (SIMD
// inactive, or the block layout is not vectorizable — qubit 0 gates,
// whose column pairs interleave); the caller then runs its scalar
// loop. Where they do run, results are bit-identical to the scalar
// loops in density_matrix.cc.
// ------------------------------------------------------------------

/** Hoisted single-qubit Kraus operator with mono-row sparsity info
 *  (see DensityMatrix::applyChannel1). */
struct Kraus1 {
    Complex k[4];  ///< k00, k01, k10, k11.
    int nz[2];     ///< nonzero column of rows 0 and 1, or -1.
    bool sparse;   ///< both rows mono (use the sparse kernel).
};

/** Hoisted two-qubit Kraus operator (see applyChannel2). */
struct Kraus2 {
    Complex k[4][4];
    int nz[4];    ///< nonzero column per row, or -1.
    bool sparse;  ///< all four rows mono.
};

bool dmGate1Vec(Complex *rho, size_t dim, int qubit, const Complex *u);
bool dmGate2Vec(Complex *rho, size_t dim, int qubit0, int qubit1,
                const Complex *u);
bool dmChannel1Vec(Complex *rho, size_t dim, int qubit, const Kraus1 *kk,
                   size_t num_kraus);
bool dmChannel2Vec(Complex *rho, size_t dim, int qubit0, int qubit1,
                   const Kraus2 *kk, size_t num_kraus);

// ------------------------------------------------------------------
// Raw vector-path entry points (kernels_vec.cc). Call only through
// the dispatchers above: on x86-64 they contain AVX2 instructions and
// are safe only after the cpuid check.
// ------------------------------------------------------------------
namespace vec {
void svGate1(Complex *amp, size_t n, int qubit, const Complex *u);
void svGate2(Complex *amp, size_t n, int qubit0, int qubit1,
             const Complex *u);
double svProbHalf(const Complex *amp, size_t n, int qubit, int bit);
void svScalePair(Complex *amp, size_t n, int qubit, double s0, double s1);
void svJumpDown(Complex *amp, size_t n, int qubit, double scale);
void svDiag1(Complex *amp, size_t n, int qubit, Complex d0, Complex d1);
void svPauli(Complex *amp, size_t n, int qubit, int pauli);
void svPhaseFlipWhere(Complex *amp, size_t n, size_t mask, size_t match);
bool dmGate1(Complex *rho, size_t dim, int qubit, const Complex *u);
bool dmGate2(Complex *rho, size_t dim, int qubit0, int qubit1,
             const Complex *u);
bool dmChannel1(Complex *rho, size_t dim, int qubit, const Kraus1 *kk,
                size_t num_kraus);
bool dmChannel2(Complex *rho, size_t dim, int qubit0, int qubit1,
                const Kraus2 *kk, size_t num_kraus);
} // namespace vec

} // namespace eqasm::qsim::kernels

#endif // EQASM_QSIM_KERNELS_H
