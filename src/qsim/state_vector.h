/**
 * @file
 * Pure-state (state-vector) quantum simulator.
 *
 * Qubit 0 is the least significant bit of the basis index. The backend
 * supports arbitrary single- and two-qubit unitaries, projective
 * measurement with explicit RNG, and fidelity/probability queries. It is
 * the noise-free reference backend; the density-matrix backend adds
 * noise channels.
 */
#ifndef EQASM_QSIM_STATE_VECTOR_H
#define EQASM_QSIM_STATE_VECTOR_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "qsim/gates.h"
#include "qsim/linalg.h"

namespace eqasm::qsim {

/** State-vector simulator for up to 24 qubits. */
class StateVector
{
  public:
    /** Initialises |0...0> on @p num_qubits qubits. */
    explicit StateVector(int num_qubits);

    int numQubits() const { return numQubits_; }
    size_t dim() const { return amplitudes_.size(); }

    /** Resets to |0...0>. */
    void reset();

    const std::vector<Complex> &amplitudes() const { return amplitudes_; }

    /** Applies a 2x2 unitary to @p qubit. */
    void applyGate1(const CMatrix &unitary, int qubit);

    /** Applies a 4x4 unitary to (qubit0 = LSB operand, qubit1). */
    void applyGate2(const CMatrix &unitary, int qubit0, int qubit1);

    /** Applies a named/parsed Gate to the listed qubits. */
    void apply(const Gate &gate, const std::vector<int> &qubits);

    /** @return probability of measuring |1> on @p qubit. */
    double probabilityOne(int qubit) const;

    /**
     * Projective measurement of @p qubit in the computational basis:
     * samples via @p rng, collapses and renormalises.
     * @return the observed bit.
     */
    int measure(int qubit, Rng &rng);

    /** Collapses @p qubit to @p outcome (must have nonzero probability). */
    void postselect(int qubit, int outcome);

    /** @return |<this|other>|^2. */
    double fidelity(const StateVector &other) const;

    /** @return probability of the computational basis state @p index. */
    double probabilityOf(uint64_t index) const;

    /** Samples a full computational-basis outcome without collapse. */
    uint64_t sampleAll(Rng &rng) const;

    /** @return <Z_qubit>. */
    double expectationZ(int qubit) const;

    /** Squared norm (should stay 1 within rounding). */
    double norm() const;

  private:
    void checkQubit(int qubit) const;

    int numQubits_;
    std::vector<Complex> amplitudes_;
};

} // namespace eqasm::qsim

#endif // EQASM_QSIM_STATE_VECTOR_H
