#include "qsim/stabilizer_tableau.h"

#include <bit>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"
#include "qsim/noise.h"

namespace eqasm::qsim {

StabilizerTableau::StabilizerTableau(int num_qubits)
    : numQubits_(num_qubits)
{
    if (num_qubits < 1 ||
        num_qubits > backendMaxQubits(BackendKind::stabilizer)) {
        throwError(ErrorCode::invalidArgument,
                   format("stabilizer tableau supports 1..%d qubits, "
                          "got %d",
                          backendMaxQubits(BackendKind::stabilizer),
                          num_qubits));
    }
    rows_ = 2 * numQubits_ + 1;
    words_ = (numQubits_ + 63) / 64;
    reset();
}

void
StabilizerTableau::reset()
{
    size_t cells = static_cast<size_t>(rows_) *
                   static_cast<size_t>(words_);
    x_.assign(cells, 0);
    z_.assign(cells, 0);
    r_.assign(static_cast<size_t>(rows_), 0);
    for (int q = 0; q < numQubits_; ++q) {
        // destabilizer q = X_q; stabilizer q = Z_q.
        xRow(q)[q >> 6] |= 1ULL << (q & 63);
        zRow(numQubits_ + q)[q >> 6] |= 1ULL << (q & 63);
    }
}

void
StabilizerTableau::checkQubit(int qubit) const
{
    if (qubit < 0 || qubit >= numQubits_) {
        throwError(ErrorCode::invalidArgument,
                   format("qubit %d out of range [0, %d)", qubit,
                          numQubits_));
    }
}

void
StabilizerTableau::rowsum(int h, int i)
{
    // Row h *= row i. The per-qubit phase contribution is the
    // Aaronson–Gottesman g function, g((x1,z1), (x2,z2)) with (x1,z1)
    // from row i and (x2,z2) from row h; its +1 and -1 cases are each
    // a union of three disjoint bit patterns, so one pass of bitwise
    // masks + popcounts accumulates the whole row's phase 64 qubit
    // columns at a time.
    uint64_t *xh = xRow(h);
    uint64_t *zh = zRow(h);
    const uint64_t *xi = xRow(i);
    const uint64_t *zi = zRow(i);
    int plus = 0;
    int minus = 0;
    for (int w = 0; w < words_; ++w) {
        uint64_t x1 = xi[w], z1 = zi[w];
        uint64_t x2 = xh[w], z2 = zh[w];
        // g = +1: Y*Z, X*Y, Z*X.  g = -1: Y*X, X*Z, Z*Y.
        uint64_t plus_mask = (x1 & z1 & ~x2 & z2) |
                             (x1 & ~z1 & x2 & z2) |
                             (~x1 & z1 & x2 & ~z2);
        uint64_t minus_mask = (x1 & z1 & x2 & ~z2) |
                              (x1 & ~z1 & ~x2 & z2) |
                              (~x1 & z1 & x2 & z2);
        plus += std::popcount(plus_mask);
        minus += std::popcount(minus_mask);
        xh[w] ^= x1;
        zh[w] ^= z1;
    }
    int phase = 2 * r_[static_cast<size_t>(h)] +
                2 * r_[static_cast<size_t>(i)] + plus - minus;
    phase &= 3;
    // Stabilizer and scratch rows always multiply to a real sign;
    // destabilizer products may pick up a factor of i, but their phase
    // bits never influence an outcome (Aaronson–Gottesman Sec. III).
    EQASM_ASSERT(h < numQubits_ || phase == 0 || phase == 2,
                 "rowsum produced an imaginary phase");
    r_[static_cast<size_t>(h)] = (phase >> 1) & 1;
}

// ------------------------------------------------------ Clifford gates
//
// Each update conjugates every (de)stabilizer row by the gate; the
// scratch row (index 2n) is transient measurement state and is skipped.
// A single-qubit gate touches one bit per packed row: the loops below
// read the row's X/Z bits of the gate's column, fold the sign rule into
// r_, and XOR single-bit masks back.

void
StabilizerTableau::gateH(int q)
{
    checkQubit(q);
    const int w = q >> 6, b = q & 63;
    for (int i = 0; i < 2 * numQubits_; ++i) {
        uint64_t &xw = xRow(i)[w];
        uint64_t &zw = zRow(i)[w];
        uint64_t xb = (xw >> b) & 1, zb = (zw >> b) & 1;
        r_[static_cast<size_t>(i)] ^= static_cast<uint8_t>(xb & zb);
        uint64_t diff = (xb ^ zb) << b;  // swap the X and Z bits.
        xw ^= diff;
        zw ^= diff;
    }
}

void
StabilizerTableau::gateS(int q)
{
    checkQubit(q);
    const int w = q >> 6, b = q & 63;
    for (int i = 0; i < 2 * numQubits_; ++i) {
        uint64_t xb = (xRow(i)[w] >> b) & 1;
        uint64_t zb = (zRow(i)[w] >> b) & 1;
        r_[static_cast<size_t>(i)] ^= static_cast<uint8_t>(xb & zb);
        zRow(i)[w] ^= xb << b;
    }
}

void
StabilizerTableau::gateSdg(int q)
{
    checkQubit(q);
    const int w = q >> 6, b = q & 63;
    for (int i = 0; i < 2 * numQubits_; ++i) {
        uint64_t xb = (xRow(i)[w] >> b) & 1;
        uint64_t zb = (zRow(i)[w] >> b) & 1;
        r_[static_cast<size_t>(i)] ^=
            static_cast<uint8_t>(xb & (zb ^ 1));
        zRow(i)[w] ^= xb << b;
    }
}

void
StabilizerTableau::gateX(int q)
{
    checkQubit(q);
    const int w = q >> 6, b = q & 63;
    for (int i = 0; i < 2 * numQubits_; ++i)
        r_[static_cast<size_t>(i)] ^=
            static_cast<uint8_t>((zRow(i)[w] >> b) & 1);
}

void
StabilizerTableau::gateY(int q)
{
    checkQubit(q);
    const int w = q >> 6, b = q & 63;
    for (int i = 0; i < 2 * numQubits_; ++i)
        r_[static_cast<size_t>(i)] ^= static_cast<uint8_t>(
            ((xRow(i)[w] ^ zRow(i)[w]) >> b) & 1);
}

void
StabilizerTableau::gateZ(int q)
{
    checkQubit(q);
    const int w = q >> 6, b = q & 63;
    for (int i = 0; i < 2 * numQubits_; ++i)
        r_[static_cast<size_t>(i)] ^=
            static_cast<uint8_t>((xRow(i)[w] >> b) & 1);
}

void
StabilizerTableau::gateX90(int q)
{
    // R_x(+90): X -> X, Z -> -Y, Y -> Z.
    checkQubit(q);
    const int w = q >> 6, b = q & 63;
    for (int i = 0; i < 2 * numQubits_; ++i) {
        uint64_t xb = (xRow(i)[w] >> b) & 1;
        uint64_t zb = (zRow(i)[w] >> b) & 1;
        r_[static_cast<size_t>(i)] ^=
            static_cast<uint8_t>(zb & (xb ^ 1));
        xRow(i)[w] ^= zb << b;
    }
}

void
StabilizerTableau::gateXm90(int q)
{
    // R_x(-90): X -> X, Z -> Y, Y -> -Z.
    checkQubit(q);
    const int w = q >> 6, b = q & 63;
    for (int i = 0; i < 2 * numQubits_; ++i) {
        uint64_t xb = (xRow(i)[w] >> b) & 1;
        uint64_t zb = (zRow(i)[w] >> b) & 1;
        r_[static_cast<size_t>(i)] ^= static_cast<uint8_t>(xb & zb);
        xRow(i)[w] ^= zb << b;
    }
}

void
StabilizerTableau::gateY90(int q)
{
    // R_y(+90): X -> -Z, Z -> X, Y -> Y.
    checkQubit(q);
    const int w = q >> 6, b = q & 63;
    for (int i = 0; i < 2 * numQubits_; ++i) {
        uint64_t &xw = xRow(i)[w];
        uint64_t &zw = zRow(i)[w];
        uint64_t xb = (xw >> b) & 1, zb = (zw >> b) & 1;
        r_[static_cast<size_t>(i)] ^=
            static_cast<uint8_t>(xb & (zb ^ 1));
        uint64_t diff = (xb ^ zb) << b;
        xw ^= diff;
        zw ^= diff;
    }
}

void
StabilizerTableau::gateYm90(int q)
{
    // R_y(-90): X -> Z, Z -> -X, Y -> Y.
    checkQubit(q);
    const int w = q >> 6, b = q & 63;
    for (int i = 0; i < 2 * numQubits_; ++i) {
        uint64_t &xw = xRow(i)[w];
        uint64_t &zw = zRow(i)[w];
        uint64_t xb = (xw >> b) & 1, zb = (zw >> b) & 1;
        r_[static_cast<size_t>(i)] ^=
            static_cast<uint8_t>(zb & (xb ^ 1));
        uint64_t diff = (xb ^ zb) << b;
        xw ^= diff;
        zw ^= diff;
    }
}

void
StabilizerTableau::gateCnot(int control, int target)
{
    checkQubit(control);
    checkQubit(target);
    EQASM_ASSERT(control != target,
                 "two-qubit gate needs distinct qubits");
    const int wc = control >> 6, bc = control & 63;
    const int wt = target >> 6, bt = target & 63;
    for (int i = 0; i < 2 * numQubits_; ++i) {
        uint64_t xc = (xRow(i)[wc] >> bc) & 1;
        uint64_t zc = (zRow(i)[wc] >> bc) & 1;
        uint64_t xt = (xRow(i)[wt] >> bt) & 1;
        uint64_t zt = (zRow(i)[wt] >> bt) & 1;
        r_[static_cast<size_t>(i)] ^=
            static_cast<uint8_t>(xc & zt & (xt ^ zc ^ 1));
        xRow(i)[wt] ^= xc << bt;
        zRow(i)[wc] ^= zt << bc;
    }
}

void
StabilizerTableau::gateCz(int qubit0, int qubit1)
{
    // Fused H(q1)-CNOT-H(q1) update in a single row sweep — CZ is the
    // dominant gate of the syndrome-extraction workloads. Mapping:
    // X_a -> X_a Z_b (and symmetrically), Z unchanged; the sign flips
    // exactly for X(x)Y-type pairs (x0 x1 = 1 with z0 != z1).
    checkQubit(qubit0);
    checkQubit(qubit1);
    EQASM_ASSERT(qubit0 != qubit1,
                 "two-qubit gate needs distinct qubits");
    const int w0 = qubit0 >> 6, b0 = qubit0 & 63;
    const int w1 = qubit1 >> 6, b1 = qubit1 & 63;
    for (int i = 0; i < 2 * numQubits_; ++i) {
        uint64_t x0 = (xRow(i)[w0] >> b0) & 1;
        uint64_t z0 = (zRow(i)[w0] >> b0) & 1;
        uint64_t x1 = (xRow(i)[w1] >> b1) & 1;
        uint64_t z1 = (zRow(i)[w1] >> b1) & 1;
        r_[static_cast<size_t>(i)] ^=
            static_cast<uint8_t>(x0 & x1 & (z0 ^ z1));
        zRow(i)[w0] ^= x1 << b0;
        zRow(i)[w1] ^= x0 << b1;
    }
}

void
StabilizerTableau::gateSwap(int qubit0, int qubit1)
{
    gateCnot(qubit0, qubit1);
    gateCnot(qubit1, qubit0);
    gateCnot(qubit0, qubit1);
}

void
StabilizerTableau::applyPauli(int qubit, int pauli)
{
    switch (pauli) {
      case 1: gateX(qubit); break;
      case 2: gateY(qubit); break;
      case 3: gateZ(qubit); break;
      default: EQASM_ASSERT(false, "bad Pauli index");
    }
}

// ---------------------------------------------------------- dispatch

namespace {

/** Reduces a rotation angle in degrees to {0, 90, 180, 270} or -1 for
 *  non-Clifford angles. */
int
cliffordQuarterTurns(double degrees)
{
    double reduced = std::fmod(degrees, 360.0);
    if (reduced < 0.0)
        reduced += 360.0;
    for (int quarter = 0; quarter < 4; ++quarter) {
        if (std::abs(reduced - 90.0 * quarter) < 1e-6)
            return quarter;
    }
    if (std::abs(reduced - 360.0) < 1e-6)
        return 0;
    return -1;
}

} // namespace

void
StabilizerTableau::dispatch1(const std::string &name, int qubit)
{
    if (name == "i" || name == "id")
        return;
    if (name == "x")  return gateX(qubit);
    if (name == "y")  return gateY(qubit);
    if (name == "z")  return gateZ(qubit);
    if (name == "h")  return gateH(qubit);
    if (name == "s" || name == "z90")  return gateS(qubit);
    if (name == "sdg" || name == "zm90")  return gateSdg(qubit);
    if (name == "x90")  return gateX90(qubit);
    if (name == "xm90") return gateXm90(qubit);
    if (name == "y90")  return gateY90(qubit);
    if (name == "ym90") return gateYm90(qubit);

    // Parametric rotations are Clifford at multiples of 90 degrees.
    if (name.size() > 3 && name[0] == 'r' && name[2] == ':' &&
        (name[1] == 'x' || name[1] == 'y' || name[1] == 'z')) {
        double degrees = 0.0;
        try {
            degrees = std::stod(name.substr(3));
        } catch (const std::exception &) {
            degrees = std::nan("");
        }
        int quarters = std::isnan(degrees)
                           ? -1
                           : cliffordQuarterTurns(degrees);
        if (quarters >= 0) {
            // quarters: 0 = identity, 1 = +90, 2 = 180, 3 = -90.
            switch (name[1]) {
              case 'x':
                if (quarters == 1) gateX90(qubit);
                else if (quarters == 2) gateX(qubit);
                else if (quarters == 3) gateXm90(qubit);
                return;
              case 'y':
                if (quarters == 1) gateY90(qubit);
                else if (quarters == 2) gateY(qubit);
                else if (quarters == 3) gateYm90(qubit);
                return;
              case 'z':
                if (quarters == 1) gateS(qubit);
                else if (quarters == 2) gateZ(qubit);
                else if (quarters == 3) gateSdg(qubit);
                return;
            }
        }
    }
    throwError(ErrorCode::configError,
               format("gate '%s' is not Clifford; the stabilizer "
                      "backend supports only Clifford circuits — use "
                      "the density backend for this program",
                      name.c_str()));
}

void
StabilizerTableau::applyGate1(const Gate &gate, int qubit)
{
    checkQubit(qubit);
    dispatch1(gate.name, qubit);
}

void
StabilizerTableau::applyGate2(const Gate &gate, int qubit0, int qubit1)
{
    checkQubit(qubit0);
    checkQubit(qubit1);
    if (gate.name == "cz")
        return gateCz(qubit0, qubit1);
    if (gate.name == "cnot")
        return gateCnot(qubit0, qubit1);
    if (gate.name == "swap")
        return gateSwap(qubit0, qubit1);
    throwError(ErrorCode::configError,
               format("two-qubit gate '%s' is not Clifford; the "
                      "stabilizer backend supports cz/cnot/swap",
                      gate.name.c_str()));
}

// ---------------------------------------------------------- measurement

bool
StabilizerTableau::isDeterministic(int qubit) const
{
    for (int i = numQubits_; i < 2 * numQubits_; ++i) {
        if (xBit(i, qubit))
            return false;
    }
    return true;
}

int
StabilizerTableau::measure(int qubit, Rng &rng)
{
    checkQubit(qubit);
    // Exactly one draw per measurement (see StateBackend::measure).
    double u = rng.uniform();

    // A stabilizer with an X component on the qubit anticommutes with
    // Z_qubit: the outcome is random.
    int p = -1;
    for (int i = numQubits_; i < 2 * numQubits_; ++i) {
        if (xBit(i, qubit)) {
            p = i;
            break;
        }
    }
    if (p >= 0) {
        // Same convention as DensityMatrix::measure (outcome 1 when the
        // draw lands below P(|1>), here 1/2) so noiseless Clifford
        // circuits sample identical bits on both backends.
        int outcome = u < 0.5 ? 1 : 0;
        for (int i = 0; i < 2 * numQubits_; ++i) {
            if (i != p && xBit(i, qubit))
                rowsum(i, p);
        }
        // The old anticommuting stabilizer becomes the destabilizer of
        // the new Z_qubit stabilizer.
        for (int w = 0; w < words_; ++w) {
            xRow(p - numQubits_)[w] = xRow(p)[w];
            zRow(p - numQubits_)[w] = zRow(p)[w];
            xRow(p)[w] = 0;
            zRow(p)[w] = 0;
        }
        r_[static_cast<size_t>(p - numQubits_)] =
            r_[static_cast<size_t>(p)];
        zRow(p)[qubit >> 6] = 1ULL << (qubit & 63);
        r_[static_cast<size_t>(p)] = outcome ? 1 : 0;
        return outcome;
    }

    // Deterministic outcome: accumulate the product of the stabilizers
    // whose destabilizer partners anticommute with Z_qubit into the
    // scratch row; its phase is the outcome.
    int scratch = 2 * numQubits_;
    for (int w = 0; w < words_; ++w) {
        xRow(scratch)[w] = 0;
        zRow(scratch)[w] = 0;
    }
    r_[static_cast<size_t>(scratch)] = 0;
    for (int i = 0; i < numQubits_; ++i) {
        if (xBit(i, qubit))
            rowsum(scratch, i + numQubits_);
    }
    return r_[static_cast<size_t>(scratch)];
}

double
StabilizerTableau::probabilityOne(int qubit) const
{
    checkQubit(qubit);
    if (!isDeterministic(qubit))
        return 0.5;
    StabilizerTableau copy = *this;
    Rng scratch_rng(0);
    return copy.measure(qubit, scratch_rng) ? 1.0 : 0.0;
}

void
StabilizerTableau::resetQubit(int qubit, Rng &rng)
{
    if (measure(qubit, rng))
        gateX(qubit);
}

// --------------------------------------------------------------- noise

void
StabilizerTableau::applyIdleNoise(int qubit, double duration_ns,
                                  const NoiseModel &model, Rng &rng)
{
    checkQubit(qubit);
    if (!model.enabled || duration_ns <= 0.0)
        return;
    double p_relax = 1.0 - std::exp(-duration_ns / model.t1Ns);
    double p_dephase = 1.0 - std::exp(-duration_ns / model.t2Ns);
    // Pauli twirl of amplitude + phase damping (see file comment).
    double px = p_relax / 4.0;
    double py = px;
    double pz = std::max(0.0, p_dephase / 2.0 - p_relax / 4.0);
    double u = rng.uniform();
    if (u < px)
        gateX(qubit);
    else if (u < px + py)
        gateY(qubit);
    else if (u < px + py + pz)
        gateZ(qubit);
}

void
StabilizerTableau::applyGateNoise1(int qubit, const NoiseModel &model,
                                   Rng &rng)
{
    checkQubit(qubit);
    if (!model.enabled || model.depol1q <= 0.0)
        return;
    double u = rng.uniform();
    if (u >= model.depol1q)
        return;
    // Reuse the sub-threshold draw to pick uniformly among X/Y/Z.
    int pauli = 1 + std::min(2, static_cast<int>(u / model.depol1q * 3.0));
    applyPauli(qubit, pauli);
}

void
StabilizerTableau::applyGateNoise2(int qubit0, int qubit1,
                                   const NoiseModel &model, Rng &rng)
{
    checkQubit(qubit0);
    checkQubit(qubit1);
    if (!model.enabled || model.depol2q <= 0.0)
        return;
    double u = rng.uniform();
    if (u >= model.depol2q)
        return;
    // Index 1..15 over the non-identity two-qubit Paulis.
    int index = 1 + std::min(14,
                             static_cast<int>(u / model.depol2q * 15.0));
    int pauli0 = index & 3;
    int pauli1 = index >> 2;
    if (pauli0 != 0)
        applyPauli(qubit0, pauli0);
    if (pauli1 != 0)
        applyPauli(qubit1, pauli1);
}

// ---------------------------------------------------------- rendering

std::string
StabilizerTableau::stabilizerString(int index) const
{
    if (index < 0 || index >= numQubits_) {
        throwError(ErrorCode::invalidArgument,
                   format("stabilizer index %d out of range [0, %d)",
                          index, numQubits_));
    }
    int row = numQubits_ + index;
    std::string out = r_[static_cast<size_t>(row)] ? "-" : "+";
    for (int q = 0; q < numQubits_; ++q) {
        bool xb = xBit(row, q);
        bool zb = zBit(row, q);
        out += xb ? (zb ? 'Y' : 'X') : (zb ? 'Z' : 'I');
    }
    return out;
}

} // namespace eqasm::qsim
