/**
 * @file
 * Quantum chip topology: qubits as vertices, allowed qubit pairs as
 * directed edges (Section 3.3 of the eQASM paper).
 *
 * A two-qubit physical gate can only be applied to an "allowed qubit
 * pair"; because a gate may act differently on its two operands, the
 * pairs (A, B) and (B, A) are distinct directed edges with distinct
 * addresses. The topology also records which feedline measures each
 * qubit, since measurement pulses are frequency-multiplexed per
 * feedline (Section 4.1).
 */
#ifndef EQASM_CHIP_TOPOLOGY_H
#define EQASM_CHIP_TOPOLOGY_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"

namespace eqasm::chip {

/** A directed allowed qubit pair: (source qubit, target qubit). */
struct QubitPair {
    int source = -1;
    int target = -1;

    bool operator==(const QubitPair &other) const = default;
};

/**
 * One stabilizer plaquette of a distance-d rotated surface code on the
 * generated grid layout (see Topology::rotatedSurface). Data qubits are
 * numbered 0..d*d-1 row-major; ancillas follow from d*d upward in
 * plaquette scan order.
 */
struct SurfacePlaquette {
    int ancilla = -1;
    bool isX = false;  ///< X-type (else Z-type) stabilizer.
    /** Data qubits at the NW, NE, SW, SE corners; -1 where the corner
     *  falls outside the grid (boundary weight-2 plaquettes). */
    std::array<int, 4> corners{{-1, -1, -1, -1}};

    /** The present corners, in corner order. */
    std::vector<int> dataQubits() const;
};

/**
 * The plaquette list of the distance-@p distance rotated surface code:
 * d*d data qubits on a square grid and d*d-1 ancillas, with weight-4
 * bulk stabilizers and weight-2 boundary stabilizers (X checks on the
 * top/bottom boundaries, Z checks on the left/right boundaries).
 * @throws Error{invalidArgument} for distance < 2.
 */
std::vector<SurfacePlaquette> rotatedSurfacePlaquettes(int distance);

/**
 * Immutable description of a quantum chip: number of qubits, the list
 * of allowed directed pairs (the vector index is the pair's address),
 * and the qubit → feedline map.
 */
class Topology
{
  public:
    /**
     * @param name      human-readable chip name.
     * @param num_qubits number of physical qubits (addresses 0..n-1).
     * @param edges     directed allowed pairs; index = edge address.
     * @param feedline  per-qubit feedline index (may be empty: one line).
     */
    Topology(std::string name, int num_qubits, std::vector<QubitPair> edges,
             std::vector<int> feedline = {});

    const std::string &name() const { return name_; }
    int numQubits() const { return numQubits_; }
    int numEdges() const { return static_cast<int>(edges_.size()); }
    const std::vector<QubitPair> &edges() const { return edges_; }

    /** @return the pair stored at edge address @p index. */
    const QubitPair &edge(int index) const;

    /** @return the edge address of (source, target), if allowed. */
    std::optional<int> edgeIndex(int source, int target) const;

    /** @return all edge addresses in which @p qubit participates. */
    std::vector<int> edgesOfQubit(int qubit) const;

    /** @return the feedline measuring @p qubit. */
    int feedlineOfQubit(int qubit) const;

    /** @return the number of feedlines. */
    int numFeedlines() const { return numFeedlines_; }

    /** @return true iff @p qubit is a valid physical address. */
    bool validQubit(int qubit) const
    {
        return qubit >= 0 && qubit < numQubits_;
    }

    /**
     * Checks a two-qubit-target mask for validity: it is illegal for two
     * selected edges to share a qubit (Section 4.3: "it is invalid if two
     * edges connecting to the same qubit are selected in the same T
     * register").
     *
     * @return std::nullopt when valid; otherwise the address of the qubit
     *         shared by two selected edges.
     */
    std::optional<int> maskConflict(uint64_t edge_mask) const;

    /** Converts a list of edge addresses to a mask. */
    uint64_t edgesToMask(const std::vector<int> &edge_addresses) const;

    /** Converts a mask to the sorted list of selected edge addresses. */
    std::vector<int> maskToEdges(uint64_t edge_mask) const;

    /**
     * Loads a topology from JSON:
     * {"name": ..., "qubits": N,
     *  "edges": [[src,tgt], ...], "feedlines": [f0, f1, ...]}.
     */
    static Topology fromJson(const Json &json);

    /** Serialises to the JSON schema accepted by fromJson(). */
    Json toJson() const;

    /**
     * The seven-qubit surface-7 chip of Fig. 6. The undirected coupling
     * set is reconstructed from the constraints in the paper: 8 couplings
     * (16 directed edges), qubit 0 participates in edges {0, 1, 8, 9}
     * with OpSel0 = (T[0] | T[9]) :: (T[1] | T[8]), i.e. coupling k owns
     * edges {2k, 2k+1}; qubit 5 is the degree-4 centre ancilla; feedline
     * 0 measures qubits {0, 2, 3, 5, 6} and feedline 1 measures {1, 4}.
     */
    static Topology surface7();

    /**
     * The two-transmon processor used for the Section 5 experiments:
     * "the two qubits renamed as qubit 0 and 2", interconnected, one
     * feedline. Qubit 1 exists as an address hole (never used).
     */
    static Topology twoQubit();

    /** IBM QX2 (5 qubits, 6 allowed pairs) from the Section 3.3.2
     *  encoding discussion. Directed edges follow the published
     *  CNOT orientation. */
    static Topology ibmQx2();

    /** Fully connected 5-qubit trapped-ion processor (20 directed
     *  pairs), also from Section 3.3.2. */
    static Topology ionTrap5();

    /**
     * Generated grid chip for the distance-@p distance rotated surface
     * code: 2 d^2 - 1 qubits (see rotatedSurfacePlaquettes for the
     * numbering), one ancilla<->data coupling per stabilizer corner in
     * both directions, and one feedline per data-qubit row. d = 2 is
     * the 7-qubit code the paper's surface-7 chip targets; d = 3 (17
     * qubits) is the first distance that corrects an error.
     */
    static Topology rotatedSurface(int distance);

    /**
     * The Section 3.3.2 encoding trade-off, as bit costs for this
     * chip's two-qubit target registers:
     *
     *  - mask encoding: one bit per allowed pair (numEdges bits);
     *  - address-pair encoding: k simultaneous pairs, each as two
     *    qubit addresses of ceil(log2 numQubits) bits.
     *
     * "it is more efficient to put the address pairs in the
     * instruction for a highly-connected quantum processor, while a
     * mask format could be more efficient when the qubit connectivity
     * is limited."
     */
    int maskEncodingBits() const;
    int addressPairEncodingBits(int simultaneous_pairs) const;

    /** Largest number of pairwise-disjoint allowed pairs (how many
     *  two-qubit gates can run simultaneously). */
    int maxParallelPairs() const;

  private:
    std::string name_;
    int numQubits_ = 0;
    std::vector<QubitPair> edges_;
    std::vector<int> feedline_;
    int numFeedlines_ = 1;
};

} // namespace eqasm::chip

#endif // EQASM_CHIP_TOPOLOGY_H
