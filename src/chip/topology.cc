#include "chip/topology.h"

#include <algorithm>
#include <functional>

#include "common/bits.h"
#include "common/error.h"
#include "common/strings.h"

namespace eqasm::chip {

std::vector<int>
SurfacePlaquette::dataQubits() const
{
    std::vector<int> out;
    for (int corner : corners) {
        if (corner >= 0)
            out.push_back(corner);
    }
    return out;
}

std::vector<SurfacePlaquette>
rotatedSurfacePlaquettes(int distance)
{
    if (distance < 2) {
        throwError(ErrorCode::invalidArgument,
                   format("rotated surface code needs distance >= 2, "
                          "got %d",
                          distance));
    }
    const int d = distance;
    // Plaquette centres sit between data-grid cells: centre (i, j)
    // covers data (i, j), (i+1, j), (i, j+1), (i+1, j+1) clipped to the
    // grid. Checkerboard colouring; boundary half-plaquettes survive on
    // the top/bottom edges for X checks and left/right edges for Z
    // checks, which yields exactly d^2 - 1 stabilizers.
    std::vector<SurfacePlaquette> plaquettes;
    int next_ancilla = d * d;
    for (int j = -1; j < d; ++j) {
        for (int i = -1; i < d; ++i) {
            bool is_x = (((i + j) % 2) + 2) % 2 != 0;
            bool interior = i >= 0 && i < d - 1 && j >= 0 && j < d - 1;
            bool top_bottom = (j == -1 || j == d - 1) && i >= 0 &&
                              i < d - 1;
            bool left_right = (i == -1 || i == d - 1) && j >= 0 &&
                              j < d - 1;
            bool keep = interior || (top_bottom && is_x) ||
                        (left_right && !is_x);
            if (!keep)
                continue;
            SurfacePlaquette plaquette;
            plaquette.ancilla = next_ancilla++;
            plaquette.isX = is_x;
            const int corner_cols[4] = {i, i + 1, i, i + 1};
            const int corner_rows[4] = {j, j, j + 1, j + 1};
            for (int corner = 0; corner < 4; ++corner) {
                int col = corner_cols[corner];
                int row = corner_rows[corner];
                if (col >= 0 && col < d && row >= 0 && row < d)
                    plaquette.corners[static_cast<size_t>(corner)] =
                        row * d + col;
            }
            plaquettes.push_back(std::move(plaquette));
        }
    }
    EQASM_ASSERT(static_cast<int>(plaquettes.size()) == d * d - 1,
                 "rotated surface code must have d^2 - 1 stabilizers");
    return plaquettes;
}

Topology
Topology::rotatedSurface(int distance)
{
    std::vector<SurfacePlaquette> plaquettes =
        rotatedSurfacePlaquettes(distance);
    const int d = distance;
    int num_qubits = 2 * d * d - 1;
    std::vector<QubitPair> edges;
    for (const SurfacePlaquette &plaquette : plaquettes) {
        for (int data : plaquette.dataQubits()) {
            edges.push_back({plaquette.ancilla, data});
            edges.push_back({data, plaquette.ancilla});
        }
    }
    // Feedlines are frequency-multiplexed per data row; ancillas join
    // the nearest row's line (plaquette scan order is row-major, so the
    // line of an ancilla's first data corner is adjacent).
    std::vector<int> feedline(static_cast<size_t>(num_qubits), 0);
    for (int q = 0; q < d * d; ++q)
        feedline[static_cast<size_t>(q)] = q / d;
    for (const SurfacePlaquette &plaquette : plaquettes) {
        feedline[static_cast<size_t>(plaquette.ancilla)] =
            plaquette.dataQubits().front() / d;
    }
    return Topology(format("rotated_surface_d%d", distance), num_qubits,
                    std::move(edges), std::move(feedline));
}

Topology::Topology(std::string name, int num_qubits,
                   std::vector<QubitPair> edges, std::vector<int> feedline)
    : name_(std::move(name)), numQubits_(num_qubits),
      edges_(std::move(edges)), feedline_(std::move(feedline))
{
    if (numQubits_ <= 0) {
        throwError(ErrorCode::configError,
                   "topology needs at least one qubit");
    }
    for (size_t i = 0; i < edges_.size(); ++i) {
        const QubitPair &pair = edges_[i];
        if (!validQubit(pair.source) || !validQubit(pair.target) ||
            pair.source == pair.target) {
            throwError(ErrorCode::configError,
                       format("edge %zu (%d, %d) is not a valid qubit pair",
                              i, pair.source, pair.target));
        }
        for (size_t j = 0; j < i; ++j) {
            if (edges_[j] == pair) {
                throwError(ErrorCode::configError,
                           format("duplicate edge (%d, %d)", pair.source,
                                  pair.target));
            }
        }
    }
    if (feedline_.empty()) {
        feedline_.assign(static_cast<size_t>(numQubits_), 0);
    }
    if (feedline_.size() != static_cast<size_t>(numQubits_)) {
        throwError(ErrorCode::configError,
                   "feedline map must cover every qubit");
    }
    numFeedlines_ = 1 + *std::max_element(feedline_.begin(), feedline_.end());
}

const QubitPair &
Topology::edge(int index) const
{
    if (index < 0 || index >= numEdges()) {
        throwError(ErrorCode::invalidArgument,
                   format("edge address %d out of range (chip has %d)",
                          index, numEdges()));
    }
    return edges_[static_cast<size_t>(index)];
}

std::optional<int>
Topology::edgeIndex(int source, int target) const
{
    for (size_t i = 0; i < edges_.size(); ++i) {
        if (edges_[i].source == source && edges_[i].target == target)
            return static_cast<int>(i);
    }
    return std::nullopt;
}

std::vector<int>
Topology::edgesOfQubit(int qubit) const
{
    std::vector<int> out;
    for (size_t i = 0; i < edges_.size(); ++i) {
        if (edges_[i].source == qubit || edges_[i].target == qubit)
            out.push_back(static_cast<int>(i));
    }
    return out;
}

int
Topology::feedlineOfQubit(int qubit) const
{
    if (!validQubit(qubit)) {
        throwError(ErrorCode::invalidArgument,
                   format("qubit %d out of range", qubit));
    }
    return feedline_[static_cast<size_t>(qubit)];
}

namespace {

/** Edge masks live in 64-bit words (SMIT registers, Instruction::mask);
 *  chips beyond that need the address-pair encoding the paper sketches
 *  in Section 3.3.2, which this instantiation does not implement. */
void
checkMaskAddressable(const std::string &name, int num_edges)
{
    if (num_edges > 64) {
        throwError(ErrorCode::configError,
                   format("chip '%s' has %d directed edges; edge-mask "
                          "operations address at most 64 — this chip "
                          "cannot be driven through the mask-based "
                          "SMIT encoding",
                          name.c_str(), num_edges));
    }
}

} // namespace

std::optional<int>
Topology::maskConflict(uint64_t edge_mask) const
{
    checkMaskAddressable(name_, numEdges());
    std::vector<int> selections(static_cast<size_t>(numQubits_), 0);
    for (int e = 0; e < numEdges(); ++e) {
        if (!bit(edge_mask, static_cast<unsigned>(e)))
            continue;
        for (int qubit : {edges_[static_cast<size_t>(e)].source,
                          edges_[static_cast<size_t>(e)].target}) {
            if (++selections[static_cast<size_t>(qubit)] > 1)
                return qubit;
        }
    }
    return std::nullopt;
}

uint64_t
Topology::edgesToMask(const std::vector<int> &edge_addresses) const
{
    checkMaskAddressable(name_, numEdges());
    uint64_t mask = 0;
    for (int e : edge_addresses) {
        if (e < 0 || e >= numEdges()) {
            throwError(ErrorCode::invalidArgument,
                       format("edge address %d out of range", e));
        }
        mask |= uint64_t{1} << e;
    }
    return mask;
}

std::vector<int>
Topology::maskToEdges(uint64_t edge_mask) const
{
    checkMaskAddressable(name_, numEdges());
    std::vector<int> out;
    for (int e = 0; e < numEdges(); ++e) {
        if (bit(edge_mask, static_cast<unsigned>(e)))
            out.push_back(e);
    }
    return out;
}

int
Topology::maskEncodingBits() const
{
    return numEdges();
}

int
Topology::addressPairEncodingBits(int simultaneous_pairs) const
{
    int address_bits = 1;
    while ((1 << address_bits) < numQubits_)
        ++address_bits;
    return simultaneous_pairs * 2 * address_bits;
}

int
Topology::maxParallelPairs() const
{
    // Greedy maximum-matching search over the (small) edge sets; exact
    // via branch and bound since numEdges <= 20 on all shipped chips.
    int best = 0;
    std::vector<int> stack;
    std::function<void(int, uint64_t)> explore =
        [&](int from, uint64_t used_qubits) {
            best = std::max(best, static_cast<int>(stack.size()));
            for (int e = from; e < numEdges(); ++e) {
                const QubitPair &pair = edges_[static_cast<size_t>(e)];
                uint64_t occupancy = (uint64_t{1} << pair.source) |
                                     (uint64_t{1} << pair.target);
                if (used_qubits & occupancy)
                    continue;
                stack.push_back(e);
                explore(e + 1, used_qubits | occupancy);
                stack.pop_back();
            }
        };
    explore(0, 0);
    return best;
}

Topology
Topology::fromJson(const Json &json)
{
    std::string name = json.getString("name", "unnamed");
    int num_qubits = static_cast<int>(json.at("qubits").asInt());
    std::vector<QubitPair> edges;
    for (const Json &entry : json.at("edges").asArray()) {
        edges.push_back({static_cast<int>(entry.at(size_t{0}).asInt()),
                         static_cast<int>(entry.at(size_t{1}).asInt())});
    }
    std::vector<int> feedline;
    if (const Json *lines = json.find("feedlines")) {
        for (const Json &entry : lines->asArray())
            feedline.push_back(static_cast<int>(entry.asInt()));
    }
    return Topology(std::move(name), num_qubits, std::move(edges),
                    std::move(feedline));
}

Json
Topology::toJson() const
{
    Json out = Json::makeObject();
    out.set("name", name_);
    out.set("qubits", static_cast<int64_t>(numQubits_));
    Json edges = Json::makeArray();
    for (const QubitPair &pair : edges_) {
        Json entry = Json::makeArray();
        entry.append(pair.source);
        entry.append(pair.target);
        edges.append(std::move(entry));
    }
    out.set("edges", std::move(edges));
    Json lines = Json::makeArray();
    for (int line : feedline_)
        lines.append(line);
    out.set("feedlines", std::move(lines));
    return out;
}

Topology
Topology::surface7()
{
    // Undirected couplings (source-first orientation); coupling k owns
    // directed edges 2k (as listed) and 2k+1 (reversed). This satisfies
    // the published constraints: edge 0 = (2, 0), edge 8 = (0, 5), and
    // OpSel0 = (T[0] | T[9]) :: (T[1] | T[8]).
    const QubitPair couplings[8] = {
        {2, 0}, {2, 3}, {3, 5}, {4, 1}, {0, 5}, {5, 1}, {5, 6}, {6, 4},
    };
    std::vector<QubitPair> edges;
    for (const QubitPair &c : couplings) {
        edges.push_back(c);
        edges.push_back({c.target, c.source});
    }
    // Feedline 0 measures qubits 0, 2, 3, 5, 6; feedline 1 measures 1, 4.
    std::vector<int> feedline = {0, 1, 0, 0, 1, 0, 0};
    return Topology("surface7", 7, std::move(edges), std::move(feedline));
}

Topology
Topology::twoQubit()
{
    // Section 5: two interconnected transmons on one feedline, renamed
    // to physical addresses 0 and 2 (address 1 is a hole).
    std::vector<QubitPair> edges = {{0, 2}, {2, 0}};
    std::vector<int> feedline = {0, 0, 0};
    return Topology("two_qubit", 3, std::move(edges), std::move(feedline));
}

Topology
Topology::ibmQx2()
{
    // IBM Q 5 Yorktown: CNOT-allowed directed pairs.
    std::vector<QubitPair> edges = {
        {0, 2}, {1, 2}, {3, 2}, {4, 2}, {0, 1}, {3, 4},
    };
    return Topology("ibm_qx2", 5, std::move(edges));
}

Topology
Topology::ionTrap5()
{
    std::vector<QubitPair> edges;
    for (int a = 0; a < 5; ++a) {
        for (int b = 0; b < 5; ++b) {
            if (a != b)
                edges.push_back({a, b});
        }
    }
    return Topology("ion_trap_5", 5, std::move(edges));
}

} // namespace eqasm::chip
