/**
 * @file
 * Two-qubit Grover's search (the Section 5 proof-of-concept algorithm).
 *
 * For N = 4 a single Grover iteration finds the marked element exactly:
 *
 *     |result> = (H (x) H) O_00 (H (x) H) O_m (H (x) H) |00>  =  |m>
 *
 * With Hadamards expressed as H = Ry(90) Z and all the diagonal
 * operators (oracles and Z corrections) commuting, the circuit
 * telescopes into three Y90 layers interleaved with two CZ stages plus
 * per-qubit Z corrections that select the marked element — exactly the
 * gate set of the target processor ({x, y, z rotations} + CZ). The
 * paper reports 85.6 % algorithmic fidelity via tomography with MLE.
 */
#ifndef EQASM_WORKLOADS_GROVER2Q_H
#define EQASM_WORKLOADS_GROVER2Q_H

#include <string>

#include "compiler/circuit.h"
#include "qsim/trajectory_state_vector.h"

namespace eqasm::workloads {

/** Tomography pre-rotation basis for one qubit. */
enum class MeasBasis {
    z,  ///< no pre-rotation.
    x,  ///< Ym90 maps <X> onto <Z>.
    y,  ///< X90 maps <Y> onto <Z>.
};

/** @return the pre-rotation mnemonic ("I", "Ym90", "X90"). */
const char *basisPreRotation(MeasBasis basis);

/**
 * The Grover circuit for marked element @p marked (0..3, bit 0 = first
 * qubit of the pair). Qubit operands are logical {0, 1}; callers remap
 * to physical addresses.
 */
compiler::Circuit groverCircuit(int marked);

/**
 * Full eQASM program for the two-qubit chip (physical qubits
 * @p qubit_a, @p qubit_b with allowed pair (qubit_a, qubit_b)): Grover
 * iteration for @p marked, tomography pre-rotations, simultaneous
 * measurement, STOP.
 */
std::string groverProgram(int marked, MeasBasis basis_a,
                          MeasBasis basis_b, int qubit_a, int qubit_b);

/** The ideal post-algorithm state |marked> on two qubits. */
qsim::StateVector groverIdealState(int marked);

} // namespace eqasm::workloads

#endif // EQASM_WORKLOADS_GROVER2Q_H
