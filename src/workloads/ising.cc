#include "workloads/ising.h"

#include "common/error.h"

namespace eqasm::workloads {

compiler::Circuit
isingCircuit(const chip::Topology &topology, const IsingOptions &options)
{
    EQASM_ASSERT(options.numQubits <= topology.numQubits(),
                 "Ising circuit does not fit the chip");
    EQASM_ASSERT(topology.numEdges() > 0, "chip has no allowed pairs");
    compiler::Circuit circuit;
    circuit.numQubits = topology.numQubits();

    // Rotation axes cycled per layer: transverse field (x), then the
    // mixed-axis corrections a first-order trotterization produces.
    const char *axes[] = {"X90", "Y90", "Xm90", "Ym90"};
    int edge_cursor = 0;
    for (int step = 0; step < options.trotterSteps; ++step) {
        for (int layer = 0; layer < options.singleLayersPerStep; ++layer) {
            const char *axis = axes[(step + layer) % 4];
            for (int qubit = 0; qubit < options.numQubits; ++qubit)
                circuit.add1(axis, qubit);
        }
        if (options.czPeriod > 0 && (step + 1) % options.czPeriod == 0) {
            // One ZZ coupling on the next allowed pair, round-robin.
            const chip::QubitPair &pair =
                topology.edge(edge_cursor % topology.numEdges());
            edge_cursor += 2; // skip the reversed duplicate.
            circuit.add2("CZ", pair.source, pair.target);
        }
    }
    return circuit;
}

} // namespace eqasm::workloads
