/**
 * @file
 * Randomized benchmarking workloads.
 *
 * Two layers are provided:
 *
 *  - circuit generation for the Fig. 7 instruction-count study
 *    (7 parallel qubits x 4096 Cliffords decomposed into x/y rotations,
 *    executed back-to-back);
 *  - a device-level RB experiment runner that evolves a one-qubit
 *    density matrix under the calibrated noise model with a chosen
 *    inter-gate interval, producing the survival probabilities behind
 *    Fig. 12. Running via the density matrix gives the exact survival
 *    probability without shot sampling, so the decay fits are smooth.
 */
#ifndef EQASM_WORKLOADS_RB_H
#define EQASM_WORKLOADS_RB_H

#include "common/rng.h"
#include "compiler/circuit.h"
#include "qsim/noise.h"
#include "workloads/clifford.h"

namespace eqasm::workloads {

/**
 * Builds the Fig. 7 RB benchmark circuit: every one of @p num_qubits
 * qubits runs its own independent random Clifford stream of
 * @p cliffords_per_qubit elements (no recovery; the study only counts
 * instructions).
 */
compiler::Circuit rbCircuit(int num_qubits, int cliffords_per_qubit,
                            Rng &rng);

/**
 * Runs a single-qubit RB sequence at the device level: gates start
 * every @p interval_ns (the paper sweeps 320/160/80/40/20 ns), idle
 * decoherence fills the gaps, and each pulse carries the configured
 * depolarizing error.
 *
 * @return the survival probability P(|0>) after the recovery Clifford.
 */
double rbSurvivalProbability(const RbSequence &sequence,
                             double interval_ns,
                             const qsim::NoiseModel &noise);

/**
 * Full RB experiment: draws @p randomizations sequences per length,
 * returns the mean survival probability for each entry of @p lengths.
 */
std::vector<double> rbDecayCurve(const std::vector<int> &lengths,
                                 int randomizations, double interval_ns,
                                 const qsim::NoiseModel &noise, Rng &rng);

} // namespace eqasm::workloads

#endif // EQASM_WORKLOADS_RB_H
