#include "workloads/experiments.h"

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::workloads {

std::string
activeResetProgram(int qubit)
{
    // Fig. 4 of the paper, plus STOP.
    return format("SMIS S2, {%d}\n"
                  "QWAIT 10000\n"
                  "X90 S2\n"
                  "MEASZ S2\n"
                  "QWAIT 50\n"
                  "C_X S2\n"
                  "MEASZ S2\n"
                  "QWAIT 50\n"
                  "STOP\n",
                  qubit);
}

std::string
cfcProgram(int condition_qubit, int driven_qubit)
{
    // Fig. 5 of the paper, with both paths converging on STOP.
    return format("SMIS S0, {%d}\n"
                  "SMIS S1, {%d}\n"
                  "LDI R0, 1\n"
                  "QWAIT 10000\n"
                  "MEASZ S1\n"
                  "QWAIT 30\n"
                  "FMR R1, Q%d      # fetch msmt result\n"
                  "CMP R1, R0       # compare\n"
                  "BR EQ, eq_path   # jump if R0 == R1\n"
                  "ne_path:\n"
                  "X S0             # happen if msmt result is 0\n"
                  "BR ALWAYS, next  # this flag is always '1'\n"
                  "eq_path:\n"
                  "Y S0             # happen if msmt result is 1\n"
                  "next:\n"
                  "QWAIT 20\n"
                  "STOP\n",
                  driven_qubit, condition_qubit, condition_qubit);
}

isa::OperationSet
rabiOperationSet(int steps)
{
    EQASM_ASSERT(steps >= 2, "a Rabi sweep needs at least two amplitudes");
    isa::OperationSet set = isa::OperationSet::defaultSet();
    // Uncalibrated pulses occupy a free opcode block; the amplitude is
    // modelled as the rotation angle the pulse would produce.
    for (int step = 0; step < steps; ++step) {
        double degrees = 360.0 * step / (steps - 1);
        isa::OperationInfo info;
        info.name = format("X_AMP_%d", step);
        info.opcode = 64 + step;
        info.opClass = isa::OpClass::singleQubit;
        info.durationCycles = 1;
        info.channel = isa::Channel::microwave;
        info.unitary = format("rx:%.6f", degrees);
        set.add(std::move(info));
    }
    return set;
}

std::string
rabiProgram(int step, int qubit)
{
    return format("SMIS S0, {%d}\n"
                  "QWAIT 10000\n"
                  "X_AMP_%d S0\n"
                  "MEASZ S0\n"
                  "QWAIT 50\n"
                  "STOP\n",
                  qubit, step);
}

std::string
t1Program(uint64_t wait_cycles, int qubit)
{
    return format("SMIS S0, {%d}\n"
                  "QWAIT 10000\n"
                  "X S0\n"
                  "QWAIT %llu\n"
                  "1, MEASZ S0\n"
                  "QWAIT 50\n"
                  "STOP\n",
                  qubit, static_cast<unsigned long long>(wait_cycles));
}

} // namespace eqasm::workloads
