/**
 * @file
 * Ising-model benchmark circuit (the "IM" workload of Fig. 7).
 *
 * The paper takes IM from ScaffCC: a parallel 7-qubit algorithm with
 * fewer than 1 % two-qubit gates. ScaffCC itself is not available
 * offline, so this generator produces a trotterized transverse-field
 * Ising evolution with the same structural statistics: dense layers of
 * simultaneous single-qubit rotations across all qubits, with sparse
 * ZZ-coupling (CZ) insertions keeping the two-qubit fraction below 1 %.
 * Fig. 7's results depend only on these timing/parallelism statistics.
 */
#ifndef EQASM_WORKLOADS_ISING_H
#define EQASM_WORKLOADS_ISING_H

#include "chip/topology.h"
#include "compiler/circuit.h"

namespace eqasm::workloads {

/** Generation knobs; the defaults match the paper's description. */
struct IsingOptions {
    int numQubits = 7;
    int trotterSteps = 120;
    /** Single-qubit rotation layers per trotter step. */
    int singleLayersPerStep = 4;
    /** A CZ coupling is inserted every this many steps. */
    int czPeriod = 5;
};

/**
 * Builds the IM circuit. Two-qubit gates use allowed pairs of
 * @p topology so the result also runs on the simulated processor.
 */
compiler::Circuit isingCircuit(const chip::Topology &topology,
                               const IsingOptions &options = {});

} // namespace eqasm::workloads

#endif // EQASM_WORKLOADS_ISING_H
