#include "workloads/allxy.h"

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::workloads {

const std::array<AllxyPair, 21> &
allxyPairs()
{
    // The canonical ordering: 5 identity-like pairs (expect 0), 12
    // half-rotation pairs (expect 0.5), 4 full-excitation pairs
    // (expect 1), producing the staircase of Fig. 11.
    static const std::array<AllxyPair, 21> pairs = {{
        {"I", "I", 0.0},
        {"X", "X", 0.0},
        {"Y", "Y", 0.0},
        {"X", "Y", 0.0},
        {"Y", "X", 0.0},
        {"X90", "I", 0.5},
        {"Y90", "I", 0.5},
        {"X90", "Y90", 0.5},
        {"Y90", "X90", 0.5},
        {"X90", "Y", 0.5},
        {"Y90", "X", 0.5},
        {"X", "Y90", 0.5},
        {"Y", "X90", 0.5},
        {"X90", "X", 0.5},
        {"X", "X90", 0.5},
        {"Y90", "Y", 0.5},
        {"Y", "Y90", 0.5},
        {"X", "I", 1.0},
        {"Y", "I", 1.0},
        {"X90", "X90", 1.0},
        {"Y90", "Y90", 1.0},
    }};
    return pairs;
}

int
allxyFirstQubitPair(int combination)
{
    EQASM_ASSERT(combination >= 0 &&
                     combination < kTwoQubitAllxyCombinations,
                 "combination out of range");
    return combination / 2;
}

int
allxySecondQubitPair(int combination)
{
    EQASM_ASSERT(combination >= 0 &&
                     combination < kTwoQubitAllxyCombinations,
                 "combination out of range");
    return combination % 21;
}

std::string
twoQubitAllxyProgram(int combination, int qubit_a, int qubit_b)
{
    const AllxyPair &pair_a = allxyPairs()[static_cast<size_t>(
        allxyFirstQubitPair(combination))];
    const AllxyPair &pair_b = allxyPairs()[static_cast<size_t>(
        allxySecondQubitPair(combination))];
    // Mirrors Fig. 3: S0/S2 address the individual qubits, S7 both.
    return format("SMIS S0, {%d}\n"
                  "SMIS S2, {%d}\n"
                  "SMIS S7, {%d, %d}\n"
                  "QWAIT 10000\n"
                  "0, %s S0 | %s S2\n"
                  "1, %s S0 | %s S2\n"
                  "1, MEASZ S7\n"
                  "QWAIT 50\n"
                  "STOP\n",
                  qubit_a, qubit_b, qubit_a, qubit_b, pair_a.first,
                  pair_b.first, pair_a.second, pair_b.second);
}

std::string
singleQubitAllxyProgram(int pair_index, int qubit)
{
    EQASM_ASSERT(pair_index >= 0 && pair_index < 21,
                 "pair index out of range");
    const AllxyPair &pair = allxyPairs()[static_cast<size_t>(pair_index)];
    return format("SMIS S0, {%d}\n"
                  "QWAIT 10000\n"
                  "0, %s S0\n"
                  "1, %s S0\n"
                  "1, MEASZ S0\n"
                  "QWAIT 50\n"
                  "STOP\n",
                  qubit, pair.first, pair.second);
}

} // namespace eqasm::workloads
