/**
 * @file
 * Distance-2 surface-code syndrome extraction on the surface-7 chip.
 *
 * The paper's target chip "can implement a distance-2 surface code,
 * which can detect one physical error" (Section 4.1), and names
 * quantum error correction as the application that "would benefit
 * significantly from SOMQ ... performing well-patterned error syndrome
 * measurements repeatedly presenting high parallelism" (Section 4.2).
 *
 * On the reconstructed Fig. 6 topology the data qubits are {0, 1, 3, 6}
 * and the ancillas are qubit 5 (weight-4 Z stabilizer, the degree-4
 * centre) and qubits 2 and 4 (weight-2 X stabilizers). Syndrome
 * circuits use the chip's native gate set: ancilla Y90 / Ym90 basis
 * changes around CZ couplings, so a Z-ancilla ends in |1> iff the
 * joint Z-parity of its data qubits is odd.
 */
#ifndef EQASM_WORKLOADS_SURFACE_CODE_H
#define EQASM_WORKLOADS_SURFACE_CODE_H

#include <string>
#include <vector>

#include "chip/topology.h"
#include "compiler/circuit.h"
#include "isa/operation_set.h"

namespace eqasm::workloads {

/** Qubit roles in the distance-2 layout on surface-7. */
struct SurfaceCodeLayout {
    std::vector<int> dataQubits = {0, 1, 3, 6};
    int zAncilla = 5;                  ///< measures Z0 Z1 Z3 Z6.
    std::vector<int> xAncillas = {2, 4};  ///< X0 X3 and X1 X6.
};

/**
 * One Z-syndrome extraction round, optionally preceded by an injected
 * X error on @p error_qubit (-1 for no error): ancilla Y90, CZ with
 * each data qubit in sequence, ancilla Ym90, measure ancilla.
 * The ancilla reports the data qubits' joint Z-parity.
 */
compiler::Circuit zSyndromeRound(int error_qubit = -1);

/**
 * A full syndrome round including the two X stabilizers (data qubits
 * conjugated into the X basis around the CZs). Used for the
 * instruction-density analysis; its measurement outcomes on |0...0>
 * are random for the X checks.
 */
compiler::Circuit fullSyndromeRound(int rounds = 1);

/**
 * Distance-d rotated surface code on the generated grid chip
 * (chip::Topology::rotatedSurface): d^2 data qubits and d^2 - 1
 * ancillas. Generalises the fixed surface-7 layout above to any
 * distance; d = 3 (17 qubits) is the first code that corrects an error
 * and needs the stabilizer simulation backend.
 */
class RotatedSurfaceCode
{
  public:
    explicit RotatedSurfaceCode(int distance);

    int distance() const { return distance_; }
    int numQubits() const { return 2 * distance_ * distance_ - 1; }
    int numDataQubits() const { return distance_ * distance_; }

    const std::vector<chip::SurfacePlaquette> &plaquettes() const
    {
        return plaquettes_;
    }
    std::vector<int> xAncillas() const;
    std::vector<int> zAncillas() const;

    /** The matching generated chip. */
    chip::Topology topology() const;

    /**
     * @p rounds full X+Z syndrome-extraction rounds in the chip's
     * native gate set, optionally preceded by an injected X error on
     * @p error_qubit (-1 for none). Per round: X checks first (ancillas
     * and data conjugated by Y90/Ym90 around four conflict-free CZ
     * steps, one per plaquette corner), then Z checks (ancilla-only
     * conjugation), then ancilla readout. On |0...0> every Z ancilla
     * deterministically reports the data parity — 0 without an error —
     * while X outcomes are random; with an injected X error the
     * adjacent Z ancillas flip to 1.
     */
    compiler::Circuit syndromeRounds(int rounds = 1,
                                     int error_qubit = -1) const;

  private:
    int distance_;
    std::vector<chip::SurfacePlaquette> plaquettes_;
};

/**
 * Convenience: the executable eQASM program of @p rounds syndrome
 * rounds at distance @p distance — circuit generation, ASAP scheduling
 * and Config-9 code generation against the generated chip.
 */
std::string syndromeProgram(int distance, int rounds,
                            const isa::OperationSet &operations,
                            int error_qubit = -1);

} // namespace eqasm::workloads

#endif // EQASM_WORKLOADS_SURFACE_CODE_H
