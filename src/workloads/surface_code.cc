#include "workloads/surface_code.h"

#include "common/error.h"
#include "compiler/codegen.h"
#include "compiler/schedule.h"

namespace eqasm::workloads {

compiler::Circuit
zSyndromeRound(int error_qubit)
{
    SurfaceCodeLayout layout;
    compiler::Circuit circuit;
    circuit.numQubits = 7;
    if (error_qubit >= 0)
        circuit.add1("X", error_qubit);
    circuit.add1("Y90", layout.zAncilla);
    for (int data : layout.dataQubits)
        circuit.add2("CZ", layout.zAncilla, data);
    circuit.add1("Ym90", layout.zAncilla);
    circuit.add1("MEASZ", layout.zAncilla);
    return circuit;
}

compiler::Circuit
fullSyndromeRound(int rounds)
{
    EQASM_ASSERT(rounds >= 1, "at least one syndrome round");
    SurfaceCodeLayout layout;
    chip::Topology chip = chip::Topology::surface7();
    compiler::Circuit circuit;
    circuit.numQubits = 7;

    for (int round = 0; round < rounds; ++round) {
        // X stabilizers: ancillas 2 and 4 check their two data qubits
        // in the X basis — the "well-patterned" parallel part: every
        // basis-change layer is the same gate on many qubits (SOMQ).
        for (int ancilla : layout.xAncillas)
            circuit.add1("Y90", ancilla);
        for (int data : layout.dataQubits)
            circuit.add1("Y90", data);
        // Couplings: (2,0), (2,3) then (4,1), (6,4) — both ancillas
        // work in parallel.
        circuit.add2("CZ", 2, 0);
        circuit.add2("CZ", 4, 1);
        circuit.add2("CZ", 2, 3);
        circuit.add2("CZ", 6, 4);
        for (int data : layout.dataQubits)
            circuit.add1("Ym90", data);
        for (int ancilla : layout.xAncillas)
            circuit.add1("Ym90", ancilla);
        for (int ancilla : layout.xAncillas)
            circuit.add1("MEASZ", ancilla);

        // Z stabilizer on the centre ancilla.
        circuit.add1("Y90", layout.zAncilla);
        for (int data : layout.dataQubits)
            circuit.add2("CZ", layout.zAncilla, data);
        circuit.add1("Ym90", layout.zAncilla);
        circuit.add1("MEASZ", layout.zAncilla);
    }
    // Sanity: every CZ must be an allowed pair on the chip.
    for (const compiler::Gate &gate : circuit.gates) {
        if (gate.qubits.size() == 2) {
            EQASM_ASSERT(chip.edgeIndex(gate.qubits[0], gate.qubits[1])
                             .has_value(),
                         "syndrome circuit uses a disallowed pair");
        }
    }
    return circuit;
}

// ------------------------------------------------- RotatedSurfaceCode

RotatedSurfaceCode::RotatedSurfaceCode(int distance)
    : distance_(distance),
      plaquettes_(chip::rotatedSurfacePlaquettes(distance))
{
}

std::vector<int>
RotatedSurfaceCode::xAncillas() const
{
    std::vector<int> out;
    for (const chip::SurfacePlaquette &plaquette : plaquettes_) {
        if (plaquette.isX)
            out.push_back(plaquette.ancilla);
    }
    return out;
}

std::vector<int>
RotatedSurfaceCode::zAncillas() const
{
    std::vector<int> out;
    for (const chip::SurfacePlaquette &plaquette : plaquettes_) {
        if (!plaquette.isX)
            out.push_back(plaquette.ancilla);
    }
    return out;
}

chip::Topology
RotatedSurfaceCode::topology() const
{
    return chip::Topology::rotatedSurface(distance_);
}

compiler::Circuit
RotatedSurfaceCode::syndromeRounds(int rounds, int error_qubit) const
{
    EQASM_ASSERT(rounds >= 1, "at least one syndrome round");
    compiler::Circuit circuit;
    circuit.numQubits = numQubits();
    if (error_qubit >= 0) {
        EQASM_ASSERT(error_qubit < numDataQubits(),
                     "injected error must hit a data qubit");
        circuit.add1("X", error_qubit);
    }

    // Within one corner step every CZ pairs a distinct ancilla with the
    // data qubit at the same relative offset, so no qubit appears twice
    // at a timing point — the SOMQ-friendly "well-patterned" structure
    // the paper highlights for QEC.
    auto czSteps = [&](bool x_type) {
        for (int corner = 0; corner < 4; ++corner) {
            for (const chip::SurfacePlaquette &plaquette : plaquettes_) {
                if (plaquette.isX != x_type)
                    continue;
                int data =
                    plaquette.corners[static_cast<size_t>(corner)];
                if (data >= 0)
                    circuit.add2("CZ", plaquette.ancilla, data);
            }
        }
    };

    for (int round = 0; round < rounds; ++round) {
        // X stabilizers: ancillas and data enter the X basis together —
        // every basis-change layer is the same gate on many qubits.
        for (int ancilla : xAncillas())
            circuit.add1("Y90", ancilla);
        for (int data = 0; data < numDataQubits(); ++data)
            circuit.add1("Y90", data);
        czSteps(true);
        for (int data = 0; data < numDataQubits(); ++data)
            circuit.add1("Ym90", data);
        for (int ancilla : xAncillas())
            circuit.add1("Ym90", ancilla);
        for (int ancilla : xAncillas())
            circuit.add1("MEASZ", ancilla);

        // Z stabilizers: only the ancilla is conjugated; it ends in |1>
        // iff the joint Z parity of its data qubits is odd.
        for (int ancilla : zAncillas())
            circuit.add1("Y90", ancilla);
        czSteps(false);
        for (int ancilla : zAncillas())
            circuit.add1("Ym90", ancilla);
        for (int ancilla : zAncillas())
            circuit.add1("MEASZ", ancilla);
    }
    return circuit;
}

std::string
syndromeProgram(int distance, int rounds,
                const isa::OperationSet &operations, int error_qubit)
{
    RotatedSurfaceCode code(distance);
    compiler::Circuit circuit = code.syndromeRounds(rounds, error_qubit);
    compiler::TimedCircuit timed =
        compiler::scheduleAsap(circuit, operations);
    return compiler::generateProgram(timed, operations,
                                     code.topology());
}

} // namespace eqasm::workloads
