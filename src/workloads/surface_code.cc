#include "workloads/surface_code.h"

#include "common/error.h"

namespace eqasm::workloads {

compiler::Circuit
zSyndromeRound(int error_qubit)
{
    SurfaceCodeLayout layout;
    compiler::Circuit circuit;
    circuit.numQubits = 7;
    if (error_qubit >= 0)
        circuit.add1("X", error_qubit);
    circuit.add1("Y90", layout.zAncilla);
    for (int data : layout.dataQubits)
        circuit.add2("CZ", layout.zAncilla, data);
    circuit.add1("Ym90", layout.zAncilla);
    circuit.add1("MEASZ", layout.zAncilla);
    return circuit;
}

compiler::Circuit
fullSyndromeRound(int rounds)
{
    EQASM_ASSERT(rounds >= 1, "at least one syndrome round");
    SurfaceCodeLayout layout;
    chip::Topology chip = chip::Topology::surface7();
    compiler::Circuit circuit;
    circuit.numQubits = 7;

    for (int round = 0; round < rounds; ++round) {
        // X stabilizers: ancillas 2 and 4 check their two data qubits
        // in the X basis — the "well-patterned" parallel part: every
        // basis-change layer is the same gate on many qubits (SOMQ).
        for (int ancilla : layout.xAncillas)
            circuit.add1("Y90", ancilla);
        for (int data : layout.dataQubits)
            circuit.add1("Y90", data);
        // Couplings: (2,0), (2,3) then (4,1), (6,4) — both ancillas
        // work in parallel.
        circuit.add2("CZ", 2, 0);
        circuit.add2("CZ", 4, 1);
        circuit.add2("CZ", 2, 3);
        circuit.add2("CZ", 6, 4);
        for (int data : layout.dataQubits)
            circuit.add1("Ym90", data);
        for (int ancilla : layout.xAncillas)
            circuit.add1("Ym90", ancilla);
        for (int ancilla : layout.xAncillas)
            circuit.add1("MEASZ", ancilla);

        // Z stabilizer on the centre ancilla.
        circuit.add1("Y90", layout.zAncilla);
        for (int data : layout.dataQubits)
            circuit.add2("CZ", layout.zAncilla, data);
        circuit.add1("Ym90", layout.zAncilla);
        circuit.add1("MEASZ", layout.zAncilla);
    }
    // Sanity: every CZ must be an allowed pair on the chip.
    for (const compiler::Gate &gate : circuit.gates) {
        if (gate.qubits.size() == 2) {
            EQASM_ASSERT(chip.edgeIndex(gate.qubits[0], gate.qubits[1])
                             .has_value(),
                         "syndrome circuit uses a disallowed pair");
        }
    }
    return circuit;
}

} // namespace eqasm::workloads
