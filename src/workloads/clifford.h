/**
 * @file
 * The single-qubit Clifford group and its decomposition into the
 * primitive x/y rotations of the target processor.
 *
 * Randomized benchmarking (Sections 4.2 and 5) applies random Clifford
 * gates "decomposed into x and y rotations"; the paper states the
 * decomposition costs 1.875 primitive gates per Clifford on average.
 * This module constructs the 24-element group numerically and derives
 * shortest decompositions over {I, X, Y, X90, Xm90, Y90, Ym90} by
 * breadth-first search, which reproduces exactly that 1.875 average
 * (45 primitives over 24 Cliffords; the test suite asserts it).
 */
#ifndef EQASM_WORKLOADS_CLIFFORD_H
#define EQASM_WORKLOADS_CLIFFORD_H

#include <string>
#include <vector>

#include "common/rng.h"
#include "qsim/linalg.h"

namespace eqasm::workloads {

/** Number of single-qubit Clifford group elements. */
inline constexpr int kNumCliffords = 24;

/** Access to the lazily-built group table (thread-unsafe by design —
 *  the simulator is single-threaded). */
class CliffordGroup
{
  public:
    /** @return the singleton instance. */
    static const CliffordGroup &instance();

    /** @return the 2x2 unitary of Clifford @p index. */
    const qsim::CMatrix &unitary(int index) const;

    /** @return the shortest primitive-gate decomposition (mnemonics
     *  from the default operation set, applied left-to-right). */
    const std::vector<std::string> &decomposition(int index) const;

    /** Group composition: the index of (apply @p first, then
     *  @p second). */
    int compose(int first, int second) const;

    /** @return the index of the inverse element. */
    int inverse(int index) const;

    /** @return the index matching @p unitary up to global phase, or -1. */
    int indexOf(const qsim::CMatrix &unitary) const;

    /** Average decomposition length over the group (= 1.875). */
    double averageGateCount() const;

  private:
    CliffordGroup();

    std::vector<qsim::CMatrix> unitaries_;
    std::vector<std::vector<std::string>> decompositions_;
    std::vector<std::vector<int>> composeTable_;
    std::vector<int> inverses_;
};

/**
 * A randomized-benchmarking sequence: @p length random Cliffords plus
 * the recovery Clifford inverting their product, fully decomposed into
 * primitive gates.
 */
struct RbSequence {
    std::vector<int> cliffords;      ///< including the recovery element.
    std::vector<std::string> gates;  ///< primitive decomposition.
};

/** Draws a random RB sequence of @p length Cliffords (plus recovery). */
RbSequence randomRbSequence(int length, Rng &rng);

} // namespace eqasm::workloads

#endif // EQASM_WORKLOADS_CLIFFORD_H
