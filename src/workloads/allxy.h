/**
 * @file
 * The AllXY calibration experiment (Fig. 3 / Fig. 11 of the paper).
 *
 * AllXY applies 21 pairs of gates drawn from {I, X, Y, X90, Y90} to a
 * qubit prepared in |0> and measures it; the ideal |1>-fractions form
 * the characteristic 0 / 0.5 / 1 staircase that is highly sensitive to
 * calibration errors.
 *
 * The two-qubit variant used for Fig. 11 distinguishes the qubits by
 * repetition: "each gate pair in the sequence is repeated on the first
 * qubit while the entire sequence is repeated on the second qubit",
 * giving 42 gate-pair combinations.
 */
#ifndef EQASM_WORKLOADS_ALLXY_H
#define EQASM_WORKLOADS_ALLXY_H

#include <array>
#include <string>

namespace eqasm::workloads {

/** One AllXY gate pair and its ideal measured |1>-fraction. */
struct AllxyPair {
    const char *first;
    const char *second;
    double idealFractionOne;
};

/** The canonical 21-pair AllXY sequence. */
const std::array<AllxyPair, 21> &allxyPairs();

/** Number of combinations in the two-qubit AllXY experiment. */
inline constexpr int kTwoQubitAllxyCombinations = 42;

/** Gate-pair index applied to the first qubit in combination @p c
 *  (each pair repeated twice: c / 2). */
int allxyFirstQubitPair(int combination);

/** Gate-pair index applied to the second qubit in combination @p c
 *  (the whole sequence repeated: c % 21). */
int allxySecondQubitPair(int combination);

/**
 * Builds the eQASM program (Fig. 3 style) for one combination of the
 * two-qubit AllXY experiment on qubits @p qubit_a and @p qubit_b:
 * 200 us initialisation, the two gate pairs applied simultaneously as
 * VLIW bundles, simultaneous measurement via SOMQ, and STOP.
 */
std::string twoQubitAllxyProgram(int combination, int qubit_a,
                                 int qubit_b);

/** Single-qubit AllXY program for pair @p pair_index on @p qubit. */
std::string singleQubitAllxyProgram(int pair_index, int qubit);

} // namespace eqasm::workloads

#endif // EQASM_WORKLOADS_ALLXY_H
