/**
 * @file
 * Grover square-root benchmark circuit (the "SR" workload of Fig. 7).
 *
 * The paper takes SR from ScaffCC: "Grover's algorithm to calculate
 * the square root using 8 qubits, ... which has ~39 % two-qubit gates"
 * and is "relatively sequential". This generator reproduces those
 * structural statistics with a Grover-shaped iteration: an oracle built
 * from sequential CZ chains with interleaved basis changes (the CZ+1q
 * pattern of Toffoli decompositions) followed by a diffusion stage.
 * The resulting circuit is a single long dependency chain with a
 * two-qubit fraction of ~39 % (asserted by the tests).
 */
#ifndef EQASM_WORKLOADS_GROVER_SR_H
#define EQASM_WORKLOADS_GROVER_SR_H

#include "compiler/circuit.h"

namespace eqasm::workloads {

/** Generation knobs; defaults match the paper's description. */
struct GroverSrOptions {
    int numQubits = 8;
    int iterations = 24;
};

/** Builds the SR circuit (two-qubit gates on a line: (i, i+1)). */
compiler::Circuit groverSquareRootCircuit(
    const GroverSrOptions &options = {});

} // namespace eqasm::workloads

#endif // EQASM_WORKLOADS_GROVER_SR_H
