#include "workloads/grover_sr.h"

#include "common/error.h"

namespace eqasm::workloads {

compiler::Circuit
groverSquareRootCircuit(const GroverSrOptions &options)
{
    EQASM_ASSERT(options.numQubits >= 3, "SR needs at least 3 qubits");
    compiler::Circuit circuit;
    circuit.numQubits = options.numQubits;
    int n = options.numQubits;

    for (int iteration = 0; iteration < options.iterations; ++iteration) {
        // Oracle: a sequential chain of CZ with basis-change rotations,
        // the shape of a multi-controlled phase decomposed into CZ +
        // single-qubit gates. Each link touches the previous link's
        // qubit, keeping the whole stage a single dependency chain.
        for (int i = 0; i + 1 < n; ++i) {
            circuit.add1("Y90", i + 1);
            circuit.add2("CZ", i, i + 1);
            circuit.add1("Ym90", i + 1);
            circuit.add2("CZ", i, i + 1);
            circuit.add1("X90", i + 1);
        }
        // Diffusion: invert about the mean — rotations on the chain
        // head plus a CZ ladder back down.
        circuit.add1("Y90", n - 1);
        circuit.add1("X90", 0);
        circuit.add1("X90", n - 1);
        for (int i = n - 2; i >= 0; --i) {
            circuit.add2("CZ", i, i + 1);
            circuit.add1("X90", i);
        }
        circuit.add1("Xm90", 0);
        circuit.add1("Ym90", 0);
    }
    return circuit;
}

} // namespace eqasm::workloads
