#include "workloads/rb.h"

#include "common/error.h"
#include "qsim/density_matrix.h"
#include "qsim/gates.h"

namespace eqasm::workloads {

compiler::Circuit
rbCircuit(int num_qubits, int cliffords_per_qubit, Rng &rng)
{
    const CliffordGroup &group = CliffordGroup::instance();
    compiler::Circuit circuit;
    circuit.numQubits = num_qubits;
    // Emit per-qubit gate streams; ASAP scheduling restores the
    // back-to-back per-qubit timing regardless of emission order.
    for (int qubit = 0; qubit < num_qubits; ++qubit) {
        for (int i = 0; i < cliffords_per_qubit; ++i) {
            int choice = static_cast<int>(rng.uniformInt(kNumCliffords));
            for (const std::string &gate : group.decomposition(choice))
                circuit.add1(gate, qubit);
        }
    }
    return circuit;
}

double
rbSurvivalProbability(const RbSequence &sequence, double interval_ns,
                      const qsim::NoiseModel &noise)
{
    EQASM_ASSERT(interval_ns > 0.0, "interval must be positive");
    // Gate pulses are 20 ns; the remainder of each interval is idle.
    const double pulse_ns = 20.0;
    qsim::DensityMatrix rho(1);
    bool first = true;
    for (const std::string &gate_name : sequence.gates) {
        if (!first && interval_ns > pulse_ns) {
            qsim::applyIdleNoise(rho, 0, interval_ns - pulse_ns, noise);
        }
        first = false;
        auto gate = qsim::makeGate(
            gate_name == "I" ? "i" : gate_name);
        EQASM_ASSERT(gate.has_value(), "unknown primitive gate");
        rho.applyGate1(gate->matrix, 0);
        // The identity is an idle slot, not a pulse: no pulse error.
        if (gate_name != "I")
            qsim::applyGateNoise1(rho, 0, noise);
    }
    return 1.0 - rho.probabilityOne(0);
}

std::vector<double>
rbDecayCurve(const std::vector<int> &lengths, int randomizations,
             double interval_ns, const qsim::NoiseModel &noise, Rng &rng)
{
    std::vector<double> curve;
    curve.reserve(lengths.size());
    for (int length : lengths) {
        double sum = 0.0;
        for (int r = 0; r < randomizations; ++r) {
            RbSequence sequence = randomRbSequence(length, rng);
            sum += rbSurvivalProbability(sequence, interval_ns, noise);
        }
        curve.push_back(sum / randomizations);
    }
    return curve;
}

} // namespace eqasm::workloads
