#include "workloads/clifford.h"

#include <cmath>
#include <deque>

#include "common/error.h"
#include "common/strings.h"
#include "qsim/gates.h"

namespace eqasm::workloads {

namespace {

/** Equality of 2x2 unitaries up to global phase: |tr(U^dagger V)| = 2. */
bool
sameUpToPhase(const qsim::CMatrix &u, const qsim::CMatrix &v)
{
    qsim::Complex overlap = 0.0;
    for (size_t i = 0; i < 2; ++i) {
        for (size_t j = 0; j < 2; ++j)
            overlap += std::conj(u(i, j)) * v(i, j);
    }
    return std::abs(std::abs(overlap) - 2.0) < 1e-9;
}

struct Primitive {
    const char *name;
    qsim::CMatrix matrix;
};

std::vector<Primitive>
primitives()
{
    return {
        {"X", qsim::matX()},
        {"Y", qsim::matY()},
        {"X90", qsim::matRx(M_PI / 2.0)},
        {"Xm90", qsim::matRx(-M_PI / 2.0)},
        {"Y90", qsim::matRy(M_PI / 2.0)},
        {"Ym90", qsim::matRy(-M_PI / 2.0)},
    };
}

} // namespace

const CliffordGroup &
CliffordGroup::instance()
{
    static CliffordGroup group;
    return group;
}

CliffordGroup::CliffordGroup()
{
    // Breadth-first search over products of primitives discovers all 24
    // Cliffords with shortest decompositions. The identity is seeded
    // with the explicit I pulse (the hardware idles for one cycle), so
    // it costs one gate — matching the conventions behind the paper's
    // 1.875 average.
    std::vector<Primitive> prims = primitives();
    unitaries_.push_back(qsim::CMatrix::identity(2));
    decompositions_.push_back({"I"});

    std::deque<int> frontier;
    frontier.push_back(0);
    while (!frontier.empty() &&
           static_cast<int>(unitaries_.size()) < kNumCliffords) {
        int current = frontier.front();
        frontier.pop_front();
        for (const Primitive &prim : prims) {
            qsim::CMatrix candidate = prim.matrix * unitaries_[
                static_cast<size_t>(current)];
            bool known = false;
            for (const qsim::CMatrix &existing : unitaries_) {
                if (sameUpToPhase(existing, candidate)) {
                    known = true;
                    break;
                }
            }
            if (known)
                continue;
            std::vector<std::string> decomposition =
                current == 0 ? std::vector<std::string>{}
                             : decompositions_[static_cast<size_t>(
                                   current)];
            decomposition.push_back(prim.name);
            unitaries_.push_back(std::move(candidate));
            decompositions_.push_back(std::move(decomposition));
            frontier.push_back(static_cast<int>(unitaries_.size()) - 1);
        }
    }
    EQASM_ASSERT(static_cast<int>(unitaries_.size()) == kNumCliffords,
                 "Clifford BFS did not find 24 elements");

    // Composition and inverse tables.
    composeTable_.assign(kNumCliffords,
                         std::vector<int>(kNumCliffords, -1));
    inverses_.assign(kNumCliffords, -1);
    for (int a = 0; a < kNumCliffords; ++a) {
        for (int b = 0; b < kNumCliffords; ++b) {
            qsim::CMatrix product =
                unitaries_[static_cast<size_t>(b)] *
                unitaries_[static_cast<size_t>(a)];
            int index = indexOf(product);
            EQASM_ASSERT(index >= 0, "Clifford composition left the group");
            composeTable_[static_cast<size_t>(a)]
                         [static_cast<size_t>(b)] = index;
            if (index == 0 && inverses_[static_cast<size_t>(a)] < 0)
                inverses_[static_cast<size_t>(a)] = b;
        }
    }
}

const qsim::CMatrix &
CliffordGroup::unitary(int index) const
{
    EQASM_ASSERT(index >= 0 && index < kNumCliffords,
                 "Clifford index out of range");
    return unitaries_[static_cast<size_t>(index)];
}

const std::vector<std::string> &
CliffordGroup::decomposition(int index) const
{
    EQASM_ASSERT(index >= 0 && index < kNumCliffords,
                 "Clifford index out of range");
    return decompositions_[static_cast<size_t>(index)];
}

int
CliffordGroup::compose(int first, int second) const
{
    EQASM_ASSERT(first >= 0 && first < kNumCliffords &&
                     second >= 0 && second < kNumCliffords,
                 "Clifford index out of range");
    return composeTable_[static_cast<size_t>(first)]
                        [static_cast<size_t>(second)];
}

int
CliffordGroup::inverse(int index) const
{
    EQASM_ASSERT(index >= 0 && index < kNumCliffords,
                 "Clifford index out of range");
    return inverses_[static_cast<size_t>(index)];
}

int
CliffordGroup::indexOf(const qsim::CMatrix &unitary) const
{
    for (size_t i = 0; i < unitaries_.size(); ++i) {
        if (sameUpToPhase(unitaries_[i], unitary))
            return static_cast<int>(i);
    }
    return -1;
}

double
CliffordGroup::averageGateCount() const
{
    size_t total = 0;
    for (const auto &decomposition : decompositions_)
        total += decomposition.size();
    return static_cast<double>(total) / kNumCliffords;
}

RbSequence
randomRbSequence(int length, Rng &rng)
{
    const CliffordGroup &group = CliffordGroup::instance();
    RbSequence sequence;
    int accumulated = 0;
    for (int i = 0; i < length; ++i) {
        int choice = static_cast<int>(rng.uniformInt(kNumCliffords));
        sequence.cliffords.push_back(choice);
        accumulated = group.compose(accumulated, choice);
    }
    int recovery = group.inverse(accumulated);
    sequence.cliffords.push_back(recovery);
    for (int clifford : sequence.cliffords) {
        for (const std::string &gate : group.decomposition(clifford))
            sequence.gates.push_back(gate);
    }
    return sequence;
}

} // namespace eqasm::workloads
