#include "workloads/grover2q.h"

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::workloads {

const char *
basisPreRotation(MeasBasis basis)
{
    switch (basis) {
      case MeasBasis::z: return "I";
      case MeasBasis::x: return "Ym90";
      case MeasBasis::y: return "X90";
    }
    return "I";
}

namespace {

/**
 * Z corrections turning CZ into the oracle O_m (up to global phase):
 * the diagonal (-1)^(a q0 + b q1 + q0 q1) has its single -1 at
 * (q0, q1) = (m0, m1) for the (a, b) returned here.
 */
void
oracleZs(int marked, bool &z_on_q0, bool &z_on_q1)
{
    int m0 = marked & 1;
    int m1 = (marked >> 1) & 1;
    if (marked == 0) {
        z_on_q0 = true;
        z_on_q1 = true;
    } else {
        z_on_q0 = (m0 == 1 && m1 == 0);
        z_on_q1 = (m1 == 1 && m0 == 0);
    }
}

} // namespace

compiler::Circuit
groverCircuit(int marked)
{
    EQASM_ASSERT(marked >= 0 && marked < 4, "marked element out of range");
    compiler::Circuit circuit;
    circuit.numQubits = 2;

    // Telescoped form: Ry90 layer, D1 = (Z (x) Z) O_m, Ry90 layer,
    // D2 = (Z (x) Z) O_00 = CZ, Ry90 layer (see header comment).
    circuit.add1("Y90", 0);
    circuit.add1("Y90", 1);
    bool z0, z1;
    oracleZs(marked, z0, z1);
    // D1's extra Z (x) Z toggles both corrections.
    if (!z0)
        circuit.add1("Z", 0);
    if (!z1)
        circuit.add1("Z", 1);
    circuit.add2("CZ", 0, 1);
    circuit.add1("Y90", 0);
    circuit.add1("Y90", 1);
    circuit.add2("CZ", 0, 1);
    circuit.add1("Y90", 0);
    circuit.add1("Y90", 1);
    return circuit;
}

std::string
groverProgram(int marked, MeasBasis basis_a, MeasBasis basis_b,
              int qubit_a, int qubit_b)
{
    compiler::Circuit circuit = groverCircuit(marked);
    bool z0, z1;
    oracleZs(marked, z0, z1);

    std::string out;
    out += format("SMIS S0, {%d}\n", qubit_a);
    out += format("SMIS S1, {%d}\n", qubit_b);
    out += format("SMIS S7, {%d, %d}\n", qubit_a, qubit_b);
    out += format("SMIT T0, {(%d, %d)}\n", qubit_a, qubit_b);
    out += "QWAIT 10000\n";
    out += "0, Y90 S7\n";
    if (!z0 && !z1) {
        out += "1, Z S7\n";
    } else if (!z0) {
        out += "1, Z S0\n";
    } else if (!z1) {
        out += "1, Z S1\n";
    } else {
        out += "1, I S7\n"; // keep the timing identical across oracles.
    }
    out += "1, CZ T0\n";
    out += "2, Y90 S7\n";
    out += "1, CZ T0\n";
    out += "2, Y90 S7\n";
    // Tomography pre-rotations.
    out += format("1, %s S0 | %s S1\n", basisPreRotation(basis_a),
                  basisPreRotation(basis_b));
    out += "1, MEASZ S7\n";
    out += "QWAIT 50\n";
    out += "STOP\n";
    return out;
}

qsim::StateVector
groverIdealState(int marked)
{
    EQASM_ASSERT(marked >= 0 && marked < 4, "marked element out of range");
    qsim::StateVector state(2);
    if (marked & 1)
        state.applyGate1(qsim::matX(), 0);
    if (marked & 2)
        state.applyGate1(qsim::matX(), 1);
    return state;
}

} // namespace eqasm::workloads
