/**
 * @file
 * eQASM programs for the Section 5 validation experiments: active qubit
 * reset (Fig. 4), comprehensive feedback control (Fig. 5), Rabi
 * amplitude calibration and the T1 relaxation experiment.
 */
#ifndef EQASM_WORKLOADS_EXPERIMENTS_H
#define EQASM_WORKLOADS_EXPERIMENTS_H

#include <cstdint>
#include <string>

#include "isa/operation_set.h"

namespace eqasm::workloads {

/**
 * The Fig. 4 active-reset program: prepare an equal superposition,
 * measure, conditionally apply C_X (fast conditional execution on the
 * "last result is |1>" flag), measure again for verification.
 */
std::string activeResetProgram(int qubit);

/**
 * The Fig. 5 CFC program, verbatim: measure @p condition_qubit; fetch
 * the result via FMR (stalling until valid), compare and branch; apply
 * Y on @p driven_qubit if the result was 1, X otherwise.
 */
std::string cfcProgram(int condition_qubit, int driven_qubit);

/**
 * Builds an operation set for the Rabi experiment: the default set plus
 * @p steps uncalibrated pulses X_AMP_0 .. X_AMP_{steps-1} with rotation
 * angles spread over [0, 2 pi] — "a sequence of fixed-length x-rotation
 * pulses with variable amplitudes" (Section 5). Demonstrates the
 * compile-time configurability of the QISA (Section 3.2).
 */
isa::OperationSet rabiOperationSet(int steps);

/** The Rabi program for amplitude step @p step on @p qubit. */
std::string rabiProgram(int step, int qubit);

/** T1 experiment: excite with X, idle @p wait_cycles, measure. */
std::string t1Program(uint64_t wait_cycles, int qubit);

} // namespace eqasm::workloads

#endif // EQASM_WORKLOADS_EXPERIMENTS_H
