/**
 * @file
 * JobHandle — the caller's side of a submitted job.
 *
 * ShotEngine::submit used to return a bare std::future, which can only
 * wait. A serving system needs more: callers cancel jobs they no longer
 * want (an early-stopping calibration loop), poll progress of long
 * batches, and stream partial aggregates while the batch runs. The
 * handle bundles those controls with the result future.
 *
 * The handle is a value type (copyable, cheap): it shares ownership of
 * the engine-side job state, so it stays valid after the job finishes
 * and even after the engine itself is destroyed — a late cancel() on a
 * finished job is a harmless no-op.
 */
#ifndef EQASM_SCHED_JOB_HANDLE_H
#define EQASM_SCHED_JOB_HANDLE_H

#include <chrono>
#include <future>
#include <memory>

#include "common/error.h"
#include "engine/batch_result.h"

namespace eqasm::sched {

/** Point-in-time progress of a submitted job. */
struct Progress {
    int completedShots = 0;  ///< shots whose chunks have finished.
    int totalShots = 0;      ///< shots the job asked for.
    bool cancelRequested = false;

    /** @return completion in [0, 1]. */
    double fraction() const
    {
        return totalShots > 0 ? static_cast<double>(completedShots) /
                                    static_cast<double>(totalShots)
                              : 0.0;
    }
};

/**
 * Engine-side control surface a JobHandle drives. Implemented by the
 * engine's internal per-job state; both operations are lock-free and
 * safe from any thread.
 */
class JobControl
{
  public:
    virtual ~JobControl() = default;

    /** Requests cancellation (idempotent, asynchronous). */
    virtual void requestCancel() = 0;

    /** @return a consistent snapshot of the job's progress. */
    virtual Progress progress() const = 0;
};

/** Caller-facing handle of one submitted job. */
class JobHandle
{
  public:
    /** An invalid handle; valid() is false. */
    JobHandle() = default;

    JobHandle(std::shared_ptr<JobControl> control,
              std::shared_future<engine::BatchResult> future)
        : control_(std::move(control)), future_(std::move(future))
    {
    }

    /** @return true when the handle refers to a submitted job. */
    bool valid() const { return static_cast<bool>(control_); }

    /**
     * Requests cancellation. Unclaimed shots are dropped at the next
     * chunk boundary; in-flight shots finish. get() then rethrows
     * Error{runtimeError} naming the job — unless every shot already
     * completed, in which case the result stands and cancel is a no-op.
     */
    void cancel()
    {
        if (control_)
            control_->requestCancel();
    }

    /** @return shots completed / requested so far. */
    Progress progress() const
    {
        return control_ ? control_->progress() : Progress{};
    }

    /** Blocks until the job completes (successfully or not); returns
     *  immediately on an invalid handle. */
    void wait() const
    {
        if (future_.valid())
            future_.wait();
    }

    /**
     * Blocks until the job completes or @p timeout elapses — the
     * bounded wait a serving loop needs (a daemon polling many jobs
     * must never park forever on one of them).
     * @return true once the result (or error) is available within the
     *         timeout; false on expiry — and false immediately on an
     *         invalid handle, mirroring done().
     */
    bool waitFor(std::chrono::milliseconds timeout) const
    {
        return future_.valid() &&
               future_.wait_for(timeout) == std::future_status::ready;
    }

    /** @return true once the result (or error) is available (false on
     *  an invalid handle). */
    bool done() const
    {
        return future_.valid() &&
               future_.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready;
    }

    /**
     * Blocks for the aggregated result. Rethrows the first error any
     * shot raised, or the cancellation error.
     * @throws Error{invalidArgument} on an invalid handle.
     */
    engine::BatchResult get() const
    {
        if (!future_.valid()) {
            throwError(ErrorCode::invalidArgument,
                       "job handle is not attached to a job");
        }
        return future_.get();
    }

  private:
    std::shared_ptr<JobControl> control_;
    std::shared_future<engine::BatchResult> future_;
};

} // namespace eqasm::sched

#endif // EQASM_SCHED_JOB_HANDLE_H
