/**
 * @file
 * Per-tenant admission quotas and submit rate limits — the layer a
 * serving front-end (eqasmd) puts *above* the fair-share scheduler.
 *
 * Fair-share decides who runs next among admitted work; it cannot stop
 * a tenant from flooding the queue in the first place (every queued job
 * costs memory, journal space and scheduling work even if it never gets
 * a worker visit). The quota manager therefore gates admission:
 *
 *  - active-job and active-shot ceilings: a submit that would push a
 *    tenant past its cap is refused outright;
 *  - a token-bucket submit rate limit: tokens refill at ratePerSec up
 *    to a burst cap, every admitted submit spends one — sustained
 *    submit storms are throttled while short bursts pass.
 *
 * Refusals throw Error{quotaExceeded} with a message naming the tenant
 * and the exact limit, so the wire protocol can relay a typed error,
 * and each refusal bumps a per-tenant, per-reason telemetry counter
 * (eqasm_sched_quota_rejections_total) so operators see who is being
 * throttled. Admission is time-stamped by the caller (microseconds,
 * any monotonic base), which keeps the refill arithmetic deterministic
 * and directly testable.
 *
 * Thread-safe: all operations take an internal mutex (admission is a
 * per-submit event, never a per-shot one, so a mutex costs nothing
 * that matters).
 */
#ifndef EQASM_SCHED_QUOTA_H
#define EQASM_SCHED_QUOTA_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/json.h"
#include "telemetry/metrics.h"

namespace eqasm::sched {

/** Limits applied to one tenant; 0 means "unlimited" for each field. */
struct TenantLimits {
    int maxActiveJobs = 0;      ///< admitted-but-unfinished job cap.
    int64_t maxActiveShots = 0; ///< shots across those jobs.
    double submitRatePerSec = 0.0;  ///< token-bucket refill rate.
    /** Token-bucket capacity; <= 0 selects max(1, submitRatePerSec). */
    double submitBurst = 0.0;
};

/** Quota configuration: defaults plus per-tenant overrides. */
struct QuotaConfig {
    TenantLimits defaults;                      ///< unlisted tenants.
    std::map<std::string, TenantLimits> tenants;

    /** @return the limits governing @p tenant. */
    const TenantLimits &limitsFor(const std::string &tenant) const;

    /**
     * Parses {"defaults": {...}, "tenants": {"name": {...}, ...}} where
     * each limits object may set "max_active_jobs", "max_active_shots",
     * "submit_rate_per_sec" and "submit_burst" (all optional, 0 =
     * unlimited).
     * @throws Error{invalidArgument} on unknown keys or negative
     *         values, naming the offending field.
     */
    static QuotaConfig fromJson(const Json &json);
    Json toJson() const;
};

/**
 * Tracks per-tenant admission state and enforces QuotaConfig.
 * admit() either records the submit or throws; release() returns the
 * job's footprint when it settles (completed, failed or cancelled).
 */
class QuotaManager
{
  public:
    explicit QuotaManager(QuotaConfig config = {});

    /**
     * Admits a @p shots -shot submit of @p tenant at time @p nowUs
     * (monotonic microseconds; only differences matter).
     * @throws Error{quotaExceeded} naming the tenant and the violated
     *         limit (active jobs, active shots, or submit rate). A
     *         refused submit spends no token and charges nothing.
     */
    void admit(const std::string &tenant, int shots, uint64_t nowUs);

    /**
     * Records a recovered job (journal replay) without checking any
     * limit — the job was admitted before the restart; re-checking
     * would let a quota change strand durable work.
     */
    void track(const std::string &tenant, int shots);

    /** Releases one admitted/tracked job's footprint. */
    void release(const std::string &tenant, int shots);

    int activeJobs(const std::string &tenant) const;
    int64_t activeShots(const std::string &tenant) const;
    const QuotaConfig &config() const { return config_; }

  private:
    struct TenantState {
        int activeJobs = 0;
        int64_t activeShots = 0;
        double tokens = 0.0;
        uint64_t lastRefillUs = 0;
        bool bucketPrimed = false;  ///< first admit fills the bucket.
    };

    /** Lazily registered per-(tenant, reason) rejection counter. */
    const telemetry::Counter &rejectionCounter(const std::string &tenant,
                                               const char *reason);

    QuotaConfig config_;
    mutable std::mutex mutex_;
    std::map<std::string, TenantState> tenants_;
    std::map<std::pair<std::string, std::string>, telemetry::Counter>
        rejections_;
};

} // namespace eqasm::sched

#endif // EQASM_SCHED_QUOTA_H
