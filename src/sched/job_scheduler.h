/**
 * @file
 * JobScheduler — pluggable multi-tenant scheduling policies for the
 * shot engine's job queue.
 *
 * The paper's execution model has the host CPU hand assembled eQASM
 * programs to the quantum control processor; every validated experiment
 * is a batch of independent shots. A serving system therefore schedules
 * *jobs*, and the unit of preemption is a *chunk* of shots: each worker
 * visit asks the scheduler which job receives the next chunk, so a
 * newly arrived high-priority job claims the very next visit without
 * killing in-flight shots. Because the counter-based Rng::forShot
 * streams make shot k's outcome independent of when and where it runs,
 * any scheduling order folds to a bitwise-identical BatchResult —
 * reordering and preemption carry no correctness risk.
 *
 * Three policies:
 *  - fifo: strict admission order, bit-compatible with the original
 *    single-deque engine (workers drain one job before the next).
 *  - priority: the pending job with the highest Job::priority wins
 *    every worker visit; ties break by earlier deadline (0 = none),
 *    then admission order. A long low-priority job is preempted at the
 *    next chunk boundary.
 *  - fairShare: deficit round-robin over per-tenant FIFO queues. Each
 *    tenant visit replenishes its deficit by quantumShots * weight;
 *    chunks are charged against the deficit, so over time tenants
 *    receive worker visits proportional to their weights regardless of
 *    how many jobs each tenant floods into the queue.
 *
 * The scheduler is a passive data structure: ShotEngine calls it under
 * its own mutex. It is not thread-safe on its own.
 */
#ifndef EQASM_SCHED_JOB_SCHEDULER_H
#define EQASM_SCHED_JOB_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"

namespace eqasm::sched {

/** Queue-ordering policy of a JobScheduler. */
enum class Policy {
    fifo,       ///< admission order (bit-compatible default).
    priority,   ///< highest Job::priority first, preemptive.
    fairShare,  ///< deficit round-robin across tenants.
};

/** @return a stable lower-case name for @p policy ("fifo", ...). */
const char *policyName(Policy policy);

/** Parses "fifo" / "priority" / "fair" / "fair_share" / "fairshare". */
std::optional<Policy> parsePolicy(std::string_view name);

/** Scheduling configuration of an engine's queue. */
struct SchedulerConfig {
    Policy policy = Policy::fifo;

    /** Fair-share only: shots granted to a tenant per round-robin
     *  visit, scaled by the tenant's weight. */
    int quantumShots = 64;

    /** Fair-share only: tenant -> relative weight (>= 1). Tenants not
     *  listed weigh 1. */
    std::map<std::string, int> tenantWeights;
};

/** What the scheduler knows about one queued job. */
struct QueuedJob {
    uint64_t id = 0;          ///< engine job id (nonzero).
    std::string tenant;       ///< fair-share bucket ("" = default).
    int priority = 0;         ///< higher runs earlier (priority policy).
    uint64_t deadlineUs = 0;  ///< soft deadline; tie-break (0 = none).
};

/**
 * Decides which pending job receives each worker visit. Jobs stay
 * queued across many pickNext() calls (a visit claims one chunk, not
 * the whole job) until the engine remove()s them — fully claimed or
 * cancelled.
 */
class JobScheduler
{
  public:
    explicit JobScheduler(SchedulerConfig config = {});

    /** Admits a job. @p job.id must be nonzero and not yet queued. */
    void enqueue(QueuedJob job);

    /**
     * @return the id of the job the next worker visit should serve, or
     * 0 when nothing is pending. Does not remove the job.
     */
    uint64_t pickNext();

    /** Fair-share accounting: @p shots were just claimed for @p id.
     *  FIFO and priority ignore the charge. */
    void charge(uint64_t id, int shots);

    /** Removes a fully claimed or cancelled job. Unknown ids are a
     *  no-op (a job may already be gone when a cancel races in). */
    void remove(uint64_t id);

    bool empty() const { return jobs_.empty(); }
    size_t pendingJobs() const { return jobs_.size(); }
    const SchedulerConfig &config() const { return config_; }

  private:
    /** Per-tenant fair-share state. */
    struct TenantQueue {
        std::deque<uint64_t> jobs;  ///< admission order within tenant.
        long long deficitShots = 0;
        int weight = 1;
        /** Mirrors deficitShots into the registry by deltas. */
        telemetry::Gauge deficitGauge;
    };

    int weightOf(const std::string &tenant) const;
    uint64_t pickNextByPolicy();
    uint64_t pickFairShare();
    /** Lazily registered per-tenant served-shots counter. Registration
     *  locks the registry mutex, so it happens once per tenant, not per
     *  charge. */
    const telemetry::Counter &servedCounter(const std::string &tenant);

    SchedulerConfig config_;

    /** id -> job. Admission order lives in order_ (and the per-tenant
     *  deques), which is what the tie-breaks iterate. */
    std::map<uint64_t, QueuedJob> jobs_;

    // --- fifo / priority: admission order list of ids ---
    std::vector<uint64_t> order_;

    // --- fairShare: round-robin ring of tenants with pending jobs ---
    std::map<std::string, TenantQueue> tenants_;
    std::deque<std::string> tenantRing_;

    // --- telemetry (engine-mutex-guarded like everything above) ---
    /** The job the previous pickNext() chose; a different pick while it
     *  is still queued is a preemption (FIFO never triggers this: its
     *  front job only changes by removal). */
    uint64_t lastPicked_ = 0;
    std::map<std::string, telemetry::Counter> servedShots_;
    telemetry::Counter preemptions_;
};

} // namespace eqasm::sched

#endif // EQASM_SCHED_JOB_SCHEDULER_H
