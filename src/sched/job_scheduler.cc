#include "sched/job_scheduler.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::sched {

const char *
policyName(Policy policy)
{
    switch (policy) {
      case Policy::fifo: return "fifo";
      case Policy::priority: return "priority";
      case Policy::fairShare: return "fair_share";
    }
    return "unknown";
}

std::optional<Policy>
parsePolicy(std::string_view name)
{
    if (name == "fifo")
        return Policy::fifo;
    if (name == "priority")
        return Policy::priority;
    if (name == "fair" || name == "fairshare" || name == "fair_share" ||
        name == "fair-share") {
        return Policy::fairShare;
    }
    return std::nullopt;
}

namespace {

/** Registry label value of a tenant ("" is the default bucket). */
const std::string &
tenantLabel(const std::string &tenant)
{
    static const std::string defaultTenant = "default";
    return tenant.empty() ? defaultTenant : tenant;
}

} // namespace

JobScheduler::JobScheduler(SchedulerConfig config)
    : config_(std::move(config))
{
    if (config_.quantumShots < 1)
        config_.quantumShots = 1;
    preemptions_ = telemetry::registry().counter(
        "eqasm_sched_preemptions_total",
        "Worker visits that switched away from a job still holding "
        "unclaimed shots");
}

const telemetry::Counter &
JobScheduler::servedCounter(const std::string &tenant)
{
    auto it = servedShots_.find(tenant);
    if (it == servedShots_.end()) {
        it = servedShots_
                 .emplace(tenant,
                          telemetry::registry().counter(
                              "eqasm_sched_tenant_served_shots_total",
                              "Shots claimed for execution, by tenant",
                              {{"tenant", tenantLabel(tenant)}}))
                 .first;
    }
    return it->second;
}

int
JobScheduler::weightOf(const std::string &tenant) const
{
    auto it = config_.tenantWeights.find(tenant);
    if (it == config_.tenantWeights.end())
        return 1;
    return std::max(1, it->second);
}

void
JobScheduler::enqueue(QueuedJob job)
{
    EQASM_ASSERT(job.id != 0, "scheduler job ids are nonzero");
    EQASM_ASSERT(!jobs_.count(job.id), "job id already queued");
    uint64_t id = job.id;
    std::string tenant = job.tenant;
    jobs_[id] = std::move(job);
    order_.push_back(id);
    if (config_.policy != Policy::fairShare)
        return;
    auto [it, inserted] = tenants_.try_emplace(tenant);
    TenantQueue &queue = it->second;
    if (inserted) {
        queue.deficitGauge = telemetry::registry().gauge(
            "eqasm_sched_tenant_deficit_shots",
            "Fair-share deficit (shots the tenant may claim before its "
            "next replenish), by tenant",
            {{"tenant", tenantLabel(tenant)}});
    }
    if (queue.jobs.empty()) {
        // First pending job of this tenant: (re)join the ring with a
        // fresh quantum so a newly active tenant serves immediately.
        queue.weight = weightOf(tenant);
        queue.deficitShots = static_cast<long long>(config_.quantumShots) *
                             queue.weight;
        queue.deficitGauge.add(queue.deficitShots);
        tenantRing_.push_back(tenant);
    }
    queue.jobs.push_back(id);
}

uint64_t
JobScheduler::pickFairShare()
{
    if (tenantRing_.empty())
        return 0;
    // Deficit round-robin: serve the front tenant while its deficit
    // lasts; an exhausted tenant is replenished by quantum * weight and
    // rotated to the back. Every iteration raises some tenant's deficit
    // by at least one shot, so the loop terminates with a positive
    // front deficit.
    for (;;) {
        const std::string &tenant = tenantRing_.front();
        TenantQueue &queue = tenants_.at(tenant);
        EQASM_ASSERT(!queue.jobs.empty(),
                     "idle tenants leave the fair-share ring");
        if (queue.deficitShots > 0)
            return queue.jobs.front();
        long long replenish =
            static_cast<long long>(config_.quantumShots) * queue.weight;
        queue.deficitShots += replenish;
        queue.deficitGauge.add(replenish);
        tenantRing_.push_back(tenant);
        tenantRing_.pop_front();
    }
}

uint64_t
JobScheduler::pickNext()
{
    uint64_t picked = pickNextByPolicy();
    // A pick that switches away from a job still holding unclaimed
    // shots preempts it (its next chunk goes to someone else). FIFO
    // never fires this — its front job only changes by removal.
    if (picked != 0 && lastPicked_ != 0 && picked != lastPicked_ &&
        jobs_.count(lastPicked_)) {
        preemptions_.inc();
    }
    lastPicked_ = picked;
    return picked;
}

uint64_t
JobScheduler::pickNextByPolicy()
{
    if (jobs_.empty())
        return 0;
    switch (config_.policy) {
      case Policy::fifo:
        return order_.front();
      case Policy::priority: {
        // Highest priority wins; ties break by earlier soft deadline
        // (0 = none, i.e. last), then admission order. Linear scan:
        // queues hold jobs, not shots, and stay short.
        const QueuedJob *best = nullptr;
        for (uint64_t id : order_) {
            const QueuedJob &entry = jobs_.at(id);
            if (!best) {
                best = &entry;
                continue;
            }
            if (entry.priority != best->priority) {
                if (entry.priority > best->priority)
                    best = &entry;
                continue;
            }
            uint64_t lhs = entry.deadlineUs == 0
                               ? UINT64_MAX
                               : entry.deadlineUs;
            uint64_t rhs = best->deadlineUs == 0
                               ? UINT64_MAX
                               : best->deadlineUs;
            if (lhs < rhs)
                best = &entry;
            // Equal deadline: admission order, i.e. keep best.
        }
        return best->id;
      }
      case Policy::fairShare:
        return pickFairShare();
    }
    return 0;
}

void
JobScheduler::charge(uint64_t id, int shots)
{
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return;
    // Served-shots accounting applies to every policy; the deficit is
    // fair-share bookkeeping only.
    servedCounter(it->second.tenant).add(static_cast<uint64_t>(shots));
    if (config_.policy != Policy::fairShare)
        return;
    TenantQueue &queue = tenants_.at(it->second.tenant);
    queue.deficitShots -= shots;
    queue.deficitGauge.add(-static_cast<int64_t>(shots));
}

void
JobScheduler::remove(uint64_t id)
{
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return;
    std::string tenant = it->second.tenant;
    jobs_.erase(it);
    order_.erase(std::find(order_.begin(), order_.end(), id));
    if (config_.policy != Policy::fairShare)
        return;
    TenantQueue &queue = tenants_.at(tenant);
    queue.jobs.erase(
        std::find(queue.jobs.begin(), queue.jobs.end(), id));
    if (queue.jobs.empty()) {
        // Leftover deficit is discarded: an idle tenant must not bank
        // credit against future arrivals.
        queue.deficitGauge.add(-queue.deficitShots);
        tenants_.erase(tenant);
        tenantRing_.erase(std::find(tenantRing_.begin(),
                                    tenantRing_.end(), tenant));
    }
}

} // namespace eqasm::sched
