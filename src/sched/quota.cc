#include "sched/quota.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::sched {

const TenantLimits &
QuotaConfig::limitsFor(const std::string &tenant) const
{
    auto it = tenants.find(tenant);
    return it != tenants.end() ? it->second : defaults;
}

namespace {

/** Parses one limits object, rejecting unknown keys so a typo in a
 *  quota file surfaces instead of silently meaning "unlimited". */
TenantLimits
limitsFromJson(const Json &json, const std::string &context)
{
    if (!json.isObject()) {
        throwError(ErrorCode::invalidArgument,
                   format("quota limits of %s must be a JSON object",
                          context.c_str()));
    }
    TenantLimits limits;
    for (const auto &[key, value] : json.asObject()) {
        double number;
        if (!value.isNumber()) {
            throwError(ErrorCode::invalidArgument,
                       format("quota field '%s' of %s must be a number",
                              key.c_str(), context.c_str()));
        }
        number = value.asDouble();
        if (number < 0) {
            throwError(ErrorCode::invalidArgument,
                       format("quota field '%s' of %s must be >= 0 "
                              "(0 = unlimited)",
                              key.c_str(), context.c_str()));
        }
        if (key == "max_active_jobs") {
            limits.maxActiveJobs = static_cast<int>(value.asInt());
        } else if (key == "max_active_shots") {
            limits.maxActiveShots = value.asInt();
        } else if (key == "submit_rate_per_sec") {
            limits.submitRatePerSec = number;
        } else if (key == "submit_burst") {
            limits.submitBurst = number;
        } else {
            throwError(ErrorCode::invalidArgument,
                       format("unknown quota field '%s' of %s (expected "
                              "max_active_jobs, max_active_shots, "
                              "submit_rate_per_sec or submit_burst)",
                              key.c_str(), context.c_str()));
        }
    }
    return limits;
}

Json
limitsToJson(const TenantLimits &limits)
{
    Json json = Json::makeObject();
    json.set("max_active_jobs", static_cast<int64_t>(limits.maxActiveJobs));
    json.set("max_active_shots", limits.maxActiveShots);
    json.set("submit_rate_per_sec", limits.submitRatePerSec);
    json.set("submit_burst", limits.submitBurst);
    return json;
}

} // namespace

QuotaConfig
QuotaConfig::fromJson(const Json &json)
{
    if (!json.isObject()) {
        throwError(ErrorCode::invalidArgument,
                   "a quota configuration must be a JSON object");
    }
    QuotaConfig config;
    for (const auto &[key, value] : json.asObject()) {
        if (key == "defaults") {
            config.defaults = limitsFromJson(value, "'defaults'");
        } else if (key == "tenants") {
            if (!value.isObject()) {
                throwError(ErrorCode::invalidArgument,
                           "quota field 'tenants' must be an object of "
                           "tenant -> limits");
            }
            for (const auto &[tenant, limits] : value.asObject()) {
                config.tenants[tenant] = limitsFromJson(
                    limits, format("tenant '%s'", tenant.c_str()));
            }
        } else {
            throwError(ErrorCode::invalidArgument,
                       format("unknown quota field '%s' (expected "
                              "'defaults' or 'tenants')",
                              key.c_str()));
        }
    }
    return config;
}

Json
QuotaConfig::toJson() const
{
    Json json = Json::makeObject();
    json.set("defaults", limitsToJson(defaults));
    Json byTenant = Json::makeObject();
    for (const auto &[tenant, limits] : tenants)
        byTenant.set(tenant, limitsToJson(limits));
    json.set("tenants", std::move(byTenant));
    return json;
}

QuotaManager::QuotaManager(QuotaConfig config)
    : config_(std::move(config))
{
}

const telemetry::Counter &
QuotaManager::rejectionCounter(const std::string &tenant,
                               const char *reason)
{
    auto key = std::make_pair(tenant, std::string(reason));
    auto it = rejections_.find(key);
    if (it == rejections_.end()) {
        it = rejections_
                 .emplace(std::move(key),
                          telemetry::registry().counter(
                              "eqasm_sched_quota_rejections_total",
                              "Submits refused by per-tenant quotas, "
                              "by tenant and violated limit",
                              {{"tenant", tenant}, {"reason", reason}}))
                 .first;
    }
    return it->second;
}

void
QuotaManager::admit(const std::string &tenant, int shots, uint64_t nowUs)
{
    std::lock_guard<std::mutex> guard(mutex_);
    const TenantLimits &limits = config_.limitsFor(tenant);
    TenantState &state = tenants_[tenant];
    const char *label = tenant.empty() ? "(default)" : tenant.c_str();

    if (limits.maxActiveJobs > 0 &&
        state.activeJobs >= limits.maxActiveJobs) {
        rejectionCounter(tenant, "active_jobs").inc();
        throwError(
            ErrorCode::quotaExceeded,
            format("tenant '%s' already has %d active jobs (limit %d)",
                   label, state.activeJobs, limits.maxActiveJobs));
    }
    if (limits.maxActiveShots > 0 &&
        state.activeShots + shots > limits.maxActiveShots) {
        rejectionCounter(tenant, "active_shots").inc();
        throwError(
            ErrorCode::quotaExceeded,
            format("tenant '%s' holds %lld active shots; %d more would "
                   "exceed the limit of %lld",
                   label, static_cast<long long>(state.activeShots),
                   shots,
                   static_cast<long long>(limits.maxActiveShots)));
    }
    if (limits.submitRatePerSec > 0.0) {
        double burst = limits.submitBurst > 0.0
                           ? limits.submitBurst
                           : std::max(1.0, limits.submitRatePerSec);
        if (!state.bucketPrimed) {
            // A fresh bucket starts full so the first burst passes.
            state.tokens = burst;
            state.lastRefillUs = nowUs;
            state.bucketPrimed = true;
        } else if (nowUs > state.lastRefillUs) {
            state.tokens = std::min(
                burst,
                state.tokens +
                    static_cast<double>(nowUs - state.lastRefillUs) *
                        1e-6 * limits.submitRatePerSec);
            state.lastRefillUs = nowUs;
        }
        if (state.tokens < 1.0) {
            rejectionCounter(tenant, "rate").inc();
            throwError(
                ErrorCode::quotaExceeded,
                format("tenant '%s' exceeded its submit rate limit of "
                       "%.3g/s (burst %.3g); retry later",
                       label, limits.submitRatePerSec, burst));
        }
        state.tokens -= 1.0;
    }
    ++state.activeJobs;
    state.activeShots += shots;
}

void
QuotaManager::track(const std::string &tenant, int shots)
{
    std::lock_guard<std::mutex> guard(mutex_);
    TenantState &state = tenants_[tenant];
    ++state.activeJobs;
    state.activeShots += shots;
}

void
QuotaManager::release(const std::string &tenant, int shots)
{
    std::lock_guard<std::mutex> guard(mutex_);
    TenantState &state = tenants_[tenant];
    state.activeJobs = std::max(0, state.activeJobs - 1);
    state.activeShots = std::max<int64_t>(0, state.activeShots - shots);
}

int
QuotaManager::activeJobs(const std::string &tenant) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = tenants_.find(tenant);
    return it != tenants_.end() ? it->second.activeJobs : 0;
}

int64_t
QuotaManager::activeShots(const std::string &tenant) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = tenants_.find(tenant);
    return it != tenants_.end() ? it->second.activeShots : 0;
}

} // namespace eqasm::sched
