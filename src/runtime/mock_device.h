/**
 * @file
 * Mock-result ADI device.
 *
 * Reproduces the paper's CFC validation setup: "The UHFQC is programmed
 * to generate alternative mock measurement results for qubit 0. The
 * alternation between X and Y operations is verified by detecting the
 * output digital signals using an oscilloscope." Here, programmed
 * result sequences replace the UHFQC and the applied-operation log
 * replaces the oscilloscope.
 */
#ifndef EQASM_RUNTIME_MOCK_DEVICE_H
#define EQASM_RUNTIME_MOCK_DEVICE_H

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "microarch/device.h"

namespace eqasm::runtime {

/** An operation pulse observed on the "oscilloscope". */
struct ObservedPulse {
    uint64_t cycle = 0;
    int qubit = -1;
    std::string operation;
};

/** ADI device replaying programmed measurement results. */
class MockResultDevice : public microarch::Device
{
  public:
    explicit MockResultDevice(int measurement_latency_cycles = 15);

    /** Programs the result sequence for @p qubit; consumed in order and
     *  NOT re-armed between shots (call again or use setDefault). */
    void programResults(int qubit, std::vector<int> bits);

    /** Result returned when a qubit's programmed sequence is empty. */
    void setDefaultResult(int bit) { defaultResult_ = bit; }

    void startShot(uint64_t cycle) override;
    void apply(const microarch::TriggeredOp &op) override;
    void endShot(uint64_t cycle) override;

    /** All pulses observed since construction (across shots). */
    const std::vector<ObservedPulse> &pulses() const { return pulses_; }

    /** Pulses of the current/last shot only. */
    const std::vector<ObservedPulse> &shotPulses() const
    {
        return shotPulses_;
    }

  private:
    int measurementLatencyCycles_;
    int defaultResult_ = 0;
    std::map<int, std::deque<int>> programmed_;
    std::vector<ObservedPulse> pulses_;
    std::vector<ObservedPulse> shotPulses_;
};

} // namespace eqasm::runtime

#endif // EQASM_RUNTIME_MOCK_DEVICE_H
