/**
 * @file
 * Experiment analysis helpers: readout correction, exponential-decay
 * fitting for randomized benchmarking, and summary statistics.
 */
#ifndef EQASM_RUNTIME_ANALYSIS_H
#define EQASM_RUNTIME_ANALYSIS_H

#include <vector>

namespace eqasm::runtime {

/**
 * Corrects a raw |1>-fraction for symmetric readout assignment error:
 * given P(report 1 | state 0) = eps0 and P(report 0 | state 1) = eps1,
 * inverts the 2x2 assignment matrix. The result is clamped to [0, 1].
 */
double readoutCorrect(double raw_fraction_one, double eps0, double eps1);

/** Result of fitting p(k) = A * p^k + B. */
struct DecayFit {
    double amplitude = 0.0;  ///< A
    double decay = 1.0;      ///< p
    double floor = 0.0;      ///< B
    double residual = 0.0;   ///< sum of squared errors.
};

/**
 * Least-squares fit of an exponential decay through (k, y) samples.
 * The decay parameter is grid-searched and refined; A and B are solved
 * linearly for each candidate p. Used to extract the Clifford fidelity
 * from RB survival curves (Fig. 12).
 */
DecayFit fitExponentialDecay(const std::vector<double> &ks,
                             const std::vector<double> &ys);

/**
 * Average error rate per primitive gate from the RB decay parameter:
 * F_Cl = (1 + p) / 2 for a single qubit, and per the paper each
 * Clifford costs 1.875 primitive gates on average, so
 * eps = 1 - F_Cl^(1/1.875).
 */
double rbErrorPerGate(double decay, double gates_per_clifford = 1.875);

/** Sample mean. */
double mean(const std::vector<double> &values);

/** Unbiased sample standard deviation (0 for fewer than 2 samples). */
double standardDeviation(const std::vector<double> &values);

} // namespace eqasm::runtime

#endif // EQASM_RUNTIME_ANALYSIS_H
