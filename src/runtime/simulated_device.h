/**
 * @file
 * Simulated superconducting quantum device behind the ADI.
 *
 * Stands in for the paper's transmon chip + HDAWG/VSM/UHFQC electronics
 * (Section 4.4): codeword-triggered operations arriving from the
 * central controller are applied to a density-matrix simulation with a
 * calibrated noise model. The substitution preserves the architectural
 * behaviour the paper evaluates — gate timing enters through idle
 * decoherence, readout takes a configurable latency before the result
 * travels back, and the reported bit carries readout assignment error.
 */
#ifndef EQASM_RUNTIME_SIMULATED_DEVICE_H
#define EQASM_RUNTIME_SIMULATED_DEVICE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chip/topology.h"
#include "common/rng.h"
#include "microarch/device.h"
#include "qsim/density_matrix.h"
#include "qsim/noise.h"
#include "qsim/state_backend.h"

namespace eqasm::runtime {

/** Physical configuration of the simulated device. */
struct DeviceConfig {
    qsim::NoiseModel noise;
    double cycleNs = 20.0;             ///< controller cycle time.
    int measurementLatencyCycles = 15; ///< pulse start -> result arrival.
    bool throwOnOverlap = true;        ///< gate applied to a busy qubit.

    /** State representation behind the ADI. The density matrix is the
     *  exact-physics default; the stabilizer tableau opens d >= 3
     *  surface-code chips (Clifford circuits only). Engine replicas
     *  are built from this config, so every worker clones the same
     *  backend choice. */
    qsim::BackendKind backend = qsim::BackendKind::density;
};

/** A gate application recorded for inspection by tests. */
struct AppliedGate {
    uint64_t cycle = 0;
    std::string operation;
    std::vector<int> qubits;
};

/** ADI device backed by a pluggable qsim::StateBackend. */
class SimulatedDevice : public microarch::Device
{
  public:
    /**
     * @throws Error{configError} when the topology is larger than the
     *         configured backend can represent (the message names the
     *         qubit count and the backend).
     */
    SimulatedDevice(chip::Topology topology, DeviceConfig config,
                    uint64_t seed = 1);

    void startShot(uint64_t cycle) override;
    void apply(const microarch::TriggeredOp &op) override;
    void endShot(uint64_t cycle) override;

    /**
     * Positions the device at @p shotIndex: the next startShot() draws
     * from the counter-based stream Rng::forShot(seed(), shotIndex).
     * Replicas in a worker pool use this to execute arbitrary slices of
     * a batch with results bitwise-identical to a serial run.
     */
    void seekShot(uint64_t shotIndex) { nextShotIndex_ = shotIndex; }

    /** Replaces the seed and rewinds to shot 0 (loading a new job). */
    void reseed(uint64_t seed);

    uint64_t seed() const { return seed_; }
    uint64_t nextShotIndex() const { return nextShotIndex_; }

    /** The current quantum state backend (after idle-noise catch-up to
     *  the last operation; tests may inspect it mid-shot). */
    const qsim::StateBackend &backend() const { return *state_; }
    qsim::StateBackend &backend() { return *state_; }

    /** The density matrix of the current state.
     *  @throws Error{configError} when the device runs a non-density
     *          backend (use backend() there). */
    const qsim::DensityMatrix &state() const;
    qsim::DensityMatrix &state();

    const std::vector<AppliedGate> &appliedGates() const
    {
        return appliedGates_;
    }

    /** Number of overlapping-gate violations observed (counted when
     *  throwOnOverlap is false). */
    uint64_t overlapViolations() const { return overlapViolations_; }

    const DeviceConfig &config() const { return config_; }

  private:
    void advanceIdle(int qubit, uint64_t cycle);
    void checkBusy(int qubit, uint64_t cycle, const std::string &op);
    const qsim::Gate &gateFor(const std::string &unitary);

    chip::Topology topology_;
    DeviceConfig config_;
    uint64_t seed_;
    uint64_t nextShotIndex_ = 0;
    Rng shotRng_;
    std::unique_ptr<qsim::StateBackend> state_;
    /** Qubits already driven this shot. Until its first operation a
     *  qubit sits exactly in the reset state |0>, where idle T1/T2
     *  channels act trivially, so idle noise is skipped: a no-op for
     *  the density backend and the correct behaviour for the
     *  stabilizer twirl (whose state-independent Pauli flips would
     *  otherwise scramble |0> over the 200 us initialisation wait). */
    std::vector<uint8_t> touched_;
    std::vector<double> lastUpdateNs_;
    std::vector<uint64_t> busyUntilCycle_;
    std::map<std::string, qsim::Gate> gateCache_;
    std::vector<AppliedGate> appliedGates_;
    uint64_t overlapViolations_ = 0;
};

} // namespace eqasm::runtime

#endif // EQASM_RUNTIME_SIMULATED_DEVICE_H
