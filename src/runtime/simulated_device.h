/**
 * @file
 * Simulated superconducting quantum device behind the ADI.
 *
 * Stands in for the paper's transmon chip + HDAWG/VSM/UHFQC electronics
 * (Section 4.4): codeword-triggered operations arriving from the
 * central controller are applied to a density-matrix simulation with a
 * calibrated noise model. The substitution preserves the architectural
 * behaviour the paper evaluates — gate timing enters through idle
 * decoherence, readout takes a configurable latency before the result
 * travels back, and the reported bit carries readout assignment error.
 */
#ifndef EQASM_RUNTIME_SIMULATED_DEVICE_H
#define EQASM_RUNTIME_SIMULATED_DEVICE_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chip/topology.h"
#include "common/rng.h"
#include "isa/operation_set.h"
#include "microarch/device.h"
#include "qsim/density_matrix.h"
#include "qsim/noise.h"
#include "qsim/state_backend.h"

namespace eqasm::runtime {

/** Physical configuration of the simulated device. */
struct DeviceConfig {
    qsim::NoiseModel noise;
    double cycleNs = 20.0;             ///< controller cycle time.
    int measurementLatencyCycles = 15; ///< pulse start -> result arrival.
    bool throwOnOverlap = true;        ///< gate applied to a busy qubit.

    /** State representation behind the ADI. The density matrix is the
     *  exact-physics default; the stabilizer tableau opens d >= 3
     *  surface-code chips (Clifford circuits only). Engine replicas
     *  are built from this config, so every worker clones the same
     *  backend choice. */
    qsim::BackendKind backend = qsim::BackendKind::density;

    /** Record the AppliedGate log (one entry per triggered operation,
     *  for tests and single-run inspection). The shot engine turns this
     *  off for batch replicas: results come from the measurement path,
     *  and a per-gate log would be reallocated millions of times per
     *  batch without a reader. */
    bool recordTrace = true;

    /** Memoize noise-channel Kraus sets in the density backend (see
     *  qsim::NoiseChannelCache; bit-identical either way — off is only
     *  useful for benchmarking the cache and testing the identity). */
    bool channelCache = true;

    /** Route density-backend Kraus channels through the textbook
     *  scratch-matrix kernels instead of the fused single-pass ones
     *  (see qsim::DensityMatrix::setReferenceKernels). Equal results;
     *  exists as the fast path's oracle and the bench's before/after
     *  baseline. */
    bool referenceKernels = false;
};

/**
 * Gates pre-resolved from an operation set, indexed by
 * isa::OperationInfo::id. Immutable after construction, so one table
 * (wrapped in a shared_ptr) serves every worker replica of an engine
 * pool concurrently — the hot apply() path is an array index instead
 * of a string-keyed map lookup, and the replicas stop holding N
 * private copies of the same resolved gates.
 *
 * Operations whose semantics string is not a unitary in the gate
 * language (QNOP's identity marker, "measz") or not resolvable at all
 * stay unresolved here; the device falls back to string-keyed
 * resolution for those and raises its usual configError if a program
 * actually triggers an unresolvable unitary.
 */
class ResolvedGateTable
{
  public:
    explicit ResolvedGateTable(const isa::OperationSet &operations);

    /** @return the gate for operation @p id, or nullptr. */
    const qsim::Gate *find(int id) const
    {
        if (id < 0 || static_cast<size_t>(id) >= gates_.size() ||
            !gates_[static_cast<size_t>(id)]) {
            return nullptr;
        }
        return &*gates_[static_cast<size_t>(id)];
    }

    /** Approximate heap footprint (bench reporting). */
    size_t memoryBytes() const;

  private:
    std::vector<std::optional<qsim::Gate>> gates_;
};

/** A gate application recorded for inspection by tests. */
struct AppliedGate {
    uint64_t cycle = 0;
    std::string operation;
    std::vector<int> qubits;
};

/** ADI device backed by a pluggable qsim::StateBackend. */
class SimulatedDevice : public microarch::Device
{
  public:
    /**
     * @throws Error{configError} when the topology is larger than the
     *         configured backend can represent (the message names the
     *         qubit count and the backend).
     */
    SimulatedDevice(chip::Topology topology, DeviceConfig config,
                    uint64_t seed = 1);

    void startShot(uint64_t cycle) override;
    void apply(const microarch::TriggeredOp &op) override;
    void endShot(uint64_t cycle) override;

    /**
     * Positions the device at @p shotIndex: the next startShot() draws
     * from the counter-based stream Rng::forShot(seed(), shotIndex).
     * Replicas in a worker pool use this to execute arbitrary slices of
     * a batch with results bitwise-identical to a serial run.
     */
    void seekShot(uint64_t shotIndex) { nextShotIndex_ = shotIndex; }

    /** Replaces the seed and rewinds to shot 0 (loading a new job). */
    void reseed(uint64_t seed);

    uint64_t seed() const { return seed_; }
    uint64_t nextShotIndex() const { return nextShotIndex_; }

    /** The current quantum state backend (after idle-noise catch-up to
     *  the last operation; tests may inspect it mid-shot). */
    const qsim::StateBackend &backend() const { return *state_; }
    qsim::StateBackend &backend() { return *state_; }

    /** The density matrix of the current state.
     *  @throws Error{configError} when the device runs a non-density
     *          backend (use backend() there). */
    const qsim::DensityMatrix &state() const;
    qsim::DensityMatrix &state();

    /**
     * Shares a pre-resolved gate table (typically one table across all
     * replicas of an engine pool). Operations resolve by
     * OperationInfo::id through the table first; anything the table
     * does not cover falls back to the device's private caches.
     */
    void shareGateTable(std::shared_ptr<const ResolvedGateTable> table)
    {
        sharedGates_ = std::move(table);
    }

    const std::vector<AppliedGate> &appliedGates() const
    {
        return appliedGates_;
    }

    /** Number of overlapping-gate violations observed (counted when
     *  throwOnOverlap is false). */
    uint64_t overlapViolations() const { return overlapViolations_; }

    /** The density backend's noise-channel cache, or nullptr (stabilizer
     *  backend, or channelCache disabled). Lets the shot engine fold
     *  each replica's hit/miss tallies into the telemetry registry at
     *  chunk boundaries. */
    qsim::NoiseChannelCache *channelCache();

    const DeviceConfig &config() const { return config_; }

  private:
    void advanceIdle(int qubit, uint64_t cycle);
    void checkBusy(int qubit, uint64_t cycle, const std::string &op);
    const qsim::Gate &gateFor(const isa::OperationInfo &info);
    const qsim::Gate &gateByUnitary(const std::string &unitary);
    /** state() body shared by the const and non-const overloads; never
     *  mutates, so the const path is honestly const. */
    const qsim::DensityMatrix &densityState() const;

    chip::Topology topology_;
    DeviceConfig config_;
    uint64_t seed_;
    uint64_t nextShotIndex_ = 0;
    Rng shotRng_;
    std::unique_ptr<qsim::StateBackend> state_;
    /** Qubits already driven this shot. Until its first operation a
     *  qubit sits exactly in the reset state |0>, where idle T1/T2
     *  channels act trivially, so idle noise is skipped: a no-op for
     *  the density backend and the correct behaviour for the
     *  stabilizer twirl (whose state-independent Pauli flips would
     *  otherwise scramble |0> over the 200 us initialisation wait). */
    std::vector<uint8_t> touched_;
    std::vector<double> lastUpdateNs_;
    std::vector<uint64_t> busyUntilCycle_;
    /** Read-only table shared across replicas (may be null). */
    std::shared_ptr<const ResolvedGateTable> sharedGates_;
    /** Private id-indexed cache for operations the shared table does
     *  not cover: resolved once on first trigger, array-indexed after. */
    std::vector<std::optional<qsim::Gate>> localGates_;
    /** Last-resort cache for OperationInfo objects never registered
     *  with an OperationSet (id == -1). */
    std::map<std::string, qsim::Gate> gateCache_;
    std::vector<AppliedGate> appliedGates_;
    uint64_t overlapViolations_ = 0;
};

} // namespace eqasm::runtime

#endif // EQASM_RUNTIME_SIMULATED_DEVICE_H
