#include "runtime/mock_device.h"

namespace eqasm::runtime {

MockResultDevice::MockResultDevice(int measurement_latency_cycles)
    : measurementLatencyCycles_(measurement_latency_cycles)
{
}

void
MockResultDevice::programResults(int qubit, std::vector<int> bits)
{
    auto &queue = programmed_[qubit];
    for (int bit : bits)
        queue.push_back(bit);
}

void
MockResultDevice::startShot(uint64_t cycle)
{
    (void)cycle;
    shotPulses_.clear();
}

void
MockResultDevice::endShot(uint64_t cycle)
{
    (void)cycle;
}

void
MockResultDevice::apply(const microarch::TriggeredOp &op)
{
    // Two-qubit target-role micro-ops belong to the pulse already
    // recorded for the source role.
    if (op.role == microarch::MicroOpRole::target)
        return;
    ObservedPulse pulse{op.cycle, op.qubit, op.info->name};
    pulses_.push_back(pulse);
    shotPulses_.push_back(pulse);

    if (op.info->opClass == isa::OpClass::measurement) {
        int bit = defaultResult_;
        auto it = programmed_.find(op.qubit);
        if (it != programmed_.end() && !it->second.empty()) {
            bit = it->second.front();
            it->second.pop_front();
        }
        reportResult(op.qubit, bit,
                     op.cycle + static_cast<uint64_t>(
                                    measurementLatencyCycles_));
    }
}

} // namespace eqasm::runtime
