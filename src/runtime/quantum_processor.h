/**
 * @file
 * QuantumProcessor — the top-level public API of the library.
 *
 * Owns a QuMA_v2 controller and a simulated device, assembles eQASM
 * source against the platform configuration, and runs shots. This is
 * the object the examples and experiment harnesses drive; it mirrors
 * the paper's execution model: "After the host CPU has loaded the
 * quantum code, microcode, and pulses into the quantum processor, the
 * quantum code can be directly executed."
 */
#ifndef EQASM_RUNTIME_QUANTUM_PROCESSOR_H
#define EQASM_RUNTIME_QUANTUM_PROCESSOR_H

#include <memory>
#include <string>
#include <vector>

#include "assembler/assembler.h"
#include "engine/batch_result.h"
#include "engine/shot_engine.h"
#include "microarch/quma.h"
#include "runtime/platform.h"
#include "runtime/simulated_device.h"
#include "sched/job_handle.h"

namespace eqasm::runtime {

/** One measurement result observed during a shot. */
struct MeasurementRecord {
    uint64_t cycle = 0;  ///< cycle the result entered the controller.
    int qubit = -1;
    int bit = 0;
};

/** Everything observed during one shot. */
struct ShotRecord {
    std::vector<MeasurementRecord> measurements;  ///< in arrival order.
    microarch::RunStats stats;

    /** @return the last measurement of @p qubit, or -1 if none. */
    int lastMeasurement(int qubit) const;
};

/** The executable quantum processor (controller + device). */
class QuantumProcessor
{
  public:
    explicit QuantumProcessor(Platform platform, uint64_t seed = 1);
    ~QuantumProcessor();

    /**
     * Assembles and loads eQASM source. The program is encoded to the
     * 32-bit binary image and decoded back through the instruction
     * decoder — shots execute from the binary, exercising the entire
     * ISA round trip.
     * @throws assembler::AssemblyError on bad source.
     */
    void loadSource(const std::string &source);

    /** Loads an already-assembled binary image. */
    void loadImage(std::vector<uint32_t> image);

    /** Runs a single shot. */
    ShotRecord runShot();

    /** Runs @p shots shots and collects all records. */
    std::vector<ShotRecord> run(int shots);

    /**
     * Runs @p shots shots on a worker pool of controller + device
     * replicas (see engine::ShotEngine) and aggregates them into a
     * BatchResult. Shot k of the batch draws from the same
     * counter-based stream as shot k of a serial run() on a freshly
     * constructed processor, and aggregation is commutative, so the
     * result is bitwise-identical for every thread count.
     *
     * The pool is created on first use and kept for the processor's
     * lifetime; it is rebuilt only when @p threads names a different
     * non-zero size than the current pool.
     * @param threads worker threads; 0 selects hardware concurrency.
     * @param shard run only slice shard.index of shard.count of the
     *        batch (see engine::ShardSpec) — the shot sub-range keeps
     *        its absolute indices so k sharded processes merge
     *        (engine::BatchResult::merge) to the same counts as one
     *        unsharded run. Default: the whole range.
     */
    engine::BatchResult runBatch(int shots, int threads = 0,
                                 engine::ShardSpec shard = {});

    /**
     * Replaces the engine configuration (worker count, chunk size,
     * scheduling policy, fair-share weights). The pool is rebuilt on
     * next use, so queued work should be drained first.
     */
    void setEngineConfig(engine::EngineConfig config);

    /**
     * Submits a batch job to the scheduler without blocking. A job with
     * an empty image executes the loaded program; its seed, label,
     * tenant, priority and streaming callback are honoured as set (see
     * engine::Job). @p threads rebuilds the pool like runBatch.
     * @return the handle (wait / cancel / progress / onPartial).
     */
    sched::JobHandle submitBatch(engine::Job job, int threads = 0);

    /**
     * Convenience: fraction of shots whose *last* measurement of
     * @p qubit reported |1>. Shots that never measure the qubit are an
     * error.
     */
    double fractionOne(const std::vector<ShotRecord> &records,
                       int qubit) const;

    microarch::QuMa &controller() { return controller_; }
    const microarch::QuMa &controller() const { return controller_; }
    SimulatedDevice &device() { return *device_; }
    const SimulatedDevice &device() const { return *device_; }
    const Platform &platform() const { return platform_; }
    const assembler::Program &program() const { return program_; }
    uint64_t seed() const { return seed_; }

  private:
    engine::ShotEngine &ensureEngine(int threads);

    Platform platform_;
    uint64_t seed_;
    assembler::Assembler assembler_;
    microarch::QuMa controller_;
    std::unique_ptr<SimulatedDevice> device_;
    engine::EngineConfig engineConfig_;
    std::unique_ptr<engine::ShotEngine> engine_;  ///< lazy, see runBatch.
    assembler::Program program_;
};

/**
 * Builds the ShotRecord of the shot that @p controller just ran: the
 * result-arrival events of its trace plus @p stats. Shared by
 * QuantumProcessor::runShot and the engine's worker replicas.
 */
ShotRecord recordShot(const microarch::QuMa &controller,
                      microarch::RunStats stats);

} // namespace eqasm::runtime

#endif // EQASM_RUNTIME_QUANTUM_PROCESSOR_H
