#include "runtime/quantum_processor.h"

#include "common/error.h"
#include "common/strings.h"
#include "engine/shot_engine.h"

namespace eqasm::runtime {

int
ShotRecord::lastMeasurement(int qubit) const
{
    int last = -1;
    for (const MeasurementRecord &record : measurements) {
        if (record.qubit == qubit)
            last = record.bit;
    }
    return last;
}

QuantumProcessor::QuantumProcessor(Platform platform, uint64_t seed)
    : platform_(platform), seed_(seed),
      assembler_(platform.operations, platform.topology, platform.params),
      controller_(platform.operations, platform.topology, platform.uarch),
      device_(std::make_unique<SimulatedDevice>(platform.topology,
                                                platform.device, seed))
{
    controller_.attachDevice(device_.get());
}

QuantumProcessor::~QuantumProcessor() = default;

void
QuantumProcessor::loadSource(const std::string &source)
{
    program_ = assembler_.assemble(source);
    controller_.loadImage(program_.image);
}

void
QuantumProcessor::loadImage(std::vector<uint32_t> image)
{
    program_ = assembler::Program{};
    program_.image = image;
    controller_.loadImage(std::move(image));
}

ShotRecord
recordShot(const microarch::QuMa &controller, microarch::RunStats stats)
{
    ShotRecord record;
    record.stats = stats;
    // The controller's measurement log is recorded independently of the
    // (switchable) TraceEvent log, so batch replicas running with the
    // trace disabled still produce full results.
    record.measurements.reserve(controller.measurements().size());
    for (const microarch::MeasurementEvent &event :
         controller.measurements()) {
        record.measurements.push_back(
            {event.cycle, event.qubit, event.bit});
    }
    return record;
}

ShotRecord
QuantumProcessor::runShot()
{
    return recordShot(controller_, controller_.runShot());
}

std::vector<ShotRecord>
QuantumProcessor::run(int shots)
{
    std::vector<ShotRecord> records;
    records.reserve(static_cast<size_t>(shots));
    for (int shot = 0; shot < shots; ++shot)
        records.push_back(runShot());
    return records;
}

engine::ShotEngine &
QuantumProcessor::ensureEngine(int threads)
{
    if (engine_ && threads > 0 && engine_->threads() != threads)
        engine_.reset();
    if (!engine_) {
        if (threads > 0)
            engineConfig_.threads = threads;
        engine_ = std::make_unique<engine::ShotEngine>(platform_,
                                                       engineConfig_);
    }
    return *engine_;
}

void
QuantumProcessor::setEngineConfig(engine::EngineConfig config)
{
    engineConfig_ = std::move(config);
    engine_.reset();
}

sched::JobHandle
QuantumProcessor::submitBatch(engine::Job job, int threads)
{
    if (job.image.empty())
        job.image = program_.image;
    return ensureEngine(threads).submit(std::move(job));
}

engine::BatchResult
QuantumProcessor::runBatch(int shots, int threads,
                           engine::ShardSpec shard)
{
    engine::Job job;
    job.image = program_.image;
    job.shots = shots;
    job.seed = seed_;
    job.shard = shard;
    return ensureEngine(threads).run(std::move(job));
}

double
QuantumProcessor::fractionOne(const std::vector<ShotRecord> &records,
                              int qubit) const
{
    if (records.empty()) {
        throwError(ErrorCode::invalidArgument,
                   "fractionOne needs at least one shot");
    }
    int ones = 0;
    for (const ShotRecord &record : records) {
        int bit = record.lastMeasurement(qubit);
        if (bit < 0) {
            throwError(ErrorCode::invalidArgument,
                       format("a shot never measured qubit %d", qubit));
        }
        ones += bit;
    }
    return static_cast<double>(ones) /
           static_cast<double>(records.size());
}

} // namespace eqasm::runtime
