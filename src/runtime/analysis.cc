#include "runtime/analysis.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace eqasm::runtime {

double
readoutCorrect(double raw_fraction_one, double eps0, double eps1)
{
    double denominator = 1.0 - eps0 - eps1;
    EQASM_ASSERT(denominator > 1e-9,
                 "readout errors too large to invert the assignment");
    double corrected = (raw_fraction_one - eps0) / denominator;
    return std::clamp(corrected, 0.0, 1.0);
}

namespace {

/** Solves A, B for fixed p by linear least squares; returns the SSE. */
double
solveLinear(const std::vector<double> &ks, const std::vector<double> &ys,
            double p, double &amplitude, double &floor_value)
{
    // Basis functions f1 = p^k, f2 = 1.
    double s11 = 0.0, s12 = 0.0, s22 = 0.0, sy1 = 0.0, sy2 = 0.0;
    size_t n = ks.size();
    for (size_t i = 0; i < n; ++i) {
        double f1 = std::pow(p, ks[i]);
        s11 += f1 * f1;
        s12 += f1;
        s22 += 1.0;
        sy1 += f1 * ys[i];
        sy2 += ys[i];
    }
    double det = s11 * s22 - s12 * s12;
    if (std::fabs(det) < 1e-15) {
        amplitude = 0.0;
        floor_value = sy2 / s22;
    } else {
        amplitude = (sy1 * s22 - sy2 * s12) / det;
        floor_value = (s11 * sy2 - s12 * sy1) / det;
    }
    double sse = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double model = amplitude * std::pow(p, ks[i]) + floor_value;
        sse += (ys[i] - model) * (ys[i] - model);
    }
    return sse;
}

} // namespace

DecayFit
fitExponentialDecay(const std::vector<double> &ks,
                    const std::vector<double> &ys)
{
    if (ks.size() != ys.size() || ks.size() < 3) {
        throwError(ErrorCode::invalidArgument,
                   "decay fit needs at least 3 (k, y) samples");
    }
    DecayFit best;
    best.residual = std::numeric_limits<double>::infinity();

    double lo = 0.0, hi = 1.0;
    // Three rounds of grid refinement reach ~1e-6 resolution in p.
    for (int round = 0; round < 3; ++round) {
        const int steps = 200;
        double best_p = best.decay;
        for (int i = 0; i <= steps; ++i) {
            double p = lo + (hi - lo) * static_cast<double>(i) / steps;
            double amplitude, floor_value;
            double sse = solveLinear(ks, ys, p, amplitude, floor_value);
            if (sse < best.residual) {
                best = {amplitude, p, floor_value, sse};
                best_p = p;
            }
        }
        double width = (hi - lo) / steps;
        lo = std::max(0.0, best_p - 2.0 * width);
        hi = std::min(1.0, best_p + 2.0 * width);
    }
    return best;
}

double
rbErrorPerGate(double decay, double gates_per_clifford)
{
    double clifford_fidelity = (1.0 + decay) / 2.0;
    return 1.0 - std::pow(clifford_fidelity, 1.0 / gates_per_clifford);
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double value : values)
        sum += value;
    return sum / static_cast<double>(values.size());
}

double
standardDeviation(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    double m = mean(values);
    double sum = 0.0;
    for (double value : values)
        sum += (value - m) * (value - m);
    return std::sqrt(sum / static_cast<double>(values.size() - 1));
}

} // namespace eqasm::runtime
