#include "runtime/simulated_device.h"

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::runtime {

using microarch::MicroOpRole;
using microarch::TriggeredOp;

ResolvedGateTable::ResolvedGateTable(const isa::OperationSet &operations)
{
    gates_.resize(operations.size());
    for (const isa::OperationInfo &info : operations.operations()) {
        if (info.opClass != isa::OpClass::singleQubit &&
            info.opClass != isa::OpClass::twoQubit) {
            continue;
        }
        if (info.id < 0 ||
            static_cast<size_t>(info.id) >= gates_.size()) {
            continue;
        }
        if (auto gate = qsim::makeGate(info.unitary))
            gates_[static_cast<size_t>(info.id)] = std::move(*gate);
    }
}

size_t
ResolvedGateTable::memoryBytes() const
{
    size_t bytes = gates_.capacity() * sizeof(gates_[0]);
    for (const auto &gate : gates_) {
        if (gate) {
            bytes += gate->name.capacity() +
                     gate->matrix.data().capacity() *
                         sizeof(qsim::Complex);
        }
    }
    return bytes;
}

SimulatedDevice::SimulatedDevice(chip::Topology topology,
                                 DeviceConfig config, uint64_t seed)
    : topology_(std::move(topology)), config_(config), seed_(seed),
      shotRng_(seed),
      state_(qsim::makeBackend(config.backend, topology_.numQubits()))
{
    touched_.assign(static_cast<size_t>(topology_.numQubits()), 0);
    lastUpdateNs_.assign(static_cast<size_t>(topology_.numQubits()), 0.0);
    busyUntilCycle_.assign(static_cast<size_t>(topology_.numQubits()), 0);
    if (auto *density =
            dynamic_cast<qsim::DensityMatrix *>(state_.get())) {
        density->setChannelCacheEnabled(config_.channelCache);
        density->setReferenceKernels(config_.referenceKernels);
    }
}

const qsim::DensityMatrix &
SimulatedDevice::densityState() const
{
    const auto *density =
        dynamic_cast<const qsim::DensityMatrix *>(state_.get());
    if (density == nullptr) {
        throwError(ErrorCode::configError,
                   format("state() needs the density backend; this "
                          "device runs the %.*s backend — inspect it "
                          "through backend() instead",
                          static_cast<int>(
                              qsim::backendKindName(config_.backend)
                                  .size()),
                          qsim::backendKindName(config_.backend)
                              .data()));
    }
    return *density;
}

const qsim::DensityMatrix &
SimulatedDevice::state() const
{
    return densityState();
}

qsim::DensityMatrix &
SimulatedDevice::state()
{
    // densityState never mutates; casting the constness back off is
    // sound because *this is non-const here.
    return const_cast<qsim::DensityMatrix &>(densityState());
}

qsim::NoiseChannelCache *
SimulatedDevice::channelCache()
{
    auto *density = dynamic_cast<qsim::DensityMatrix *>(state_.get());
    return density != nullptr ? density->channelCache() : nullptr;
}

void
SimulatedDevice::startShot(uint64_t cycle)
{
    state_->reset();
    std::fill(touched_.begin(), touched_.end(), 0);
    double now_ns = static_cast<double>(cycle) * config_.cycleNs;
    std::fill(lastUpdateNs_.begin(), lastUpdateNs_.end(), now_ns);
    std::fill(busyUntilCycle_.begin(), busyUntilCycle_.end(), cycle);
    appliedGates_.clear();
    // Each shot owns the counter-based stream for its index, so a shot
    // is reproducible without replaying the ones before it.
    shotRng_ = Rng::forShot(seed_, nextShotIndex_);
    ++nextShotIndex_;
}

void
SimulatedDevice::reseed(uint64_t seed)
{
    seed_ = seed;
    nextShotIndex_ = 0;
}

void
SimulatedDevice::endShot(uint64_t cycle)
{
    (void)cycle;
}

const qsim::Gate &
SimulatedDevice::gateFor(const isa::OperationInfo &info)
{
    // Hot path: one bounds check + array index into the table shared
    // by every replica of the pool.
    if (sharedGates_ != nullptr) {
        if (const qsim::Gate *gate = sharedGates_->find(info.id))
            return *gate;
    }
    // Operation registered with a set but absent from (or not given) a
    // shared table: resolve once into the id-indexed private cache.
    if (info.id >= 0) {
        size_t id = static_cast<size_t>(info.id);
        if (id >= localGates_.size())
            localGates_.resize(id + 1);
        if (!localGates_[id]) {
            auto gate = qsim::makeGate(info.unitary);
            if (!gate) {
                throwError(ErrorCode::configError,
                           format("operation unitary '%s' is not in "
                                  "the gate language",
                                  info.unitary.c_str()));
            }
            localGates_[id] = std::move(*gate);
        }
        return *localGates_[id];
    }
    return gateByUnitary(info.unitary);
}

const qsim::Gate &
SimulatedDevice::gateByUnitary(const std::string &unitary)
{
    auto it = gateCache_.find(unitary);
    if (it != gateCache_.end())
        return it->second;
    auto gate = qsim::makeGate(unitary);
    if (!gate) {
        throwError(ErrorCode::configError,
                   format("operation unitary '%s' is not in the gate "
                          "language",
                          unitary.c_str()));
    }
    return gateCache_.emplace(unitary, std::move(*gate)).first->second;
}

void
SimulatedDevice::advanceIdle(int qubit, uint64_t cycle)
{
    double now_ns = static_cast<double>(cycle) * config_.cycleNs;
    size_t q = static_cast<size_t>(qubit);
    double idle_ns = now_ns - lastUpdateNs_[q];
    if (idle_ns > 0.0 && touched_[q])
        state_->applyIdleNoise(qubit, idle_ns, config_.noise, shotRng_);
    touched_[q] = 1;
    lastUpdateNs_[q] = now_ns;
}

void
SimulatedDevice::checkBusy(int qubit, uint64_t cycle,
                           const std::string &op)
{
    size_t q = static_cast<size_t>(qubit);
    if (cycle < busyUntilCycle_[q]) {
        ++overlapViolations_;
        if (config_.throwOnOverlap) {
            throwError(ErrorCode::runtimeError,
                       format("operation '%s' hits busy qubit %d at "
                              "cycle %llu (busy until %llu)",
                              op.c_str(), qubit,
                              static_cast<unsigned long long>(cycle),
                              static_cast<unsigned long long>(
                                  busyUntilCycle_[q])));
        }
    }
}

void
SimulatedDevice::apply(const TriggeredOp &op)
{
    EQASM_ASSERT(op.info != nullptr, "triggered op without operation info");
    const isa::OperationInfo &info = *op.info;
    auto duration = static_cast<uint64_t>(info.durationCycles);

    switch (info.opClass) {
      case isa::OpClass::qnop:
        return;
      case isa::OpClass::singleQubit: {
        checkBusy(op.qubit, op.cycle, info.name);
        advanceIdle(op.qubit, op.cycle);
        const qsim::Gate &gate = gateFor(info);
        if (gate.numQubits != 1) {
            throwError(ErrorCode::configError,
                       format("operation '%s' is single-qubit but its "
                              "unitary '%s' is not",
                              info.name.c_str(), info.unitary.c_str()));
        }
        state_->applyGate1(gate, op.qubit);
        state_->applyGateNoise1(op.qubit, config_.noise, shotRng_);
        size_t q = static_cast<size_t>(op.qubit);
        busyUntilCycle_[q] = op.cycle + duration;
        lastUpdateNs_[q] =
            static_cast<double>(op.cycle + duration) * config_.cycleNs;
        if (config_.recordTrace)
            appliedGates_.push_back({op.cycle, info.name, {op.qubit}});
        return;
      }
      case isa::OpClass::twoQubit: {
        // The source-role micro-op carries the joint unitary and checks
        // both qubits; the target-role micro-op is the second pulse of
        // the same gate (already accounted for) and is skipped.
        if (op.role == MicroOpRole::target) {
            return;
        }
        checkBusy(op.qubit, op.cycle, info.name);
        if (op.pairQubit < 0 ||
            !topology_.validQubit(op.pairQubit)) {
            throwError(ErrorCode::runtimeError,
                       format("two-qubit operation '%s' without a valid "
                              "pair qubit",
                              info.name.c_str()));
        }
        checkBusy(op.pairQubit, op.cycle, info.name);
        advanceIdle(op.qubit, op.cycle);
        advanceIdle(op.pairQubit, op.cycle);
        const qsim::Gate &gate = gateFor(info);
        if (gate.numQubits != 2) {
            throwError(ErrorCode::configError,
                       format("operation '%s' is two-qubit but its "
                              "unitary '%s' is not",
                              info.name.c_str(), info.unitary.c_str()));
        }
        // Operand order: (source, target) of the allowed qubit pair.
        state_->applyGate2(gate, op.qubit, op.pairQubit);
        state_->applyGateNoise2(op.qubit, op.pairQubit, config_.noise,
                                shotRng_);
        for (int qubit : {op.qubit, op.pairQubit}) {
            size_t q = static_cast<size_t>(qubit);
            busyUntilCycle_[q] = op.cycle + duration;
            lastUpdateNs_[q] = static_cast<double>(op.cycle + duration) *
                               config_.cycleNs;
        }
        if (config_.recordTrace) {
            appliedGates_.push_back(
                {op.cycle, info.name, {op.qubit, op.pairQubit}});
        }
        return;
      }
      case isa::OpClass::measurement: {
        checkBusy(op.qubit, op.cycle, info.name);
        advanceIdle(op.qubit, op.cycle);
        // Strong projective readout: sample, collapse, and dephase.
        int actual = state_->measure(op.qubit, shotRng_);
        int reported = actual;
        if (config_.noise.enabled &&
            shotRng_.bernoulli(config_.noise.readoutError)) {
            reported ^= 1;
        }
        size_t q = static_cast<size_t>(op.qubit);
        busyUntilCycle_[q] = op.cycle + duration;
        lastUpdateNs_[q] =
            static_cast<double>(op.cycle + duration) * config_.cycleNs;
        if (config_.recordTrace)
            appliedGates_.push_back({op.cycle, info.name, {op.qubit}});
        reportResult(op.qubit, reported,
                     op.cycle + static_cast<uint64_t>(
                                    config_.measurementLatencyCycles));
        return;
      }
    }
}

} // namespace eqasm::runtime
