#include "runtime/platform.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::runtime {

namespace {

/**
 * Sizes the instantiation to the chip: qubit/edge counts and the
 * SMIS/SMIT mask widths (never below the seven-qubit instantiation's
 * 7/16 bits, so existing chips keep their exact binary format; wider
 * chips get the segmented wide-mask encoding).
 */
void
syncInstantiation(Platform &platform)
{
    platform.params.numQubits = platform.topology.numQubits();
    platform.params.numEdges = platform.topology.numEdges();
    platform.params.sMaskWidth =
        std::max(7, platform.topology.numQubits());
    platform.params.tMaskWidth =
        std::max(16, platform.topology.numEdges());
    platform.uarch.params = platform.params;
}

qsim::NoiseModel
calibratedNoise()
{
    qsim::NoiseModel noise;
    noise.enabled = true;
    // Calibrated against Fig. 12: the error-per-gate ladder from 20 ns
    // to 320 ns inter-gate intervals (0.10 % ... 0.71 %) is reproduced
    // by decoherence over the idle time plus a small intrinsic
    // depolarizing error per pulse.
    noise.t1Ns = 28'000.0;
    noise.t2Ns = 23'000.0;
    noise.depol1q = 1.55e-3;
    // The Section 5 Grover fidelity (85.6 %) is CZ-limited.
    noise.depol2q = 8.5e-2;
    // Active reset lands at ~82.7 %, "limited by the readout fidelity".
    noise.readoutError = 0.085;
    return noise;
}

} // namespace

Platform
Platform::twoQubit()
{
    Platform platform;
    platform.topology = chip::Topology::twoQubit();
    platform.operations = isa::OperationSet::defaultSet();
    platform.device.noise = calibratedNoise();
    platform.device.measurementLatencyCycles = 15;
    return platform;
}

Platform
Platform::surface7()
{
    Platform platform = twoQubit();
    platform.topology = chip::Topology::surface7();
    return platform;
}

Platform
Platform::rotatedSurface(int distance)
{
    Platform platform = twoQubit();
    platform.topology = chip::Topology::rotatedSurface(distance);
    platform.device.backend = qsim::BackendKind::stabilizer;
    syncInstantiation(platform);
    return platform;
}

Platform
Platform::ideal(Platform base)
{
    base.device.noise = qsim::NoiseModel::ideal();
    return base;
}

Platform
Platform::fromJson(const Json &json)
{
    Platform platform = twoQubit();
    if (const Json *topology = json.find("topology"))
        platform.topology = chip::Topology::fromJson(*topology);
    if (const Json *operations = json.find("operations"))
        platform.operations = isa::OperationSet::fromJson(*operations);
    if (const Json *noise = json.find("noise"))
        platform.device.noise = qsim::NoiseModel::fromJson(*noise);
    std::string backend_name =
        json.getString("backend",
                       std::string(qsim::backendKindName(
                           platform.device.backend)));
    auto backend = qsim::parseBackendKind(backend_name);
    if (!backend) {
        throwError(ErrorCode::configError,
                   format("unknown simulation backend '%s' (expected "
                          "'density', 'stabilizer' or 'trajectory')",
                          backend_name.c_str()));
    }
    platform.device.backend = *backend;
    platform.params.vliwWidth = static_cast<int>(
        json.getInt("vliw_width", platform.params.vliwWidth));
    platform.params.preIntervalWidth = static_cast<int>(json.getInt(
        "pre_interval_width", platform.params.preIntervalWidth));
    syncInstantiation(platform);
    platform.uarch.classicalIssueRate = static_cast<int>(json.getInt(
        "classical_issue_rate", platform.uarch.classicalIssueRate));
    platform.device.measurementLatencyCycles =
        static_cast<int>(json.getInt(
            "measurement_latency_cycles",
            platform.device.measurementLatencyCycles));
    return platform;
}

Json
Platform::toJson() const
{
    Json out = Json::makeObject();
    out.set("topology", topology.toJson());
    out.set("operations", operations.toJson());
    out.set("noise", device.noise.toJson());
    out.set("backend",
            std::string(qsim::backendKindName(device.backend)));
    out.set("vliw_width", static_cast<int64_t>(params.vliwWidth));
    out.set("pre_interval_width",
            static_cast<int64_t>(params.preIntervalWidth));
    out.set("classical_issue_rate",
            static_cast<int64_t>(uarch.classicalIssueRate));
    out.set("measurement_latency_cycles",
            static_cast<int64_t>(device.measurementLatencyCycles));
    return out;
}

} // namespace eqasm::runtime
