/**
 * @file
 * Platform presets: a Platform bundles everything a program needs to be
 * assembled and executed — the chip topology, the configured quantum
 * operation set, the instantiation parameters, the microarchitecture
 * configuration and the device's physical (noise) configuration.
 *
 * The calibration values in the presets were chosen once so that the
 * reproduced experiments land in the paper's ballpark (see DESIGN.md
 * section 4 and EXPERIMENTS.md for the paper-vs-measured record).
 */
#ifndef EQASM_RUNTIME_PLATFORM_H
#define EQASM_RUNTIME_PLATFORM_H

#include "chip/topology.h"
#include "isa/opcodes.h"
#include "isa/operation_set.h"
#include "microarch/quma.h"
#include "runtime/simulated_device.h"

namespace eqasm::runtime {

/** Complete execution platform description. */
struct Platform {
    chip::Topology topology = chip::Topology::twoQubit();
    isa::OperationSet operations = isa::OperationSet::defaultSet();
    isa::InstantiationParams params;
    microarch::MicroarchConfig uarch;
    DeviceConfig device;

    /**
     * The Section 5 validation platform: the two-transmon chip (qubits
     * 0 and 2), the default operation set, and noise calibrated so
     * single-qubit RB at back-to-back spacing gives eps ~ 0.1 %,
     * readout infidelity ~ 8.5 % and a CZ error dominating Grover.
     */
    static Platform twoQubit();

    /** The seven-qubit surface-7 target chip of Fig. 6 (same noise). */
    static Platform surface7();

    /**
     * The generated distance-@p distance rotated surface code chip
     * (chip::Topology::rotatedSurface) with the same calibrated noise,
     * running on the stabilizer backend — the d >= 3 QEC platform the
     * density matrix cannot hold. Instantiation mask widths are sized
     * to the chip, so SMIS/SMIT use the segmented wide-mask encoding.
     */
    static Platform rotatedSurface(int distance);

    /** Noise-free variant of any platform (for functional tests). */
    static Platform ideal(Platform base);

    /**
     * Loads a platform from a JSON configuration document — the
     * workflow of Section 5, where "a configuration file is used to
     * specify the quantum chip topology ... used by the quantum
     * compiler and the assembler". Recognised members (all optional,
     * defaults from twoQubit()):
     *
     *   {"topology": {...Topology::fromJson schema...},
     *    "operations": {...OperationSet::fromJson schema...},
     *    "noise": {...NoiseModel::fromJson schema...},
     *    "backend": "density" | "stabilizer",
     *    "vliw_width": 2, "pre_interval_width": 3,
     *    "classical_issue_rate": 2, "measurement_latency_cycles": 15}
     */
    static Platform fromJson(const Json &json);

    /** Serialises to the fromJson() schema. */
    Json toJson() const;
};

} // namespace eqasm::runtime

#endif // EQASM_RUNTIME_PLATFORM_H
