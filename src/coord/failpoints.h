/**
 * @file
 * Failpoints — deterministic fault injection for the coordinator stack.
 *
 * The lease protocol's interesting behavior lives in its failure
 * windows: a heartbeat that never arrives, a renewal that stalls until
 * the lease expires, a worker that dies just before — or just after —
 * it reports `lease_complete`. Reproducing those windows with real
 * process kills and sleeps makes tests slow and flaky; this registry
 * makes them a deterministic program point instead. A test (or an
 * operator, via EQASM_FAILPOINTS) arms a named point with a fire
 * count; the instrumented code asks `fire(name)` at the exact moment
 * the fault would strike and alters its behavior while arms remain.
 *
 * Combined with the caller-timestamped clocks of coord::Coordinator
 * (the sched::QuotaManager style — time is a parameter, never a
 * syscall), every lease-expiry / re-issue / duplicate-discard schedule
 * is unit-testable without a single sleep. The production worker
 * (eqasm-worker) consults the same points, armed from the
 * EQASM_FAILPOINTS environment variable, so the smoke tests can crash
 * a real process at a chosen protocol step too.
 *
 * Names are free-form; the coordinator test harness composes them as
 * "<worker>.<event>" (e.g. "w1.stall_renew"). eqasm-worker consults:
 *   drop_heartbeat        skip sending worker_heartbeat
 *   stall_renew           skip sending lease_renew
 *   kill_before_complete  _exit(137) before lease_complete is sent
 *   kill_after_complete   _exit(137) after the completion is acked
 */
#ifndef EQASM_COORD_FAILPOINTS_H
#define EQASM_COORD_FAILPOINTS_H

#include <string>
#include <vector>

namespace eqasm::coord {

/** Process-global named failpoint registry (thread-safe). */
class Failpoints
{
  public:
    /** Arms @p name to fire @p count times (count < 0 = forever). */
    static void arm(const std::string &name, int count = 1);

    /** True (consuming one arm) when @p name is armed. A disarmed or
     *  unknown point returns false — instrumented code costs one map
     *  lookup only while tests are running with armed points, and the
     *  lookup is skipped entirely while the registry is empty. */
    static bool fire(const std::string &name);

    /** True when @p name has arms remaining, without consuming one. */
    static bool armed(const std::string &name);

    /** Disarms everything (tests call this in SetUp/TearDown). */
    static void clear();

    /**
     * Arms from a spec string "name[:count][,name[:count]]..." — the
     * EQASM_FAILPOINTS syntax of eqasm-worker. Empty spec is a no-op.
     * @throws Error{invalidArgument} naming a malformed entry.
     */
    static void armFromSpec(const std::string &spec);

    /** Names currently armed (for diagnostics). */
    static std::vector<std::string> armedNames();
};

} // namespace eqasm::coord

#endif // EQASM_COORD_FAILPOINTS_H
