/**
 * @file
 * Coordinator — elastic shard leases over the determinism invariant.
 *
 * PR 5 made a k-process shard run fold back bit-identically to a
 * 1-process run, but left the operator doing the `--shard i/n`
 * bookkeeping by hand. The coordinator automates exactly that
 * bookkeeping and nothing more: one process owns a job's shard plan
 * and hands out shard *leases* to workers; workers execute their slice
 * at absolute shot indices and return the ordinary shard-format result;
 * the coordinator folds returns through the strict
 * engine::BatchResult::merge + verifyComplete path.
 *
 * Like FastSV's distributed-memory scaling, correctness rests on a
 * convergence invariant rather than on coordination: because the
 * counter-based Rng::forShot(seed, shotIndex) streams make a shard's
 * counts a pure function of (program, seed, shot range), any two
 * executions of the same shard are bit-identical. The coordinator
 * therefore never needs consensus about which worker "really" owns a
 * shard — it needs only lease bookkeeping:
 *
 *  - a lease grants one shard slice to one worker until an expiry
 *    deadline; the worker renews while it computes;
 *  - a worker that stops renewing (crash, hang, partition) loses the
 *    lease at expiry and the shard is re-queued for re-issue — no
 *    work transfer, the next worker just recomputes the slice;
 *  - a worker that misses its heartbeat deadline is declared dead and
 *    ALL its leases are re-queued at once (faster than waiting for
 *    each lease to expire individually);
 *  - a duplicate completion — the original worker was merely slow, not
 *    dead, and returns after its shard was re-issued and completed —
 *    is verified fingerprint-equal against the accepted result and
 *    discarded. An *unequal* duplicate is refused loudly: same (seed,
 *    range) must be bit-identical, so inequality means a broken
 *    worker, never a benign race.
 *
 * Time is a caller-supplied microsecond timestamp on every entry point
 * (the sched::QuotaManager style), so lease expiry, dead-worker
 * detection and re-issue are deterministic under test — no sleeps,
 * no wall clocks. Production callers pass telemetry::nowMonotonicUs().
 *
 * Durability reuses the service journal: the plan is an intent-log
 * record, every accepted shard result is an atomically-written
 * shard-format file, and the verified complete result supersedes them
 * — so a coordinator crash resumes the plan from its completed-shard
 * set (leases are deliberately *not* persisted: after a restart they
 * would have expired anyway, and re-issue is free).
 *
 * See docs/coordinator.md for the wire protocol the Service exposes
 * over this class.
 */
#ifndef EQASM_COORD_COORDINATOR_H
#define EQASM_COORD_COORDINATOR_H

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/batch_result.h"
#include "service/journal.h"

namespace eqasm::coord {

/** Timing and sizing knobs. */
struct CoordinatorOptions {
    /** A lease not renewed for this long is expired and its shard
     *  re-queued. */
    uint64_t leaseTtlUs = 10'000'000;

    /** A worker silent (no heartbeat, acquire, renew or complete) for
     *  this long is declared dead and all its leases re-queued. */
    uint64_t heartbeatTtlUs = 30'000'000;

    /** Upper bound on a plan's shard count (journal file naming and
     *  sanity; a shard must cover >= 1 shot regardless). */
    int maxShards = 4096;
};

/** One granted lease, echoed to the worker. */
struct Lease {
    uint64_t id = 0;         ///< unique lease id (never reused).
    uint64_t jobId = 0;      ///< the coordinated job.
    int shard = 0;           ///< shard index in [0, shardCount).
    int shardCount = 0;      ///< the plan's shard count.
    uint64_t begin = 0;      ///< absolute first shot of the slice.
    uint64_t end = 0;        ///< one past the last shot.
    uint64_t expiresAtUs = 0;  ///< renew before this deadline.
    uint64_t ttlUs = 0;      ///< the lease TTL (renewal cadence hint).
};

/** What acquire() hands a worker: the lease plus the job to run. */
struct LeaseGrant {
    Lease lease;
    service::JobSpec spec;   ///< image, seed, shots, label, tenant.
};

/** A job that reached a terminal state since the last drain —
 *  the serving layer releases its admission-quota footprint. */
struct SettledJob {
    uint64_t id = 0;
    std::string tenant;
    int shots = 0;
};

/**
 * The lease bookkeeper. Thread-safe (one internal mutex — every
 * operation is per-lease or per-plan, never per-shot, so a mutex costs
 * nothing that matters next to a shard execution).
 */
class Coordinator
{
  public:
    /**
     * @param journal the durability store for plans / shard results /
     *        final results, or nullptr for a purely in-memory
     *        coordinator (unit tests of the lease protocol itself).
     */
    explicit Coordinator(service::Journal *journal,
                         CoordinatorOptions options = {});

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /**
     * Registers a new shard plan: @p spec (whose id the caller has
     * allocated and whose image/seed/shots define the work) split into
     * @p shards slices. Appends the coord_plan intent record before the
     * plan becomes visible, so an acknowledged plan survives a crash.
     * @throws Error{invalidArgument} when shards < 1, exceeds
     *         maxShards, exceeds spec.shots (an empty slice can never
     *         complete), or the id is already in use.
     */
    void addPlan(service::JobSpec spec, int shards, uint64_t nowUs);

    /**
     * Rebuilds a plan from the journal after a restart: re-reads the
     * completed-shard files (strict fromJson + merge; a tampered file
     * is a refusal naming it), marks the remainder pending, and — when
     * every shard had already completed — settles the job. Leases are
     * not restored; in-flight work at crash time simply re-runs.
     */
    void restorePlan(service::JobSpec spec, int shards);

    /** Re-registers a plan that settled before a restart so status
     *  queries keep answering. @p event is "done"/"failed"/"cancelled";
     *  @p detail is the fingerprint (done) or the error text. */
    void restoreSettled(service::JobSpec spec, int shards,
                        const std::string &event,
                        const std::string &detail);

    /**
     * Grants the next pending shard (oldest plan first, lowest shard
     * index first) to @p worker, or nullopt when nothing is pending.
     * Doubles as a heartbeat for @p worker.
     */
    std::optional<LeaseGrant> acquire(const std::string &worker,
                                      uint64_t nowUs);

    /**
     * Extends the lease's expiry to nowUs + leaseTtlUs.
     * @return the new expiry deadline.
     * @throws Error{notFound} when the lease is unknown, already
     *         expired (and possibly re-issued), or was retired — the
     *         worker should abandon the slice; its result, if it still
     *         completes, will be handled by the duplicate-discard rule.
     */
    uint64_t renew(const std::string &worker, uint64_t leaseId,
                   uint64_t nowUs);

    /**
     * Accepts a completed shard result under @p leaseId.
     *
     * The result must carry the exact provenance the plan predicts
     * (program hash, seed, total shots, shard index/count, covered
     * range) — anything else throws Error{invalidArgument} naming the
     * field. An accepted result is durably persisted (journal shard
     * file) before it is folded into the aggregate via the strict
     * merge.
     *
     * A completion under an *expired* lease is still accepted when the
     * shard has not been completed by anyone else (the worker was slow,
     * not wrong — its work is valid and taking it maximizes progress;
     * the replacement lease, if any, is retired and its holder's
     * eventual return becomes the duplicate). When the shard HAS
     * completed, the duplicate is verified fingerprint-equal against
     * the accepted result and discarded; a mismatch throws
     * Error{invalidArgument} naming both fingerprints, because equal
     * (seed, range) inputs must be bit-identical.
     *
     * When the last shard lands, the aggregate is verifyComplete()d,
     * persisted as the job's result, and the job settles as done.
     *
     * @return true when the result was merged, false when it was
     *         discarded as a verified duplicate (or the job was no
     *         longer running — e.g. cancelled).
     * @throws Error{notFound} when the lease id was never issued.
     */
    bool complete(const std::string &worker, uint64_t leaseId,
                  const engine::BatchResult &result, uint64_t nowUs);

    /** Records @p worker as alive at @p nowUs. */
    void heartbeat(const std::string &worker, uint64_t nowUs);

    /**
     * Advances the failure detectors to @p nowUs: workers whose last
     * sign of life is older than heartbeatTtlUs lose all their leases;
     * leases past their expiry are re-queued for re-issue.
     * @return the number of leases re-queued.
     */
    size_t tick(uint64_t nowUs);

    /**
     * Cancels a running plan: pending shards stop being issued, live
     * leases are retired (their completions will be discarded), and the
     * job settles as cancelled.
     * @throws Error{notFound} for an unknown id.
     */
    void cancel(uint64_t jobId);

    /** Jobs settled since the last call (for quota release). */
    std::vector<SettledJob> drainSettled();

    /** True when @p jobId names a coordinated job (any state). */
    bool knows(uint64_t jobId) const;

    /**
     * Status of a coordinated job, in the shape of the service status
     * verb (id, label, tenant, state, shots_total, shots_done,
     * fingerprint when done, detail when failed) plus the coordinator
     * view: shards_total / shards_done / shards_leased /
     * shards_pending, lease re-issue and duplicate counts, and the
     * workers currently known alive.
     * @throws Error{notFound} for an unknown id.
     */
    Json statusJson(uint64_t jobId) const;

    /** The final verified result of a done job (from memory).
     *  @throws Error{notFound} unless the job is done. */
    const engine::BatchResult &result(uint64_t jobId) const;

    const CoordinatorOptions &options() const { return options_; }

  private:
    enum class PlanState { running, done, failed, cancelled };
    enum class ShardState { pending, leased, complete };

    struct Plan {
        service::JobSpec spec;
        int shardCount = 0;
        std::string programHash;  ///< imageFingerprint(spec.image).
        PlanState state = PlanState::running;
        std::vector<ShardState> shards;
        /** Per-shard counts fingerprint once complete (the
         *  duplicate-discard comparison key). */
        std::vector<std::string> shardFingerprints;
        engine::BatchResult merged;
        int completed = 0;
        uint64_t reissues = 0;    ///< leases expired and re-queued.
        uint64_t duplicates = 0;  ///< completions discarded as equal.
        std::string fingerprint;  ///< of the verified complete result.
        std::string detail;       ///< failure / cancellation text.
    };

    struct LeaseState {
        uint64_t jobId = 0;
        int shard = 0;
        std::string worker;
        uint64_t expiresAtUs = 0;
        /** false once expired / superseded / settled: the lease no
         *  longer holds the shard, but completions under it are still
         *  routed (to the stale-accept or duplicate-discard path). */
        bool live = true;
    };

    struct WorkerState {
        uint64_t lastSeenUs = 0;
        std::vector<uint64_t> leases;  ///< live lease ids.
    };

    void noteWorker(const std::string &worker, uint64_t nowUs);
    /** Re-queues the lease's shard and retires the lease (mutex_
     *  held). */
    void expireLease(uint64_t leaseId, LeaseState &lease);
    /** Validates @p result against what @p plan predicts for
     *  @p shard. */
    void validateShardResult(const Plan &plan, int shard,
                             const engine::BatchResult &result) const;
    void settle(uint64_t jobId, Plan &plan, PlanState state,
                const std::string &eventDetail);
    /** Drops every lease (live or retired) of @p jobId (mutex_
     *  held). */
    void dropLeasesOf(uint64_t jobId);

    service::Journal *journal_;
    CoordinatorOptions options_;

    mutable std::mutex mutex_;
    std::map<uint64_t, Plan> plans_;
    std::map<uint64_t, LeaseState> leases_;
    std::map<std::string, WorkerState> workers_;
    uint64_t nextLeaseId_ = 1;
    std::vector<SettledJob> settled_;
};

} // namespace eqasm::coord

#endif // EQASM_COORD_COORDINATOR_H
