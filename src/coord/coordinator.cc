#include "coord/coordinator.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"
#include "telemetry/metrics.h"

namespace eqasm::coord {

namespace {

struct CoordMetrics {
    telemetry::Counter plans;
    telemetry::Counter leasesGranted;
    telemetry::Counter renewals;
    telemetry::Counter heartbeats;
    telemetry::Counter completions;
    telemetry::Counter duplicates;
    telemetry::Counter expiries;
    telemetry::Counter deadWorkers;
    telemetry::Gauge shardsPending;
    telemetry::Gauge shardsLeased;
    telemetry::Gauge workersAlive;
    telemetry::Gauge jobsActive;
};

const CoordMetrics &
coordMetrics()
{
    static const CoordMetrics metrics = [] {
        telemetry::Registry &r = telemetry::registry();
        CoordMetrics m;
        m.plans = r.counter("eqasm_coord_plans_total",
                            "Shard plans registered");
        m.leasesGranted = r.counter("eqasm_coord_leases_granted_total",
                                    "Shard leases granted to workers");
        m.renewals = r.counter("eqasm_coord_lease_renewals_total",
                               "Lease renewals accepted");
        m.heartbeats = r.counter("eqasm_coord_heartbeats_total",
                                 "Worker heartbeats received");
        m.completions = r.counter(
            "eqasm_coord_shards_completed_total",
            "Shard results accepted and merged");
        m.duplicates = r.counter(
            "eqasm_coord_duplicates_discarded_total",
            "Duplicate shard completions verified equal and discarded");
        m.expiries = r.counter(
            "eqasm_coord_lease_expiries_total",
            "Leases expired (TTL or dead worker) and re-queued");
        m.deadWorkers = r.counter(
            "eqasm_coord_workers_expired_total",
            "Workers declared dead after missing heartbeats");
        m.shardsPending = r.gauge("eqasm_coord_shards_pending",
                                  "Shards awaiting a lease");
        m.shardsLeased = r.gauge("eqasm_coord_shards_leased",
                                 "Shards currently leased out");
        m.workersAlive = r.gauge("eqasm_coord_workers_alive",
                                 "Workers within their heartbeat TTL");
        m.jobsActive = r.gauge("eqasm_coord_jobs_active",
                               "Coordinated jobs not yet settled");
        return m;
    }();
    return metrics;
}

const char *
planStateName(int state)
{
    switch (state) {
      case 0: return "running";
      case 1: return "done";
      case 2: return "failed";
      case 3: return "cancelled";
    }
    return "unknown";
}

} // namespace

Coordinator::Coordinator(service::Journal *journal,
                         CoordinatorOptions options)
    : journal_(journal), options_(options)
{
    if (options_.leaseTtlUs == 0 || options_.heartbeatTtlUs == 0) {
        throwError(ErrorCode::configError,
                   "coordinator lease and heartbeat TTLs must be > 0");
    }
}

void
Coordinator::addPlan(service::JobSpec spec, int shards, uint64_t nowUs)
{
    (void)nowUs;  // plans carry no deadline; the signature keeps the
                  // caller-timestamped style uniform across verbs.
    if (shards < 1 || shards > options_.maxShards) {
        throwError(ErrorCode::invalidArgument,
                   format("a shard plan needs 1..%d shards, got %d",
                          options_.maxShards, shards));
    }
    if (shards > spec.shots) {
        throwError(ErrorCode::invalidArgument,
                   format("cannot split %d shots into %d shards (a "
                          "shard must cover at least one shot)",
                          spec.shots, shards));
    }
    std::lock_guard<std::mutex> guard(mutex_);
    if (plans_.count(spec.id)) {
        throwError(ErrorCode::invalidArgument,
                   format("job id %llu already has a shard plan",
                          static_cast<unsigned long long>(spec.id)));
    }
    // Durability before visibility: once the coord_plan record is
    // fsync'd, a coordinator crash resumes this plan.
    if (journal_)
        journal_->appendCoordPlan(spec, shards);
    Plan &plan = plans_[spec.id];
    plan.spec = std::move(spec);
    plan.shardCount = shards;
    plan.programHash = engine::imageFingerprint(plan.spec.image);
    plan.shards.assign(static_cast<size_t>(shards),
                       ShardState::pending);
    plan.shardFingerprints.assign(static_cast<size_t>(shards), "");
    coordMetrics().plans.inc();
    coordMetrics().jobsActive.inc();
    coordMetrics().shardsPending.add(shards);
}

void
Coordinator::restorePlan(service::JobSpec spec, int shards)
{
    uint64_t id = spec.id;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        if (plans_.count(id)) {
            throwError(ErrorCode::invalidArgument,
                       format("job id %llu already has a shard plan",
                              static_cast<unsigned long long>(id)));
        }
        Plan &plan = plans_[id];
        plan.spec = std::move(spec);
        plan.shardCount = shards;
        plan.programHash = engine::imageFingerprint(plan.spec.image);
        plan.shards.assign(static_cast<size_t>(shards),
                           ShardState::pending);
        plan.shardFingerprints.assign(static_cast<size_t>(shards), "");
        coordMetrics().jobsActive.inc();
        coordMetrics().shardsPending.add(shards);
    }
    // Re-read the completed-shard files outside the lock (disk I/O),
    // then fold them in through the same path a live completion takes.
    std::vector<engine::BatchResult> parts;
    if (journal_)
        parts = journal_->loadShardList(id);
    std::lock_guard<std::mutex> guard(mutex_);
    Plan &plan = plans_.at(id);
    for (engine::BatchResult &part : parts) {
        if (!part.shard.active() ||
            part.shard.count != plan.shardCount ||
            part.shard.index < 0 ||
            part.shard.index >= plan.shardCount) {
            throwError(ErrorCode::invalidArgument,
                       format("job %llu has a recovered shard file "
                              "whose shard provenance does not match "
                              "the plan's %d-shard split",
                              static_cast<unsigned long long>(id),
                              plan.shardCount));
        }
        int shard = part.shard.index;
        if (plan.shards[shard] == ShardState::complete)
            continue;  // shard files are unique; defensive only.
        validateShardResult(plan, shard, part);
        plan.shardFingerprints[shard] = part.countsFingerprint();
        plan.merged.merge(part);
        plan.shards[shard] = ShardState::complete;
        ++plan.completed;
        coordMetrics().shardsPending.dec();
    }
    if (plan.completed == plan.shardCount) {
        // Crashed after the last shard landed but before result.json:
        // finish the fold now.
        try {
            plan.merged.verifyComplete();
            if (journal_)
                journal_->writeResult(id, plan.merged);
            settle(id, plan, PlanState::done, "");
        } catch (const Error &error) {
            settle(id, plan, PlanState::failed, error.message());
        }
    }
}

void
Coordinator::restoreSettled(service::JobSpec spec, int shards,
                            const std::string &event,
                            const std::string &detail)
{
    std::lock_guard<std::mutex> guard(mutex_);
    Plan &plan = plans_[spec.id];
    plan.spec = std::move(spec);
    plan.shardCount = shards;
    plan.shards.assign(static_cast<size_t>(shards),
                       ShardState::complete);
    plan.shardFingerprints.assign(static_cast<size_t>(shards), "");
    plan.completed = shards;
    if (event == "done") {
        plan.state = PlanState::done;
        plan.fingerprint = detail;
    } else {
        plan.state = event == "cancelled" ? PlanState::cancelled
                                          : PlanState::failed;
        plan.detail = detail;
    }
}

void
Coordinator::noteWorker(const std::string &worker, uint64_t nowUs)
{
    auto [it, inserted] = workers_.try_emplace(worker);
    it->second.lastSeenUs = nowUs;
    if (inserted)
        coordMetrics().workersAlive.inc();
}

std::optional<LeaseGrant>
Coordinator::acquire(const std::string &worker, uint64_t nowUs)
{
    if (worker.empty()) {
        throwError(ErrorCode::invalidArgument,
                   "lease_acquire needs a non-empty worker name");
    }
    std::lock_guard<std::mutex> guard(mutex_);
    noteWorker(worker, nowUs);
    for (auto &[jobId, plan] : plans_) {
        if (plan.state != PlanState::running)
            continue;
        for (int shard = 0; shard < plan.shardCount; ++shard) {
            if (plan.shards[shard] != ShardState::pending)
                continue;
            auto [begin, end] = engine::shardRange(
                plan.spec.shots, {shard, plan.shardCount});
            uint64_t leaseId = nextLeaseId_++;
            LeaseState &state = leases_[leaseId];
            state.jobId = jobId;
            state.shard = shard;
            state.worker = worker;
            state.expiresAtUs = nowUs + options_.leaseTtlUs;
            workers_[worker].leases.push_back(leaseId);
            plan.shards[shard] = ShardState::leased;
            coordMetrics().leasesGranted.inc();
            coordMetrics().shardsPending.dec();
            coordMetrics().shardsLeased.inc();

            LeaseGrant grant;
            grant.lease.id = leaseId;
            grant.lease.jobId = jobId;
            grant.lease.shard = shard;
            grant.lease.shardCount = plan.shardCount;
            grant.lease.begin = static_cast<uint64_t>(begin);
            grant.lease.end = static_cast<uint64_t>(end);
            grant.lease.expiresAtUs = state.expiresAtUs;
            grant.lease.ttlUs = options_.leaseTtlUs;
            grant.spec = plan.spec;
            return grant;
        }
    }
    return std::nullopt;
}

uint64_t
Coordinator::renew(const std::string &worker, uint64_t leaseId,
                   uint64_t nowUs)
{
    std::lock_guard<std::mutex> guard(mutex_);
    noteWorker(worker, nowUs);
    auto it = leases_.find(leaseId);
    if (it == leases_.end()) {
        throwError(ErrorCode::notFound,
                   format("lease %llu was never issued",
                          static_cast<unsigned long long>(leaseId)));
    }
    LeaseState &lease = it->second;
    if (!lease.live) {
        throwError(ErrorCode::notFound,
                   format("lease %llu on shard %d of job %llu is no "
                          "longer live (expired and possibly "
                          "re-issued); abandon the slice",
                          static_cast<unsigned long long>(leaseId),
                          lease.shard,
                          static_cast<unsigned long long>(lease.jobId)));
    }
    if (lease.expiresAtUs <= nowUs) {
        // The renewal arrived too late; expire it now rather than
        // waiting for the next tick, so the caller learns immediately.
        expireLease(leaseId, lease);
        throwError(ErrorCode::notFound,
                   format("lease %llu expired %llu us before this "
                          "renewal; shard %d of job %llu was "
                          "re-queued",
                          static_cast<unsigned long long>(leaseId),
                          static_cast<unsigned long long>(
                              nowUs - lease.expiresAtUs),
                          lease.shard,
                          static_cast<unsigned long long>(lease.jobId)));
    }
    lease.expiresAtUs = nowUs + options_.leaseTtlUs;
    coordMetrics().renewals.inc();
    return lease.expiresAtUs;
}

void
Coordinator::validateShardResult(const Plan &plan, int shard,
                                 const engine::BatchResult &result) const
{
    auto [begin, end] =
        engine::shardRange(plan.spec.shots, {shard, plan.shardCount});
    auto refuse = [&](const std::string &what) {
        throwError(ErrorCode::invalidArgument,
                   format("shard %d of job %llu: %s", shard,
                          static_cast<unsigned long long>(plan.spec.id),
                          what.c_str()));
    };
    if (result.programHash != plan.programHash) {
        refuse(format("result ran program %s but the plan is %s",
                      result.programHash.c_str(),
                      plan.programHash.c_str()));
    }
    if (result.seed != plan.spec.seed) {
        refuse(format("result used seed %llu but the plan's seed is "
                      "%llu",
                      static_cast<unsigned long long>(result.seed),
                      static_cast<unsigned long long>(plan.spec.seed)));
    }
    if (result.totalShots != static_cast<uint64_t>(plan.spec.shots)) {
        refuse(format("result claims %llu total shots but the plan has "
                      "%d",
                      static_cast<unsigned long long>(result.totalShots),
                      plan.spec.shots));
    }
    if (!result.shard.active() || result.shard.index != shard ||
        result.shard.count != plan.shardCount) {
        refuse(format("result carries shard %d/%d but the lease names "
                      "shard %d/%d",
                      result.shard.index, result.shard.count, shard,
                      plan.shardCount));
    }
    if (result.shotRanges.size() != 1 ||
        result.shotRanges[0].first != static_cast<uint64_t>(begin) ||
        result.shotRanges[0].second != static_cast<uint64_t>(end)) {
        refuse(format("result does not cover exactly the leased range "
                      "[%d, %d)",
                      begin, end));
    }
    if (result.shots != static_cast<uint64_t>(end - begin)) {
        refuse(format("result folded %llu shots but the slice holds %d",
                      static_cast<unsigned long long>(result.shots),
                      end - begin));
    }
}

bool
Coordinator::complete(const std::string &worker, uint64_t leaseId,
                      const engine::BatchResult &result, uint64_t nowUs)
{
    std::unique_lock<std::mutex> lock(mutex_);
    noteWorker(worker, nowUs);
    auto leaseIt = leases_.find(leaseId);
    if (leaseIt == leases_.end()) {
        throwError(ErrorCode::notFound,
                   format("lease %llu was never issued",
                          static_cast<unsigned long long>(leaseId)));
    }
    uint64_t jobId = leaseIt->second.jobId;
    int shard = leaseIt->second.shard;
    auto planIt = plans_.find(jobId);
    if (planIt == plans_.end() ||
        planIt->second.state != PlanState::running) {
        // The job settled (or was cancelled) while this worker was
        // computing; its result is moot, not wrong.
        return false;
    }
    Plan &plan = planIt->second;

    if (plan.shards[shard] == ShardState::complete) {
        // Re-issued and already completed by someone else: the
        // determinism invariant says both executions must agree
        // bit-for-bit; verify, then discard.
        validateShardResult(plan, shard, result);
        const std::string fingerprint = result.countsFingerprint();
        if (fingerprint != plan.shardFingerprints[shard]) {
            throwError(
                ErrorCode::invalidArgument,
                format("duplicate completion of shard %d of job %llu "
                       "has fingerprint %s but %s was accepted — the "
                       "same (program, seed, shot range) must be "
                       "bit-identical; refusing a diverging worker",
                       shard, static_cast<unsigned long long>(jobId),
                       fingerprint.c_str(),
                       plan.shardFingerprints[shard].c_str()));
        }
        ++plan.duplicates;
        coordMetrics().duplicates.inc();
        return false;
    }

    validateShardResult(plan, shard, result);
    // Durability before visibility, like every other accept in the
    // journal: persist the shard file, then fold it into the aggregate.
    if (journal_)
        journal_->writeShard(jobId, shard, result);
    plan.merged.merge(result);  // strict; *this untouched on refusal.
    plan.shardFingerprints[shard] = result.countsFingerprint();

    // Retire this lease and any replacement lease on the same shard
    // (this completion may have arrived under an expired lease after
    // the shard was re-issued; the replacement's work is now moot and
    // its eventual completion will take the duplicate path above).
    bool wasLeased = plan.shards[shard] == ShardState::leased;
    plan.shards[shard] = ShardState::complete;
    ++plan.completed;
    if (wasLeased)
        coordMetrics().shardsLeased.dec();
    else
        coordMetrics().shardsPending.dec();
    for (auto &[otherId, other] : leases_) {
        if (other.jobId == jobId && other.shard == shard && other.live)
            other.live = false;
    }
    coordMetrics().completions.inc();

    if (plan.completed == plan.shardCount) {
        try {
            plan.merged.verifyComplete();
            if (journal_)
                journal_->writeResult(jobId, plan.merged);
            settle(jobId, plan, PlanState::done, "");
        } catch (const Error &error) {
            settle(jobId, plan, PlanState::failed, error.message());
        }
    }
    return true;
}

void
Coordinator::heartbeat(const std::string &worker, uint64_t nowUs)
{
    if (worker.empty()) {
        throwError(ErrorCode::invalidArgument,
                   "worker_heartbeat needs a non-empty worker name");
    }
    std::lock_guard<std::mutex> guard(mutex_);
    noteWorker(worker, nowUs);
    coordMetrics().heartbeats.inc();
}

void
Coordinator::expireLease(uint64_t leaseId, LeaseState &lease)
{
    lease.live = false;
    auto planIt = plans_.find(lease.jobId);
    if (planIt != plans_.end() &&
        planIt->second.state == PlanState::running &&
        planIt->second.shards[lease.shard] == ShardState::leased) {
        planIt->second.shards[lease.shard] = ShardState::pending;
        ++planIt->second.reissues;
        coordMetrics().shardsLeased.dec();
        coordMetrics().shardsPending.inc();
        coordMetrics().expiries.inc();
    }
    auto workerIt = workers_.find(lease.worker);
    if (workerIt != workers_.end()) {
        auto &ids = workerIt->second.leases;
        ids.erase(std::remove(ids.begin(), ids.end(), leaseId),
                  ids.end());
    }
}

size_t
Coordinator::tick(uint64_t nowUs)
{
    std::lock_guard<std::mutex> guard(mutex_);
    size_t requeued = 0;
    // Dead workers first: losing the heartbeat forfeits every lease at
    // once, well before the individual lease TTLs run out.
    for (auto it = workers_.begin(); it != workers_.end();) {
        WorkerState &state = it->second;
        if (state.lastSeenUs + options_.heartbeatTtlUs > nowUs) {
            ++it;
            continue;
        }
        std::vector<uint64_t> held = state.leases;
        for (uint64_t leaseId : held) {
            auto leaseIt = leases_.find(leaseId);
            if (leaseIt != leases_.end() && leaseIt->second.live) {
                expireLease(leaseId, leaseIt->second);
                ++requeued;
            }
        }
        coordMetrics().deadWorkers.inc();
        coordMetrics().workersAlive.dec();
        it = workers_.erase(it);
    }
    // Then individually expired leases.
    for (auto &[leaseId, lease] : leases_) {
        if (lease.live && lease.expiresAtUs <= nowUs) {
            expireLease(leaseId, lease);
            ++requeued;
        }
    }
    return requeued;
}

void
Coordinator::dropLeasesOf(uint64_t jobId)
{
    // Retire rather than erase: a worker still computing under one of
    // these leases will report in eventually, and complete() must be
    // able to route that to "the job settled, your result is moot"
    // (false) instead of a confusing never-issued refusal. The entries
    // are retained for the lifetime of the plan record, like the plan
    // itself.
    for (auto &[leaseId, lease] : leases_) {
        if (lease.jobId != jobId || !lease.live)
            continue;
        lease.live = false;
        auto workerIt = workers_.find(lease.worker);
        if (workerIt != workers_.end()) {
            auto &ids = workerIt->second.leases;
            ids.erase(std::remove(ids.begin(), ids.end(), leaseId),
                      ids.end());
        }
    }
}

void
Coordinator::settle(uint64_t jobId, Plan &plan, PlanState state,
                    const std::string &eventDetail)
{
    // Return the unfinished shards' gauge contributions.
    int pending = 0, leased = 0;
    for (ShardState shard : plan.shards) {
        if (shard == ShardState::pending)
            ++pending;
        else if (shard == ShardState::leased)
            ++leased;
    }
    coordMetrics().shardsPending.add(-pending);
    coordMetrics().shardsLeased.add(-leased);
    coordMetrics().jobsActive.dec();

    plan.state = state;
    if (state == PlanState::done) {
        plan.fingerprint = plan.merged.countsFingerprint();
        if (journal_)
            journal_->appendEvent("done", jobId, plan.fingerprint);
    } else {
        plan.detail = eventDetail;
        if (journal_) {
            journal_->appendEvent(state == PlanState::cancelled
                                      ? "cancelled"
                                      : "failed",
                                  jobId, eventDetail);
        }
    }
    dropLeasesOf(jobId);
    settled_.push_back(
        {jobId, plan.spec.tenant, plan.spec.shots});
}

void
Coordinator::cancel(uint64_t jobId)
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = plans_.find(jobId);
    if (it == plans_.end()) {
        throwError(ErrorCode::notFound,
                   format("no coordinated job with id %llu",
                          static_cast<unsigned long long>(jobId)));
    }
    Plan &plan = it->second;
    if (plan.state != PlanState::running)
        return;
    settle(jobId, plan,
           PlanState::cancelled,
           format("cancelled after %d of %d shards", plan.completed,
                  plan.shardCount));
}

std::vector<SettledJob>
Coordinator::drainSettled()
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<SettledJob> drained;
    drained.swap(settled_);
    return drained;
}

bool
Coordinator::knows(uint64_t jobId) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return plans_.count(jobId) > 0;
}

Json
Coordinator::statusJson(uint64_t jobId) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = plans_.find(jobId);
    if (it == plans_.end()) {
        throwError(ErrorCode::notFound,
                   format("no coordinated job with id %llu",
                          static_cast<unsigned long long>(jobId)));
    }
    const Plan &plan = it->second;
    int leased = 0, pending = 0;
    for (ShardState shard : plan.shards) {
        if (shard == ShardState::leased)
            ++leased;
        else if (shard == ShardState::pending)
            ++pending;
    }
    Json response = Json::makeObject();
    response.set("ok", true);
    response.set("id", plan.spec.id);
    response.set("label", plan.spec.label);
    response.set("tenant", plan.spec.tenant);
    response.set("coordinated", true);
    response.set("shots_total",
                 static_cast<int64_t>(plan.spec.shots));
    response.set("shots_done",
                 static_cast<int64_t>(plan.merged.shots));
    response.set("state",
                 plan.state == PlanState::running &&
                         plan.completed == 0 && leased == 0
                     ? "queued"
                     : planStateName(static_cast<int>(plan.state)));
    response.set("shards_total", static_cast<int64_t>(plan.shardCount));
    response.set("shards_done", static_cast<int64_t>(plan.completed));
    response.set("shards_leased", static_cast<int64_t>(leased));
    response.set("shards_pending", static_cast<int64_t>(pending));
    response.set("lease_reissues", plan.reissues);
    response.set("duplicates_discarded", plan.duplicates);
    if (plan.state == PlanState::done)
        response.set("fingerprint", plan.fingerprint);
    if (!plan.detail.empty())
        response.set("detail", plan.detail);
    Json workers = Json::makeArray();
    for (const auto &[name, state] : workers_)
        workers.append(name);
    response.set("workers", std::move(workers));
    return response;
}

const engine::BatchResult &
Coordinator::result(uint64_t jobId) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = plans_.find(jobId);
    if (it == plans_.end() || it->second.state != PlanState::done) {
        throwError(ErrorCode::notFound,
                   format("coordinated job %llu has no completed "
                          "result",
                          static_cast<unsigned long long>(jobId)));
    }
    return it->second.merged;
}

} // namespace eqasm::coord
