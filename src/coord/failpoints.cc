#include "coord/failpoints.h"

#include <atomic>
#include <map>
#include <mutex>

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::coord {

namespace {

std::mutex &
pointsMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::map<std::string, int> &
points()
{
    static std::map<std::string, int> map;
    return map;
}

/** Fast empty check so unarmed processes skip the mutex entirely. */
std::atomic<int> armedCount{0};

} // namespace

void
Failpoints::arm(const std::string &name, int count)
{
    if (name.empty()) {
        throwError(ErrorCode::invalidArgument,
                   "a failpoint needs a non-empty name");
    }
    std::lock_guard<std::mutex> guard(pointsMutex());
    auto [it, inserted] = points().emplace(name, count);
    if (!inserted)
        it->second = count;
    if (inserted)
        armedCount.fetch_add(1, std::memory_order_relaxed);
    if (count == 0) {
        points().erase(it);
        armedCount.fetch_sub(1, std::memory_order_relaxed);
    }
}

bool
Failpoints::fire(const std::string &name)
{
    if (armedCount.load(std::memory_order_relaxed) == 0)
        return false;
    std::lock_guard<std::mutex> guard(pointsMutex());
    auto it = points().find(name);
    if (it == points().end())
        return false;
    if (it->second > 0 && --it->second == 0) {
        points().erase(it);
        armedCount.fetch_sub(1, std::memory_order_relaxed);
    }
    return true;
}

bool
Failpoints::armed(const std::string &name)
{
    if (armedCount.load(std::memory_order_relaxed) == 0)
        return false;
    std::lock_guard<std::mutex> guard(pointsMutex());
    return points().count(name) > 0;
}

void
Failpoints::clear()
{
    std::lock_guard<std::mutex> guard(pointsMutex());
    points().clear();
    armedCount.store(0, std::memory_order_relaxed);
}

void
Failpoints::armFromSpec(const std::string &spec)
{
    for (const std::string &entry : split(spec, ',')) {
        std::string item(trim(entry));
        if (item.empty())
            continue;
        size_t colon = item.find(':');
        int count = 1;
        std::string name = item;
        if (colon != std::string::npos) {
            name = std::string(trim(item.substr(0, colon)));
            try {
                count = static_cast<int>(
                    parseInt(trim(item.substr(colon + 1))));
            } catch (const Error &) {
                throwError(ErrorCode::invalidArgument,
                           format("failpoint spec entry '%s' has a "
                                  "malformed count",
                                  item.c_str()));
            }
        }
        arm(name, count);
    }
}

std::vector<std::string>
Failpoints::armedNames()
{
    std::lock_guard<std::mutex> guard(pointsMutex());
    std::vector<std::string> names;
    for (const auto &[name, count] : points())
        names.push_back(name);
    return names;
}

} // namespace eqasm::coord
