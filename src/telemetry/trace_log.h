/**
 * @file
 * Bounded-ring span log — the timeline half of the telemetry
 * subsystem (the numeric half is metrics.h).
 *
 * Where the registry answers "how many / how long on average", the
 * trace log answers "in what order, on which worker": every recorded
 * span carries a start timestamp, a duration, a track id and job
 * identity, so a fair-share run's interleaving of tenants across the
 * worker pool can be *seen*, not inferred. chromeTraceJson() renders
 * the ring in the Chrome trace-event format, loadable in
 * chrome://tracing and Perfetto with one track per worker.
 *
 * Recording happens at chunk cadence (tens of microseconds of work per
 * span), not shot cadence, so a short mutex-guarded push into a
 * preallocated ring is cheap relative to what it measures; the ring
 * overwrites its oldest entries once full, keeping memory bounded for
 * arbitrarily long runs. The log is disabled by default — enabling it
 * is an explicit CLI/EngineConfig choice — so the fast-path overhead
 * budget is spent only when a timeline was asked for.
 */
#ifndef EQASM_TELEMETRY_TRACE_LOG_H
#define EQASM_TELEMETRY_TRACE_LOG_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace eqasm::telemetry {

/** One completed span on a track. Times come from nowMonotonicUs(). */
struct TraceSpan {
    /** Event name shown on the slice, e.g. "chunk" or "job". */
    std::string name;
    /** Category, e.g. "engine" / "sched" (filterable in viewers). */
    std::string cat;
    /** Track: worker index for chunks, kJobTrackBase+n for job rows. */
    int32_t track = 0;
    uint64_t jobId = 0;
    std::string tenant;
    /** Free-form detail shown in the args pane (label, shot range). */
    std::string detail;
    uint64_t startUs = 0;
    uint64_t durUs = 0;
};

/**
 * Fixed-capacity overwrite-oldest span ring with Chrome trace-event
 * export. Thread-safe; see file comment for the cost model.
 */
class TraceLog
{
  public:
    explicit TraceLog(size_t capacity = kDefaultCapacity);

    TraceLog(const TraceLog &) = delete;
    TraceLog &operator=(const TraceLog &) = delete;

    /** Spans record only while enabled (default off). */
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Appends @p span, overwriting the oldest once full. No-op while
     *  disabled, so call sites need no guard of their own. */
    void record(TraceSpan span);

    /** Oldest-first copy of the current contents. */
    std::vector<TraceSpan> spans() const;

    /** Spans recorded since construction/clear (>= size() once the
     *  ring has wrapped; the difference is the overwritten count). */
    uint64_t recorded() const;
    size_t size() const;
    size_t capacity() const { return capacity_; }

    void clear();

    /**
     * Chrome trace-event JSON: {"traceEvents": [...], "displayTimeUnit":
     * "ms"}. Each span becomes a complete event (ph "X", pid 1, tid =
     * track, ts/dur in us) with jobId/tenant/detail under args; one
     * metadata event per track names it ("worker 0", "jobs") so viewers
     * show stable track labels.
     */
    Json chromeTraceJson() const;

    /** Track offset for per-job rows, clear of any real worker index. */
    static constexpr int32_t kJobTrackBase = 1000;
    static constexpr size_t kDefaultCapacity = 65536;

  private:
    const size_t capacity_;
    std::atomic<bool> enabled_{false};

    mutable std::mutex mutex_;
    std::vector<TraceSpan> ring_;  ///< reserved to capacity_ up front.
    size_t next_ = 0;              ///< overwrite cursor once full.
    uint64_t recorded_ = 0;
};

/** The process-wide trace log the engine records into. */
TraceLog &traceLog();

} // namespace eqasm::telemetry

#endif // EQASM_TELEMETRY_TRACE_LOG_H
