#include "telemetry/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/error.h"
#include "common/strings.h"

namespace eqasm::telemetry {

namespace {

/** Steady-clock origin captured once; all timestamps are relative. */
std::chrono::steady_clock::time_point processStart()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

/** Forces the origin capture before main() spawns any threads. */
const bool originCaptured = (processStart(), true);

bool validMetricName(std::string_view name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (char c : name.substr(1)) {
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    }
    return true;
}

/** Escapes a label value for the text exposition (\\ " \n). */
std::string escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

/** Renders {key="value",...} (empty string for no labels). */
std::string renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    for (size_t i = 0; i < labels.size(); ++i) {
        if (i != 0)
            out += ",";
        out += labels[i].first + "=\"" +
               escapeLabelValue(labels[i].second) + "\"";
    }
    out += "}";
    return out;
}

/** Renders a `le` bound: integers plain, +Inf for the overflow. */
std::string renderBound(uint64_t bound)
{
    return format("%llu", static_cast<unsigned long long>(bound));
}

Labels canonicalise(Labels labels)
{
    std::sort(labels.begin(), labels.end());
    return labels;
}

} // namespace

uint64_t
nowMonotonicUs()
{
    (void)originCaptured;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - processStart())
            .count());
}

const std::vector<uint64_t> &
defaultLatencyBucketsUs()
{
    // 50 us .. 10 s, roughly x3 steps: wide enough for a sub-ms chunk
    // and a multi-second queue wait in the same family.
    static const std::vector<uint64_t> buckets = {
        50,      150,      500,      1500,      5000,      15000,
        50000,   150000,   500000,   1500000,   5000000,   10000000,
    };
    return buckets;
}

namespace detail {

int
threadShardIndex()
{
    static std::atomic<unsigned> nextShard{0};
    thread_local const int shard = static_cast<int>(
        nextShard.fetch_add(1, std::memory_order_relaxed) %
        Registry::kShards);
    return shard;
}

} // namespace detail

Registry::Registry() : shards_(new Shard[kShards])
{
    for (int s = 0; s < kShards; ++s)
        for (size_t i = 0; i < kSlotsPerShard; ++i)
            shards_[s].slots[i].store(0, std::memory_order_relaxed);
}

Registry::~Registry() = default;

Registry::Series &
Registry::registerSeries(std::string_view name, std::string_view help,
                         Labels labels, Kind kind, uint32_t slots,
                         std::shared_ptr<const std::vector<uint64_t>> bounds)
{
    if (!validMetricName(name))
        throwError(ErrorCode::invalidArgument,
                   format("invalid metric name '%s'",
                          std::string(name).c_str()));
    labels = canonicalise(std::move(labels));
    std::lock_guard<std::mutex> lock(mutex_);
    for (Series &s : series_) {
        if (s.name != name || s.labels != labels)
            continue;
        if (s.kind != kind)
            throwError(ErrorCode::invalidArgument,
                       format("metric '%s' re-registered as a different "
                              "kind", s.name.c_str()));
        if (kind == Kind::histogram && *s.bounds != *bounds)
            throwError(ErrorCode::invalidArgument,
                       format("histogram '%s' re-registered with "
                              "different buckets", s.name.c_str()));
        return s;
    }
    if (nextSlot_ + slots > kSlotsPerShard)
        throwError(ErrorCode::configError,
                   format("telemetry slot arena exhausted registering "
                          "'%s' (%zu slots per shard)",
                          std::string(name).c_str(), kSlotsPerShard));
    Series s;
    s.name = std::string(name);
    s.help = std::string(help);
    s.labels = std::move(labels);
    s.kind = kind;
    s.slot = nextSlot_;
    s.slots = slots;
    s.bounds = std::move(bounds);
    nextSlot_ += slots;
    series_.push_back(std::move(s));
    return series_.back();
}

Counter
Registry::counter(std::string_view name, std::string_view help,
                  Labels labels)
{
    const Series &s = registerSeries(name, help, std::move(labels),
                                     Kind::counter, 1, nullptr);
    Counter c;
    c.registry_ = this;
    c.slot_ = s.slot;
    return c;
}

Gauge
Registry::gauge(std::string_view name, std::string_view help, Labels labels)
{
    const Series &s = registerSeries(name, help, std::move(labels),
                                     Kind::gauge, 1, nullptr);
    Gauge g;
    g.registry_ = this;
    g.slot_ = s.slot;
    return g;
}

Histogram
Registry::histogram(std::string_view name, std::string_view help,
                    std::vector<uint64_t> bucketBoundsUs, Labels labels)
{
    if (bucketBoundsUs.empty())
        throwError(ErrorCode::invalidArgument,
                   format("histogram '%s' needs at least one bucket",
                          std::string(name).c_str()));
    if (!std::is_sorted(bucketBoundsUs.begin(), bucketBoundsUs.end()) ||
        std::adjacent_find(bucketBoundsUs.begin(), bucketBoundsUs.end()) !=
            bucketBoundsUs.end())
        throwError(ErrorCode::invalidArgument,
                   format("histogram '%s' buckets must be strictly "
                          "ascending", std::string(name).c_str()));
    auto bounds = std::make_shared<const std::vector<uint64_t>>(
        std::move(bucketBoundsUs));
    // Slots: n finite buckets, +Inf bucket, sum.
    const uint32_t n = static_cast<uint32_t>(bounds->size());
    const Series &s = registerSeries(name, help, std::move(labels),
                                     Kind::histogram, n + 2, bounds);
    Histogram h;
    h.registry_ = this;
    h.slot_ = s.slot;
    h.buckets_ = n;
    h.bounds_ = s.bounds->data();
    return h;
}

uint64_t
Registry::sumSlot(uint32_t slot) const
{
    uint64_t total = 0;
    for (int s = 0; s < kShards; ++s)
        total += shards_[s].slots[slot].load(std::memory_order_relaxed);
    return total;
}

const Registry::Series *
Registry::findSeries(std::string_view name, const Labels &labels) const
{
    const Labels canonical = canonicalise(labels);
    for (const Series &s : series_) {
        if (s.name == name && s.labels == canonical)
            return &s;
    }
    return nullptr;
}

uint64_t
Registry::counterValue(std::string_view name, const Labels &labels) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Series *s = findSeries(name, labels);
    return (s != nullptr && s->kind == Kind::counter) ? sumSlot(s->slot) : 0;
}

int64_t
Registry::gaugeValue(std::string_view name, const Labels &labels) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Series *s = findSeries(name, labels);
    return (s != nullptr && s->kind == Kind::gauge)
               ? static_cast<int64_t>(sumSlot(s->slot))
               : 0;
}

uint64_t
Registry::histogramCount(std::string_view name, const Labels &labels) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Series *s = findSeries(name, labels);
    if (s == nullptr || s->kind != Kind::histogram)
        return 0;
    uint64_t total = 0;
    for (uint32_t b = 0; b < s->slots - 1; ++b)
        total += sumSlot(s->slot + b);
    return total;
}

uint64_t
Registry::histogramSum(std::string_view name, const Labels &labels) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Series *s = findSeries(name, labels);
    if (s == nullptr || s->kind != Kind::histogram)
        return 0;
    return sumSlot(s->slot + s->slots - 1);
}

std::string
Registry::prometheus() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Sorted view so families group and output is reproducible.
    std::vector<const Series *> sorted;
    sorted.reserve(series_.size());
    for (const Series &s : series_)
        sorted.push_back(&s);
    std::sort(sorted.begin(), sorted.end(),
              [](const Series *a, const Series *b) {
                  if (a->name != b->name)
                      return a->name < b->name;
                  return a->labels < b->labels;
              });

    std::string out;
    const std::string *lastFamily = nullptr;
    for (const Series *s : sorted) {
        if (lastFamily == nullptr || *lastFamily != s->name) {
            const char *type = s->kind == Kind::counter   ? "counter"
                               : s->kind == Kind::gauge   ? "gauge"
                                                          : "histogram";
            out += "# HELP " + s->name + " " + s->help + "\n";
            out += "# TYPE " + s->name + " " + type + "\n";
            lastFamily = &s->name;
        }
        const std::string labels = renderLabels(s->labels);
        switch (s->kind) {
        case Kind::counter:
            out += s->name + labels +
                   format(" %llu\n",
                          static_cast<unsigned long long>(sumSlot(s->slot)));
            break;
        case Kind::gauge:
            out += s->name + labels +
                   format(" %lld\n", static_cast<long long>(
                                         static_cast<int64_t>(
                                             sumSlot(s->slot))));
            break;
        case Kind::histogram: {
            const uint32_t n = static_cast<uint32_t>(s->bounds->size());
            uint64_t cumulative = 0;
            for (uint32_t b = 0; b < n; ++b) {
                cumulative += sumSlot(s->slot + b);
                Labels withLe = s->labels;
                withLe.emplace_back("le", renderBound((*s->bounds)[b]));
                out += s->name + "_bucket" + renderLabels(withLe) +
                       format(" %llu\n",
                              static_cast<unsigned long long>(cumulative));
            }
            cumulative += sumSlot(s->slot + n);
            Labels withInf = s->labels;
            withInf.emplace_back("le", "+Inf");
            out += s->name + "_bucket" + renderLabels(withInf) +
                   format(" %llu\n",
                          static_cast<unsigned long long>(cumulative));
            out += s->name + "_sum" + labels +
                   format(" %llu\n", static_cast<unsigned long long>(
                                         sumSlot(s->slot + n + 1)));
            out += s->name + "_count" + labels +
                   format(" %llu\n",
                          static_cast<unsigned long long>(cumulative));
            break;
        }
        }
    }
    return out;
}

Json
Registry::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const Series *> sorted;
    sorted.reserve(series_.size());
    for (const Series &s : series_)
        sorted.push_back(&s);
    std::sort(sorted.begin(), sorted.end(),
              [](const Series *a, const Series *b) {
                  if (a->name != b->name)
                      return a->name < b->name;
                  return a->labels < b->labels;
              });

    Json root = Json::makeObject();
    root.set("captured_us", static_cast<int64_t>(nowMonotonicUs()));
    Json metrics = Json::makeArray();
    for (const Series *s : sorted) {
        Json m = Json::makeObject();
        m.set("name", s->name);
        m.set("type", s->kind == Kind::counter   ? "counter"
                      : s->kind == Kind::gauge   ? "gauge"
                                                 : "histogram");
        m.set("help", s->help);
        Json labels = Json::makeObject();
        for (const auto &[key, value] : s->labels)
            labels.set(key, value);
        m.set("labels", std::move(labels));
        switch (s->kind) {
        case Kind::counter:
            m.set("value", static_cast<int64_t>(sumSlot(s->slot)));
            break;
        case Kind::gauge:
            m.set("value", static_cast<int64_t>(sumSlot(s->slot)));
            break;
        case Kind::histogram: {
            const uint32_t n = static_cast<uint32_t>(s->bounds->size());
            Json buckets = Json::makeArray();
            uint64_t count = 0;
            for (uint32_t b = 0; b <= n; ++b) {
                const uint64_t value = sumSlot(s->slot + b);
                count += value;
                Json bucket = Json::makeObject();
                bucket.set("le", b < n ? renderBound((*s->bounds)[b])
                                       : std::string("+Inf"));
                bucket.set("count", static_cast<int64_t>(value));
                buckets.append(std::move(bucket));
            }
            m.set("buckets", std::move(buckets));
            m.set("sum", static_cast<int64_t>(sumSlot(s->slot + n + 1)));
            m.set("count", static_cast<int64_t>(count));
            break;
        }
        }
        metrics.append(std::move(m));
    }
    root.set("metrics", std::move(metrics));
    return root;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (int s = 0; s < kShards; ++s)
        for (size_t i = 0; i < kSlotsPerShard; ++i)
            shards_[s].slots[i].store(0, std::memory_order_relaxed);
}

size_t
Registry::seriesCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return series_.size();
}

Registry &
registry()
{
    static Registry *instance = new Registry();  // leaked: outlives all users.
    return *instance;
}

} // namespace eqasm::telemetry
