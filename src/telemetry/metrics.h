/**
 * @file
 * Lock-free metrics registry — the numeric half of the telemetry
 * subsystem (the other half is trace_log.h).
 *
 * The paper's control stack is a pipeline of identifiable hardware
 * modules; its software reproduction was, until this subsystem, a
 * runtime black box: the only observable signals were a final
 * BatchResult and an off-by-default printf logger. The registry gives
 * every layer (engine, scheduler, microarchitecture, qsim) cheap named
 * counters, gauges and fixed-bucket histograms that can be scraped at
 * any moment — Prometheus text exposition for a monitoring stack, a
 * JSON snapshot for scripts — without perturbing the measured system.
 *
 * Design constraints, in order:
 *
 *  1. The shot hot path must stay allocation-free and lock-free (the
 *     PR 4 fast path is the whole value of the engine). A metric
 *     handle therefore resolves at *registration* time to a fixed slot
 *     index; recording is one relaxed fetch_add on a per-worker-shard
 *     64-bit slot. No locks, no allocation, no branches beyond the
 *     enabled check. Threads are spread across kShards slot arrays so
 *     concurrent writers do not contend on a cache line.
 *  2. Scraping must be safe while workers write. Slots are relaxed
 *     std::atomic<uint64_t> (which compile to plain loads/stores on
 *     every target we care about); a scrape sums the shards and may
 *     observe a torn *set* of slots (some increments counted, some not
 *     yet) but never a torn value — exactly the Prometheus contract.
 *  3. Telemetry must never change results. Nothing here touches RNG
 *     streams or simulation state; the fast-path identity tests pin
 *     counts_fingerprint equality with telemetry on and off.
 *
 * Registration (name + labels -> slot) takes a mutex and may allocate;
 * it happens at construction time (engine/replica/scheduler setup),
 * never per shot. Re-registering an identical (name, labels, kind)
 * returns the same slots, so per-replica components share one series.
 */
#ifndef EQASM_TELEMETRY_METRICS_H
#define EQASM_TELEMETRY_METRICS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.h"

namespace eqasm::telemetry {

/** Label set of one series: (key, value) pairs, e.g. {{"tenant","a"}}.
 *  Order-insensitive (canonicalised by key at registration). */
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry;

/**
 * Monotonic microseconds since process start (steady clock). The
 * common timebase of histogram observations and trace-log spans.
 */
uint64_t nowMonotonicUs();

/**
 * A monotonically increasing counter. Handles are cheap value types
 * resolved at registration; a default-constructed handle is inert
 * (add() is a no-op), so components can hold one unconditionally.
 */
class Counter
{
  public:
    Counter() = default;

    /** Hot path: one relaxed fetch_add on this thread's shard slot. */
    inline void add(uint64_t n) const;
    void inc() const { add(1); }

  private:
    friend class Registry;
    Registry *registry_ = nullptr;
    uint32_t slot_ = 0;
};

/**
 * A gauge tracked by *deltas*: the current value is the sum of all
 * signed increments across shards (two's complement on the uint64
 * slots). Delta tracking is what keeps set-like state (queue depth,
 * active workers, fair-share deficit) lock-free: every writer adds
 * what it knows changed, no writer needs the current value.
 */
class Gauge
{
  public:
    Gauge() = default;

    inline void add(int64_t delta) const;
    void inc() const { add(1); }
    void dec() const { add(-1); }

  private:
    friend class Registry;
    Registry *registry_ = nullptr;
    uint32_t slot_ = 0;
};

/**
 * A fixed-bucket histogram. Bucket upper bounds are set at
 * registration (ascending, in the observed unit — this codebase
 * observes microseconds); observation is a linear scan over <= ~16
 * bounds plus two relaxed adds (bucket + sum). An implicit +Inf
 * bucket catches overflow.
 */
class Histogram
{
  public:
    Histogram() = default;

    inline void observe(uint64_t value) const;

  private:
    friend class Registry;
    Registry *registry_ = nullptr;
    uint32_t slot_ = 0;          ///< first bucket slot.
    uint32_t buckets_ = 0;       ///< finite buckets (excl. +Inf).
    const uint64_t *bounds_ = nullptr;  ///< registry-owned, stable.
};

/** Default latency bucket bounds in microseconds: 50 us .. 10 s. */
const std::vector<uint64_t> &defaultLatencyBucketsUs();

/**
 * The registry: owns the slot storage, the series metadata and the
 * export formats. One process-wide instance lives behind registry();
 * tests construct private instances for exactness checks.
 */
class Registry
{
  public:
    Registry();
    ~Registry();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Registers (or re-finds) a series. @p name must match the
     * Prometheus metric-name grammar ([a-zA-Z_:][a-zA-Z0-9_:]*).
     * Registering an existing (name, labels) pair returns the same
     * slots; a kind conflict (counter vs gauge vs histogram) or — for
     * histograms — different bucket bounds throw Error{invalidArgument}
     * naming the series.
     * @throws Error{configError} once the preallocated slot arena is
     *         full (kSlotsPerShard slots per shard).
     */
    Counter counter(std::string_view name, std::string_view help,
                    Labels labels = {});
    Gauge gauge(std::string_view name, std::string_view help,
                Labels labels = {});
    Histogram histogram(std::string_view name, std::string_view help,
                        std::vector<uint64_t> bucketBoundsUs,
                        Labels labels = {});

    /**
     * Process-wide kill switch for the hot-path handles: when false,
     * add()/observe() return after one branch (a relaxed bool load).
     * Scraping still works and reports whatever was recorded.
     */
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Sum of @p name's counter slots over all shards (0 if absent). */
    uint64_t counterValue(std::string_view name,
                          const Labels &labels = {}) const;
    /** Signed sum of @p name's gauge slots (0 if absent). */
    int64_t gaugeValue(std::string_view name,
                       const Labels &labels = {}) const;
    /** Total observation count of @p name's histogram (0 if absent). */
    uint64_t histogramCount(std::string_view name,
                            const Labels &labels = {}) const;
    /** Sum of observed values of @p name's histogram (0 if absent). */
    uint64_t histogramSum(std::string_view name,
                          const Labels &labels = {}) const;

    /**
     * Prometheus text exposition (version 0.0.4): one # HELP / # TYPE
     * header per family, series sorted by (name, labels), histograms
     * rendered with cumulative le buckets plus _sum and _count.
     * Safe to call while writers record.
     */
    std::string prometheus() const;

    /**
     * JSON snapshot: {"captured_us": ..., "metrics": [{"name", "type",
     * "help", "labels", and "value" | "buckets"+"sum"+"count"}, ...]}
     * in the same sorted order as the exposition.
     */
    Json snapshotJson() const;

    /** Zeroes every slot (registrations survive). Test/CLI helper so a
     *  fresh run scrapes only its own activity. */
    void reset();

    size_t seriesCount() const;

    /** Shards available for concurrent writers. */
    static constexpr int kShards = 16;
    /** Preallocated slots per shard (registration fails beyond). */
    static constexpr size_t kSlotsPerShard = 4096;

  private:
    friend class Counter;
    friend class Gauge;
    friend class Histogram;

    enum class Kind { counter, gauge, histogram };

    struct Series {
        std::string name;
        std::string help;
        Labels labels;       ///< canonical (sorted by key).
        Kind kind = Kind::counter;
        uint32_t slot = 0;   ///< first slot index.
        uint32_t slots = 1;  ///< consecutive slots (histogram: n+2).
        /** Histogram bounds; stable address (unique_ptr) so handles
         *  can point into it while the series vector grows. */
        std::shared_ptr<const std::vector<uint64_t>> bounds;
    };

    /** One shard: a cache-line-aligned block of slots written only by
     *  the threads mapped onto it. */
    struct alignas(64) Shard {
        std::atomic<uint64_t> slots[kSlotsPerShard];
    };

    /** The calling thread's shard (assigned round-robin on first use,
     *  stable for the thread's lifetime). */
    inline Shard &shardForThisThread() const;

    uint64_t sumSlot(uint32_t slot) const;
    const Series *findSeries(std::string_view name,
                             const Labels &labels) const;
    Series &registerSeries(std::string_view name, std::string_view help,
                           Labels labels, Kind kind, uint32_t slots,
                           std::shared_ptr<const std::vector<uint64_t>>
                               bounds);

    std::unique_ptr<Shard[]> shards_;
    std::atomic<bool> enabled_{true};

    mutable std::mutex mutex_;  ///< registration + metadata reads.
    std::vector<Series> series_;
    uint32_t nextSlot_ = 0;
};

/** The process-wide registry every subsystem records into. */
Registry &registry();

/** Convenience toggles on the process-wide registry. */
inline void setEnabled(bool enabled) { registry().setEnabled(enabled); }
inline bool enabled() { return registry().enabled(); }

// ------------------------------------------------- inline hot paths

namespace detail {
/** Round-robin thread -> shard assignment, shared by all registries
 *  (the shard index keys position only, not storage). */
int threadShardIndex();
} // namespace detail

inline Registry::Shard &
Registry::shardForThisThread() const
{
    return shards_[detail::threadShardIndex()];
}

inline void
Counter::add(uint64_t n) const
{
    if (registry_ == nullptr || !registry_->enabled())
        return;
    registry_->shardForThisThread().slots[slot_].fetch_add(
        n, std::memory_order_relaxed);
}

inline void
Gauge::add(int64_t delta) const
{
    if (registry_ == nullptr || !registry_->enabled())
        return;
    registry_->shardForThisThread().slots[slot_].fetch_add(
        static_cast<uint64_t>(delta), std::memory_order_relaxed);
}

inline void
Histogram::observe(uint64_t value) const
{
    if (registry_ == nullptr || !registry_->enabled())
        return;
    uint32_t bucket = 0;
    while (bucket < buckets_ && value > bounds_[bucket])
        ++bucket;
    Registry::Shard &shard = registry_->shardForThisThread();
    // Layout: [bucket 0 .. bucket n-1, +Inf, sum].
    shard.slots[slot_ + bucket].fetch_add(1, std::memory_order_relaxed);
    shard.slots[slot_ + buckets_ + 1].fetch_add(
        value, std::memory_order_relaxed);
}

} // namespace eqasm::telemetry

#endif // EQASM_TELEMETRY_METRICS_H
