#include "telemetry/trace_log.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace eqasm::telemetry {

TraceLog::TraceLog(size_t capacity) : capacity_(capacity)
{
    ring_.reserve(capacity_);
}

void
TraceLog::record(TraceSpan span)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    ++recorded_;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(span));
        return;
    }
    ring_[next_] = std::move(span);
    next_ = (next_ + 1) % capacity_;
}

std::vector<TraceSpan>
TraceLog::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TraceSpan> out;
    out.reserve(ring_.size());
    // Once wrapped, next_ points at the oldest entry.
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(next_ + i) % ring_.size()]);
    return out;
}

uint64_t
TraceLog::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
}

size_t
TraceLog::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ring_.size();
}

void
TraceLog::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    next_ = 0;
    recorded_ = 0;
}

Json
TraceLog::chromeTraceJson() const
{
    const std::vector<TraceSpan> all = spans();

    Json events = Json::makeArray();

    // Stable track names: workers by index, the job rows as one
    // logical group above them. Sorted tids so viewers list tracks
    // in worker order.
    std::map<int32_t, std::string> trackNames;
    for (const TraceSpan &s : all) {
        if (trackNames.count(s.track))
            continue;
        trackNames[s.track] =
            s.track >= kJobTrackBase
                ? format("job track %d", s.track - kJobTrackBase)
                : format("worker %d", s.track);
    }
    for (const auto &[tid, name] : trackNames) {
        Json meta = Json::makeObject();
        meta.set("name", "thread_name");
        meta.set("ph", "M");
        meta.set("pid", 1);
        meta.set("tid", static_cast<int64_t>(tid));
        Json args = Json::makeObject();
        args.set("name", name);
        meta.set("args", std::move(args));
        events.append(std::move(meta));
    }

    for (const TraceSpan &s : all) {
        Json e = Json::makeObject();
        e.set("name", s.name);
        e.set("cat", s.cat);
        e.set("ph", "X");
        e.set("pid", 1);
        e.set("tid", static_cast<int64_t>(s.track));
        e.set("ts", static_cast<int64_t>(s.startUs));
        e.set("dur", static_cast<int64_t>(s.durUs));
        Json args = Json::makeObject();
        args.set("job", static_cast<int64_t>(s.jobId));
        if (!s.tenant.empty())
            args.set("tenant", s.tenant);
        if (!s.detail.empty())
            args.set("detail", s.detail);
        e.set("args", std::move(args));
        events.append(std::move(e));
    }

    Json root = Json::makeObject();
    root.set("traceEvents", std::move(events));
    root.set("displayTimeUnit", "ms");
    return root;
}

TraceLog &
traceLog()
{
    static TraceLog *instance = new TraceLog();  // leaked: outlives all users.
    return *instance;
}

} // namespace eqasm::telemetry
