/**
 * @file
 * Error handling primitives for the eQASM toolchain.
 *
 * Two failure modes are distinguished, following the usual simulator
 * convention (cf. gem5's fatal/panic split):
 *
 *  - Error: a user-visible failure (bad assembly, invalid configuration,
 *    malformed program). Thrown as an exception carrying a category and a
 *    human-readable message; callers such as the assembler catch these and
 *    convert them into diagnostics.
 *  - EQASM_ASSERT: an internal invariant violation, i.e. a bug in this
 *    library. Aborts.
 */
#ifndef EQASM_COMMON_ERROR_H
#define EQASM_COMMON_ERROR_H

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace eqasm {

/** Coarse error category, used to route and test failures. */
enum class ErrorCode {
    invalidArgument,   ///< Caller passed an out-of-domain value.
    parseError,        ///< Textual input (assembly, JSON) failed to parse.
    encodeError,       ///< A value does not fit the instantiated binary format.
    semanticError,     ///< Structurally valid input with illegal meaning.
    runtimeError,      ///< A failure during microarchitecture execution.
    configError,       ///< Bad platform / operation configuration.
    notFound,          ///< Lookup failure (label, register, opcode, ...).
    quotaExceeded,     ///< A tenant hit an admission quota or rate limit.
};

/** @return a stable lower-case name for @p code (used in messages/tests). */
const char *errorCodeName(ErrorCode code);

/**
 * Exception type thrown for all user-visible failures in the library.
 *
 * The what() string always embeds the category name so that uncaught
 * errors remain diagnosable from the terminating message alone.
 */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, const std::string &message);

    /** @return the machine-readable category of this failure. */
    ErrorCode code() const { return code_; }

    /** @return the message without the category prefix. */
    const std::string &message() const { return message_; }

  private:
    ErrorCode code_;
    std::string message_;
};

/** Throws Error with printf-less formatting done by the caller. */
[[noreturn]] void throwError(ErrorCode code, const std::string &message);

namespace detail {
[[noreturn]] void assertFailed(const char *expr, const char *file, int line,
                               const std::string &message);
} // namespace detail

/**
 * Internal invariant check. Unlike assert(3) this is active in all build
 * types: simulator state corruption must never be silently ignored.
 */
#define EQASM_ASSERT(expr, message)                                          \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::eqasm::detail::assertFailed(#expr, __FILE__, __LINE__,         \
                                          (message));                        \
        }                                                                    \
    } while (false)

} // namespace eqasm

#endif // EQASM_COMMON_ERROR_H
