#include "common/error.h"

#include <cstdio>

namespace eqasm {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::invalidArgument: return "invalid_argument";
      case ErrorCode::parseError: return "parse_error";
      case ErrorCode::encodeError: return "encode_error";
      case ErrorCode::semanticError: return "semantic_error";
      case ErrorCode::runtimeError: return "runtime_error";
      case ErrorCode::configError: return "config_error";
      case ErrorCode::notFound: return "not_found";
      case ErrorCode::quotaExceeded: return "quota_exceeded";
    }
    return "unknown_error";
}

Error::Error(ErrorCode code, const std::string &message)
    : std::runtime_error(std::string(errorCodeName(code)) + ": " + message),
      code_(code), message_(message)
{
}

void
throwError(ErrorCode code, const std::string &message)
{
    throw Error(code, message);
}

namespace detail {

void
assertFailed(const char *expr, const char *file, int line,
             const std::string &message)
{
    std::fprintf(stderr, "eqasm internal assertion failed: %s\n  at %s:%d\n  %s\n",
                 expr, file, line, message.c_str());
    std::abort();
}

} // namespace detail
} // namespace eqasm
