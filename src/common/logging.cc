#include "common/logging.h"

#include <cstdarg>
#include <cstdio>

namespace eqasm {
namespace {

LogLevel globalLevel = LogLevel::warn;

void
emit(LogLevel level, const std::string &component, const char *fmt,
     va_list args)
{
    if (static_cast<int>(level) > static_cast<int>(globalLevel))
        return;
    const char *tag = "";
    switch (level) {
      case LogLevel::error: tag = "ERROR"; break;
      case LogLevel::warn: tag = "WARN "; break;
      case LogLevel::info: tag = "INFO "; break;
      case LogLevel::trace: tag = "TRACE"; break;
      case LogLevel::none: return;
    }
    std::fprintf(stderr, "[%s] %-12s ", tag, component.c_str());
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

#define EQASM_DEFINE_LOG_METHOD(name, level)                                 \
    void Logger::name(const char *fmt, ...) const                           \
    {                                                                        \
        va_list args;                                                        \
        va_start(args, fmt);                                                 \
        emit(level, component_, fmt, args);                                  \
        va_end(args);                                                        \
    }

EQASM_DEFINE_LOG_METHOD(error, LogLevel::error)
EQASM_DEFINE_LOG_METHOD(warn, LogLevel::warn)
EQASM_DEFINE_LOG_METHOD(info, LogLevel::info)
EQASM_DEFINE_LOG_METHOD(trace, LogLevel::trace)

#undef EQASM_DEFINE_LOG_METHOD

} // namespace eqasm
